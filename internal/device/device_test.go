package device

import (
	"bytes"
	"fmt"
	"net"
	"testing"

	"repro/internal/wire"
)

func TestLocalPairPingPong(t *testing.T) {
	_, _, err := Run(
		func(ch Channel) error {
			if err := ch.Send(wire.Msg{Kind: "ping", Payload: []byte("1")}); err != nil {
				return err
			}
			m, err := ch.Recv()
			if err != nil {
				return err
			}
			if m.Kind != "pong" {
				return fmt.Errorf("got %q, want pong", m.Kind)
			}
			return nil
		},
		func(ch Channel) error {
			m, err := ch.Recv()
			if err != nil {
				return err
			}
			if m.Kind != "ping" {
				return fmt.Errorf("got %q, want ping", m.Kind)
			}
			return ch.Send(wire.Msg{Kind: "pong", Payload: m.Payload})
		},
	)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	_, _, err := Run(
		func(ch Channel) error { return fmt.Errorf("p1 exploded") },
		func(ch Channel) error { return nil },
	)
	if err == nil {
		t.Fatal("Run swallowed the error")
	}
}

func TestClosedChannelErrors(t *testing.T) {
	a, b := NewLocalPair()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(wire.Msg{Kind: "x"}); err == nil {
		t.Fatal("send to closed peer succeeded")
	}
	if _, err := a.Recv(); err == nil {
		t.Fatal("recv from closed peer succeeded")
	}
}

func TestRecorderTranscript(t *testing.T) {
	ra, rb, err := Run(
		func(ch Channel) error {
			if err := ch.Send(wire.Msg{Kind: "a", Payload: []byte("xyz")}); err != nil {
				return err
			}
			_, err := ch.Recv()
			return err
		},
		func(ch Channel) error {
			m, err := ch.Recv()
			if err != nil {
				return err
			}
			return ch.Send(wire.Msg{Kind: "b", Payload: m.Payload})
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	sent, recv := ra.Transcript()
	if len(sent) != 1 || len(recv) != 1 {
		t.Fatalf("P1 transcript: %d sent, %d received", len(sent), len(recv))
	}
	if ra.BytesSent() == 0 || rb.BytesSent() == 0 {
		t.Fatal("byte counters empty")
	}
	if !bytes.Contains(ra.TranscriptBytes(), []byte("xyz")) {
		t.Fatal("transcript bytes missing payload")
	}
	ra.Reset()
	if ra.BytesSent() != 0 {
		t.Fatal("reset did not clear counters")
	}
}

func TestConnChannelOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		ch := NewConnChannel(conn)
		defer ch.Close()
		m, err := ch.Recv()
		if err != nil {
			done <- err
			return
		}
		done <- ch.Send(wire.Msg{Kind: "echo", Payload: m.Payload})
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	ch := NewConnChannel(conn)
	defer ch.Close()
	payload := bytes.Repeat([]byte{0x42}, 4096)
	if err := ch.Send(wire.Msg{Kind: "data", Payload: payload}); err != nil {
		t.Fatal(err)
	}
	m, err := ch.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != "echo" || !bytes.Equal(m.Payload, payload) {
		t.Fatal("TCP echo mismatch")
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
