// Package device models the paper's two computing devices (§3): each
// runs one side of the 2-party decryption and refresh protocols over a
// public channel. The package provides channel implementations
// (in-process and net.Conn-backed), a transcript recorder capturing the
// public communication comm_t that feeds both the adversary's view and
// the communication-size experiments, and the secret-memory interface
// the leakage model reads through.
package device

import (
	"fmt"
	"net"
	"sync"

	"repro/internal/wire"
)

// Channel is one endpoint of the public channel between P1 and P2. All
// traffic on it is, by definition, visible to the adversary.
type Channel interface {
	// Send transmits one frame to the peer.
	Send(m wire.Msg) error
	// Recv blocks for the next frame from the peer. The returned
	// payload may alias the endpoint's read scratch (connChannel's
	// does) and is valid only until the next Recv; retain via copy.
	//
	//dlr:borrowed
	Recv() (wire.Msg, error)
	// Close releases the endpoint. Recv on the peer returns an error
	// afterwards.
	Close() error
}

// SecretHolder is implemented by per-device protocol states. The leakage
// adversary is given exactly SecretBytes() as the input to its leakage
// function — the serialized secret share plus whatever secret randomness
// and intermediate values the device currently holds (§3.2 "inputs to
// leakage functions").
type SecretHolder interface {
	// SecretBytes serializes the device's current secret memory.
	SecretBytes() []byte
}

// localChannel is an in-process channel endpoint.
type localChannel struct {
	send chan<- wire.Msg
	recv <-chan wire.Msg

	mu       sync.Mutex
	closed   bool
	done     chan struct{}
	peerDone chan struct{}
}

// NewLocalPair returns two connected in-process channel endpoints.
func NewLocalPair() (Channel, Channel) {
	ab := make(chan wire.Msg, 1)
	ba := make(chan wire.Msg, 1)
	a := &localChannel{send: ab, recv: ba, done: make(chan struct{})}
	b := &localChannel{send: ba, recv: ab, done: make(chan struct{})}
	a.peerDone = b.done
	b.peerDone = a.done
	return a, b
}

// Send implements Channel.
func (c *localChannel) Send(m wire.Msg) error {
	// Check for closure first: a buffered send would otherwise succeed
	// even when the peer is already gone.
	select {
	case <-c.done:
		return fmt.Errorf("device: send on closed channel")
	case <-c.peerDone:
		return fmt.Errorf("device: peer closed channel")
	default:
	}
	select {
	case c.send <- m:
		return nil
	case <-c.done:
		return fmt.Errorf("device: send on closed channel")
	case <-c.peerDone:
		return fmt.Errorf("device: peer closed channel")
	}
}

// Recv implements Channel.
func (c *localChannel) Recv() (wire.Msg, error) {
	select {
	case m := <-c.recv:
		return m, nil
	case <-c.done:
		return wire.Msg{}, fmt.Errorf("device: recv on closed channel")
	case <-c.peerDone:
		// Drain any message that raced with the close.
		select {
		case m := <-c.recv:
			return m, nil
		default:
		}
		return wire.Msg{}, fmt.Errorf("device: peer closed channel")
	}
}

// Close implements Channel.
func (c *localChannel) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.closed = true
		close(c.done)
	}
	return nil
}

// connChannel adapts a net.Conn to Channel using the wire framing.
// Reads go through a reusing wire.Reader, so the Payload of a frame
// returned by Recv is valid only until the next Recv on this channel.
// Both protocol parties decode every payload into group elements
// before their next receive, so the contract holds throughout this
// repo; a consumer that retains raw frame bytes must copy (Recorder
// does).
type connChannel struct {
	conn net.Conn
	rmu  sync.Mutex
	rd   *wire.Reader
	wmu  sync.Mutex
}

// NewConnChannel wraps a net.Conn (e.g. a TCP connection between the
// main processor and the auxiliary smart-card device of §1.1).
func NewConnChannel(c net.Conn) Channel {
	return &connChannel{conn: c, rd: wire.NewReader(c)}
}

// Send implements Channel.
func (c *connChannel) Send(m wire.Msg) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	// wmu exists precisely to serialize writers on the shared conn:
	// holding it across the write IS its job, and nothing else is ever
	// taken under it, so no ordering cycle can form.
	//dlrlint:ignore lock-discipline wmu is the per-conn write serializer; holding it across the write is its purpose
	return wire.Write(c.conn, m)
}

// Recv implements Channel. The payload aliases the wire.Reader scratch.
//
//dlr:borrowed
func (c *connChannel) Recv() (wire.Msg, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	return c.rd.Next()
}

// Close implements Channel.
func (c *connChannel) Close() error { return c.conn.Close() }

// Recorder wraps a Channel and records the transcript — the public
// information pub_t the adversary sees and may compute leakage functions
// over (§3.2), and the byte counts experiment E3 reports.
type Recorder struct {
	inner Channel

	mu        sync.Mutex
	sent      []wire.Msg
	received  []wire.Msg
	bytesSent int64
	bytesRecv int64
}

var _ Channel = (*Recorder)(nil)

// NewRecorder wraps ch with transcript recording.
func NewRecorder(ch Channel) *Recorder { return &Recorder{inner: ch} }

// Send implements Channel.
func (r *Recorder) Send(m wire.Msg) error {
	if err := r.inner.Send(m); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sent = append(r.sent, m)
	r.bytesSent += int64(m.Size())
	return nil
}

// Recv implements Channel. The retained transcript copy owns its
// payload: the inner channel may reuse the returned frame's buffer
// (connChannel does), so the recorder must not alias it — and the
// frame it forwards is still the inner channel's borrow.
//
//dlr:borrowed
func (r *Recorder) Recv() (wire.Msg, error) {
	m, err := r.inner.Recv()
	if err != nil {
		return m, err
	}
	kept := wire.Msg{Kind: m.Kind, Payload: append([]byte(nil), m.Payload...)}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.received = append(r.received, kept)
	r.bytesRecv += int64(m.Size())
	return m, nil
}

// Close implements Channel.
func (r *Recorder) Close() error { return r.inner.Close() }

// BytesSent returns the cumulative bytes sent through the recorder.
func (r *Recorder) BytesSent() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bytesSent
}

// BytesRecv returns the cumulative bytes received through the recorder.
func (r *Recorder) BytesRecv() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bytesRecv
}

// Transcript returns copies of the sent and received frame sequences —
// the comm_t component of the adversary's public view.
func (r *Recorder) Transcript() (sent, received []wire.Msg) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sent = append([]wire.Msg(nil), r.sent...)
	received = append([]wire.Msg(nil), r.received...)
	return sent, received
}

// TranscriptBytes serializes the full transcript (both directions, in
// frame order per direction) for inclusion in leakage-function inputs.
func (r *Recorder) TranscriptBytes() []byte {
	sent, received := r.Transcript()
	var out []byte
	for _, m := range sent {
		out = append(out, []byte(m.Kind)...)
		out = append(out, m.Payload...)
	}
	for _, m := range received {
		out = append(out, []byte(m.Kind)...)
		out = append(out, m.Payload...)
	}
	return out
}

// Reset clears the recorded transcript (e.g. at a time-period boundary).
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sent = nil
	r.received = nil
	r.bytesSent = 0
	r.bytesRecv = 0
}

// Run executes the two sides of a 2-party protocol over a fresh
// in-process channel pair and returns the first error from either side.
// The channels handed to the parties are recorder-wrapped; the returned
// recorders expose the transcript.
func Run(p1 func(Channel) error, p2 func(Channel) error) (*Recorder, *Recorder, error) {
	a, b := NewLocalPair()
	ra, rb := NewRecorder(a), NewRecorder(b)
	errs := make(chan error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		err := p1(ra)
		// Closing unblocks a peer still waiting in Recv if this side
		// returned early (e.g. on error).
		_ = a.Close()
		errs <- err
	}()
	go func() {
		defer wg.Done()
		err := p2(rb)
		_ = b.Close()
		errs <- err
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return ra, rb, err
		}
	}
	return ra, rb, nil
}
