package leakage

import (
	"crypto/rand"
	"testing"

	"repro/internal/bn254"
	"repro/internal/dlr"
	"repro/internal/params"
)

func TestBudgetAccounting(t *testing.T) {
	b := NewBudget(100)
	if err := b.Charge(60, 30); err != nil {
		t.Fatal(err)
	}
	if b.Carried() != 30 {
		t.Fatalf("carried %d, want 30", b.Carried())
	}
	// Next period: 30 carried + 60 + 20 > 100 must fail.
	if err := b.Charge(60, 20); err == nil {
		t.Fatal("budget accepted over-bound period")
	}
	// 30 carried + 60 + 10 = 100 is exactly allowed.
	if err := b.Charge(60, 10); err != nil {
		t.Fatal(err)
	}
	if b.Total() != 160 {
		t.Fatalf("total %d, want 160", b.Total())
	}
	if err := b.Charge(-1, 0); err == nil {
		t.Fatal("accepted negative leakage")
	}
}

// attackParams gives a fast attack configuration: λ = 1024 lets the
// whole msk encoding leak in a single period.
func attackParams(t *testing.T) params.Params {
	t.Helper()
	return params.MustNew(40, 1024)
}

func TestRandomAdversaryCompletes(t *testing.T) {
	cfg := Config{
		Params:            attackParams(t),
		Mode:              params.ModeOptimalRate,
		RefreshEnabled:    true,
		SkipBackgroundDec: true,
	}
	res, err := RunCPAGame(rand.Reader, cfg, NewRandomGuessAdversary(nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.Periods != 0 {
		t.Fatalf("random adversary played %d periods, want 0", res.Periods)
	}
	if res.Leaked1 != 0 || res.Leaked2 != 0 {
		t.Fatal("random adversary leaked bits")
	}
}

// TestKeyRecoveryBreaksNoRefresh is experiment E5's core claim, negative
// direction: with refresh disabled, the bounded-leakage adversary fully
// recovers msk and decrypts the challenge outright.
func TestKeyRecoveryBreaksNoRefresh(t *testing.T) {
	for _, mode := range []params.Mode{params.ModeBasic, params.ModeOptimalRate} {
		t.Run(mode.String(), func(t *testing.T) {
			prm := attackParams(t)
			adv, err := NewKeyRecoveryAdversary(nil, prm, mode, 0)
			if err != nil {
				t.Fatal(err)
			}
			cfg := Config{
				Params:            prm,
				Mode:              mode,
				RefreshEnabled:    false,
				SkipBackgroundDec: true,
			}
			res, err := RunCPAGame(rand.Reader, cfg, adv)
			if err != nil {
				t.Fatal(err)
			}
			if !adv.MatchedChallenge {
				t.Fatal("adversary failed to recover msk against non-refreshing deployment")
			}
			if !res.Win {
				t.Fatal("adversary recovered msk but lost the game")
			}
			if res.Periods != 2 {
				t.Fatalf("attack took %d periods, want 2 (share leak + msk leak)", res.Periods)
			}
		})
	}
}

// TestKeyRecoveryFailsWithRefresh is E5's positive direction: the same
// adversary against the actual scheme (refresh on) never reassembles
// msk — the share it leaked at period 0 has been refreshed away.
func TestKeyRecoveryFailsWithRefresh(t *testing.T) {
	prm := attackParams(t)
	adv, err := NewKeyRecoveryAdversary(nil, prm, params.ModeOptimalRate, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Params:            prm,
		Mode:              params.ModeOptimalRate,
		RefreshEnabled:    true,
		SkipBackgroundDec: true,
	}
	if _, err := RunCPAGame(rand.Reader, cfg, adv); err != nil {
		t.Fatal(err)
	}
	if adv.MatchedChallenge {
		t.Fatal("adversary recovered msk despite refresh — the scheme is broken")
	}
}

// TestOverBudgetAborts checks the challenger aborts (errors) when a
// leakage function exceeds its device's bound.
func TestOverBudgetAborts(t *testing.T) {
	prm := attackParams(t)
	greedy := &funcAdversary{
		inner: NewRandomGuessAdversary(nil),
		funcs: PeriodFuncs{
			H1: func(secret []byte, _ *View) []byte {
				// λ+8 bits: one byte over P1's bound.
				return make([]byte, prm.Lambda/8+1)
			},
		},
		periods: 1,
	}
	cfg := Config{
		Params:            prm,
		Mode:              params.ModeOptimalRate,
		RefreshEnabled:    true,
		SkipBackgroundDec: true,
	}
	if _, err := RunCPAGame(rand.Reader, cfg, greedy); err == nil {
		t.Fatal("challenger did not abort on over-budget leakage")
	}
}

// TestWithinBudgetAccepted: leaking exactly λ bits per period for several
// periods is fine.
func TestWithinBudgetAccepted(t *testing.T) {
	prm := attackParams(t)
	polite := &funcAdversary{
		inner: NewRandomGuessAdversary(nil),
		funcs: PeriodFuncs{
			H1: func(secret []byte, _ *View) []byte { return make([]byte, prm.Lambda/8) },
			H2: func(secret []byte, _ *View) []byte { return append([]byte(nil), secret[:4]...) },
		},
		periods: 3,
	}
	cfg := Config{
		Params:            prm,
		Mode:              params.ModeOptimalRate,
		RefreshEnabled:    true,
		SkipBackgroundDec: true,
	}
	res, err := RunCPAGame(rand.Reader, cfg, polite)
	if err != nil {
		t.Fatal(err)
	}
	if res.Periods != 3 {
		t.Fatalf("played %d periods, want 3", res.Periods)
	}
	if res.Leaked1 != 3*prm.Lambda {
		t.Fatalf("P1 leaked %d bits, want %d", res.Leaked1, 3*prm.Lambda)
	}
}

// TestBackgroundDecryptionRuns exercises the full Definition 3.2 loop
// including the background decryption execution.
func TestBackgroundDecryptionRuns(t *testing.T) {
	prm := params.MustNew(40, 128) // small ℓ keeps the protocol cheap
	polite := &funcAdversary{
		inner:   NewRandomGuessAdversary(nil),
		funcs:   PeriodFuncs{},
		periods: 1,
	}
	cfg := Config{
		Params:         prm,
		Mode:           params.ModeOptimalRate,
		RefreshEnabled: true,
	}
	res, err := RunCPAGame(rand.Reader, cfg, polite)
	if err != nil {
		t.Fatal(err)
	}
	if res.Periods != 1 {
		t.Fatalf("played %d periods, want 1", res.Periods)
	}
}

// funcAdversary plays fixed leakage functions for a fixed number of
// periods and delegates the challenge phase to inner.
type funcAdversary struct {
	inner   Adversary
	funcs   PeriodFuncs
	periods int
}

var _ Adversary = (*funcAdversary)(nil)

func (a *funcAdversary) GenLeakage() Func { return nil }

func (a *funcAdversary) NextPeriod(t int, view *View) (PeriodFuncs, bool) {
	if t >= a.periods {
		return PeriodFuncs{}, false
	}
	return a.funcs, true
}

func (a *funcAdversary) Messages(view *View) (*bn254.GT, *bn254.GT) {
	return a.inner.Messages(view)
}

func (a *funcAdversary) Guess(ct *dlr.Ciphertext, view *View) int {
	return a.inner.Guess(ct, view)
}

// TestMultipleDecryptionsPerPeriod exercises the §3.3 extension: several
// background decryption executions per period, all leak-observable.
func TestMultipleDecryptionsPerPeriod(t *testing.T) {
	prm := params.MustNew(40, 128)
	polite := &funcAdversary{
		inner:   NewRandomGuessAdversary(nil),
		funcs:   PeriodFuncs{},
		periods: 1,
	}
	cfg := Config{
		Params:               prm,
		Mode:                 params.ModeOptimalRate,
		RefreshEnabled:       true,
		DecryptionsPerPeriod: 3,
	}
	res, err := RunCPAGame(rand.Reader, cfg, polite)
	if err != nil {
		t.Fatal(err)
	}
	if res.Periods != 1 {
		t.Fatalf("played %d periods, want 1", res.Periods)
	}
}

// genLeakAdversary wraps funcAdversary with a key-generation leakage
// function.
type genLeakAdversary struct {
	funcAdversary
	gen Func
}

func (a *genLeakAdversary) GenLeakage() Func { return a.gen }

// TestGenLeakageWithinB0 exercises the key-generation leakage phase: up
// to b0 = O(log n) bits are returned; more aborts the game.
func TestGenLeakageWithinB0(t *testing.T) {
	// n = 254 gives b0 = 8 bits — exactly one byte of dealer leakage.
	prm := params.MustNew(254, 1024)
	cfg := Config{
		Params:            prm,
		Mode:              params.ModeOptimalRate,
		RefreshEnabled:    true,
		SkipBackgroundDec: true,
	}
	b0Bytes := prm.B0() / 8
	if b0Bytes == 0 {
		t.Skipf("b0 = %d bits is below one byte", prm.B0())
	}
	polite := &genLeakAdversary{
		funcAdversary: funcAdversary{inner: NewRandomGuessAdversary(nil)},
		gen: func(secret []byte, _ *View) []byte {
			return append([]byte(nil), secret[:b0Bytes]...)
		},
	}
	res, err := RunCPAGame(rand.Reader, cfg, polite)
	if err != nil {
		t.Fatal(err)
	}
	_ = res

	greedy := &genLeakAdversary{
		funcAdversary: funcAdversary{inner: NewRandomGuessAdversary(nil)},
		gen: func(secret []byte, _ *View) []byte {
			return append([]byte(nil), secret[:prm.B0()/8+8]...)
		},
	}
	if _, err := RunCPAGame(rand.Reader, cfg, greedy); err == nil {
		t.Fatal("challenger accepted key-generation leakage above b0")
	}
}
