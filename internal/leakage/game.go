package leakage

import (
	"crypto/rand"
	"fmt"
	"io"

	"repro/internal/bn254"
	"repro/internal/dlr"
	"repro/internal/params"
	"repro/internal/scalar"
)

// View is the adversary's public information: everything §3.2 lets it
// see — the public key, per-period communication transcripts, the public
// memory contents, the background decryption inputs/outputs, and all
// leakage obtained in earlier periods.
type View struct {
	// PK is the public key encoding.
	PK []byte
	// Periods holds one record per completed time period.
	Periods []PeriodView
	// GenLeakage is the key-generation leakage ℓ^Gen (may be nil).
	GenLeakage []byte
}

// PeriodView is the public record of one time period.
type PeriodView struct {
	// Transcript is the serialized communication to/from both devices
	// (comm_t), covering the decryption and refresh protocols.
	Transcript []byte
	// PublicMem1 is P1's public memory (the encrypted share in
	// ModeOptimalRate).
	PublicMem1 []byte
	// Ciphertext and Message are the background decryption's
	// input/output (pub_t's (c, m) component).
	Ciphertext, Message []byte
	// Leak1, Leak1Ref, Leak2, Leak2Ref are the leakage values returned
	// to the adversary for this period.
	Leak1, Leak1Ref, Leak2, Leak2Ref []byte
}

// Func is a polynomial-time computable leakage function. It receives the
// serialized secret memory of one device plus the public view, and its
// output length is charged against the device's budget. A nil Func leaks
// nothing.
type Func func(secret []byte, view *View) []byte

// PeriodFuncs is the tuple (h_1^t, h_1^{t,Ref}, h_2^t, h_2^{t,Ref}).
type PeriodFuncs struct {
	H1, H1Ref, H2, H2Ref Func
}

// Adversary drives the CPA-CML game of Definition 3.2.
type Adversary interface {
	// GenLeakage returns h^Gen, or nil to skip key-generation leakage.
	GenLeakage() Func
	// NextPeriod is called at the start of period t with the view so
	// far. Returning more = false moves the game to the challenge phase.
	NextPeriod(t int, view *View) (funcs PeriodFuncs, more bool)
	// Messages returns the challenge pair (m0, m1).
	Messages(view *View) (m0, m1 *bn254.GT)
	// Guess receives the challenge ciphertext and returns the guessed
	// bit.
	Guess(ct *dlr.Ciphertext, view *View) int
}

// Sampler is the ciphertext distribution C(n, pk, t) for the background
// decryption run at each period. It returns a ciphertext and the
// underlying plaintext.
type Sampler func(rng io.Reader, pk *dlr.PublicKey, t int) (*dlr.Ciphertext, *bn254.GT, error)

// RandomMessageSampler encrypts a fresh uniform message each period.
func RandomMessageSampler(rng io.Reader, pk *dlr.PublicKey, t int) (*dlr.Ciphertext, *bn254.GT, error) {
	m, err := dlr.RandMessage(rng, pk)
	if err != nil {
		return nil, nil, err
	}
	ct, err := dlr.Encrypt(rng, pk, m, nil)
	if err != nil {
		return nil, nil, err
	}
	return ct, m, nil
}

// Config parameterizes a game run.
type Config struct {
	// Params are the scheme parameters.
	Params params.Params
	// Mode is P1's memory layout.
	Mode params.Mode
	// RefreshEnabled runs the Ref protocol (and P1's period key
	// rotation) at the end of every period — the actual scheme. With it
	// disabled the game models the naive deployment the paper's
	// adversary defeats (experiment E5's baseline).
	RefreshEnabled bool
	// Sampler draws the background decryption ciphertexts; nil uses
	// RandomMessageSampler. SkipBackgroundDec omits the background
	// decryption entirely (cheaper; used by benches that don't exercise
	// decryption-time leakage).
	Sampler           Sampler
	SkipBackgroundDec bool
	// DecryptionsPerPeriod runs that many background decryptions per
	// period (default 1). The paper notes the multi-execution extension
	// is immediate (§3.3); the budget accounting is unchanged because
	// decryption adds no secret state beyond the share and skcomm.
	DecryptionsPerPeriod int
	// MaxPeriods aborts runaway adversaries (default 64).
	MaxPeriods int
}

// Result reports the outcome of one game.
type Result struct {
	// Win reports whether the adversary guessed the challenge bit.
	Win bool
	// Periods is the number of leakage periods played.
	Periods int
	// Leaked1 and Leaked2 are total leaked bits per device.
	Leaked1, Leaked2 int
	// ChallengeBit is the challenger's bit b (for diagnostics).
	ChallengeBit int
}

// RunCPAGame plays the semantic-security game of Definition 3.2 between
// the built-in challenger and adv, returning the outcome. It returns an
// error (not a Result) if the adversary violates a budget or a protocol
// step fails — Definition 3.2's challenger "aborts".
func RunCPAGame(rng io.Reader, cfg Config, adv Adversary) (*Result, error) {
	if rng == nil {
		rng = rand.Reader
	}
	if cfg.Sampler == nil {
		cfg.Sampler = RandomMessageSampler
	}
	if cfg.MaxPeriods == 0 {
		cfg.MaxPeriods = 64
	}

	// Key generation phase. The dealer's secret randomness rGen is the
	// essential secret state: α and the Π_ss key (everything else is
	// recomputable from it plus public data).
	pk, p1, p2, genSecret, err := genWithSecret(rng, cfg.Params, cfg.Mode)
	if err != nil {
		return nil, err
	}
	view := &View{PK: pk.Bytes()}

	b0 := NewBudget(cfg.Params.B0())
	if h := adv.GenLeakage(); h != nil {
		l := h(genSecret, view)
		if err := b0.Charge(len(l)*8, 0); err != nil {
			return nil, fmt.Errorf("leakage: key-generation %w", err)
		}
		view.GenLeakage = l
	}

	budget1 := NewBudget(pk.Params.B1())
	// P2's bound is its full share (ρ2 = 1), measured on the actual
	// serialization so the accounting is mechanically exact.
	budget2 := NewBudget(8 * len(p2.SecretBytes()))

	periods := 0
	for t := 0; t < cfg.MaxPeriods; t++ {
		funcs, more := adv.NextPeriod(t, view)
		if !more {
			break
		}
		periods++

		pv := PeriodView{PublicMem1: p1.PublicShareBytes()}

		// Steady-state secret snapshots (the inputs to h_i^t).
		s1Pre := append([]byte(nil), p1.SecretBytes()...)
		s2Pre := append([]byte(nil), p2.SecretBytes()...)

		// Background decryptions (the Dec executions of Definition 3.2;
		// one per period unless configured otherwise).
		if !cfg.SkipBackgroundDec {
			runs := cfg.DecryptionsPerPeriod
			if runs <= 0 {
				runs = 1
			}
			for r := 0; r < runs; r++ {
				ct, m, err := cfg.Sampler(rng, pk, t)
				if err != nil {
					return nil, fmt.Errorf("leakage: sampling background ciphertext: %w", err)
				}
				got, _, err := dlr.Decrypt(rng, p1, p2, ct)
				if err != nil {
					return nil, fmt.Errorf("leakage: background decryption: %w", err)
				}
				if !got.Equal(m) {
					return nil, fmt.Errorf("leakage: background decryption returned wrong message")
				}
				pv.Ciphertext = append(pv.Ciphertext, ct.Bytes()...)
				pv.Message = append(pv.Message, m.Bytes()...)
			}
		}

		// Refresh (and next-period key rotation).
		if cfg.RefreshEnabled {
			if _, err := dlr.Refresh(rng, p1, p2); err != nil {
				return nil, fmt.Errorf("leakage: refresh: %w", err)
			}
			if err := p1.BeginPeriod(rng); err != nil {
				return nil, fmt.Errorf("leakage: period rotation: %w", err)
			}
		}
		s1Post := p1.SecretBytes()
		s2Post := p2.SecretBytes()

		// Evaluate the leakage functions. Refresh-time functions see the
		// doubled secret memory: outgoing share ‖ incoming share.
		apply := func(h Func, secret []byte) []byte {
			if h == nil {
				return nil
			}
			return h(secret, view)
		}
		pv.Leak1 = apply(funcs.H1, s1Pre)
		pv.Leak2 = apply(funcs.H2, s2Pre)
		if cfg.RefreshEnabled {
			pv.Leak1Ref = apply(funcs.H1Ref, append(append([]byte(nil), s1Pre...), s1Post...))
			pv.Leak2Ref = apply(funcs.H2Ref, append(append([]byte(nil), s2Pre...), s2Post...))
		}

		if err := budget1.Charge(len(pv.Leak1)*8, len(pv.Leak1Ref)*8); err != nil {
			return nil, fmt.Errorf("leakage: P1 %w", err)
		}
		if err := budget2.Charge(len(pv.Leak2)*8, len(pv.Leak2Ref)*8); err != nil {
			return nil, fmt.Errorf("leakage: P2 %w", err)
		}
		view.Periods = append(view.Periods, pv)
	}

	// Challenge phase.
	m0, m1 := adv.Messages(view)
	if m0 == nil || m1 == nil {
		return nil, fmt.Errorf("leakage: adversary returned nil challenge messages")
	}
	bit, err := randomBit(rng)
	if err != nil {
		return nil, err
	}
	mb := m0
	if bit == 1 {
		mb = m1
	}
	ct, err := dlr.Encrypt(rng, pk, mb, nil)
	if err != nil {
		return nil, err
	}
	guess := adv.Guess(ct, view)

	return &Result{
		Win:          guess == bit,
		Periods:      periods,
		Leaked1:      budget1.Total(),
		Leaked2:      budget2.Total(),
		ChallengeBit: bit,
	}, nil
}

// genWithSecret runs dlr.Gen while exposing the dealer's essential
// secret randomness for the key-generation leakage phase.
func genWithSecret(rng io.Reader, prm params.Params, mode params.Mode) (*dlr.PublicKey, *dlr.P1, *dlr.P2, []byte, error) {
	// The dealer's α and the share key are not exported by dlr.Gen; the
	// game treats the two devices' initial secrets as the essential
	// randomness, which is equivalent (they determine the dealer's view
	// up to recomputable public data).
	pk, p1, p2, err := dlr.Gen(rng, prm, dlr.WithMode(mode))
	if err != nil {
		return nil, nil, nil, nil, err
	}
	genSecret := append(append([]byte(nil), p1.SecretBytes()...), p2.SecretBytes()...)
	return pk, p1, p2, genSecret, nil
}

func randomBit(rng io.Reader) (int, error) {
	k, err := scalar.Rand(rng)
	if err != nil {
		return 0, err
	}
	return int(k.Bit(0)), nil
}
