package leakage

import (
	"crypto/rand"
	"fmt"
	"io"

	"repro/internal/bn254"
	"repro/internal/dlr"
	"repro/internal/group"
	"repro/internal/hpske"
	"repro/internal/params"
	"repro/internal/scalar"
)

// RandomGuessAdversary plays the game without leaking anything and
// guesses at random — the 1/2-advantage floor every scheme must sit at.
type RandomGuessAdversary struct {
	rng    io.Reader
	m0, m1 *bn254.GT
}

// NewRandomGuessAdversary returns a no-leakage coin-flipping adversary.
func NewRandomGuessAdversary(rng io.Reader) *RandomGuessAdversary {
	if rng == nil {
		rng = rand.Reader
	}
	return &RandomGuessAdversary{rng: rng}
}

// GenLeakage implements Adversary.
func (a *RandomGuessAdversary) GenLeakage() Func { return nil }

// NextPeriod implements Adversary: no leakage, straight to challenge.
func (a *RandomGuessAdversary) NextPeriod(t int, view *View) (PeriodFuncs, bool) {
	return PeriodFuncs{}, false
}

// Messages implements Adversary.
func (a *RandomGuessAdversary) Messages(view *View) (*bn254.GT, *bn254.GT) {
	a.m0, _ = bn254.RandGT(a.rng)
	a.m1, _ = bn254.RandGT(a.rng)
	return a.m0, a.m1
}

// Guess implements Adversary.
func (a *RandomGuessAdversary) Guess(ct *dlr.Ciphertext, view *View) int {
	b, _ := randomBit(a.rng)
	return b
}

// KeyRecoveryAdversary mounts the cross-period attack that motivates
// refresh (experiment E5):
//
//	period 0:   leak P2's entire share s (allowed — ρ2 = 1).
//	period ≥ 1: the P1 leakage function — which may depend on leakage
//	            from *earlier* periods — embeds s, computes
//	            msk = Φ · Π aᵢ^(−sᵢ) inside the leakage function, and
//	            leaks the next ChunkBits bits of msk's encoding.
//
// Against a deployment that never refreshes, s stays valid, the chunks
// are consistent, and after ⌈|msk|/ChunkBits⌉ periods the adversary
// holds msk = g2^α and decrypts the challenge outright: it wins with
// probability 1 while respecting every leakage bound. Against the real
// scheme, the share P1 holds at period t corresponds to a *different* s
// than the one leaked at period 0 — refresh invalidates it — so the
// chunks are garbage and the adversary is reduced to guessing.
//
// This is precisely the paper's point: bounded leakage per period plus
// refresh defeats an adversary that unbounded cumulative leakage would
// let win.
type KeyRecoveryAdversary struct {
	// Prm/Mode must match the game configuration.
	Prm  params.Params
	Mode params.Mode
	// ChunkBits is the per-period msk leak width; must be ≤ λ and a
	// multiple of 8.
	ChunkBits int

	// MatchedChallenge reports (after Guess) whether the assembled msk
	// actually decrypted the challenge to one of the chosen messages —
	// i.e. whether key recovery succeeded, as opposed to a lucky coin
	// flip.
	MatchedChallenge bool

	rng    io.Reader
	m0, m1 *bn254.GT
}

// NewKeyRecoveryAdversary returns the attack adversary. chunkBits
// defaults to λ rounded down to a byte multiple.
func NewKeyRecoveryAdversary(rng io.Reader, prm params.Params, mode params.Mode, chunkBits int) (*KeyRecoveryAdversary, error) {
	if rng == nil {
		rng = rand.Reader
	}
	if chunkBits == 0 {
		chunkBits = prm.Lambda / 8 * 8
	}
	if chunkBits <= 0 || chunkBits%8 != 0 {
		return nil, fmt.Errorf("leakage: chunkBits must be a positive multiple of 8, got %d", chunkBits)
	}
	if chunkBits > prm.Lambda {
		return nil, fmt.Errorf("leakage: chunkBits %d exceeds λ = %d", chunkBits, prm.Lambda)
	}
	return &KeyRecoveryAdversary{Prm: prm, Mode: mode, ChunkBits: chunkBits, rng: rng}, nil
}

// mskEncodingBytes is the size of a G2 element encoding.
const mskEncodingBytes = bn254.G2Bytes

// GenLeakage implements Adversary.
func (a *KeyRecoveryAdversary) GenLeakage() Func { return nil }

// NextPeriod implements Adversary.
func (a *KeyRecoveryAdversary) NextPeriod(t int, view *View) (PeriodFuncs, bool) {
	neededPeriods := 1 + (mskEncodingBytes*8+a.ChunkBits-1)/a.ChunkBits
	if t >= neededPeriods {
		return PeriodFuncs{}, false
	}
	if t == 0 {
		// Leak P2's entire share.
		return PeriodFuncs{
			H2: func(secret []byte, _ *View) []byte {
				return append([]byte(nil), secret...)
			},
		}, true
	}
	// Period ≥ 1: leak the next chunk of msk, computed inside the
	// leakage function from P1's current secret memory and the share s
	// obtained from period 0's leakage (earlier-period leakage is part
	// of the adversary's — and hence the function's — view).
	chunkBytes := a.ChunkBits / 8
	off := (t - 1) * chunkBytes
	prm, mode := a.Prm, a.Mode
	h1 := func(secret []byte, view *View) []byte {
		msk := recoverMSK(prm, mode, secret, view)
		if msk == nil {
			return make([]byte, min(chunkBytes, mskEncodingBytes-off))
		}
		enc := msk.Bytes()
		if off >= len(enc) {
			return nil
		}
		end := min(off+chunkBytes, len(enc))
		return append([]byte(nil), enc[off:end]...)
	}
	return PeriodFuncs{H1: h1}, true
}

// recoverMSK computes Φ·Π aᵢ^(−sᵢ) from P1's secret memory (plus public
// memory in ModeOptimalRate) and the s leaked at period 0. Returns nil
// when the inputs don't parse.
func recoverMSK(prm params.Params, mode params.Mode, secret []byte, view *View) *bn254.G2 {
	if len(view.Periods) == 0 {
		return nil
	}
	sBytes := view.Periods[0].Leak2
	s, err := scalar.FromBytes(sBytes)
	if err != nil || len(s) != prm.Ell {
		return nil
	}
	coins, phi, err := parseShare1(prm, mode, secret, view)
	if err != nil {
		return nil
	}
	g2 := group.G2{}
	acc := phi
	for i, ai := range coins {
		acc = g2.Mul(acc, g2.Inv(g2.Exp(ai, s[i])))
	}
	return acc
}

// parseShare1 extracts (a1,…,aℓ, Φ) from P1's memory. In ModeBasic they
// sit in the secret serialization directly; in ModeOptimalRate the
// secret holds skcomm and the share is decrypted from P1's public
// memory.
func parseShare1(prm params.Params, mode params.Mode, secret []byte, view *View) ([]*bn254.G2, *bn254.G2, error) {
	switch mode {
	case params.ModeBasic:
		want := (prm.Ell+1)*bn254.G2Bytes + prm.Kappa*32
		if len(secret) != want {
			return nil, nil, fmt.Errorf("leakage: P1 secret is %d bytes, want %d", len(secret), want)
		}
		coins := make([]*bn254.G2, prm.Ell)
		for i := range coins {
			pt, err := new(bn254.G2).SetBytes(secret[i*bn254.G2Bytes : (i+1)*bn254.G2Bytes])
			if err != nil {
				return nil, nil, err
			}
			coins[i] = pt
		}
		phi, err := new(bn254.G2).SetBytes(secret[prm.Ell*bn254.G2Bytes : (prm.Ell+1)*bn254.G2Bytes])
		if err != nil {
			return nil, nil, err
		}
		return coins, phi, nil

	case params.ModeOptimalRate:
		if len(secret) != prm.Kappa*32 {
			return nil, nil, fmt.Errorf("leakage: P1 secret is %d bytes, want κ·32 = %d", len(secret), prm.Kappa*32)
		}
		skcomm, err := scalar.FromBytes(secret)
		if err != nil {
			return nil, nil, err
		}
		pub := view.Periods[len(view.Periods)-1].PublicMem1
		ss, err := hpske.New[*bn254.G2](group.G2{}, prm.Kappa)
		if err != nil {
			return nil, nil, err
		}
		ctSize := (prm.Kappa + 1) * bn254.G2Bytes
		if len(pub) != (prm.Ell+1)*ctSize {
			return nil, nil, fmt.Errorf("leakage: P1 public memory is %d bytes, want %d", len(pub), (prm.Ell+1)*ctSize)
		}
		elems := make([]*bn254.G2, prm.Ell+1)
		for i := range elems {
			ct, err := ss.FromBytes(pub[i*ctSize : (i+1)*ctSize])
			if err != nil {
				return nil, nil, err
			}
			pt, err := ss.Decrypt(hpske.Key(skcomm), ct)
			if err != nil {
				return nil, nil, err
			}
			elems[i] = pt
		}
		return elems[:prm.Ell], elems[prm.Ell], nil

	default:
		return nil, nil, fmt.Errorf("leakage: unknown mode %v", mode)
	}
}

// Messages implements Adversary.
func (a *KeyRecoveryAdversary) Messages(view *View) (*bn254.GT, *bn254.GT) {
	a.m0, _ = bn254.RandGT(a.rng)
	a.m1, _ = bn254.RandGT(a.rng)
	return a.m0, a.m1
}

// Guess implements Adversary: assemble the leaked msk chunks; on success
// decrypt the challenge as m = B/e(A, msk) and compare against m0/m1,
// otherwise flip a coin.
func (a *KeyRecoveryAdversary) Guess(ct *dlr.Ciphertext, view *View) int {
	enc := make([]byte, 0, mskEncodingBytes)
	if len(view.Periods) > 1 {
		for _, pv := range view.Periods[1:] {
			enc = append(enc, pv.Leak1...)
		}
	}
	if len(enc) >= mskEncodingBytes {
		if msk, err := new(bn254.G2).SetBytes(enc[:mskEncodingBytes]); err == nil {
			eAm := bn254.Pair(ct.A, msk)
			m := new(bn254.GT).Div(ct.B, eAm)
			switch {
			case m.Equal(a.m0):
				a.MatchedChallenge = true
				return 0
			case m.Equal(a.m1):
				a.MatchedChallenge = true
				return 1
			}
		}
	}
	b, _ := randomBit(a.rng)
	return b
}

// WinRate plays n independent games with fresh adversaries produced by
// mkAdv and returns the empirical win probability.
func WinRate(rng io.Reader, cfg Config, mkAdv func() (Adversary, error), n int) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("leakage: n must be positive")
	}
	wins := 0
	for i := 0; i < n; i++ {
		adv, err := mkAdv()
		if err != nil {
			return 0, err
		}
		res, err := RunCPAGame(rng, cfg, adv)
		if err != nil {
			return 0, err
		}
		if res.Win {
			wins++
		}
	}
	return float64(wins) / float64(n), nil
}
