// Package leakage makes the paper's continual-memory-leakage model
// executable: length-bounded leakage functions over serialized secret
// memory, the per-period budget accounting of §3.2, the CPA-CML security
// game of Definition 3.2 (and its CCA2 extension), and a library of
// concrete adversaries — including the cross-period key-recovery attack
// that succeeds against a non-refreshing deployment and fails against
// the real scheme (experiment E5).
package leakage

import "fmt"

// Budget enforces the length-shrinking rule of §3.2 for one device: the
// leakage obtained while a given share is in memory — the current
// period's steady-state function h_i^t plus the previous period's
// refresh function h_i^{(t−1),Ref} — may total at most Bound bits:
//
//	L_i^t + |ℓ_i^t| + |ℓ_i^{t,Ref}| ≤ b_i,  L_i^{t+1} ← |ℓ_i^{t,Ref}|.
type Budget struct {
	// Bound is b_i in bits.
	Bound int
	// carried is L_i^t: the refresh-leakage bits charged to the share
	// that carried over into this period.
	carried int
	// total accumulates lifetime leaked bits (for reporting only).
	total int
}

// NewBudget returns a budget with bound b bits.
func NewBudget(b int) *Budget { return &Budget{Bound: b} }

// Charge records a period's leakage: steady bits from h_i^t and refresh
// bits from h_i^{t,Ref}. It returns an error — and charges nothing — if
// the period would exceed the bound.
func (b *Budget) Charge(steadyBits, refreshBits int) error {
	if steadyBits < 0 || refreshBits < 0 {
		return fmt.Errorf("leakage: negative leakage length")
	}
	if b.carried+steadyBits+refreshBits > b.Bound {
		return fmt.Errorf("leakage: budget exceeded: carried %d + steady %d + refresh %d > bound %d",
			b.carried, steadyBits, refreshBits, b.Bound)
	}
	b.total += steadyBits + refreshBits
	b.carried = refreshBits
	return nil
}

// Carried returns the bits carried into the current period.
func (b *Budget) Carried() int { return b.carried }

// Total returns the lifetime leaked bits.
func (b *Budget) Total() int { return b.total }
