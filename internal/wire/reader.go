package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Reader decodes a stream of frames while recycling one payload buffer
// across calls, so a long-lived connection loop performs zero
// steady-state allocations on the read path.
//
// Ownership contract: the Payload of the Msg (or MuxMsg) returned by
// Next/NextMux aliases the Reader's internal scratch buffer and is valid
// only until the next Next/NextMux call. A consumer that decodes the
// payload into its own structures before reading the next frame (the
// dlr handlers and the server request path all do) can use it directly;
// a consumer that retains the raw bytes — queues them, hands them to
// another goroutine, records a transcript — must copy first.
//
// A Reader is not safe for concurrent use.
type Reader struct {
	r       io.Reader
	payload []byte // reused scratch; len is reset per frame

	// Header scratch lives in the struct (not the stack) because slices
	// passed through the io.Reader interface escape; keeping them here
	// makes Next allocation-free in steady state.
	hdr  [4]byte
	ln   [4]byte
	kind [255]byte
}

// NewReader returns a Reader decoding frames from r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Next decodes one frame. See the type comment for payload ownership.
//
//dlr:borrowed
func (rd *Reader) Next() (Msg, error) {
	if _, err := io.ReadFull(rd.r, rd.hdr[:]); err != nil {
		return Msg{}, fmt.Errorf("wire: reading header: %w", err)
	}
	if rd.hdr[0] != magic[0] || rd.hdr[1] != magic[1] {
		return Msg{}, fmt.Errorf("wire: bad magic %x", rd.hdr[:2])
	}
	if rd.hdr[2] != Version {
		return Msg{}, fmt.Errorf("wire: unsupported version %d", rd.hdr[2])
	}
	kindLen := rd.hdr[3]
	if _, err := io.ReadFull(rd.r, rd.kind[:kindLen]); err != nil {
		return Msg{}, fmt.Errorf("wire: reading kind: %w", err)
	}
	if _, err := io.ReadFull(rd.r, rd.ln[:]); err != nil {
		return Msg{}, fmt.Errorf("wire: reading length: %w", err)
	}
	n := binary.BigEndian.Uint32(rd.ln[:])
	if n > MaxPayload {
		return Msg{}, fmt.Errorf("wire: payload %d exceeds limit %d", n, MaxPayload)
	}
	if uint32(cap(rd.payload)) < n {
		rd.payload = make([]byte, n)
	}
	rd.payload = rd.payload[:n]
	if _, err := io.ReadFull(rd.r, rd.payload); err != nil {
		return Msg{}, fmt.Errorf("wire: reading payload: %w", err)
	}
	return Msg{Kind: internKind(rd.kind[:kindLen]), Payload: rd.payload}, nil
}

// NextMux decodes one multiplexed frame. The payload obeys the same
// ownership contract as Next.
//
//dlr:borrowed
func (rd *Reader) NextMux() (MuxMsg, error) {
	m, err := rd.Next()
	if err != nil {
		return MuxMsg{}, err
	}
	return MuxFromMsg(m)
}
