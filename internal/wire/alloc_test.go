//go:build !race

package wire

import (
	"io"
	"testing"
)

// Allocation regression tests for the framing fast lane: once the pool
// is warm, Write and WriteMux must not allocate at all — the whole
// point of AppendFrame/AppendMux over the old make-then-copy encoders.
// Excluded under the race detector, whose instrumentation inflates
// allocation counts (same pattern as internal/bn254/alloc_test.go).

func TestWriteZeroAlloc(t *testing.T) {
	m := Msg{Kind: "srv.decr", Payload: make([]byte, 512)}
	// Warm the pool.
	if err := Write(io.Discard, m); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := Write(io.Discard, m); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("Write allocates %v objects/op, want 0", n)
	}
}

func TestWriteMuxZeroAlloc(t *testing.T) {
	m := MuxMsg{ID: 42, Kind: "srv.decr", Payload: make([]byte, 512)}
	if err := WriteMux(io.Discard, m); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := WriteMux(io.Discard, m); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("WriteMux allocates %v objects/op, want 0", n)
	}
}

func TestAppendFrameZeroAlloc(t *testing.T) {
	m := Msg{Kind: "srv.dec", Payload: make([]byte, 512)}
	buf := make([]byte, 0, 1024)
	if n := testing.AllocsPerRun(200, func() {
		out, err := AppendFrame(buf[:0], m)
		if err != nil {
			t.Fatal(err)
		}
		buf = out[:0]
	}); n != 0 {
		t.Fatalf("AppendFrame allocates %v objects/op, want 0", n)
	}
}

func TestReaderZeroAllocSteadyState(t *testing.T) {
	// A repeating stream of identical frames decoded by one Reader:
	// after the first frame grows the scratch, Next is allocation-free
	// (internKind returns the shared constant, the payload reuses
	// scratch).
	frame, err := AppendMux(nil, MuxMsg{ID: 9, Kind: "srv.dec", Payload: make([]byte, 512)})
	if err != nil {
		t.Fatal(err)
	}
	src := &repeatReader{frame: frame}
	rd := NewReader(src)
	if _, err := rd.NextMux(); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := rd.NextMux(); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("Reader.NextMux allocates %v objects/op, want 0", n)
	}
}

// repeatReader serves one encoded frame over and over.
type repeatReader struct {
	frame []byte
	off   int
}

func (r *repeatReader) Read(p []byte) (int, error) {
	if r.off == len(r.frame) {
		r.off = 0
	}
	n := copy(p, r.frame[r.off:])
	r.off += n
	return n, nil
}
