package wire

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
)

func TestAppendFrameMatchesWrite(t *testing.T) {
	msgs := []Msg{
		{Kind: "srv.dec", Payload: []byte("hello")},
		{Kind: "k", Payload: nil},
		{Kind: "dlr.decb1", Payload: bytes.Repeat([]byte{7}, 4096)},
	}
	for _, m := range msgs {
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			t.Fatal(err)
		}
		app, err := AppendFrame(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), app) {
			t.Fatalf("AppendFrame diverges from Write for %q", m.Kind)
		}
	}
}

func TestAppendMuxMatchesWriteMux(t *testing.T) {
	m := MuxMsg{ID: 0xDEADBEEF01020304, Kind: "srv.decr", Payload: []byte("payload")}
	var buf bytes.Buffer
	if err := WriteMux(&buf, m); err != nil {
		t.Fatal(err)
	}
	app, err := AppendMux(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), app) {
		t.Fatal("AppendMux diverges from WriteMux")
	}
	if len(app) != m.Size() {
		t.Fatalf("MuxMsg.Size() = %d but encoded %d bytes", m.Size(), len(app))
	}
	got, err := ReadMux(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != m.ID || got.Kind != m.Kind || !bytes.Equal(got.Payload, m.Payload) {
		t.Fatalf("mux round trip mismatch: %+v", got)
	}
}

func TestMaxPayloadBoundary(t *testing.T) {
	// Exactly MaxPayload: accepted by both encoder and decoder.
	exact := Msg{Kind: "k", Payload: make([]byte, MaxPayload)}
	var buf bytes.Buffer
	if err := Write(&buf, exact); err != nil {
		t.Fatalf("rejected payload of exactly MaxPayload: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("decoder rejected payload of exactly MaxPayload: %v", err)
	}
	if len(got.Payload) != MaxPayload {
		t.Fatalf("payload length %d, want %d", len(got.Payload), MaxPayload)
	}

	// One over: rejected by the encoder…
	over := Msg{Kind: "k", Payload: make([]byte, MaxPayload+1)}
	if _, err := AppendFrame(nil, over); err == nil {
		t.Fatal("AppendFrame accepted MaxPayload+1")
	}
	if err := Write(io.Discard, over); err == nil {
		t.Fatal("Write accepted MaxPayload+1")
	}
	// …and by the decoder when hand-encoded.
	raw := []byte{'D', 'L', Version, 1, 'k', 0x01, 0x00, 0x00, 0x01}
	if _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Fatal("Read accepted an over-limit length prefix")
	}
	// Mux encoder accounts for the id prefix inside the limit.
	muxOver := MuxMsg{Kind: "k", Payload: make([]byte, MaxPayload-muxIDSize+1)}
	if _, err := AppendMux(nil, muxOver); err == nil {
		t.Fatal("AppendMux accepted a payload that exceeds MaxPayload with its id prefix")
	}
}

func TestZeroLengthKind(t *testing.T) {
	m := Msg{Kind: "", Payload: []byte("body")}
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != "" || !bytes.Equal(got.Payload, m.Payload) {
		t.Fatalf("zero-length kind round trip mismatch: %+v", got)
	}
}

func TestInternKind(t *testing.T) {
	for _, k := range []string{
		"dlr.dec1", "dlr.dec2", "dlr.ref1", "dlr.ref2",
		"dlr.decb1", "dlr.decb2", "dlr.refp1", "dlr.refp2",
		"srv.dec", "srv.decr", "srv.busy", "srv.err", "srv.ref", "srv.refr",
	} {
		if got := internKind([]byte(k)); got != k {
			t.Fatalf("internKind(%q) = %q", k, got)
		}
	}
	if got := internKind([]byte("custom.tag")); got != "custom.tag" {
		t.Fatalf("internKind fallthrough = %q", got)
	}
}

func TestReaderReusesPayloadBuffer(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 3; i++ {
		if err := Write(&buf, Msg{Kind: "srv.dec", Payload: bytes.Repeat([]byte{byte(i)}, 64)}); err != nil {
			t.Fatal(err)
		}
	}
	rd := NewReader(&buf)
	first, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	firstCopy := append([]byte(nil), first.Payload...)
	second, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	// The contract: first.Payload aliases scratch and has been
	// overwritten by the second frame.
	if &first.Payload[0] != &second.Payload[0] {
		t.Fatal("Reader did not reuse its payload buffer for same-size frames")
	}
	if bytes.Equal(first.Payload, firstCopy) {
		t.Fatal("scratch unexpectedly preserved the first payload")
	}
	if !bytes.Equal(second.Payload, bytes.Repeat([]byte{1}, 64)) {
		t.Fatal("second frame decoded incorrectly")
	}
}

func TestReaderMux(t *testing.T) {
	var buf bytes.Buffer
	want := []MuxMsg{
		{ID: 1, Kind: "srv.dec", Payload: []byte("a")},
		{ID: 99, Kind: "srv.decr", Payload: nil},
	}
	for _, m := range want {
		if err := WriteMux(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	rd := NewReader(&buf)
	for _, w := range want {
		got, err := rd.NextMux()
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != w.ID || got.Kind != w.Kind || !bytes.Equal(got.Payload, w.Payload) {
			t.Fatalf("NextMux = %+v, want %+v", got, w)
		}
	}
}

func TestReaderRejectsBadFrames(t *testing.T) {
	rd := NewReader(bytes.NewReader([]byte{'X', 'Y', 1, 0, 0, 0, 0, 0}))
	if _, err := rd.Next(); err == nil {
		t.Fatal("Reader accepted bad magic")
	}
	rd = NewReader(bytes.NewReader([]byte{'D', 'L', 9, 0, 0, 0, 0, 0}))
	if _, err := rd.Next(); err == nil {
		t.Fatal("Reader accepted bad version")
	}
	frame, err := AppendFrame(nil, Msg{Kind: "srv.dec", Payload: []byte("abcdef")})
	if err != nil {
		t.Fatal(err)
	}
	rd = NewReader(bytes.NewReader(frame[:len(frame)-2]))
	if _, err := rd.Next(); err == nil {
		t.Fatal("Reader accepted a truncated frame")
	}
}

// TestConcurrentPooledWrites hammers the shared frame pool from many
// goroutines writing to one net.Pipe-backed connection while a single
// Reader drains it — the shape of the decrypt server under load. Run
// with -race this doubles as the wire race test.
func TestConcurrentPooledWrites(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()

	const writers = 8
	const perWriter = 50
	var wmu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(w)}, 128)
			for i := 0; i < perWriter; i++ {
				m := MuxMsg{ID: uint64(w)<<32 | uint64(i), Kind: "srv.dec", Payload: payload}
				wmu.Lock()
				//dlrlint:ignore lock-discipline wmu deliberately serializes writers on the shared pipe, mirroring the server's per-conn write mutex
				err := WriteMux(c1, m)
				wmu.Unlock()
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		rd := NewReader(c2)
		for n := 0; n < writers*perWriter; n++ {
			m, err := rd.NextMux()
			if err != nil {
				t.Error(err)
				return
			}
			w := byte(m.ID >> 32)
			if len(m.Payload) != 128 || m.Payload[0] != w || m.Payload[127] != w {
				t.Errorf("frame %x has corrupted payload", m.ID)
				return
			}
		}
	}()
	wg.Wait()
	<-done
}

func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte("srv.dec"), []byte("payload"), uint64(7))
	f.Add([]byte(""), []byte(""), uint64(0))
	f.Add([]byte("dlr.decb1"), bytes.Repeat([]byte{0xFF}, 300), uint64(1<<63))
	f.Fuzz(func(t *testing.T, kind, payload []byte, id uint64) {
		if len(kind) > 255 || len(payload) > 1<<16 {
			t.Skip()
		}
		m := Msg{Kind: string(kind), Payload: payload}
		frame, err := AppendFrame(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Read(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("decoding our own frame: %v", err)
		}
		if got.Kind != m.Kind || !bytes.Equal(got.Payload, m.Payload) {
			t.Fatal("base frame round trip mismatch")
		}

		mm := MuxMsg{ID: id, Kind: string(kind), Payload: payload}
		mframe, err := AppendMux(nil, mm)
		if err != nil {
			t.Fatal(err)
		}
		rd := NewReader(bytes.NewReader(mframe))
		gotM, err := rd.NextMux()
		if err != nil {
			t.Fatalf("decoding our own mux frame: %v", err)
		}
		if gotM.ID != mm.ID || gotM.Kind != mm.Kind || !bytes.Equal(gotM.Payload, mm.Payload) {
			t.Fatal("mux frame round trip mismatch")
		}

		// Truncations of a valid frame must error, never panic or hang.
		for cut := 0; cut < len(frame); cut++ {
			if _, err := Read(bytes.NewReader(frame[:cut])); err == nil {
				t.Fatalf("accepted frame truncated to %d of %d bytes", cut, len(frame))
			}
		}
	})
}
