// Package wire implements the length-prefixed binary framing used by the
// 2-party protocols, both in-process and over TCP. Every frame carries a
// short ASCII kind tag and an opaque payload of group elements encoded
// by the schemes themselves.
//
// Frame layout (big-endian):
//
//	magic   [2]byte  = "DL"
//	version uint8    = 1
//	kindLen uint8
//	kind    [kindLen]byte
//	payLen  uint32
//	payload [payLen]byte
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Version is the framing version emitted by this package.
const Version = 1

// MaxPayload bounds frame payloads (16 MiB) so a malformed peer cannot
// force unbounded allocation.
const MaxPayload = 16 << 20

var magic = [2]byte{'D', 'L'}

// Msg is one protocol frame.
type Msg struct {
	// Kind is a short ASCII tag identifying the protocol step
	// (e.g. "dec.d", "ref.f").
	Kind string
	// Payload is the opaque frame body.
	Payload []byte
}

// Size returns the on-wire size of the message in bytes.
func (m Msg) Size() int { return 2 + 1 + 1 + len(m.Kind) + 4 + len(m.Payload) }

// Write encodes m onto w.
func Write(w io.Writer, m Msg) error {
	if len(m.Kind) > 255 {
		return fmt.Errorf("wire: kind %q too long", m.Kind[:32])
	}
	if len(m.Payload) > MaxPayload {
		return fmt.Errorf("wire: payload %d exceeds limit %d", len(m.Payload), MaxPayload)
	}
	buf := make([]byte, 0, m.Size())
	buf = append(buf, magic[:]...)
	buf = append(buf, Version, byte(len(m.Kind)))
	buf = append(buf, m.Kind...)
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(m.Payload)))
	buf = append(buf, l[:]...)
	buf = append(buf, m.Payload...)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("wire: writing frame: %w", err)
	}
	return nil
}

// Read decodes one frame from r.
func Read(r io.Reader) (Msg, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Msg{}, fmt.Errorf("wire: reading header: %w", err)
	}
	if hdr[0] != magic[0] || hdr[1] != magic[1] {
		return Msg{}, fmt.Errorf("wire: bad magic %x", hdr[:2])
	}
	if hdr[2] != Version {
		return Msg{}, fmt.Errorf("wire: unsupported version %d", hdr[2])
	}
	kind := make([]byte, hdr[3])
	if _, err := io.ReadFull(r, kind); err != nil {
		return Msg{}, fmt.Errorf("wire: reading kind: %w", err)
	}
	var l [4]byte
	if _, err := io.ReadFull(r, l[:]); err != nil {
		return Msg{}, fmt.Errorf("wire: reading length: %w", err)
	}
	n := binary.BigEndian.Uint32(l[:])
	if n > MaxPayload {
		return Msg{}, fmt.Errorf("wire: payload %d exceeds limit %d", n, MaxPayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Msg{}, fmt.Errorf("wire: reading payload: %w", err)
	}
	return Msg{Kind: string(kind), Payload: payload}, nil
}

// Builder incrementally assembles a payload of fixed-size group-element
// encodings and scalars.
type Builder struct {
	buf []byte
}

// AppendBytes appends a length-prefixed byte string.
func (b *Builder) AppendBytes(p []byte) *Builder {
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(p)))
	b.buf = append(b.buf, l[:]...)
	b.buf = append(b.buf, p...)
	return b
}

// AppendRaw appends p without a length prefix (for fixed-size encodings).
func (b *Builder) AppendRaw(p []byte) *Builder {
	b.buf = append(b.buf, p...)
	return b
}

// AppendUint32 appends a big-endian uint32.
func (b *Builder) AppendUint32(v uint32) *Builder {
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], v)
	b.buf = append(b.buf, l[:]...)
	return b
}

// Bytes returns the assembled payload.
func (b *Builder) Bytes() []byte { return b.buf }

// Parser walks a payload assembled by Builder.
type Parser struct {
	buf []byte
	off int
}

// NewParser returns a parser over p.
func NewParser(p []byte) *Parser { return &Parser{buf: p} }

// Bytes reads a length-prefixed byte string.
func (p *Parser) Bytes() ([]byte, error) {
	if p.off+4 > len(p.buf) {
		return nil, fmt.Errorf("wire: truncated length prefix at offset %d", p.off)
	}
	n := binary.BigEndian.Uint32(p.buf[p.off:])
	p.off += 4
	if uint32(len(p.buf)-p.off) < n {
		return nil, fmt.Errorf("wire: truncated byte string (want %d, have %d)", n, len(p.buf)-p.off)
	}
	out := p.buf[p.off : p.off+int(n)]
	p.off += int(n)
	return out, nil
}

// Raw reads exactly n unprefixed bytes.
func (p *Parser) Raw(n int) ([]byte, error) {
	if n < 0 || len(p.buf)-p.off < n {
		return nil, fmt.Errorf("wire: truncated raw field (want %d, have %d)", n, len(p.buf)-p.off)
	}
	out := p.buf[p.off : p.off+n]
	p.off += n
	return out, nil
}

// Uint32 reads a big-endian uint32.
func (p *Parser) Uint32() (uint32, error) {
	raw, err := p.Raw(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(raw), nil
}

// Done reports whether the payload is fully consumed.
func (p *Parser) Done() bool { return p.off == len(p.buf) }

// Remaining returns the number of unread bytes.
func (p *Parser) Remaining() int { return len(p.buf) - p.off }
