// Package wire implements the length-prefixed binary framing used by the
// 2-party protocols, both in-process and over TCP. Every frame carries a
// short ASCII kind tag and an opaque payload of group elements encoded
// by the schemes themselves.
//
// Frame layout (big-endian):
//
//	magic   [2]byte  = "DL"
//	version uint8    = 1
//	kindLen uint8
//	kind    [kindLen]byte
//	payLen  uint32
//	payload [payLen]byte
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Version is the framing version emitted by this package.
const Version = 1

// MaxPayload bounds frame payloads (16 MiB) so a malformed peer cannot
// force unbounded allocation.
const MaxPayload = 16 << 20

var magic = [2]byte{'D', 'L'}

// Msg is one protocol frame.
type Msg struct {
	// Kind is a short ASCII tag identifying the protocol step
	// (e.g. "dec.d", "ref.f").
	Kind string
	// Payload is the opaque frame body.
	Payload []byte
}

// Size returns the on-wire size of the message in bytes.
func (m Msg) Size() int { return 2 + 1 + 1 + len(m.Kind) + 4 + len(m.Payload) }

// AppendFrame appends the encoding of m to dst and returns the extended
// slice. It is the allocation-free core of Write: callers that batch
// several frames into one syscall (the server's per-window flush)
// append them all into one buffer and hand it to a single conn.Write.
func AppendFrame(dst []byte, m Msg) ([]byte, error) {
	if len(m.Kind) > 255 {
		return dst, fmt.Errorf("wire: kind %q too long", m.Kind[:32])
	}
	if len(m.Payload) > MaxPayload {
		return dst, fmt.Errorf("wire: payload %d exceeds limit %d", len(m.Payload), MaxPayload)
	}
	dst = append(dst, magic[0], magic[1], Version, byte(len(m.Kind)))
	dst = append(dst, m.Kind...)
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(m.Payload)))
	dst = append(dst, l[:]...)
	return append(dst, m.Payload...), nil
}

// framePool recycles encode buffers across Write/WriteMux calls. The
// pool holds pointers so Get/Put stay allocation-free, and putFrameBuf
// drops oversized buffers so one huge frame cannot pin its capacity in
// the pool forever.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// maxPooledFrame caps the capacity a returned buffer may retain.
const maxPooledFrame = 64 << 10

func getFrameBuf() *[]byte { return framePool.Get().(*[]byte) }

func putFrameBuf(bp *[]byte) {
	if cap(*bp) > maxPooledFrame {
		return
	}
	framePool.Put(bp)
}

// Write encodes m onto w as one w.Write call. The encode buffer comes
// from an internal pool, so steady-state writes allocate nothing; w
// must not retain the slice passed to its Write method beyond the call
// (net.Conn and bytes.Buffer both satisfy this).
func Write(w io.Writer, m Msg) error {
	bp := getFrameBuf()
	buf, err := AppendFrame((*bp)[:0], m)
	*bp = buf[:0]
	if err != nil {
		putFrameBuf(bp)
		return err
	}
	_, werr := w.Write(buf)
	putFrameBuf(bp)
	if werr != nil {
		return fmt.Errorf("wire: writing frame: %w", werr)
	}
	return nil
}

// Read decodes one frame from r. The returned payload is freshly
// allocated and owned by the caller; long-lived consumers on hot paths
// should prefer Reader, which recycles its payload buffer.
func Read(r io.Reader) (Msg, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Msg{}, fmt.Errorf("wire: reading header: %w", err)
	}
	if hdr[0] != magic[0] || hdr[1] != magic[1] {
		return Msg{}, fmt.Errorf("wire: bad magic %x", hdr[:2])
	}
	if hdr[2] != Version {
		return Msg{}, fmt.Errorf("wire: unsupported version %d", hdr[2])
	}
	var kind [255]byte
	if _, err := io.ReadFull(r, kind[:hdr[3]]); err != nil {
		return Msg{}, fmt.Errorf("wire: reading kind: %w", err)
	}
	var l [4]byte
	if _, err := io.ReadFull(r, l[:]); err != nil {
		return Msg{}, fmt.Errorf("wire: reading length: %w", err)
	}
	n := binary.BigEndian.Uint32(l[:])
	if n > MaxPayload {
		return Msg{}, fmt.Errorf("wire: payload %d exceeds limit %d", n, MaxPayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Msg{}, fmt.Errorf("wire: reading payload: %w", err)
	}
	return Msg{Kind: internKind(kind[:hdr[3]]), Payload: payload}, nil
}

// internKind maps the protocol's fixed kind tags onto shared string
// constants so decoding a frame does not allocate a fresh string per
// message. Unknown tags fall back to an ordinary conversion.
func internKind(b []byte) string {
	// The switch compares against the byte slice without converting it;
	// each case returns the compiler-interned constant.
	switch string(b) {
	case "dlr.dec1":
		return "dlr.dec1"
	case "dlr.dec2":
		return "dlr.dec2"
	case "dlr.ref1":
		return "dlr.ref1"
	case "dlr.ref2":
		return "dlr.ref2"
	case "dlr.decb1":
		return "dlr.decb1"
	case "dlr.decb2":
		return "dlr.decb2"
	case "dlr.refp1":
		return "dlr.refp1"
	case "dlr.refp2":
		return "dlr.refp2"
	case "srv.dec":
		return "srv.dec"
	case "srv.decr":
		return "srv.decr"
	case "srv.busy":
		return "srv.busy"
	case "srv.err":
		return "srv.err"
	case "srv.ref":
		return "srv.ref"
	case "srv.refr":
		return "srv.refr"
	}
	return string(b)
}

// Builder incrementally assembles a payload of fixed-size group-element
// encodings and scalars.
type Builder struct {
	buf []byte
}

// AppendBytes appends a length-prefixed byte string.
func (b *Builder) AppendBytes(p []byte) *Builder {
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(p)))
	b.buf = append(b.buf, l[:]...)
	b.buf = append(b.buf, p...)
	return b
}

// AppendRaw appends p without a length prefix (for fixed-size encodings).
func (b *Builder) AppendRaw(p []byte) *Builder {
	b.buf = append(b.buf, p...)
	return b
}

// AppendUint32 appends a big-endian uint32.
func (b *Builder) AppendUint32(v uint32) *Builder {
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], v)
	b.buf = append(b.buf, l[:]...)
	return b
}

// Bytes returns the assembled payload.
func (b *Builder) Bytes() []byte { return b.buf }

// Parser walks a payload assembled by Builder.
type Parser struct {
	buf []byte
	off int
}

// NewParser returns a parser over p.
func NewParser(p []byte) *Parser { return &Parser{buf: p} }

// Bytes reads a length-prefixed byte string.
func (p *Parser) Bytes() ([]byte, error) {
	if p.off+4 > len(p.buf) {
		return nil, fmt.Errorf("wire: truncated length prefix at offset %d", p.off)
	}
	n := binary.BigEndian.Uint32(p.buf[p.off:])
	p.off += 4
	if uint32(len(p.buf)-p.off) < n {
		return nil, fmt.Errorf("wire: truncated byte string (want %d, have %d)", n, len(p.buf)-p.off)
	}
	out := p.buf[p.off : p.off+int(n)]
	p.off += int(n)
	return out, nil
}

// Raw reads exactly n unprefixed bytes.
func (p *Parser) Raw(n int) ([]byte, error) {
	if n < 0 || len(p.buf)-p.off < n {
		return nil, fmt.Errorf("wire: truncated raw field (want %d, have %d)", n, len(p.buf)-p.off)
	}
	out := p.buf[p.off : p.off+n]
	p.off += n
	return out, nil
}

// Uint32 reads a big-endian uint32.
func (p *Parser) Uint32() (uint32, error) {
	raw, err := p.Raw(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(raw), nil
}

// Done reports whether the payload is fully consumed.
func (p *Parser) Done() bool { return p.off == len(p.buf) }

// Remaining returns the number of unread bytes.
func (p *Parser) Remaining() int { return len(p.buf) - p.off }
