package wire

import (
	"bytes"
	"io"
	"testing"
)

func TestMuxRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := []MuxMsg{
		{ID: 0, Kind: "srv.dec", Payload: []byte("hello")},
		{ID: 1<<64 - 1, Kind: "srv.decr", Payload: nil},
		{ID: 42, Kind: "srv.busy", Payload: bytes.Repeat([]byte{0xaa}, 1000)},
	}
	for _, m := range msgs {
		if err := WriteMux(&buf, m); err != nil {
			t.Fatalf("WriteMux(%d): %v", m.ID, err)
		}
	}
	for _, want := range msgs {
		got, err := ReadMux(&buf)
		if err != nil {
			t.Fatalf("ReadMux: %v", err)
		}
		if got.ID != want.ID || got.Kind != want.Kind || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("round trip mismatch: got %+v want %+v", got, want)
		}
	}
}

// Responses interleaved out of request order must still carry the ids
// that let the client route them — the property the batch-window server
// relies on.
func TestMuxOutOfOrderIDsSurvive(t *testing.T) {
	var buf bytes.Buffer
	for _, id := range []uint64{7, 3, 9, 1} {
		if err := WriteMux(&buf, MuxMsg{ID: id, Kind: "srv.decr"}); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	for {
		m, err := ReadMux(&buf)
		if err == io.EOF || buf.Len() == 0 && err != nil {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, m.ID)
		if buf.Len() == 0 {
			break
		}
	}
	want := []uint64{7, 3, 9, 1}
	if len(got) != len(want) {
		t.Fatalf("got %d frames, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frame %d: id %d, want %d", i, got[i], want[i])
		}
	}
}

// A mux frame is a plain frame whose payload starts with the id, so the
// base reader interoperates.
func TestMuxReadableAsBaseFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMux(&buf, MuxMsg{ID: 0x0102030405060708, Kind: "srv.dec", Payload: []byte{0xff}}); err != nil {
		t.Fatal(err)
	}
	m, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != "srv.dec" || len(m.Payload) != 9 {
		t.Fatalf("unexpected base frame %q/%d", m.Kind, len(m.Payload))
	}
	mm, err := MuxFromMsg(m)
	if err != nil {
		t.Fatal(err)
	}
	if mm.ID != 0x0102030405060708 || len(mm.Payload) != 1 || mm.Payload[0] != 0xff {
		t.Fatalf("MuxFromMsg mismatch: %+v", mm)
	}
}

func TestMuxRejectsShortFrame(t *testing.T) {
	if _, err := MuxFromMsg(Msg{Kind: "srv.dec", Payload: []byte{1, 2, 3}}); err == nil {
		t.Fatal("expected error for frame shorter than the id prefix")
	}
}

func TestMuxRejectsOversizePayload(t *testing.T) {
	err := WriteMux(io.Discard, MuxMsg{Kind: "srv.dec", Payload: make([]byte, MaxPayload)})
	if err == nil {
		t.Fatal("expected oversize mux payload to be rejected")
	}
}
