package wire

import (
	"bytes"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Msg{
		{Kind: "dec.d", Payload: []byte("hello")},
		{Kind: "ref.f", Payload: nil},
		{Kind: "x", Payload: bytes.Repeat([]byte{0xAB}, 1<<10)},
	}
	for _, m := range msgs {
		if err := Write(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Kind != want.Kind || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame mismatch: got %q/%d bytes", got.Kind, len(got.Payload))
		}
	}
}

func TestFrameSizeAccounting(t *testing.T) {
	m := Msg{Kind: "abc", Payload: []byte("12345")}
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != m.Size() {
		t.Fatalf("Size() = %d but encoded %d bytes", m.Size(), buf.Len())
	}
}

func TestRejectBadFrames(t *testing.T) {
	// Bad magic.
	if _, err := Read(bytes.NewReader([]byte{'X', 'Y', 1, 0, 0, 0, 0, 0})); err == nil {
		t.Fatal("accepted bad magic")
	}
	// Bad version.
	if _, err := Read(bytes.NewReader([]byte{'D', 'L', 9, 0, 0, 0, 0, 0})); err == nil {
		t.Fatal("accepted bad version")
	}
	// Truncated payload.
	var buf bytes.Buffer
	if err := Write(&buf, Msg{Kind: "k", Payload: []byte("abcdef")}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Fatal("accepted truncated frame")
	}
	// Oversized kind.
	if err := Write(&buf, Msg{Kind: strings.Repeat("k", 300)}); err == nil {
		t.Fatal("accepted oversized kind")
	}
}

func TestBuilderParserRoundTrip(t *testing.T) {
	var b Builder
	b.AppendUint32(42).
		AppendBytes([]byte("variable")).
		AppendRaw([]byte{1, 2, 3, 4})
	p := NewParser(b.Bytes())
	v, err := p.Uint32()
	if err != nil || v != 42 {
		t.Fatalf("Uint32 = %d, %v", v, err)
	}
	s, err := p.Bytes()
	if err != nil || string(s) != "variable" {
		t.Fatalf("Bytes = %q, %v", s, err)
	}
	raw, err := p.Raw(4)
	if err != nil || !bytes.Equal(raw, []byte{1, 2, 3, 4}) {
		t.Fatalf("Raw = %v, %v", raw, err)
	}
	if !p.Done() {
		t.Fatalf("parser not done, %d remaining", p.Remaining())
	}
}

func TestParserTruncation(t *testing.T) {
	var b Builder
	b.AppendBytes([]byte("abc"))
	enc := b.Bytes()
	p := NewParser(enc[:len(enc)-1])
	if _, err := p.Bytes(); err == nil {
		t.Fatal("parser accepted truncated byte string")
	}
	p2 := NewParser([]byte{0, 0})
	if _, err := p2.Uint32(); err == nil {
		t.Fatal("parser accepted truncated uint32")
	}
	p3 := NewParser([]byte{1})
	if _, err := p3.Raw(2); err == nil {
		t.Fatal("parser accepted short raw read")
	}
}
