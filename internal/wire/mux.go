package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Multiplexed framing: the batch-window server interleaves many logical
// requests over one connection, and responses return in whatever order
// their batch windows drain — not the order the requests arrived. Each
// frame therefore carries a per-connection request id ahead of the
// payload, so the peer can route a response back to its waiter.
//
// A MuxMsg is an ordinary Msg whose payload is prefixed with the 8-byte
// big-endian id; the base framing (magic, version, kind, bounds checks)
// is unchanged, and a mux frame is readable by Read as a Msg whose
// payload happens to start with the id.

// MuxMsg is one multiplexed protocol frame.
type MuxMsg struct {
	// ID identifies the request on its connection. Responses echo the
	// id of the request they answer; ids of in-flight requests must be
	// unique per connection, and may be reused after the response.
	ID uint64
	// Kind tags the frame (e.g. "srv.dec", "srv.decr").
	Kind string
	// Payload is the frame body, excluding the id prefix.
	Payload []byte
}

// muxIDSize is the on-wire size of the request-id prefix.
const muxIDSize = 8

// WriteMux encodes m onto w.
func WriteMux(w io.Writer, m MuxMsg) error {
	if len(m.Payload) > MaxPayload-muxIDSize {
		return fmt.Errorf("wire: mux payload %d exceeds limit %d", len(m.Payload), MaxPayload-muxIDSize)
	}
	body := make([]byte, muxIDSize+len(m.Payload))
	binary.BigEndian.PutUint64(body, m.ID)
	copy(body[muxIDSize:], m.Payload)
	return Write(w, Msg{Kind: m.Kind, Payload: body})
}

// ReadMux decodes one multiplexed frame from r.
func ReadMux(r io.Reader) (MuxMsg, error) {
	raw, err := Read(r)
	if err != nil {
		return MuxMsg{}, err
	}
	return MuxFromMsg(raw)
}

// MuxFromMsg splits a base frame into its id and inner payload.
func MuxFromMsg(m Msg) (MuxMsg, error) {
	if len(m.Payload) < muxIDSize {
		return MuxMsg{}, fmt.Errorf("wire: mux frame %q too short for request id (%d bytes)", m.Kind, len(m.Payload))
	}
	return MuxMsg{
		ID:      binary.BigEndian.Uint64(m.Payload),
		Kind:    m.Kind,
		Payload: m.Payload[muxIDSize:],
	}, nil
}
