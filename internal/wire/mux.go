package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Multiplexed framing: the batch-window server interleaves many logical
// requests over one connection, and responses return in whatever order
// their batch windows drain — not the order the requests arrived. Each
// frame therefore carries a per-connection request id ahead of the
// payload, so the peer can route a response back to its waiter.
//
// A MuxMsg is an ordinary Msg whose payload is prefixed with the 8-byte
// big-endian id; the base framing (magic, version, kind, bounds checks)
// is unchanged, and a mux frame is readable by Read as a Msg whose
// payload happens to start with the id.

// MuxMsg is one multiplexed protocol frame.
type MuxMsg struct {
	// ID identifies the request on its connection. Responses echo the
	// id of the request they answer; ids of in-flight requests must be
	// unique per connection, and may be reused after the response.
	ID uint64
	// Kind tags the frame (e.g. "srv.dec", "srv.decr").
	Kind string
	// Payload is the frame body, excluding the id prefix.
	Payload []byte
}

// muxIDSize is the on-wire size of the request-id prefix.
const muxIDSize = 8

// Size returns the on-wire size of the multiplexed message in bytes.
func (m MuxMsg) Size() int { return 2 + 1 + 1 + len(m.Kind) + 4 + muxIDSize + len(m.Payload) }

// AppendMux appends the encoding of m to dst and returns the extended
// slice. Like AppendFrame it writes the id prefix in place, so batching
// callers never materialize an intermediate id+payload body.
func AppendMux(dst []byte, m MuxMsg) ([]byte, error) {
	if len(m.Kind) > 255 {
		return dst, fmt.Errorf("wire: kind %q too long", m.Kind[:32])
	}
	if len(m.Payload) > MaxPayload-muxIDSize {
		return dst, fmt.Errorf("wire: mux payload %d exceeds limit %d", len(m.Payload), MaxPayload-muxIDSize)
	}
	dst = append(dst, magic[0], magic[1], Version, byte(len(m.Kind)))
	dst = append(dst, m.Kind...)
	var u [8]byte
	binary.BigEndian.PutUint32(u[:4], uint32(muxIDSize+len(m.Payload)))
	dst = append(dst, u[:4]...)
	binary.BigEndian.PutUint64(u[:], m.ID)
	dst = append(dst, u[:]...)
	return append(dst, m.Payload...), nil
}

// WriteMux encodes m onto w as one w.Write call, through the shared
// frame-buffer pool (see Write for the non-retention requirement on w).
func WriteMux(w io.Writer, m MuxMsg) error {
	bp := getFrameBuf()
	buf, err := AppendMux((*bp)[:0], m)
	*bp = buf[:0]
	if err != nil {
		putFrameBuf(bp)
		return err
	}
	_, werr := w.Write(buf)
	putFrameBuf(bp)
	if werr != nil {
		return fmt.Errorf("wire: writing frame: %w", werr)
	}
	return nil
}

// ReadMux decodes one multiplexed frame from r.
func ReadMux(r io.Reader) (MuxMsg, error) {
	raw, err := Read(r)
	if err != nil {
		return MuxMsg{}, err
	}
	return MuxFromMsg(raw)
}

// MuxFromMsg splits a base frame into its id and inner payload.
func MuxFromMsg(m Msg) (MuxMsg, error) {
	if len(m.Payload) < muxIDSize {
		return MuxMsg{}, fmt.Errorf("wire: mux frame %q too short for request id (%d bytes)", m.Kind, len(m.Payload))
	}
	return MuxMsg{
		ID:      binary.BigEndian.Uint64(m.Payload),
		Kind:    m.Kind,
		Payload: m.Payload[muxIDSize:],
	}, nil
}
