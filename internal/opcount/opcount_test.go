package opcount

import (
	"sync"
	"testing"
)

func TestAddGetReset(t *testing.T) {
	c := New()
	c.Add(G1Exp, 3)
	c.Add(G1Exp, 2)
	c.Add(Pairing, 1)
	if c.Get(G1Exp) != 5 || c.Get(Pairing) != 1 {
		t.Fatal("counts wrong")
	}
	c.Reset()
	if c.Get(G1Exp) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestNilSafe(t *testing.T) {
	var c *Counter
	c.Add(G1Exp, 1)
	if c.Get(G1Exp) != 0 {
		t.Fatal("nil counter returned non-zero")
	}
	c.Reset()
	if c.Snapshot() != nil {
		t.Fatal("nil counter snapshot should be nil")
	}
}

func TestZeroValueUsable(t *testing.T) {
	var c Counter
	c.Add(G2Mul, 7)
	if c.Get(G2Mul) != 7 {
		t.Fatal("zero-value counter unusable")
	}
}

func TestSnapshotAndDiff(t *testing.T) {
	c := New()
	c.Add(G1Exp, 2)
	before := c.Snapshot()
	c.Add(G1Exp, 3)
	c.Add(GTMul, 1)
	after := c.Snapshot()
	d := Diff(after, before)
	if d[G1Exp] != 3 || d[GTMul] != 1 {
		t.Fatalf("diff wrong: %v", d)
	}
}

func TestConcurrent(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(Pairing, 1)
			}
		}()
	}
	wg.Wait()
	if c.Get(Pairing) != 8000 {
		t.Fatalf("concurrent count %d, want 8000", c.Get(Pairing))
	}
}

func TestString(t *testing.T) {
	c := New()
	c.Add(G1Exp, 1)
	c.Add(Pairing, 2)
	if s := c.String(); s != "g1.exp=1 pairing=2" {
		t.Fatalf("String() = %q", s)
	}
}
