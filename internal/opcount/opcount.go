// Package opcount provides injected operation counters used to
// regenerate the paper's efficiency comparisons (experiments E1 and E6)
// from measured group-operation counts rather than asymptotic claims.
//
// A nil *Counter is valid everywhere and counts nothing, so callers can
// thread counters through APIs unconditionally.
package opcount

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Op identifies a counted operation.
type Op string

// The counted operation kinds.
const (
	G1Exp     Op = "g1.exp"
	G2Exp     Op = "g2.exp"
	GTExp     Op = "gt.exp"
	G1Mul     Op = "g1.mul"
	G2Mul     Op = "g2.mul"
	GTMul     Op = "gt.mul"
	GTInv     Op = "gt.inv"
	Pairing   Op = "pairing"
	HashToG   Op = "hash-to-group"
	BytesSent Op = "bytes.sent"
	ScalarOp  Op = "scalar.op"
)

// Counter accumulates operation counts. It is safe for concurrent use.
// The zero value is ready to use; a nil Counter silently ignores all
// operations.
type Counter struct {
	mu     sync.Mutex
	counts map[Op]int64
}

// New returns an empty counter.
func New() *Counter { return &Counter{counts: make(map[Op]int64)} }

// Add records n occurrences of op. Safe on a nil receiver.
func (c *Counter) Add(op Op, n int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.counts == nil {
		c.counts = make(map[Op]int64)
	}
	c.counts[op] += n
}

// Get returns the count for op. Safe on a nil receiver.
func (c *Counter) Get(op Op) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[op]
}

// Reset zeroes all counts. Safe on a nil receiver.
func (c *Counter) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counts = make(map[Op]int64)
}

// Snapshot returns a copy of all non-zero counts. Safe on a nil receiver.
func (c *Counter) Snapshot() map[Op]int64 {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[Op]int64, len(c.counts))
	for k, v := range c.counts {
		if v != 0 {
			out[k] = v
		}
	}
	return out
}

// Diff returns the per-op difference between this counter and an earlier
// snapshot.
func Diff(later, earlier map[Op]int64) map[Op]int64 {
	out := make(map[Op]int64)
	for k, v := range later {
		if d := v - earlier[k]; d != 0 {
			out[k] = d
		}
	}
	for k, v := range earlier {
		if _, seen := later[k]; !seen && v != 0 {
			out[k] = -v
		}
	}
	return out
}

// String renders the counter deterministically (sorted by op name).
func (c *Counter) String() string {
	snap := c.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%d", k, snap[Op(k)])
	}
	return b.String()
}
