package bb

import (
	"fmt"

	"repro/internal/bn254"
	"repro/internal/wire"
)

// Bytes returns the canonical ciphertext encoding
// (ID, A, B_1..B_n, C), used both on the wire and as the message the
// CHK transform signs.
func (c *Ciphertext) Bytes() []byte {
	var b wire.Builder
	b.AppendBytes([]byte(c.ID))
	b.AppendRaw(c.A.Bytes())
	b.AppendUint32(uint32(len(c.B)))
	for _, bj := range c.B {
		b.AppendRaw(bj.Bytes())
	}
	b.AppendRaw(c.C.Bytes())
	return b.Bytes()
}

// CiphertextFromBytes decodes a ciphertext encoded by Bytes.
func CiphertextFromBytes(raw []byte) (*Ciphertext, error) {
	p := wire.NewParser(raw)
	id, err := p.Bytes()
	if err != nil {
		return nil, fmt.Errorf("bb: decoding ID: %w", err)
	}
	aRaw, err := p.Raw(bn254.G1Bytes)
	if err != nil {
		return nil, err
	}
	a, err := new(bn254.G1).SetBytes(aRaw)
	if err != nil {
		return nil, fmt.Errorf("bb: decoding A: %w", err)
	}
	n, err := p.Uint32()
	if err != nil {
		return nil, err
	}
	if n > 4096 {
		return nil, fmt.Errorf("bb: implausible identity dimension %d", n)
	}
	bs := make([]*bn254.G2, n)
	for j := range bs {
		bRaw, err := p.Raw(bn254.G2Bytes)
		if err != nil {
			return nil, err
		}
		bj, err := new(bn254.G2).SetBytes(bRaw)
		if err != nil {
			return nil, fmt.Errorf("bb: decoding B_%d: %w", j, err)
		}
		bs[j] = bj
	}
	cRaw, err := p.Raw(bn254.GTBytes)
	if err != nil {
		return nil, err
	}
	cElem, err := new(bn254.GT).SetBytes(cRaw)
	if err != nil {
		return nil, fmt.Errorf("bb: decoding C: %w", err)
	}
	if !p.Done() {
		return nil, fmt.Errorf("bb: %d trailing bytes in ciphertext", p.Remaining())
	}
	return &Ciphertext{ID: string(id), A: a, B: bs, C: cElem}, nil
}
