// Package bb implements the single-processor Boneh–Boyen-style identity
// based encryption scheme exactly as the paper builds on it (§4.1–4.2,
// citing [5]): bit-wise identity hashing against a public matrix
// U ∈ G2^{n×2}, master secret msk = g2^α, identity keys
//
//	sk_ID = (g^{r_1},…,g^{r_n},  M = g2^α · Π_j u_{j,b_j}^{r_j})
//
// with H(ID) = (b_1,…,b_n) ∈ {0,1}ⁿ. It serves two roles: the substrate
// DLRIBE distributes (package dibe), and the non-leakage-resilient
// single-processor baseline of experiment E1/E7.
package bb

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"repro/internal/bn254"
	"repro/internal/group"
	"repro/internal/opcount"
	"repro/internal/scalar"
)

// DefaultNID is the default identity-hash dimension in bits.
const DefaultNID = 32

// PublicKey holds the BB public parameters.
type PublicKey struct {
	// NID is the identity-hash dimension n.
	NID int
	// E is e(g1, g2) with g1 = g^α.
	E *bn254.GT
	// G2Base is the public g2.
	G2Base *bn254.G2
	// U is the n×2 matrix of public G2 elements.
	U [][2]*bn254.G2
}

// MasterKey is msk = g2^α.
type MasterKey struct {
	MSK *bn254.G2
}

// IdentityKey is sk_ID.
type IdentityKey struct {
	ID string
	// R holds g^{r_j} ∈ G1.
	R []*bn254.G1
	// M is g2^α · Π u_{j,b_j}^{r_j} ∈ G2.
	M *bn254.G2

	// mTab caches the precomputed Miller-loop line table for M — the
	// only fixed G2 argument in Decrypt's pairing product. Built once
	// per key on first decryption.
	mOnce sync.Once
	mTab  *bn254.PairingTable
}

// mTable returns the cached line table for M.
func (sk *IdentityKey) mTable() *bn254.PairingTable {
	sk.mOnce.Do(func() { sk.mTab = bn254.NewPairingTable(sk.M) })
	return sk.mTab
}

// Ciphertext encrypts m ∈ GT to an identity:
// (A, B_1..B_n, C) = (g^t, {u_{j,b_j}^t}, m·E^t).
type Ciphertext struct {
	ID string
	A  *bn254.G1
	B  []*bn254.G2
	C  *bn254.GT
}

// HashID expands an identity string to n bits b_1..b_n.
func HashID(id string, n int) []int {
	bits := make([]int, n)
	var block [32]byte
	for j := 0; j < n; j++ {
		if j%256 == 0 {
			h := sha256.New()
			var idx [4]byte
			binary.BigEndian.PutUint32(idx[:], uint32(j/256))
			h.Write(idx[:])
			h.Write([]byte(id))
			copy(block[:], h.Sum(nil))
		}
		bit := (block[(j%256)/8] >> (j % 8)) & 1
		bits[j] = int(bit)
	}
	return bits
}

// Gen generates BB public parameters and the master key.
func Gen(rng io.Reader, nID int, ctr *opcount.Counter) (*PublicKey, *MasterKey, error) {
	if nID < 1 {
		return nil, nil, fmt.Errorf("bb: identity dimension must be ≥ 1, got %d", nID)
	}
	g2a := group.G2{Ctr: ctr}
	alpha, err := scalar.Rand(rng)
	if err != nil {
		return nil, nil, err
	}
	g1 := new(bn254.G1).ScalarBaseMult(alpha)
	ctr.Add(opcount.G1Exp, 1)
	g2pt, err := g2a.Rand(rng)
	if err != nil {
		return nil, nil, err
	}
	e := group.Pair(ctr, g1, g2pt)
	msk := g2a.Exp(g2pt, alpha)

	u := make([][2]*bn254.G2, nID)
	for j := range u {
		for b := 0; b < 2; b++ {
			el, err := g2a.Rand(rng)
			if err != nil {
				return nil, nil, err
			}
			u[j][b] = el
		}
	}
	return &PublicKey{NID: nID, E: e, G2Base: g2pt, U: u}, &MasterKey{MSK: msk}, nil
}

// Extract derives the identity key for id.
func Extract(rng io.Reader, pk *PublicKey, mk *MasterKey, id string, ctr *opcount.Counter) (*IdentityKey, error) {
	bits := HashID(id, pk.NID)
	g2a := group.G2{Ctr: ctr}
	rs, err := scalar.RandVector(rng, pk.NID)
	if err != nil {
		return nil, err
	}
	rPts := make([]*bn254.G1, pk.NID)
	m := new(bn254.G2).Set(mk.MSK)
	for j := 0; j < pk.NID; j++ {
		rPts[j] = new(bn254.G1).ScalarBaseMult(rs[j])
		ctr.Add(opcount.G1Exp, 1)
		m = g2a.Mul(m, g2a.Exp(pk.U[j][bits[j]], rs[j]))
	}
	return &IdentityKey{ID: id, R: rPts, M: m}, nil
}

// Encrypt encrypts m ∈ GT to identity id.
func Encrypt(rng io.Reader, pk *PublicKey, id string, m *bn254.GT, ctr *opcount.Counter) (*Ciphertext, error) {
	bits := HashID(id, pk.NID)
	g2a := group.G2{Ctr: ctr}
	t, err := scalar.Rand(rng)
	if err != nil {
		return nil, err
	}
	a := new(bn254.G1).ScalarBaseMult(t)
	ctr.Add(opcount.G1Exp, 1)
	bs := make([]*bn254.G2, pk.NID)
	for j := 0; j < pk.NID; j++ {
		bs[j] = g2a.Exp(pk.U[j][bits[j]], t)
	}
	c := new(bn254.GT).Exp(pk.E, t)
	ctr.Add(opcount.GTExp, 1)
	c.Mul(c, m)
	ctr.Add(opcount.GTMul, 1)
	return &Ciphertext{ID: id, A: a, B: bs, C: c}, nil
}

// Decrypt recovers m = C · Π e(R_j, B_j) / e(A, M).
func Decrypt(pk *PublicKey, sk *IdentityKey, ct *Ciphertext, ctr *opcount.Counter) (*bn254.GT, error) {
	if sk.ID != ct.ID {
		return nil, fmt.Errorf("bb: key for %q cannot decrypt ciphertext for %q", sk.ID, ct.ID)
	}
	if len(ct.B) != pk.NID || len(sk.R) != pk.NID {
		return nil, fmt.Errorf("bb: dimension mismatch")
	}
	// One mixed multi-pairing evaluates Π e(R_j, B_j) · e(A, M)⁻¹ with a
	// shared Miller accumulator and a single final exponentiation; the
	// division folds into a negated G1 point. The B_j are fresh per
	// ciphertext (cold Miller loops) but M is fixed per identity key, so
	// its leg replays the key's precomputed line table.
	ps := make([]*bn254.G1, 0, pk.NID)
	qs := make([]*bn254.G2, 0, pk.NID)
	for j := 0; j < pk.NID; j++ {
		ps = append(ps, sk.R[j])
		qs = append(qs, ct.B[j])
	}
	negA := new(bn254.G1).Neg(ct.A)
	prod := group.MultiPairMixed(ctr, ps, qs,
		[]*bn254.G1{negA}, []*bn254.PairingTable{sk.mTable()})
	acc := new(bn254.GT).Mul(ct.C, prod)
	ctr.Add(opcount.GTMul, int64(pk.NID)+2)
	return acc, nil
}

// DerivedPKE is the standard PKE obtained by fixing a single identity —
// the plain (non-leakage-resilient) single-processor baseline of
// experiment E1.
type DerivedPKE struct {
	PK *PublicKey
	SK *IdentityKey
	ID string
}

// NewDerivedPKE fixes the identity "pke" and extracts its key.
func NewDerivedPKE(rng io.Reader, nID int, ctr *opcount.Counter) (*DerivedPKE, error) {
	pk, mk, err := Gen(rng, nID, ctr)
	if err != nil {
		return nil, err
	}
	const id = "pke"
	sk, err := Extract(rng, pk, mk, id, ctr)
	if err != nil {
		return nil, err
	}
	return &DerivedPKE{PK: pk, SK: sk, ID: id}, nil
}

// Encrypt encrypts to the fixed identity.
func (d *DerivedPKE) Encrypt(rng io.Reader, m *bn254.GT, ctr *opcount.Counter) (*Ciphertext, error) {
	return Encrypt(rng, d.PK, d.ID, m, ctr)
}

// Decrypt decrypts with the fixed identity key.
func (d *DerivedPKE) Decrypt(ct *Ciphertext, ctr *opcount.Counter) (*bn254.GT, error) {
	return Decrypt(d.PK, d.SK, ct, ctr)
}

// RandMessage samples a random GT plaintext.
func RandMessage(rng io.Reader, pk *PublicKey) (*bn254.GT, error) {
	u, err := scalar.Rand(rng)
	if err != nil {
		return nil, err
	}
	return new(bn254.GT).Exp(pk.E, u), nil
}

// CiphertextSize returns the encoded size in bytes (experiment E1's
// ciphertext-size column).
func (c *Ciphertext) CiphertextSize() int {
	return bn254.G1Bytes + len(c.B)*bn254.G2Bytes + bn254.GTBytes
}
