package bb

import (
	"crypto/rand"
	"testing"

	"repro/internal/opcount"
)

const testNID = 8

func TestEncryptDecryptRoundTrip(t *testing.T) {
	pk, mk, err := Gen(rand.Reader, testNID, nil)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := Extract(rand.Reader, pk, mk, "alice", nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := RandMessage(rand.Reader, pk)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := Encrypt(rand.Reader, pk, "alice", m, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decrypt(pk, sk, ct, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("BB decryption failed")
	}
}

func TestWrongIdentityRejected(t *testing.T) {
	pk, mk, err := Gen(rand.Reader, testNID, nil)
	if err != nil {
		t.Fatal(err)
	}
	skBob, err := Extract(rand.Reader, pk, mk, "bob", nil)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := RandMessage(rand.Reader, pk)
	ct, _ := Encrypt(rand.Reader, pk, "alice", m, nil)
	if _, err := Decrypt(pk, skBob, ct, nil); err == nil {
		t.Fatal("bob's key accepted alice's ciphertext")
	}
}

func TestWrongKeyWrongMessage(t *testing.T) {
	// Even with a matching ID string, a key extracted under a different
	// master must not decrypt.
	pk, mk, err := Gen(rand.Reader, testNID, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, mk2, err := Gen(rand.Reader, testNID, nil)
	if err != nil {
		t.Fatal(err)
	}
	skForged, err := Extract(rand.Reader, pk, mk2, "alice", nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = mk
	m, _ := RandMessage(rand.Reader, pk)
	ct, _ := Encrypt(rand.Reader, pk, "alice", m, nil)
	got, err := Decrypt(pk, skForged, ct, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Equal(m) {
		t.Fatal("forged key decrypted correctly (vanishing probability)")
	}
}

func TestHashIDDeterministicAndBinary(t *testing.T) {
	a := HashID("alice", 64)
	b := HashID("alice", 64)
	c := HashID("bob", 64)
	if len(a) != 64 {
		t.Fatalf("length %d", len(a))
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != 0 && a[i] != 1 {
			t.Fatal("non-binary hash output")
		}
	}
	if !same {
		t.Fatal("HashID not deterministic")
	}
	diff := 0
	for i := range a {
		if a[i] != c[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("HashID identical for distinct identities")
	}
}

func TestDerivedPKE(t *testing.T) {
	d, err := NewDerivedPKE(rand.Reader, testNID, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := RandMessage(rand.Reader, d.PK)
	ct, err := d.Encrypt(rand.Reader, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Decrypt(ct, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("derived PKE round trip failed")
	}
}

func TestOperationCounts(t *testing.T) {
	// BB encryption costs n+1 exponentiations in the curve groups plus
	// one in GT — the ω(n) shape experiment E1 contrasts DLR against.
	pk, _, err := Gen(rand.Reader, testNID, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctr := opcount.New()
	m, _ := RandMessage(rand.Reader, pk)
	if _, err := Encrypt(rand.Reader, pk, "alice", m, ctr); err != nil {
		t.Fatal(err)
	}
	wantExp := int64(testNID + 2) // 1 G1 + n G2 + 1 GT
	gotExp := ctr.Get(opcount.G1Exp) + ctr.Get(opcount.G2Exp) + ctr.Get(opcount.GTExp)
	if gotExp != wantExp {
		t.Fatalf("encryption used %d exps, want %d", gotExp, wantExp)
	}
}

func TestGenValidates(t *testing.T) {
	if _, _, err := Gen(rand.Reader, 0, nil); err == nil {
		t.Fatal("accepted nID = 0")
	}
}

func TestCiphertextSize(t *testing.T) {
	pk, _, _ := Gen(rand.Reader, testNID, nil)
	m, _ := RandMessage(rand.Reader, pk)
	ct, _ := Encrypt(rand.Reader, pk, "x", m, nil)
	want := 64 + testNID*128 + 384
	if got := ct.CiphertextSize(); got != want {
		t.Fatalf("ciphertext size %d, want %d", got, want)
	}
}
