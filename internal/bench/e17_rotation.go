package bench

import (
	"crypto/rand"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/bn254"
	"repro/internal/device"
	"repro/internal/dlr"
	"repro/internal/server"
)

// E17 measures zero-stall rotation: what an epoch boundary costs with
// the cold path (RunRef + BeginPeriod serialized against serving,
// every table rebuilt by the first post-rotation batch) against the
// pipelined path (next-epoch state staged and tables prewarmed
// concurrently with serving, only the commit round trip on the
// serving loop). Two layers are measured:
//
//   - dlr layer: the first post-rotation batch's latency against the
//     steady-state warm batch, and the rotation's serving stall (full
//     cold rotation vs commit-only).
//   - server layer: sustained closed-loop load over TCP while the
//     RefreshEvery scheduler rotates on a cadence — the p99 across
//     epoch boundaries and the per-rotation stall gauges.
//
// Acceptance criterion: the prewarmed first-post-rotation batch lands
// within 25% of steady state, where the cold path spikes by a
// multiple; the pipelined serving stall is the commit round trip only.

// e17Batch is the batch size of the dlr-layer rotation measurements.
const e17Batch = 8

// e17Rounds is how many rotations each dlr-layer side averages over.
const e17Rounds = 4

// e17Instance builds one DLR instance with an encrypted test batch.
func e17Instance() (*dlr.P1, *dlr.P2, []*dlr.Ciphertext, []*bn254.GT, error) {
	pk, p1, p2, err := dlr.Gen(rand.Reader, e13Params())
	if err != nil {
		return nil, nil, nil, nil, err
	}
	cs := make([]*dlr.Ciphertext, e17Batch)
	ms := make([]*bn254.GT, e17Batch)
	for i := range cs {
		if ms[i], err = dlr.RandMessage(rand.Reader, pk); err != nil {
			return nil, nil, nil, nil, err
		}
		if cs[i], err = dlr.Encrypt(rand.Reader, pk, ms[i], nil); err != nil {
			return nil, nil, nil, nil, err
		}
	}
	return p1, p2, cs, ms, nil
}

// RotationPoint is the dlr-layer E17 measurement: per-request latency
// of the steady-state batch and of the first batch after each rotation
// path, plus the serving stall each rotation path imposes.
type RotationPoint struct {
	// SteadyNs is the warm (in-session) batch, per request.
	SteadyNs float64
	// ColdFirstNs / WarmFirstNs are the first post-rotation batch per
	// request: after a cold rotation (tables rebuilt) and after a
	// pipelined rotation (tables prewarmed at commit).
	ColdFirstNs float64
	WarmFirstNs float64
	// ColdStallNs is the serving stall of a cold rotation (RunRef +
	// BeginPeriod); CommitStallNs the pipelined commit's (the only part
	// on the serving path); StageNs the staging work the pipeline moved
	// off it.
	ColdStallNs   float64
	CommitStallNs float64
	StageNs       float64
}

// e17Decrypt runs one batch and verifies the plaintexts.
func e17Decrypt(p1 *dlr.P1, p2 *dlr.P2, cs []*dlr.Ciphertext, ms []*bn254.GT) error {
	got, _, err := dlr.DecryptBatch(p1, p2, cs)
	if err != nil {
		return err
	}
	for i := range ms {
		if !got[i].Equal(ms[i]) {
			return fmt.Errorf("bench: E17 batch decrypted wrong at %d", i)
		}
	}
	return nil
}

// E17RotationPoint measures the dlr-layer rotation costs, each side
// averaged over e17Rounds rotations.
func E17RotationPoint() (*RotationPoint, error) {
	p1, p2, cs, ms, err := e17Instance()
	if err != nil {
		return nil, err
	}
	if err := e17Decrypt(p1, p2, cs, ms); err != nil { // install the session
		return nil, err
	}
	pt := &RotationPoint{}
	pt.SteadyNs = timeN(func() {
		if err := e17Decrypt(p1, p2, cs, ms); err != nil {
			panic(err)
		}
	}, e17Rounds) / e17Batch

	// Cold rotations: the serialized path, then the rebuild-paying
	// first batch.
	var coldStall, coldFirst time.Duration
	for r := 0; r < e17Rounds; r++ {
		start := time.Now()
		if _, err := dlr.Refresh(rand.Reader, p1, p2); err != nil {
			return nil, err
		}
		if err := p1.BeginPeriod(rand.Reader); err != nil {
			return nil, err
		}
		coldStall += time.Since(start)
		start = time.Now()
		if err := e17Decrypt(p1, p2, cs, ms); err != nil {
			return nil, err
		}
		coldFirst += time.Since(start)
	}
	pt.ColdStallNs = float64(coldStall.Nanoseconds()) / e17Rounds
	pt.ColdFirstNs = float64(coldFirst.Nanoseconds()) / (e17Rounds * e17Batch)

	// Pipelined rotations: staging off the serving path, commit on it,
	// then the prewarmed first batch.
	var stage, commit, warmFirst time.Duration
	for r := 0; r < e17Rounds; r++ {
		start := time.Now()
		st, err := p1.StageRefresh(rand.Reader)
		if err != nil {
			return nil, err
		}
		stage += time.Since(start)
		start = time.Now()
		_, _, err = device.Run(
			func(ch device.Channel) error { return p1.CommitRefresh(rand.Reader, ch, st) },
			p2.Serve,
		)
		if err != nil {
			st.Abandon()
			return nil, err
		}
		commit += time.Since(start)
		start = time.Now()
		if err := e17Decrypt(p1, p2, cs, ms); err != nil {
			return nil, err
		}
		warmFirst += time.Since(start)
	}
	pt.StageNs = float64(stage.Nanoseconds()) / e17Rounds
	pt.CommitStallNs = float64(commit.Nanoseconds()) / e17Rounds
	pt.WarmFirstNs = float64(warmFirst.Nanoseconds()) / (e17Rounds * e17Batch)
	return pt, nil
}

// RotationServerPoint is one server-level rotation-under-load run.
type RotationServerPoint struct {
	Mode      string // "pipelined" or "cold"
	Cadence   time.Duration
	Requests  int
	ReqPerSec float64
	P50, P99  time.Duration
	Rotations uint64
	StallMean time.Duration
}

// E17ServerRun drives sustained closed-loop load against a
// batch-window server whose RefreshEvery scheduler rotates the tenant
// on the given cadence, and reports the latency the clients saw across
// the epoch boundaries together with the rotation gauges. cold selects
// the serialized rotation path. A zero cadence disables rotation — the
// steady-state reference.
func E17ServerRun(cadence time.Duration, cold bool, clients, perClient int) (*RotationServerPoint, error) {
	pk, p1, p2, err := dlr.Gen(rand.Reader, e13Params())
	if err != nil {
		return nil, err
	}
	s := server.New(server.Config{
		BatchSize:    8,
		Window:       2 * time.Millisecond,
		CacheCap:     4,
		RefreshEvery: cadence,
		ColdRefresh:  cold,
	})
	if err := s.RegisterLocal("e17", p1, p2); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()
	defer func() {
		s.Shutdown()
		<-serveDone
	}()

	total := clients * perClient
	msgs := make([]*bn254.GT, total)
	cts := make([]*dlr.Ciphertext, total)
	for i := range cts {
		if msgs[i], err = dlr.RandMessage(rand.Reader, pk); err != nil {
			return nil, err
		}
		if cts[i], err = dlr.Encrypt(rand.Reader, pk, msgs[i], nil); err != nil {
			return nil, err
		}
	}
	conns := make([]*server.Client, clients)
	for i := range conns {
		if conns[i], err = server.Dial(ln.Addr().String()); err != nil {
			return nil, err
		}
		defer conns[i].Close()
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	start := time.Now()
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				i := cl*perClient + k
				got, err := conns[cl].Decrypt("e17", cts[i])
				if err == nil && !got.Equal(msgs[i]) {
					err = fmt.Errorf("bench: E17 client %d request %d decrypted wrong across rotation", cl, k)
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	wall := time.Since(start)
	if firstErr != nil {
		return nil, firstErr
	}

	mode := "pipelined"
	if cold {
		mode = "cold"
	}
	snap := s.Metrics().Snapshot()
	return &RotationServerPoint{
		Mode:      mode,
		Cadence:   cadence,
		Requests:  total,
		ReqPerSec: float64(total) / wall.Seconds(),
		P50:       snap.P50,
		P99:       snap.P99,
		Rotations: snap.RotationsPrewarmed + snap.RotationsCold,
		StallMean: snap.RotationStallMean,
	}, nil
}

// E17Measurements produces the baseline-JSON rows for the rotation
// pipeline: the first-post-rotation batch (cold rebuild vs prewarmed)
// and the serving stall (full cold rotation vs commit-only).
func E17Measurements() ([]FastPathMeasurement, error) {
	pt, err := E17RotationPoint()
	if err != nil {
		return nil, err
	}
	return []FastPathMeasurement{
		{
			Op:          fmt.Sprintf("DLR.DecBatch(%d) first post-rotation (cold→prewarmed, amortized)", e17Batch),
			Iters:       e17Rounds,
			RefNsPerOp:  pt.ColdFirstNs,
			FastNsPerOp: pt.WarmFirstNs,
			Speedup:     pt.ColdFirstNs / pt.WarmFirstNs,
		},
		{
			Op:          "DLR rotation serving stall (cold→pipelined commit)",
			Iters:       e17Rounds,
			RefNsPerOp:  pt.ColdStallNs,
			FastNsPerOp: pt.CommitStallNs,
			Speedup:     pt.ColdStallNs / pt.CommitStallNs,
		},
	}, nil
}

// E17Rotation regenerates the E17 table: the dlr-layer rotation costs
// and the server-level rotation-under-load cadence sweep.
func E17Rotation() (*Table, error) {
	pt, err := E17RotationPoint()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E17",
		Title:  "zero-stall rotation: pipelined refresh with next-epoch prewarming",
		Header: []string{"measurement", "cold", "pipelined", "improvement"},
	}
	steady := time.Duration(pt.SteadyNs)
	coldFirst := time.Duration(pt.ColdFirstNs)
	warmFirst := time.Duration(pt.WarmFirstNs)
	t.Rows = append(t.Rows,
		[]string{
			fmt.Sprintf("first post-rotation batch(%d), per request", e17Batch),
			fmt.Sprintf("%s (%.1fx steady)", ms(coldFirst), pt.ColdFirstNs/pt.SteadyNs),
			fmt.Sprintf("%s (%.2fx steady)", ms(warmFirst), pt.WarmFirstNs/pt.SteadyNs),
			fmt.Sprintf("%.1fx", pt.ColdFirstNs/pt.WarmFirstNs),
		},
		[]string{
			"rotation serving stall",
			ms(time.Duration(pt.ColdStallNs)),
			ms(time.Duration(pt.CommitStallNs)),
			fmt.Sprintf("%.1fx", pt.ColdStallNs/pt.CommitStallNs),
		},
	)
	t.Notes = append(t.Notes,
		fmt.Sprintf("steady-state warm batch: %s per request; prewarm staging (off the serving path): %s per rotation",
			ms(steady), ms(time.Duration(pt.StageNs))),
		"criterion: the prewarmed first-post-rotation batch lands within 25% of steady state; the cold path pays the full table rebuild",
	)

	// Server-level: rotation under sustained load, steady reference
	// then both paths at two cadences.
	const clients, perClient = 8, 8
	ref, err := E17ServerRun(0, false, clients, perClient)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"server steady (no rotation): %.1f req/s, p50 %s, p99 %s (%d clients)",
		ref.ReqPerSec, ms(ref.P50), ms(ref.P99), clients))
	for _, cadence := range []time.Duration{100 * time.Millisecond, 30 * time.Millisecond} {
		for _, cold := range []bool{true, false} {
			pt, err := E17ServerRun(cadence, cold, clients, perClient)
			if err != nil {
				return nil, err
			}
			t.Notes = append(t.Notes, fmt.Sprintf(
				"server rotate-every %s (%s): %.1f req/s, p99 %s, %d rotation(s), mean stall %s",
				cadence, pt.Mode, pt.ReqPerSec, ms(pt.P99), pt.Rotations, ms(pt.StallMean)))
		}
	}
	return t, nil
}
