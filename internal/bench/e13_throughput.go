package bench

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/bn254"
	"repro/internal/cache"
	"repro/internal/device"
	"repro/internal/dlr"
	"repro/internal/ff"
	"repro/internal/group"
	"repro/internal/params"
	"repro/internal/scalar"
)

// E13 measures the throughput tier: lazy-reduction tower arithmetic
// against the fully reducing twins, Pippenger bucket multi-
// exponentiation against the Straus tier at the E13 reference size of
// 64 terms, and the batched decryption pipeline (RunDecBatch) against
// the per-request protocol. Acceptance criteria: MultiExp(64) ≥ 1.5×
// over Straus and the tower-mul-bound operations ≥ 1.2× over their
// reducing twins.

// e13Params are the scheme parameters the decryption-throughput
// measurements run at (n = 40, λ = 128 → κ = 2, ℓ = 14) — small enough
// for the harness, protocol-shaped enough that the (ℓ+1)(κ+1)-pairing
// per-request cost is visible.
func e13Params() params.Params { return params.MustNew(40, 128) }

// e13BatchSize is the batch the amortized decryption measurement and
// the pipeline curve use.
const e13BatchSize = 32

func e13Ops() ([]fpOp, error) {
	const n = 64
	ks := make([]*big.Int, n)
	g1s := make([]*bn254.G1, n)
	g2s := make([]*bn254.G2, n)
	gts := make([]*bn254.GT, n)
	gtGen := bn254.GTGenerator()
	for i := 0; i < n; i++ {
		k, err := scalar.Rand(rand.Reader)
		if err != nil {
			return nil, err
		}
		ks[i] = k
		if g1s[i], _, err = bn254.RandG1(rand.Reader); err != nil {
			return nil, err
		}
		if g2s[i], _, err = bn254.RandG2(rand.Reader); err != nil {
			return nil, err
		}
		gts[i] = new(bn254.GT).Exp(gtGen, k)
	}

	x2, err := ff.RandFp2(rand.Reader)
	if err != nil {
		return nil, err
	}
	y2, err := ff.RandFp2(rand.Reader)
	if err != nil {
		return nil, err
	}
	x6, err := ff.RandFp6(rand.Reader)
	if err != nil {
		return nil, err
	}
	y6, err := ff.RandFp6(rand.Reader)
	if err != nil {
		return nil, err
	}
	var z2 ff.Fp2
	var z6 ff.Fp6

	return []fpOp{
		{
			name: fmt.Sprintf("MultiExp(%d)-G1 (Straus→Pippenger)", n), iters: 5,
			ref:  func() { bn254.G1MultiScalarMult(g1s, ks) },
			fast: func() { bn254.G1MultiExpPippenger(g1s, ks) },
		},
		{
			name: fmt.Sprintf("MultiExp(%d)-G2 (Straus→Pippenger)", n), iters: 3,
			ref:  func() { bn254.G2MultiScalarMult(g2s, ks) },
			fast: func() { bn254.G2MultiExpPippenger(g2s, ks) },
		},
		{
			name: fmt.Sprintf("ProdExp-GT(%d) (naive→bucket)", n), iters: 3,
			ref:  func() { group.ProdExpReference[*bn254.GT](group.GT{}, gts, ks) },
			fast: func() { group.ProdExp[*bn254.GT](group.GT{}, gts, ks) },
		},
		{
			name: "Fp2.Mul (reducing→lazy)", iters: 200000,
			ref:  func() { ff.Fp2MulGeneric(&z2, x2, y2) },
			fast: func() { z2.Mul(x2, y2) },
		},
		{
			name: "Fp6.Mul (reducing→lazy)", iters: 30000,
			ref:  func() { ff.Fp6MulGeneric(&z6, x6, y6) },
			fast: func() { z6.Mul(x6, y6) },
		},
	}, nil
}

// decBatchMeasurement times one full per-request decryption protocol
// run against the amortized per-request cost of a RunDecBatch of
// e13BatchSize, on a fresh DLR instance.
func decBatchMeasurement() (FastPathMeasurement, error) {
	var zero FastPathMeasurement
	pk, p1, p2, err := dlr.Gen(rand.Reader, e13Params())
	if err != nil {
		return zero, err
	}
	cs := make([]*dlr.Ciphertext, e13BatchSize)
	for i := range cs {
		m, err := dlr.RandMessage(rand.Reader, pk)
		if err != nil {
			return zero, err
		}
		if cs[i], err = dlr.Encrypt(rand.Reader, pk, m, nil); err != nil {
			return zero, err
		}
	}
	refFn := func() {
		if _, _, err := dlr.Decrypt(rand.Reader, p1, p2, cs[0]); err != nil {
			panic(err)
		}
	}
	fastFn := func() {
		if _, _, err := dlr.DecryptBatch(p1, p2, cs); err != nil {
			panic(err)
		}
	}
	refFn() // warm the transport tables
	const refIters, fastIters = 3, 2
	refNs := timeN(refFn, refIters)
	fastNs := timeN(fastFn, fastIters) / e13BatchSize
	refAllocs, refBytes := memN(refFn, refIters)
	fastAllocs, fastBytes := memN(fastFn, fastIters)
	return FastPathMeasurement{
		Op:              fmt.Sprintf("DLR.Dec (per-request→batch%d, amortized)", e13BatchSize),
		Iters:           refIters,
		RefNsPerOp:      refNs,
		FastNsPerOp:     fastNs,
		Speedup:         refNs / fastNs,
		RefAllocsPerOp:  refAllocs,
		FastAllocsPerOp: fastAllocs / e13BatchSize,
		RefBytesPerOp:   refBytes,
		FastBytesPerOp:  fastBytes / e13BatchSize,
	}, nil
}

// E13Measurements times the throughput-tier operations against their
// previous-tier twins — the data behind the E13 table and the
// throughput rows of bench_baseline.json.
func E13Measurements() ([]FastPathMeasurement, error) {
	ops, err := e13Ops()
	if err != nil {
		return nil, err
	}
	for _, op := range ops {
		op.ref()
		op.fast()
	}
	out := measureOps(ops)
	dec, err := decBatchMeasurement()
	if err != nil {
		return nil, err
	}
	return append(out, dec), nil
}

// PipelinePoint is one point of the batched-decryption worker curve,
// including the GC-pressure metrics behind E14: what the sustained
// pipeline allocates per request and what the collector charged for it
// over the run.
type PipelinePoint struct {
	Workers   int
	Requests  int
	Batch     int
	ReqPerSec float64
	P50, P99  time.Duration
	// AllocsPerReq and BytesPerReq are the serving-phase heap traffic
	// (Mallocs/TotalAlloc deltas) divided by Requests; setup (key
	// generation, encryption) is excluded.
	AllocsPerReq float64
	BytesPerReq  float64
	// GCCycles and GCPause are the collections the serving phase
	// triggered and their cumulative stop-the-world pause.
	GCCycles int
	GCPause  time.Duration
	// Cache effectiveness over the serving phase (zero value when the
	// pipeline ran uncached).
	CacheHits      uint64
	CacheMisses    uint64
	CacheEvictions uint64
	CacheHitRate   float64
}

// PipelineConfig shapes one DecPipelineCfg run.
type PipelineConfig struct {
	// Workers is the per-shard worker-pool size: each worker owns its
	// own P1↔P2 channel pair per tenant and pulls batches from the
	// shared queue.
	Workers int
	// Requests and Batch: Requests ciphertexts total, served Batch at a
	// time.
	Requests int
	Batch    int
	// Tenants is how many independent DLR instances (key shares) the
	// request stream round-robins over; 0 means 1.
	Tenants int
	// CacheCap, when positive, attaches a shared cache.New(CacheCap)
	// table cache to every tenant's P1 — the E15 hit-rate runs sweep
	// this against Tenants to show the capacity cliff.
	CacheCap int
}

// DecPipeline drives the batched decryption pipeline at the given
// concurrency for a single uncached tenant — the E13/E14 shape. See
// DecPipelineCfg for the multi-tenant, cache-attached variant.
func DecPipeline(workers, totalReqs, batch int) (*PipelinePoint, error) {
	return DecPipelineCfg(PipelineConfig{Workers: workers, Requests: totalReqs, Batch: batch})
}

// DecPipelineCfg drives the batched decryption pipeline: cfg.Workers
// goroutines pull batches of cfg.Batch ciphertexts from a shared queue
// until cfg.Requests requests have been served, round-robining over
// cfg.Tenants independent DLR instances. Every decrypted message is
// verified against the plaintext. Reported latency is per batch,
// attributed to each request in it (queue wait excluded — the driver is
// closed-loop, so queueing is an artifact of the offered load, not of
// the protocol).
func DecPipelineCfg(cfg PipelineConfig) (*PipelinePoint, error) {
	workers, totalReqs, batch := cfg.Workers, cfg.Requests, cfg.Batch
	tenants := cfg.Tenants
	if tenants < 1 {
		tenants = 1
	}
	if workers < 1 || batch < 1 || totalReqs < batch*tenants {
		return nil, fmt.Errorf("bench: bad pipeline shape workers=%d reqs=%d batch=%d tenants=%d",
			workers, totalReqs, batch, tenants)
	}
	var tabCache *cache.Cache
	if cfg.CacheCap > 0 {
		tabCache = cache.New(cfg.CacheCap)
	}

	type tenantState struct {
		p1   *dlr.P1
		p2   *dlr.P2
		msgs []*bn254.GT
		cs   []*dlr.Ciphertext
	}
	sts := make([]*tenantState, tenants)
	perTenant := totalReqs / tenants
	for ti := range sts {
		pk, p1, p2, err := dlr.Gen(rand.Reader, e13Params())
		if err != nil {
			return nil, err
		}
		if tabCache != nil {
			p1.AttachCache(tabCache, fmt.Sprintf("tenant-%d", ti))
		}
		n := perTenant
		if ti < totalReqs%tenants {
			n++
		}
		st := &tenantState{p1: p1, p2: p2,
			msgs: make([]*bn254.GT, n), cs: make([]*dlr.Ciphertext, n)}
		for i := range st.cs {
			if st.msgs[i], err = dlr.RandMessage(rand.Reader, pk); err != nil {
				return nil, err
			}
			if st.cs[i], err = dlr.Encrypt(rand.Reader, pk, st.msgs[i], nil); err != nil {
				return nil, err
			}
		}
		sts[ti] = st
	}

	// Interleave the tenants' batches so a small cache sees the worst
	// case (every consecutive batch a different tenant) rather than
	// tenant-sorted runs.
	type job struct{ tenant, lo, hi int }
	var jobList []job
	for lo := 0; ; lo += batch {
		appended := false
		for ti, st := range sts {
			if lo >= len(st.cs) {
				continue
			}
			hi := lo + batch
			if hi > len(st.cs) {
				hi = len(st.cs)
			}
			jobList = append(jobList, job{ti, lo, hi})
			appended = true
		}
		if !appended {
			break
		}
	}
	jobs := make(chan job, len(jobList))
	for _, j := range jobList {
		jobs <- j
	}
	close(jobs)

	var (
		mu        sync.Mutex
		latencies []time.Duration
		firstErr  error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	// Snapshot heap/GC state right before serving starts so the
	// reported pressure is the protocol's, not the setup's.
	runtime.GC()
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		// One channel pair per (worker, tenant): P2's ServeLoop exits
		// when its worker closes the P1 end.
		chs := make([]device.Channel, tenants)
		for ti, st := range sts {
			chP1, chP2 := device.NewLocalPair()
			go st.p2.ServeLoop(chP2)
			chs[ti] = chP1
		}
		wg.Add(1)
		go func(chs []device.Channel) {
			defer wg.Done()
			defer func() {
				for _, ch := range chs {
					ch.Close()
				}
			}()
			for j := range jobs {
				st := sts[j.tenant]
				t0 := time.Now()
				out, err := st.p1.RunDecBatch(chs[j.tenant], st.cs[j.lo:j.hi])
				lat := time.Since(t0)
				if err != nil {
					fail(err)
					return
				}
				for i, m := range out {
					if !m.Equal(st.msgs[j.lo+i]) {
						fail(fmt.Errorf("bench: pipeline decrypted request %d/%d wrong", j.tenant, j.lo+i))
						return
					}
				}
				mu.Lock()
				for range out {
					latencies = append(latencies, lat)
				}
				mu.Unlock()
			}
		}(chs)
	}
	wg.Wait()
	wall := time.Since(start)
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	if firstErr != nil {
		return nil, firstErr
	}
	sort.Slice(latencies, func(i, k int) bool { return latencies[i] < latencies[k] })
	pct := func(p float64) time.Duration {
		idx := int(p * float64(len(latencies)-1))
		return latencies[idx]
	}
	pt := &PipelinePoint{
		Workers:      workers,
		Requests:     totalReqs,
		Batch:        batch,
		ReqPerSec:    float64(totalReqs) / wall.Seconds(),
		P50:          pct(0.50),
		P99:          pct(0.99),
		AllocsPerReq: float64(memAfter.Mallocs-memBefore.Mallocs) / float64(totalReqs),
		BytesPerReq:  float64(memAfter.TotalAlloc-memBefore.TotalAlloc) / float64(totalReqs),
		GCCycles:     int(memAfter.NumGC - memBefore.NumGC),
		GCPause:      time.Duration(memAfter.PauseTotalNs - memBefore.PauseTotalNs),
	}
	if tabCache != nil {
		s := tabCache.Stats()
		pt.CacheHits, pt.CacheMisses, pt.CacheEvictions = s.Hits, s.Misses, s.Evictions
		pt.CacheHitRate = s.HitRate()
	}
	return pt, nil
}

// E13Throughput regenerates the throughput-tier speedup table and the
// worker curve of the batched decryption pipeline.
func E13Throughput() (*Table, error) {
	meas, err := E13Measurements()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E13",
		Title:  "throughput tier: lazy tower, Pippenger multi-exp, batched decryption",
		Header: []string{"operation", "before", "after", "speedup"},
	}
	for _, m := range meas {
		t.Rows = append(t.Rows, []string{
			m.Op,
			ms(time.Duration(m.RefNsPerOp)),
			ms(time.Duration(m.FastNsPerOp)),
			fmt.Sprintf("%.2fx", m.Speedup),
		})
	}
	for _, w := range []int{1, 2, 4} {
		pt, err := DecPipeline(w, 48, 12)
		if err != nil {
			return nil, err
		}
		t.Notes = append(t.Notes, fmt.Sprintf(
			"pipeline: %d worker(s) → %.1f req/s (batch=%d, p50 %s, p99 %s)",
			pt.Workers, pt.ReqPerSec, pt.Batch,
			ms(pt.P50), ms(pt.P99)))
	}
	t.Notes = append(t.Notes,
		"criterion: 64-term multi-exponentiation ≥ 1.5× over the Straus tier",
		"criterion: tower-multiplication-bound operations ≥ 1.2× over the reducing twins",
		fmt.Sprintf("worker curve measured at GOMAXPROCS=%d on %d CPU(s); on a single-core host the curve is flat and the batch amortization row above is the throughput win", runtime.GOMAXPROCS(0), runtime.NumCPU()),
		"lazy tower and Pippenger paths are differentially tested and fuzzed against their twins (lazy_test.go, pippenger_test.go, Fuzz*)",
	)
	return t, nil
}
