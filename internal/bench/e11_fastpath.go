package bench

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"runtime"
	"time"

	"repro/internal/bn254"
	"repro/internal/group"
	"repro/internal/hpske"
	"repro/internal/scalar"
)

// E11 measures the fast-path group arithmetic (windowed-NAF scalar
// multiplication, fixed-base tables, cyclotomic final exponentiation,
// multi-pairing with batched inversions, Straus multi-exponentiation)
// against the retained *Reference implementations. The acceptance
// criteria from the fast-path work: ≥2× on ScalarBaseMult (G1 and G2)
// and ≥1.3× on the κ-pairing HPSKE transport path.

// FastPathMeasurement is one reference-vs-fast timing pair.
type FastPathMeasurement struct {
	// Op names the operation (e.g. "G1.ScalarBaseMult").
	Op string `json:"op"`
	// Iters is how many evaluations each timing averaged over.
	Iters int `json:"iters"`
	// RefNsPerOp and FastNsPerOp are mean wall-clock ns per evaluation.
	RefNsPerOp  float64 `json:"ref_ns_per_op"`
	FastNsPerOp float64 `json:"fast_ns_per_op"`
	// Speedup is RefNsPerOp / FastNsPerOp.
	Speedup float64 `json:"speedup"`
	// RefAllocsPerOp and FastAllocsPerOp are mean heap allocations per
	// evaluation, measured in a separate (untimed) pass. The smoke gate
	// checks FastAllocsPerOp alongside FastNsPerOp so an accidental
	// allocation regression in a hot loop fails CI even when the box is
	// too noisy for the timing check to catch it.
	RefAllocsPerOp  float64 `json:"ref_allocs_per_op"`
	FastAllocsPerOp float64 `json:"fast_allocs_per_op"`
	// RefBytesPerOp and FastBytesPerOp are mean heap bytes per
	// evaluation (TotalAlloc delta), from the same pass as the
	// allocation counts. They catch the regression shape counts miss: a
	// path that allocates the same number of objects but much larger
	// ones (e.g. a scratch slice sized per call instead of pooled).
	RefBytesPerOp  float64 `json:"ref_bytes_per_op"`
	FastBytesPerOp float64 `json:"fast_bytes_per_op"`
}

// memN returns the mean heap allocations and heap bytes per call of f
// over n calls (global Mallocs/TotalAlloc deltas — run on a quiet
// process).
func memN(f func(), n int) (allocs, bytes float64) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < n; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(n),
		float64(after.TotalAlloc-before.TotalAlloc) / float64(n)
}

// measureOps times (and counts allocations for) every op pair.
func measureOps(ops []fpOp) []FastPathMeasurement {
	out := make([]FastPathMeasurement, 0, len(ops))
	for _, op := range ops {
		// Drain garbage left by earlier ops so a collection triggered
		// mid-measurement doesn't blur the ref/fast contrast.
		runtime.GC()
		refNs := timeN(op.ref, op.iters)
		fastNs := timeN(op.fast, op.iters)
		n := op.iters
		if n > 20 {
			n = 20 // allocation counts are deterministic; cap the pass
		}
		refAllocs, refBytes := memN(op.ref, n)
		fastAllocs, fastBytes := memN(op.fast, n)
		out = append(out, FastPathMeasurement{
			Op:              op.name,
			Iters:           op.iters,
			RefNsPerOp:      refNs,
			FastNsPerOp:     fastNs,
			Speedup:         refNs / fastNs,
			RefAllocsPerOp:  refAllocs,
			FastAllocsPerOp: fastAllocs,
			RefBytesPerOp:   refBytes,
			FastBytesPerOp:  fastBytes,
		})
	}
	return out
}

type fpOp struct {
	name  string
	iters int
	ref   func()
	fast  func()
}

func timeN(f func(), n int) float64 {
	start := time.Now()
	for i := 0; i < n; i++ {
		f()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(n)
}

func fastPathOps() ([]fpOp, error) {
	ks := make([]*big.Int, 16)
	for i := range ks {
		k, err := scalar.Rand(rand.Reader)
		if err != nil {
			return nil, err
		}
		ks[i] = k
	}
	p1, _, err := bn254.RandG1(rand.Reader)
	if err != nil {
		return nil, err
	}
	p2, _, err := bn254.RandG2(rand.Reader)
	if err != nil {
		return nil, err
	}

	const pairN = 4
	g1s := make([]*bn254.G1, pairN)
	g2s := make([]*bn254.G2, pairN)
	for i := range g1s {
		if g1s[i], _, err = bn254.RandG1(rand.Reader); err != nil {
			return nil, err
		}
		if g2s[i], _, err = bn254.RandG2(rand.Reader); err != nil {
			return nil, err
		}
	}

	const msmN = 8
	msmPts := make([]*bn254.G2, msmN)
	for i := range msmPts {
		if msmPts[i], _, err = bn254.RandG2(rand.Reader); err != nil {
			return nil, err
		}
	}

	const kappa = 8
	sch, err := hpske.New[*bn254.G2](group.G2{}, kappa)
	if err != nil {
		return nil, err
	}
	key, err := sch.GenKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	msg, err := sch.G.Rand(rand.Reader)
	if err != nil {
		return nil, err
	}
	ct, err := sch.Encrypt(rand.Reader, key, msg)
	if err != nil {
		return nil, err
	}

	idx := func(i int) *big.Int { return ks[i%len(ks)] }
	return []fpOp{
		{
			name: "G1.ScalarBaseMult", iters: 200,
			ref:  func() { new(bn254.G1).ScalarBaseMultReference(idx(0)) },
			fast: func() { new(bn254.G1).ScalarBaseMult(idx(0)) },
		},
		{
			name: "G2.ScalarBaseMult", iters: 60,
			ref:  func() { new(bn254.G2).ScalarBaseMultReference(idx(1)) },
			fast: func() { new(bn254.G2).ScalarBaseMult(idx(1)) },
		},
		{
			name: "G1.ScalarMult", iters: 60,
			ref:  func() { new(bn254.G1).ScalarMultReference(p1, idx(2)) },
			fast: func() { new(bn254.G1).ScalarMult(p1, idx(2)) },
		},
		{
			name: "G2.ScalarMult", iters: 30,
			ref:  func() { new(bn254.G2).ScalarMultReference(p2, idx(3)) },
			fast: func() { new(bn254.G2).ScalarMult(p2, idx(3)) },
		},
		{
			name: "Pair", iters: 5,
			ref:  func() { bn254.PairReference(p1, p2) },
			fast: func() { bn254.Pair(p1, p2) },
		},
		{
			name: fmt.Sprintf("MultiPair(%d)", pairN), iters: 5,
			ref: func() {
				acc := bn254.GTOne()
				for i := range g1s {
					acc.Mul(acc, bn254.Pair(g1s[i], g2s[i]))
				}
			},
			fast: func() { bn254.MultiPair(g1s, g2s) },
		},
		{
			name: fmt.Sprintf("ProdExp-G2(%d)", msmN), iters: 10,
			ref:  func() { group.ProdExpReference[*bn254.G2](group.G2{}, msmPts, ks[:msmN]) },
			fast: func() { group.ProdExp[*bn254.G2](group.G2{}, msmPts, ks[:msmN]) },
		},
		{
			name: fmt.Sprintf("Transport(κ=%d)", kappa), iters: 5,
			ref:  func() { hpske.TransportReference(nil, p1, ct) },
			fast: func() { hpske.Transport(nil, p1, ct) },
		},
	}, nil
}

// FastPathMeasurements times every fast-path operation against its
// reference and returns the pairs — the data behind both the E11 table
// and the bench_baseline.json snapshot written by cmd/dlrbench.
func FastPathMeasurements() ([]FastPathMeasurement, error) {
	ops, err := fastPathOps()
	if err != nil {
		return nil, err
	}
	for _, op := range ops {
		// Warm up once so lazy fixed-base table construction is not
		// charged to the timed iterations.
		op.fast()
	}
	return measureOps(ops), nil
}

// E11FastPath regenerates the fast-path-vs-reference speedup table.
func E11FastPath() (*Table, error) {
	meas, err := FastPathMeasurements()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E11",
		Title:  "fast-path group arithmetic vs reference implementations",
		Header: []string{"operation", "reference", "fast path", "speedup"},
	}
	for _, m := range meas {
		t.Rows = append(t.Rows, []string{
			m.Op,
			ms(time.Duration(m.RefNsPerOp)),
			ms(time.Duration(m.FastNsPerOp)),
			fmt.Sprintf("%.2fx", m.Speedup),
		})
	}
	t.Notes = append(t.Notes,
		"criterion: ScalarBaseMult (G1 and G2) ≥ 2× over reference",
		"criterion: κ-pairing transport ≥ 1.3× over per-pair reference",
		"all fast paths are differentially tested against the reference rows above",
	)
	return t, nil
}
