package bench

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"time"

	"repro/internal/bn254"
	"repro/internal/group"
	"repro/internal/hpske"
	"repro/internal/scalar"
)

// E14 measures the memory tier: steady-state heap traffic of the hot
// operations after the limb/arena work (fixed-width exponent loops,
// fixed-point GLV/GLS decomposition, pooled Pippenger arenas, in-place
// pairing accumulators), and the GC pressure of the sustained batched
// decryption pipeline. Acceptance criteria: Pair ≤ 200 allocs/op, the
// κ=8 table-path transport ≤ 150 allocs/op, endomorphism scalar
// multiplication allocation-free, and the 64-term Pippenger multi-exp
// at or below the Straus tier's count.

// e14Ops pairs each hot operation with the allocation-heavy tier it
// replaced. Iteration counts stay tiny: allocation counts are
// deterministic, and timeN's numbers are not the point here.
func e14Ops() ([]fpOp, error) {
	p, _, err := bn254.RandG1(rand.Reader)
	if err != nil {
		return nil, err
	}
	q, _, err := bn254.RandG2(rand.Reader)
	if err != nil {
		return nil, err
	}
	k, err := scalar.Rand(rand.Reader)
	if err != nil {
		return nil, err
	}
	tb := bn254.NewPairingTable(q)

	const msmN = 64
	g1s := make([]*bn254.G1, msmN)
	ks := make([]*big.Int, msmN)
	for i := range g1s {
		if g1s[i], _, err = bn254.RandG1(rand.Reader); err != nil {
			return nil, err
		}
		if ks[i], err = scalar.Rand(rand.Reader); err != nil {
			return nil, err
		}
	}

	const kappa = 8
	sch, err := hpske.New[*bn254.G2](group.G2{}, kappa)
	if err != nil {
		return nil, err
	}
	key, err := sch.GenKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	msg, err := sch.G.Rand(rand.Reader)
	if err != nil {
		return nil, err
	}
	ct, err := sch.Encrypt(rand.Reader, key, msg)
	if err != nil {
		return nil, err
	}
	tt := hpske.PrecomputeTransport(ct)

	var sink1 bn254.G1
	var sink2 bn254.G2
	var sinkT bn254.GT
	g := bn254.GTGenerator()
	return []fpOp{
		{
			name: "G1.ScalarMult (ladder→limb GLV)", iters: 10,
			ref:  func() { sink1.ScalarMultReference(p, k) },
			fast: func() { sink1.ScalarMult(p, k) },
		},
		{
			name: "G2.ScalarMult (ladder→limb GLS)", iters: 6,
			ref:  func() { sink2.ScalarMultReference(q, k) },
			fast: func() { sink2.ScalarMult(q, k) },
		},
		{
			name: "GT.Exp (bigint→limb cyclotomic)", iters: 10,
			ref:  func() { sinkT.ExpReference(g, k) },
			fast: func() { sinkT.Exp(g, k) },
		},
		{
			name: "Pair (cold→table replay)", iters: 4,
			ref:  func() { bn254.Pair(p, q) },
			fast: func() { tb.Pair(p) },
		},
		{
			name: fmt.Sprintf("Transport(κ=%d) (cold→table)", kappa), iters: 4,
			ref:  func() { hpske.Transport(nil, p, ct) },
			fast: func() { hpske.TransportPre(nil, p, tt) },
		},
		{
			name: fmt.Sprintf("MultiExp(%d)-G1 (Straus→arena Pippenger)", msmN), iters: 3,
			ref:  func() { bn254.G1MultiScalarMult(g1s, ks) },
			fast: func() { bn254.G1MultiExpPippenger(g1s, ks) },
		},
	}, nil
}

// E14Measurements runs the memory-tier operation pairs. The warm-up
// pass also fills the Pippenger arena pool and the transport tables so
// the fast columns show steady-state traffic, which is what the
// allocation regression tests pin.
func E14Measurements() ([]FastPathMeasurement, error) {
	ops, err := e14Ops()
	if err != nil {
		return nil, err
	}
	for _, op := range ops {
		op.ref()
		op.fast()
	}
	return measureOps(ops), nil
}

// kb renders a byte count compactly.
func kb(b float64) string {
	switch {
	case b < 1024:
		return fmt.Sprintf("%.0fB", b)
	case b < 1024*1024:
		return fmt.Sprintf("%.1fKB", b/1024)
	default:
		return fmt.Sprintf("%.2fMB", b/(1024*1024))
	}
}

// E14Memory regenerates the memory-tier table: allocs/op and bytes/op
// for each hot operation against its allocation-heavy twin, plus the
// GC profile of the sustained decryption pipeline.
func E14Memory() (*Table, error) {
	meas, err := E14Measurements()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E14",
		Title:  "memory tier: steady-state heap traffic and GC pressure",
		Header: []string{"operation", "allocs/op", "B/op", "allocs/op (was)", "B/op (was)"},
	}
	for _, m := range meas {
		t.Rows = append(t.Rows, []string{
			m.Op,
			fmt.Sprintf("%.0f", m.FastAllocsPerOp),
			kb(m.FastBytesPerOp),
			fmt.Sprintf("%.0f", m.RefAllocsPerOp),
			kb(m.RefBytesPerOp),
		})
	}
	pt, err := DecPipeline(1, 48, 12)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("pipeline (1 worker, %d reqs, batch=%d): %.0f allocs/req, %s/req, %d GC cycle(s), %s total pause",
			pt.Requests, pt.Batch, pt.AllocsPerReq, kb(pt.BytesPerReq), pt.GCCycles, pt.GCPause.Round(time.Microsecond)),
		"criterion: Pair ≤ 200 allocs/op; table-path Transport(κ=8) ≤ 150 allocs/op",
		"criterion: GLV/GLS scalar multiplication and GT.Exp allocation-free in steady state",
		"criterion: 64-term Pippenger multi-exp allocates no more than the Straus tier",
		"budgets are enforced in-tree by testing.AllocsPerRun tests (internal/ff, internal/scalar, internal/bn254, internal/hpske)",
	)
	return t, nil
}
