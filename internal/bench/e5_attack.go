package bench

import (
	"fmt"

	"repro/internal/leakage"
	"repro/internal/params"
)

// E5Attack runs the key-recovery adversary of the CPA-CML game against
// (a) a non-refreshing deployment and (b) the real scheme, per λ. The
// paper's central claim: per-period-bounded leakage is harmless exactly
// because refresh invalidates what leaked; without refresh the same
// adversary assembles msk and wins outright.
func E5Attack(gamesPerConfig int) (*Table, error) {
	if gamesPerConfig < 1 {
		gamesPerConfig = 1
	}
	t := &Table{
		ID:     "E5",
		Title:  "key-recovery adversary vs refresh (CPA-CML game, Definition 3.2)",
		Header: []string{"λ (bits)", "refresh", "periods", "msk recovered", "games won"},
	}
	for _, lambda := range []int{512, 1024} {
		prm := params.MustNew(40, lambda)
		for _, refresh := range []bool{false, true} {
			recovered, wins, periods := 0, 0, 0
			for g := 0; g < gamesPerConfig; g++ {
				adv, err := leakage.NewKeyRecoveryAdversary(nil, prm, params.ModeOptimalRate, 0)
				if err != nil {
					return nil, err
				}
				cfg := leakage.Config{
					Params:            prm,
					Mode:              params.ModeOptimalRate,
					RefreshEnabled:    refresh,
					SkipBackgroundDec: true,
					MaxPeriods:        64,
				}
				res, err := leakage.RunCPAGame(nil, cfg, adv)
				if err != nil {
					return nil, err
				}
				if adv.MatchedChallenge {
					recovered++
				}
				if res.Win {
					wins++
				}
				periods = res.Periods
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(lambda), fmt.Sprint(refresh), fmt.Sprint(periods),
				fmt.Sprintf("%d/%d", recovered, gamesPerConfig),
				fmt.Sprintf("%d/%d", wins, gamesPerConfig),
			})
		}
	}
	t.Notes = append(t.Notes,
		"claim: refresh=false → msk recovered in 1+⌈1024/λ⌉ periods within every leakage bound; refresh=true → never recovered",
		"with refresh the win column is a fair coin; without it the adversary decrypts the challenge outright",
	)
	return t, nil
}
