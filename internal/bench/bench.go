// Package bench implements the experiment harness of DESIGN.md §2: one
// runner per experiment E1–E14, each regenerating a quantitative claim
// of the paper as a formatted table of paper-claim vs measured values.
// The runners are shared by cmd/dlrbench and the repository-root
// testing.B benchmarks.
package bench

import (
	"fmt"
	"strings"
	"time"
)

// Table is a formatted experiment result.
type Table struct {
	// ID is the experiment identifier (e.g. "E1").
	ID string
	// Title describes the experiment and the paper claim it tests.
	Title string
	// Header labels the columns.
	Header []string
	// Rows hold the measurements.
	Rows [][]string
	// Notes carry the claim-vs-measured verdict lines.
	Notes []string
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// ms renders a duration with sensible precision: milliseconds for
// protocol-scale timings, dropping to µs/ns for the field-arithmetic
// rows that would otherwise print as 0.00ms.
func ms(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fµs", float64(d.Nanoseconds())/1000)
	default:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	}
}

// timeIt runs f once and returns its wall-clock duration.
func timeIt(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), err
}
