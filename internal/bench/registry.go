package bench

import "fmt"

// Runner produces one experiment table.
type Runner func() (*Table, error)

// Experiments returns the full registry E1–E18 in order. attackGames
// controls how many games E5 plays per configuration.
func Experiments(attackGames int) []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"E1", E1Efficiency},
		{"E2", func() (*Table, error) { return E2LeakageRates(), nil }},
		{"E3", E3Sizes},
		{"E4", E4Latency},
		{"E5", func() (*Table, error) { return E5Attack(attackGames) }},
		{"E6", E6DeviceAsymmetry},
		{"E7", E7DIBE},
		{"E8", E8CCA2},
		{"E9", E9Storage},
		{"E10", E10Ablations},
		{"E11", E11FastPath},
		{"E12", E12Endo},
		{"E13", E13Throughput},
		{"E14", E14Memory},
		{"E15", E15Parallel},
		{"E16", E16Server},
		{"E17", E17Rotation},
		{"E18", E18Wire},
	}
}

// Run executes the experiment with the given ID (or all when id == "").
// Tables are returned in execution order.
func Run(id string, attackGames int) ([]*Table, error) {
	var out []*Table
	for _, e := range Experiments(attackGames) {
		if id != "" && e.ID != id {
			continue
		}
		t, err := e.Run()
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", e.ID, err)
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bench: unknown experiment %q", id)
	}
	return out, nil
}
