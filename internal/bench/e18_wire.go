package bench

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/bn254"
	"repro/internal/device"
	"repro/internal/dlr"
	"repro/internal/group"
	"repro/internal/hpske"
	"repro/internal/wire"
)

// E18 measures the wire-path fast lane: compressed point encodings on
// every protocol frame (G1 33 B, G2 65 B against the raw 64/128 B),
// pooled zero-copy frame encoding, and the server's vectored
// per-window response flush. Acceptance criteria: the device
// decrypt-request frame shrinks ≥45% (the G2-dominated payloads give
// 65/128 = 49.2% per element), pooled frame encode runs at 0 allocs/op
// (gated exactly in internal/wire/alloc_test.go), and the 32-client
// loopback sweep holds its E16 throughput while moving roughly half
// the bytes.

// e18FrameSizes runs the device protocols once per codec through a
// transcript recorder and returns the honest on-wire frame sizes.
type e18FrameSizes struct {
	op                 string
	legacy, compressed int
}

// e18RecordBatch runs one cold RunDecBatch through a recorder and
// returns the request and reply frame sizes.
func e18RecordBatch(p1 *dlr.P1, p2 *dlr.P2, pk *dlr.PublicKey) (req, reply int, err error) {
	m, err := dlr.RandMessage(rand.Reader, pk)
	if err != nil {
		return 0, 0, err
	}
	ct, err := dlr.Encrypt(rand.Reader, pk, m, nil)
	if err != nil {
		return 0, 0, err
	}
	var sent, recv []wire.Msg
	_, _, err = device.Run(
		func(ch device.Channel) error {
			rec := ch.(*device.Recorder)
			if _, err := p1.RunDecBatch(rec, []*dlr.Ciphertext{ct}); err != nil {
				return err
			}
			sent, recv = rec.Transcript()
			return nil
		},
		p2.Serve,
	)
	if err != nil {
		return 0, 0, err
	}
	if len(sent) != 1 || len(recv) != 1 {
		return 0, 0, fmt.Errorf("bench: E18 batch transcript has %d/%d frames", len(sent), len(recv))
	}
	return sent[0].Size(), recv[0].Size(), nil
}

// e18RecordRefresh runs one refresh through a recorder and returns the
// request frame size.
func e18RecordRefresh(p1 *dlr.P1, p2 *dlr.P2) (req int, err error) {
	var sent []wire.Msg
	_, _, err = device.Run(
		func(ch device.Channel) error {
			rec := ch.(*device.Recorder)
			if err := p1.RunRef(rand.Reader, ch); err != nil {
				return err
			}
			sent, _ = rec.Transcript()
			return nil
		},
		p2.Serve,
	)
	if err != nil {
		return 0, err
	}
	if len(sent) != 1 {
		return 0, fmt.Errorf("bench: E18 refresh transcript has %d frames", len(sent))
	}
	return sent[0].Size(), nil
}

// e18Frames measures every protocol frame in both codecs on one DLR
// instance. The legacy pass pins the v1 codec via SetLegacyWire — the
// same negotiation escape hatch a downgraded peer would exercise.
func e18Frames() ([]e18FrameSizes, error) {
	pk, p1, p2, err := dlr.Gen(rand.Reader, e13Params())
	if err != nil {
		return nil, err
	}

	var out []e18FrameSizes

	// Each pass runs a cold decrypt-batch round trip (dlr.decb1 /
	// dlr.decb2) and then a refresh (dlr.ref1, 2ℓ+1 G2 ciphertexts). The
	// refresh rotates the share state, which drops the warm batch
	// session — so the next pass's batch pays its round trip again and
	// both codecs are measured on identical cold protocol runs.
	p1.SetLegacyWire(true)
	legReq, legRep, err := e18RecordBatch(p1, p2, pk)
	if err != nil {
		return nil, err
	}
	legRef, err := e18RecordRefresh(p1, p2)
	if err != nil {
		return nil, err
	}
	p1.SetLegacyWire(false)
	cmpReq, cmpRep, err := e18RecordBatch(p1, p2, pk)
	if err != nil {
		return nil, err
	}
	cmpRef, err := e18RecordRefresh(p1, p2)
	if err != nil {
		return nil, err
	}
	out = append(out,
		e18FrameSizes{"device decrypt-batch request (dlr.decb1)", legReq, cmpReq},
		e18FrameSizes{"device decrypt-batch reply (dlr.decb2)", legRep, cmpRep},
		e18FrameSizes{"device refresh request (dlr.ref1)", legRef, cmpRef},
	)

	// Client decrypt request (srv.dec): tenant prefix + ciphertext.
	m, err := dlr.RandMessage(rand.Reader, pk)
	if err != nil {
		return nil, err
	}
	ct, err := dlr.Encrypt(rand.Reader, pk, m, nil)
	if err != nil {
		return nil, err
	}
	var legB, cmpB wire.Builder
	legB.AppendBytes([]byte("tenant")).AppendRaw(ct.Bytes())
	cmpB.AppendBytes([]byte("tenant")).AppendRaw(ct.BytesCompressed())
	out = append(out, e18FrameSizes{
		"client decrypt request (srv.dec)",
		wire.MuxMsg{Kind: "srv.dec", Payload: legB.Bytes()}.Size(),
		wire.MuxMsg{Kind: "srv.dec", Payload: cmpB.Bytes()}.Size(),
	})
	return out, nil
}

// e18LegacyWriteMux is the pre-fast-lane encoder retained as the
// measurement baseline: materialize the id-prefixed body, materialize
// the frame, copy the body in, write.
func e18LegacyWriteMux(w io.Writer, m wire.MuxMsg) error {
	body := make([]byte, 8+len(m.Payload))
	binary.BigEndian.PutUint64(body, m.ID)
	copy(body[8:], m.Payload)
	f := wire.Msg{Kind: m.Kind, Payload: body}
	buf := make([]byte, 0, f.Size())
	var err error
	if buf, err = wire.AppendFrame(buf, f); err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// e18Ops builds the wire fast-lane timing pairs.
func e18Ops() ([]fpOp, error) {
	prm := e13Params()
	g2 := group.G2{}
	ss, err := hpske.New[*bn254.G2](g2, prm.Kappa)
	if err != nil {
		return nil, err
	}
	key, err := ss.GenKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	cts := make([]*hpske.Ciphertext[*bn254.G2], prm.Ell+1)
	for i := range cts {
		pt, err := g2.Rand(rand.Reader)
		if err != nil {
			return nil, err
		}
		if cts[i], err = ss.Encrypt(rand.Reader, key, pt); err != nil {
			return nil, err
		}
	}

	frame := wire.MuxMsg{ID: 7, Kind: "srv.decr", Payload: make([]byte, 512)}
	return []fpOp{
		{
			name:  "wire mux frame encode 512B (make+copy → pooled append)",
			iters: 200000,
			ref: func() {
				if err := e18LegacyWriteMux(io.Discard, frame); err != nil {
					panic(err)
				}
			},
			fast: func() {
				if err := wire.WriteMux(io.Discard, frame); err != nil {
					panic(err)
				}
			},
		},
		{
			name:  "hpske G2 list encode (raw → compressed points)",
			iters: 2000,
			ref: func() {
				if _, err := hpske.EncodeListLegacy(ss, cts); err != nil {
					panic(err)
				}
			},
			fast: func() {
				if _, err := hpske.EncodeList(ss, cts); err != nil {
					panic(err)
				}
			},
		},
	}, nil
}

// E18Measurements produces the baseline-JSON rows for the wire fast
// lane.
func E18Measurements() ([]FastPathMeasurement, error) {
	ops, err := e18Ops()
	if err != nil {
		return nil, err
	}
	return measureOps(ops), nil
}

// E18Wire regenerates the E18 table: per-frame wire bytes in both
// codecs, and the 32-client loopback sweep with byte accounting.
func E18Wire() (*Table, error) {
	t := &Table{
		ID:     "E18",
		Title:  "wire fast lane: compressed encodings, pooled framing, vectored window flush",
		Header: []string{"frame / run", "legacy", "compressed", "reduction"},
	}
	frames, err := e18Frames()
	if err != nil {
		return nil, err
	}
	var decReduction float64
	for _, f := range frames {
		red := 1 - float64(f.compressed)/float64(f.legacy)
		if f.op == "device decrypt-batch request (dlr.decb1)" {
			decReduction = red
		}
		t.Rows = append(t.Rows, []string{
			f.op,
			fmt.Sprintf("%d B", f.legacy),
			fmt.Sprintf("%d B", f.compressed),
			fmt.Sprintf("%.1f%%", 100*red),
		})
	}

	window, err := E16WindowRun(32, 2)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		"32-client window sweep (compressed, vectored flush)",
		"—",
		fmt.Sprintf("%.1f req/s, p99 %s", window.ReqPerSec, ms(window.P99)),
		fmt.Sprintf("%.0f B/req in, %.0f B/req out",
			float64(window.BytesIn)/float64(window.Requests),
			float64(window.BytesOut)/float64(window.Requests)),
	})

	t.Notes = append(t.Notes,
		fmt.Sprintf("criterion: device decrypt-request frame shrinks ≥45%% — measured %.1f%%", 100*decReduction),
		"compressed G2 element: 65 B vs 128 B raw (49.2% per element); G1: 33 B vs 64 B; GT has no compression and stays legacy",
		"frame encode is 0 allocs/op once the pool is warm (exact gate: internal/wire/alloc_test.go)",
		"window responses reach each connection in one write syscall per drained window (gate: internal/server/flush_test.go)",
	)
	return t, nil
}
