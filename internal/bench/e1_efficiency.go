package bench

import (
	"crypto/rand"
	"fmt"

	"repro/internal/baselines"
	"repro/internal/bb"
	"repro/internal/bn254"
	"repro/internal/dlr"
	"repro/internal/opcount"
	"repro/internal/params"
)

// E1Efficiency regenerates the §1.2.1 footnote-3 comparison: per-scheme
// exponentiations and pairings per encryption, and ciphertext size, for
// a 254-bit message equivalent. The paper's claim: DLR encrypts whole
// group elements with 2 exponentiations, no online pairing, and a
// 2-element ciphertext, while bit-by-bit continual-leakage schemes pay
// ω(n) exponentiations and ω(n) group elements.
func E1Efficiency() (*Table, error) {
	prm := params.MustNew(80, 256)
	t := &Table{
		ID:     "E1",
		Title:  "encryption cost comparison (paper §1.2.1, footnote 3)",
		Header: []string{"scheme", "model", "exps/enc", "pairings/enc", "ct bytes", "enc time", "message"},
	}

	expCount := func(c *opcount.Counter) int64 {
		return c.Get(opcount.G1Exp) + c.Get(opcount.G2Exp) + c.Get(opcount.GTExp)
	}

	// DLR (this paper).
	{
		ctr := opcount.New()
		pk, _, _, err := dlr.Gen(rand.Reader, prm)
		if err != nil {
			return nil, err
		}
		m, err := dlr.RandMessage(rand.Reader, pk)
		if err != nil {
			return nil, err
		}
		ctr.Reset()
		var ct *dlr.Ciphertext
		d, err := timeIt(func() error {
			var err error
			ct, err = dlr.Encrypt(rand.Reader, pk, m, ctr)
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			"DLR (this paper)", "distributed, continual leakage",
			fmt.Sprint(expCount(ctr)), fmt.Sprint(ctr.Get(opcount.Pairing)),
			fmt.Sprint(len(ct.Bytes())), ms(d), "1 GT element (254 bits)",
		})
	}

	// ElGamal-GT cost floor.
	{
		ctr := opcount.New()
		eg, err := baselines.NewElGamalGT(rand.Reader, ctr)
		if err != nil {
			return nil, err
		}
		m, err := eg.RandMessage(rand.Reader)
		if err != nil {
			return nil, err
		}
		ctr.Reset()
		var ct *baselines.EGCiphertext
		d, err := timeIt(func() error {
			var err error
			ct, err = eg.Encrypt(rand.Reader, m)
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			"ElGamal-GT", "single proc., no leakage resilience",
			fmt.Sprint(expCount(ctr)), fmt.Sprint(ctr.Get(opcount.Pairing)),
			fmt.Sprint(ct.Size()), ms(d), "1 GT element",
		})
	}

	// Naor–Segev bounded-leakage.
	{
		ctr := opcount.New()
		ns, err := baselines.NewNaorSegev(rand.Reader, prm.Ell, ctr)
		if err != nil {
			return nil, err
		}
		m := bn254.HashToG1("bench-e1", []byte("message"))
		ctr.Reset()
		var ct *baselines.NSCiphertext
		d, err := timeIt(func() error {
			var err error
			ct, err = ns.Encrypt(rand.Reader, m)
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("Naor-Segev (ℓ=%d)", prm.Ell), "single proc., bounded leakage only",
			fmt.Sprint(expCount(ctr)), fmt.Sprint(ctr.Get(opcount.Pairing)),
			fmt.Sprint(ct.Size()), ms(d), "1 G1 element",
		})
	}

	// Bitwise (BKKV cost shape), 254-bit message ≈ 32 bytes.
	{
		ctr := opcount.New()
		bw, err := baselines.NewBitwise(rand.Reader, ctr)
		if err != nil {
			return nil, err
		}
		msg := make([]byte, 32)
		ctr.Reset()
		var ct *baselines.BitwiseCiphertext
		d, err := timeIt(func() error {
			var err error
			ct, err = bw.Encrypt(rand.Reader, msg)
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			"bit-by-bit (BKKV shape)", "single proc., continual leakage",
			fmt.Sprint(expCount(ctr)), fmt.Sprint(ctr.Get(opcount.Pairing)),
			fmt.Sprint(ct.Size()), ms(d), "256 bits, bit-wise",
		})
	}

	// BB IBE (identity-based substrate).
	{
		ctr := opcount.New()
		pk, _, err := bb.Gen(rand.Reader, bb.DefaultNID, nil)
		if err != nil {
			return nil, err
		}
		m, err := bb.RandMessage(rand.Reader, pk)
		if err != nil {
			return nil, err
		}
		ctr.Reset()
		var ct *bb.Ciphertext
		d, err := timeIt(func() error {
			var err error
			ct, err = bb.Encrypt(rand.Reader, pk, "alice", m, ctr)
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("BB IBE (n=%d)", bb.DefaultNID), "single proc., identity-based",
			fmt.Sprint(expCount(ctr)), fmt.Sprint(ctr.Get(opcount.Pairing)),
			fmt.Sprint(ct.CiphertextSize()), ms(d), "1 GT element",
		})
	}

	t.Notes = append(t.Notes,
		"paper claim: DLR uses 2 exps, 0 online pairings, 2-element ciphertext — match iff row 1 reads 2/0/448",
		"paper claim: bit-by-bit schemes pay ω(n) exps and ω(n) elements — the BKKV-shape row pays 2 exps and 2 elements PER BIT",
	)
	return t, nil
}
