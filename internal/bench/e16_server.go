package bench

import (
	"crypto/rand"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/bn254"
	"repro/internal/dlr"
	"repro/internal/server"
)

// E16 measures cross-connection continuous batching: N concurrent
// single-request clients drive real TCP sessions against the
// internal/server daemon, once through the serial one-request-per-
// round-trip path and once through the adaptive batch windows. The
// clients are closed-loop (each sends its next request only after its
// previous answer), so every window's occupancy is earned by genuine
// concurrency, not by a pre-batched caller. Acceptance criterion:
// ≥10× amortized per-request improvement at 32 concurrent clients.

// e16WindowWait is the batch-window deadline the E16 server runs with —
// long enough that closed-loop clients re-arrive within the window on a
// loaded 1-CPU box, short enough to stay honest as a latency bound.
const e16WindowWait = 10 * time.Millisecond

// ServerPoint is one measured (mode, concurrency) cell of E16.
type ServerPoint struct {
	Mode      string // "serial" or "window"
	Clients   int
	Requests  int
	Wall      time.Duration
	PerReq    time.Duration // amortized: Wall / Requests
	ReqPerSec float64
	// Window-scheduler shape for the run (zero in serial mode).
	Windows       uint64
	MeanOccupancy float64
	P50, P99      time.Duration
	// Client-facing wire traffic for the run (E18's bytes-per-request
	// accounting).
	BytesIn, BytesOut   uint64
	FramesIn, FramesOut uint64
}

// serverRun stands up a fresh DLR instance behind a batch-window (or
// serial) server on a loopback listener, drives it with `clients`
// concurrent single-request sessions issuing perClient requests each,
// verifies every plaintext, and reports the amortized cost.
func serverRun(cfg server.Config, clients, perClient int) (*ServerPoint, error) {
	pk, p1, p2, err := dlr.Gen(rand.Reader, e13Params())
	if err != nil {
		return nil, err
	}
	s := server.New(cfg)
	if err := s.RegisterLocal("e16", p1, p2); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()
	defer func() {
		s.Shutdown()
		<-serveDone
	}()

	total := clients * perClient
	msgs := make([]*bn254.GT, total)
	cts := make([]*dlr.Ciphertext, total)
	for i := range cts {
		if msgs[i], err = dlr.RandMessage(rand.Reader, pk); err != nil {
			return nil, err
		}
		if cts[i], err = dlr.Encrypt(rand.Reader, pk, msgs[i], nil); err != nil {
			return nil, err
		}
	}

	// Every client dials its own session up front so the timed region
	// is pure request traffic.
	conns := make([]*server.Client, clients)
	for i := range conns {
		if conns[i], err = server.Dial(ln.Addr().String()); err != nil {
			return nil, err
		}
		defer conns[i].Close()
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	start := time.Now()
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				i := cl*perClient + k
				got, err := conns[cl].Decrypt("e16", cts[i])
				if err == nil && !got.Equal(msgs[i]) {
					err = fmt.Errorf("bench: E16 client %d request %d decrypted wrong", cl, k)
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	wall := time.Since(start)
	if firstErr != nil {
		return nil, firstErr
	}

	mode := "window"
	if cfg.Serial {
		mode = "serial"
	}
	snap := s.Metrics().Snapshot()
	return &ServerPoint{
		Mode:          mode,
		Clients:       clients,
		Requests:      total,
		Wall:          wall,
		PerReq:        wall / time.Duration(total),
		ReqPerSec:     float64(total) / wall.Seconds(),
		Windows:       snap.Windows,
		MeanOccupancy: snap.MeanOccupancy,
		P50:           snap.P50,
		P99:           snap.P99,
		BytesIn:       snap.BytesIn,
		BytesOut:      snap.BytesOut,
		FramesIn:      snap.FramesIn,
		FramesOut:     snap.FramesOut,
	}, nil
}

// e16WindowCfg is the batch-window configuration E16 measures: windows
// close at 32 requests or after e16WindowWait, with a table cache so
// consecutive windows of one epoch share pairing tables.
func e16WindowCfg() server.Config {
	return server.Config{BatchSize: 32, Window: e16WindowWait, CacheCap: 4}
}

// E16SerialBaseline measures the one-request-per-round-trip server path
// at the given concurrency. Exported for the dlrbench -server sweep.
func E16SerialBaseline(clients, perClient int) (*ServerPoint, error) {
	return serverRun(server.Config{Serial: true, CacheCap: 4}, clients, perClient)
}

// E16WindowRun measures the batch-window server path at the given
// concurrency. Exported for the dlrbench -server sweep.
func E16WindowRun(clients, perClient int) (*ServerPoint, error) {
	return serverRun(e16WindowCfg(), clients, perClient)
}

// E16Measurements produces the baseline-JSON rows for the server path:
// the amortized per-request cost of 32 concurrent single-request
// clients through the batch windows, against the same offered load
// through the serial path.
func E16Measurements() ([]FastPathMeasurement, error) {
	serial, err := E16SerialBaseline(32, 1)
	if err != nil {
		return nil, err
	}
	window, err := E16WindowRun(32, 2)
	if err != nil {
		return nil, err
	}
	ref := float64(serial.PerReq.Nanoseconds())
	fast := float64(window.PerReq.Nanoseconds())
	return []FastPathMeasurement{{
		Op:          "DLR.Dec server (serial→window, 32 clients, amortized)",
		Iters:       serial.Requests,
		RefNsPerOp:  ref,
		FastNsPerOp: fast,
		Speedup:     ref / fast,
	}}, nil
}

// E16Server regenerates the E16 table: the serial-vs-window amortized
// cost at 1, 8 and 32 concurrent single-request clients.
func E16Server() (*Table, error) {
	t := &Table{
		ID:     "E16",
		Title:  "continuous batching: multiplexed decrypt server, serial vs batch windows",
		Header: []string{"clients", "mode", "req/s", "per-request", "mean window", "p50", "p99"},
	}
	var serialPerReq, windowPerReq time.Duration
	for _, clients := range []int{1, 8, 32} {
		perClient := 2
		if clients == 1 {
			perClient = 4
		}
		// The serial baseline is the expensive side; one request per
		// client bounds its runtime while keeping the offered
		// concurrency identical.
		serial, err := E16SerialBaseline(clients, 1)
		if err != nil {
			return nil, err
		}
		window, err := E16WindowRun(clients, perClient)
		if err != nil {
			return nil, err
		}
		if clients == 32 {
			serialPerReq, windowPerReq = serial.PerReq, window.PerReq
		}
		for _, pt := range []*ServerPoint{serial, window} {
			occ := "—"
			if pt.Mode == "window" {
				occ = fmt.Sprintf("%.1f", pt.MeanOccupancy)
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", pt.Clients), pt.Mode,
				fmt.Sprintf("%.1f", pt.ReqPerSec),
				ms(pt.PerReq), occ, ms(pt.P50), ms(pt.P99),
			})
		}
	}
	if windowPerReq > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"32 concurrent single-request clients: %.1f× amortized per-request improvement (serial %s → window %s)",
			float64(serialPerReq)/float64(windowPerReq), ms(serialPerReq), ms(windowPerReq)))
	}
	t.Notes = append(t.Notes,
		"criterion: ≥10× amortized per-request improvement at 32 concurrent clients",
		"clients are closed-loop over real TCP sessions; window occupancy is earned by concurrency, not pre-batched callers",
		fmt.Sprintf("window scheduler: batch=32, deadline=%s, epoch-keyed table cache attached", e16WindowWait),
	)
	return t, nil
}
