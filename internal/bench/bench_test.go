package bench

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

func TestTableFormat(t *testing.T) {
	tbl := &Table{
		ID:     "EX",
		Title:  "example",
		Header: []string{"a", "long-column"},
		Rows:   [][]string{{"1", "2"}, {"wide-value", "3"}},
		Notes:  []string{"a note"},
	}
	out := tbl.Format()
	for _, want := range []string{"EX — example", "long-column", "wide-value", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func TestE2RatesShape(t *testing.T) {
	tbl := E2LeakageRates()
	if len(tbl.Rows) < 5 {
		t.Fatalf("E2 has %d rows", len(tbl.Rows))
	}
	// ρ1 opt column (index 4) must be strictly increasing toward 1.
	prev := 0.0
	for _, row := range tbl.Rows {
		rate, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		if rate <= prev || rate >= 1 {
			t.Fatalf("ρ1 sequence not increasing toward 1: %v after %v", rate, prev)
		}
		prev = rate
	}
	if prev < 0.99 {
		t.Fatalf("largest λ only reaches ρ1 = %f", prev)
	}
}

func TestRegistryUnknownID(t *testing.T) {
	if _, err := Run("E99", 1); err == nil {
		t.Fatal("accepted unknown experiment id")
	}
}

func TestRegistryListsAll(t *testing.T) {
	exps := Experiments(1)
	if len(exps) != 18 {
		t.Fatalf("registry has %d experiments, want 18", len(exps))
	}
	want := map[string]bool{}
	for i := 1; i <= 18; i++ {
		want[fmt.Sprintf("E%d", i)] = true
	}
	for _, e := range exps {
		if !want[e.ID] {
			t.Fatalf("unexpected experiment id %q", e.ID)
		}
	}
}
