package bench

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"runtime"
	"time"

	"repro/internal/bn254"
	"repro/internal/cache"
	"repro/internal/dlr"
	"repro/internal/ff"
	"repro/internal/scalar"
)

// E15 measures the parallel tier: chunk-parallel primitives
// (window-parallel Pippenger, chunked MultiPair/PairBatch, segmented
// batch inversion) against the serial paths they gate behind, the
// rotation-aware table cache against cold per-batch table builds, and
// the worker/tenant/capacity behaviour of the cached decryption
// pipeline. Acceptance criteria: on a multi-core host the parallel
// primitives reach ≥ 1.5× at the sizes below while every small-input
// alloc gate stays on the serial path; a warm cache removes the
// per-batch table build from RunDecBatch entirely.
//
// The serial reference pins GOMAXPROCS(1) — the same dispatchers then
// route through the serial code — and the parallel side runs at
// e15Procs. On a single-CPU host the "parallel" timings measure
// dispatch overhead, not speedup; the table notes record the core
// count so the numbers read honestly.

// e15Procs is the GOMAXPROCS the parallel side runs at: every
// available core, but at least 2 so the parallel branches are
// exercised (and race-checked) even on a one-core host.
func e15Procs() int {
	if n := runtime.NumCPU(); n > 2 {
		return n
	}
	return 2
}

// withProcs runs f at GOMAXPROCS(n) and restores the old value.
func withProcs(n int, f func()) {
	old := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(old)
	f()
}

// e15Sizes: chosen to clear the parallel gates (pippengerParMinBases
// after the 2-way GLV / 4-way GLS splits, multiPairParMinChunk,
// 2·batchInvParMinChunk) with headroom, while staying minutes-cheap.
const (
	e15MultiExpG1 = 768 // → 1536 post-GLV bases
	e15MultiExpG2 = 256 // → 1024 post-GLS bases
	e15Pairs      = 16  // → 4 lockstep chunks of 4
	e15InvBatch   = 4096
	e15CacheBatch = 8
)

func e15Ops() ([]fpOp, error) {
	ksG1 := make([]*big.Int, e15MultiExpG1)
	g1s := make([]*bn254.G1, e15MultiExpG1)
	for i := range g1s {
		k, err := scalar.Rand(rand.Reader)
		if err != nil {
			return nil, err
		}
		ksG1[i] = k
		if g1s[i], _, err = bn254.RandG1(rand.Reader); err != nil {
			return nil, err
		}
	}
	ksG2 := ksG1[:e15MultiExpG2]
	g2s := make([]*bn254.G2, e15MultiExpG2)
	for i := range g2s {
		var err error
		if g2s[i], _, err = bn254.RandG2(rand.Reader); err != nil {
			return nil, err
		}
	}
	pairP := g1s[:e15Pairs]
	pairQ := g2s[:e15Pairs]

	xs := make([]ff.Fp2, e15InvBatch)
	for i := range xs {
		x, err := ff.RandFp2(rand.Reader)
		if err != nil {
			return nil, err
		}
		xs[i] = *x
	}
	inv := make([]ff.Fp2, e15InvBatch)
	prefix := make([]ff.Fp2, e15InvBatch)

	procs := e15Procs()
	par := func(f func()) func() { return func() { withProcs(procs, f) } }
	ser := func(f func()) func() { return func() { withProcs(1, f) } }

	return []fpOp{
		{
			name: fmt.Sprintf("MultiExp(%d)-G1 (serial→window-parallel)", e15MultiExpG1), iters: 3,
			ref:  ser(func() { bn254.G1MultiExpPippenger(g1s, ksG1) }),
			fast: par(func() { bn254.G1MultiExpPippenger(g1s, ksG1) }),
		},
		{
			name: fmt.Sprintf("MultiExp(%d)-G2 (serial→window-parallel)", e15MultiExpG2), iters: 2,
			ref:  ser(func() { bn254.G2MultiExpPippenger(g2s, ksG2) }),
			fast: par(func() { bn254.G2MultiExpPippenger(g2s, ksG2) }),
		},
		{
			name: fmt.Sprintf("MultiPair(%d) (serial→chunked)", e15Pairs), iters: 3,
			ref:  ser(func() { bn254.MultiPair(pairP, pairQ) }),
			fast: par(func() { bn254.MultiPair(pairP, pairQ) }),
		},
		{
			name: fmt.Sprintf("PairBatch(%d) (serial→chunked)", e15Pairs), iters: 3,
			ref:  ser(func() { bn254.PairBatch(pairP, pairQ) }),
			fast: par(func() { bn254.PairBatch(pairP, pairQ) }),
		},
		{
			name: fmt.Sprintf("BatchInverseFp2(%d) (serial→segmented)", e15InvBatch), iters: 50,
			ref:  ser(func() { ff.BatchInverseFp2Par(inv, xs, prefix) }),
			fast: par(func() { ff.BatchInverseFp2Par(inv, xs, prefix) }),
		},
	}, nil
}

// cachedBatchMeasurement times RunDecBatch with the table cache cold
// (entry invalidated before every run, so the κ+1 pairing tables are
// rebuilt) against warm (tables replayed from the cache), amortized
// per request. The warm-minus-cold gap is exactly the per-batch
// NewPairingTable cost the cache removes.
//
// Every timed pass runs on its own P1 restored from serialized state:
// a live instance installs an in-struct batch session after its first
// batch, after which neither pass would touch the cache at all —
// restored instances are the restart scenario the cache serves, and
// they keep both sides on the cache path. The restores happen outside
// the timed region.
func cachedBatchMeasurement() (FastPathMeasurement, error) {
	var zero FastPathMeasurement
	pk, p1, p2, err := dlr.Gen(rand.Reader, e13Params())
	if err != nil {
		return zero, err
	}
	c := cache.New(4)
	const tenant = "e15"
	p1.AttachCache(c, tenant)
	cs := make([]*dlr.Ciphertext, e15CacheBatch)
	for i := range cs {
		m, err := dlr.RandMessage(rand.Reader, pk)
		if err != nil {
			return zero, err
		}
		if cs[i], err = dlr.Encrypt(rand.Reader, pk, m, nil); err != nil {
			return zero, err
		}
	}
	const iters = 4
	raw, err := p1.Marshal()
	if err != nil {
		return zero, err
	}
	// 2·iters instances per side: timeN and memN each run their passes.
	pool := make([]*dlr.P1, 4*iters+1)
	for i := range pool {
		q, err := dlr.UnmarshalP1(pk, raw, nil)
		if err != nil {
			return zero, err
		}
		q.AttachCache(c, tenant)
		pool[i] = q
	}
	next := 0
	run := func() {
		q := pool[next]
		next++
		if _, _, err := dlr.DecryptBatch(q, p2, cs); err != nil {
			panic(err)
		}
	}
	cold := func() { c.InvalidateTenant(tenant); run() }
	run() // publish the epoch's tables for the warm-side passes
	refNs := timeN(cold, iters) / e15CacheBatch
	fastNs := timeN(run, iters) / e15CacheBatch
	refAllocs, refBytes := memN(cold, iters)
	fastAllocs, fastBytes := memN(run, iters)
	return FastPathMeasurement{
		Op:              fmt.Sprintf("DLR.DecBatch(%d) tables (cold→cached, amortized)", e15CacheBatch),
		Iters:           iters,
		RefNsPerOp:      refNs,
		FastNsPerOp:     fastNs,
		Speedup:         refNs / fastNs,
		RefAllocsPerOp:  refAllocs / e15CacheBatch,
		FastAllocsPerOp: fastAllocs / e15CacheBatch,
		RefBytesPerOp:   refBytes / e15CacheBatch,
		FastBytesPerOp:  fastBytes / e15CacheBatch,
	}, nil
}

// E15Measurements times the parallel-tier operations against their
// serial twins — the data behind the E15 table and the parallel rows
// of bench_baseline.json.
func E15Measurements() ([]FastPathMeasurement, error) {
	ops, err := e15Ops()
	if err != nil {
		return nil, err
	}
	for _, op := range ops {
		op.ref()
		op.fast()
	}
	out := measureOps(ops)
	cached, err := cachedBatchMeasurement()
	if err != nil {
		return nil, err
	}
	return append(out, cached), nil
}

// E15Parallel regenerates the parallel-tier table: primitive
// serial-vs-parallel timings, the cached pipeline's worker curve, and
// the cache hit-rate sweep across tenants and capacities.
func E15Parallel() (*Table, error) {
	meas, err := E15Measurements()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E15",
		Title:  "parallel tier: chunked primitives, rotation-aware table cache, cached pipeline",
		Header: []string{"operation", "serial/cold", "parallel/cached", "speedup"},
	}
	for _, m := range meas {
		t.Rows = append(t.Rows, []string{
			m.Op,
			ms(time.Duration(m.RefNsPerOp)),
			ms(time.Duration(m.FastNsPerOp)),
			fmt.Sprintf("%.2fx", m.Speedup),
		})
	}

	// Worker curve of the cached single-tenant pipeline (the E13 curve
	// with the table cache attached).
	for _, w := range []int{1, 2, 4} {
		pt, err := DecPipelineCfg(PipelineConfig{Workers: w, Requests: 48, Batch: 12, CacheCap: 4})
		if err != nil {
			return nil, err
		}
		t.Notes = append(t.Notes, fmt.Sprintf(
			"pipeline: %d worker(s) → %.1f req/s (batch=%d, p50 %s, p99 %s, cache hit rate %.0f%%)",
			pt.Workers, pt.ReqPerSec, pt.Batch,
			ms(pt.P50), ms(pt.P99), 100*pt.CacheHitRate))
	}

	// Hit-rate sweep: 3 tenants interleaved batch-by-batch through one
	// shared cache. Capacity 1 thrashes (every batch a different
	// tenant evicts the survivor); capacity ≥ tenants converges to one
	// miss per tenant.
	for _, capacity := range []int{1, 3} {
		pt, err := DecPipelineCfg(PipelineConfig{Workers: 2, Requests: 36, Batch: 6, Tenants: 3, CacheCap: capacity})
		if err != nil {
			return nil, err
		}
		t.Notes = append(t.Notes, fmt.Sprintf(
			"cache sweep: tenants=3 capacity=%d → hit rate %.0f%% (%d hits / %d misses, %d evictions)",
			capacity, 100*pt.CacheHitRate, pt.CacheHits, pt.CacheMisses, pt.CacheEvictions))
	}

	t.Notes = append(t.Notes,
		"criterion: on ≥ 2 cores the parallel primitives reach ≥ 1.5× at the sizes above; small inputs stay on the serial zero-allocation paths (alloc gates in TestMultiExpPippengerAlloc et al.)",
		"criterion: a warm cache removes the per-batch table build (the cold→cached row) and a rotation always invalidates (TestBatchCacheRefreshInvalidates)",
		fmt.Sprintf("measured at GOMAXPROCS=%d on %d CPU(s); with a single CPU the parallel timings measure dispatch overhead, not speedup — the code paths still run and are race-checked", e15Procs(), runtime.NumCPU()),
		"parallel paths are differentially tested against their serial twins (parallel_test.go, batchpar_test.go) under GOMAXPROCS(4)",
	)
	return t, nil
}
