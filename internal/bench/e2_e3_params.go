package bench

import (
	"crypto/rand"
	"fmt"

	"repro/internal/dlr"
	"repro/internal/params"
)

// E2LeakageRates regenerates Theorem 4.1's leakage bounds: for a λ
// sweep, the derived κ, ℓ, secret-memory sizes and tolerated rates in
// both P1 layouts. The claim: in the optimal-rate layout
// ρ1 = λ/m1 = 1 − cn/(λ+cn) → 1−o(1), ρ1^Ref → 1/2−o(1), and ρ2 = 1 at
// all times.
func E2LeakageRates() *Table {
	t := &Table{
		ID:    "E2",
		Title: "tolerated leakage rates vs λ (Theorem 4.1)",
		Header: []string{
			"λ (bits)", "κ", "ℓ", "m1 opt (bits)", "ρ1 opt", "ρ1Ref opt",
			"m1 basic", "ρ1 basic", "ρ2",
		},
	}
	for _, lambda := range []int{254, 508, 1016, 4064, 16256, 65024, 260096} {
		p := params.MustNew(128, lambda)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(lambda), fmt.Sprint(p.Kappa), fmt.Sprint(p.Ell),
			fmt.Sprint(p.M1(params.ModeOptimalRate)),
			fmt.Sprintf("%.4f", p.Rate1(params.ModeOptimalRate)),
			fmt.Sprintf("%.4f", p.Rate1Refresh(params.ModeOptimalRate)),
			fmt.Sprint(p.M1(params.ModeBasic)),
			fmt.Sprintf("%.4f", p.Rate1(params.ModeBasic)),
			fmt.Sprintf("%.1f", p.Rate2()),
		})
	}
	t.Notes = append(t.Notes,
		"paper claim: ρ1 opt → 1 as λ grows (1−o(1)); ρ1Ref opt → 1/2; ρ2 = 1 — read the trend down the columns",
		"the basic layout's rate is bounded away from 1: that is why the §5.2 optimal-rate remark exists",
	)
	return t
}

// E3Sizes measures key and protocol-communication sizes vs λ. The
// claim: the ciphertext is two group elements regardless of λ, while
// shares and transcripts grow linearly in ℓ·κ.
func E3Sizes() (*Table, error) {
	t := &Table{
		ID:    "E3",
		Title: "key material and protocol communication sizes vs λ",
		Header: []string{
			"λ (bits)", "κ", "ℓ", "pk B", "share1 B", "share2 B", "ct B",
			"Dec bytes", "Ref bytes",
		},
	}
	for _, lambda := range []int{128, 256, 512} {
		prm := params.MustNew(40, lambda)
		pk, p1, p2, err := dlr.Gen(rand.Reader, prm)
		if err != nil {
			return nil, err
		}
		raw1, err := p1.Marshal()
		if err != nil {
			return nil, err
		}
		m, err := dlr.RandMessage(rand.Reader, pk)
		if err != nil {
			return nil, err
		}
		ct, err := dlr.Encrypt(rand.Reader, pk, m, nil)
		if err != nil {
			return nil, err
		}
		_, decStats, err := dlr.Decrypt(rand.Reader, p1, p2, ct)
		if err != nil {
			return nil, err
		}
		refStats, err := dlr.Refresh(rand.Reader, p1, p2)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(lambda), fmt.Sprint(prm.Kappa), fmt.Sprint(prm.Ell),
			fmt.Sprint(len(pk.Bytes())),
			fmt.Sprint(len(raw1)), fmt.Sprint(len(p2.Marshal())),
			fmt.Sprint(len(ct.Bytes())),
			fmt.Sprint(decStats.BytesP1 + decStats.BytesP2),
			fmt.Sprint(refStats.BytesP1 + refStats.BytesP2),
		})
	}
	t.Notes = append(t.Notes,
		"paper claim: ciphertext stays 2 group elements (448 B) for every λ — constant down the ct column",
		"transcripts grow ~linearly in ℓ·κ: the price of leakage resilience is paid in communication, not ciphertext size",
	)
	return t, nil
}
