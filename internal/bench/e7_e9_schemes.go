package bench

import (
	"crypto/rand"
	"fmt"

	"repro/internal/cca2"
	"repro/internal/dibe"
	"repro/internal/dlr"
	"repro/internal/params"
	"repro/internal/storage"
)

// E7DIBE measures DLRIBE's distributed operations vs the identity-hash
// dimension: extraction, master refresh, identity-key refresh and
// decryption latency, plus ciphertext size. Paper properties exercised:
// leakage-resilient sharing of BOTH the master and identity keys
// (§4.2), with Remark 4.1's generation-phase distinction.
func E7DIBE() (*Table, error) {
	prm := params.MustNew(40, 128)
	t := &Table{
		ID:     "E7",
		Title:  "DLRIBE distributed operations vs identity dimension (§4.2)",
		Header: []string{"nID", "extract", "master ref", "idkey ref", "dec (2-party)", "ct bytes"},
	}
	for _, nID := range []int{8, 16, 32} {
		pk, m1, m2, err := dibe.Gen(rand.Reader, prm, nID, nil, nil)
		if err != nil {
			return nil, err
		}
		var k1 *dibe.IDKeyP1
		var k2 *dibe.IDKeyP2
		extD, err := timeIt(func() error {
			var err error
			k1, k2, err = dibe.Extract(rand.Reader, m1, m2, "alice")
			return err
		})
		if err != nil {
			return nil, err
		}
		mrefD, err := timeIt(func() error { return dibe.RefreshMaster(rand.Reader, m1, m2) })
		if err != nil {
			return nil, err
		}
		irefD, err := timeIt(func() error { return dibe.RefreshIDKey(rand.Reader, k1, k2) })
		if err != nil {
			return nil, err
		}
		m, err := dibe.RandMessage(rand.Reader, pk)
		if err != nil {
			return nil, err
		}
		ct, err := dibe.Encrypt(rand.Reader, pk, "alice", m, nil)
		if err != nil {
			return nil, err
		}
		decD, err := timeIt(func() error {
			got, err := dibe.Decrypt(rand.Reader, k1, k2, ct)
			if err != nil {
				return err
			}
			if !got.Equal(m) {
				return fmt.Errorf("bench: DIBE decrypted wrong message")
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(nID), ms(extD), ms(mrefD), ms(irefD), ms(decD),
			fmt.Sprint(len(ct.Bytes())),
		})
	}
	t.Notes = append(t.Notes,
		"master refresh cost is independent of nID (it touches only the ℓ-sharing); extraction and decryption grow with nID",
	)
	return t, nil
}

// E8CCA2 measures the CHK transform's overhead: DLRCCA2 vs the
// underlying semantically secure scheme. The paper's claim (§4.3): CCA2
// security costs one OTS per ciphertext — the asymptotics are unchanged.
func E8CCA2() (*Table, error) {
	prm := params.MustNew(40, 128)
	const nID = 16
	t := &Table{
		ID:     "E8",
		Title:  "CCA2 (CHK transform) overhead vs CPA scheme (§4.3)",
		Header: []string{"scheme", "enc", "dec (2-party)", "ct bytes", "security"},
	}

	// CPA: plain DLR.
	{
		pk, p1, p2, err := dlr.Gen(rand.Reader, prm)
		if err != nil {
			return nil, err
		}
		m, _ := dlr.RandMessage(rand.Reader, pk)
		var ct *dlr.Ciphertext
		encD, err := timeIt(func() error {
			var err error
			ct, err = dlr.Encrypt(rand.Reader, pk, m, nil)
			return err
		})
		if err != nil {
			return nil, err
		}
		decD, err := timeIt(func() error {
			_, _, err := dlr.Decrypt(rand.Reader, p1, p2, ct)
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			"DLR", ms(encD), ms(decD), fmt.Sprint(len(ct.Bytes())), "CPA-CML",
		})
	}

	// CCA2: DLRCCA2.
	{
		pk, m1, m2, err := cca2.Gen(rand.Reader, prm, nID, nil, nil)
		if err != nil {
			return nil, err
		}
		m, _ := cca2.RandMessage(rand.Reader, pk)
		var ct *cca2.Ciphertext
		encD, err := timeIt(func() error {
			var err error
			ct, err = cca2.Encrypt(rand.Reader, pk, m, nil)
			return err
		})
		if err != nil {
			return nil, err
		}
		decD, err := timeIt(func() error {
			got, err := cca2.Decrypt(rand.Reader, pk, m1, m2, ct)
			if err != nil {
				return err
			}
			if !got.Equal(m) {
				return fmt.Errorf("bench: CCA2 decrypted wrong message")
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("DLRCCA2 (nID=%d)", nID), ms(encD), ms(decD),
			fmt.Sprint(len(ct.Bytes())), "CCA2-CML",
		})
	}
	t.Notes = append(t.Notes,
		"encryption overhead = one Lamport OTS keygen+sign; ciphertext grows by vk+signature (~24 KiB with SHA-256 Lamport)",
		"decryption overhead = signature check + distributed identity-key extraction per ciphertext",
	)
	return t, nil
}

// E9Storage measures the §4.4 secure-storage system: put/get latency and
// the cost of a full refresh period as the number of stored cells grows.
func E9Storage() (*Table, error) {
	prm := params.MustNew(40, 128)
	t := &Table{
		ID:     "E9",
		Title:  "secure storage on leaky devices (§4.4)",
		Header: []string{"cells", "put", "get (2-party)", "refresh period", "cell bytes"},
	}
	for _, cells := range []int{1, 4, 16} {
		st, err := storage.New(rand.Reader, prm)
		if err != nil {
			return nil, err
		}
		value := []byte("thirty-two bytes of secret data!")
		var putD, getD float64
		for i := 0; i < cells; i++ {
			key := fmt.Sprintf("cell-%d", i)
			d, err := timeIt(func() error { return st.Put(rand.Reader, key, value) })
			if err != nil {
				return nil, err
			}
			putD += d.Seconds()
		}
		d, err := timeIt(func() error {
			_, err := st.Get(rand.Reader, "cell-0")
			return err
		})
		if err != nil {
			return nil, err
		}
		getD = d.Seconds()
		refD, err := timeIt(func() error { return st.RefreshPeriod(rand.Reader) })
		if err != nil {
			return nil, err
		}
		ctBytes, _ := st.CiphertextBytes("cell-0")
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(cells),
			fmt.Sprintf("%.2fms", putD/float64(cells)*1000),
			fmt.Sprintf("%.2fms", getD*1000),
			ms(refD),
			fmt.Sprint(len(ctBytes)),
		})
	}
	t.Notes = append(t.Notes,
		"refresh scales with cell count only through cheap ciphertext re-randomization; the 2-party share refresh is paid once per period",
	)
	return t, nil
}
