package bench

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"time"

	"repro/internal/bn254"
	"repro/internal/group"
	"repro/internal/hpske"
	"repro/internal/scalar"
)

// E12 measures the endomorphism-accelerated scalar multiplication
// (GLV on G1, GLS on G2) against the plain windowed-NAF tier that PR 1
// introduced, and the precomputed-line pairing table against a cold
// Miller loop for a fixed G2 argument. The acceptance criteria from
// the endomorphism work: G1.ScalarMult ≥1.3× over wNAF, G2.ScalarMult
// ≥1.5× over wNAF, and fixed-G2 table pairing ≥1.5× over a cold Pair.

func endoOps() ([]fpOp, error) {
	ks := make([]*big.Int, 16)
	for i := range ks {
		k, err := scalar.Rand(rand.Reader)
		if err != nil {
			return nil, err
		}
		ks[i] = k
	}
	p1, _, err := bn254.RandG1(rand.Reader)
	if err != nil {
		return nil, err
	}
	p2, _, err := bn254.RandG2(rand.Reader)
	if err != nil {
		return nil, err
	}
	q2, _, err := bn254.RandG2(rand.Reader)
	if err != nil {
		return nil, err
	}
	// The table is built once outside the timed closures: it models the
	// fixed-key hot path, where construction cost amortizes across every
	// later pairing against the same G2 point.
	tab := bn254.NewPairingTable(q2)

	const kappa = 8
	sch, err := hpske.New[*bn254.G2](group.G2{}, kappa)
	if err != nil {
		return nil, err
	}
	key, err := sch.GenKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	msg, err := sch.G.Rand(rand.Reader)
	if err != nil {
		return nil, err
	}
	ct, err := sch.Encrypt(rand.Reader, key, msg)
	if err != nil {
		return nil, err
	}
	tt := hpske.PrecomputeTransport(ct)

	idx := func(i int) *big.Int { return ks[i%len(ks)] }
	return []fpOp{
		{
			name: "G1.ScalarMult (wNAF→GLV)", iters: 200,
			ref:  func() { new(bn254.G1).ScalarMultWNAF(p1, idx(0)) },
			fast: func() { new(bn254.G1).ScalarMult(p1, idx(0)) },
		},
		{
			name: "G2.ScalarMult (wNAF→GLS)", iters: 100,
			ref:  func() { new(bn254.G2).ScalarMultWNAF(p2, idx(1)) },
			fast: func() { new(bn254.G2).ScalarMult(p2, idx(1)) },
		},
		{
			name: "Pair fixed-G2 (cold→table)", iters: 20,
			ref:  func() { bn254.Pair(p1, q2) },
			fast: func() { tab.Pair(p1) },
		},
		{
			name: fmt.Sprintf("Transport(κ=%d) (cold→table)", kappa), iters: 10,
			ref:  func() { hpske.Transport(nil, p1, ct) },
			fast: func() { hpske.TransportPre(nil, p1, tt) },
		},
	}, nil
}

// EndoMeasurements times the endomorphism and pairing-table fast paths
// against their pre-endomorphism twins — the data behind the E12 table
// and the endomorphism rows of bench_baseline.json.
func EndoMeasurements() ([]FastPathMeasurement, error) {
	ops, err := endoOps()
	if err != nil {
		return nil, err
	}
	for _, op := range ops {
		// Warm up both sides once so one-time lazy setup (endomorphism
		// constants, fixed-base tables) is not charged to the timings.
		op.ref()
		op.fast()
	}
	return measureOps(ops), nil
}

// E12Endo regenerates the endomorphism-vs-wNAF / table-vs-cold-pairing
// speedup table.
func E12Endo() (*Table, error) {
	meas, err := EndoMeasurements()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E12",
		Title:  "endomorphism scalar multiplication and precomputed-line pairings",
		Header: []string{"operation", "before", "after", "speedup"},
	}
	for _, m := range meas {
		t.Rows = append(t.Rows, []string{
			m.Op,
			ms(time.Duration(m.RefNsPerOp)),
			ms(time.Duration(m.FastNsPerOp)),
			fmt.Sprintf("%.2fx", m.Speedup),
		})
	}
	t.Notes = append(t.Notes,
		"criterion: G1.ScalarMult ≥ 1.3× over plain wNAF (2-dim GLV decomposition)",
		"criterion: G2.ScalarMult ≥ 1.5× over plain wNAF (4-dim GLS decomposition)",
		"criterion: fixed-G2 pairing ≥ 1.5× over a cold Pair (precomputed line table)",
		"the 'before' column is PR 1's wNAF tier / cold Miller loop, itself already fast-path code",
		"all fast paths are differentially tested against reference twins (endo_test.go, pairingtable_test.go)",
	)
	return t, nil
}
