package bench

import (
	"crypto/rand"
	"fmt"

	"repro/internal/bn254"
	"repro/internal/dlr"
	"repro/internal/params"
	"repro/internal/stats"
)

// E10Ablations measures the design choices DESIGN.md §3 calls out:
// (a) reference vs optimized pairing path, (b) ModeBasic vs
// ModeOptimalRate secret memory and rate, (c) the §5.2 ciphertext-reuse
// remark, and (d) the refresh-distribution invariance of Definition 3.1.
func E10Ablations() (*Table, error) {
	t := &Table{
		ID:     "E10",
		Title:  "ablations of design choices",
		Header: []string{"ablation", "variant", "measurement"},
	}

	// (a) Pairing implementation strategy.
	{
		p, _, err := bn254.RandG1(nil)
		if err != nil {
			return nil, err
		}
		q, _, err := bn254.RandG2(nil)
		if err != nil {
			return nil, err
		}
		var fast, slow *bn254.GT
		fastD, _ := timeIt(func() error { fast = bn254.Pair(p, q); return nil })
		slowD, _ := timeIt(func() error { slow = bn254.PairReference(p, q); return nil })
		agree := fast.Equal(slow)
		t.Rows = append(t.Rows,
			[]string{"pairing", "optimized (twisted lines, Frobenius final exp)", ms(fastD)},
			[]string{"pairing", "reference (generic E(Fp12), literal exponent)", ms(slowD)},
			[]string{"pairing", "paths agree", fmt.Sprint(agree)},
		)
	}

	// (b) P1 memory layout.
	for _, mode := range []params.Mode{params.ModeBasic, params.ModeOptimalRate} {
		prm := params.MustNew(40, 256)
		pk, p1, p2, err := dlr.Gen(rand.Reader, prm, dlr.WithMode(mode))
		if err != nil {
			return nil, err
		}
		m, _ := dlr.RandMessage(rand.Reader, pk)
		ct, _ := dlr.Encrypt(rand.Reader, pk, m, nil)
		decD, err := timeIt(func() error {
			_, _, err := dlr.Decrypt(rand.Reader, p1, p2, ct)
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			"P1 layout", mode.String(),
			fmt.Sprintf("secret %d B, ρ1 %.3f, dec %s",
				len(p1.SecretBytes()), prm.Rate1(mode), ms(decD)),
		})
	}

	// (c) Ciphertext reuse: deriving the Dec-protocol GT ciphertexts by
	// pairing-transport of the existing fᵢ vs encrypting fresh GT
	// ciphertexts from scratch. Measured on one HPSKE ciphertext.
	{
		d, err := measureTransportVsFresh()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, d...)
	}

	// (d) Refresh distribution invariance (Definition 3.1): the refreshed
	// sharing reconstructs the identical secret every time (exact
	// invariant), and refreshed share components look fresh (uniformity
	// smoke test on the Φ' encodings).
	{
		prm := params.MustNew(40, 128)
		_, p1, p2, err := dlr.Gen(rand.Reader, prm, dlr.WithMode(params.ModeBasic))
		if err != nil {
			return nil, err
		}
		const rounds = 24
		phiSamples := make([][]byte, 0, rounds)
		for i := 0; i < rounds; i++ {
			if _, err := dlr.Refresh(rand.Reader, p1, p2); err != nil {
				return nil, err
			}
			sh, err := dlr.ExposeShareForTest(p1)
			if err != nil {
				return nil, err
			}
			phiSamples = append(phiSamples, sh.Payload.Bytes())
		}
		counts, err := stats.ByteBucketCounts(phiSamples, 4)
		if err != nil {
			return nil, err
		}
		stat, crit, err := stats.ChiSquareUniform(counts)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			"refresh dist.", fmt.Sprintf("Φ' trailing-byte buckets over %d refreshes", rounds),
			fmt.Sprintf("χ²=%.2f (1%% critical %.2f) — uniform: %v", stat, crit, stat <= crit),
		})
	}

	t.Notes = append(t.Notes,
		"claims: optimized pairing ≈ 8× the reference at identical outputs; optimal layout shrinks P1's secret memory by ~ℓ·|G2|;",
		"transport reuse trades κ+1 pairings for κ hash-to-GT encryption operations; refresh output distribution shows no bias",
	)
	return t, nil
}

func measureTransportVsFresh() ([][]string, error) {
	prm := params.MustNew(40, 256)
	pk, p1, p2, err := dlr.Gen(rand.Reader, prm)
	if err != nil {
		return nil, err
	}
	_ = pk
	_ = p2
	return dlr.MeasureTransportAblation(rand.Reader, p1)
}
