package bench

import (
	"crypto/rand"
	"fmt"

	"repro/internal/dlr"
	"repro/internal/opcount"
	"repro/internal/params"
)

// E4Latency measures wall-clock latency of Gen/Enc/Dec/Ref vs λ.
func E4Latency() (*Table, error) {
	t := &Table{
		ID:     "E4",
		Title:  "operation latency vs λ (in-process channel)",
		Header: []string{"λ (bits)", "κ", "ℓ", "Gen", "Enc", "Dec (2-party)", "Ref (2-party)", "BeginPeriod"},
	}
	for _, lambda := range []int{128, 256, 512} {
		prm := params.MustNew(40, lambda)
		var pk *dlr.PublicKey
		var p1 *dlr.P1
		var p2 *dlr.P2
		genD, err := timeIt(func() error {
			var err error
			pk, p1, p2, err = dlr.Gen(rand.Reader, prm)
			return err
		})
		if err != nil {
			return nil, err
		}
		m, err := dlr.RandMessage(rand.Reader, pk)
		if err != nil {
			return nil, err
		}
		var ct *dlr.Ciphertext
		encD, err := timeIt(func() error {
			var err error
			ct, err = dlr.Encrypt(rand.Reader, pk, m, nil)
			return err
		})
		if err != nil {
			return nil, err
		}
		decD, err := timeIt(func() error {
			got, _, err := dlr.Decrypt(rand.Reader, p1, p2, ct)
			if err != nil {
				return err
			}
			if !got.Equal(m) {
				return fmt.Errorf("bench: wrong decryption")
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		refD, err := timeIt(func() error {
			_, err := dlr.Refresh(rand.Reader, p1, p2)
			return err
		})
		if err != nil {
			return nil, err
		}
		rotD, err := timeIt(func() error { return p1.BeginPeriod(rand.Reader) })
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(lambda), fmt.Sprint(prm.Kappa), fmt.Sprint(prm.Ell),
			ms(genD), ms(encD), ms(decD), ms(refD), ms(rotD),
		})
	}
	t.Notes = append(t.Notes,
		"Enc stays ~constant (2 exps) while Dec/Ref grow with ℓ·κ — encryption never pays for the distribution",
	)
	return t, nil
}

// E6DeviceAsymmetry regenerates the §1.1 "Simplicity of One of the Two
// Devices" claim: per-device operation counts over one full period
// (decryption + refresh). P2 must show zero pairings and zero G1 work.
func E6DeviceAsymmetry() (*Table, error) {
	prm := params.MustNew(40, 256)
	ctr1, ctr2 := opcount.New(), opcount.New()
	pk, p1, p2, err := dlr.Gen(rand.Reader, prm, dlr.WithCounters(ctr1, ctr2))
	if err != nil {
		return nil, err
	}
	m, err := dlr.RandMessage(rand.Reader, pk)
	if err != nil {
		return nil, err
	}
	ct, err := dlr.Encrypt(rand.Reader, pk, m, nil)
	if err != nil {
		return nil, err
	}
	ctr1.Reset()
	ctr2.Reset()
	if _, _, err := dlr.Decrypt(rand.Reader, p1, p2, ct); err != nil {
		return nil, err
	}
	if _, err := dlr.Refresh(rand.Reader, p1, p2); err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "E6",
		Title:  "per-device operation counts over one period (§1.1 P2-simplicity claim)",
		Header: []string{"operation", "P1 (main processor)", "P2 (auxiliary device)"},
	}
	for _, op := range []opcount.Op{
		opcount.Pairing, opcount.G1Exp, opcount.G2Exp, opcount.GTExp,
		opcount.G2Mul, opcount.GTMul, opcount.GTInv, opcount.HashToG,
	} {
		t.Rows = append(t.Rows, []string{string(op), fmt.Sprint(ctr1.Get(op)), fmt.Sprint(ctr2.Get(op))})
	}
	verdict := "MATCH"
	if ctr2.Get(opcount.Pairing) != 0 || ctr2.Get(opcount.G1Exp) != 0 || ctr2.Get(opcount.HashToG) != 0 {
		verdict = "MISMATCH"
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("paper claim: P2 only samples scalars and computes products-of-powers of received elements — %s", verdict),
	)
	return t, nil
}
