package lint

import (
	"go/ast"
	"go/types"
)

// AtomicDiscipline enforces the //dlr:atomic access contract: an
// annotated field or variable may only be touched through its own
// atomic.* methods (epoch.Load(), epoch.Add(1)) or by passing its
// address straight into a sync/atomic package function. Everything
// else — a plain read, an assignment, a by-value copy, taking a method
// value, leaking the address — defeats the memory-ordering guarantee
// the annotation documents and is a finding.
//
// It also enforces annotation presence: the fields in requiredAtomic
// (the rotation counter the whole serving stack orders itself around)
// must carry //dlr:atomic, so removing an annotation is itself a
// finding rather than a silent loss of coverage.
var AtomicDiscipline = &Analyzer{
	Name: "atomic-discipline",
	Doc:  "flags non-atomic access to fields annotated //dlr:atomic",
	Run:  runAtomic,
}

// requiredAtomic lists the state that MUST carry //dlr:atomic.
// Matching is by package name (not path) so golden copies of the
// packages are checked identically.
var requiredAtomic = []struct{ pkg, typ, field string }{
	{"dlr", "P1", "epoch"},     // rotation counter read by every cache probe
	{"dlr", "P1", "batchTabs"}, // lock-free published batch-table snapshot
}

func runAtomic(pass *Pass) {
	checkRequiredAtomic(pass)
	info := pass.Pkg.Info

	// First pass: collect the selector expressions that appear in a
	// sanctioned position — as the receiver of a method call on the
	// atomic value itself, or behind & as an argument to a sync/atomic
	// function.
	allowed := map[ast.Expr]bool{}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				// x.epoch.Load(): the inner selector x.epoch is the
				// sanctioned receiver use.
				if inner := atomicRef(pass, sel.X); inner != nil {
					allowed[inner] = true
				}
			}
			if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
				for _, arg := range call.Args {
					if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op.String() == "&" {
						if inner := atomicRef(pass, u.X); inner != nil {
							allowed[inner] = true
						}
					}
				}
			}
			return true
		})
	}

	// Second pass: every remaining reference to an annotated object is
	// a plain access.
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			e, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			ref := atomicRef(pass, e)
			if ref == nil || ref != e || allowed[e] {
				return true
			}
			obj := atomicRefObj(pass, e)
			pass.Reportf(e.Pos(), "%s is //dlr:atomic and may only be used through its atomic methods (or &-passed to sync/atomic), not read, written or copied directly", obj.Name())
			return false
		})
	}
}

// atomicRef returns e if it refers directly to a //dlr:atomic object
// (a selector resolving to an annotated field, or an identifier naming
// an annotated variable), nil otherwise.
func atomicRef(pass *Pass, e ast.Expr) ast.Expr {
	if atomicRefObj(pass, e) != nil {
		return ast.Unparen(e)
	}
	return nil
}

func atomicRefObj(pass *Pass, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if obj := pass.Pkg.Info.Uses[x.Sel]; obj != nil && pass.Reg.AtomicObj(obj) {
			return obj
		}
	case *ast.Ident:
		// Bare identifiers only ever name package- or local-scope
		// variables: field uses always appear under a SelectorExpr (whose
		// Sel ident is also in Uses, but is handled — and positioned — as
		// the selector). Declaration idents (Defs) are not accesses.
		obj := pass.Pkg.Info.Uses[x]
		if v, ok := obj.(*types.Var); ok && !v.IsField() && pass.Reg.AtomicObj(obj) {
			return obj
		}
	}
	return nil
}

func checkRequiredAtomic(pass *Pass) {
	pkgName := pass.Pkg.Types.Name()
	for _, req := range requiredAtomic {
		if req.pkg != pkgName {
			continue
		}
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || ts.Name.Name != req.typ {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						for _, name := range field.Names {
							if name.Name != req.field {
								continue
							}
							if !pass.Reg.AtomicObj(pass.Pkg.Info.Defs[name]) {
								pass.Reportf(name.Pos(), "field %s.%s.%s orders the rotation pipeline and must be annotated //dlr:atomic", req.pkg, req.typ, req.field)
							}
						}
					}
				}
			}
		}
	}
}
