// Package zeroize exercises the zeroize-paths analyzer: //dlr:zeroize
// functions must wipe their staged secret on every successful exit.
package zeroize

import "errors"

type key []byte

func (k key) Zeroize() {}

type state struct {
	k key
}

func cond() bool { return false }

func errOp() error { return errors.New("boom") }

// good wipes before the success return; the error return leaves state
// for the caller and is exempt.
//
//dlr:zeroize k
func (s *state) good(fail bool) error {
	if fail {
		return errOp()
	}
	s.k.Zeroize()
	return nil
}

// deferred covers every exit, including panics.
//
//dlr:zeroize k
func (s *state) deferred(fail bool) error {
	defer s.k.Zeroize()
	if fail {
		return nil
	}
	return nil
}

// viaParam wipes an annotated parameter.
//
//dlr:zeroize tmp
func viaParam(tmp key) {
	tmp.Zeroize()
}

//dlr:zeroize k
func (s *state) earlyNil(fail bool) error {
	if fail {
		return nil // want `every successful exit of earlyNil must call s.k.Zeroize`
	}
	s.k.Zeroize()
	return nil
}

//dlr:zeroize k
func (s *state) guardReturn() {
	if cond() {
		return // want `every successful exit of guardReturn must call s.k.Zeroize`
	}
	s.k.Zeroize()
}

//dlr:zeroize k
func (s *state) falloff() {
	if cond() {
		s.k.Zeroize()
		return
	}
} // want `every successful exit of falloff must call s.k.Zeroize\(\) first \(//dlr:zeroize k\): falling off the end`

// errorPathsExempt never wipes on failure and that is fine.
//
//dlr:zeroize k
func (s *state) errorPathsExempt() error {
	if cond() {
		return errOp()
	}
	if err := errOp(); err != nil {
		return err
	}
	s.k.Zeroize()
	return nil
}

// badTarget: the annotated name must resolve against receiver fields
// or parameters.
//
//dlr:zeroize missing
func (s *state) badTarget() { // want `//dlr:zeroize names missing, which is neither a receiver field nor a parameter`
	s.k.Zeroize()
}
