// Package ignore exercises the //dlrlint:ignore directive: a
// well-formed directive suppresses its analyzer on its own line and
// the next; a directive missing its reason, or naming an unknown
// analyzer, is itself a finding. The expectations for this package are
// asserted programmatically in lint_test.go (a directive line cannot
// also carry a want comment).
package ignore

import "math/big"

// hot is a hot path with one justified and one unjustified allocation.
//
//dlr:noalloc
func hot(dst *big.Int) {
	//dlrlint:ignore hot-path-alloc one-time warmup allocation, amortized by the caller
	tmp := new(big.Int)
	dst.Add(dst, tmp)
	tmp2 := new(big.Int) // this one survives
	dst.Add(dst, tmp2)
}

//dlrlint:ignore hot-path-alloc
var missingReason = 0

//dlrlint:ignore no-such-analyzer because reasons
var unknownAnalyzer = 0

// A well-formed directive that suppresses nothing is itself a finding
// (stale ignore), so suppressions cannot outlive the code they
// excused.
//
//dlrlint:ignore hot-path-alloc this line allocates nothing, so the directive is stale
var staleIgnore = 0
