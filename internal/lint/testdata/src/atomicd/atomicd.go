// Package atomicd exercises the atomic-discipline analyzer: fields
// annotated //dlr:atomic may only be touched through their atomic
// methods or by &-passing them to sync/atomic functions.
package atomicd

import "sync/atomic"

type counterBox struct {
	//dlr:atomic
	epoch atomic.Uint64
	//dlr:atomic
	n uint64
	// plain carries no annotation and is never flagged.
	plain uint64
}

func ok(b *counterBox) uint64 {
	b.epoch.Add(1)
	atomic.AddUint64(&b.n, 1)
	_ = atomic.LoadUint64(&b.n)
	_ = b.plain
	b.plain = 7
	return b.epoch.Load()
}

func plainRead(b *counterBox) uint64 {
	return b.n // want `n is //dlr:atomic and may only be used through its atomic methods`
}

func plainWrite(b *counterBox) {
	b.n = 7 // want `n is //dlr:atomic`
}

func escapedAddress(b *counterBox) *uint64 {
	return &b.n // want `n is //dlr:atomic`
}

func methodValue(b *counterBox) func() uint64 {
	return b.epoch.Load // want `epoch is //dlr:atomic`
}

func copied(b *counterBox) {
	x := b.n // want `n is //dlr:atomic`
	_ = x
}
