// Package alloc is golden input for the hot-path-alloc analyzer.
package alloc

import "math/big"

func helper() {}

// hot is a zero-allocation hot path; every allocation source inside it
// must be flagged.
//
//dlr:noalloc
func hot(dst, a, b *big.Int) {
	dst.Add(a, b)
	tmp := new(big.Int) // want `hot is //dlr:noalloc but calls new`
	dst.Add(dst, tmp)
	s := make([]byte, 8) // want `hot is //dlr:noalloc but calls make`
	s = append(s, 1)     // want `hot is //dlr:noalloc but calls append`
	_ = s
	f := func() {} // want `hot is //dlr:noalloc but defines a closure`
	f()
	go helper()     // want `hot is //dlr:noalloc but starts a goroutine`
	p := &big.Int{} // want `hot is //dlr:noalloc but takes the address of a composite literal`
	_ = p
	v := []int{1, 2} // want `hot is //dlr:noalloc but builds a \[\]int literal`
	_ = v
	k := big.NewInt(3) // want `hot is //dlr:noalloc but constructs a big\.Int temporary`
	k.SetBytes(nil)    // want `hot is //dlr:noalloc but materializes big\.Int digits`
	_ = k
	_ = []byte("hi") // want `hot is //dlr:noalloc but converts between string and slice`
}

// cold is unannotated: the same constructs are fine.
func cold() *big.Int {
	_ = make([]byte, 8)
	return new(big.Int)
}
