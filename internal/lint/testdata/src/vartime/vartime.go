// Package vartime is golden input for the vartime-taint analyzer.
// Lines carrying a `// want ...` comment must produce a matching
// diagnostic; every other line must stay silent.
package vartime

import (
	"bytes"
	"fmt"
	"math/big"

	"repro/internal/ff"
	"repro/internal/hpske"
)

// T pairs a secret share with a public value.
type T struct {
	//dlr:secret
	share []*big.Int
	pub   *big.Int
}

func logShare(t *T) {
	fmt.Printf("share[0] = %v\n", t.share[0]) // want `secret value reaches fmt\.Printf`
	fmt.Printf("pub = %v\n", t.pub)           // public value: fine
}

func stringify(t *T) string {
	return t.share[0].String() // want `secret value reaches \(\*math/big\.Int\)\.String`
}

func compare(t *T, guess []byte) bool {
	return bytes.Equal(t.share[0].Bytes(), guess) // want `secret value reaches bytes\.Equal`
}

func modInverse(t *T) *big.Int {
	return new(big.Int).ModInverse(t.share[0], ff.Order()) // want `secret value reaches \(\*math/big\.Int\)\.ModInverse`
}

// invert lowers scalars into the field and inverts them.
//
//dlr:secret sk
func invert(sk, pub *big.Int) ff.Fp {
	var x, z ff.Fp
	x.SetBig(sk)
	z.InverseVartime(&x) // want `secret value reaches \(\*repro/internal/ff\.Fp\)\.InverseVartime`

	var p, zp ff.Fp
	p.SetBig(pub)
	zp.InverseVartime(&p) // public operand: the intended use
	return z
}

// keyString exercises the cross-package type annotation on hpske.Key.
func keyString(k hpske.Key) string {
	return k[0].String() // want `secret value reaches \(\*math/big\.Int\)\.String`
}

func statementMark() *big.Int {
	//dlr:secret
	w := big.NewInt(5)
	fmt.Println(w) // want `secret value reaches fmt\.Println`
	return w
}

func digest(x *big.Int) []byte { return x.Bytes() }

// okLaunder documents the intra-procedural stance: taint does not
// survive a call to an ordinary (non value-preserving) function.
func okLaunder(t *T) {
	fmt.Println(digest(t.share[0]))
	fmt.Println(len(t.share)) // len sanitizes
}
