// Package borrowed exercises the payload-ownership analyzer: values
// from //dlr:borrowed producers alias callee scratch and must be
// copied before they outlive the producing call.
package borrowed

type msg struct {
	kind    byte
	payload []byte
}

type reader struct {
	scratch []byte
}

// next reuses r.scratch across calls; callers own nothing.
//
//dlr:borrowed
func (r *reader) next() msg {
	return msg{payload: r.scratch}
}

type sink struct {
	held []byte
}

var global []byte

func use([]byte) {}

func okCopyAndDecode(r *reader, s *sink) {
	m := r.next()
	s.held = append([]byte(nil), m.payload...)
	use(m.payload)
	_ = string(m.payload)
	_ = len(m.payload)
}

func okClearThenSend(r *reader, ch chan msg) {
	m := r.next()
	m.payload = append([]byte(nil), m.payload...)
	ch <- m
}

func okReturn(r *reader) []byte {
	m := r.next()
	return m.payload
}

func fieldStore(r *reader, s *sink) {
	m := r.next()
	s.held = m.payload // want `borrowed payload stored to a field`
}

func globalStore(r *reader) {
	m := r.next()
	global = m.payload // want `borrowed payload stored to package variable global`
}

func mapStore(r *reader, tab map[int][]byte) {
	m := r.next()
	tab[0] = m.payload // want `borrowed payload stored into a map or slice`
}

func channelSend(r *reader, ch chan []byte) {
	m := r.next()
	ch <- m.payload // want `borrowed payload sent on a channel`
}

func goroutineArg(r *reader) {
	m := r.next()
	go use(m.payload) // want `borrowed payload passed to a goroutine`
}

func goroutineCapture(r *reader) {
	m := r.next()
	go func() { // want `goroutine closure captures a borrowed payload`
		use(m.payload)
	}()
}

func sliceAlias(r *reader, s *sink) {
	m := r.next()
	p := m.payload[1:]
	s.held = p // want `borrowed payload stored to a field`
}

// handler's buf parameter is declared borrowed: the caller's read loop
// reuses it.
//
//dlr:borrowed buf
func handler(buf []byte, s *sink) {
	use(buf)
	s.held = buf // want `borrowed payload stored to a field`
}
