// Package locks exercises the lock-discipline analyzer: guarded-field
// access, the declared lock order, and blocking operations under held
// mutexes.
//
//dlr:lock-order mu wmu
package locks

import (
	"net"
	"sync"
)

type box struct {
	mu  sync.Mutex
	wmu sync.Mutex
	//dlr:guarded-by mu
	count int
	//dlr:guarded-by wmu
	pend []byte
}

func good(b *box) {
	b.mu.Lock()
	b.count++
	b.mu.Unlock()
}

func goodDefer(b *box) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.count
}

func goodOrder(b *box) {
	b.mu.Lock()
	b.wmu.Lock()
	b.pend = append(b.pend, byte(b.count))
	b.wmu.Unlock()
	b.mu.Unlock()
}

// lockedHelper's caller holds b.mu, so the unlocked access is fine.
//
//dlr:locked mu
func (b *box) lockedHelper() int {
	return b.count
}

func branchy(b *box) {
	b.mu.Lock()
	if b.count > 0 {
		b.mu.Unlock()
		return
	}
	b.count = 2
	b.mu.Unlock()
}

func nonBlockingSend(b *box, ch chan int) {
	b.mu.Lock()
	select {
	case ch <- b.count:
	default:
	}
	b.mu.Unlock()
}

func unguarded(b *box) int {
	return b.count // want `count is //dlr:guarded-by mu, which is not held here`
}

func wrongMutex(b *box) {
	b.wmu.Lock()
	b.count = 1 // want `count is //dlr:guarded-by mu`
	b.wmu.Unlock()
}

func badOrder(b *box) {
	b.wmu.Lock()
	b.mu.Lock() // want `acquires mu while holding wmu, violating the declared //dlr:lock-order`
	b.mu.Unlock()
	b.wmu.Unlock()
}

func heldAcrossSend(b *box, ch chan int) {
	b.mu.Lock()
	ch <- 1 // want `channel send while holding b.mu`
	b.mu.Unlock()
}

func heldAcrossSelectSend(b *box, ch chan int) {
	b.mu.Lock()
	select {
	case ch <- 1: // want `channel send while holding b.mu`
	case <-ch:
	}
	b.mu.Unlock()
}

func heldAcrossWrite(b *box, conn net.Conn) {
	b.wmu.Lock()
	defer b.wmu.Unlock()
	if _, err := conn.Write(b.pend); err != nil { // want `call to \(net.Conn\).Write while holding b.wmu`
		return
	}
	b.pend = b.pend[:0]
}

type rwbox struct {
	mu sync.RWMutex
	//dlr:guarded-by mu
	v int
}

func readUnderRLock(b *rwbox) int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.v
}

func writeUnderRLock(b *rwbox) {
	b.mu.RLock()
	b.v = 1 // want `v is written while mu is held read-only`
	b.mu.RUnlock()
}
