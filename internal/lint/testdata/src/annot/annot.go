// Package dlr (a golden stand-in, matched by name) exercises the
// annotation-presence check: the scheme's long-lived shares must carry
// //dlr:secret, so stripping an annotation is itself a finding.
package dlr

// P1 mirrors the real P1's secret fields, unannotated.
type P1 struct {
	sk1    int // want `field dlr\.P1\.sk1 holds key-share material and must be annotated //dlr:secret`
	skcomm int // want `field dlr\.P1\.skcomm holds key-share material and must be annotated //dlr:secret`
}

// P2 carries the annotation and must stay silent.
type P2 struct {
	//dlr:secret
	sk2 int
}
