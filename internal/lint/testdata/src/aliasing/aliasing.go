// Package aliasing is golden input for the into-aliasing analyzer.
package aliasing

import (
	"math/big"

	"repro/internal/ff"
)

func batch(out, xs, prefix, buf []ff.Fp) {
	ff.BatchInverseFpInto(out, xs, prefix)
	ff.BatchInverseFpInto(xs, xs, prefix) // out may alias xs per contract
	ff.BatchInverseFpInto(out, xs, out)   // want `BatchInverseFpInto: prefix must not alias out`
	ff.BatchInverseFpInto(buf, xs, xs)    // want `BatchInverseFpInto: prefix must not alias xs`
	ff.BatchInverseFp2Into(nil, nil, nil) // nil operands are not shared storage
}

func sliced(out, xs []ff.Fp) {
	// A subslice overlaps its base for all the linter knows.
	ff.BatchInverseFpInto(out, xs, out[1:]) // want `BatchInverseFpInto: prefix must not alias out`
}

func sumInto(dst, a, b *big.Int) { dst.Add(a, b) }

func callers(x, y, dst *big.Int) {
	sumInto(dst, x, y)
	sumInto(x, x, y) // want `sumInto has no aliasing contract recorded in the into-aliasing table`
	//dlrlint:ignore into-aliasing in-place doubling is safe: Add reads both operands before writing
	sumInto(y, y, y) // suppressed by the directive above
}
