// Package serial is golden input for the unchecked-serialization
// analyzer.
package serial

import "math/big"

type frame struct{ n big.Int }

// DecodeFrom is decode-shaped by name.
func (f *frame) DecodeFrom(raw []byte) error {
	f.n.SetBytes(raw)
	return nil
}

func sigFromBytes(raw []byte) (*frame, error) {
	f := &frame{}
	return f, f.DecodeFrom(raw)
}

func bad(raw []byte, s string) *frame {
	var f frame
	f.DecodeFrom(raw)       // want `result of \(\*testdata/serial\.frame\)\.DecodeFrom dropped`
	defer f.DecodeFrom(raw) // want `dropped by defer`
	go f.DecodeFrom(raw)    // want `dropped by go statement`

	x, _ := new(big.Int).SetString(s, 10) // want `error/ok result of \(\*math/big\.Int\)\.SetString assigned to _`
	f.n.Set(x)

	g, _ := sigFromBytes(raw) // want `error/ok result of testdata/serial\.sigFromBytes assigned to _`
	return g
}

func good(raw []byte, s string) (*frame, error) {
	var f frame
	if err := f.DecodeFrom(raw); err != nil {
		return nil, err
	}
	if _, ok := new(big.Int).SetString(s, 10); !ok {
		return nil, nil
	}
	return sigFromBytes(raw)
}
