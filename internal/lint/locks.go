package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockDiscipline enforces the serving stack's mutex contracts:
//
//   - a field annotated //dlr:guarded-by <mu> may only be accessed
//     while <mu> on the same struct value is held (Lock/RLock seen on
//     the path, a deferred Unlock, or a //dlr:locked annotation on the
//     enclosing method); writing under an RLock is a finding;
//   - acquiring a mutex listed in the package's //dlr:lock-order while
//     holding one that appears later in the list is a finding;
//   - blocking operations under any held mutex — a bare channel send,
//     a send in a select without default, or a call in the
//     lockBlockingSinks table (network writes) — are findings.
//
// The analysis is a conservative intra-procedural walk: branches are
// analyzed with copies of the held set and merged by intersection of
// the non-terminating paths; loop bodies are analyzed once against the
// loop-entry state; function literals are independent scopes with an
// empty held set, except immediately-invoked literals (which run
// inline and inherit the locks) and goroutine bodies (which run
// elsewhere and inherit nothing).
var LockDiscipline = &Analyzer{
	Name: "lock-discipline",
	Doc:  "checks //dlr:guarded-by access, //dlr:lock-order acquisition, and blocking calls under locks",
	Run:  runLocks,
}

// lockBlockingSinks are calls that can block indefinitely (network
// writes park on the kernel send buffer until the peer drains it).
// Keyed by types.Func.FullName.
var lockBlockingSinks = map[string]bool{
	"(net.Conn).Write":                     true,
	"(*net.TCPConn).Write":                 true,
	"(*net.UnixConn).Write":                true,
	"repro/internal/wire.Write":            true,
	"repro/internal/wire.WriteMux":         true,
	"(repro/internal/device.Channel).Send": true,
}

// lockState is what the walker knows about one held mutex.
type lockState struct {
	rlock    bool // held via RLock: guarded reads ok, writes are not
	deferred bool // an Unlock is deferred, so it stays held to the end
}

type funcLocks struct {
	pass    *Pass
	order   map[string]int // declared //dlr:lock-order ranks, may be nil
	visited map[*ast.FuncLit]bool
}

func runLocks(pass *Pass) {
	fl := &funcLocks{
		pass:    pass,
		order:   pass.Reg.LockOrder(pass.Pkg.Path),
		visited: map[*ast.FuncLit]bool{},
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			held := map[string]lockState{}
			for _, mu := range pass.Reg.LockedMus(pass.Pkg.Info.Defs[fd.Name]) {
				key := mu
				if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
					key = fd.Recv.List[0].Names[0].Name + "." + mu
				}
				held[key] = lockState{deferred: true}
			}
			fl.block(fd.Body.List, held)
		}
	}
}

func cloneHeld(held map[string]lockState) map[string]lockState {
	c := make(map[string]lockState, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

// intersectHeld merges branch outcomes: a mutex is held after the
// branch only if every surviving path holds it; a read-only hold on
// any path makes the merged hold read-only.
func intersectHeld(sets []map[string]lockState) map[string]lockState {
	if len(sets) == 0 {
		return map[string]lockState{}
	}
	out := cloneHeld(sets[0])
	for _, s := range sets[1:] {
		for k, v := range out {
			sv, ok := s[k]
			if !ok {
				delete(out, k)
				continue
			}
			v.rlock = v.rlock || sv.rlock
			v.deferred = v.deferred && sv.deferred
			out[k] = v
		}
	}
	return out
}

// muBase returns the mutex field/var name of a held-set key
// ("ss.wmu" → "wmu", "cachesMu" → "cachesMu").
func muBase(key string) string {
	if i := strings.LastIndex(key, "."); i >= 0 {
		return key[i+1:]
	}
	return key
}

// lockCall recognizes X.Lock / X.RLock / X.Unlock / X.RUnlock on a
// sync.Mutex or sync.RWMutex and returns the held-set key for X plus
// the operation kind ("" when the call is not a mutex operation).
func (fl *funcLocks) lockCall(call *ast.CallExpr) (string, string) {
	fn := calleeFunc(fl.pass.Pkg.Info, call)
	if fn == nil {
		return "", ""
	}
	var kind string
	switch fn.FullName() {
	case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock":
		kind = "lock"
	case "(*sync.RWMutex).RLock":
		kind = "rlock"
	case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock":
		kind = "unlock"
	case "(*sync.RWMutex).RUnlock":
		kind = "runlock"
	default:
		return "", ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	return types.ExprString(sel.X), kind
}

// acquire records a Lock/RLock, checking the declared lock order
// against everything already held.
func (fl *funcLocks) acquire(key string, pos token.Pos, held map[string]lockState, rlock bool) {
	if fl.order != nil {
		if nr, ok := fl.order[muBase(key)]; ok {
			keys := make([]string, 0, len(held))
			for k := range held {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if hr, ok := fl.order[muBase(k)]; ok && hr > nr {
					fl.pass.Reportf(pos, "acquires %s while holding %s, violating the declared //dlr:lock-order", muBase(key), muBase(k))
				}
			}
		}
	}
	held[key] = lockState{rlock: rlock}
}

func (fl *funcLocks) reportBlocking(pos token.Pos, held map[string]lockState, what string) {
	if len(held) == 0 {
		return
	}
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fl.pass.Reportf(pos, "%s while holding %s can block with the lock held; move it outside the critical section", what, keys[0])
}

func (fl *funcLocks) block(list []ast.Stmt, held map[string]lockState) (map[string]lockState, bool) {
	for _, s := range list {
		var term bool
		held, term = fl.stmt(s, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (fl *funcLocks) stmt(s ast.Stmt, held map[string]lockState) (map[string]lockState, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, kind := fl.lockCall(call); kind != "" {
				switch kind {
				case "lock":
					fl.acquire(key, call.Pos(), held, false)
				case "rlock":
					fl.acquire(key, call.Pos(), held, true)
				default: // unlock, runlock
					delete(held, key)
				}
				return held, false
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				if _, builtin := fl.pass.Pkg.Info.Uses[id].(*types.Builtin); builtin {
					fl.scanExpr(s.X, held, false)
					return held, true
				}
			}
		}
		fl.scanExpr(s.X, held, false)
		return held, false
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			fl.scanExpr(rhs, held, false)
		}
		for _, lhs := range s.Lhs {
			fl.scanExpr(lhs, held, true)
		}
		return held, false
	case *ast.IncDecStmt:
		fl.scanExpr(s.X, held, true)
		return held, false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						fl.scanExpr(v, held, false)
					}
				}
			}
		}
		return held, false
	case *ast.SendStmt:
		fl.scanExpr(s.Chan, held, false)
		fl.scanExpr(s.Value, held, false)
		fl.reportBlocking(s.Arrow, held, "channel send")
		return held, false
	case *ast.DeferStmt:
		fl.deferCall(s.Call, held)
		return held, false
	case *ast.GoStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			fl.funcLit(lit, map[string]lockState{})
		} else {
			fl.scanExpr(s.Call.Fun, held, false)
		}
		for _, a := range s.Call.Args {
			fl.scanExpr(a, held, false)
		}
		return held, false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			fl.scanExpr(r, held, false)
		}
		return held, true
	case *ast.BranchStmt:
		return held, true
	case *ast.BlockStmt:
		return fl.block(s.List, held)
	case *ast.LabeledStmt:
		return fl.stmt(s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = fl.stmt(s.Init, held)
		}
		fl.scanExpr(s.Cond, held, false)
		thenHeld, thenTerm := fl.block(s.Body.List, cloneHeld(held))
		elseHeld, elseTerm := cloneHeld(held), false
		if s.Else != nil {
			elseHeld, elseTerm = fl.stmt(s.Else, cloneHeld(held))
		}
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseHeld, false
		case elseTerm:
			return thenHeld, false
		default:
			return intersectHeld([]map[string]lockState{thenHeld, elseHeld}), false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = fl.stmt(s.Init, held)
		}
		if s.Cond != nil {
			fl.scanExpr(s.Cond, held, false)
		}
		body, _ := fl.block(s.Body.List, cloneHeld(held))
		if s.Post != nil {
			fl.stmt(s.Post, body)
		}
		return held, false
	case *ast.RangeStmt:
		fl.scanExpr(s.X, held, false)
		fl.block(s.Body.List, cloneHeld(held))
		return held, false
	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = fl.stmt(s.Init, held)
		}
		if s.Tag != nil {
			fl.scanExpr(s.Tag, held, false)
		}
		return fl.caseClauses(s.Body.List, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held, _ = fl.stmt(s.Init, held)
		}
		return fl.caseClauses(s.Body.List, held)
	case *ast.SelectStmt:
		return fl.selectStmt(s, held)
	}
	return held, false
}

func (fl *funcLocks) caseClauses(list []ast.Stmt, held map[string]lockState) (map[string]lockState, bool) {
	var results []map[string]lockState
	hasDefault := false
	for _, cs := range list {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			fl.scanExpr(e, held, false)
		}
		h, term := fl.block(cc.Body, cloneHeld(held))
		if !term {
			results = append(results, h)
		}
	}
	if !hasDefault {
		results = append(results, cloneHeld(held))
	}
	if len(results) == 0 {
		return held, true
	}
	return intersectHeld(results), false
}

func (fl *funcLocks) selectStmt(s *ast.SelectStmt, held map[string]lockState) (map[string]lockState, bool) {
	hasDefault := false
	for _, cs := range s.Body.List {
		if cc, ok := cs.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	var results []map[string]lockState
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		h := cloneHeld(held)
		if send, ok := cc.Comm.(*ast.SendStmt); ok {
			fl.scanExpr(send.Chan, h, false)
			fl.scanExpr(send.Value, h, false)
			// With a default clause the send is non-blocking (the
			// intake fast path depends on this); without one the
			// select parks with the lock held.
			if !hasDefault {
				fl.reportBlocking(send.Arrow, h, "channel send")
			}
		} else if cc.Comm != nil {
			// Receive: blocking on input is the window loop's idle
			// state, not a finding; still scan for guarded accesses.
			h, _ = fl.stmt(cc.Comm, h)
		}
		h, term := fl.block(cc.Body, h)
		if !term {
			results = append(results, h)
		}
	}
	if len(results) == 0 {
		return held, true
	}
	return intersectHeld(results), false
}

// deferCall handles a defer: a deferred Unlock keeps the mutex held to
// function end; a deferred closure is scanned for Unlocks and analyzed
// as its own scope.
func (fl *funcLocks) deferCall(call *ast.CallExpr, held map[string]lockState) {
	if key, kind := fl.lockCall(call); kind != "" {
		if kind == "unlock" || kind == "runlock" {
			if st, ok := held[key]; ok {
				st.deferred = true
				held[key] = st
			}
		}
		return
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			c, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if key, kind := fl.lockCall(c); kind == "unlock" || kind == "runlock" {
				if st, ok := held[key]; ok {
					st.deferred = true
					held[key] = st
				}
			}
			return true
		})
		fl.funcLit(lit, map[string]lockState{})
		return
	}
	for _, a := range call.Args {
		fl.scanExpr(a, held, false)
	}
}

// funcLit analyzes a function literal exactly once as its own scope.
func (fl *funcLocks) funcLit(lit *ast.FuncLit, held map[string]lockState) {
	if fl.visited[lit] {
		return
	}
	fl.visited[lit] = true
	fl.block(lit.Body.List, held)
}

// scanExpr checks one expression tree for guarded-field accesses and
// blocking calls. write applies to the outermost addressable chain
// (assignment LHS, IncDec operand).
func (fl *funcLocks) scanExpr(e ast.Expr, held map[string]lockState, write bool) {
	switch x := e.(type) {
	case nil:
	case *ast.Ident:
		fl.checkGuarded(x, nil, held, write)
	case *ast.SelectorExpr:
		fl.checkGuarded(x.Sel, x, held, write)
		fl.scanExpr(x.X, held, false)
	case *ast.ParenExpr:
		fl.scanExpr(x.X, held, write)
	case *ast.StarExpr:
		fl.scanExpr(x.X, held, write)
	case *ast.UnaryExpr:
		fl.scanExpr(x.X, held, false)
	case *ast.BinaryExpr:
		fl.scanExpr(x.X, held, false)
		fl.scanExpr(x.Y, held, false)
	case *ast.IndexExpr:
		fl.scanExpr(x.X, held, write)
		fl.scanExpr(x.Index, held, false)
	case *ast.IndexListExpr:
		fl.scanExpr(x.X, held, write)
	case *ast.SliceExpr:
		fl.scanExpr(x.X, held, write)
		fl.scanExpr(x.Low, held, false)
		fl.scanExpr(x.High, held, false)
		fl.scanExpr(x.Max, held, false)
	case *ast.TypeAssertExpr:
		fl.scanExpr(x.X, held, false)
	case *ast.KeyValueExpr:
		fl.scanExpr(x.Value, held, false)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				// Struct-literal keys are field names, not reads; map
				// keys are real expressions.
				if id, isID := kv.Key.(*ast.Ident); !isID || !isFieldIdent(fl.pass, id) {
					fl.scanExpr(kv.Key, held, false)
				}
				fl.scanExpr(kv.Value, held, false)
				continue
			}
			fl.scanExpr(elt, held, false)
		}
	case *ast.FuncLit:
		fl.funcLit(x, map[string]lockState{})
	case *ast.CallExpr:
		if lit, ok := x.Fun.(*ast.FuncLit); ok {
			// An immediately-invoked literal runs inline under the
			// caller's locks.
			fl.funcLit(lit, cloneHeld(held))
		} else {
			fl.scanExpr(x.Fun, held, false)
		}
		for _, a := range x.Args {
			fl.scanExpr(a, held, false)
		}
		if fn := calleeFunc(fl.pass.Pkg.Info, x); fn != nil && lockBlockingSinks[fn.FullName()] {
			fl.reportBlocking(x.Pos(), held, "call to "+fn.FullName())
		}
	}
}

func isFieldIdent(pass *Pass, id *ast.Ident) bool {
	v, ok := pass.Pkg.Info.Uses[id].(*types.Var)
	return ok && v.IsField()
}

func (fl *funcLocks) checkGuarded(id *ast.Ident, sel *ast.SelectorExpr, held map[string]lockState, write bool) {
	obj := fl.pass.Pkg.Info.Uses[id]
	mu, ok := fl.pass.Reg.GuardedBy(obj)
	if !ok {
		return
	}
	key := mu
	if sel != nil {
		key = types.ExprString(sel.X) + "." + mu
	}
	st, ok := held[key]
	if !ok {
		fl.pass.Reportf(id.Pos(), "%s is //dlr:guarded-by %s, which is not held here (lock it, or annotate the enclosing method //dlr:locked %s)", id.Name, mu, mu)
		return
	}
	if write && st.rlock {
		fl.pass.Reportf(id.Pos(), "%s is written while %s is held read-only (RLock); writes need the exclusive lock", id.Name, mu)
	}
}
