package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// UncheckedSerialization flags decode calls whose error (or ok-bool)
// result is discarded. Wire frames and stored ciphertexts are
// attacker-influenced inputs: a dropped SetBytes error turns a
// malformed group encoding into an undefined point that flows on into
// protocol arithmetic. The check is table-driven — decode-shaped
// method names, FromBytes-suffixed constructors and the wire/hpske
// framing entry points — rather than a blanket errcheck, so ordinary
// control-flow errors stay out of scope.
var UncheckedSerialization = &Analyzer{
	Name: "unchecked-serialization",
	Doc:  "flags dropped errors/ok results from wire and storage decode paths",
	Run:  runUncheckedSerialization,
}

// decodeMethodNames match by bare method name on any receiver.
var decodeMethodNames = map[string]bool{
	"SetBytes":        true,
	"SetString":       true,
	"UnmarshalBinary": true,
	"UnmarshalText":   true,
	"UnmarshalJSON":   true,
	"GobDecode":       true,
	"DecodeFrom":      true,
}

// decodeFuncs match by full name.
var decodeFuncs = map[string]bool{
	"repro/internal/wire.Read":        true,
	"repro/internal/hpske.DecodeList": true,
	"encoding/binary.Read":            true,
	"encoding/json.Unmarshal":         true,
}

func isDecodeCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", false
	}
	full := fn.FullName()
	if decodeFuncs[full] {
		return full, true
	}
	name := fn.Name()
	if fn.Type().(*types.Signature).Recv() != nil && decodeMethodNames[name] {
		return full, true
	}
	if strings.HasSuffix(name, "FromBytes") {
		return full, true
	}
	return "", false
}

func runUncheckedSerialization(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					if full, ok := isDecodeCall(info, call); ok && hasCheckableResult(info, call) {
						pass.Reportf(call.Pos(), "result of %s dropped: decode failures on wire/storage input must be checked", full)
					}
				}
			case *ast.GoStmt:
				if full, ok := isDecodeCall(info, s.Call); ok && hasCheckableResult(info, s.Call) {
					pass.Reportf(s.Call.Pos(), "result of %s dropped by go statement: decode failures on wire/storage input must be checked", full)
				}
			case *ast.DeferStmt:
				if full, ok := isDecodeCall(info, s.Call); ok && hasCheckableResult(info, s.Call) {
					pass.Reportf(s.Call.Pos(), "result of %s dropped by defer: decode failures on wire/storage input must be checked", full)
				}
			case *ast.AssignStmt:
				checkAssignedDecode(pass, s)
			}
			return true
		})
	}
}

// hasCheckableResult reports whether the call returns an error or bool
// anywhere in its result tuple.
func hasCheckableResult(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if checkable(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return checkable(tv.Type)
	}
}

func checkable(t types.Type) bool {
	if t == nil {
		return false
	}
	if t.String() == "error" {
		return true
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

// checkAssignedDecode flags `x, _ := Decode(...)`-style assignments
// that blank precisely the error/ok slots.
func checkAssignedDecode(pass *Pass, s *ast.AssignStmt) {
	info := pass.Pkg.Info
	if len(s.Rhs) != 1 {
		return
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	full, ok := isDecodeCall(info, call)
	if !ok {
		return
	}
	tv, ok := info.Types[call]
	if !ok {
		return
	}
	var resultTypes []types.Type
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			resultTypes = append(resultTypes, tuple.At(i).Type())
		}
	} else {
		resultTypes = []types.Type{tv.Type}
	}
	if len(resultTypes) != len(s.Lhs) {
		return
	}
	for i, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		if checkable(resultTypes[i]) {
			pass.Reportf(s.Pos(), "error/ok result of %s assigned to _: decode failures on wire/storage input must be checked", full)
			return
		}
	}
}
