package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// VartimeTaint enforces the repo's central side-channel invariant: a
// //dlr:secret value (key shares, decryption scalars, witnesses) must
// never reach variable-time arithmetic, a formatting/log sink, or a
// non-constant-time comparison.
//
// The analysis is intra-procedural: within each function body it seeds
// taint from annotated parameters, fields, types and statements,
// propagates it through assignments and expressions (conservatively —
// a call with a tainted operand has a tainted result, except for
// error/bool values and a small sanitizer set), and reports when a
// tainted expression lands in one of the sinks below. Passing a secret
// to an ordinary function is not a finding; the callee is analyzed on
// its own terms against its own annotations.
//
// It also enforces annotation presence: the fields and types listed in
// requiredSecret (the scheme's long-lived shares) must carry
// //dlr:secret, so removing an annotation is itself a finding rather
// than a silent loss of coverage.
var VartimeTaint = &Analyzer{
	Name: "vartime-taint",
	Doc:  "flags secret-annotated values flowing into variable-time or logging sinks",
	Run:  runVartime,
}

// vartimeSink describes one sink. Operands lists which call operands
// are checked: -1 is the receiver, n ≥ 0 the n-th argument; nil means
// every operand including the receiver.
type vartimeSink struct {
	operands []int
	why      string
}

// vartimeSinks is keyed by types.Func.FullName (methods render as
// "(*pkg/path.Type).Name").
var vartimeSinks = map[string]vartimeSink{
	// Variable-time field inversion: public operands only (see
	// ff/inverse_vartime.go). The constant-time fix is Fp.Inverse.
	"(*repro/internal/ff.Fp).InverseVartime":  {operands: []int{0}, why: "Kaliski inversion is variable-time; use Inverse for secret-derived operands"},
	"(*repro/internal/ff.Fp2).InverseVartime": {operands: []int{0}, why: "Kaliski inversion is variable-time; use Inverse for secret-derived operands"},
	// The batch-inversion helpers funnel into InverseVartime.
	"repro/internal/ff.BatchInverseFpInto":  {operands: []int{1}, why: "batch inversion is variable-time (InverseVartime aggregate); secrets must use Inverse"},
	"repro/internal/ff.BatchInverseFp2Into": {operands: []int{1}, why: "batch inversion is variable-time (InverseVartime aggregate); secrets must use Inverse"},
	"repro/internal/ff.BatchInverseFp":      {operands: []int{0}, why: "batch inversion is variable-time (InverseVartime aggregate); secrets must use Inverse"},
	"repro/internal/ff.BatchInverseFp2":     {operands: []int{0}, why: "batch inversion is variable-time (InverseVartime aggregate); secrets must use Inverse"},

	// Classic variable-time big.Int number theory whose branch pattern
	// tracks operand values far more finely than the modular-arithmetic
	// leakage the model tolerates.
	"(*math/big.Int).ModInverse":    {why: "big.Int.ModInverse is value-dependent variable-time"},
	"(*math/big.Int).ModSqrt":       {why: "big.Int.ModSqrt is value-dependent variable-time"},
	"(*math/big.Int).GCD":           {why: "big.Int.GCD is value-dependent variable-time"},
	"(*math/big.Int).ProbablyPrime": {operands: []int{-1}, why: "big.Int.ProbablyPrime is value-dependent variable-time"},

	// Stringification/serialization of secrets into logs or errors.
	"(*math/big.Int).String":      {operands: []int{-1}, why: "stringifies a secret"},
	"(*math/big.Int).Text":        {operands: []int{-1}, why: "stringifies a secret"},
	"(*math/big.Int).Append":      {operands: []int{-1}, why: "stringifies a secret"},
	"(*math/big.Int).Format":      {operands: []int{-1}, why: "stringifies a secret"},
	"(*math/big.Int).MarshalText": {operands: []int{-1}, why: "stringifies a secret"},
	"(*math/big.Int).MarshalJSON": {operands: []int{-1}, why: "stringifies a secret"},

	// Non-constant-time comparisons; use crypto/subtle.
	"bytes.Equal":       {why: "byte comparison is not constant-time; use crypto/subtle.ConstantTimeCompare"},
	"bytes.Compare":     {why: "byte comparison is not constant-time; use crypto/subtle.ConstantTimeCompare"},
	"reflect.DeepEqual": {why: "reflective comparison is not constant-time; use crypto/subtle.ConstantTimeCompare"},
	"strings.EqualFold": {why: "string comparison is not constant-time"},
	"strings.Compare":   {why: "string comparison is not constant-time"},
	"strings.HasPrefix": {why: "string comparison is not constant-time"},
	"bytes.HasPrefix":   {why: "byte comparison is not constant-time; use crypto/subtle.ConstantTimeCompare"},
}

// fmtLogSinks are formatting/printing functions: any tainted argument
// is a secret escaping into output. Keyed by FullName prefixes.
var fmtLogSinks = []string{
	"fmt.Print", "fmt.Sprint", "fmt.Fprint", "fmt.Errorf", "fmt.Append",
	"log.Print", "log.Fatal", "log.Panic", "log.Output",
	"(*log.Logger).Print", "(*log.Logger).Fatal", "(*log.Logger).Panic", "(*log.Logger).Output",
	"(*testing.common).Log", "(*testing.common).Error", "(*testing.common).Fatal", "(*testing.common).Skip",
}

// requiredSecret lists the long-lived secret state that MUST carry a
// //dlr:secret annotation. Matching is by package name (not path) so
// golden copies of the packages are checked identically. An empty
// field requires the annotation on the type declaration itself.
var requiredSecret = []struct{ pkg, typ, field string }{
	{"dlr", "P1", "sk1"},         // plaintext Π_ss share (ModeBasic)
	{"dlr", "P1", "skcomm"},      // period Π_comm key
	{"dlr", "P2", "sk2"},         // Π_ss key share (s1,…,sℓ)
	{"hpske", "Key", ""},         // HPSKE secret key type
	{"pss", "Share2", ""},        // P2's share alias
	{"ots", "SigningKey", "pre"}, // Lamport preimages
}

func runVartime(pass *Pass) {
	// Annotation-presence check (only meaningful in the package that
	// declares the state).
	checkRequiredSecret(pass)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ft := newFuncTaint(pass, fd)
			ft.propagate()
			ft.checkSinks()
		}
	}
}

func checkRequiredSecret(pass *Pass) {
	pkgName := pass.Pkg.Types.Name()
	for _, req := range requiredSecret {
		if req.pkg != pkgName {
			continue
		}
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || ts.Name.Name != req.typ {
						continue
					}
					if req.field == "" {
						tn, _ := pass.Pkg.Info.Defs[ts.Name].(*types.TypeName)
						if tn == nil || !pass.Reg.secretTypes[tn] {
							pass.Reportf(ts.Pos(), "type %s.%s holds key-share material and must be annotated //dlr:secret", req.pkg, req.typ)
						}
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						for _, name := range field.Names {
							if name.Name != req.field {
								continue
							}
							if !pass.Reg.SecretObj(pass.Pkg.Info.Defs[name]) {
								pass.Reportf(name.Pos(), "field %s.%s.%s holds key-share material and must be annotated //dlr:secret", req.pkg, req.typ, req.field)
							}
						}
					}
				}
			}
		}
	}
}

// funcTaint tracks intra-procedural taint for one function body.
type funcTaint struct {
	pass    *Pass
	fd      *ast.FuncDecl
	tainted map[types.Object]bool
}

func newFuncTaint(pass *Pass, fd *ast.FuncDecl) *funcTaint {
	ft := &funcTaint{pass: pass, fd: fd, tainted: make(map[types.Object]bool)}
	// Seed annotated parameters and receivers; secret-typed values are
	// handled structurally in exprTainted.
	seed := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := pass.Pkg.Info.Defs[name]; obj != nil && pass.Reg.SecretObj(obj) {
					ft.tainted[obj] = true
				}
			}
		}
	}
	seed(fd.Recv)
	seed(fd.Type.Params)
	return ft
}

// neverTaint reports types that sanitize taint: lengths, errors and
// booleans derived from secret-bearing calls are not secrets.
func neverTaint(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() == types.Bool || u.Kind() == types.UntypedBool
	case *types.Interface:
		return t.String() == "error"
	}
	return false
}

// propagate runs two forward passes over the body (the second catches
// flows through loop back-edges) marking assigned objects tainted when
// their sources are.
func (ft *funcTaint) propagate() {
	info := ft.pass.Pkg.Info
	for pass := 0; pass < 2; pass++ {
		ast.Inspect(ft.fd.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				ft.flowAssign(s)
			case *ast.CallExpr:
				ft.flowCall(s)
			case *ast.ValueSpec:
				marked := ft.stmtMarked(s.Pos())
				for _, name := range s.Names {
					obj := info.Defs[name]
					if obj == nil || neverTaint(obj.Type()) {
						continue
					}
					if marked {
						ft.tainted[obj] = true
					}
				}
				for i, name := range s.Names {
					obj := info.Defs[name]
					if obj == nil || neverTaint(obj.Type()) {
						continue
					}
					switch {
					case len(s.Values) == len(s.Names):
						if ft.exprTainted(s.Values[i]) {
							ft.tainted[obj] = true
						}
					case len(s.Values) == 1:
						if ft.exprTainted(s.Values[0]) {
							ft.tainted[obj] = true
						}
					}
				}
			case *ast.RangeStmt:
				if ft.exprTainted(s.X) {
					// The element is secret data; the key is a plain index
					// except when ranging over a map (whose keys are data).
					targets := []ast.Expr{s.Value}
					if tv, ok := info.Types[s.X]; ok && tv.Type != nil {
						if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
							targets = append(targets, s.Key)
						}
					}
					for _, e := range targets {
						if id, ok := e.(*ast.Ident); ok {
							if obj := info.Defs[id]; obj != nil && !neverTaint(obj.Type()) {
								ft.tainted[obj] = true
							} else if obj := info.Uses[id]; obj != nil && !neverTaint(obj.Type()) {
								ft.tainted[obj] = true
							}
						}
					}
				}
			}
			return true
		})
	}
}

// stmtMarked reports whether pos sits on a //dlr:secret-marked line.
func (ft *funcTaint) stmtMarked(pos token.Pos) bool {
	p := ft.pass.Pkg.Fset.Position(pos)
	return ft.pass.Reg.SecretLine(p.Filename, p.Line)
}

func (ft *funcTaint) flowAssign(s *ast.AssignStmt) {
	info := ft.pass.Pkg.Info
	marked := ft.stmtMarked(s.Pos())
	taintLHS := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj != nil && !neverTaint(obj.Type()) {
			ft.tainted[obj] = true
		}
	}
	switch {
	case len(s.Rhs) == len(s.Lhs):
		for i, rhs := range s.Rhs {
			if marked || ft.exprTainted(rhs) {
				taintLHS(s.Lhs[i])
			}
		}
	case len(s.Rhs) == 1: // multi-value call/assertion
		if marked || ft.exprTainted(s.Rhs[0]) {
			for _, lhs := range s.Lhs {
				taintLHS(lhs)
			}
		}
	}
}

// flowCall models in-place mutation: the ff/bn254 idiom writes results
// through the receiver (z.Mul(x, y)) or through pointer/slice
// out-params (BatchInverseFpInto(out, xs, prefix)), so a call with any
// tainted operand taints every mutable operand rooted at a local
// identifier. copy(dst, src) with tainted src taints dst.
func (ft *funcTaint) flowCall(call *ast.CallExpr) {
	info := ft.pass.Pkg.Info
	if calleeName(info, call) == "copy" && len(call.Args) == 2 {
		if ft.exprTainted(call.Args[1]) {
			ft.taintRoot(call.Args[0])
		}
		return
	}
	if !ft.callPropagates(call) {
		return
	}
	var recv ast.Expr
	if r := receiverExpr(call); r != nil {
		// Skip package qualifiers (fmt.Printf has no receiver value).
		if id, ok := r.(*ast.Ident); !ok || info.Uses[id] == nil || !isPkgName(info.Uses[id]) {
			recv = r
		}
	}
	any := recv != nil && ft.exprTainted(recv)
	for _, e := range call.Args {
		if ft.exprTainted(e) {
			any = true
			break
		}
	}
	if !any {
		return
	}
	// The receiver is written through regardless of its syntactic type:
	// `var x ff.Fp; x.SetUint64(…)` auto-addresses x.
	if recv != nil {
		ft.taintRoot(recv)
	}
	for _, e := range call.Args {
		if tv, ok := info.Types[e]; ok && !mutableThrough(tv.Type) {
			continue
		}
		ft.taintRoot(e)
	}
}

func isPkgName(obj types.Object) bool {
	_, ok := obj.(*types.PkgName)
	return ok
}

// mutableThrough reports whether a callee can write secret data back
// through a value of type t.
func mutableThrough(t types.Type) bool {
	if t == nil {
		return true
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	}
	return false
}

// taintRoot marks the identifier at the root of e (stripping &, *,
// parens, indexing and slicing) as tainted.
func (ft *funcTaint) taintRoot(e ast.Expr) {
	info := ft.pass.Pkg.Info
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			if obj != nil && !neverTaint(obj.Type()) && !isPkgName(obj) {
				ft.tainted[obj] = true
			}
			return
		default:
			return
		}
	}
}

// exprTainted reports whether e carries secret data.
func (ft *funcTaint) exprTainted(e ast.Expr) bool {
	if e == nil {
		return false
	}
	info := ft.pass.Pkg.Info
	if tv, ok := info.Types[e]; ok {
		if neverTaint(tv.Type) {
			return false
		}
		if ft.pass.Reg.SecretType(tv.Type) {
			return true
		}
	}
	switch x := e.(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		return obj != nil && (ft.tainted[obj] || ft.pass.Reg.SecretObj(obj))
	case *ast.SelectorExpr:
		if obj := info.Uses[x.Sel]; obj != nil && ft.pass.Reg.SecretObj(obj) {
			return true
		}
		return ft.exprTainted(x.X)
	case *ast.IndexExpr:
		return ft.exprTainted(x.X)
	case *ast.IndexListExpr:
		return ft.exprTainted(x.X)
	case *ast.SliceExpr:
		return ft.exprTainted(x.X)
	case *ast.StarExpr:
		return ft.exprTainted(x.X)
	case *ast.ParenExpr:
		return ft.exprTainted(x.X)
	case *ast.UnaryExpr:
		return ft.exprTainted(x.X)
	case *ast.BinaryExpr:
		return ft.exprTainted(x.X) || ft.exprTainted(x.Y)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if ft.exprTainted(kv.Value) {
					return true
				}
				continue
			}
			if ft.exprTainted(elt) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		// Conversions preserve the value: Key(v), []byte(s), …
		if tv, ok := info.Types[x.Fun]; ok && tv.IsType() {
			return len(x.Args) == 1 && ft.exprTainted(x.Args[0])
		}
		switch calleeName(info, x) {
		case "len", "cap": // sanitizers
			return false
		case "append", "min", "max":
			for _, arg := range x.Args {
				if ft.exprTainted(arg) {
					return true
				}
			}
			return false
		}
		// Only value-preserving calls propagate taint — big.Int/ff/
		// scalar arithmetic and methods on secret types (key.Clone(),
		// key.Bytes(), Neg(sk[i])). Scheme-level functions (Encrypt,
		// LinComb, group exponentiation) do NOT: their outputs are
		// public by construction, and what the model guards is raw
		// arithmetic and formatting on secret scalars.
		if !ft.callPropagates(x) {
			return false
		}
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok && ft.exprTainted(sel.X) {
			return true
		}
		for _, arg := range x.Args {
			if ft.exprTainted(arg) {
				return true
			}
		}
		return false
	case *ast.TypeAssertExpr:
		return ft.exprTainted(x.X)
	}
	return false
}

// taintPropagatingPkgs are the packages whose functions are
// value-preserving over their operands: a tainted input yields a
// tainted output (and tainted writes through mutable operands).
var taintPropagatingPkgs = map[string]bool{
	"math/big":              true,
	"repro/internal/ff":     true,
	"repro/internal/scalar": true,
}

// callPropagates reports whether a call carries taint from operands to
// results/out-params (see the comment in exprTainted).
func (ft *funcTaint) callPropagates(call *ast.CallExpr) bool {
	fn := calleeFunc(ft.pass.Pkg.Info, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && taintPropagatingPkgs[fn.Pkg().Path()] {
		return true
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return ft.pass.Reg.SecretType(sig.Recv().Type())
	}
	return false
}

func calleeName(info *types.Info, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// calleeFunc resolves the called *types.Func, looking through method
// selections and generic instantiation.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
		}
		id = fun.Sel
	default:
		return nil
	}
	if f, ok := info.Uses[id].(*types.Func); ok {
		return f
	}
	return nil
}

// checkSinks scans every call in the body against the sink tables.
func (ft *funcTaint) checkSinks() {
	info := ft.pass.Pkg.Info
	ast.Inspect(ft.fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		full := fn.FullName()
		if sink, ok := vartimeSinks[full]; ok {
			ft.checkCall(call, full, sink)
			return true
		}
		for _, prefix := range fmtLogSinks {
			if strings.HasPrefix(full, prefix) {
				ft.checkCall(call, full, vartimeSink{why: "secret escapes into formatted output"})
				return true
			}
		}
		return true
	})
}

func (ft *funcTaint) checkCall(call *ast.CallExpr, full string, sink vartimeSink) {
	recv := receiverExpr(call)
	reported := false
	check := func(idx int) {
		if reported {
			return
		}
		var e ast.Expr
		if idx == -1 {
			e = recv
		} else if idx < len(call.Args) {
			e = call.Args[idx]
		}
		if e != nil && ft.exprTainted(e) {
			reported = true
			ft.pass.Reportf(call.Pos(), "secret value reaches %s: %s", full, sink.why)
		}
	}
	if sink.operands == nil {
		check(-1)
		for i := range call.Args {
			check(i)
		}
		return
	}
	for _, idx := range sink.operands {
		check(idx)
	}
}

// receiverExpr returns the receiver expression of a method call, nil
// for plain function calls.
func receiverExpr(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}
