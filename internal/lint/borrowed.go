package lint

import (
	"go/ast"
	"go/types"
)

// PayloadOwnership enforces the //dlr:borrowed contract: values
// returned by an annotated producer (wire.Reader.Next / NextMux, the
// device.Channel.Recv fast path) alias callee-owned scratch that the
// next call to the producer overwrites. Such values may be decoded,
// inspected and passed to ordinary calls inside the receiving frame,
// but they must not outlive it: storing one to a field, global, map or
// through a pointer, sending it on a channel, or capturing it in a
// goroutine closure is a finding unless an explicit copy
// (append([]byte(nil), p...), string(p), a decode into owned
// structures) breaks the aliasing first.
//
// The tracking is intra-procedural and ordered: assigning an owned
// value over a borrowed location (m.Payload = append([]byte(nil),
// m.Payload...)) transfers ownership and clears the borrow, which is
// exactly the server's refresh-path idiom. Calls other than annotated
// producers return owned values, and returning a borrowed value to the
// caller is allowed — that is what //dlr:borrowed on the function
// documents.
//
// It also enforces annotation presence: the methods in
// requiredBorrowed (the pooled wire reader) must carry //dlr:borrowed,
// so removing an annotation is itself a finding.
var PayloadOwnership = &Analyzer{
	Name: "payload-ownership",
	Doc:  "checks //dlr:borrowed payloads are copied before being retained",
	Run:  runBorrowed,
}

// requiredBorrowed lists the producers that MUST carry //dlr:borrowed.
// Matching is by package name (not path) so golden copies of the
// packages are checked identically.
var requiredBorrowed = []struct{ pkg, typ, fn string }{
	{"wire", "Reader", "Next"},
	{"wire", "Reader", "NextMux"},
}

func runBorrowed(pass *Pass) {
	checkRequiredBorrowed(pass)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			bo := &borrowCheck{pass: pass, borrowed: map[types.Object]bool{}}
			if fd.Type.Params != nil {
				for _, field := range fd.Type.Params.List {
					for _, name := range field.Names {
						if obj := pass.Pkg.Info.Defs[name]; obj != nil && pass.Reg.BorrowedParam(obj) {
							bo.borrowed[obj] = true
						}
					}
				}
			}
			bo.walkBody(fd.Body)
		}
	}
}

func checkRequiredBorrowed(pass *Pass) {
	pkgName := pass.Pkg.Types.Name()
	for _, req := range requiredBorrowed {
		if req.pkg != pkgName {
			continue
		}
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name.Name != req.fn || recvTypeName(fd) != req.typ {
					continue
				}
				if !pass.Reg.BorrowedFunc(pass.Pkg.Info.Defs[fd.Name]) {
					pass.Reportf(fd.Name.Pos(), "%s.%s.%s returns pooled scratch and must be annotated //dlr:borrowed", req.pkg, req.typ, req.fn)
				}
			}
		}
	}
}

// recvTypeName returns the base type name of fd's receiver, "" for
// plain functions.
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

type borrowCheck struct {
	pass     *Pass
	borrowed map[types.Object]bool
}

// walkBody visits the body in source order (which approximates control
// flow for the straight-line read loops this guards), seeding borrows
// from producer calls and reporting escapes.
func (bo *borrowCheck) walkBody(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			bo.assign(s)
		case *ast.ValueSpec:
			bo.valueSpec(s)
		case *ast.SendStmt:
			if bo.borrowedExpr(s.Value) {
				bo.pass.Reportf(s.Arrow, "borrowed payload sent on a channel outlives the producing call; copy it first (append([]byte(nil), p...))")
			}
		case *ast.GoStmt:
			for _, a := range s.Call.Args {
				if bo.borrowedExpr(a) {
					bo.pass.Reportf(a.Pos(), "borrowed payload passed to a goroutine outlives the producing call; copy it first (append([]byte(nil), p...))")
				}
			}
			if lit, ok := s.Call.Fun.(*ast.FuncLit); ok && bo.capturesBorrowed(lit) {
				bo.pass.Reportf(s.Pos(), "goroutine closure captures a borrowed payload; copy it before the go statement")
			}
		}
		return true
	})
}

func (bo *borrowCheck) assign(s *ast.AssignStmt) {
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		b := bo.borrowedExpr(s.Rhs[0])
		for _, lhs := range s.Lhs {
			bo.assignOne(lhs, b)
		}
		return
	}
	if len(s.Rhs) != len(s.Lhs) {
		return
	}
	for i := range s.Lhs {
		bo.assignOne(s.Lhs[i], bo.borrowedExpr(s.Rhs[i]))
	}
}

func (bo *borrowCheck) valueSpec(s *ast.ValueSpec) {
	var vals []ast.Expr
	switch {
	case len(s.Values) == len(s.Names):
		vals = s.Values
	case len(s.Values) == 1:
		vals = make([]ast.Expr, len(s.Names))
		for i := range vals {
			vals[i] = s.Values[0]
		}
	default:
		return
	}
	for i, name := range s.Names {
		if obj := bo.pass.Pkg.Info.Defs[name]; obj != nil && !neverBorrow(obj.Type()) && bo.borrowedExpr(vals[i]) {
			bo.borrowed[obj] = true
		}
	}
}

func (bo *borrowCheck) assignOne(lhs ast.Expr, rhsBorrowed bool) {
	info := bo.pass.Pkg.Info
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return
		}
		if obj := info.Defs[x]; obj != nil {
			if !neverBorrow(obj.Type()) {
				bo.borrowed[obj] = rhsBorrowed
			}
			return
		}
		obj := info.Uses[x]
		if obj == nil || neverBorrow(obj.Type()) {
			return
		}
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			if rhsBorrowed {
				bo.pass.Reportf(x.Pos(), "borrowed payload stored to package variable %s outlives the producing call; copy it first (append([]byte(nil), p...))", x.Name)
			}
			return
		}
		bo.borrowed[obj] = rhsBorrowed
	case *ast.SelectorExpr:
		root := bo.rootObj(x.X)
		if root != nil && bo.borrowed[root] {
			if !rhsBorrowed {
				// Overwriting the aliasing field with an owned value is
				// the copy idiom: the whole struct is owned now.
				delete(bo.borrowed, root)
			}
			return
		}
		if rhsBorrowed {
			bo.pass.Reportf(x.Pos(), "borrowed payload stored to a field that outlives the producing call; copy it first (append([]byte(nil), p...))")
		}
	case *ast.IndexExpr:
		if !rhsBorrowed {
			return
		}
		if root := bo.rootObj(x.X); root == nil || !bo.borrowed[root] {
			bo.pass.Reportf(x.Pos(), "borrowed payload stored into a map or slice that outlives the producing call; copy it first (append([]byte(nil), p...))")
		}
	case *ast.StarExpr:
		if rhsBorrowed {
			bo.pass.Reportf(x.Pos(), "borrowed payload stored through a pointer; copy it first (append([]byte(nil), p...))")
		}
	}
}

// rootObj resolves the identifier at the root of an access chain.
func (bo *borrowCheck) rootObj(e ast.Expr) types.Object {
	info := bo.pass.Pkg.Info
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		default:
			return nil
		}
	}
}

// neverBorrow reports types that cannot alias producer scratch:
// scalars, strings (conversion copies) and errors.
func neverBorrow(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Basic:
		return true
	case *types.Interface:
		return isErrorType(t)
	}
	return false
}

// borrowedExpr reports whether e aliases producer scratch.
func (bo *borrowCheck) borrowedExpr(e ast.Expr) bool {
	info := bo.pass.Pkg.Info
	switch x := e.(type) {
	case nil:
		return false
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		return obj != nil && bo.borrowed[obj]
	case *ast.SelectorExpr:
		return bo.borrowedExpr(x.X)
	case *ast.ParenExpr:
		return bo.borrowedExpr(x.X)
	case *ast.StarExpr:
		return bo.borrowedExpr(x.X)
	case *ast.UnaryExpr:
		return bo.borrowedExpr(x.X)
	case *ast.IndexExpr:
		return bo.borrowedExpr(x.X)
	case *ast.SliceExpr:
		return bo.borrowedExpr(x.X)
	case *ast.TypeAssertExpr:
		return bo.borrowedExpr(x.X)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if bo.borrowedExpr(kv.Value) {
					return true
				}
				continue
			}
			if bo.borrowedExpr(elt) {
				return true
			}
		}
		return false
	case *ast.FuncLit:
		return bo.capturesBorrowed(x)
	case *ast.CallExpr:
		if tv, ok := info.Types[x.Fun]; ok && tv.IsType() {
			// Conversions to/from string copy; everything else (named
			// []byte types and the like) aliases the operand.
			if len(x.Args) != 1 {
				return false
			}
			if isStringType(tv.Type) || isStringType(exprType(info, x.Args[0])) {
				return false
			}
			return bo.borrowedExpr(x.Args[0])
		}
		switch calleeName(info, x) {
		case "append":
			// The result shares the first argument's backing array; a
			// fresh first argument (append([]byte(nil), p...)) is the
			// canonical copy.
			return len(x.Args) > 0 && bo.borrowedExpr(x.Args[0])
		case "len", "cap", "copy", "make", "new", "min", "max", "clear":
			return false
		}
		// Ordinary calls return owned values: decoding a borrowed
		// payload into the callee's own structures is the intended use.
		fn := calleeFunc(info, x)
		return fn != nil && bo.pass.Reg.BorrowedFunc(fn)
	}
	return false
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func exprType(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// capturesBorrowed reports whether a function literal references a
// currently-borrowed object from the enclosing scope.
func (bo *borrowCheck) capturesBorrowed(lit *ast.FuncLit) bool {
	info := bo.pass.Pkg.Info
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && bo.borrowed[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}
