package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// IntoAliasing enforces the documented aliasing preconditions of the
// in-place ...Into forms. Each entry in aliasRules encodes one
// function's contract as the pairs of operands that must NOT refer to
// the same storage; calls violating a pair with syntactically
// identical operands are flagged. Calls to an ...Into function with no
// recorded contract that repeat an operand are flagged too — the fix
// is to record the function's contract in the table (or document the
// aliasing as safe with an ignore directive), so the table stays the
// single source of truth.
var IntoAliasing = &Analyzer{
	Name: "into-aliasing",
	Doc:  "flags receiver/argument aliasing that violates ...Into preconditions",
	Run:  runIntoAliasing,
}

// aliasRule is one function's aliasing contract. Operand indices: -1
// is the receiver, n ≥ 0 the n-th argument. forbidden lists operand
// pairs that must not alias; allowed marks the contract as fully
// alias-safe (suppressing the unknown-contract check).
type aliasRule struct {
	forbidden [][2]int
	names     []string // operand names for messages, indexed as above
}

// aliasRules is keyed by types.Func.FullName.
var aliasRules = map[string]aliasRule{
	// "out may alias xs (in-place inversion), prefix may not alias
	// either" — ff/batch.go.
	"repro/internal/ff.BatchInverseFpInto": {
		forbidden: [][2]int{{2, 0}, {2, 1}},
		names:     []string{"out", "xs", "prefix"},
	},
	"repro/internal/ff.BatchInverseFp2Into": {
		forbidden: [][2]int{{2, 0}, {2, 1}},
		names:     []string{"out", "xs", "prefix"},
	},
}

// aliasSafeInto lists ...Into functions whose contracts explicitly
// allow any aliasing, so repeated operands are fine.
var aliasSafeInto = map[string]bool{
	// "out may alias f" — bn254/pairing.go.
	"repro/internal/bn254.finalExpFastInto": true,
}

func runIntoAliasing(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			full := fn.FullName()
			if rule, ok := aliasRules[full]; ok {
				checkAliasRule(pass, call, fn, rule)
				return true
			}
			if strings.HasSuffix(fn.Name(), "Into") && !aliasSafeInto[full] {
				checkUnknownInto(pass, call, fn)
			}
			return true
		})
	}
}

// operandExpr returns the operand at index idx (-1 = receiver).
func operandExpr(call *ast.CallExpr, idx int) ast.Expr {
	if idx == -1 {
		return receiverExpr(call)
	}
	if idx >= 0 && idx < len(call.Args) {
		return call.Args[idx]
	}
	return nil
}

func checkAliasRule(pass *Pass, call *ast.CallExpr, fn *types.Func, rule aliasRule) {
	name := func(idx int) string {
		if idx == -1 {
			return "receiver"
		}
		if rule.names != nil && idx < len(rule.names) {
			return rule.names[idx]
		}
		return fmt.Sprintf("arg %d", idx)
	}
	for _, pair := range rule.forbidden {
		a := canonicalOperand(pass, operandExpr(call, pair[0]))
		b := canonicalOperand(pass, operandExpr(call, pair[1]))
		if a != "" && a == b {
			pass.Reportf(call.Pos(), "%s: %s must not alias %s (both are %s); use a separate buffer",
				fn.Name(), name(pair[0]), name(pair[1]), a)
		}
	}
}

// checkUnknownInto flags repeated operands in calls to ...Into
// functions without a recorded contract.
func checkUnknownInto(pass *Pass, call *ast.CallExpr, fn *types.Func) {
	seen := map[string]int{}
	for idx := -1; idx < len(call.Args); idx++ {
		e := operandExpr(call, idx)
		c := canonicalOperand(pass, e)
		if c == "" {
			continue
		}
		// Only pointerish operands can alias by reference.
		if tv, ok := pass.Pkg.Info.Types[e]; ok && !pointerish(tv.Type) {
			continue
		}
		if prev, ok := seen[c]; ok {
			pass.Reportf(call.Pos(), "%s has no aliasing contract recorded in the into-aliasing table, but operands %d and %d both pass %s; record the contract or justify with //dlrlint:ignore",
				fn.Name(), prev, idx, c)
			return
		}
		seen[c] = idx
	}
}

func pointerish(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan:
		return true
	}
	return false
}

// canonicalOperand renders an operand as a canonical storage path:
// identifier/selector chains (with &, *, parens and whole-slice
// expressions stripped) rooted at a resolved object. Expressions that
// cannot be canonicalized — calls, literals, arithmetic — return "";
// two equal non-empty paths denote the same storage.
func canonicalOperand(pass *Pass, e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
			continue
		case *ast.UnaryExpr:
			if x.Op.String() == "&" {
				e = x.X
				continue
			}
			return ""
		case *ast.StarExpr:
			e = x.X
			continue
		case *ast.SliceExpr:
			// a[i:j] overlaps a for any bounds the linter can't see;
			// treat it as the whole backing array.
			e = x.X
			continue
		default:
			return canonicalChain(pass, e)
		}
	}
}

func canonicalChain(pass *Pass, e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		obj := pass.Pkg.Info.Uses[x]
		if obj == nil {
			obj = pass.Pkg.Info.Defs[x]
		}
		if obj == nil {
			return ""
		}
		// Two nil operands are not aliased storage.
		if _, isNil := obj.(*types.Nil); isNil {
			return ""
		}
		// Distinguish same-named objects from different scopes via the
		// declaration position.
		return fmt.Sprintf("%s@%d", x.Name, obj.Pos())
	case *ast.SelectorExpr:
		base := canonicalChain(pass, x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.IndexExpr:
		base := canonicalOperand(pass, x.X)
		idx := canonicalIndex(pass, x.Index)
		if base == "" || idx == "" {
			return ""
		}
		return base + "[" + idx + "]"
	case *ast.ParenExpr:
		return canonicalChain(pass, x.X)
	}
	return ""
}

// canonicalIndex renders constant or identifier indices; anything else
// defeats canonicalization (conservatively treated as distinct).
func canonicalIndex(pass *Pass, e ast.Expr) string {
	if tv, ok := pass.Pkg.Info.Types[e]; ok && tv.Value != nil {
		return tv.Value.ExactString()
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := pass.Pkg.Info.Uses[id]; obj != nil {
			return fmt.Sprintf("%s@%d", id.Name, obj.Pos())
		}
	}
	return ""
}
