// Package lint implements dlrlint, the repo's static-analysis suite.
//
// The paper's security model is side-channel leakage, and three of the
// codebase's invariants exist only as comments: variable-time
// arithmetic (ff.InverseVartime, selected math/big methods) may touch
// public operands only; the in-place ...Into forms carry aliasing
// preconditions; and the zero-allocation hot paths must not silently
// regress. dlrlint turns those comments into machine-checked rules —
// see vartime.go, aliasing.go, alloc.go and serial.go for the original
// four analyzers, atomic.go, locks.go, zeroize.go and borrowed.go for
// the concurrency/lifecycle pack guarding the serving stack, annot.go
// for the annotation grammar, and load.go for the stdlib-only package
// loader.
//
// Findings can be suppressed, one line at a time, with
//
//	//dlrlint:ignore <analyzer> <reason>
//
// where <reason> is mandatory: an unexplained suppression is itself a
// finding. The directive silences matching diagnostics on its own line
// or, when it stands alone, on the line directly below it. A directive
// that suppresses nothing is itself reported (stale ignore), so
// suppressions cannot outlive the code they excused.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// A Diagnostic is one finding.
type Diagnostic struct {
	// Analyzer names the analyzer that produced the finding.
	Analyzer string
	// Pos locates the finding.
	Pos token.Position
	// Message describes the violated invariant and the fix.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass is one analyzer's view of one package.
type Pass struct {
	Pkg *Package
	// Reg holds the module-wide annotations (secrets, noalloc marks).
	Reg *Registry

	analyzer string
	diags    *[]Diagnostic
}

// Report records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.analyzer,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// An Analyzer is one named check.
type Analyzer struct {
	// Name is the identifier used in output and ignore directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run analyzes one package.
	Run func(*Pass)
}

// Analyzers is the dlrlint suite, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		VartimeTaint,
		IntoAliasing,
		HotPathAlloc,
		UncheckedSerialization,
		AtomicDiscipline,
		LockDiscipline,
		ZeroizePaths,
		PayloadOwnership,
	}
}

// Run applies the analyzers to every package and returns the surviving
// findings sorted by position. The registry must have been built over
// all packages whose annotations should be visible (BuildRegistry).
func Run(pkgs []*Package, analyzers []*Analyzer, reg *Registry) []Diagnostic {
	diags := append([]Diagnostic(nil), reg.Problems...)
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Pkg: pkg, Reg: reg, analyzer: a.Name, diags: &diags}
			a.Run(pass)
		}
	}
	diags = applyIgnores(pkgs, analyzers, diags)
	sort.Slice(diags, func(i, j int) bool {
		di, dj := diags[i], diags[j]
		if di.Pos.Filename != dj.Pos.Filename {
			return di.Pos.Filename < dj.Pos.Filename
		}
		if di.Pos.Line != dj.Pos.Line {
			return di.Pos.Line < dj.Pos.Line
		}
		if di.Pos.Column != dj.Pos.Column {
			return di.Pos.Column < dj.Pos.Column
		}
		return di.Analyzer < dj.Analyzer
	})
	return diags
}

// ignoreKey identifies the scope of one ignore directive.
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

const ignorePrefix = "//dlrlint:ignore"

// ignoreDirective tracks one well-formed directive so a suppression
// that stops matching anything can itself be reported (stale-ignore).
type ignoreDirective struct {
	pos      token.Position
	analyzer string
	used     bool
}

// applyIgnores drops diagnostics covered by well-formed ignore
// directives, adds diagnostics for malformed ones, and reports every
// well-formed directive that suppressed nothing — an ignore must not
// outlive the finding it excused.
func applyIgnores(pkgs []*Package, analyzers []*Analyzer, diags []Diagnostic) []Diagnostic {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	ignored := map[ignoreKey]*ignoreDirective{}
	var directives []*ignoreDirective
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignorePrefix) {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					rest := strings.TrimPrefix(c.Text, ignorePrefix)
					fields := strings.Fields(rest)
					switch {
					case len(fields) == 0 || !known[fields[0]]:
						diags = append(diags, Diagnostic{
							Analyzer: "dlrlint",
							Pos:      pos,
							Message:  fmt.Sprintf("malformed ignore directive: want %q with a known analyzer", ignorePrefix+" <analyzer> <reason>"),
						})
					case len(fields) < 2:
						diags = append(diags, Diagnostic{
							Analyzer: "dlrlint",
							Pos:      pos,
							Message:  fmt.Sprintf("ignore directive for %s needs a reason", fields[0]),
						})
					default:
						// The directive covers its own line and — so it
						// can stand above the offending statement — the
						// next one.
						dir := &ignoreDirective{pos: pos, analyzer: fields[0]}
						directives = append(directives, dir)
						ignored[ignoreKey{pos.Filename, pos.Line, fields[0]}] = dir
						ignored[ignoreKey{pos.Filename, pos.Line + 1, fields[0]}] = dir
					}
				}
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if dir := ignored[ignoreKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}]; dir != nil {
			dir.used = true
			continue
		}
		kept = append(kept, d)
	}
	for _, dir := range directives {
		if !dir.used {
			kept = append(kept, Diagnostic{
				Analyzer: "dlrlint",
				Pos:      dir.pos,
				Message:  fmt.Sprintf("stale ignore: no %s finding on this or the next line; delete the directive", dir.analyzer),
			})
		}
	}
	return kept
}

// Main is the dlrlint entry point shared by cmd/dlrlint and the tests:
// it loads the arguments (go list patterns, or bare directories for
// golden packages), runs the full suite and returns the findings.
func Main(dir string, args []string) ([]Diagnostic, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var patterns, dirs []string
	for _, a := range args {
		if isDirArg(a) {
			dirs = append(dirs, a)
		} else {
			patterns = append(patterns, a)
		}
	}
	ldr := NewLoader(dir, true)
	var pkgs, regPkgs []*Package
	if len(patterns) > 0 || len(dirs) == 0 {
		loaded, err := ldr.Load(patterns...)
		if err != nil {
			return nil, err
		}
		pkgs = loaded
		regPkgs = loaded
	} else {
		// Directory-only invocations still load the module so testdata
		// packages can import it — and its annotations (e.g. the
		// //dlr:secret on hpske.Key) must be in the registry even though
		// only the requested directories are analyzed.
		loaded, err := ldr.Load("./...")
		if err != nil {
			return nil, err
		}
		regPkgs = loaded
	}
	for _, d := range dirs {
		p, err := ldr.LoadDir(d)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
		regPkgs = append(regPkgs, p)
	}
	reg := BuildRegistry(regPkgs)
	return Run(pkgs, Analyzers(), reg), nil
}

func isDirArg(a string) bool {
	if strings.Contains(a, "...") {
		return false
	}
	return strings.Contains(a, "testdata") || strings.HasPrefix(a, "/")
}

// funcDeclOf returns the innermost function declaration enclosing pos
// in file, or nil.
func funcDeclOf(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}
