package lint

import (
	"go/ast"
	"go/types"
)

// HotPathAlloc guards the PR-4 zero-allocation hot paths: a function
// annotated //dlr:noalloc must not introduce heap traffic that the
// runtime AllocsPerRun gates would only catch after the fact (and only
// on the configurations CI happens to run). Within an annotated body
// it flags the syntactic allocation sources — make, new, append,
// closures, address-taken or reference-typed composite literals,
// big.Int construction, string↔slice conversions and go statements.
//
// The analysis is intra-procedural: calls to other functions are not
// flagged (callees carry their own annotations and runtime gates), and
// escape analysis is not modeled — a clean report here plus the
// AllocsPerRun twin is the invariant, not a substitute for it.
var HotPathAlloc = &Analyzer{
	Name: "hot-path-alloc",
	Doc:  "flags allocation sources inside //dlr:noalloc functions",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !pass.Reg.Noalloc(pass.Pkg.Info.Defs[fd.Name]) {
				continue
			}
			checkNoallocBody(pass, fd)
		}
	}
}

func checkNoallocBody(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			checkNoallocCall(pass, name, x)
		case *ast.FuncLit:
			pass.Reportf(x.Pos(), "%s is //dlr:noalloc but defines a closure (captured variables escape to the heap)", name)
			return false // the closure body is the closure's problem
		case *ast.GoStmt:
			pass.Reportf(x.Pos(), "%s is //dlr:noalloc but starts a goroutine", name)
		case *ast.UnaryExpr:
			if x.Op.String() == "&" {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					pass.Reportf(x.Pos(), "%s is //dlr:noalloc but takes the address of a composite literal (escapes to the heap)", name)
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[x]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(x.Pos(), "%s is //dlr:noalloc but builds a %s literal (allocates backing storage)", name, tv.Type)
				}
			}
		}
		return true
	})
}

func checkNoallocCall(pass *Pass, name string, call *ast.CallExpr) {
	info := pass.Pkg.Info
	// Conversions: string ↔ []byte/[]rune copy into fresh storage.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type.Underlying()
		if av, ok := info.Types[call.Args[0]]; ok {
			from := av.Type.Underlying()
			if isStringSliceConv(to, from) {
				pass.Reportf(call.Pos(), "%s is //dlr:noalloc but converts between string and slice (copies into fresh storage)", name)
			}
		}
		return
	}
	switch calleeName(info, call) {
	case "make":
		pass.Reportf(call.Pos(), "%s is //dlr:noalloc but calls make; preallocate or use a scratch arena", name)
		return
	case "new":
		pass.Reportf(call.Pos(), "%s is //dlr:noalloc but calls new; declare a stack value instead", name)
		return
	case "append":
		pass.Reportf(call.Pos(), "%s is //dlr:noalloc but calls append (may grow the backing array)", name)
		return
	}
	if fn := calleeFunc(info, call); fn != nil {
		switch fn.FullName() {
		case "math/big.NewInt", "math/big.NewFloat", "math/big.NewRat":
			pass.Reportf(call.Pos(), "%s is //dlr:noalloc but constructs a big.Int temporary; hot paths must stay on limb arithmetic", name)
		case "(*math/big.Int).SetBytes", "(*math/big.Int).SetString":
			pass.Reportf(call.Pos(), "%s is //dlr:noalloc but materializes big.Int digits (allocates); hot paths must stay on limb arithmetic", name)
		}
	}
}

func isStringSliceConv(to, from types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteSlice := func(t types.Type) bool {
		s, ok := t.(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(to) && isByteSlice(from)) || (isByteSlice(to) && isStr(from))
}
