package lint

import (
	"bufio"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// repoRoot walks up from the test's working directory to the module
// root (the directory holding go.mod).
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// goldenDirs are the testdata packages with `// want` expectations.
var goldenDirs = []string{"vartime", "annot", "aliasing", "alloc", "serial", "atomicd", "locks", "zeroize", "borrowed"}

// goldenState caches one Main run over every golden package (module
// loading dominates the cost; one load serves all golden tests).
var goldenState struct {
	once  sync.Once
	diags []Diagnostic
	err   error
}

func goldenDiags(t *testing.T) []Diagnostic {
	t.Helper()
	goldenState.once.Do(func() {
		root := repoRoot(t)
		args := make([]string, 0, len(goldenDirs)+1)
		for _, d := range append(append([]string{}, goldenDirs...), "ignore") {
			args = append(args, filepath.Join(root, "internal/lint/testdata/src", d))
		}
		goldenState.diags, goldenState.err = Main(root, args)
	})
	if goldenState.err != nil {
		t.Fatalf("loading golden packages: %v", goldenState.err)
	}
	return goldenState.diags
}

// wantExpectation is one `// want `regex“ comment.
type wantExpectation struct {
	file string // base name
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRe = regexp.MustCompile("// want `([^`]*)`")

func collectWants(t *testing.T, dir string) []*wantExpectation {
	t.Helper()
	var wants []*wantExpectation
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", de.Name(), line, m[1], err)
			}
			wants = append(wants, &wantExpectation{file: de.Name(), line: line, re: re})
		}
		f.Close()
	}
	return wants
}

// TestGolden checks every golden package: each `// want` line must
// produce a matching diagnostic, and no unexpected diagnostics may
// appear.
func TestGolden(t *testing.T) {
	root := repoRoot(t)
	diags := goldenDiags(t)
	for _, pkg := range goldenDirs {
		t.Run(pkg, func(t *testing.T) {
			dir := filepath.Join(root, "internal/lint/testdata/src", pkg)
			wants := collectWants(t, dir)
			if len(wants) == 0 {
				t.Fatalf("no want expectations in %s", dir)
			}
			for _, d := range diags {
				if filepath.Dir(d.Pos.Filename) != dir {
					continue
				}
				matched := false
				for _, w := range wants {
					if !w.hit && w.file == filepath.Base(d.Pos.Filename) && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
						w.hit = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("%s:%d: expected a diagnostic matching %q, got none", w.file, w.line, w.re)
				}
			}
		})
	}
}

// TestIgnoreDirectives asserts the suppression semantics on the ignore
// golden package: a well-formed directive silences the next line, an
// unjustified or unknown-analyzer directive is itself a finding, and
// unsuppressed findings survive.
func TestIgnoreDirectives(t *testing.T) {
	root := repoRoot(t)
	dir := filepath.Join(root, "internal/lint/testdata/src/ignore")
	var got []Diagnostic
	for _, d := range goldenDiags(t) {
		if filepath.Dir(d.Pos.Filename) == dir {
			got = append(got, d)
		}
	}
	wants := []struct {
		analyzer string
		msg      string
	}{
		{"hot-path-alloc", "calls new"},           // tmp2: the unsuppressed allocation
		{"dlrlint", "needs a reason"},             // directive without a reason
		{"dlrlint", "malformed ignore directive"}, // unknown analyzer
		{"dlrlint", "stale ignore"},               // well-formed directive suppressing nothing
	}
	if len(got) != len(wants) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(got), len(wants), got)
	}
	for _, w := range wants {
		found := false
		for _, d := range got {
			if d.Analyzer == w.analyzer && strings.Contains(d.Message, w.msg) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing %s diagnostic containing %q in %v", w.analyzer, w.msg, got)
		}
	}
}

// TestRepoIsClean is the gate `make lint` enforces: the full module,
// tests included, must produce no findings.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root := repoRoot(t)
	diags, err := Main(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestUnannotatedShareIsFlagged proves the annotation-presence check
// covers the real scheme state: a copy of internal/dlr with the
// //dlr:secret above P2.sk2 stripped must trigger a finding.
func TestUnannotatedShareIsFlagged(t *testing.T) {
	root := repoRoot(t)
	src := filepath.Join(root, "internal/dlr")
	tmp := t.TempDir()
	des, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	stripped := false
	for _, de := range des {
		name := de.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(string(raw), "\n")
		var kept []string
		for i, l := range lines {
			// Drop the //dlr:secret marker standing directly above the
			// sk2 field declaration.
			if strings.TrimSpace(l) == "//dlr:secret" && i+1 < len(lines) && strings.HasPrefix(strings.TrimSpace(lines[i+1]), "sk2 ") {
				stripped = true
				continue
			}
			kept = append(kept, l)
		}
		if err := os.WriteFile(filepath.Join(tmp, name), []byte(strings.Join(kept, "\n")), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if !stripped {
		t.Fatal("did not find a //dlr:secret marker above sk2 in internal/dlr")
	}
	diags, err := Main(root, []string{tmp})
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`field dlr\.P2\.sk2 .*must be annotated //dlr:secret`)
	found := false
	for _, d := range diags {
		if d.Analyzer == "vartime-taint" && re.MatchString(d.Message) {
			found = true
		} else {
			t.Errorf("unexpected diagnostic on stripped copy: %s", d)
		}
	}
	if !found {
		t.Errorf("stripping //dlr:secret from P2.sk2 produced no annotation-presence finding; got %v", diags)
	}
}

// TestUnannotatedEpochIsFlagged proves the atomic-discipline presence
// check covers the rotation pipeline: a copy of internal/dlr with the
// //dlr:atomic above P1.epoch stripped must trigger a finding.
func TestUnannotatedEpochIsFlagged(t *testing.T) {
	root := repoRoot(t)
	src := filepath.Join(root, "internal/dlr")
	tmp := t.TempDir()
	des, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	stripped := false
	for _, de := range des {
		name := de.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(string(raw), "\n")
		var kept []string
		for i, l := range lines {
			// Drop the //dlr:atomic marker standing directly above the
			// epoch field declaration.
			if strings.TrimSpace(l) == "//dlr:atomic" && i+1 < len(lines) && strings.HasPrefix(strings.TrimSpace(lines[i+1]), "epoch ") {
				stripped = true
				continue
			}
			kept = append(kept, l)
		}
		if err := os.WriteFile(filepath.Join(tmp, name), []byte(strings.Join(kept, "\n")), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if !stripped {
		t.Fatal("did not find a //dlr:atomic marker above epoch in internal/dlr")
	}
	diags, err := Main(root, []string{tmp})
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`field dlr\.P1\.epoch .*must be annotated //dlr:atomic`)
	found := false
	for _, d := range diags {
		if d.Analyzer == "atomic-discipline" && re.MatchString(d.Message) {
			found = true
		} else {
			t.Errorf("unexpected diagnostic on stripped copy: %s", d)
		}
	}
	if !found {
		t.Errorf("stripping //dlr:atomic from P1.epoch produced no annotation-presence finding; got %v", diags)
	}
}

// TestAnalyzersSeeTestFilesOnce builds a throwaway module with the same
// violation in a regular file, a _test.go file, and a build-tag-excluded
// file. The analyzers must report the first two exactly once each and
// never see the third.
func TestAnalyzersSeeTestFilesOnce(t *testing.T) {
	tmp := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(tmp, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module probe\n\ngo 1.22\n")
	write("a.go", `package probe

import "sync"

type box struct {
	mu sync.Mutex
	//dlr:guarded-by mu
	n int
}

func peek(b *box) int {
	return b.n // in-package violation
}
`)
	write("a_test.go", `package probe

import "testing"

func TestPeek(t *testing.T) {
	b := &box{}
	if b.n != 0 { // test-file violation
		t.Fatal("nonzero")
	}
}
`)
	write("excluded.go", `//go:build neverbuilt

package probe

func hidden(b *box) int {
	return b.n // must not be reported: excluded by build tag
}
`)
	diags, err := Main(tmp, nil)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, d := range diags {
		if d.Analyzer != "lock-discipline" {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		counts[filepath.Base(d.Pos.Filename)]++
	}
	if counts["a.go"] != 1 || counts["a_test.go"] != 1 || counts["excluded.go"] != 0 || len(diags) != 2 {
		t.Errorf("want exactly one finding each in a.go and a_test.go and none in excluded.go, got %v", diags)
	}
}

// TestExitNonZeroOnViolation runs the real binary against a seeded
// violation and demands a non-zero exit.
func TestExitNonZeroOnViolation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs cmd/dlrlint")
	}
	root := repoRoot(t)
	cmd := exec.Command("go", "run", "./cmd/dlrlint", "internal/lint/testdata/src/serial")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want exit error, got err=%v, output:\n%s", err, out)
	}
	if code := ee.ExitCode(); code != 1 {
		t.Fatalf("want exit code 1, got %d, output:\n%s", code, out)
	}
	if !strings.Contains(string(out), "unchecked-serialization") {
		t.Fatalf("output does not mention the analyzer:\n%s", out)
	}
}

// TestNoallocFunctionsHaveRuntimeGates cross-checks the static
// annotation against the runtime twin: every //dlr:noalloc function
// must appear in a *_test.go file of its package that pins an
// AllocsPerRun budget.
func TestNoallocFunctionsHaveRuntimeGates(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root := repoRoot(t)
	ldr := NewLoader(root, false)
	pkgs, err := ldr.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	reg := BuildRegistry(pkgs)
	if len(reg.noalloc) == 0 {
		t.Fatal("no //dlr:noalloc functions found in the module")
	}
	// Cache test-file contents per package directory.
	testFiles := map[string][]string{}
	for obj := range reg.noalloc {
		pkgPath := obj.Pkg().Path()
		dir := filepath.Join(root, strings.TrimPrefix(pkgPath, "repro/"))
		contents, ok := testFiles[dir]
		if !ok {
			des, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, de := range des {
				if strings.HasSuffix(de.Name(), "_test.go") {
					raw, err := os.ReadFile(filepath.Join(dir, de.Name()))
					if err != nil {
						t.Fatal(err)
					}
					contents = append(contents, string(raw))
				}
			}
			testFiles[dir] = contents
		}
		gated := false
		for _, c := range contents {
			if strings.Contains(c, "AllocsPerRun") && strings.Contains(c, obj.Name()+"(") {
				gated = true
				break
			}
		}
		if !gated {
			t.Errorf("%s.%s is //dlr:noalloc but no *_test.go in %s pins an AllocsPerRun budget exercising it", pkgPath, obj.Name(), dir)
		}
	}
}
