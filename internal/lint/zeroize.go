package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ZeroizePaths enforces the //dlr:zeroize contract on staged secret
// state: every successful exit path of an annotated function must be
// dominated by a Zeroize() call on each listed receiver field or
// parameter. "Successful" means a return whose error result is the
// literal nil, any return of a function without an error result, and
// falling off the end of an error-free function — returns that hand a
// non-nil error expression back are exempt, because the failed
// operation leaves the old state in place for the caller to retry or
// abandon.
//
// A deferred Zeroize (directly, or inside a deferred closure) covers
// every path including panic unwinding, and is the recommended shape
// when the function has more than one successful exit. The defer scan
// is an over-approximation: a defer registered on only some paths is
// credited to all of them, so keep deferred wipes unconditional.
var ZeroizePaths = &Analyzer{
	Name: "zeroize-paths",
	Doc:  "checks //dlr:zeroize functions wipe staged secrets on every successful return path",
	Run:  runZeroize,
}

func runZeroize(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := pass.Pkg.Info.Defs[fd.Name]
			targets := pass.Reg.ZeroizeTargets(fn)
			if len(targets) == 0 {
				continue
			}
			recv := ""
			if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
				recv = fd.Recv.List[0].Names[0].Name
			}
			params := map[string]bool{}
			if fd.Type.Params != nil {
				for _, field := range fd.Type.Params.List {
					for _, name := range field.Names {
						params[name.Name] = true
					}
				}
			}
			sig, _ := fn.Type().(*types.Signature)
			for _, target := range targets {
				path := target
				if !params[target] && recv != "" {
					path = recv + "." + target
				}
				zc := &zeroCheck{pass: pass, fd: fd, sig: sig, path: path, target: target}
				if zc.deferredZeroize(fd.Body) {
					continue
				}
				z, term := zc.walk(fd.Body.List, false)
				if !z && !term && (sig == nil || sig.Results().Len() == 0) {
					// Falling off the end is an implicit (successful)
					// return; the walk reported the explicit ones.
					zc.report(fd.Body.Rbrace, "falling off the end")
				}
			}
		}
	}
}

type zeroCheck struct {
	pass   *Pass
	fd     *ast.FuncDecl
	sig    *types.Signature
	path   string // printed receiver path, e.g. "st.nextKey"
	target string // annotated name, e.g. "nextKey"
}

func (zc *zeroCheck) report(pos token.Pos, where string) {
	zc.pass.Reportf(pos, "every successful exit of %s must call %s.Zeroize() first (//dlr:zeroize %s): %s leaves the staged secret intact",
		zc.fd.Name.Name, zc.path, zc.target, where)
}

// isZeroizeCall matches <path>.Zeroize() by printed receiver path.
func (zc *zeroCheck) isZeroizeCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Zeroize" && types.ExprString(sel.X) == zc.path
}

// zeroizesNode reports whether any expression inside n wipes the path.
func (zc *zeroCheck) zeroizesNode(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && zc.isZeroizeCall(call) {
			found = true
		}
		return !found
	})
	return found
}

// deferredZeroize reports whether the body registers a deferred wipe,
// directly or inside a deferred closure.
func (zc *zeroCheck) deferredZeroize(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return !found
		}
		if zc.isZeroizeCall(d.Call) {
			found = true
		} else if lit, ok := d.Call.Fun.(*ast.FuncLit); ok && zc.zeroizesNode(lit.Body) {
			found = true
		}
		return !found
	})
	return found
}

// successReturn classifies a return statement: true means the function
// succeeded and the staged secret must already be wiped.
func (zc *zeroCheck) successReturn(ret *ast.ReturnStmt) bool {
	if zc.sig == nil || zc.sig.Results().Len() == 0 {
		return true
	}
	res := zc.sig.Results()
	last := res.At(res.Len() - 1).Type()
	if !isErrorType(last) {
		return true
	}
	if len(ret.Results) == 0 {
		// Bare return with named results: the error may or may not be
		// nil; demand the wipe rather than guess.
		return true
	}
	lastExpr := ret.Results[len(ret.Results)-1]
	if id, ok := ast.Unparen(lastExpr).(*ast.Ident); ok && id.Name == "nil" {
		return true
	}
	return false
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if i, ok := t.Underlying().(*types.Interface); ok {
		return i.NumMethods() == 1 && i.Method(0).Name() == "Error" && t.String() == "error"
	}
	return false
}

// walk runs the zeroized-flag flow over a statement list. The bool
// result is the flag after the list; the second result reports whether
// every path through the list terminated (returned/branched).
func (zc *zeroCheck) walk(list []ast.Stmt, z bool) (bool, bool) {
	for _, s := range list {
		var term bool
		z, term = zc.stmt(s, z)
		if term {
			return z, true
		}
	}
	return z, false
}

func (zc *zeroCheck) stmt(s ast.Stmt, z bool) (bool, bool) {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		if !z && zc.successReturn(s) {
			zc.report(s.Pos(), "this return")
		}
		return z, true
	case *ast.BranchStmt:
		return z, true
	case *ast.BlockStmt:
		return zc.walk(s.List, z)
	case *ast.LabeledStmt:
		return zc.stmt(s.Stmt, z)
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred wipes are handled by deferredZeroize; a wipe inside
		// a goroutine does not dominate this function's returns.
		return z, false
	case *ast.IfStmt:
		if s.Init != nil {
			z, _ = zc.stmt(s.Init, z)
		}
		if zc.zeroizesNode(s.Cond) {
			z = true
		}
		thenZ, thenTerm := zc.walk(s.Body.List, z)
		elseZ, elseTerm := z, false
		if s.Else != nil {
			elseZ, elseTerm = zc.stmt(s.Else, z)
		}
		switch {
		case thenTerm && elseTerm:
			return z, true
		case thenTerm:
			return elseZ, false
		case elseTerm:
			return thenZ, false
		default:
			return thenZ && elseZ, false
		}
	case *ast.ForStmt:
		// The body may run zero times: returns inside are checked
		// against the loop-entry state, and a wipe inside the loop is
		// not credited past it.
		zc.walk(s.Body.List, z)
		return z, false
	case *ast.RangeStmt:
		zc.walk(s.Body.List, z)
		return z, false
	case *ast.SwitchStmt:
		return zc.clauses(s.Init, s.Body.List, z, hasDefaultCase(s.Body.List))
	case *ast.TypeSwitchStmt:
		return zc.clauses(s.Init, s.Body.List, z, hasDefaultCase(s.Body.List))
	case *ast.SelectStmt:
		return zc.clauses(nil, s.Body.List, z, false)
	default:
		if zc.zeroizesNode(s) {
			return true, false
		}
		return z, false
	}
}

func hasDefaultCase(list []ast.Stmt) bool {
	for _, cs := range list {
		if cc, ok := cs.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// clauses merges switch/select arms: the flag survives only if every
// non-terminating arm (and, absent a default, the fall-past path) set
// it.
func (zc *zeroCheck) clauses(init ast.Stmt, list []ast.Stmt, z bool, exhaustive bool) (bool, bool) {
	if init != nil {
		z, _ = zc.stmt(init, z)
	}
	merged := true
	any := false
	for _, cs := range list {
		var body []ast.Stmt
		switch cc := cs.(type) {
		case *ast.CaseClause:
			body = cc.Body
		case *ast.CommClause:
			body = cc.Body
		default:
			continue
		}
		bz, term := zc.walk(body, z)
		if !term {
			merged = merged && bz
			any = true
		}
	}
	if !exhaustive {
		merged = merged && z
		any = true
	}
	if !any {
		return z, true
	}
	return merged, false
}
