package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// This file is dlrlint's package loader. The repo's no-external-modules
// stance rules out golang.org/x/tools/go/packages, so loading is built
// from the pieces the standard library does ship:
//
//   - `go list -json` discovers the module's packages (directories,
//     file lists, import graphs) without hard-coding layout;
//   - `go list -export -deps -json` compiles dependencies and reports
//     the build-cache export-data file for each, and
//   - importer.ForCompiler(fset, "gc", lookup) turns those export files
//     into *types.Package values for type-checking.
//
// Module-internal packages are type-checked from source in dependency
// order (so analyzers see full ASTs and share identical types.Object
// values across packages), while everything outside the module — in
// this repo, only the standard library — is imported from export data.

// Package is one type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("repro/internal/ff"); for packages
	// loaded from a bare directory it is a synthetic path.
	Path string
	// Dir is the directory holding the sources.
	Dir string
	// Files are the parsed sources, comments included.
	Files []*ast.File
	// Fset positions every file; shared across the whole load.
	Fset *token.FileSet
	// Types and Info are the type-checker outputs.
	Types *types.Package
	Info  *types.Info
}

// listEntry is the subset of `go list -json` output the loader uses.
type listEntry struct {
	ImportPath   string
	Dir          string
	Name         string
	Export       string
	Standard     bool
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	TestImports  []string
	XTestImports []string
	Deps         []string
}

// Loader loads and type-checks packages for analysis.
type Loader struct {
	fset *token.FileSet
	dir  string // module root the go commands run in

	exports map[string]string // import path → export-data file
	gcImp   types.ImporterFrom

	mod     map[string]*listEntry // module packages by import path
	checked map[string]*Package   // source-checked packages by path
	pending map[string]bool       // cycle guard
	tests   bool                  // include *_test.go files
}

// NewLoader returns a loader rooted at dir (the module root).
// If tests is true, in-package and external test files are loaded too.
func NewLoader(dir string, tests bool) *Loader {
	return &Loader{
		fset:    token.NewFileSet(),
		dir:     dir,
		exports: make(map[string]string),
		mod:     make(map[string]*listEntry),
		checked: make(map[string]*Package),
		pending: make(map[string]bool),
		tests:   tests,
	}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

func (l *Loader) goList(args ...string) ([]*listEntry, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = l.dir
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %w", strings.Join(args, " "), err)
	}
	var entries []*listEntry
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		entries = append(entries, &e)
	}
	return entries, nil
}

// Load discovers the packages matching patterns (go list syntax, e.g.
// "./..."), type-checks them and returns them sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	entries, err := l.goList(append([]string{"-json"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.Standard {
			l.mod[e.ImportPath] = e
		}
	}

	// Gather every import path reachable from the matched packages that
	// is not part of the module itself, and resolve export data for the
	// full transitive closure in one -deps call.
	extSet := map[string]bool{}
	for _, e := range entries {
		for _, imps := range [][]string{e.Imports, e.TestImports, e.XTestImports, e.Deps} {
			for _, imp := range imps {
				if imp == "C" || imp == "unsafe" {
					continue
				}
				if _, ok := l.mod[imp]; !ok {
					extSet[imp] = true
				}
			}
		}
	}
	if err := l.resolveExports(extSet); err != nil {
		return nil, err
	}

	var pkgs []*Package
	for path := range l.mod {
		p, err := l.check(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
		if xp, err := l.checkXTest(path); err != nil {
			return nil, err
		} else if xp != nil {
			pkgs = append(pkgs, xp)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// resolveExports fills l.exports for paths (plus their dependency
// closure) and prepares the export-data importer.
func (l *Loader) resolveExports(paths map[string]bool) error {
	var missing []string
	for p := range paths {
		if _, ok := l.exports[p]; !ok {
			missing = append(missing, p)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		entries, err := l.goList(append([]string{"-export", "-deps", "-json=ImportPath,Export,Standard"}, missing...)...)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if e.Export != "" {
				l.exports[e.ImportPath] = e.Export
			}
		}
	}
	if l.gcImp == nil {
		lookup := func(path string) (io.ReadCloser, error) {
			f, ok := l.exports[path]
			if !ok {
				return nil, fmt.Errorf("lint: no export data for %q", path)
			}
			return os.Open(f)
		}
		l.gcImp = importer.ForCompiler(l.fset, "gc", lookup).(types.ImporterFrom)
	}
	return nil
}

// Import implements types.Importer: module packages come from the
// source-checked cache, everything else from export data.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.mod[path]; ok {
		p, err := l.check(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.gcImp.Import(path)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

func (l *Loader) typesConfig() *types.Config {
	return &types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
}

// check type-checks module package path (GoFiles plus, when the loader
// was created with tests=true, TestGoFiles) from source.
func (l *Loader) check(path string) (*Package, error) {
	if p, ok := l.checked[path]; ok {
		return p, nil
	}
	e, ok := l.mod[path]
	if !ok {
		return nil, fmt.Errorf("lint: %q is not a module package", path)
	}
	if l.pending[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.pending[path] = true
	defer delete(l.pending, path)

	names := append([]string{}, e.GoFiles...)
	names = append(names, e.CgoFiles...)
	if l.tests {
		names = append(names, e.TestGoFiles...)
	}
	files, err := l.parseFiles(e.Dir, names)
	if err != nil {
		return nil, err
	}
	pkg := types.NewPackage(path, e.Name)
	info := newInfo()
	chk := types.NewChecker(l.typesConfig(), l.fset, pkg, info)
	if err := chk.Files(files); err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: e.Dir, Files: files, Fset: l.fset, Types: pkg, Info: info}
	l.checked[path] = p
	return p, nil
}

// checkXTest type-checks the external test package (package foo_test)
// of path, if one exists and tests are enabled.
func (l *Loader) checkXTest(path string) (*Package, error) {
	e := l.mod[path]
	if !l.tests || e == nil || len(e.XTestGoFiles) == 0 {
		return nil, nil
	}
	files, err := l.parseFiles(e.Dir, e.XTestGoFiles)
	if err != nil {
		return nil, err
	}
	xpath := path + "_test"
	pkg := types.NewPackage(xpath, e.Name+"_test")
	info := newInfo()
	chk := types.NewChecker(l.typesConfig(), l.fset, pkg, info)
	if err := chk.Files(files); err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", xpath, err)
	}
	return &Package{Path: xpath, Dir: e.Dir, Files: files, Fset: l.fset, Types: pkg, Info: info}, nil
}

// LoadDir parses and type-checks the .go files in a bare directory —
// outside `go list`'s view, e.g. a testdata package — against the
// module and stdlib dependencies already known to the loader. Extra
// stdlib imports found in the files are resolved on demand.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: reading %s: %w", dir, err)
	}
	var names []string
	for _, de := range des {
		if !de.IsDir() && strings.HasSuffix(de.Name(), ".go") {
			names = append(names, de.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	files, err := l.parseFiles(dir, names)
	if err != nil {
		return nil, err
	}
	ext := map[string]bool{}
	for _, f := range files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "C" || path == "unsafe" {
				continue
			}
			if _, ok := l.mod[path]; !ok {
				ext[path] = true
			}
		}
	}
	if err := l.resolveExports(ext); err != nil {
		return nil, err
	}
	path := "testdata/" + filepath.Base(dir)
	pkg := types.NewPackage(path, files[0].Name.Name)
	info := newInfo()
	chk := types.NewChecker(l.typesConfig(), l.fset, pkg, info)
	if err := chk.Files(files); err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", dir, err)
	}
	return &Package{Path: path, Dir: dir, Files: files, Fset: l.fset, Types: pkg, Info: info}, nil
}

func (l *Loader) parseFiles(dir string, names []string) ([]*ast.File, error) {
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	return files, nil
}
