package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Annotation grammar.
//
//	//dlr:secret [name ...]
//
// marks a value as secret-bearing for the vartime-taint analyzer:
//
//   - on a struct field (doc comment or same-line comment): the field;
//
//   - on a type declaration: every value of that named type (aliases
//     forward the mark to the aliased type);
//
//   - on a var declaration: the declared names;
//
//   - in a function's doc comment with trailing names: the listed
//     parameters;
//
//   - on (or directly above) a statement inside a function body: the
//     identifiers assigned on that statement's line.
//
//     //dlr:noalloc
//
// in a function's doc comment marks it as a zero-allocation hot path
// for the hot-path-alloc analyzer; the function is expected to carry a
// testing.AllocsPerRun gate as its runtime twin.
const (
	secretMarker  = "//dlr:secret"
	noallocMarker = "//dlr:noalloc"
)

// Registry holds the module-wide annotation state shared by analyzers.
type Registry struct {
	// secretObjs are fields, params and vars marked //dlr:secret.
	secretObjs map[types.Object]bool
	// secretTypes are type names whose every value is secret.
	secretTypes map[*types.TypeName]bool
	// noalloc are functions marked //dlr:noalloc.
	noalloc map[types.Object]bool
	// secretLines are (file, line) positions of //dlr:secret comments,
	// used for statement-level seeds inside function bodies.
	secretLines map[string]map[int]bool

	// Problems are malformed annotations found while building.
	Problems []Diagnostic
}

// SecretObj reports whether obj is annotated secret.
func (r *Registry) SecretObj(obj types.Object) bool { return obj != nil && r.secretObjs[obj] }

// SecretType reports whether t (or the named type it instantiates or
// points to) is annotated secret.
func (r *Registry) SecretType(t types.Type) bool {
	for i := 0; i < 4; i++ { // unwrap a few levels of pointers
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
			continue
		case *types.Named:
			if r.secretTypes[tt.Obj()] {
				return true
			}
			return false
		case *types.Alias:
			t = types.Unalias(tt)
			continue
		}
		return false
	}
	return false
}

// Noalloc reports whether fn is annotated //dlr:noalloc.
func (r *Registry) Noalloc(fn types.Object) bool { return fn != nil && r.noalloc[fn] }

// NoallocNames returns the declared names of every //dlr:noalloc
// function, for the cross-check against runtime allocation gates.
func (r *Registry) NoallocNames() []string {
	var names []string
	for obj := range r.noalloc {
		names = append(names, obj.Name())
	}
	return names
}

// SecretLine reports whether a //dlr:secret comment sits on (file,
// line), for statement-level seeds: a marker covers its own line and
// the next, so it can trail the statement or stand above it.
func (r *Registry) SecretLine(file string, line int) bool {
	m := r.secretLines[file]
	return m != nil && (m[line] || m[line-1])
}

func hasMarker(groups []*ast.CommentGroup, marker string) bool {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if text := strings.TrimSpace(c.Text); text == marker || strings.HasPrefix(text, marker+" ") {
				return true
			}
		}
	}
	return false
}

// markerArgs returns the names following marker in any of the groups'
// comments, and whether the marker was present at all.
func markerArgs(groups []*ast.CommentGroup, marker string) ([]string, bool) {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			text := strings.TrimSpace(c.Text)
			if text == marker {
				return nil, true
			}
			if strings.HasPrefix(text, marker+" ") {
				return strings.Fields(strings.TrimPrefix(text, marker+" ")), true
			}
		}
	}
	return nil, false
}

// BuildRegistry scans every package's comments and builds the shared
// annotation registry. Because module-internal packages are
// type-checked from one source cache, the object identities recorded
// here are valid in every pass, whichever package the use occurs in.
func BuildRegistry(pkgs []*Package) *Registry {
	r := &Registry{
		secretObjs:  make(map[types.Object]bool),
		secretTypes: make(map[*types.TypeName]bool),
		noalloc:     make(map[types.Object]bool),
		secretLines: make(map[string]map[int]bool),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			r.scanFile(pkg, f)
		}
	}
	return r
}

func (r *Registry) scanFile(pkg *Package, f *ast.File) {
	// Record every //dlr:secret comment position for statement-level
	// seeds.
	for _, g := range f.Comments {
		for _, c := range g.List {
			text := strings.TrimSpace(c.Text)
			if text == secretMarker || strings.HasPrefix(text, secretMarker+" ") {
				pos := pkg.Fset.Position(c.Pos())
				m := r.secretLines[pos.Filename]
				if m == nil {
					m = make(map[int]bool)
					r.secretLines[pos.Filename] = m
				}
				m[pos.Line] = true
			}
		}
	}

	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					r.scanType(pkg, d, s)
				case *ast.ValueSpec:
					if hasMarker([]*ast.CommentGroup{d.Doc, s.Doc, s.Comment}, secretMarker) {
						for _, name := range s.Names {
							if obj := pkg.Info.Defs[name]; obj != nil {
								r.secretObjs[obj] = true
							}
						}
					}
				}
			}
		case *ast.FuncDecl:
			r.scanFunc(pkg, d)
		}
	}
}

func (r *Registry) scanType(pkg *Package, d *ast.GenDecl, s *ast.TypeSpec) {
	if hasMarker([]*ast.CommentGroup{d.Doc, s.Doc, s.Comment}, secretMarker) {
		if tn, ok := pkg.Info.Defs[s.Name].(*types.TypeName); ok {
			r.secretTypes[tn] = true
			// An annotated alias forwards the mark to its target, so
			// `type Share2 = hpske.Key` marks Key values everywhere.
			if named, ok := types.Unalias(tn.Type()).(*types.Named); ok {
				r.secretTypes[named.Obj()] = true
			}
		}
	}
	st, ok := s.Type.(*ast.StructType)
	if !ok || st.Fields == nil {
		return
	}
	for _, field := range st.Fields.List {
		if !hasMarker([]*ast.CommentGroup{field.Doc, field.Comment}, secretMarker) {
			continue
		}
		for _, name := range field.Names {
			if obj := pkg.Info.Defs[name]; obj != nil {
				r.secretObjs[obj] = true
			}
		}
	}
}

func (r *Registry) scanFunc(pkg *Package, d *ast.FuncDecl) {
	if hasMarker([]*ast.CommentGroup{d.Doc}, noallocMarker) {
		if obj := pkg.Info.Defs[d.Name]; obj != nil {
			r.noalloc[obj] = true
		}
	}
	args, ok := markerArgs([]*ast.CommentGroup{d.Doc}, secretMarker)
	if !ok {
		return
	}
	if len(args) == 0 {
		r.Problems = append(r.Problems, Diagnostic{
			Analyzer: "dlrlint",
			Pos:      pkg.Fset.Position(d.Pos()),
			Message:  "function-level //dlr:secret must name the secret parameters",
		})
		return
	}
	params := map[string]types.Object{}
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				params[name.Name] = pkg.Info.Defs[name]
			}
		}
	}
	if d.Recv != nil {
		collect(d.Recv)
	}
	collect(d.Type.Params)
	for _, a := range args {
		obj, ok := params[a]
		if !ok || obj == nil {
			r.Problems = append(r.Problems, Diagnostic{
				Analyzer: "dlrlint",
				Pos:      pkg.Fset.Position(d.Pos()),
				Message:  "//dlr:secret names unknown parameter " + a,
			})
			continue
		}
		r.secretObjs[obj] = true
	}
}
