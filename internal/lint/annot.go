package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Annotation grammar.
//
//	//dlr:secret [name ...]
//
// marks a value as secret-bearing for the vartime-taint analyzer:
//
//   - on a struct field (doc comment or same-line comment): the field;
//
//   - on a type declaration: every value of that named type (aliases
//     forward the mark to the aliased type);
//
//   - on a var declaration: the declared names;
//
//   - in a function's doc comment with trailing names: the listed
//     parameters;
//
//   - on (or directly above) a statement inside a function body: the
//     identifiers assigned on that statement's line.
//
//     //dlr:noalloc
//
// in a function's doc comment marks it as a zero-allocation hot path
// for the hot-path-alloc analyzer; the function is expected to carry a
// testing.AllocsPerRun gate as its runtime twin.
//
// The concurrency/lifecycle pack adds:
//
//	//dlr:atomic
//
// on a struct field (or package var): the value may only be touched
// through its own atomic.* methods or by passing its address to a
// sync/atomic function — never read plainly, assigned, or copied
// (atomic-discipline analyzer).
//
//	//dlr:guarded-by <mu>
//
// on a struct field: every access must happen while <mu> (a sibling
// mutex field on the same struct value) is held; on a package var, <mu>
// names a package-level mutex (lock-discipline analyzer).
//
//	//dlr:locked <mu> [...]
//
// in a method's doc comment: the caller holds the receiver's listed
// mutexes for the whole call, so guarded accesses inside the body are
// legal (lock-discipline analyzer).
//
//	//dlr:lock-order <mu1> <mu2> ...
//
// anywhere in a package: declares the package's mutex acquisition
// order by field/var name; acquiring a listed mutex while holding one
// that appears later in the list is a finding (lock-discipline).
//
//	//dlr:zeroize <name> [...]
//
// in a function's doc comment: every successful return path (an error
// result that is the literal nil, or any return of an error-free
// function) must be dominated by a <recv>.<name>.Zeroize() call — the
// listed names are receiver fields or parameters. A deferred Zeroize
// also covers panic unwinding (zeroize-paths analyzer).
//
//	//dlr:borrowed [param ...]
//
// in a function or interface-method doc comment: bare, the results
// alias callee-owned scratch that the next call invalidates; with
// names, the listed parameters are borrowed inside the body. Borrowed
// values must not outlive the call: no stores to fields/globals/maps,
// no channel sends, no capture by escaping closures without an
// explicit copy (payload-ownership analyzer).
const (
	secretMarker    = "//dlr:secret"
	noallocMarker   = "//dlr:noalloc"
	atomicMarker    = "//dlr:atomic"
	guardedMarker   = "//dlr:guarded-by"
	lockedMarker    = "//dlr:locked"
	lockOrderMarker = "//dlr:lock-order"
	zeroizeMarker   = "//dlr:zeroize"
	borrowedMarker  = "//dlr:borrowed"
)

// Registry holds the module-wide annotation state shared by analyzers.
type Registry struct {
	// secretObjs are fields, params and vars marked //dlr:secret.
	secretObjs map[types.Object]bool
	// secretTypes are type names whose every value is secret.
	secretTypes map[*types.TypeName]bool
	// noalloc are functions marked //dlr:noalloc.
	noalloc map[types.Object]bool
	// secretLines are (file, line) positions of //dlr:secret comments,
	// used for statement-level seeds inside function bodies.
	secretLines map[string]map[int]bool

	// atomicObjs are fields/vars marked //dlr:atomic.
	atomicObjs map[types.Object]bool
	// guardedBy maps a field/var to the name of the mutex guarding it.
	guardedBy map[types.Object]string
	// lockedFuncs maps a function to the receiver mutexes its caller
	// holds (//dlr:locked).
	lockedFuncs map[types.Object][]string
	// lockOrder maps a package path to its declared mutex acquisition
	// ranks (//dlr:lock-order): lower rank locks first.
	lockOrder map[string]map[string]int
	// zeroizeFuncs maps a function to the receiver fields / parameters
	// it must Zeroize on every successful exit path (//dlr:zeroize).
	zeroizeFuncs map[types.Object][]string
	// borrowedFuncs are functions whose results borrow callee scratch.
	borrowedFuncs map[types.Object]bool
	// borrowedParams are parameters marked borrowed inside their body.
	borrowedParams map[types.Object]bool

	// Problems are malformed annotations found while building.
	Problems []Diagnostic
}

// SecretObj reports whether obj is annotated secret.
func (r *Registry) SecretObj(obj types.Object) bool { return obj != nil && r.secretObjs[obj] }

// SecretType reports whether t (or the named type it instantiates or
// points to) is annotated secret.
func (r *Registry) SecretType(t types.Type) bool {
	for i := 0; i < 4; i++ { // unwrap a few levels of pointers
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
			continue
		case *types.Named:
			if r.secretTypes[tt.Obj()] {
				return true
			}
			return false
		case *types.Alias:
			t = types.Unalias(tt)
			continue
		}
		return false
	}
	return false
}

// Noalloc reports whether fn is annotated //dlr:noalloc.
func (r *Registry) Noalloc(fn types.Object) bool { return fn != nil && r.noalloc[fn] }

// NoallocNames returns the declared names of every //dlr:noalloc
// function, for the cross-check against runtime allocation gates.
func (r *Registry) NoallocNames() []string {
	var names []string
	for obj := range r.noalloc {
		names = append(names, obj.Name())
	}
	return names
}

// SecretLine reports whether a //dlr:secret comment sits on (file,
// line), for statement-level seeds: a marker covers its own line and
// the next, so it can trail the statement or stand above it.
func (r *Registry) SecretLine(file string, line int) bool {
	m := r.secretLines[file]
	return m != nil && (m[line] || m[line-1])
}

// AtomicObj reports whether obj is annotated //dlr:atomic.
func (r *Registry) AtomicObj(obj types.Object) bool { return obj != nil && r.atomicObjs[obj] }

// GuardedBy returns the mutex name guarding obj, if annotated.
func (r *Registry) GuardedBy(obj types.Object) (string, bool) {
	if obj == nil {
		return "", false
	}
	mu, ok := r.guardedBy[obj]
	return mu, ok
}

// LockedMus returns the receiver mutexes fn's caller holds.
func (r *Registry) LockedMus(fn types.Object) []string {
	if fn == nil {
		return nil
	}
	return r.lockedFuncs[fn]
}

// LockOrder returns the declared mutex acquisition ranks for pkgPath
// (lower rank locks first), or nil when the package declares none.
func (r *Registry) LockOrder(pkgPath string) map[string]int { return r.lockOrder[pkgPath] }

// ZeroizeTargets returns the names fn must Zeroize before a successful
// return, or nil when fn carries no //dlr:zeroize annotation.
func (r *Registry) ZeroizeTargets(fn types.Object) []string {
	if fn == nil {
		return nil
	}
	return r.zeroizeFuncs[fn]
}

// BorrowedFunc reports whether fn's results are annotated //dlr:borrowed.
func (r *Registry) BorrowedFunc(fn types.Object) bool { return fn != nil && r.borrowedFuncs[fn] }

// BorrowedParam reports whether param obj is annotated borrowed.
func (r *Registry) BorrowedParam(obj types.Object) bool { return obj != nil && r.borrowedParams[obj] }

func hasMarker(groups []*ast.CommentGroup, marker string) bool {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if text := strings.TrimSpace(c.Text); text == marker || strings.HasPrefix(text, marker+" ") {
				return true
			}
		}
	}
	return false
}

// markerArgs returns the names following marker in any of the groups'
// comments, and whether the marker was present at all.
func markerArgs(groups []*ast.CommentGroup, marker string) ([]string, bool) {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			text := strings.TrimSpace(c.Text)
			if text == marker {
				return nil, true
			}
			if strings.HasPrefix(text, marker+" ") {
				return strings.Fields(strings.TrimPrefix(text, marker+" ")), true
			}
		}
	}
	return nil, false
}

// BuildRegistry scans every package's comments and builds the shared
// annotation registry. Because module-internal packages are
// type-checked from one source cache, the object identities recorded
// here are valid in every pass, whichever package the use occurs in.
func BuildRegistry(pkgs []*Package) *Registry {
	r := &Registry{
		secretObjs:     make(map[types.Object]bool),
		secretTypes:    make(map[*types.TypeName]bool),
		noalloc:        make(map[types.Object]bool),
		secretLines:    make(map[string]map[int]bool),
		atomicObjs:     make(map[types.Object]bool),
		guardedBy:      make(map[types.Object]string),
		lockedFuncs:    make(map[types.Object][]string),
		lockOrder:      make(map[string]map[string]int),
		zeroizeFuncs:   make(map[types.Object][]string),
		borrowedFuncs:  make(map[types.Object]bool),
		borrowedParams: make(map[types.Object]bool),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			r.scanFile(pkg, f)
		}
	}
	return r
}

func (r *Registry) scanFile(pkg *Package, f *ast.File) {
	// Record every //dlr:secret comment position for statement-level
	// seeds, and pick up //dlr:lock-order declarations wherever they
	// stand in the file.
	for _, g := range f.Comments {
		for _, c := range g.List {
			text := strings.TrimSpace(c.Text)
			if text == secretMarker || strings.HasPrefix(text, secretMarker+" ") {
				pos := pkg.Fset.Position(c.Pos())
				m := r.secretLines[pos.Filename]
				if m == nil {
					m = make(map[int]bool)
					r.secretLines[pos.Filename] = m
				}
				m[pos.Line] = true
			}
			if text == lockOrderMarker || strings.HasPrefix(text, lockOrderMarker+" ") {
				r.scanLockOrder(pkg, c)
			}
		}
	}

	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					r.scanType(pkg, d, s)
				case *ast.ValueSpec:
					groups := []*ast.CommentGroup{d.Doc, s.Doc, s.Comment}
					if hasMarker(groups, secretMarker) {
						for _, name := range s.Names {
							if obj := pkg.Info.Defs[name]; obj != nil {
								r.secretObjs[obj] = true
							}
						}
					}
					if hasMarker(groups, atomicMarker) {
						for _, name := range s.Names {
							if obj := pkg.Info.Defs[name]; obj != nil {
								r.atomicObjs[obj] = true
							}
						}
					}
					r.scanGuarded(pkg, groups, s.Names, s.Pos())
				}
			}
		case *ast.FuncDecl:
			r.scanFunc(pkg, d)
		}
	}
}

// scanLockOrder records one //dlr:lock-order declaration. A package
// gets at most one order; conflicting declarations are a problem.
func (r *Registry) scanLockOrder(pkg *Package, c *ast.Comment) {
	names := strings.Fields(strings.TrimPrefix(strings.TrimSpace(c.Text), lockOrderMarker))
	pos := pkg.Fset.Position(c.Pos())
	if len(names) < 2 {
		r.Problems = append(r.Problems, Diagnostic{
			Analyzer: "dlrlint",
			Pos:      pos,
			Message:  "//dlr:lock-order must list at least two mutex names",
		})
		return
	}
	order := make(map[string]int, len(names))
	for i, n := range names {
		if _, dup := order[n]; dup {
			r.Problems = append(r.Problems, Diagnostic{
				Analyzer: "dlrlint",
				Pos:      pos,
				Message:  "//dlr:lock-order lists " + n + " twice",
			})
			return
		}
		order[n] = i
	}
	if prev, ok := r.lockOrder[pkg.Path]; ok {
		same := len(prev) == len(order)
		for n, i := range order {
			if prev[n] != i {
				same = false
			}
		}
		if !same {
			r.Problems = append(r.Problems, Diagnostic{
				Analyzer: "dlrlint",
				Pos:      pos,
				Message:  "conflicting //dlr:lock-order declarations in one package",
			})
		}
		return
	}
	r.lockOrder[pkg.Path] = order
}

// scanGuarded records //dlr:guarded-by annotations for the named
// objects; the marker takes exactly one mutex name.
func (r *Registry) scanGuarded(pkg *Package, groups []*ast.CommentGroup, names []*ast.Ident, pos token.Pos) {
	args, ok := markerArgs(groups, guardedMarker)
	if !ok {
		return
	}
	if len(args) != 1 {
		r.Problems = append(r.Problems, Diagnostic{
			Analyzer: "dlrlint",
			Pos:      pkg.Fset.Position(pos),
			Message:  "//dlr:guarded-by takes exactly one mutex name",
		})
		return
	}
	for _, name := range names {
		if obj := pkg.Info.Defs[name]; obj != nil {
			r.guardedBy[obj] = args[0]
		}
	}
}

func (r *Registry) scanType(pkg *Package, d *ast.GenDecl, s *ast.TypeSpec) {
	if hasMarker([]*ast.CommentGroup{d.Doc, s.Doc, s.Comment}, secretMarker) {
		if tn, ok := pkg.Info.Defs[s.Name].(*types.TypeName); ok {
			r.secretTypes[tn] = true
			// An annotated alias forwards the mark to its target, so
			// `type Share2 = hpske.Key` marks Key values everywhere.
			if named, ok := types.Unalias(tn.Type()).(*types.Named); ok {
				r.secretTypes[named.Obj()] = true
			}
		}
	}
	if it, ok := s.Type.(*ast.InterfaceType); ok && it.Methods != nil {
		// Interface methods can declare the borrowed-results contract for
		// every implementation reached through the interface.
		for _, m := range it.Methods.List {
			if !hasMarker([]*ast.CommentGroup{m.Doc, m.Comment}, borrowedMarker) {
				continue
			}
			for _, name := range m.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					r.borrowedFuncs[obj] = true
				}
			}
		}
		return
	}
	st, ok := s.Type.(*ast.StructType)
	if !ok || st.Fields == nil {
		return
	}
	siblings := map[string]bool{}
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			siblings[name.Name] = true
		}
	}
	for _, field := range st.Fields.List {
		groups := []*ast.CommentGroup{field.Doc, field.Comment}
		if hasMarker(groups, secretMarker) {
			for _, name := range field.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					r.secretObjs[obj] = true
				}
			}
		}
		if hasMarker(groups, atomicMarker) {
			for _, name := range field.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					r.atomicObjs[obj] = true
				}
			}
		}
		if args, ok := markerArgs(groups, guardedMarker); ok && len(args) == 1 && !siblings[args[0]] {
			r.Problems = append(r.Problems, Diagnostic{
				Analyzer: "dlrlint",
				Pos:      pkg.Fset.Position(field.Pos()),
				Message:  "//dlr:guarded-by names " + args[0] + ", which is not a field of " + s.Name.Name,
			})
			continue
		}
		r.scanGuarded(pkg, groups, field.Names, field.Pos())
	}
}

func (r *Registry) scanFunc(pkg *Package, d *ast.FuncDecl) {
	if hasMarker([]*ast.CommentGroup{d.Doc}, noallocMarker) {
		if obj := pkg.Info.Defs[d.Name]; obj != nil {
			r.noalloc[obj] = true
		}
	}
	r.scanFuncLifecycle(pkg, d)
	args, ok := markerArgs([]*ast.CommentGroup{d.Doc}, secretMarker)
	if !ok {
		return
	}
	if len(args) == 0 {
		r.Problems = append(r.Problems, Diagnostic{
			Analyzer: "dlrlint",
			Pos:      pkg.Fset.Position(d.Pos()),
			Message:  "function-level //dlr:secret must name the secret parameters",
		})
		return
	}
	params := map[string]types.Object{}
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				params[name.Name] = pkg.Info.Defs[name]
			}
		}
	}
	if d.Recv != nil {
		collect(d.Recv)
	}
	collect(d.Type.Params)
	for _, a := range args {
		obj, ok := params[a]
		if !ok || obj == nil {
			r.Problems = append(r.Problems, Diagnostic{
				Analyzer: "dlrlint",
				Pos:      pkg.Fset.Position(d.Pos()),
				Message:  "//dlr:secret names unknown parameter " + a,
			})
			continue
		}
		r.secretObjs[obj] = true
	}
}

// scanFuncLifecycle records the concurrency/lifecycle markers on one
// function declaration: //dlr:locked, //dlr:zeroize, //dlr:borrowed.
func (r *Registry) scanFuncLifecycle(pkg *Package, d *ast.FuncDecl) {
	doc := []*ast.CommentGroup{d.Doc}
	fn := pkg.Info.Defs[d.Name]
	problem := func(msg string) {
		r.Problems = append(r.Problems, Diagnostic{
			Analyzer: "dlrlint",
			Pos:      pkg.Fset.Position(d.Pos()),
			Message:  msg,
		})
	}

	if args, ok := markerArgs(doc, lockedMarker); ok {
		if len(args) == 0 {
			problem("//dlr:locked must name the mutexes the caller holds")
		} else if fn != nil {
			r.lockedFuncs[fn] = args
		}
	}

	if args, ok := markerArgs(doc, zeroizeMarker); ok {
		switch {
		case len(args) == 0:
			problem("//dlr:zeroize must name the receiver fields or parameters to wipe")
		case fn == nil:
			// Type error elsewhere; nothing to record.
		default:
			// Each name must resolve to a receiver field or a parameter,
			// so a rename can't silently detach the contract.
			valid := map[string]bool{}
			if d.Recv != nil {
				for _, field := range d.Recv.List {
					for _, name := range field.Names {
						if obj := pkg.Info.Defs[name]; obj != nil {
							for _, fname := range structFieldNames(obj.Type()) {
								valid[fname] = true
							}
						}
					}
				}
			}
			if d.Type.Params != nil {
				for _, field := range d.Type.Params.List {
					for _, name := range field.Names {
						valid[name.Name] = true
					}
				}
			}
			ok := true
			for _, a := range args {
				if !valid[a] {
					problem("//dlr:zeroize names " + a + ", which is neither a receiver field nor a parameter")
					ok = false
				}
			}
			if ok {
				r.zeroizeFuncs[fn] = args
			}
		}
	}

	if args, ok := markerArgs(doc, borrowedMarker); ok {
		if len(args) == 0 {
			if fn != nil {
				r.borrowedFuncs[fn] = true
			}
			return
		}
		params := map[string]types.Object{}
		if d.Type.Params != nil {
			for _, field := range d.Type.Params.List {
				for _, name := range field.Names {
					params[name.Name] = pkg.Info.Defs[name]
				}
			}
		}
		for _, a := range args {
			obj, ok := params[a]
			if !ok || obj == nil {
				problem("//dlr:borrowed names unknown parameter " + a)
				continue
			}
			r.borrowedParams[obj] = true
		}
	}
}

// structFieldNames returns the field names of the struct type behind t
// (through pointers and named types), or nil.
func structFieldNames(t types.Type) []string {
	for i := 0; i < 4; i++ {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	names := make([]string, 0, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		names = append(names, st.Field(i).Name())
	}
	return names
}
