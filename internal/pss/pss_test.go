package pss

import (
	"crypto/rand"
	"math/big"
	"testing"

	"repro/internal/bn254"
	"repro/internal/group"
)

func newScheme(t *testing.T) *Scheme {
	t.Helper()
	s, err := New(group.G2{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func randMsk(t *testing.T) *bn254.G2 {
	t.Helper()
	msk, _, err := bn254.RandG2(nil)
	if err != nil {
		t.Fatal(err)
	}
	return msk
}

func TestShareReconstruct(t *testing.T) {
	s := newScheme(t)
	msk := randMsk(t)
	sh1, sh2, err := s.Share(rand.Reader, msk)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Reconstruct(sh1, sh2)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(msk) {
		t.Fatal("reconstruction failed")
	}
	if !s.Verify(sh1, sh2, msk) {
		t.Fatal("Verify rejected valid sharing")
	}
}

func TestMismatchedSharesFail(t *testing.T) {
	s := newScheme(t)
	msk := randMsk(t)
	sh1, _, err := s.Share(rand.Reader, msk)
	if err != nil {
		t.Fatal(err)
	}
	_, otherSh2, err := s.Share(rand.Reader, msk)
	if err != nil {
		t.Fatal(err)
	}
	if s.Verify(sh1, otherSh2, msk) {
		t.Fatal("shares from different sharings verified (vanishing probability)")
	}
}

func TestRefreshLocalPreservesSecret(t *testing.T) {
	s := newScheme(t)
	msk := randMsk(t)
	sh1, sh2, err := s.Share(rand.Reader, msk)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		sh1, sh2, err = s.RefreshLocal(rand.Reader, sh1, sh2)
		if err != nil {
			t.Fatal(err)
		}
		if !s.Verify(sh1, sh2, msk) {
			t.Fatalf("refresh %d broke the sharing", i)
		}
	}
}

func TestRefreshProducesFreshShares(t *testing.T) {
	s := newScheme(t)
	msk := randMsk(t)
	sh1, sh2, err := s.Share(rand.Reader, msk)
	if err != nil {
		t.Fatal(err)
	}
	// RefreshLocal wipes sh2 in place, so snapshot the coordinate the
	// freshness check compares against.
	oldS1 := new(big.Int).Set(sh2[0])
	nsh1, nsh2, err := s.RefreshLocal(rand.Reader, sh1, sh2)
	if err != nil {
		t.Fatal(err)
	}
	if nsh1.Payload.Equal(sh1.Payload) {
		t.Fatal("refresh reused Φ")
	}
	if nsh2[0].Cmp(oldS1) == 0 {
		t.Fatal("refresh reused s1 (vanishing probability)")
	}
}

func TestRefreshLocalZeroizesOldShare(t *testing.T) {
	s := newScheme(t)
	msk := randMsk(t)
	sh1, sh2, err := s.Share(rand.Reader, msk)
	if err != nil {
		t.Fatal(err)
	}
	old := sh2
	// Capture the limb storage of every coordinate: Zeroize must
	// overwrite the backing arrays, not just swap in fresh values.
	limbs := make([][]big.Word, len(old))
	for i, c := range old {
		limbs[i] = c.Bits()
		if len(limbs[i]) == 0 {
			t.Fatalf("share coordinate %d is zero before refresh", i)
		}
	}
	nsh1, nsh2, err := s.RefreshLocal(rand.Reader, sh1, sh2)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range old {
		if c.Sign() != 0 {
			t.Errorf("old share coordinate %d not reset after refresh", i)
		}
		for j, w := range limbs[i] {
			if w != 0 {
				t.Errorf("old share coordinate %d limb %d not wiped", i, j)
			}
		}
	}
	if !s.Verify(nsh1, nsh2, msk) {
		t.Fatal("refresh with erasure broke the sharing")
	}
}

func TestNewRejectsBadEll(t *testing.T) {
	if _, err := New(group.G2{}, 0); err == nil {
		t.Fatal("accepted ℓ = 0")
	}
}
