// Package pss implements Π_ss, the paper's secret-sharing encryption
// (§4.1), used to share the Boneh–Boyen master secret msk = g2^α between
// the two devices:
//
//	Gen_ss:  sk_ss = (s1,…,sℓ) ← Zrˡ            → held by P2
//	Enc_ss:  (a1,…,aℓ, msk·Π aᵢ^sᵢ)             → held by P1
//	Dec_ss:  Φ / Π aᵢ^sᵢ = msk
//
// The sharing is leakage resilient in the BHHO/Naor–Segev sense (the
// leftover hash lemma applies to the inner product ⟨a, s⟩ in the
// exponent) and — crucially — lets the devices decrypt DLR ciphertexts
// without ever reconstructing msk. Structurally Π_ss is the HPSKE of
// Lemma 5.2 with key length ℓ; this package wraps that scheme with
// share-oriented vocabulary and the reconstruction/verification helpers
// the tests and protocols need.
package pss

import (
	"fmt"
	"io"

	"repro/internal/bn254"
	"repro/internal/group"
	"repro/internal/hpske"
)

// Share1 is P1's share: the Π_ss ciphertext (a1,…,aℓ, Φ).
type Share1 = hpske.Ciphertext[*bn254.G2]

// Share2 is P2's share: the Π_ss key (s1,…,sℓ).
//
//dlr:secret
type Share2 = hpske.Key

// Scheme is a Π_ss instance with sharing length ℓ over G2.
type Scheme struct {
	// Inner is the underlying HPSKE scheme with κ = ℓ.
	Inner *hpske.Scheme[*bn254.G2]
	// Ell is the sharing length ℓ.
	Ell int
}

// New returns a Π_ss scheme with sharing length ell over the given G2
// adapter (which may carry an op counter).
func New(g group.Group[*bn254.G2], ell int) (*Scheme, error) {
	if ell < 1 {
		return nil, fmt.Errorf("pss: ell must be ≥ 1, got %d", ell)
	}
	inner, err := hpske.New(g, ell)
	if err != nil {
		return nil, err
	}
	return &Scheme{Inner: inner, Ell: ell}, nil
}

// Share splits msk into (share1, share2): share2 is a fresh Π_ss key and
// share1 the Π_ss encryption of msk under it.
func (s *Scheme) Share(rng io.Reader, msk *bn254.G2) (*Share1, Share2, error) {
	key, err := s.Inner.GenKey(rng)
	if err != nil {
		return nil, nil, fmt.Errorf("pss: sharing: %w", err)
	}
	ct, err := s.Inner.Encrypt(rng, key, msk)
	if err != nil {
		return nil, nil, fmt.Errorf("pss: sharing: %w", err)
	}
	return ct, Share2(key), nil
}

// Reconstruct recombines the two shares into msk. Real deployments never
// call this — the point of the scheme is that decryption works without
// reconstruction — but tests use it to state invariants.
func (s *Scheme) Reconstruct(sh1 *Share1, sh2 Share2) (*bn254.G2, error) {
	msk, err := s.Inner.Decrypt(hpske.Key(sh2), sh1)
	if err != nil {
		return nil, fmt.Errorf("pss: reconstructing: %w", err)
	}
	return msk, nil
}

// Verify reports whether (sh1, sh2) is a valid sharing of msk.
func (s *Scheme) Verify(sh1 *Share1, sh2 Share2, msk *bn254.G2) bool {
	got, err := s.Reconstruct(sh1, sh2)
	if err != nil {
		return false
	}
	return got.Equal(msk)
}

// RefreshLocal produces a fresh, independently distributed sharing of
// the same secret, given both shares in one place. It is the
// single-party reference implementation of what the 2-party Ref protocol
// achieves without ever co-locating the shares; tests compare the two.
// Like the protocol, it erases the outgoing key share: sh2 is wiped in
// place once the new sharing exists.
func (s *Scheme) RefreshLocal(rng io.Reader, sh1 *Share1, sh2 Share2) (*Share1, Share2, error) {
	msk, err := s.Reconstruct(sh1, sh2)
	if err != nil {
		return nil, nil, err
	}
	nsh1, nsh2, err := s.Share(rng, msk)
	if err != nil {
		return nil, nil, err
	}
	sh2.Zeroize()
	return nsh1, nsh2, nil
}
