// Package hpske implements the paper's Homomorphic Proxy Secret Key
// Encryption (HPSKE, Definition 5.1) with the concrete instantiation of
// Lemma 5.2:
//
//	Gen'(1ⁿ):  skcomm = (σ1,…,σκ) ← Zrᵏ
//	Enc'(m):   (b1,…,bκ, m·Π bⱼ^σⱼ)  for oblivious random bⱼ ∈ G'
//	Dec'(c):   c0 / Π bⱼ^σⱼ
//
// The scheme is generic over the group G' (instantiated at G2 and GT;
// the paper's "HPSKE for ℓ, G, GT"). Beyond Definition 5.1's
// coordinate-wise product homomorphism, the implementation exposes the
// two further homomorphisms the DLR protocols rely on:
//
//   - scalar powers: Enc'(m)^k is a valid Enc'(m^k) (used by P2 in both
//     the decryption and refresh protocols), and
//   - pairing transport: pairing every coordinate of a G2-ciphertext
//     with a fixed A ∈ G1 yields a GT-ciphertext of e(A, m) under the
//     same key (the "reusing ciphertexts" remark of §5.2).
//
// Random coins bⱼ are sampled directly as group elements of unknown
// discrete logarithm, as §5.2 requires ("hiding discrete logs of random
// coins").
package hpske

import (
	"fmt"
	"io"
	"math/big"
	"sort"

	"repro/internal/bn254"
	"repro/internal/group"
	"repro/internal/opcount"
	"repro/internal/par"
	"repro/internal/scalar"
)

// Key is an HPSKE secret key skcomm = (σ1,…,σκ).
//
//dlr:secret
type Key []*big.Int

// Clone returns a deep copy of the key.
func (k Key) Clone() Key { return Key(scalar.CopyVector(k)) }

// Zeroize wipes the key in place: every limb of every coordinate is
// overwritten with zero before the big.Int is reset. The refresh
// protocols call this on an outgoing key so that erased shares do not
// linger on the heap — the paper's erasure step, made observable.
func (k Key) Zeroize() {
	for _, s := range k {
		if s == nil {
			continue
		}
		limbs := s.Bits()
		for i := range limbs {
			limbs[i] = 0
		}
		s.SetInt64(0)
	}
}

// Bytes returns the canonical encoding of the key.
func (k Key) Bytes() []byte { return scalar.Bytes(k) }

// Ciphertext is an HPSKE ciphertext (b1,…,bκ, c0): Coins holds the
// randomness coordinates bⱼ and Payload the masked message c0.
type Ciphertext[E any] struct {
	Coins   []E
	Payload E
}

// Scheme is an HPSKE instance over a fixed group with key length κ.
type Scheme[E any] struct {
	G     group.Group[E]
	Kappa int
}

// New returns an HPSKE scheme over g with key length kappa.
func New[E any](g group.Group[E], kappa int) (*Scheme[E], error) {
	if kappa < 1 {
		return nil, fmt.Errorf("hpske: kappa must be ≥ 1, got %d", kappa)
	}
	return &Scheme[E]{G: g, Kappa: kappa}, nil
}

// GenKey samples a fresh secret key skcomm ← Zr^κ.
func (s *Scheme[E]) GenKey(rng io.Reader) (Key, error) {
	v, err := scalar.RandVector(rng, s.Kappa)
	if err != nil {
		return nil, fmt.Errorf("hpske: generating key: %w", err)
	}
	return Key(v), nil
}

// Encrypt encrypts m under key, sampling fresh oblivious coins.
func (s *Scheme[E]) Encrypt(rng io.Reader, key Key, m E) (*Ciphertext[E], error) {
	coins := make([]E, s.Kappa)
	for j := range coins {
		b, err := s.G.Rand(rng)
		if err != nil {
			return nil, fmt.Errorf("hpske: sampling coin %d: %w", j, err)
		}
		coins[j] = b
	}
	return s.EncryptWithCoins(key, m, coins)
}

// EncryptWithCoins encrypts m with the provided coin coordinates
// (b1,…,bκ): c0 = m·Π bⱼ^σⱼ.
func (s *Scheme[E]) EncryptWithCoins(key Key, m E, coins []E) (*Ciphertext[E], error) {
	if err := s.checkKey(key); err != nil {
		return nil, err
	}
	if len(coins) != s.Kappa {
		return nil, fmt.Errorf("hpske: %d coins, want %d", len(coins), s.Kappa)
	}
	mask, err := group.ProdExp(s.G, coins, key)
	if err != nil {
		return nil, err
	}
	ct := &Ciphertext[E]{Coins: make([]E, s.Kappa), Payload: s.G.Mul(m, mask)}
	copy(ct.Coins, coins)
	return ct, nil
}

// Decrypt recovers m = c0 / Π bⱼ^σⱼ.
func (s *Scheme[E]) Decrypt(key Key, ct *Ciphertext[E]) (E, error) {
	var zero E
	if err := s.checkKey(key); err != nil {
		return zero, err
	}
	if err := s.checkCT(ct); err != nil {
		return zero, err
	}
	mask, err := group.ProdExp(s.G, ct.Coins, key)
	if err != nil {
		return zero, err
	}
	return s.G.Mul(ct.Payload, s.G.Inv(mask)), nil
}

// One returns the trivially valid encryption of the identity with
// identity coins (useful as a multiplicative accumulator).
func (s *Scheme[E]) One() *Ciphertext[E] {
	coins := make([]E, s.Kappa)
	for j := range coins {
		coins[j] = s.G.Identity()
	}
	return &Ciphertext[E]{Coins: coins, Payload: s.G.Identity()}
}

// Mul returns the coordinate-wise product a·b — a valid encryption of
// the product of the two plaintexts (Definition 5.1, property 1).
func (s *Scheme[E]) Mul(a, b *Ciphertext[E]) (*Ciphertext[E], error) {
	if err := s.checkCT(a); err != nil {
		return nil, err
	}
	if err := s.checkCT(b); err != nil {
		return nil, err
	}
	out := &Ciphertext[E]{Coins: make([]E, s.Kappa)}
	for j := range out.Coins {
		out.Coins[j] = s.G.Mul(a.Coins[j], b.Coins[j])
	}
	out.Payload = s.G.Mul(a.Payload, b.Payload)
	return out, nil
}

// Div returns the coordinate-wise quotient a/b — a valid encryption of
// the quotient of the plaintexts.
func (s *Scheme[E]) Div(a, b *Ciphertext[E]) (*Ciphertext[E], error) {
	inv, err := s.Inv(b)
	if err != nil {
		return nil, err
	}
	return s.Mul(a, inv)
}

// Inv returns the coordinate-wise inverse — a valid encryption of the
// inverse plaintext.
func (s *Scheme[E]) Inv(a *Ciphertext[E]) (*Ciphertext[E], error) {
	if err := s.checkCT(a); err != nil {
		return nil, err
	}
	out := &Ciphertext[E]{Coins: make([]E, s.Kappa)}
	for j := range out.Coins {
		out.Coins[j] = s.G.Inv(a.Coins[j])
	}
	out.Payload = s.G.Inv(a.Payload)
	return out, nil
}

// Pow returns the coordinate-wise power a^k — a valid encryption of
// m^k with coins bⱼ^k (the scalar homomorphism used by P2).
func (s *Scheme[E]) Pow(a *Ciphertext[E], k *big.Int) (*Ciphertext[E], error) {
	if err := s.checkCT(a); err != nil {
		return nil, err
	}
	out := &Ciphertext[E]{Coins: make([]E, s.Kappa)}
	for j := range out.Coins {
		out.Coins[j] = s.G.Exp(a.Coins[j], k)
	}
	out.Payload = s.G.Exp(a.Payload, k)
	return out, nil
}

// linCombParMinExps is the total exponentiation count — terms ×
// (κ+1) coordinates — below which LinComb stays on the serial twin.
// Each coordinate is one multi-exponentiation of len(cts) terms, so
// this gates on the actual work, not the coordinate count: a 2-term
// combination at κ=2 (6 exponentiations) keeps the allocation-lean
// serial loop, while the protocol-shaped ℓ-term combinations (P2's
// Π dᵢ^sᵢ at ℓ=14, κ=2 → 45) fan out per coordinate chunk.
const linCombParMinExps = 16

// LinComb returns the coordinate-wise linear combination Π ctsᵢ^kᵢ —
// a valid encryption of Π mᵢ^kᵢ, combining properties 1 and 2 of
// Definition 5.1. This is the shape of P2's work in both the
// decryption protocol (Π dᵢ^sk2ᵢ) and the refresh protocol
// (Π f'ᵢ^s'ᵢ · fᵢ^(−sᵢ)). Each of the κ+1 coordinates is an
// independent multi-exponentiation, evaluated through the group's
// shared-doubling fast path; above the size-aware threshold the
// coordinates fan out across CPUs in contiguous chunks (one shared
// bases buffer per worker), below it the serial twin runs with a
// single reused buffer. TestLinCombParallelMatchesSerial pins the
// two paths to identical ciphertexts.
func (s *Scheme[E]) LinComb(cts []*Ciphertext[E], ks []*big.Int) (*Ciphertext[E], error) {
	if len(cts) != len(ks) {
		return nil, fmt.Errorf("hpske: LinComb length mismatch %d vs %d", len(cts), len(ks))
	}
	for _, ct := range cts {
		if err := s.checkCT(ct); err != nil {
			return nil, err
		}
	}
	if len(cts) == 0 {
		return s.One(), nil
	}
	coords := s.Kappa + 1
	chunks := par.Chunks(coords, 1)
	if len(chunks) <= 1 || len(cts)*coords < linCombParMinExps {
		return s.linCombSerial(cts, ks)
	}
	out := &Ciphertext[E]{Coins: make([]E, s.Kappa)}
	errs := make([]error, len(chunks))
	par.ForEach(len(chunks), func(ci int) {
		bases := make([]E, len(cts))
		for c := chunks[ci][0]; c < chunks[ci][1]; c++ {
			for i, ct := range cts {
				if c < s.Kappa {
					bases[i] = ct.Coins[c]
				} else {
					bases[i] = ct.Payload
				}
			}
			v, err := group.ProdExp(s.G, bases, ks)
			if err != nil {
				errs[ci] = err
				return
			}
			if c < s.Kappa {
				out.Coins[c] = v
			} else {
				out.Payload = v
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// linCombSerial is the retained serial twin of LinComb's fan-out: the
// same per-coordinate multi-exponentiations, one reused bases buffer,
// no dispatch overhead. Callers reach it through LinComb when the
// work is below linCombParMinExps or only one worker is available.
func (s *Scheme[E]) linCombSerial(cts []*Ciphertext[E], ks []*big.Int) (*Ciphertext[E], error) {
	out := &Ciphertext[E]{Coins: make([]E, s.Kappa)}
	bases := make([]E, len(cts))
	for c := 0; c <= s.Kappa; c++ {
		for i, ct := range cts {
			if c < s.Kappa {
				bases[i] = ct.Coins[c]
			} else {
				bases[i] = ct.Payload
			}
		}
		v, err := group.ProdExp(s.G, bases, ks)
		if err != nil {
			return nil, err
		}
		if c < s.Kappa {
			out.Coins[c] = v
		} else {
			out.Payload = v
		}
	}
	return out, nil
}

// Rerandomize multiplies a by a fresh encryption of the identity,
// producing an independent-looking ciphertext of the same plaintext.
func (s *Scheme[E]) Rerandomize(rng io.Reader, key Key, a *Ciphertext[E]) (*Ciphertext[E], error) {
	blind, err := s.Encrypt(rng, key, s.G.Identity())
	if err != nil {
		return nil, err
	}
	return s.Mul(a, blind)
}

// ReEncrypt transforms a ciphertext under oldKey into a fresh ciphertext
// of the same plaintext under newKey without ever materializing the
// plaintext: c0' = c0 · Π b'ⱼ^σ'ⱼ / Π bⱼ^σⱼ. This is the per-period
// skcomm rotation used by the optimal-leakage-rate mode, where P1 holds
// both keys (and never the plaintext share).
func (s *Scheme[E]) ReEncrypt(rng io.Reader, oldKey, newKey Key, a *Ciphertext[E]) (*Ciphertext[E], error) {
	if err := s.checkKey(oldKey); err != nil {
		return nil, err
	}
	if err := s.checkKey(newKey); err != nil {
		return nil, err
	}
	if err := s.checkCT(a); err != nil {
		return nil, err
	}
	oldMask, err := group.ProdExp(s.G, a.Coins, oldKey)
	if err != nil {
		return nil, err
	}
	coins := make([]E, s.Kappa)
	for j := range coins {
		b, err := s.G.Rand(rng)
		if err != nil {
			return nil, err
		}
		coins[j] = b
	}
	newMask, err := group.ProdExp(s.G, coins, newKey)
	if err != nil {
		return nil, err
	}
	payload := s.G.Mul(a.Payload, s.G.Inv(oldMask))
	payload = s.G.Mul(payload, newMask)
	return &Ciphertext[E]{Coins: coins, Payload: payload}, nil
}

// Clone deep-copies a ciphertext (elements are immutable by convention,
// so coordinate slices are the only copied state).
func (c *Ciphertext[E]) Clone() *Ciphertext[E] {
	out := &Ciphertext[E]{Coins: make([]E, len(c.Coins)), Payload: c.Payload}
	copy(out.Coins, c.Coins)
	return out
}

// Bytes encodes the ciphertext as κ+1 concatenated group elements.
func (s *Scheme[E]) Bytes(c *Ciphertext[E]) ([]byte, error) {
	if err := s.checkCT(c); err != nil {
		return nil, err
	}
	out := make([]byte, 0, (s.Kappa+1)*s.G.ElementLen())
	for _, b := range c.Coins {
		out = append(out, s.G.Bytes(b)...)
	}
	out = append(out, s.G.Bytes(c.Payload)...)
	return out, nil
}

// FromBytes decodes a ciphertext encoded by Bytes.
func (s *Scheme[E]) FromBytes(b []byte) (*Ciphertext[E], error) {
	el := s.G.ElementLen()
	want := (s.Kappa + 1) * el
	if len(b) != want {
		return nil, fmt.Errorf("hpske: ciphertext encoding %d bytes, want %d", len(b), want)
	}
	ct := &Ciphertext[E]{Coins: make([]E, s.Kappa)}
	for j := 0; j < s.Kappa; j++ {
		e, err := s.G.FromBytes(b[j*el : (j+1)*el])
		if err != nil {
			return nil, fmt.Errorf("hpske: decoding coin %d: %w", j, err)
		}
		ct.Coins[j] = e
	}
	e, err := s.G.FromBytes(b[s.Kappa*el:])
	if err != nil {
		return nil, fmt.Errorf("hpske: decoding payload: %w", err)
	}
	ct.Payload = e
	return ct, nil
}

func (s *Scheme[E]) checkKey(key Key) error {
	if len(key) != s.Kappa {
		return fmt.Errorf("hpske: key length %d, want κ = %d", len(key), s.Kappa)
	}
	return nil
}

func (s *Scheme[E]) checkCT(ct *Ciphertext[E]) error {
	if ct == nil {
		return fmt.Errorf("hpske: nil ciphertext")
	}
	if len(ct.Coins) != s.Kappa {
		return fmt.Errorf("hpske: ciphertext has %d coins, want κ = %d", len(ct.Coins), s.Kappa)
	}
	return nil
}

// Transport maps a G2-ciphertext under key σ to a GT-ciphertext of
// e(a, m) under the same σ, by pairing every coordinate with a:
//
//	(b1,…,bκ, m·Π bⱼ^σⱼ)  ↦  (e(a,b1),…,e(a,bκ), e(a,m)·Π e(a,bⱼ)^σⱼ).
//
// This is the "reusing ciphertexts" device of §5.2: P1 derives the
// decryption-protocol ciphertexts dᵢ from the refresh-protocol
// ciphertexts fᵢ with κ+1 pairings and no fresh randomness.
//
// The κ+1 pairings run as one PairBatch: lockstep Miller loops with
// batched line-denominator inversions (the outputs are distinct GT
// elements, so each still pays its own final exponentiation).
// TransportReference retains the one-Pair-at-a-time loop for
// differential testing.
func Transport(ctr *opcount.Counter, a *bn254.G1, ct *Ciphertext[*bn254.G2]) *Ciphertext[*bn254.GT] {
	n := len(ct.Coins)
	ps := make([]*bn254.G1, n+1)
	qs := make([]*bn254.G2, n+1)
	for j, b := range ct.Coins {
		ps[j] = a
		qs[j] = b
	}
	ps[n] = a
	qs[n] = ct.Payload
	gts := group.PairBatch(ctr, ps, qs)
	return &Ciphertext[*bn254.GT]{Coins: gts[:n], Payload: gts[n]}
}

// TransportReference is the naive per-coordinate Pair loop Transport is
// differentially tested against.
func TransportReference(ctr *opcount.Counter, a *bn254.G1, ct *Ciphertext[*bn254.G2]) *Ciphertext[*bn254.GT] {
	out := &Ciphertext[*bn254.GT]{Coins: make([]*bn254.GT, len(ct.Coins))}
	for j, b := range ct.Coins {
		out.Coins[j] = group.Pair(ctr, a, b)
	}
	out.Payload = group.Pair(ctr, a, ct.Payload)
	return out
}

// TransportMany transports several G2-ciphertexts with the same a in a
// single flattened PairBatch, maximizing the inversion-batching window
// — the shape of P1's RunDec, which transports ℓ+1 ciphertexts at once.
// When the ciphertexts are long-lived, PrecomputeTransport +
// TransportManyPre replaces the cold Miller loops with precomputed-line
// replays.
func TransportMany(ctr *opcount.Counter, a *bn254.G1, cts []*Ciphertext[*bn254.G2]) []*Ciphertext[*bn254.GT] {
	var ps []*bn254.G1
	var qs []*bn254.G2
	for _, ct := range cts {
		for _, b := range ct.Coins {
			ps = append(ps, a)
			qs = append(qs, b)
		}
		ps = append(ps, a)
		qs = append(qs, ct.Payload)
	}
	gts := group.PairBatch(ctr, ps, qs)
	out := make([]*Ciphertext[*bn254.GT], len(cts))
	off := 0
	for i, ct := range cts {
		n := len(ct.Coins)
		out[i] = &Ciphertext[*bn254.GT]{Coins: gts[off : off+n], Payload: gts[off+n]}
		off += n + 1
	}
	return out
}

// TransportTable holds precomputed Miller-loop line tables for every
// coordinate of a fixed G2-ciphertext — the G2 side of the §5.2
// transport pairings, which depends only on the ciphertext. Building
// one costs κ+1 cold Miller loops' worth of G2 work; every subsequent
// transport of that ciphertext (arbitrary a) then skips all G2
// arithmetic and line inversions. This is exactly P1's situation: the
// encrypted shares fᵢ are fixed for a whole leakage period while each
// decryption request brings a fresh a = c.A.
type TransportTable struct {
	tabs []*bn254.PairingTable // coins tables, then the payload table
}

// PrecomputeTransport builds the transport table for ct. The κ+1
// per-coordinate tables are independent Miller-loop precomputations,
// so they fan out across cores (a sequential loop on one core).
func PrecomputeTransport(ct *Ciphertext[*bn254.G2]) *TransportTable {
	n := len(ct.Coins)
	tt := &TransportTable{tabs: make([]*bn254.PairingTable, n+1)}
	par.ForEach(n+1, func(j int) {
		if j < n {
			tt.tabs[j] = bn254.NewPairingTable(ct.Coins[j])
		} else {
			tt.tabs[n] = bn254.NewPairingTable(ct.Payload)
		}
	})
	return tt
}

// PrecomputeTransportMany builds transport tables for a whole slice of
// ciphertexts with one flattened parallel fan-out: all
// len(cts)×(κ+1) per-coordinate tables are independent Miller-loop
// precomputations, so scheduling them through a single par.ForEach
// keeps every core busy across ciphertext boundaries instead of
// paying a fork/join barrier per ciphertext (which is what a loop
// over PrecomputeTransport would do). This is the background-build
// primitive behind next-epoch prewarming: the rotation pipeline
// builds the entire next-epoch table set in one call while the
// current epoch keeps serving.
func PrecomputeTransportMany(cts []*Ciphertext[*bn254.G2]) []*TransportTable {
	tts := make([]*TransportTable, len(cts))
	// Flatten into (ciphertext, coordinate) jobs with a prefix-sum
	// offset table so job j maps back without division by a
	// per-ciphertext width (κ is uniform today, but nothing here
	// requires it).
	offs := make([]int, len(cts)+1)
	for i, ct := range cts {
		tts[i] = &TransportTable{tabs: make([]*bn254.PairingTable, len(ct.Coins)+1)}
		offs[i+1] = offs[i] + len(ct.Coins) + 1
	}
	total := offs[len(cts)]
	par.ForEach(total, func(j int) {
		// Find the ciphertext owning flat index j.
		i := sort.Search(len(cts), func(k int) bool { return offs[k+1] > j })
		ct, local := cts[i], j-offs[i]
		if local < len(ct.Coins) {
			tts[i].tabs[local] = bn254.NewPairingTable(ct.Coins[local])
		} else {
			tts[i].tabs[local] = bn254.NewPairingTable(ct.Payload)
		}
	})
	return tts
}

// TransportPre is Transport with the ciphertext's Miller-loop lines
// precomputed: every pairing is a table replay. Op counts match
// Transport (κ+1 pairings), keeping the experiment tables comparable.
// Differentially tested against Transport.
func TransportPre(ctr *opcount.Counter, a *bn254.G1, tt *TransportTable) *Ciphertext[*bn254.GT] {
	n := len(tt.tabs) - 1
	ps := make([]*bn254.G1, n+1)
	for j := range ps {
		ps[j] = a
	}
	gts := group.PairTableBatch(ctr, ps, tt.tabs)
	return &Ciphertext[*bn254.GT]{Coins: gts[:n], Payload: gts[n]}
}

// TransportManyPre is TransportMany over precomputed tables: one
// flattened PairTableBatch across all ciphertexts, every pairing a
// replay. Differentially tested against TransportMany.
func TransportManyPre(ctr *opcount.Counter, a *bn254.G1, tts []*TransportTable) []*Ciphertext[*bn254.GT] {
	var ps []*bn254.G1
	var tabs []*bn254.PairingTable
	for _, tt := range tts {
		for range tt.tabs {
			ps = append(ps, a)
		}
		tabs = append(tabs, tt.tabs...)
	}
	gts := group.PairTableBatch(ctr, ps, tabs)
	out := make([]*Ciphertext[*bn254.GT], len(tts))
	off := 0
	for i, tt := range tts {
		n := len(tt.tabs) - 1
		out[i] = &Ciphertext[*bn254.GT]{Coins: gts[off : off+n], Payload: gts[off+n]}
		off += n + 1
	}
	return out
}
