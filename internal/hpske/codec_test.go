package hpske

import (
	"bytes"
	"crypto/rand"
	"testing"

	"repro/internal/bn254"
	"repro/internal/group"
)

func codecScheme(t *testing.T) (*Scheme[*bn254.G2], Key, []*Ciphertext[*bn254.G2]) {
	t.Helper()
	s, err := New[*bn254.G2](group.G2{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	key, err := s.GenKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	cts := make([]*Ciphertext[*bn254.G2], 3)
	for i := range cts {
		m, err := s.G.Rand(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if cts[i], err = s.Encrypt(rand.Reader, key, m); err != nil {
			t.Fatal(err)
		}
	}
	return s, key, cts
}

func TestEncodeListCompressedRoundTrip(t *testing.T) {
	s, _, cts := codecScheme(t)
	enc, err := EncodeList(s, cts)
	if err != nil {
		t.Fatal(err)
	}
	wantLen := 4 + 1 + 4 + len(cts)*(s.Kappa+1)*bn254.G2BytesCompressed
	if len(enc) != wantLen {
		t.Fatalf("compressed list is %d bytes, want %d", len(enc), wantLen)
	}
	got, codec, err := DecodeListCodec(s, enc, len(cts))
	if err != nil {
		t.Fatal(err)
	}
	if codec != CodecCompressed {
		t.Fatalf("codec = %d, want %d", codec, CodecCompressed)
	}
	for i := range cts {
		if !s.G.Equal(got[i].Payload, cts[i].Payload) {
			t.Fatalf("ciphertext %d payload changed", i)
		}
		for j := range cts[i].Coins {
			if !s.G.Equal(got[i].Coins[j], cts[i].Coins[j]) {
				t.Fatalf("ciphertext %d coin %d changed", i, j)
			}
		}
	}
}

func TestDecodeListLegacyCompat(t *testing.T) {
	s, _, cts := codecScheme(t)
	legacy, err := EncodeListLegacy(s, cts)
	if err != nil {
		t.Fatal(err)
	}
	wantLen := 4 + len(cts)*(s.Kappa+1)*bn254.G2Bytes
	if len(legacy) != wantLen {
		t.Fatalf("legacy list is %d bytes, want %d", len(legacy), wantLen)
	}
	got, codec, err := DecodeListCodec(s, legacy, len(cts))
	if err != nil {
		t.Fatal(err)
	}
	if codec != CodecLegacy {
		t.Fatalf("codec = %d, want %d", codec, CodecLegacy)
	}
	for i := range cts {
		if !s.G.Equal(got[i].Payload, cts[i].Payload) {
			t.Fatalf("ciphertext %d payload changed", i)
		}
	}
	// Echoing the detected codec must reproduce the legacy bytes.
	echo, err := EncodeListCodec(s, got, codec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(echo, legacy) {
		t.Fatal("legacy echo is not byte-identical")
	}
}

func TestEncodeListGTStaysLegacy(t *testing.T) {
	s, err := New[*bn254.GT](group.GT{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	key, err := s.GenKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.G.Rand(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := s.Encrypt(rand.Reader, key, m)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := EncodeList(s, []*Ciphertext[*bn254.GT]{ct})
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := EncodeListLegacy(s, []*Ciphertext[*bn254.GT]{ct})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, legacy) {
		t.Fatal("GT list encoding is not byte-identical to the legacy format")
	}
	if _, codec, err := DecodeListCodec(s, enc, 1); err != nil || codec != CodecLegacy {
		t.Fatalf("GT decode: codec=%d err=%v", codec, err)
	}
}

func TestDecodeListRejects(t *testing.T) {
	s, _, cts := codecScheme(t)
	enc, err := EncodeList(s, cts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeList(s, enc, len(cts)+1); err == nil {
		t.Fatal("wrong count accepted")
	}
	if _, err := DecodeList(s, enc[:len(enc)-1], len(cts)); err == nil {
		t.Fatal("truncated compressed list accepted")
	}
	if _, err := DecodeList(s, append(enc, 0), len(cts)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	// Corrupt a compressed point body: the x no longer decompresses (or
	// decodes to a different valid point, which the flag byte check in
	// SetBytesCompressed still bounds); flipping the flag to an unknown
	// value must always fail.
	bad := append([]byte(nil), enc...)
	bad[9] = 0x7f // first element's flag byte (4 sentinel + 1 codec + 4 count)
	if _, err := DecodeList(s, bad, len(cts)); err == nil {
		t.Fatal("unknown point flag accepted")
	}
	// Unknown codec byte.
	bad = append([]byte(nil), enc...)
	bad[4] = 9
	if _, err := DecodeList(s, bad, len(cts)); err == nil {
		t.Fatal("unknown codec accepted")
	}
}
