package hpske

import (
	"crypto/rand"
	"math/big"
	"testing"

	"repro/internal/bn254"
	"repro/internal/scalar"
)

func randG2Ciphertext(t *testing.T, s *Scheme[*bn254.G2], key Key) *Ciphertext[*bn254.G2] {
	t.Helper()
	m, err := s.G.Rand(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := s.Encrypt(rand.Reader, key, m)
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

func ctEqual[E any](s *Scheme[E], a, b *Ciphertext[E]) bool {
	if !s.G.Equal(a.Payload, b.Payload) {
		return false
	}
	for j := range a.Coins {
		if !s.G.Equal(a.Coins[j], b.Coins[j]) {
			return false
		}
	}
	return true
}

func TestTransportMatchesReference(t *testing.T) {
	s := newG2Scheme(t)
	key, err := s.GenKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	sGT := newGTScheme(t)
	for i := 0; i < 5; i++ {
		a, _, err := bn254.RandG1(nil)
		if err != nil {
			t.Fatal(err)
		}
		ct := randG2Ciphertext(t, s, key)
		fast := Transport(nil, a, ct)
		slow := TransportReference(nil, a, ct)
		if !ctEqual(sGT, fast, slow) {
			t.Fatalf("iteration %d: Transport != TransportReference", i)
		}
	}
}

func TestTransportManyMatchesTransport(t *testing.T) {
	s := newG2Scheme(t)
	key, err := s.GenKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	sGT := newGTScheme(t)
	a, _, err := bn254.RandG1(nil)
	if err != nil {
		t.Fatal(err)
	}
	cts := make([]*Ciphertext[*bn254.G2], 4)
	for i := range cts {
		cts[i] = randG2Ciphertext(t, s, key)
	}
	got := TransportMany(nil, a, cts)
	if len(got) != len(cts) {
		t.Fatalf("TransportMany returned %d ciphertexts, want %d", len(got), len(cts))
	}
	for i := range cts {
		want := TransportReference(nil, a, cts[i])
		if !ctEqual(sGT, got[i], want) {
			t.Fatalf("ciphertext %d: TransportMany != TransportReference", i)
		}
	}
	if out := TransportMany(nil, a, nil); len(out) != 0 {
		t.Fatal("TransportMany of no ciphertexts must be empty")
	}
}

// TransportPre / TransportManyPre must agree with their cold twins for
// any G1 argument — the tables only cache the P-independent half of
// the Miller loops.
func TestTransportPreMatchesTransport(t *testing.T) {
	s := newG2Scheme(t)
	key, err := s.GenKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	sGT := newGTScheme(t)
	ct := randG2Ciphertext(t, s, key)
	tt := PrecomputeTransport(ct)
	for i := 0; i < 5; i++ {
		a, _, err := bn254.RandG1(nil)
		if err != nil {
			t.Fatal(err)
		}
		fast := TransportPre(nil, a, tt)
		slow := Transport(nil, a, ct)
		if !ctEqual(sGT, fast, slow) {
			t.Fatalf("iteration %d: TransportPre != Transport", i)
		}
	}
}

func TestTransportManyPreMatchesTransportMany(t *testing.T) {
	s := newG2Scheme(t)
	key, err := s.GenKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	sGT := newGTScheme(t)
	cts := make([]*Ciphertext[*bn254.G2], 3)
	tts := make([]*TransportTable, 3)
	for i := range cts {
		cts[i] = randG2Ciphertext(t, s, key)
		tts[i] = PrecomputeTransport(cts[i])
	}
	a, _, err := bn254.RandG1(nil)
	if err != nil {
		t.Fatal(err)
	}
	got := TransportManyPre(nil, a, tts)
	want := TransportMany(nil, a, cts)
	if len(got) != len(want) {
		t.Fatalf("TransportManyPre returned %d ciphertexts, want %d", len(got), len(want))
	}
	for i := range got {
		if !ctEqual(sGT, got[i], want[i]) {
			t.Fatalf("ciphertext %d: TransportManyPre != TransportMany", i)
		}
	}
	if out := TransportManyPre(nil, a, nil); len(out) != 0 {
		t.Fatal("TransportManyPre of no tables must be empty")
	}
}

// PrecomputeTransportMany must be an exact twin of a loop over
// PrecomputeTransport — the flattened parallel fan-out only changes
// scheduling, never the tables — proved by transporting through both
// table sets and comparing the resulting ciphertexts.
func TestPrecomputeTransportManyMatchesLoop(t *testing.T) {
	s := newG2Scheme(t)
	key, err := s.GenKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	sGT := newGTScheme(t)
	cts := make([]*Ciphertext[*bn254.G2], 4)
	loop := make([]*TransportTable, len(cts))
	for i := range cts {
		cts[i] = randG2Ciphertext(t, s, key)
		loop[i] = PrecomputeTransport(cts[i])
	}
	flat := PrecomputeTransportMany(cts)
	if len(flat) != len(loop) {
		t.Fatalf("PrecomputeTransportMany returned %d tables, want %d", len(flat), len(loop))
	}
	a, _, err := bn254.RandG1(nil)
	if err != nil {
		t.Fatal(err)
	}
	got := TransportManyPre(nil, a, flat)
	want := TransportManyPre(nil, a, loop)
	for i := range got {
		if !ctEqual(sGT, got[i], want[i]) {
			t.Fatalf("ciphertext %d: flattened tables disagree with per-ct tables", i)
		}
	}
	if out := PrecomputeTransportMany(nil); len(out) != 0 {
		t.Fatal("PrecomputeTransportMany of no ciphertexts must be empty")
	}
}

// LinComb must agree with the composition of Pow and Mul it replaces,
// and must still decrypt to Π mᵢ^kᵢ.
func TestLinCombMatchesPowMulChain(t *testing.T) {
	s := newG2Scheme(t)
	key, err := s.GenKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n <= 4; n++ {
		cts := make([]*Ciphertext[*bn254.G2], n)
		ks := make([]*big.Int, n)
		ms := make([]*bn254.G2, n)
		for i := range cts {
			m, err := s.G.Rand(rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			ms[i] = m
			ct, err := s.Encrypt(rand.Reader, key, m)
			if err != nil {
				t.Fatal(err)
			}
			cts[i] = ct
			k, err := scalar.Rand(rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			if i%3 == 1 {
				k.Neg(k)
			}
			if i%3 == 2 {
				k.SetInt64(0)
			}
			ks[i] = k
		}
		got, err := s.LinComb(cts, ks)
		if err != nil {
			t.Fatal(err)
		}
		want := s.One()
		for i := range cts {
			p, err := s.Pow(cts[i], ks[i])
			if err != nil {
				t.Fatal(err)
			}
			want, err = s.Mul(want, p)
			if err != nil {
				t.Fatal(err)
			}
		}
		if !ctEqual(s, got, want) {
			t.Fatalf("n=%d: LinComb != Π Pow/Mul chain", n)
		}
		dec, err := s.Decrypt(key, got)
		if err != nil {
			t.Fatal(err)
		}
		wantM := s.G.Identity()
		for i := range ms {
			wantM = s.G.Mul(wantM, s.G.Exp(ms[i], ks[i]))
		}
		if !s.G.Equal(dec, wantM) {
			t.Fatalf("n=%d: LinComb ciphertext decrypts wrong", n)
		}
	}
}

func TestLinCombLengthMismatch(t *testing.T) {
	s := newG2Scheme(t)
	key, err := s.GenKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ct := randG2Ciphertext(t, s, key)
	if _, err := s.LinComb([]*Ciphertext[*bn254.G2]{ct}, nil); err == nil {
		t.Fatal("accepted mismatched lengths")
	}
}
