package hpske

import (
	"crypto/rand"
	"math/big"
	"testing"

	"repro/internal/bn254"
	"repro/internal/group"
	"repro/internal/scalar"
)

const testKappa = 3

func newG2Scheme(t *testing.T) *Scheme[*bn254.G2] {
	t.Helper()
	s, err := New[*bn254.G2](group.G2{}, testKappa)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newGTScheme(t *testing.T) *Scheme[*bn254.GT] {
	t.Helper()
	s, err := New[*bn254.GT](group.GT{}, testKappa)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewRejectsBadKappa(t *testing.T) {
	if _, err := New[*bn254.G2](group.G2{}, 0); err == nil {
		t.Fatal("accepted κ = 0")
	}
}

func TestEncryptDecryptRoundTripG2(t *testing.T) {
	s := newG2Scheme(t)
	key, err := s.GenKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.G.Rand(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := s.Encrypt(rand.Reader, key, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Decrypt(key, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !s.G.Equal(got, m) {
		t.Fatal("decryption did not recover plaintext")
	}
}

func TestEncryptDecryptRoundTripGT(t *testing.T) {
	s := newGTScheme(t)
	key, err := s.GenKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.G.Rand(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := s.Encrypt(rand.Reader, key, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Decrypt(key, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !s.G.Equal(got, m) {
		t.Fatal("GT decryption did not recover plaintext")
	}
}

func TestWrongKeyFailsToDecrypt(t *testing.T) {
	s := newG2Scheme(t)
	key, _ := s.GenKey(rand.Reader)
	other, _ := s.GenKey(rand.Reader)
	m, _ := s.G.Rand(rand.Reader)
	ct, err := s.Encrypt(rand.Reader, key, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Decrypt(other, ct)
	if err != nil {
		t.Fatal(err)
	}
	if s.G.Equal(got, m) {
		t.Fatal("wrong key decrypted correctly (vanishing probability)")
	}
}

// TestProductHomomorphism checks Definition 5.1, property 1:
// Dec'(c0·c1) = m0·m1.
func TestProductHomomorphism(t *testing.T) {
	s := newG2Scheme(t)
	key, _ := s.GenKey(rand.Reader)
	m0, _ := s.G.Rand(rand.Reader)
	m1, _ := s.G.Rand(rand.Reader)
	c0, err := s.Encrypt(rand.Reader, key, m0)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := s.Encrypt(rand.Reader, key, m1)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := s.Mul(c0, c1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Decrypt(key, prod)
	if err != nil {
		t.Fatal(err)
	}
	want := s.G.Mul(m0, m1)
	if !s.G.Equal(got, want) {
		t.Fatal("product homomorphism broken")
	}
}

func TestDivAndInvHomomorphism(t *testing.T) {
	s := newG2Scheme(t)
	key, _ := s.GenKey(rand.Reader)
	m0, _ := s.G.Rand(rand.Reader)
	m1, _ := s.G.Rand(rand.Reader)
	c0, _ := s.Encrypt(rand.Reader, key, m0)
	c1, _ := s.Encrypt(rand.Reader, key, m1)
	quot, err := s.Div(c0, c1)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := s.Decrypt(key, quot)
	want := s.G.Mul(m0, s.G.Inv(m1))
	if !s.G.Equal(got, want) {
		t.Fatal("quotient homomorphism broken")
	}
}

// TestScalarPowerHomomorphism checks the homomorphism P2 relies on:
// Enc'(m)^k decrypts to m^k.
func TestScalarPowerHomomorphism(t *testing.T) {
	s := newG2Scheme(t)
	key, _ := s.GenKey(rand.Reader)
	m, _ := s.G.Rand(rand.Reader)
	ct, _ := s.Encrypt(rand.Reader, key, m)
	k, err := scalar.Rand(nil)
	if err != nil {
		t.Fatal(err)
	}
	pk, err := s.Pow(ct, k)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := s.Decrypt(key, pk)
	want := s.G.Exp(m, k)
	if !s.G.Equal(got, want) {
		t.Fatal("scalar-power homomorphism broken")
	}
}

// TestP2Expression exercises the exact algebra P2 computes in the
// refresh protocol: Π f'ᵢ^s'ᵢ / fᵢ^sᵢ · fΦ decrypts to Π a'ᵢ^s'ᵢ/aᵢ^sᵢ·Φ.
func TestP2Expression(t *testing.T) {
	s := newG2Scheme(t)
	key, _ := s.GenKey(rand.Reader)
	const ell = 4
	g := s.G
	as := make([]*bn254.G2, ell)
	aps := make([]*bn254.G2, ell)
	fs := make([]*Ciphertext[*bn254.G2], ell)
	fps := make([]*Ciphertext[*bn254.G2], ell)
	for i := 0; i < ell; i++ {
		as[i], _ = g.Rand(rand.Reader)
		aps[i], _ = g.Rand(rand.Reader)
		fs[i], _ = s.Encrypt(rand.Reader, key, as[i])
		fps[i], _ = s.Encrypt(rand.Reader, key, aps[i])
	}
	phi, _ := g.Rand(rand.Reader)
	fPhi, _ := s.Encrypt(rand.Reader, key, phi)
	ss, _ := scalar.RandVector(nil, ell)
	sps, _ := scalar.RandVector(nil, ell)

	acc := s.One()
	for i := 0; i < ell; i++ {
		up, _ := s.Pow(fps[i], sps[i])
		down, _ := s.Pow(fs[i], ss[i])
		term, _ := s.Div(up, down)
		acc, _ = s.Mul(acc, term)
	}
	acc, _ = s.Mul(acc, fPhi)

	got, _ := s.Decrypt(key, acc)
	want := g.Identity()
	for i := 0; i < ell; i++ {
		want = g.Mul(want, g.Exp(aps[i], sps[i]))
		want = g.Mul(want, g.Inv(g.Exp(as[i], ss[i])))
	}
	want = g.Mul(want, phi)
	if !g.Equal(got, want) {
		t.Fatal("P2 refresh expression does not decrypt correctly")
	}
}

func TestRerandomizePreservesPlaintext(t *testing.T) {
	s := newG2Scheme(t)
	key, _ := s.GenKey(rand.Reader)
	m, _ := s.G.Rand(rand.Reader)
	ct, _ := s.Encrypt(rand.Reader, key, m)
	rr, err := s.Rerandomize(rand.Reader, key, ct)
	if err != nil {
		t.Fatal(err)
	}
	if s.G.Equal(rr.Payload, ct.Payload) {
		t.Fatal("rerandomization left payload unchanged")
	}
	got, _ := s.Decrypt(key, rr)
	if !s.G.Equal(got, m) {
		t.Fatal("rerandomization changed plaintext")
	}
}

func TestReEncrypt(t *testing.T) {
	s := newG2Scheme(t)
	oldKey, _ := s.GenKey(rand.Reader)
	newKey, _ := s.GenKey(rand.Reader)
	m, _ := s.G.Rand(rand.Reader)
	ct, _ := s.Encrypt(rand.Reader, oldKey, m)
	ct2, err := s.ReEncrypt(rand.Reader, oldKey, newKey, ct)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := s.Decrypt(newKey, ct2)
	if !s.G.Equal(got, m) {
		t.Fatal("re-encryption lost plaintext")
	}
	// Old key must no longer decrypt.
	wrong, _ := s.Decrypt(oldKey, ct2)
	if s.G.Equal(wrong, m) {
		t.Fatal("old key still decrypts after rotation")
	}
}

// TestTransport checks the pairing-transport homomorphism: transporting
// Enc'_{G2}(m) with A yields a valid Enc'_{GT}(e(A,m)) under the same key.
func TestTransport(t *testing.T) {
	sG2 := newG2Scheme(t)
	sGT := newGTScheme(t)
	key, _ := sG2.GenKey(rand.Reader)
	m, _ := sG2.G.Rand(rand.Reader)
	ct, _ := sG2.Encrypt(rand.Reader, key, m)

	a, _, err := bn254.RandG1(nil)
	if err != nil {
		t.Fatal(err)
	}
	tct := Transport(nil, a, ct)
	got, err := sGT.Decrypt(key, tct)
	if err != nil {
		t.Fatal(err)
	}
	want := bn254.Pair(a, m)
	if !got.Equal(want) {
		t.Fatal("transported ciphertext does not decrypt to e(A, m)")
	}
}

func TestCiphertextBytesRoundTrip(t *testing.T) {
	s := newG2Scheme(t)
	key, _ := s.GenKey(rand.Reader)
	m, _ := s.G.Rand(rand.Reader)
	ct, _ := s.Encrypt(rand.Reader, key, m)
	enc, err := s.Bytes(ct)
	if err != nil {
		t.Fatal(err)
	}
	back, err := s.FromBytes(enc)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := s.Decrypt(key, back)
	if !s.G.Equal(got, m) {
		t.Fatal("bytes round trip lost plaintext")
	}
	if _, err := s.FromBytes(enc[:len(enc)-1]); err == nil {
		t.Fatal("FromBytes accepted truncated input")
	}
}

func TestLengthValidation(t *testing.T) {
	s := newG2Scheme(t)
	key, _ := s.GenKey(rand.Reader)
	short := key[:testKappa-1]
	m, _ := s.G.Rand(rand.Reader)
	if _, err := s.Encrypt(rand.Reader, short, m); err == nil {
		t.Fatal("accepted short key")
	}
	ct, _ := s.Encrypt(rand.Reader, key, m)
	bad := ct.Clone()
	bad.Coins = bad.Coins[:testKappa-1]
	if _, err := s.Decrypt(key, bad); err == nil {
		t.Fatal("accepted short ciphertext")
	}
	if _, err := s.Decrypt(key, nil); err == nil {
		t.Fatal("accepted nil ciphertext")
	}
	if _, err := s.Pow(bad, big.NewInt(2)); err == nil {
		t.Fatal("Pow accepted short ciphertext")
	}
}
