package hpske

import (
	"crypto/rand"
	"math/big"
	"runtime"
	"testing"

	"repro/internal/bn254"
	"repro/internal/scalar"
)

// Differential tests pinning LinComb's chunk-parallel fan-out to the
// retained serial twin, across sizes straddling linCombParMinExps.
// GOMAXPROCS is raised above the core count so the parallel branch
// triggers on a 1-CPU CI host.
func TestLinCombParallelMatchesSerial(t *testing.T) {
	s := newG2Scheme(t)
	key, err := s.GenKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 3, 4, 8, 16} {
		cts := make([]*Ciphertext[*bn254.G2], n)
		ks := make([]*big.Int, n)
		for i := range cts {
			m, err := s.G.Rand(rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			if cts[i], err = s.Encrypt(rand.Reader, key, m); err != nil {
				t.Fatal(err)
			}
			if ks[i], err = scalar.Rand(rand.Reader); err != nil {
				t.Fatal(err)
			}
			if i%2 == 1 {
				ks[i].Neg(ks[i])
			}
		}

		want, err := s.linCombSerial(cts, ks)
		if err != nil {
			t.Fatal(err)
		}
		old := runtime.GOMAXPROCS(4)
		got, err := s.LinComb(cts, ks)
		runtime.GOMAXPROCS(old)
		if err != nil {
			t.Fatal(err)
		}

		wb, err := s.Bytes(want)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := s.Bytes(got)
		if err != nil {
			t.Fatal(err)
		}
		if string(wb) != string(gb) {
			t.Fatalf("n=%d: parallel LinComb diverged from serial twin", n)
		}
	}
}

// Below the work threshold the dispatcher must take the serial twin
// even with workers available — the size-aware contract.
func TestLinCombSmallStaysBelowThreshold(t *testing.T) {
	// testKappa = 3 → 4 coordinates; 3 terms × 4 = 12 < 16.
	if 3*(testKappa+1) >= linCombParMinExps {
		t.Fatalf("test shape no longer below linCombParMinExps=%d", linCombParMinExps)
	}
	s := newG2Scheme(t)
	key, err := s.GenKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	cts := make([]*Ciphertext[*bn254.G2], 3)
	ks := make([]*big.Int, 3)
	for i := range cts {
		m, err := s.G.Rand(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if cts[i], err = s.Encrypt(rand.Reader, key, m); err != nil {
			t.Fatal(err)
		}
		if ks[i], err = scalar.Rand(rand.Reader); err != nil {
			t.Fatal(err)
		}
	}
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	got, err := s.LinComb(cts, ks)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.linCombSerial(cts, ks)
	if err != nil {
		t.Fatal(err)
	}
	wb, _ := s.Bytes(want)
	gb, _ := s.Bytes(got)
	if string(wb) != string(gb) {
		t.Fatal("small-shape LinComb diverged from serial twin")
	}
}
