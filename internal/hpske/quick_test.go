package hpske

import (
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/bn254"
	"repro/internal/scalar"
)

// Property-based tests over the HPSKE algebra: for random keys, coins,
// messages and scalars, the homomorphisms of Definition 5.1 (and the two
// extensions the protocols rely on) must hold identically.

// quickCfg keeps group-operation-heavy property tests affordable.
var quickCfg = &quick.Config{MaxCount: 8}

func TestQuickProductPowerComposition(t *testing.T) {
	s := newG2Scheme(t)
	key, err := s.GenKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed1, seed2 [8]byte) bool {
		m1 := bn254.HashToG2("q1", seed1[:])
		m2 := bn254.HashToG2("q2", seed2[:])
		c1, err := s.Encrypt(rand.Reader, key, m1)
		if err != nil {
			return false
		}
		c2, err := s.Encrypt(rand.Reader, key, m2)
		if err != nil {
			return false
		}
		k1 := new(big.Int).SetBytes(seed1[:])
		k2 := new(big.Int).SetBytes(seed2[:])
		// Dec((c1^k1 · c2^k2)) == m1^k1 · m2^k2.
		p1, err := s.Pow(c1, k1)
		if err != nil {
			return false
		}
		p2, err := s.Pow(c2, k2)
		if err != nil {
			return false
		}
		prod, err := s.Mul(p1, p2)
		if err != nil {
			return false
		}
		got, err := s.Decrypt(key, prod)
		if err != nil {
			return false
		}
		g := s.G
		want := g.Mul(g.Exp(m1, k1), g.Exp(m2, k2))
		return g.Equal(got, want)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTransportCommutesWithHomomorphisms(t *testing.T) {
	// Transport(A, c1·c2) == Transport(A, c1)·Transport(A, c2): the
	// pairing transport is a homomorphism of HPSKE ciphertexts.
	sG2 := newG2Scheme(t)
	sGT := newGTScheme(t)
	key, err := sG2.GenKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed1, seed2 [8]byte) bool {
		m1 := bn254.HashToG2("tq1", seed1[:])
		m2 := bn254.HashToG2("tq2", seed2[:])
		c1, err := sG2.Encrypt(rand.Reader, key, m1)
		if err != nil {
			return false
		}
		c2, err := sG2.Encrypt(rand.Reader, key, m2)
		if err != nil {
			return false
		}
		a := bn254.HashToG1("tqA", append(seed1[:], seed2[:]...))

		prodG2, err := sG2.Mul(c1, c2)
		if err != nil {
			return false
		}
		lhs := Transport(nil, a, prodG2)

		t1 := Transport(nil, a, c1)
		t2 := Transport(nil, a, c2)
		rhs, err := sGT.Mul(t1, t2)
		if err != nil {
			return false
		}
		l, err := sGT.Decrypt(key, lhs)
		if err != nil {
			return false
		}
		r, err := sGT.Decrypt(key, rhs)
		if err != nil {
			return false
		}
		return l.Equal(r)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickReEncryptChain(t *testing.T) {
	// A chain of key rotations never loses the plaintext.
	s := newG2Scheme(t)
	f := func(seed [8]byte, hops uint8) bool {
		m := bn254.HashToG2("rq", seed[:])
		key, err := s.GenKey(rand.Reader)
		if err != nil {
			return false
		}
		ct, err := s.Encrypt(rand.Reader, key, m)
		if err != nil {
			return false
		}
		n := int(hops%3) + 1
		for i := 0; i < n; i++ {
			next, err := s.GenKey(rand.Reader)
			if err != nil {
				return false
			}
			ct, err = s.ReEncrypt(rand.Reader, key, next, ct)
			if err != nil {
				return false
			}
			key = next
		}
		got, err := s.Decrypt(key, ct)
		if err != nil {
			return false
		}
		return s.G.Equal(got, m)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEncodeDecodeList(t *testing.T) {
	s := newG2Scheme(t)
	key, err := s.GenKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	f := func(n uint8) bool {
		count := int(n%4) + 1
		cts := make([]*Ciphertext[*bn254.G2], count)
		for i := range cts {
			m, err := s.G.Rand(rand.Reader)
			if err != nil {
				return false
			}
			ct, err := s.Encrypt(rand.Reader, key, m)
			if err != nil {
				return false
			}
			cts[i] = ct
		}
		raw, err := EncodeList(s, cts)
		if err != nil {
			return false
		}
		back, err := DecodeList(s, raw, count)
		if err != nil {
			return false
		}
		for i := range cts {
			a, err := s.Decrypt(key, cts[i])
			if err != nil {
				return false
			}
			b, err := s.Decrypt(key, back[i])
			if err != nil {
				return false
			}
			if !s.G.Equal(a, b) {
				return false
			}
		}
		// Wrong expected count must fail.
		if _, err := DecodeList(s, raw, count+1); err == nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickScalarVectorRoundTrip double-checks the scalar codec under
// the adversarial inputs quick generates.
func TestQuickScalarVectorRoundTrip(t *testing.T) {
	f := func(n uint8) bool {
		v, err := scalar.RandVector(rand.Reader, int(n%6)+1)
		if err != nil {
			return false
		}
		back, err := scalar.FromBytes(scalar.Bytes(v))
		if err != nil || len(back) != len(v) {
			return false
		}
		for i := range v {
			if !scalar.Equal(back[i], v[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
