//go:build !race

package hpske

import (
	"crypto/rand"
	"testing"

	"repro/internal/bn254"
	"repro/internal/group"
)

// Allocation regression test for the §5.2 transport hot path — the
// per-request work P1 does on every decryption. Measured at κ=8: 13
// allocs/op for the precomputed-table path (nine returned GTs plus the
// ciphertext envelope and slices) and 34 for the cold-Miller path. The
// budgets leave headroom for par.ForEach's scheduling-dependent
// goroutine allocations on multi-core hosts while still catching a
// return to per-pairing buffer churn (hundreds of allocs per call).
// Excluded under the race detector, which inflates allocation counts.

func TestTransportAllocBudget(t *testing.T) {
	const kappa = 8
	sch, err := New[*bn254.G2](group.G2{}, kappa)
	if err != nil {
		t.Fatal(err)
	}
	key, err := sch.GenKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := sch.G.Rand(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := sch.Encrypt(rand.Reader, key, msg)
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := bn254.RandG1(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tt := PrecomputeTransport(ct)
	if n := testing.AllocsPerRun(5, func() { TransportPre(nil, a, tt) }); n > 64 {
		t.Fatalf("TransportPre(κ=%d) allocates %v/op, budget 64", kappa, n)
	}
	if n := testing.AllocsPerRun(5, func() { Transport(nil, a, ct) }); n > 96 {
		t.Fatalf("Transport(κ=%d) allocates %v/op, budget 96", kappa, n)
	}
}
