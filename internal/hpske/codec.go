package hpske

import (
	"fmt"

	"repro/internal/group"
	"repro/internal/wire"
)

// List codecs. The legacy codec (v1) is a uint32 count followed by
// count fixed-size raw ciphertext encodings — the only format earlier
// releases emit or understand. Codec v2 compresses every group element
// (group.Compressor: x coordinate + parity flag), roughly halving the
// dominant G2 frames, and is framed as
//
//	sentinel uint32 = 0xFFFFFFFF
//	codec    uint8  = 2
//	count    uint32
//	body     count × (κ+1) × CompressedLen bytes
//
// The sentinel can never open a legacy payload (a legacy count is
// bounded by the protocol's expected list length, far below 2³²−1), so
// DecodeList distinguishes the codecs from the payload alone.
//
// Negotiation: initiators emit the newest codec the element group
// supports (EncodeList); responders decode whatever arrives
// (DecodeList) and echo the request's codec back via DecodeListCodec +
// EncodeListCodec, so a legacy peer talking to an upgraded responder
// gets legacy replies while upgraded pairs run compressed in both
// directions. Groups without a compressor (GT) stay byte-identical to
// the legacy format in every codec path.
const (
	// CodecLegacy identifies the uncompressed v1 list format.
	CodecLegacy = byte(1)
	// CodecCompressed identifies the point-compressed v2 list format.
	CodecCompressed = byte(2)

	// codecSentinel opens a v2 payload in place of a legacy count.
	codecSentinel = uint32(0xFFFFFFFF)
)

// compressor returns the group's optional compact codec, or nil.
func compressor[E any](s *Scheme[E]) group.Compressor[E] {
	if c, ok := s.G.(group.Compressor[E]); ok {
		return c
	}
	return nil
}

// EncodeList serializes a list of ciphertexts for transmission as a
// protocol frame payload, in the newest codec the scheme's group
// supports: point-compressed v2 for G1/G2, legacy raw for GT.
func EncodeList[E any](s *Scheme[E], cts []*Ciphertext[E]) ([]byte, error) {
	if compressor(s) != nil {
		return EncodeListCodec(s, cts, CodecCompressed)
	}
	return EncodeListCodec(s, cts, CodecLegacy)
}

// EncodeListLegacy serializes in the uncompressed v1 format regardless
// of group capabilities — for peers that predate the compressed codec.
func EncodeListLegacy[E any](s *Scheme[E], cts []*Ciphertext[E]) ([]byte, error) {
	return EncodeListCodec(s, cts, CodecLegacy)
}

// EncodeListCodec serializes in the requested codec. Responders use it
// to answer in the codec the request arrived in.
func EncodeListCodec[E any](s *Scheme[E], cts []*Ciphertext[E], codec byte) ([]byte, error) {
	switch codec {
	case CodecLegacy:
		var b wire.Builder
		b.AppendUint32(uint32(len(cts)))
		for i, ct := range cts {
			enc, err := s.Bytes(ct)
			if err != nil {
				return nil, fmt.Errorf("hpske: encoding ciphertext %d: %w", i, err)
			}
			b.AppendRaw(enc)
		}
		return b.Bytes(), nil
	case CodecCompressed:
		comp := compressor(s)
		if comp == nil {
			return nil, fmt.Errorf("hpske: group %s has no compressed codec", s.G.Name())
		}
		var b wire.Builder
		b.AppendUint32(codecSentinel)
		b.AppendRaw([]byte{CodecCompressed})
		b.AppendUint32(uint32(len(cts)))
		for i, ct := range cts {
			if err := s.checkCT(ct); err != nil {
				return nil, fmt.Errorf("hpske: encoding ciphertext %d: %w", i, err)
			}
			for _, c := range ct.Coins {
				b.AppendRaw(comp.BytesCompressed(c))
			}
			b.AppendRaw(comp.BytesCompressed(ct.Payload))
		}
		return b.Bytes(), nil
	default:
		return nil, fmt.Errorf("hpske: unknown list codec %d", codec)
	}
}

// DecodeList parses a list serialized by any EncodeList codec,
// enforcing an exact expected count.
func DecodeList[E any](s *Scheme[E], payload []byte, want int) ([]*Ciphertext[E], error) {
	cts, _, err := DecodeListCodec(s, payload, want)
	return cts, err
}

// DecodeListCodec parses a list and additionally reports which codec it
// arrived in, so a responder can answer in kind.
func DecodeListCodec[E any](s *Scheme[E], payload []byte, want int) ([]*Ciphertext[E], byte, error) {
	p := wire.NewParser(payload)
	n, err := p.Uint32()
	if err != nil {
		return nil, 0, err
	}
	if n != codecSentinel {
		cts, err := decodeListLegacy(s, p, n, want)
		return cts, CodecLegacy, err
	}
	codecRaw, err := p.Raw(1)
	if err != nil {
		return nil, 0, err
	}
	if codecRaw[0] != CodecCompressed {
		return nil, 0, fmt.Errorf("hpske: unsupported list codec %d", codecRaw[0])
	}
	comp := compressor(s)
	if comp == nil {
		return nil, 0, fmt.Errorf("hpske: compressed list for group %s, which has no compressed codec", s.G.Name())
	}
	if n, err = p.Uint32(); err != nil {
		return nil, 0, err
	}
	if int(n) != want {
		return nil, 0, fmt.Errorf("hpske: got %d ciphertexts, want %d", n, want)
	}
	el := comp.CompressedLen()
	out := make([]*Ciphertext[E], n)
	for i := range out {
		ct := &Ciphertext[E]{Coins: make([]E, s.Kappa)}
		for j := 0; j < s.Kappa; j++ {
			raw, err := p.Raw(el)
			if err != nil {
				return nil, 0, err
			}
			e, err := comp.FromBytesCompressed(raw)
			if err != nil {
				return nil, 0, fmt.Errorf("hpske: decoding ciphertext %d coin %d: %w", i, j, err)
			}
			ct.Coins[j] = e
		}
		raw, err := p.Raw(el)
		if err != nil {
			return nil, 0, err
		}
		e, err := comp.FromBytesCompressed(raw)
		if err != nil {
			return nil, 0, fmt.Errorf("hpske: decoding ciphertext %d payload: %w", i, err)
		}
		ct.Payload = e
		out[i] = ct
	}
	if !p.Done() {
		return nil, 0, fmt.Errorf("hpske: %d trailing bytes in ciphertext list", p.Remaining())
	}
	return out, CodecCompressed, nil
}

// decodeListLegacy parses the body of an uncompressed v1 list whose
// count n has already been read.
func decodeListLegacy[E any](s *Scheme[E], p *wire.Parser, n uint32, want int) ([]*Ciphertext[E], error) {
	if int(n) != want {
		return nil, fmt.Errorf("hpske: got %d ciphertexts, want %d", n, want)
	}
	size := (s.Kappa + 1) * s.G.ElementLen()
	out := make([]*Ciphertext[E], n)
	for i := range out {
		raw, err := p.Raw(size)
		if err != nil {
			return nil, err
		}
		ct, err := s.FromBytes(raw)
		if err != nil {
			return nil, fmt.Errorf("hpske: decoding ciphertext %d: %w", i, err)
		}
		out[i] = ct
	}
	if !p.Done() {
		return nil, fmt.Errorf("hpske: %d trailing bytes in ciphertext list", p.Remaining())
	}
	return out, nil
}
