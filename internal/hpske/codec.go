package hpske

import (
	"fmt"

	"repro/internal/wire"
)

// EncodeList serializes a list of ciphertexts with a count prefix, for
// transmission as a protocol frame payload.
func EncodeList[E any](s *Scheme[E], cts []*Ciphertext[E]) ([]byte, error) {
	var b wire.Builder
	b.AppendUint32(uint32(len(cts)))
	for i, ct := range cts {
		enc, err := s.Bytes(ct)
		if err != nil {
			return nil, fmt.Errorf("hpske: encoding ciphertext %d: %w", i, err)
		}
		b.AppendRaw(enc)
	}
	return b.Bytes(), nil
}

// DecodeList parses a list serialized by EncodeList, enforcing an exact
// expected count.
func DecodeList[E any](s *Scheme[E], payload []byte, want int) ([]*Ciphertext[E], error) {
	p := wire.NewParser(payload)
	n, err := p.Uint32()
	if err != nil {
		return nil, err
	}
	if int(n) != want {
		return nil, fmt.Errorf("hpske: got %d ciphertexts, want %d", n, want)
	}
	size := (s.Kappa + 1) * s.G.ElementLen()
	out := make([]*Ciphertext[E], n)
	for i := range out {
		raw, err := p.Raw(size)
		if err != nil {
			return nil, err
		}
		ct, err := s.FromBytes(raw)
		if err != nil {
			return nil, fmt.Errorf("hpske: decoding ciphertext %d: %w", i, err)
		}
		out[i] = ct
	}
	if !p.Done() {
		return nil, fmt.Errorf("hpske: %d trailing bytes in ciphertext list", p.Remaining())
	}
	return out, nil
}
