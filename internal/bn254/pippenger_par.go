package bn254

import (
	"repro/internal/par"
)

// Window-parallel Pippenger. The bucket method's expensive phase —
// throwing every (point, digit) pair into its bucket and folding the
// buckets into window sums — decomposes cleanly along windows: window
// w only ever touches buckets [w·nb, (w+1)·nb), so a contiguous group
// of windows can be accumulated and folded by its own worker with its
// own scratch arena, no locks and no shared mutable state (the
// sign-folded point array and the digit matrix are read-only). Only
// the final combine — c doublings between consecutive window sums —
// is inherently sequential, and it is ~windows·c doublings total,
// negligible against the bucket work at parallel sizes.
//
// The trade-off against the serial path is the loss of *global*
// scheduling: each worker batch-inverts only its own windows' pending
// additions per round, so the per-round inversion amortizes over
// fewer additions (the reason the serial path schedules all windows
// together — see pippenger.go). That overhead shrinks as n grows
// (rounds get denser), which is why the parallel branch gates on a
// base count, not on GOMAXPROCS alone: below pippengerParMinBases the
// serial globally scheduled path wins even with idle cores, and the
// zero-allocation arena discipline of the serial path is preserved
// exactly (the parallel branch is allowed to allocate its per-call
// window-sum slice — at these sizes the bucket work dwarfs it).
//
// TestPippengerParallelMatchesSerial pins both branches to identical
// outputs; `make race` runs the suite under the race detector.

// pippengerParMinBases is the post-GLV/GLS-split base count below
// which multi-exponentiations stay on the serial globally scheduled
// path. At the E13 reference size (64 terms → ≤128 G1 / ≤256 G2
// sub-scalars) the serial path and its alloc gates are untouched;
// from ~256 input terms up, window groups fan out.
const pippengerParMinBases = 512

// pippengerParMinWindowChunk is the smallest window group worth a
// worker: fewer than 2 windows per worker leaves too few pending
// additions per scheduling round to amortize the batch inversions.
const pippengerParMinWindowChunk = 2

// g1PippengerWindowsPar accumulates and folds the windows in
// parallel chunks, then combines the window sums serially (c
// doublings between windows). points holds the sign-folded bases
// (originals below n, negations above), digits the flattened
// digits[i*windows+w] matrix; both are read-only here.
func g1PippengerWindowsPar(acc *g1Jac, points []G1, digits []int32, n, c, windows, nb int) {
	sums := make([]g1Jac, windows)
	cs := par.Chunks(windows, pippengerParMinWindowChunk)
	par.ForEach(len(cs), func(ci int) {
		wlo, whi := cs[ci][0], cs[ci][1]
		car := pippengerPool.Get().(*pippengerArena)
		nbuck := (whi - wlo) * nb
		buckets := g1Slice(&car.g1Buckets, nbuck)
		for i := range buckets {
			buckets[i].SetInfinity()
		}
		car.scratch.stamp = int32Slice(&car.scratch.stamp, nbuck)
		ops := car.ops[:0]
		for i := 0; i < n; i++ {
			row := i * windows
			for w := wlo; w < whi; w++ {
				d := digits[row+w]
				switch {
				case d > 0:
					ops = append(ops, bucketOp{bucket: int32((w-wlo)*nb) + d - 1, pt: int32(i)})
				case d < 0:
					ops = append(ops, bucketOp{bucket: int32((w-wlo)*nb) - d - 1, pt: int32(n + i)})
				}
			}
		}
		car.ops = ops
		g1BucketAccumulate(buckets, points, ops, &car.scratch)
		for w := wlo; w < whi; w++ {
			var running, sum g1Jac
			running.setInfinity()
			sum.setInfinity()
			win := buckets[(w-wlo)*nb : (w-wlo+1)*nb]
			for b := nb - 1; b >= 0; b-- {
				running.addAffine(&win[b])
				sum.add(&running)
			}
			sums[w] = sum
		}
		pippengerPool.Put(car)
	})

	acc.setInfinity()
	for w := windows - 1; w >= 0; w-- {
		for i := 0; i < c; i++ {
			acc.double()
		}
		acc.add(&sums[w])
	}
}

// g2PippengerWindowsPar is g1PippengerWindowsPar on the twist.
func g2PippengerWindowsPar(acc *g2Jac, points []G2, digits []int32, n, c, windows, nb int) {
	sums := make([]g2Jac, windows)
	cs := par.Chunks(windows, pippengerParMinWindowChunk)
	par.ForEach(len(cs), func(ci int) {
		wlo, whi := cs[ci][0], cs[ci][1]
		car := pippengerPool.Get().(*pippengerArena)
		nbuck := (whi - wlo) * nb
		buckets := g2Slice(&car.g2Buckets, nbuck)
		for i := range buckets {
			buckets[i].SetInfinity()
		}
		car.scratch.stamp = int32Slice(&car.scratch.stamp, nbuck)
		ops := car.ops[:0]
		for i := 0; i < n; i++ {
			row := i * windows
			for w := wlo; w < whi; w++ {
				d := digits[row+w]
				switch {
				case d > 0:
					ops = append(ops, bucketOp{bucket: int32((w-wlo)*nb) + d - 1, pt: int32(i)})
				case d < 0:
					ops = append(ops, bucketOp{bucket: int32((w-wlo)*nb) - d - 1, pt: int32(n + i)})
				}
			}
		}
		car.ops = ops
		g2BucketAccumulate(buckets, points, ops, &car.scratch)
		for w := wlo; w < whi; w++ {
			var running, sum g2Jac
			running.setInfinity()
			sum.setInfinity()
			win := buckets[(w-wlo)*nb : (w-wlo+1)*nb]
			for b := nb - 1; b >= 0; b-- {
				running.addAffine(&win[b])
				sum.add(&running)
			}
			sums[w] = sum
		}
		pippengerPool.Put(car)
	})

	acc.setInfinity()
	for w := windows - 1; w >= 0; w-- {
		for i := 0; i < c; i++ {
			acc.double()
		}
		acc.add(&sums[w])
	}
}
