package bn254

import (
	"repro/internal/ff"
	"repro/internal/par"
)

// Precomputed-line pairings. The G2 side of the ate Miller loop — the
// twist-point doubling chain, its tangent/chord slopes and the field
// inversions they need — depends only on Q, not on the G1 argument. A
// PairingTable runs that chain once for a fixed Q and stores the
// per-step line coefficients (a, b); replaying the loop against any P
// then costs one Fp12 squaring plus one monic sparse line
// multiplication per step, with ZERO G2 arithmetic and a single Fp
// inversion for the entire replay (the 1/P.y line normalization).
//
// This is the right tool wherever the protocol pairs many fresh G1
// values against the same G2 value: the §5.2 ciphertext-reuse transport
// (fixed encrypted shares, per-request c.A), BB-IBE decryption (fixed
// identity-key component) and the GT-ElGamal baseline (fixed secret
// key). Building a table costs about one cold Miller loop's G2 work, so
// it amortizes after the second pairing.
//
// Tables hold only public curve data derived from Q; replay timing is
// independent of which table entry is read (the access pattern is fixed
// by the ate loop), but none of the surrounding arithmetic is
// constant-time — consistent with the rest of the package.

// tableLine is one stored Miller-loop line: l(P) = P.y + a·P.x·w + b·w³.
type tableLine struct {
	a, b ff.Fp2
}

// PairingTable holds the P-independent Miller-loop line coefficients
// for a fixed G2 point, in emission order (one doubling line per ate
// bit, plus one addition line after each set bit). The zero value / a
// table built from the identity acts as pairing-with-identity: Pair
// returns 1.
type PairingTable struct {
	lines []tableLine
}

// millerLineCount returns the number of lines an ate Miller loop emits:
// one doubling step per iteration plus an addition step per set bit.
func millerLineCount() int {
	s := ateLoop
	n := 0
	for i := s.BitLen() - 2; i >= 0; i-- {
		n++
		if s.Bit(i) == 1 {
			n++
		}
	}
	return n
}

// NewPairingTable runs the G2 side of the ate Miller loop for q and
// stores the line coefficients. The per-step inversions are inherently
// sequential (each slope feeds the next point update), so the build
// costs about one cold pairing's worth of G2 arithmetic — amortized
// away after two replays. Differentially tested against Pair.
func NewPairingTable(q *G2) *PairingTable {
	tb := &PairingTable{}
	if q.IsInfinity() {
		return tb
	}
	tb.lines = make([]tableLine, 0, millerLineCount())
	var t G2
	t.Set(q)
	s := ateLoop
	for i := s.BitLen() - 2; i >= 0; i-- {
		var den ff.Fp2
		den.Double(&t.y)
		den.InverseVartime(&den) // q is public; see doubleStep
		var ln tableLine
		ln.a, ln.b = doubleStepCoeffs(&t, &den)
		tb.lines = append(tb.lines, ln)
		if s.Bit(i) == 1 {
			den.Sub(&q.x, &t.x)
			den.InverseVartime(&den)
			ln.a, ln.b = addStepCoeffs(&t, q, &den)
			tb.lines = append(tb.lines, ln)
		}
	}
	return tb
}

// IsIdentity reports whether the table was built from the G2 identity
// (every replay returns 1).
func (tb *PairingTable) IsIdentity() bool { return len(tb.lines) == 0 }

// millerReplay replays the stored Miller loop against p: per step one
// Fp12 squaring, two Fp2-by-Fp scalings and one monic sparse line
// multiplication. No G2 arithmetic, and a single Fp inversion for the
// whole replay.
//
// Each line l(P) = P.y + a·P.x·w + b·w³ is normalized to the monic
// shape 1 + a·(P.x/P.y)·w + (b/P.y)·w³: the dropped P.y factor lives in
// the proper subfield Fp, so the final exponentiation's easy part
// (p⁶−1 is a multiple of p−1) erases it, and the cheaper MulLine01
// replaces MulLine at every step. P.y ≠ 0 for every affine G1 point:
// the curve has prime (odd) order, so it carries no 2-torsion.
func (tb *PairingTable) millerReplayInto(f *ff.Fp12, p *G1) {
	var yInv, xOverY ff.Fp
	yInv.InverseVartime(&p.y) // p is a public pairing input
	xOverY.Mul(&p.x, &yInv)
	f.SetOne()
	var e1, e3 ff.Fp2
	idx := 0
	s := ateLoop
	for i := s.BitLen() - 2; i >= 0; i-- {
		f.Square(f)
		ln := &tb.lines[idx]
		idx++
		e1.MulFp(&ln.a, &xOverY)
		e3.MulFp(&ln.b, &yInv)
		f.MulLine01(f, &e1, &e3)
		if s.Bit(i) == 1 {
			ln := &tb.lines[idx]
			idx++
			e1.MulFp(&ln.a, &xOverY)
			e3.MulFp(&ln.b, &yInv)
			f.MulLine01(f, &e1, &e3)
		}
	}
}

// Pair computes e(p, Q) for the table's fixed Q by replaying the stored
// lines, then applying the fast final exponentiation. Agrees with
// Pair(p, Q) on all inputs (differentially tested). Steady-state cost
// is one heap allocation — the returned GT.
func (tb *PairingTable) Pair(p *G1) *GT {
	out := new(GT)
	if p.IsInfinity() || len(tb.lines) == 0 {
		return out.SetOne()
	}
	var f ff.Fp12
	tb.millerReplayInto(&f, p)
	finalExpFastInto(&out.v, &f)
	return out
}

// PairTableBatch computes the n pairings e(ps[i], Qᵢ) for tables built
// from fixed Qᵢ. Replay loops have no inversions to batch, so the
// pairs are simply fanned out across CPUs (replay + final
// exponentiation per pair). Identity inputs yield 1 at their position.
// Panics if the slice lengths differ.
func PairTableBatch(ps []*G1, tabs []*PairingTable) []*GT {
	if len(ps) != len(tabs) {
		panic("bn254: PairTableBatch: mismatched lengths")
	}
	out := make([]*GT, len(ps))
	par.ForEach(len(ps), func(i int) {
		out[i] = tabs[i].Pair(ps[i])
	})
	return out
}

// MultiPairMixed computes Π e(ps[i], qs[i]) · Π e(tps[j], Tⱼ) where the
// first product runs cold Miller loops (lockstep, batch-inverted
// denominators, as in MultiPair) and the second replays precomputed
// tables — all into ONE shared Fp12 accumulator with a single final
// exponentiation. Use it when a product of pairings mixes fixed and
// fresh G2 arguments, e.g. BB-IBE decryption. Identity pairs on either
// list contribute 1 and are skipped. Panics on mismatched lengths.
func MultiPairMixed(ps []*G1, qs []*G2, tps []*G1, tabs []*PairingTable) *GT {
	if len(ps) != len(qs) {
		panic("bn254: MultiPairMixed: mismatched cold lengths")
	}
	if len(tps) != len(tabs) {
		panic("bn254: MultiPairMixed: mismatched table lengths")
	}
	var actP []*G1
	var actQ []*G2
	for i := range ps {
		if ps[i].IsInfinity() || qs[i].IsInfinity() {
			continue
		}
		actP = append(actP, ps[i])
		actQ = append(actQ, qs[i])
	}
	var actTP []*G1
	var actT []*PairingTable
	for i := range tps {
		if tps[i].IsInfinity() || len(tabs[i].lines) == 0 {
			continue
		}
		actTP = append(actTP, tps[i])
		actT = append(actT, tabs[i])
	}
	if len(actP) == 0 && len(actTP) == 0 {
		return GTOne()
	}

	ts := make([]G2, len(actQ))
	for i := range actQ {
		ts[i].Set(actQ[i])
	}
	dens := make([]ff.Fp2, len(actQ))
	invs := make([]ff.Fp2, len(actQ))
	prefix := make([]ff.Fp2, len(actQ))
	// Per-replay constants for monic line normalization (see
	// millerReplay): xOverY = P.x/P.y and yInv = 1/P.y.
	yInvs := make([]ff.Fp, len(actTP))
	xOverYs := make([]ff.Fp, len(actTP))
	for j := range actTP {
		yInvs[j].InverseVartime(&actTP[j].y)
		xOverYs[j].Mul(&actTP[j].x, &yInvs[j])
	}

	var f ff.Fp12
	var e1, e3 ff.Fp2
	f.SetOne()
	cur := 0 // shared cursor: every table has identical emission order
	s := ateLoop
	for i := s.BitLen() - 2; i >= 0; i-- {
		f.Square(&f)
		if len(ts) > 0 {
			for k := range ts {
				dens[k] = doubleStepDen(&ts[k])
			}
			ff.BatchInverseFp2Into(invs, dens, prefix)
			for k := range ts {
				l := doubleStepPre(&ts[k], actP[k], &invs[k])
				f.MulLine(&f, &l.e0, &l.e1, &l.e3)
			}
		}
		for j := range actT {
			ln := &actT[j].lines[cur]
			e1.MulFp(&ln.a, &xOverYs[j])
			e3.MulFp(&ln.b, &yInvs[j])
			f.MulLine01(&f, &e1, &e3)
		}
		cur++
		if s.Bit(i) == 1 {
			if len(ts) > 0 {
				for k := range ts {
					dens[k] = addStepDen(&ts[k], actQ[k])
				}
				ff.BatchInverseFp2Into(invs, dens, prefix)
				for k := range ts {
					l := addStepPre(&ts[k], actQ[k], actP[k], &invs[k])
					f.MulLine(&f, &l.e0, &l.e1, &l.e3)
				}
			}
			for j := range actT {
				ln := &actT[j].lines[cur]
				e1.MulFp(&ln.a, &xOverYs[j])
				e3.MulFp(&ln.b, &yInvs[j])
				f.MulLine01(&f, &e1, &e3)
			}
			cur++
		}
	}

	out := new(GT)
	finalExpFastInto(&out.v, &f)
	return out
}
