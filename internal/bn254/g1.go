package bn254

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math/big"

	"repro/internal/ff"
)

// G1 is a point on E(Fp): y² = x³ + 3, stored in affine coordinates. The
// zero value is the point at infinity (the group identity).
type G1 struct {
	x, y ff.Fp
	inf  bool
}

// G1Bytes is the size of the canonical G1 encoding.
const G1Bytes = 2 * ff.FpBytes

// g1Gen is the standard generator (1, 2).
var g1Gen = &G1{x: *ff.FpFromInt64(1), y: *ff.FpFromInt64(2)}

// G1Generator returns a copy of the standard generator (1, 2).
func G1Generator() *G1 { return new(G1).Set(g1Gen) }

// NewG1 returns the point at infinity.
func NewG1() *G1 { return &G1{inf: true} }

// Set sets z = a and returns z.
func (z *G1) Set(a *G1) *G1 {
	z.x.Set(&a.x)
	z.y.Set(&a.y)
	z.inf = a.inf
	return z
}

// SetInfinity sets z to the group identity and returns z.
func (z *G1) SetInfinity() *G1 {
	z.x.SetZero()
	z.y.SetZero()
	z.inf = true
	return z
}

// IsInfinity reports whether z is the group identity.
func (z *G1) IsInfinity() bool { return z.inf }

// Equal reports whether z and a are the same point.
func (z *G1) Equal(a *G1) bool {
	if z.inf || a.inf {
		return z.inf == a.inf
	}
	return z.x.Equal(&a.x) && z.y.Equal(&a.y)
}

// IsOnCurve reports whether z satisfies the curve equation (the identity
// is considered on-curve).
func (z *G1) IsOnCurve() bool {
	if z.inf {
		return true
	}
	var lhs, rhs ff.Fp
	lhs.Square(&z.y)
	rhs.Square(&z.x)
	rhs.Mul(&rhs, &z.x)
	rhs.Add(&rhs, curveB)
	return lhs.Equal(&rhs)
}

// Neg sets z = −a and returns z.
func (z *G1) Neg(a *G1) *G1 {
	z.x.Set(&a.x)
	z.y.Neg(&a.y)
	z.inf = a.inf
	return z
}

// Add sets z = a + b and returns z (affine chord-and-tangent).
func (z *G1) Add(a, b *G1) *G1 {
	if a.inf {
		return z.Set(b)
	}
	if b.inf {
		return z.Set(a)
	}
	var lambda ff.Fp
	if a.x.Equal(&b.x) {
		var negY ff.Fp
		negY.Neg(&b.y)
		if a.y.Equal(&negY) {
			return z.SetInfinity()
		}
		// Doubling: λ = 3x²/2y.
		var num, den ff.Fp
		num.Square(&a.x)
		num.MulInt64(&num, 3)
		den.Double(&a.y)
		den.Inverse(&den)
		lambda.Mul(&num, &den)
	} else {
		// λ = (y2 − y1)/(x2 − x1).
		var num, den ff.Fp
		num.Sub(&b.y, &a.y)
		den.Sub(&b.x, &a.x)
		den.Inverse(&den)
		lambda.Mul(&num, &den)
	}
	var x3, y3 ff.Fp
	x3.Square(&lambda)
	x3.Sub(&x3, &a.x)
	x3.Sub(&x3, &b.x)
	y3.Sub(&a.x, &x3)
	y3.Mul(&y3, &lambda)
	y3.Sub(&y3, &a.y)
	z.x.Set(&x3)
	z.y.Set(&y3)
	z.inf = false
	return z
}

// Double sets z = 2a and returns z.
func (z *G1) Double(a *G1) *G1 { return z.Add(a, a) }

// g1Jac is a Jacobian-coordinate point used internally by ScalarMult.
type g1Jac struct {
	x, y, zz ff.Fp // (X, Y, Z); affine = (X/Z², Y/Z³); Z = 0 means infinity
}

func (j *g1Jac) setAffine(a *G1) {
	if a.inf {
		j.x.SetOne()
		j.y.SetOne()
		j.zz.SetZero()
		return
	}
	j.x.Set(&a.x)
	j.y.Set(&a.y)
	j.zz.SetOne()
}

func (j *g1Jac) toAffine(out *G1) {
	if j.zz.IsZero() {
		out.SetInfinity()
		return
	}
	var zinv, zinv2, zinv3 ff.Fp
	zinv.Inverse(&j.zz)
	zinv2.Square(&zinv)
	zinv3.Mul(&zinv2, &zinv)
	out.x.Mul(&j.x, &zinv2)
	out.y.Mul(&j.y, &zinv3)
	out.inf = false
}

// double sets j = 2j (dbl-2009-l, a = 0).
func (j *g1Jac) double() {
	if j.zz.IsZero() {
		return
	}
	var a, b, c, d, e, f ff.Fp
	a.Square(&j.x)
	b.Square(&j.y)
	c.Square(&b)
	d.Add(&j.x, &b)
	d.Square(&d)
	d.Sub(&d, &a)
	d.Sub(&d, &c)
	d.Double(&d)
	e.MulInt64(&a, 3)
	f.Square(&e)

	var x3, y3, z3 ff.Fp
	x3.Double(&d)
	x3.Sub(&f, &x3)
	y3.Sub(&d, &x3)
	y3.Mul(&y3, &e)
	var c8 ff.Fp
	c8.MulInt64(&c, 8)
	y3.Sub(&y3, &c8)
	z3.Mul(&j.y, &j.zz)
	z3.Double(&z3)

	j.x.Set(&x3)
	j.y.Set(&y3)
	j.zz.Set(&z3)
}

// addAffine sets j = j + a for an affine point a (madd-2007-bl).
func (j *g1Jac) addAffine(a *G1) {
	if a.inf {
		return
	}
	if j.zz.IsZero() {
		j.setAffine(a)
		return
	}
	var z1z1, u2, s2 ff.Fp
	z1z1.Square(&j.zz)
	u2.Mul(&a.x, &z1z1)
	s2.Mul(&a.y, &j.zz)
	s2.Mul(&s2, &z1z1)

	if u2.Equal(&j.x) {
		if s2.Equal(&j.y) {
			j.double()
			return
		}
		// j + (−j) = O.
		j.x.SetOne()
		j.y.SetOne()
		j.zz.SetZero()
		return
	}

	var h, hh, i, jj, rr, v ff.Fp
	h.Sub(&u2, &j.x)
	hh.Square(&h)
	i.MulInt64(&hh, 4)
	jj.Mul(&h, &i)
	rr.Sub(&s2, &j.y)
	rr.Double(&rr)
	v.Mul(&j.x, &i)

	var x3, y3, z3, t ff.Fp
	x3.Square(&rr)
	x3.Sub(&x3, &jj)
	t.Double(&v)
	x3.Sub(&x3, &t)
	y3.Sub(&v, &x3)
	y3.Mul(&y3, &rr)
	t.Mul(&j.y, &jj)
	t.Double(&t)
	y3.Sub(&y3, &t)
	z3.Add(&j.zz, &h)
	z3.Square(&z3)
	z3.Sub(&z3, &z1z1)
	z3.Sub(&z3, &hh)

	j.x.Set(&x3)
	j.y.Set(&y3)
	j.zz.Set(&z3)
}

// ScalarMult sets z = [k]a and returns z. k is reduced mod r (always
// valid on G1, whose full group order is r). The fast path is the GLV
// endomorphism method: k is split as k ≡ k₀ + k₁·λ (mod r) with
// |kᵢ| ≈ √r and [k]a = [k₀]a + [k₁]φ(a) is evaluated by one
// interleaved wNAF ladder over a half-length doubling chain (see
// endo.go). ScalarMultWNAF retains the plain single-ladder tier and
// ScalarMultReference the naive loop, both for differential testing.
// Not constant-time: the decomposition and digit patterns of k leak
// through timing.
//
//dlr:noalloc
func (z *G1) ScalarMult(a *G1, k *big.Int) *G1 {
	e := ff.ReduceScalar(k)
	if e == [4]uint64{} || a.inf {
		return z.SetInfinity()
	}
	var acc g1Jac
	if !g1GLVMultLimbs(&acc, a, &e) {
		// Limb-unready lattice (never the production one): big.Int tier.
		//dlrlint:ignore hot-path-alloc cold fallback for limb-unready lattices, never taken in production
		g1GLVMult(&acc, a, new(big.Int).Mod(k, ff.Order()))
	}
	acc.toAffine(z)
	return z
}

// ScalarMultWNAF is the plain width-4 wNAF ladder without the GLV
// split — the previous fast path, retained as the middle tier for
// differential tests and the E12 endomorphism ablation. Semantics
// match ScalarMult: k is reduced mod r.
func (z *G1) ScalarMultWNAF(a *G1, k *big.Int) *G1 {
	e := ff.ReduceScalar(k)
	if e == [4]uint64{} || a.inf {
		return z.SetInfinity()
	}
	var acc g1Jac
	g1WNAFMultLimbs(&acc, a, &e)
	acc.toAffine(z)
	return z
}

// ScalarMultReference is the naive double-and-add scalar
// multiplication the fast ScalarMult is differentially tested against.
// Semantics are identical: k is reduced mod r.
func (z *G1) ScalarMultReference(a *G1, k *big.Int) *G1 {
	e := new(big.Int).Mod(k, ff.Order())
	if e.Sign() == 0 || a.inf {
		return z.SetInfinity()
	}
	var acc g1Jac
	acc.setInfinity()
	base := new(G1).Set(a)
	for i := e.BitLen() - 1; i >= 0; i-- {
		acc.double()
		if e.Bit(i) == 1 {
			acc.addAffine(base)
		}
	}
	acc.toAffine(z)
	return z
}

// ScalarBaseMult sets z = [k]·G for the standard generator and returns
// z. It reads a lazily-built table of 64×15 precomputed affine
// multiples of G (radix-16 windows), so the whole multiplication is at
// most 64 mixed additions with no doublings — several times faster
// than the generic path. k is reduced mod r.
//
//dlr:noalloc
func (z *G1) ScalarBaseMult(k *big.Int) *G1 {
	e := ff.ReduceScalar(k)
	if e == [4]uint64{} {
		return z.SetInfinity()
	}
	tbl := g1FixedBaseTable()
	var acc g1Jac
	acc.setInfinity()
	for w := 0; w < fbWindows; w++ {
		if d := fbDigitLimbs(&e, w); d != 0 {
			acc.addAffine(&tbl[w][d-1])
		}
	}
	acc.toAffine(z)
	return z
}

// ScalarBaseMultReference delegates to the generic reference path —
// the pre-optimization behaviour, kept for differential tests and
// benchmarks.
func (z *G1) ScalarBaseMultReference(k *big.Int) *G1 {
	return z.ScalarMultReference(g1Gen, k)
}

// RandG1 returns [k]·G for uniformly random k, together with k. The
// caller learns the discrete log; use HashToG1 when the log must remain
// unknown.
func RandG1(rng io.Reader) (*G1, *big.Int, error) {
	if rng == nil {
		rng = rand.Reader
	}
	k, err := rand.Int(rng, ff.Order())
	if err != nil {
		return nil, nil, fmt.Errorf("bn254: sampling scalar: %w", err)
	}
	return new(G1).ScalarBaseMult(k), k, nil
}

// HashToG1 hashes (tag, msg) onto the curve by try-and-increment. Since
// G1 has prime order and cofactor 1, the result is a uniform-ish group
// element whose discrete logarithm nobody knows — the oblivious sampling
// the paper's §5.2 requires.
func HashToG1(tag string, msg []byte) *G1 {
	for ctr := uint32(0); ; ctr++ {
		h := sha256.New()
		h.Write([]byte(tag))
		var ctrBuf [4]byte
		binary.BigEndian.PutUint32(ctrBuf[:], ctr)
		h.Write(ctrBuf[:])
		h.Write(msg)
		digest := h.Sum(nil)
		// Second block widens to 254+ bits.
		h2 := sha256.Sum256(append(digest, 0x01))
		wide := new(big.Int).SetBytes(append(digest, h2[:]...))
		x := ff.NewFp(wide)

		var rhs ff.Fp
		rhs.Square(x)
		rhs.Mul(&rhs, x)
		rhs.Add(&rhs, curveB)
		var y ff.Fp
		if _, ok := y.Sqrt(&rhs); !ok {
			continue
		}
		// Pick the lexicographically smaller root deterministically.
		var negY ff.Fp
		negY.Neg(&y)
		if negY.Big().Cmp(y.Big()) < 0 {
			y.Set(&negY)
		}
		return &G1{x: *x, y: y}
	}
}

// Bytes returns the canonical encoding: x ‖ y, with the all-zero string
// reserved for the identity (valid since (0,0) is not on the curve).
func (z *G1) Bytes() []byte {
	out := make([]byte, 0, G1Bytes)
	if z.inf {
		return make([]byte, G1Bytes)
	}
	out = append(out, z.x.Bytes()...)
	out = append(out, z.y.Bytes()...)
	return out
}

// SetBytes decodes the canonical encoding, rejecting off-curve points.
func (z *G1) SetBytes(b []byte) (*G1, error) {
	if len(b) != G1Bytes {
		return nil, fmt.Errorf("bn254: G1 encoding must be %d bytes, got %d", G1Bytes, len(b))
	}
	allZero := true
	for _, c := range b {
		if c != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		return z.SetInfinity(), nil
	}
	var x, y ff.Fp
	if _, err := x.SetBytes(b[:ff.FpBytes]); err != nil {
		return nil, err
	}
	if _, err := y.SetBytes(b[ff.FpBytes:]); err != nil {
		return nil, err
	}
	cand := G1{x: x, y: y}
	if !cand.IsOnCurve() {
		return nil, fmt.Errorf("bn254: G1 point not on curve")
	}
	return z.Set(&cand), nil
}

// String implements fmt.Stringer.
func (z *G1) String() string {
	if z.inf {
		return "G1(∞)"
	}
	return fmt.Sprintf("G1(%s, %s)", z.x.String(), z.y.String())
}
