package bn254

import (
	"crypto/rand"
	"math/big"
	"testing"

	"repro/internal/ff"
)

func randScalar(t *testing.T) *big.Int {
	t.Helper()
	k, err := rand.Int(rand.Reader, Order())
	if err != nil {
		t.Fatalf("rand scalar: %v", err)
	}
	return k
}

func TestG1GeneratorProperties(t *testing.T) {
	g := G1Generator()
	if !g.IsOnCurve() {
		t.Fatal("generator not on curve")
	}
	var o G1
	o.ScalarMult(g, Order())
	if !o.IsInfinity() {
		t.Fatal("[r]g ≠ ∞; generator order wrong")
	}
}

func TestG1GroupLaws(t *testing.T) {
	g := G1Generator()
	a, b := randScalar(t), randScalar(t)
	var pa, pb, sum, direct G1
	pa.ScalarMult(g, a)
	pb.ScalarMult(g, b)
	sum.Add(&pa, &pb)
	direct.ScalarMult(g, new(big.Int).Add(a, b))
	if !sum.Equal(&direct) {
		t.Fatal("[a]g + [b]g ≠ [a+b]g")
	}

	// Neg and identity.
	var neg, zero G1
	neg.Neg(&pa)
	zero.Add(&pa, &neg)
	if !zero.IsInfinity() {
		t.Fatal("P + (−P) ≠ ∞")
	}
	var same G1
	same.Add(&pa, NewG1())
	if !same.Equal(&pa) {
		t.Fatal("P + ∞ ≠ P")
	}

	// Double agrees with Add.
	var d1, d2 G1
	d1.Double(&pa)
	d2.Add(&pa, &pa)
	if !d1.Equal(&d2) {
		t.Fatal("Double ≠ Add(P,P)")
	}
}

func TestG1ScalarMultMatchesNaive(t *testing.T) {
	g := G1Generator()
	k := big.NewInt(1000003)
	var fast G1
	fast.ScalarMult(g, k)
	// Additive split: [1000003]g = [1000000]g + [3]g.
	slow := NewG1()
	var a, b G1
	a.ScalarMult(g, big.NewInt(1000000))
	b.ScalarMult(g, big.NewInt(3))
	slow.Add(&a, &b)
	if !fast.Equal(slow) {
		t.Fatal("scalar mult split mismatch")
	}
}

func TestHashToG1(t *testing.T) {
	h1 := HashToG1("tag", []byte("hello"))
	h2 := HashToG1("tag", []byte("hello"))
	h3 := HashToG1("tag", []byte("world"))
	if !h1.Equal(h2) {
		t.Fatal("HashToG1 not deterministic")
	}
	if h1.Equal(h3) {
		t.Fatal("HashToG1 collision on distinct messages")
	}
	if !h1.IsOnCurve() || h1.IsInfinity() {
		t.Fatal("HashToG1 produced invalid point")
	}
}

func TestG1BytesRoundTrip(t *testing.T) {
	g, _, err := RandG1(nil)
	if err != nil {
		t.Fatal(err)
	}
	var back G1
	if _, err := back.SetBytes(g.Bytes()); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(g) {
		t.Fatal("G1 bytes round trip failed")
	}
	var inf G1
	if _, err := inf.SetBytes(NewG1().Bytes()); err != nil || !inf.IsInfinity() {
		t.Fatal("infinity round trip failed")
	}
	// Off-curve rejection.
	bad := g.Bytes()
	bad[len(bad)-1] ^= 1
	if _, err := new(G1).SetBytes(bad); err == nil {
		t.Fatal("SetBytes accepted off-curve point")
	}
}

func TestG2GeneratorProperties(t *testing.T) {
	g := G2Generator()
	if !g.IsOnTwist() {
		t.Fatal("G2 generator not on twist")
	}
	if !g.IsInSubgroup() {
		t.Fatal("G2 generator not in order-r subgroup")
	}
}

func TestG2GroupLaws(t *testing.T) {
	g := G2Generator()
	a, b := randScalar(t), randScalar(t)
	var pa, pb, sum, direct G2
	pa.ScalarMult(g, a)
	pb.ScalarMult(g, b)
	sum.Add(&pa, &pb)
	direct.ScalarMult(g, new(big.Int).Add(a, b))
	if !sum.Equal(&direct) {
		t.Fatal("[a]g + [b]g ≠ [a+b]g in G2")
	}
	var neg, zero G2
	neg.Neg(&pa)
	zero.Add(&pa, &neg)
	if !zero.IsInfinity() {
		t.Fatal("Q + (−Q) ≠ ∞ in G2")
	}
}

func TestHashToG2(t *testing.T) {
	h1 := HashToG2("tag", []byte("a"))
	h2 := HashToG2("tag", []byte("a"))
	if !h1.Equal(h2) {
		t.Fatal("HashToG2 not deterministic")
	}
	if !h1.IsOnTwist() || !h1.IsInSubgroup() {
		t.Fatal("HashToG2 output invalid")
	}
}

func TestG2BytesRoundTrip(t *testing.T) {
	g, _, err := RandG2(nil)
	if err != nil {
		t.Fatal(err)
	}
	var back G2
	if _, err := back.SetBytes(g.Bytes()); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(g) {
		t.Fatal("G2 bytes round trip failed")
	}
}

func TestPairingNonDegenerate(t *testing.T) {
	e := Pair(G1Generator(), G2Generator())
	if e.IsOne() {
		t.Fatal("e(g, g2) = 1; pairing degenerate")
	}
	if !e.IsInSubgroup() {
		t.Fatal("pairing output not in order-r subgroup")
	}
}

func TestPairingBilinear(t *testing.T) {
	g1 := G1Generator()
	g2 := G2Generator()
	a, b := randScalar(t), randScalar(t)
	var pa G1
	pa.ScalarMult(g1, a)
	var qb G2
	qb.ScalarMult(g2, b)

	lhs := Pair(&pa, &qb)
	base := Pair(g1, g2)
	var rhs GT
	rhs.Exp(base, new(big.Int).Mul(a, b))
	if !lhs.Equal(&rhs) {
		t.Fatal("e([a]P, [b]Q) ≠ e(P,Q)^(ab)")
	}

	// Left linearity: e(P+P', Q) = e(P,Q)·e(P',Q).
	h := HashToG1("bilin", []byte("x"))
	var sum G1
	sum.Add(&pa, h)
	l := Pair(&sum, &qb)
	var r GT
	r.Mul(Pair(&pa, &qb), Pair(h, &qb))
	if !l.Equal(&r) {
		t.Fatal("pairing not additive in G1 argument")
	}
}

func TestPairingIdentity(t *testing.T) {
	if !Pair(NewG1(), G2Generator()).IsOne() {
		t.Fatal("e(∞, Q) ≠ 1")
	}
	if !Pair(G1Generator(), NewG2()).IsOne() {
		t.Fatal("e(P, ∞) ≠ 1")
	}
}

func TestMillerLoopsAgree(t *testing.T) {
	p, _, err := RandG1(nil)
	if err != nil {
		t.Fatal(err)
	}
	q, _, err := RandG2(nil)
	if err != nil {
		t.Fatal(err)
	}
	ft := millerLoopTwisted(p, q)
	fg := millerLoopGeneric(p, q)
	if !ft.Equal(fg) {
		t.Fatal("twisted and generic Miller loops disagree")
	}
}

func TestPairMatchesReference(t *testing.T) {
	p, _, err := RandG1(nil)
	if err != nil {
		t.Fatal(err)
	}
	q, _, err := RandG2(nil)
	if err != nil {
		t.Fatal(err)
	}
	fast := Pair(p, q)
	slow := PairReference(p, q)
	if !fast.Equal(slow) {
		t.Fatal("fast pairing disagrees with reference path")
	}
}

func TestGTOps(t *testing.T) {
	a, err := RandGT(nil)
	if err != nil {
		t.Fatal(err)
	}
	var inv, one GT
	inv.Inverse(a)
	one.Mul(a, &inv)
	if !one.IsOne() {
		t.Fatal("GT inverse broken")
	}
	k := randScalar(t)
	var ek GT
	ek.Exp(a, k)
	var back GT
	back.Exp(&ek, new(big.Int).ModInverse(k, Order()))
	if !back.Equal(a) {
		t.Fatal("GT exp/inverse-exp round trip failed")
	}
	var rt GT
	if _, err := rt.SetBytes(a.Bytes()); err != nil || !rt.Equal(a) {
		t.Fatal("GT bytes round trip failed")
	}
}

func TestGTOrderDividesR(t *testing.T) {
	e := Pair(G1Generator(), G2Generator())
	var t1 GT
	t1.Exp(e, ff.Order())
	if !t1.IsOne() {
		t.Fatal("e(g,g2)^r ≠ 1")
	}
}
