package bn254

import (
	"fmt"

	"repro/internal/ff"
)

// Compressed point encodings (SEC1-style): a one-byte flag followed by
// the x coordinate only. The y coordinate is recovered on decode from
// the curve equation via the p ≡ 3 (mod 4) square-root fast path, with
// the flag disambiguating the two roots by the parity of y's canonical
// representative. This halves the dominant wire cost of the protocols —
// every decrypt/refresh frame is a list of G2 elements, which shrink
// from 128 to 65 bytes (G1: 64 → 33).
//
// Layout:
//
//	flag    uint8      0x00 infinity (body all zero), 0x02 even y, 0x03 odd y
//	x       [32|64]byte big-endian Fp (G1) or Fp2 = C0 ‖ C1 (G2)
//
// Decoding is strict: unknown flags, non-canonical coordinates, x with
// no square root (off-curve), a parity with no matching root, nonzero
// infinity bodies, and (G2) points outside the order-r subgroup are all
// rejected.
const (
	// G1BytesCompressed is the size of the compressed G1 encoding.
	G1BytesCompressed = 1 + ff.FpBytes
	// G2BytesCompressed is the size of the compressed G2 encoding.
	G2BytesCompressed = 1 + ff.Fp2Bytes

	compFlagInfinity = 0x00
	compFlagEvenY    = 0x02
	compFlagOddY     = 0x03
)

// fp2IsOdd is the parity of an Fp2 value used by the compressed G2
// encoding: the parity of C0's canonical representative, or of C1's
// when C0 = 0. Negating a nonzero Fp2 flips this parity (p is odd), so
// the two square roots of a twist ordinate always carry distinct flags.
func fp2IsOdd(v *ff.Fp2) bool {
	if !v.C0.IsZero() {
		return v.C0.IsOdd()
	}
	return v.C1.IsOdd()
}

// BytesCompressed returns the 33-byte compressed encoding of z.
func (z *G1) BytesCompressed() []byte {
	return z.AppendCompressed(make([]byte, 0, G1BytesCompressed))
}

// AppendCompressed appends the compressed encoding of z to dst and
// returns the extended slice.
func (z *G1) AppendCompressed(dst []byte) []byte {
	if z.inf {
		var zero [G1BytesCompressed]byte
		return append(dst, zero[:]...)
	}
	flag := byte(compFlagEvenY)
	if z.y.IsOdd() {
		flag = compFlagOddY
	}
	dst = append(dst, flag)
	return append(dst, z.x.Bytes()...)
}

// SetBytesCompressed decodes a compressed encoding, recovering y from
// the curve equation and rejecting malformed or off-curve inputs.
func (z *G1) SetBytesCompressed(b []byte) (*G1, error) {
	if len(b) != G1BytesCompressed {
		return nil, fmt.Errorf("bn254: compressed G1 encoding must be %d bytes, got %d", G1BytesCompressed, len(b))
	}
	switch b[0] {
	case compFlagInfinity:
		for _, c := range b[1:] {
			if c != 0 {
				return nil, fmt.Errorf("bn254: compressed G1 infinity with nonzero body")
			}
		}
		return z.SetInfinity(), nil
	case compFlagEvenY, compFlagOddY:
	default:
		return nil, fmt.Errorf("bn254: unknown compressed G1 flag 0x%02x", b[0])
	}
	wantOdd := b[0] == compFlagOddY
	var x ff.Fp
	if _, err := x.SetBytes(b[1:]); err != nil {
		return nil, err
	}
	var rhs, y ff.Fp
	rhs.Square(&x)
	rhs.Mul(&rhs, &x)
	rhs.Add(&rhs, curveB)
	if _, ok := y.Sqrt(&rhs); !ok {
		return nil, fmt.Errorf("bn254: compressed G1 x is not on the curve")
	}
	if y.IsOdd() != wantOdd {
		y.Neg(&y)
	}
	if y.IsOdd() != wantOdd {
		return nil, fmt.Errorf("bn254: compressed G1 parity has no matching root")
	}
	z.x.Set(&x)
	z.y.Set(&y)
	z.inf = false
	return z, nil
}

// BytesCompressed returns the 65-byte compressed encoding of z.
func (z *G2) BytesCompressed() []byte {
	return z.AppendCompressed(make([]byte, 0, G2BytesCompressed))
}

// AppendCompressed appends the compressed encoding of z to dst and
// returns the extended slice.
func (z *G2) AppendCompressed(dst []byte) []byte {
	if z.inf {
		var zero [G2BytesCompressed]byte
		return append(dst, zero[:]...)
	}
	flag := byte(compFlagEvenY)
	if fp2IsOdd(&z.y) {
		flag = compFlagOddY
	}
	dst = append(dst, flag)
	return append(dst, z.x.Bytes()...)
}

// SetBytesCompressed decodes a compressed encoding, recovering y from
// the twist equation and rejecting malformed, off-twist and
// non-subgroup inputs (the same validation as the uncompressed
// SetBytes).
func (z *G2) SetBytesCompressed(b []byte) (*G2, error) {
	if len(b) != G2BytesCompressed {
		return nil, fmt.Errorf("bn254: compressed G2 encoding must be %d bytes, got %d", G2BytesCompressed, len(b))
	}
	switch b[0] {
	case compFlagInfinity:
		for _, c := range b[1:] {
			if c != 0 {
				return nil, fmt.Errorf("bn254: compressed G2 infinity with nonzero body")
			}
		}
		return z.SetInfinity(), nil
	case compFlagEvenY, compFlagOddY:
	default:
		return nil, fmt.Errorf("bn254: unknown compressed G2 flag 0x%02x", b[0])
	}
	wantOdd := b[0] == compFlagOddY
	var x ff.Fp2
	if _, err := x.SetBytes(b[1:]); err != nil {
		return nil, err
	}
	var rhs, y ff.Fp2
	rhs.Square(&x)
	rhs.Mul(&rhs, &x)
	rhs.Add(&rhs, twistB)
	if _, ok := y.Sqrt(&rhs); !ok {
		return nil, fmt.Errorf("bn254: compressed G2 x is not on the twist")
	}
	if fp2IsOdd(&y) != wantOdd {
		y.Neg(&y)
	}
	if fp2IsOdd(&y) != wantOdd {
		return nil, fmt.Errorf("bn254: compressed G2 parity has no matching root")
	}
	cand := G2{x: x, y: y}
	if !cand.IsInSubgroup() {
		return nil, fmt.Errorf("bn254: compressed G2 point not in order-r subgroup")
	}
	return z.Set(&cand), nil
}
