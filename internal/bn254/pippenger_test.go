package bn254

import (
	"crypto/rand"
	"math/big"
	"testing"

	"repro/internal/ff"
)

// randG1Set returns n random points with n random full-width scalars.
func randG1Set(t testing.TB, n int) ([]*G1, []*big.Int) {
	t.Helper()
	pts := make([]*G1, n)
	es := make([]*big.Int, n)
	for i := 0; i < n; i++ {
		k, err := rand.Int(rand.Reader, ff.Order())
		if err != nil {
			t.Fatal(err)
		}
		pts[i] = new(G1).ScalarBaseMult(k)
		e, err := rand.Int(rand.Reader, ff.Order())
		if err != nil {
			t.Fatal(err)
		}
		es[i] = e
	}
	return pts, es
}

func randG2Set(t testing.TB, n int) ([]*G2, []*big.Int) {
	t.Helper()
	pts := make([]*G2, n)
	es := make([]*big.Int, n)
	for i := 0; i < n; i++ {
		k, err := rand.Int(rand.Reader, ff.Order())
		if err != nil {
			t.Fatal(err)
		}
		pts[i] = new(G2).ScalarBaseMult(k)
		e, err := rand.Int(rand.Reader, ff.Order())
		if err != nil {
			t.Fatal(err)
		}
		es[i] = e
	}
	return pts, es
}

func TestPippengerMatchesStrausG1(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16, 33, 64} {
		pts, es := randG1Set(t, n)
		want := G1MultiScalarMult(pts, es)
		got := G1MultiExpPippenger(pts, es)
		if !got.Equal(want) {
			t.Fatalf("n=%d: Pippenger %v != Straus %v", n, got, want)
		}
		if d := G1MultiExp(pts, es); !d.Equal(want) {
			t.Fatalf("n=%d: dispatcher diverged", n)
		}
	}
}

func TestPippengerMatchesStrausG2(t *testing.T) {
	for _, n := range []int{1, 3, 16, 40} {
		pts, es := randG2Set(t, n)
		want := G2MultiScalarMult(pts, es)
		got := G2MultiExpPippenger(pts, es)
		if !got.Equal(want) {
			t.Fatalf("n=%d: Pippenger %v != Straus %v", n, got, want)
		}
		if d := G2MultiExp(pts, es); !d.Equal(want) {
			t.Fatalf("n=%d: dispatcher diverged", n)
		}
	}
}

func TestPippengerEdgeCases(t *testing.T) {
	// Empty input.
	if out := G1MultiExpPippenger(nil, nil); !out.IsInfinity() {
		t.Fatal("empty multi-exp should be infinity")
	}
	// Zero scalars and infinity points are skipped.
	pts, es := randG1Set(t, 20)
	es[3] = big.NewInt(0)
	pts[7] = new(G1).SetInfinity()
	es[12] = new(big.Int).Set(ff.Order()) // ≡ 0 mod r
	want := G1MultiScalarMult(pts, es)
	if got := G1MultiExpPippenger(pts, es); !got.Equal(want) {
		t.Fatalf("zero/infinity handling diverged: %v != %v", got, want)
	}
	// Repeated points (forces bucket doublings) and paired P, −P
	// (forces bucket cancellation).
	n := 24
	pts2, es2 := randG1Set(t, n)
	for i := 0; i < n/2; i++ {
		pts2[2*i+1] = new(G1).Set(pts2[2*i])
		es2[2*i+1] = new(big.Int).Set(es2[2*i])
	}
	pts2[5] = new(G1).Neg(pts2[4])
	es2[5] = new(big.Int).Set(es2[4])
	want = G1MultiScalarMult(pts2, es2)
	if got := G1MultiExpPippenger(pts2, es2); !got.Equal(want) {
		t.Fatalf("repeated/negated points diverged: %v != %v", got, want)
	}
	// Tiny scalars exercise short digit vectors.
	pts3, _ := randG1Set(t, 18)
	es3 := make([]*big.Int, 18)
	for i := range es3 {
		es3[i] = big.NewInt(int64(i))
	}
	want = G1MultiScalarMult(pts3, es3)
	if got := G1MultiExpPippenger(pts3, es3); !got.Equal(want) {
		t.Fatalf("small scalars diverged: %v != %v", got, want)
	}
}

func TestPippengerDigitsReconstruct(t *testing.T) {
	// The signed digits must satisfy e = Σ d_w · 2^(cw).
	for _, c := range []int{3, 4, 5, 6, 7, 8} {
		for i := 0; i < 20; i++ {
			e, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 130))
			if err != nil {
				t.Fatal(err)
			}
			windows := e.BitLen()/c + 2
			digits := pippengerDigits([]*big.Int{e}, c, windows)
			got := new(big.Int)
			for w := windows - 1; w >= 0; w-- {
				got.Lsh(got, uint(c))
				got.Add(got, big.NewInt(int64(digits[w])))
			}
			if got.Cmp(e) != 0 {
				t.Fatalf("c=%d: digits reconstruct %v, want %v", c, got, e)
			}
			half := int32(1) << (c - 1)
			for _, d := range digits {
				if d < -half || d > half {
					t.Fatalf("c=%d: digit %d out of range", c, d)
				}
			}
		}
	}
}

func TestGTPippengerMatchesStraus(t *testing.T) {
	g := GTGenerator()
	for _, n := range []int{4, 64, 100} {
		as := make([]*GT, n)
		ks := make([]*big.Int, n)
		for i := 0; i < n; i++ {
			k, err := rand.Int(rand.Reader, ff.Order())
			if err != nil {
				t.Fatal(err)
			}
			as[i] = new(GT).Exp(g, k)
			e, err := rand.Int(rand.Reader, ff.Order())
			if err != nil {
				t.Fatal(err)
			}
			ks[i] = e
		}
		ks[0] = big.NewInt(0) // exercise skipped terms
		want := gtMultiExpStraus(as, ks)
		got := gtMultiExpPippenger(as, ks)
		if got == nil || !got.Equal(want) {
			t.Fatalf("n=%d: GT Pippenger diverged from Straus", n)
		}
		if d := GTMultiExp(as, ks); !d.Equal(want) {
			t.Fatalf("n=%d: GT dispatcher diverged", n)
		}
	}
	// Non-cyclotomic bases must force the Straus fallback.
	raw, err := ff.RandFp12(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	nc := &GT{}
	nc.v.Set(raw)
	as := []*GT{nc, nc}
	ks := []*big.Int{big.NewInt(3), big.NewInt(5)}
	if out := gtMultiExpPippenger(as, ks); out != nil {
		t.Fatal("gtMultiExpPippenger should refuse non-cyclotomic bases")
	}
	want := gtMultiExpStraus(as, ks)
	if d := GTMultiExp(as, ks); !d.Equal(want) {
		t.Fatal("GT dispatcher wrong on non-cyclotomic bases")
	}
}

func BenchmarkMultiExp64G1(b *testing.B) {
	pts, es := randG1Set(b, 64)
	b.Run("straus", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			G1MultiScalarMult(pts, es)
		}
	})
	b.Run("pippenger", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			G1MultiExpPippenger(pts, es)
		}
	})
}
