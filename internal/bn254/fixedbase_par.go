package bn254

import (
	"repro/internal/par"
)

// Parallel fixed-base comb table builds. The serial build walks the 64
// radix-16 windows in order because window w+1's base (2^(4(w+1))·G) is
// derived from window w's row. But the window bases themselves are a
// cheap doubling chain — 4 doublings per window, ~250 total — so the
// parallel build first lays the bases down serially and then fills the
// 15-entry rows (14 mixed additions each) window-by-window across
// workers. The final batch-to-affine conversion is shared with the
// serial path and already parallelizes internally through the segmented
// batch inversion (ff.BatchInverseFpPar) at this size (960 points).
//
// The build runs once per process per group (sync.Once), so this is a
// cold-start win, not a steady-state one: it matters to short-lived
// CLI invocations (dlrclient) and to the server's first window after
// boot. TestFixedBaseParallelMatchesSerial pins both branches to
// identical tables.

// fbParMinWindows is the window count below which the build stays on
// the strictly serial chain. The production tables are always
// fbWindows = 64; the gate exists so the dispatch degrades cleanly if
// the table geometry ever shrinks and to keep the single-core path
// free of chunking overhead (par.Chunks returns one chunk when
// Workers() == 1, routing to the serial twin).
const fbParMinWindows = 8

// g1FixedBaseRowsSerial fills jacs (fbWindows rows of fbTableSize
// Jacobian multiples) with the classic serial chain: row d of window w
// holds (d+1)·2^(4w)·base, and the next window's base is recovered
// from row 7 (8·base) with one doubling.
func g1FixedBaseRowsSerial(jacs []g1Jac, base g1Jac) {
	for w := 0; w < fbWindows; w++ {
		row := jacs[w*fbTableSize:]
		row[0] = base
		for d := 1; d < fbTableSize; d++ {
			row[d] = row[d-1]
			row[d].add(&base)
		}
		// Next window base: 16·base = 2·(8·base).
		base = row[7]
		base.double()
	}
}

// g1FixedBaseRowsPar lays down the per-window bases serially (4
// doublings each) and fans the row fills out across workers in
// contiguous window chunks.
func g1FixedBaseRowsPar(jacs []g1Jac, base g1Jac, chunks [][2]int) {
	bases := make([]g1Jac, fbWindows)
	bases[0] = base
	for w := 1; w < fbWindows; w++ {
		b := bases[w-1]
		for i := 0; i < fbWindowBits; i++ {
			b.double()
		}
		bases[w] = b
	}
	par.ForEach(len(chunks), func(ci int) {
		for w := chunks[ci][0]; w < chunks[ci][1]; w++ {
			b := bases[w]
			row := jacs[w*fbTableSize:]
			row[0] = b
			for d := 1; d < fbTableSize; d++ {
				row[d] = row[d-1]
				row[d].add(&b)
			}
		}
	})
}

// g1FixedBaseRows dispatches between the serial chain and the
// window-parallel build.
func g1FixedBaseRows(jacs []g1Jac, base g1Jac) {
	if chunks := par.Chunks(fbWindows, fbParMinWindows); len(chunks) > 1 {
		g1FixedBaseRowsPar(jacs, base, chunks)
		return
	}
	g1FixedBaseRowsSerial(jacs, base)
}

// g2FixedBaseRowsSerial is g1FixedBaseRowsSerial on the twist.
func g2FixedBaseRowsSerial(jacs []g2Jac, base g2Jac) {
	for w := 0; w < fbWindows; w++ {
		row := jacs[w*fbTableSize:]
		row[0] = base
		for d := 1; d < fbTableSize; d++ {
			row[d] = row[d-1]
			row[d].add(&base)
		}
		base = row[7]
		base.double()
	}
}

// g2FixedBaseRowsPar is g1FixedBaseRowsPar on the twist.
func g2FixedBaseRowsPar(jacs []g2Jac, base g2Jac, chunks [][2]int) {
	bases := make([]g2Jac, fbWindows)
	bases[0] = base
	for w := 1; w < fbWindows; w++ {
		b := bases[w-1]
		for i := 0; i < fbWindowBits; i++ {
			b.double()
		}
		bases[w] = b
	}
	par.ForEach(len(chunks), func(ci int) {
		for w := chunks[ci][0]; w < chunks[ci][1]; w++ {
			b := bases[w]
			row := jacs[w*fbTableSize:]
			row[0] = b
			for d := 1; d < fbTableSize; d++ {
				row[d] = row[d-1]
				row[d].add(&b)
			}
		}
	})
}

// g2FixedBaseRows dispatches between the serial chain and the
// window-parallel build.
func g2FixedBaseRows(jacs []g2Jac, base g2Jac) {
	if chunks := par.Chunks(fbWindows, fbParMinWindows); len(chunks) > 1 {
		g2FixedBaseRowsPar(jacs, base, chunks)
		return
	}
	g2FixedBaseRowsSerial(jacs, base)
}
