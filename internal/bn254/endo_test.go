package bn254

import (
	"math/big"
	"testing"

	"repro/internal/ff"
)

// endoEdgeScalars returns the boundary cases every scalar-mult tier must
// agree on: 0, 1, r−1, r, r+1 and ±2^i across the scalar width.
func endoEdgeScalars() []*big.Int {
	r := ff.Order()
	out := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		new(big.Int).Sub(r, big.NewInt(1)),
		new(big.Int).Set(r),
		new(big.Int).Add(r, big.NewInt(1)),
	}
	for i := 0; i < 260; i += 13 {
		p := new(big.Int).Lsh(big.NewInt(1), uint(i))
		out = append(out, p, new(big.Int).Neg(p))
	}
	return out
}

// TestG1ScalarMultGLVTiers cross-checks all three G1 tiers — GLV
// (ScalarMult), plain wNAF (ScalarMultWNAF) and the naive ladder
// (ScalarMultReference) — on edge scalars plus 100 random ones.
func TestG1ScalarMultGLVTiers(t *testing.T) {
	a, _, err := RandG1(nil)
	if err != nil {
		t.Fatal(err)
	}
	ks := endoEdgeScalars()
	for i := 0; i < 100; i++ {
		ks = append(ks, randScalarBits(t, 256))
	}
	for _, k := range ks {
		var glv, wnaf, ref G1
		glv.ScalarMult(a, k)
		wnaf.ScalarMultWNAF(a, k)
		ref.ScalarMultReference(a, k)
		if !glv.Equal(&ref) {
			t.Fatalf("GLV ScalarMult != reference for k=%v", k)
		}
		if !wnaf.Equal(&ref) {
			t.Fatalf("ScalarMultWNAF != reference for k=%v", k)
		}
		if !glv.IsOnCurve() {
			t.Fatalf("GLV result off curve for k=%v", k)
		}
	}
}

// TestG2ScalarMultGLSTiers is the G2 counterpart: GLS (ScalarMult) vs
// plain wNAF vs naive ladder, on r-subgroup points (the domain the
// mod-r tiers are specified for).
func TestG2ScalarMultGLSTiers(t *testing.T) {
	a, _, err := RandG2(nil)
	if err != nil {
		t.Fatal(err)
	}
	ks := endoEdgeScalars()
	for i := 0; i < 100; i++ {
		ks = append(ks, randScalarBits(t, 256))
	}
	for _, k := range ks {
		var gls, wnaf, ref G2
		gls.ScalarMult(a, k)
		wnaf.ScalarMultWNAF(a, k)
		ref.ScalarMultReference(a, k)
		if !gls.Equal(&ref) {
			t.Fatalf("GLS ScalarMult != reference for k=%v", k)
		}
		if !wnaf.Equal(&ref) {
			t.Fatalf("ScalarMultWNAF != reference for k=%v", k)
		}
		if !gls.IsOnTwist() {
			t.Fatalf("GLS result off twist for k=%v", k)
		}
	}
}

// TestG1PhiEigenvalue pins φ(P) = [λ]P on random r-subgroup points, not
// just the generator the init-time self-check uses.
func TestG1PhiEigenvalue(t *testing.T) {
	g1Endo.once.Do(g1EndoInit)
	for i := 0; i < 20; i++ {
		p, _, err := RandG1(nil)
		if err != nil {
			t.Fatal(err)
		}
		var phiP, lP G1
		g1Phi(&phiP, p, &g1Endo.beta)
		lP.ScalarMultWNAF(p, g1Endo.lambda)
		if !phiP.Equal(&lP) {
			t.Fatalf("iteration %d: φ(P) != [λ]P", i)
		}
	}
}

// TestG2PsiEigenvalue pins ψ(Q) = [6u²]Q on random r-subgroup points.
func TestG2PsiEigenvalue(t *testing.T) {
	g2Endo.once.Do(g2EndoInit)
	for i := 0; i < 20; i++ {
		q, _, err := RandG2(nil)
		if err != nil {
			t.Fatal(err)
		}
		var psiQ, muQ G2
		g2Psi(&psiQ, q)
		muQ.ScalarMultWNAF(q, g2Endo.mu)
		if !psiQ.Equal(&muQ) {
			t.Fatalf("iteration %d: ψ(Q) != [6u²]Q", i)
		}
	}
}

// nonSubgroupTwistPoint finds a point on E'(Fp2) outside the r-subgroup
// (the twist's cofactor is 2p−r, so a random curve point is outside
// with overwhelming probability; verified via the reference check).
func nonSubgroupTwistPoint(t *testing.T, seed string) *G2 {
	t.Helper()
	for ctr := uint32(0); ctr < 1000; ctr++ {
		var x ff.Fp2
		x.C0.Set(hashToFp(seed, nil, ctr, 0))
		x.C1.Set(hashToFp(seed, nil, ctr, 1))
		var rhs ff.Fp2
		rhs.Square(&x)
		rhs.Mul(&rhs, &x)
		rhs.Add(&rhs, twistB)
		var y ff.Fp2
		if _, ok := y.Sqrt(&rhs); !ok {
			continue
		}
		cand := &G2{x: x, y: y}
		if !cand.IsOnTwist() {
			t.Fatal("constructed point off twist")
		}
		if !cand.IsInSubgroupReference() {
			return cand
		}
	}
	t.Fatal("no non-subgroup twist point found")
	return nil
}

// TestG2IsInSubgroupMatchesReference differentially tests the fast
// ψ-relation subgroup check against the definitional [r]z = O check on
// both members and non-members.
func TestG2IsInSubgroupMatchesReference(t *testing.T) {
	// Members: random subgroup points and the identity.
	if !NewG2().IsInSubgroup() || !NewG2().IsInSubgroupReference() {
		t.Fatal("identity must pass both subgroup checks")
	}
	for i := 0; i < 10; i++ {
		q, _, err := RandG2(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !q.IsInSubgroup() {
			t.Fatalf("iteration %d: fast check rejects subgroup point", i)
		}
		if !q.IsInSubgroupReference() {
			t.Fatalf("iteration %d: reference check rejects subgroup point", i)
		}
	}
	// Non-members: points on the twist with a cofactor component. The
	// helper pre-verifies them against the reference check, so here the
	// fast check must agree they are outside.
	for i := 0; i < 5; i++ {
		bad := nonSubgroupTwistPoint(t, "endo-test-nonmember-"+string(rune('a'+i)))
		if bad.IsInSubgroup() {
			t.Fatalf("iteration %d: fast check accepts non-subgroup point", i)
		}
	}
}

// TestEndoSplitRecomposition checks the in-package split helpers
// recompose: Σ [kᵢ]·baseᵢ = [k]a with signs folded into the points.
func TestEndoSplitRecomposition(t *testing.T) {
	for i := 0; i < 25; i++ {
		k := new(big.Int).Mod(randScalarBits(t, 256), ff.Order())

		a1, _, err := RandG1(nil)
		if err != nil {
			t.Fatal(err)
		}
		pts1, es1 := endoSplitG1(a1, k)
		want1 := new(G1).ScalarMultReference(a1, k)
		got1 := NewG1()
		var term1 G1
		for j := range pts1 {
			term1.ScalarMultReference(pts1[j], es1[j])
			got1.Add(got1, &term1)
		}
		if !got1.Equal(want1) {
			t.Fatalf("iteration %d: GLV split does not recompose", i)
		}

		a2, _, err := RandG2(nil)
		if err != nil {
			t.Fatal(err)
		}
		pts2, es2 := endoSplitG2(a2, k)
		want2 := new(G2).ScalarMultReference(a2, k)
		got2 := NewG2()
		var term2 G2
		for j := range pts2 {
			term2.ScalarMultReference(pts2[j], es2[j])
			got2.Add(got2, &term2)
		}
		if !got2.Equal(want2) {
			t.Fatalf("iteration %d: GLS split does not recompose", i)
		}
	}
}
