package bn254

import (
	"math/big"
	"sync"

	"repro/internal/ff"
	"repro/internal/scalar"
)

// This file implements the curve endomorphisms and the
// endomorphism-accelerated scalar multiplications built on them:
//
//   - GLV on G1 (Gallant–Lambert–Vanstone 2001): E(Fp) has j-invariant
//     0, so φ(x, y) = (β·x, y) with β a primitive cube root of unity in
//     Fp is an endomorphism acting on the r-order group as φ(P) = [λ]P,
//     λ² + λ + 1 ≡ 0 (mod r). Splitting k ≡ k₀ + k₁λ with
//     |kᵢ| ≈ √r halves the doubling chain.
//   - GLS on G2 (Galbraith–Lin–Scott 2009): the untwist-Frobenius-twist
//     endomorphism ψ(x, y) = (γ₂·x̄, γ₃·ȳ) (γⱼ = ξ^(j(p−1)/6), bar =
//     Fp2 conjugation) acts on the r-order twist subgroup as
//     ψ(Q) = [μ]Q with μ = 6u² = p − r ≡ p (mod r). A 4-dimensional
//     decomposition k ≡ k₀ + k₁μ + k₂μ² + k₃μ³ with |kᵢ| ≈ r^(1/4)
//     quarters the chain.
//
// Every constant is derived from the BN parameter u and verified at
// first use: β and λ by checking φ(G) = [λ]G against the plain ladder,
// ψ and μ by checking ψ(G₂) = [μ]G₂, and the lattice bases by
// scalar.NewLattice's relation check. A derivation that fails its check
// panics — wrong constants must never fail silently. See
// docs/ARCHITECTURE.md for the paper trail behind each constant.
//
// Like the rest of the package none of this is constant-time: the
// decomposition, the wNAF recodings and the interleaved table walks all
// branch on secret scalars.

// g1Endo carries the GLV endomorphism data for G1, derived and verified
// on first use.
var g1Endo struct {
	once   sync.Once
	beta   ff.Fp
	lambda *big.Int
	lat    *scalar.Lattice
}

// g1EndoInit derives β and λ and builds the 2-dimensional GLV lattice.
//
//	λ = 36u³ + 18u² + 6u + 1 is a root of x² + x + 1 (mod r);
//	β ∈ Fp is a primitive cube root of unity, i.e. a root of x² + x + 1
//	  (mod p), computed as (−1 ± √−3)/2.
//
// Both x²+x+1 roots are cube roots of unity; which of the two β
// candidates pairs with λ (rather than λ² = −1−λ) is fixed by testing
// φ(G) = [λ]G on the generator.
func g1EndoInit() {
	r := ff.Order()
	u2 := new(big.Int).Mul(u, u)
	lambda := new(big.Int).Mul(u2, u)
	lambda.Mul(lambda, big.NewInt(36))
	lambda.Add(lambda, new(big.Int).Mul(u2, big.NewInt(18)))
	lambda.Add(lambda, new(big.Int).Mul(u, big.NewInt(6)))
	lambda.Add(lambda, big.NewInt(1))
	lambda.Mod(lambda, r)
	chk := new(big.Int).Mul(lambda, lambda)
	chk.Add(chk, lambda)
	chk.Add(chk, big.NewInt(1))
	if chk.Mod(chk, r).Sign() != 0 {
		panic("bn254: GLV eigenvalue λ does not satisfy λ²+λ+1 ≡ 0 (mod r)")
	}

	p := ff.Modulus()
	s := new(big.Int).ModSqrt(new(big.Int).Mod(big.NewInt(-3), p), p)
	if s == nil {
		panic("bn254: −3 is not a square mod p")
	}
	inv2 := new(big.Int).ModInverse(big.NewInt(2), p)
	var want g1Jac
	g1WNAFMult(&want, g1Gen, lambda)
	var lG G1
	want.toAffine(&lG)
	found := false
	for _, sign := range []int64{1, -1} {
		c := new(big.Int).Mul(s, big.NewInt(sign))
		c.Sub(c, big.NewInt(1))
		c.Mul(c, inv2)
		c.Mod(c, p)
		beta := ff.NewFp(c)
		var phiG G1
		g1Phi(&phiG, g1Gen, beta)
		if phiG.Equal(&lG) {
			g1Endo.beta.Set(beta)
			found = true
			break
		}
	}
	if !found {
		panic("bn254: neither cube-root-of-unity candidate satisfies φ(G) = [λ]G")
	}
	g1Endo.lambda = lambda

	basis, err := scalar.ReducedBasis2(r, lambda)
	if err != nil {
		panic("bn254: GLV basis reduction failed: " + err.Error())
	}
	lat, err := scalar.NewLattice(r, lambda, basis)
	if err != nil {
		panic("bn254: GLV lattice rejected: " + err.Error())
	}
	g1Endo.lat = lat
}

// g1Phi sets out = φ(a) = (β·x, y), the cube-root-of-unity endomorphism.
func g1Phi(out, a *G1, beta *ff.Fp) {
	if a.inf {
		out.SetInfinity()
		return
	}
	out.x.Mul(&a.x, beta)
	out.y.Set(&a.y)
	out.inf = false
}

// g2Endo carries the GLS endomorphism data for G2, derived and verified
// on first use.
var g2Endo struct {
	once           sync.Once
	gamma2, gamma3 ff.Fp2
	mu             *big.Int
	lat            *scalar.Lattice
}

// g2EndoInit derives the ψ coefficients and the 4-dimensional GLS
// lattice. μ = 6u² = p − r is the ψ eigenvalue (p ≡ 6u² mod r since
// p − r = 6u² for BN curves); the lattice basis is the Galbraith–Scott
// degree-4 basis with entries O(u).
func g2EndoInit() {
	r := ff.Order()
	mu := new(big.Int).Mul(u, u)
	mu.Mul(mu, big.NewInt(6))
	if diff := new(big.Int).Sub(ff.Modulus(), r); diff.Cmp(mu) != 0 {
		panic("bn254: p − r ≠ 6u²")
	}
	g2Endo.gamma2.Set(ff.FrobeniusGamma(2))
	g2Endo.gamma3.Set(ff.FrobeniusGamma(3))
	g2Endo.mu = mu

	// Verify ψ(G₂) = [μ]G₂ on the generator before trusting ψ anywhere.
	gen := G2Generator()
	var psiG G2
	g2Psi(&psiG, gen)
	var acc g2Jac
	g2WNAFMult(&acc, gen, mu)
	var muG G2
	acc.toAffine(&muG)
	if !psiG.Equal(&muG) {
		panic("bn254: ψ(G₂) ≠ [6u²]G₂ — untwist-Frobenius-twist coefficients wrong")
	}

	// Galbraith–Scott basis rows (v₀,v₁,v₂,v₃) with Σ vⱼμʲ ≡ 0 (mod r);
	// NewLattice re-verifies each row against (r, μ).
	mk := func(cs ...[2]int64) []*big.Int {
		row := make([]*big.Int, len(cs))
		for i, c := range cs {
			v := new(big.Int).Mul(big.NewInt(c[0]), u)
			row[i] = v.Add(v, big.NewInt(c[1]))
		}
		return row
	}
	basis := [][]*big.Int{
		mk([2]int64{1, 1}, [2]int64{1, 0}, [2]int64{1, 0}, [2]int64{-2, 0}),
		mk([2]int64{2, 1}, [2]int64{-1, 0}, [2]int64{-1, -1}, [2]int64{-1, 0}),
		mk([2]int64{2, 0}, [2]int64{2, 1}, [2]int64{2, 1}, [2]int64{2, 1}),
		mk([2]int64{1, -1}, [2]int64{4, 2}, [2]int64{-2, 1}, [2]int64{1, -1}),
	}
	lat, err := scalar.NewLattice(r, mu, basis)
	if err != nil {
		panic("bn254: GLS lattice rejected: " + err.Error())
	}
	g2Endo.lat = lat
}

// g2Psi sets out = ψ(a) = (γ₂·x̄, γ₃·ȳ), the untwist-Frobenius-twist
// endomorphism. Valid for every point of E'(Fp2), not only the
// r-subgroup (the subgroup check depends on that).
func g2Psi(out, a *G2) {
	if a.inf {
		out.SetInfinity()
		return
	}
	var x, y ff.Fp2
	x.Conjugate(&a.x)
	x.Mul(&x, &g2Endo.gamma2)
	y.Conjugate(&a.y)
	y.Mul(&y, &g2Endo.gamma3)
	out.x.Set(&x)
	out.y.Set(&y)
	out.inf = false
}

// endoSplitG1 decomposes e ∈ [0, r) into GLV terms: affine base points
// (sign already folded in) and their non-negative sub-scalars.
func endoSplitG1(a *G1, e *big.Int) ([]*G1, []*big.Int) {
	g1Endo.once.Do(g1EndoInit)
	subs := g1Endo.lat.Decompose(e)
	var phiA G1
	g1Phi(&phiA, a, &g1Endo.beta)
	bases := []*G1{a, &phiA}
	pts := make([]*G1, 0, 2)
	es := make([]*big.Int, 0, 2)
	for i, s := range subs {
		if s.Sign() == 0 {
			continue
		}
		pt := bases[i]
		if s.Sign() < 0 {
			pt = new(G1).Neg(pt)
			s = new(big.Int).Neg(s)
		}
		pts = append(pts, pt)
		es = append(es, s)
	}
	return pts, es
}

// endoSplitG2 decomposes e ∈ [0, r) into GLS terms over ψ⁰..ψ³. Only
// valid for points of the r-subgroup (where ψ acts as [μ]).
func endoSplitG2(a *G2, e *big.Int) ([]*G2, []*big.Int) {
	g2Endo.once.Do(g2EndoInit)
	subs := g2Endo.lat.Decompose(e)
	bases := make([]*G2, len(subs))
	bases[0] = a
	for i := 1; i < len(bases); i++ {
		bases[i] = new(G2)
		g2Psi(bases[i], bases[i-1])
	}
	pts := make([]*G2, 0, len(subs))
	es := make([]*big.Int, 0, len(subs))
	for i, s := range subs {
		if s.Sign() == 0 {
			continue
		}
		pt := bases[i]
		if s.Sign() < 0 {
			pt = new(G2).Neg(pt)
			s = new(big.Int).Neg(s)
		}
		pts = append(pts, pt)
		es = append(es, s)
	}
	return pts, es
}

// g1GLVMult sets acc = [e]a for e ∈ [0, r) via the 2-dimensional GLV
// split and one interleaved wNAF ladder over a ~√r-length chain.
func g1GLVMult(acc *g1Jac, a *G1, e *big.Int) {
	pts, es := endoSplitG1(a, e)
	g1MultiWNAF(acc, pts, es)
}

// g2GLSMult sets acc = [e]a for e ∈ [0, r) and a in the r-subgroup, via
// the 4-dimensional GLS split and one interleaved wNAF ladder over a
// ~r^(1/4)-length chain.
func g2GLSMult(acc *g2Jac, a *G2, e *big.Int) {
	pts, es := endoSplitG2(a, e)
	g2MultiWNAF(acc, pts, es)
}
