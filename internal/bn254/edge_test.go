package bn254

import (
	"math/big"
	"testing"
)

// Edge-case tests for the curve arithmetic: identities, small scalars,
// negatives, and the subgroup boundary conditions the protocols rely on.

func TestG1SmallScalars(t *testing.T) {
	g := G1Generator()
	var zero G1
	zero.ScalarMult(g, big.NewInt(0))
	if !zero.IsInfinity() {
		t.Fatal("[0]g ≠ ∞")
	}
	var one G1
	one.ScalarMult(g, big.NewInt(1))
	if !one.Equal(g) {
		t.Fatal("[1]g ≠ g")
	}
	var two, dbl G1
	two.ScalarMult(g, big.NewInt(2))
	dbl.Double(g)
	if !two.Equal(&dbl) {
		t.Fatal("[2]g ≠ 2g")
	}
	// [r−1]g = −g.
	rm1 := new(big.Int).Sub(Order(), big.NewInt(1))
	var last, neg G1
	last.ScalarMult(g, rm1)
	neg.Neg(g)
	if !last.Equal(&neg) {
		t.Fatal("[r−1]g ≠ −g")
	}
}

func TestG1ScalarMultReducesModOrder(t *testing.T) {
	g := G1Generator()
	k := big.NewInt(123456789)
	var a, b G1
	a.ScalarMult(g, k)
	b.ScalarMult(g, new(big.Int).Add(k, Order()))
	if !a.Equal(&b) {
		t.Fatal("[k]g ≠ [k+r]g")
	}
	// Negative scalars reduce correctly too.
	var c, d G1
	c.ScalarMult(g, new(big.Int).Neg(k))
	d.Neg(&a)
	if !c.Equal(&d) {
		t.Fatal("[−k]g ≠ −[k]g")
	}
}

func TestG1DoubleOfInfinity(t *testing.T) {
	var z G1
	z.Double(NewG1())
	if !z.IsInfinity() {
		t.Fatal("2·∞ ≠ ∞")
	}
	var s G1
	s.ScalarMult(NewG1(), big.NewInt(42))
	if !s.IsInfinity() {
		t.Fatal("[42]∞ ≠ ∞")
	}
}

func TestG2SmallScalars(t *testing.T) {
	g := G2Generator()
	var zero G2
	zero.ScalarMult(g, big.NewInt(0))
	if !zero.IsInfinity() {
		t.Fatal("[0]g2 ≠ ∞")
	}
	var one G2
	one.ScalarMult(g, big.NewInt(1))
	if !one.Equal(g) {
		t.Fatal("[1]g2 ≠ g2")
	}
	rm1 := new(big.Int).Sub(Order(), big.NewInt(1))
	var last, neg G2
	last.ScalarMult(g, rm1)
	neg.Neg(g)
	if !last.Equal(&neg) {
		t.Fatal("[r−1]g2 ≠ −g2")
	}
	var o G2
	o.ScalarMult(g, Order())
	if !o.IsInfinity() {
		t.Fatal("[r]g2 ≠ ∞")
	}
}

func TestG2AddCancellation(t *testing.T) {
	g, _, err := RandG2(nil)
	if err != nil {
		t.Fatal(err)
	}
	var neg, sum G2
	neg.Neg(g)
	sum.Add(g, &neg)
	if !sum.IsInfinity() {
		t.Fatal("Q + (−Q) ≠ ∞")
	}
	var same G2
	same.Add(g, NewG2())
	if !same.Equal(g) {
		t.Fatal("Q + ∞ ≠ Q")
	}
}

func TestPairingRightLinearity(t *testing.T) {
	p, _, err := RandG1(nil)
	if err != nil {
		t.Fatal(err)
	}
	q1, _, err := RandG2(nil)
	if err != nil {
		t.Fatal(err)
	}
	q2, _, err := RandG2(nil)
	if err != nil {
		t.Fatal(err)
	}
	var sum G2
	sum.Add(q1, q2)
	lhs := Pair(p, &sum)
	var rhs GT
	rhs.Mul(Pair(p, q1), Pair(p, q2))
	if !lhs.Equal(&rhs) {
		t.Fatal("pairing not additive in G2 argument")
	}
}

func TestPairingNegation(t *testing.T) {
	p, _, err := RandG1(nil)
	if err != nil {
		t.Fatal(err)
	}
	q, _, err := RandG2(nil)
	if err != nil {
		t.Fatal(err)
	}
	var negP G1
	negP.Neg(p)
	var prod GT
	prod.Mul(Pair(p, q), Pair(&negP, q))
	if !prod.IsOne() {
		t.Fatal("e(P,Q)·e(−P,Q) ≠ 1")
	}
	var negQ G2
	negQ.Neg(q)
	var inv GT
	inv.Inverse(Pair(p, q))
	if !Pair(p, &negQ).Equal(&inv) {
		t.Fatal("e(P,−Q) ≠ e(P,Q)⁻¹")
	}
}

func TestGTDivAndExpZero(t *testing.T) {
	a, err := RandGT(nil)
	if err != nil {
		t.Fatal(err)
	}
	var q GT
	q.Div(a, a)
	if !q.IsOne() {
		t.Fatal("a/a ≠ 1")
	}
	var e0 GT
	e0.Exp(a, big.NewInt(0))
	if !e0.IsOne() {
		t.Fatal("a⁰ ≠ 1")
	}
	var en GT
	en.Exp(a, big.NewInt(-1))
	var check GT
	check.Mul(a, &en)
	if !check.IsOne() {
		t.Fatal("a·a⁻¹ (via Exp) ≠ 1")
	}
}

func TestHashToG1DifferentTagsDiffer(t *testing.T) {
	a := HashToG1("tag-a", []byte("m"))
	b := HashToG1("tag-b", []byte("m"))
	if a.Equal(b) {
		t.Fatal("domain separation broken in HashToG1")
	}
}

func TestG2SetBytesRejectsCorruptedPoint(t *testing.T) {
	// Corrupting a valid encoding must never yield a usable point: the
	// decoder checks both the twist equation and the r-subgroup, so any
	// successful decode must still pass IsInSubgroup.
	g, _, err := RandG2(nil)
	if err != nil {
		t.Fatal(err)
	}
	enc := g.Bytes()
	enc[5] ^= 0x40
	pt, err := new(G2).SetBytes(enc)
	if err == nil && !pt.IsInSubgroup() {
		t.Fatal("SetBytes returned a non-subgroup point")
	}
}
