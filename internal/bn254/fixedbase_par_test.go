package bn254

import (
	"runtime"
	"testing"

	"repro/internal/par"
)

// Differential tests pinning the window-parallel fixed-base comb
// builds to their serial twins. GOMAXPROCS is raised above the core
// count so the parallel branch triggers even on a 1-CPU CI host (see
// parallel_test.go for the rationale).

func TestFixedBaseParallelMatchesSerialG1(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	var base g1Jac
	base.setAffine(g1Gen)
	serial := make([]g1Jac, fbWindows*fbTableSize)
	g1FixedBaseRowsSerial(serial, base)

	chunks := par.Chunks(fbWindows, fbParMinWindows)
	if len(chunks) < 2 {
		t.Fatalf("expected multiple window chunks at GOMAXPROCS=4, got %d", len(chunks))
	}
	parallel := make([]g1Jac, fbWindows*fbTableSize)
	g1FixedBaseRowsPar(parallel, base, chunks)

	affS := make([]G1, len(serial))
	affP := make([]G1, len(parallel))
	g1BatchToAffine(serial, affS)
	g1BatchToAffine(parallel, affP)
	for i := range affS {
		if !affS[i].Equal(&affP[i]) {
			t.Fatalf("G1 comb entry %d (window %d, digit %d) diverged", i, i/fbTableSize, i%fbTableSize+1)
		}
	}
}

func TestFixedBaseParallelMatchesSerialG2(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	var base g2Jac
	base.setAffine(G2Generator())
	serial := make([]g2Jac, fbWindows*fbTableSize)
	g2FixedBaseRowsSerial(serial, base)

	chunks := par.Chunks(fbWindows, fbParMinWindows)
	parallel := make([]g2Jac, fbWindows*fbTableSize)
	g2FixedBaseRowsPar(parallel, base, chunks)

	affS := make([]G2, len(serial))
	affP := make([]G2, len(parallel))
	g2BatchToAffine(serial, affS)
	g2BatchToAffine(parallel, affP)
	for i := range affS {
		if !affS[i].Equal(&affP[i]) {
			t.Fatalf("G2 comb entry %d (window %d, digit %d) diverged", i, i/fbTableSize, i%fbTableSize+1)
		}
	}
}

// The dispatcher must route through the serial twin when parallelism
// cannot help (one worker → one chunk), preserving the zero-overhead
// path on single-core hosts.
func TestFixedBaseDispatchSerialAtOneWorker(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)

	var base g1Jac
	base.setAffine(g1Gen)
	want := make([]g1Jac, fbWindows*fbTableSize)
	g1FixedBaseRowsSerial(want, base)
	got := make([]g1Jac, fbWindows*fbTableSize)
	g1FixedBaseRows(got, base)

	affW := make([]G1, len(want))
	affG := make([]G1, len(got))
	g1BatchToAffine(want, affW)
	g1BatchToAffine(got, affG)
	for i := range affW {
		if !affW[i].Equal(&affG[i]) {
			t.Fatalf("dispatcher diverged from serial twin at entry %d", i)
		}
	}
}
