package bn254

import (
	"math/big"
	"testing"
)

func BenchmarkPair(b *testing.B) {
	p, _, _ := RandG1(nil)
	q, _, _ := RandG2(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Pair(p, q)
	}
}

func BenchmarkPairReference(b *testing.B) {
	p, _, _ := RandG1(nil)
	q, _, _ := RandG2(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PairReference(p, q)
	}
}

// benchScalar returns the fixed scalar the scalar-mult and
// exponentiation benchmarks share.
func benchScalar(tb testing.TB) *big.Int {
	k, ok := new(big.Int).SetString("1234567890123456789012345678901234567890", 10)
	if !ok {
		tb.Fatal("bad benchmark scalar literal")
	}
	return k
}

func BenchmarkG1ScalarMult(b *testing.B) {
	g := G1Generator()
	k := benchScalar(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		new(G1).ScalarMult(g, k)
	}
}

func BenchmarkG2ScalarMult(b *testing.B) {
	g := G2Generator()
	k := benchScalar(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		new(G2).ScalarMult(g, k)
	}
}

func BenchmarkPairTable(b *testing.B) {
	p, _, _ := RandG1(nil)
	q, _, _ := RandG2(nil)
	tb := NewPairingTable(q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Pair(p)
	}
}

func BenchmarkNewPairingTable(b *testing.B) {
	q, _, _ := RandG2(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewPairingTable(q)
	}
}

func BenchmarkGTExp(b *testing.B) {
	e := GTGenerator()
	k := benchScalar(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		new(GT).Exp(e, k)
	}
}
