package bn254

import (
	"testing"
)

// TestPairingTableMatchesPair replays tables for several fixed Q
// against ≥100 random G1 arguments and compares with the cold pairing.
func TestPairingTableMatchesPair(t *testing.T) {
	qs := make([]*G2, 0, 4)
	for i := 0; i < 3; i++ {
		q, _, err := RandG2(nil)
		if err != nil {
			t.Fatal(err)
		}
		qs = append(qs, q)
	}
	qs = append(qs, G2Generator())
	for qi, q := range qs {
		tb := NewPairingTable(q)
		for i := 0; i < 30; i++ {
			p, _, err := RandG1(nil)
			if err != nil {
				t.Fatal(err)
			}
			if !tb.Pair(p).Equal(Pair(p, q)) {
				t.Fatalf("table %d iteration %d: PairingTable.Pair != Pair", qi, i)
			}
		}
		if !tb.Pair(NewG1()).IsOne() {
			t.Fatal("table pairing with G1 identity must be 1")
		}
	}
	// Identity-Q table: every replay is 1, and IsIdentity reports it.
	idTab := NewPairingTable(NewG2())
	if !idTab.IsIdentity() {
		t.Fatal("table from identity must report IsIdentity")
	}
	p, _, err := RandG1(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !idTab.Pair(p).IsOne() {
		t.Fatal("identity-Q table must pair to 1")
	}
}

func TestPairTableBatchMatchesPair(t *testing.T) {
	for i := 0; i < 10; i++ {
		n := 1 + i%4
		ps := make([]*G1, n)
		tabs := make([]*PairingTable, n)
		qs := make([]*G2, n)
		for j := range ps {
			p, _, err := RandG1(nil)
			if err != nil {
				t.Fatal(err)
			}
			q, _, err := RandG2(nil)
			if err != nil {
				t.Fatal(err)
			}
			if (i+j)%5 == 0 {
				p = NewG1()
			}
			ps[j], qs[j] = p, q
			tabs[j] = NewPairingTable(q)
		}
		got := PairTableBatch(ps, tabs)
		for j := range ps {
			if !got[j].Equal(Pair(ps[j], qs[j])) {
				t.Fatalf("iteration %d: PairTableBatch[%d] != Pair", i, j)
			}
		}
	}
}

// TestMultiPairMixedMatchesProduct checks the mixed cold+table product
// against a naive product of Pair calls, covering empty cold side,
// empty table side and identity entries on both.
func TestMultiPairMixedMatchesProduct(t *testing.T) {
	for i := 0; i < 15; i++ {
		nc := i % 3 // cold pairs
		nt := i % 4 // table pairs
		ps := make([]*G1, nc)
		qs := make([]*G2, nc)
		tps := make([]*G1, nt)
		tqs := make([]*G2, nt)
		tabs := make([]*PairingTable, nt)
		for j := 0; j < nc; j++ {
			p, _, err := RandG1(nil)
			if err != nil {
				t.Fatal(err)
			}
			q, _, err := RandG2(nil)
			if err != nil {
				t.Fatal(err)
			}
			if (i+j)%6 == 0 {
				p = NewG1()
			}
			ps[j], qs[j] = p, q
		}
		for j := 0; j < nt; j++ {
			p, _, err := RandG1(nil)
			if err != nil {
				t.Fatal(err)
			}
			q, _, err := RandG2(nil)
			if err != nil {
				t.Fatal(err)
			}
			if (i+j)%5 == 0 {
				p = NewG1()
			}
			if (i+j)%7 == 0 {
				q = NewG2()
			}
			tps[j], tqs[j] = p, q
			tabs[j] = NewPairingTable(q)
		}
		got := MultiPairMixed(ps, qs, tps, tabs)
		want := GTOne()
		for j := 0; j < nc; j++ {
			want.Mul(want, Pair(ps[j], qs[j]))
		}
		for j := 0; j < nt; j++ {
			want.Mul(want, Pair(tps[j], tqs[j]))
		}
		if !got.Equal(want) {
			t.Fatalf("iteration %d: MultiPairMixed mismatch (cold=%d tables=%d)", i, nc, nt)
		}
	}
	if !MultiPairMixed(nil, nil, nil, nil).IsOne() {
		t.Fatal("empty MultiPairMixed must be 1")
	}
}

// TestMultiPairMixedDivision exercises the e(P,Q)·e(−P,Q) = 1 pattern
// with one leg cold and one leg through a table — the BB-IBE
// decryption shape.
func TestMultiPairMixedDivision(t *testing.T) {
	p, _, err := RandG1(nil)
	if err != nil {
		t.Fatal(err)
	}
	q, _, err := RandG2(nil)
	if err != nil {
		t.Fatal(err)
	}
	var negP G1
	negP.Neg(p)
	tab := NewPairingTable(q)
	got := MultiPairMixed([]*G1{p}, []*G2{q}, []*G1{&negP}, []*PairingTable{tab})
	if !got.IsOne() {
		t.Fatal("e(P,Q)·e(−P,Q) must be 1 in mixed form")
	}
}
