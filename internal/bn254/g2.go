package bn254

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math/big"
	"sync"

	"repro/internal/ff"
)

// G2 is a point on the sextic twist E'(Fp2): y² = x³ + 3/ξ, stored in
// affine coordinates and guaranteed (when produced by this package) to
// lie in the order-r subgroup. The zero value is the point at infinity.
type G2 struct {
	x, y ff.Fp2
	inf  bool
}

// G2Bytes is the size of the canonical G2 encoding.
const G2Bytes = 2 * ff.Fp2Bytes

// g2GenOnce lazily derives a deterministic generator of the order-r
// subgroup by hashing to the twist and clearing the cofactor 2p−r.
var g2GenOnce = struct {
	once sync.Once
	g    G2
}{}

// G2Generator returns a copy of the package's deterministic G2 generator.
func G2Generator() *G2 {
	g2GenOnce.once.Do(func() {
		pt := HashToG2("BN254-G2-GENERATOR", nil)
		if pt.IsInfinity() {
			panic("bn254: derived G2 generator is the identity")
		}
		g2GenOnce.g.Set(pt)
	})
	return new(G2).Set(&g2GenOnce.g)
}

// NewG2 returns the point at infinity.
func NewG2() *G2 { return &G2{inf: true} }

// Set sets z = a and returns z.
func (z *G2) Set(a *G2) *G2 {
	z.x.Set(&a.x)
	z.y.Set(&a.y)
	z.inf = a.inf
	return z
}

// SetInfinity sets z to the group identity and returns z.
func (z *G2) SetInfinity() *G2 {
	z.x.SetZero()
	z.y.SetZero()
	z.inf = true
	return z
}

// IsInfinity reports whether z is the group identity.
func (z *G2) IsInfinity() bool { return z.inf }

// Equal reports whether z and a are the same point.
func (z *G2) Equal(a *G2) bool {
	if z.inf || a.inf {
		return z.inf == a.inf
	}
	return z.x.Equal(&a.x) && z.y.Equal(&a.y)
}

// IsOnTwist reports whether z satisfies the twist equation.
func (z *G2) IsOnTwist() bool {
	if z.inf {
		return true
	}
	var lhs, rhs ff.Fp2
	lhs.Square(&z.y)
	rhs.Square(&z.x)
	rhs.Mul(&rhs, &z.x)
	rhs.Add(&rhs, twistB)
	return lhs.Equal(&rhs)
}

// IsInSubgroup reports whether z lies in the order-r subgroup. The
// fast path is the ψ-relation check
//
//	[u+1]z + ψ([u]z) + ψ²([u]z) = ψ³([2u]z)
//
// (El Housni–Guillevic–Piellard 2022, §4.3): the GLS relation vector
// (u+1, u, u, −2u) annihilates exactly the r-subgroup of the twist, so
// one ~63-bit ladder plus three ψ applications replace the full [r]z
// reference multiplication. Differentially tested against
// IsInSubgroupReference on both subgroup and non-subgroup points.
func (z *G2) IsInSubgroup() bool {
	if z.inf {
		return true
	}
	g2Endo.once.Do(g2EndoInit)
	var acc g2Jac
	g2WNAFMult(&acc, z, u)
	var uZ G2
	acc.toAffine(&uZ)

	var lhs, t G2
	lhs.Add(&uZ, z) // [u+1]z
	g2Psi(&t, &uZ)
	lhs.Add(&lhs, &t) // + ψ([u]z)
	g2Psi(&t, &t)
	lhs.Add(&lhs, &t) // + ψ²([u]z)

	var rhs G2
	rhs.Double(&uZ) // [2u]z
	g2Psi(&rhs, &rhs)
	g2Psi(&rhs, &rhs)
	g2Psi(&rhs, &rhs) // ψ³([2u]z)
	return lhs.Equal(&rhs)
}

// IsInSubgroupReference is the definitional subgroup check [r]z = O
// (via the raw-scalar ladder, which does not assume membership), kept
// as the differential-testing twin of the fast ψ-relation check.
func (z *G2) IsInSubgroupReference() bool {
	var t G2
	g2ScalarMultRaw(&t, z, ff.Order())
	return t.IsInfinity()
}

// Neg sets z = −a and returns z.
func (z *G2) Neg(a *G2) *G2 {
	z.x.Set(&a.x)
	z.y.Neg(&a.y)
	z.inf = a.inf
	return z
}

// Add sets z = a + b and returns z.
func (z *G2) Add(a, b *G2) *G2 {
	if a.inf {
		return z.Set(b)
	}
	if b.inf {
		return z.Set(a)
	}
	var lambda ff.Fp2
	if a.x.Equal(&b.x) {
		var negY ff.Fp2
		negY.Neg(&b.y)
		if a.y.Equal(&negY) {
			return z.SetInfinity()
		}
		var num, den ff.Fp2
		num.Square(&a.x)
		num.Mul(&num, fp2Three)
		den.Double(&a.y)
		den.Inverse(&den)
		lambda.Mul(&num, &den)
	} else {
		var num, den ff.Fp2
		num.Sub(&b.y, &a.y)
		den.Sub(&b.x, &a.x)
		den.Inverse(&den)
		lambda.Mul(&num, &den)
	}
	var x3, y3 ff.Fp2
	x3.Square(&lambda)
	x3.Sub(&x3, &a.x)
	x3.Sub(&x3, &b.x)
	y3.Sub(&a.x, &x3)
	y3.Mul(&y3, &lambda)
	y3.Sub(&y3, &a.y)
	z.x.Set(&x3)
	z.y.Set(&y3)
	z.inf = false
	return z
}

// Double sets z = 2a and returns z.
func (z *G2) Double(a *G2) *G2 { return z.Add(a, a) }

// g2Jac is a Jacobian-coordinate point used internally by ScalarMult.
type g2Jac struct {
	x, y, zz ff.Fp2 // affine = (X/Z², Y/Z³); Z = 0 means infinity
}

func (j *g2Jac) setInfinity() {
	j.x.SetOne()
	j.y.SetOne()
	j.zz.SetZero()
}

func (j *g2Jac) setAffine(a *G2) {
	if a.inf {
		j.setInfinity()
		return
	}
	j.x.Set(&a.x)
	j.y.Set(&a.y)
	j.zz.SetOne()
}

func (j *g2Jac) toAffine(out *G2) {
	if j.zz.IsZero() {
		out.SetInfinity()
		return
	}
	var zinv, zinv2, zinv3 ff.Fp2
	zinv.Inverse(&j.zz)
	zinv2.Square(&zinv)
	zinv3.Mul(&zinv2, &zinv)
	out.x.Mul(&j.x, &zinv2)
	out.y.Mul(&j.y, &zinv3)
	out.inf = false
}

// double sets j = 2j (dbl-2009-l, a = 0).
func (j *g2Jac) double() {
	if j.zz.IsZero() {
		return
	}
	var a, b, c, d, e, f ff.Fp2
	a.Square(&j.x)
	b.Square(&j.y)
	c.Square(&b)
	d.Add(&j.x, &b)
	d.Square(&d)
	d.Sub(&d, &a)
	d.Sub(&d, &c)
	d.Double(&d)
	e.Double(&a)
	e.Add(&e, &a) // 3a
	f.Square(&e)

	var x3, y3, z3 ff.Fp2
	x3.Double(&d)
	x3.Sub(&f, &x3)
	y3.Sub(&d, &x3)
	y3.Mul(&y3, &e)
	var c8 ff.Fp2
	c8.Double(&c)
	c8.Double(&c8)
	c8.Double(&c8) // 8c
	y3.Sub(&y3, &c8)
	z3.Mul(&j.y, &j.zz)
	z3.Double(&z3)

	j.x.Set(&x3)
	j.y.Set(&y3)
	j.zz.Set(&z3)
}

// addAffine sets j = j + a for an affine point a (madd-2007-bl).
func (j *g2Jac) addAffine(a *G2) {
	if a.inf {
		return
	}
	if j.zz.IsZero() {
		j.setAffine(a)
		return
	}
	var z1z1, u2, s2 ff.Fp2
	z1z1.Square(&j.zz)
	u2.Mul(&a.x, &z1z1)
	s2.Mul(&a.y, &j.zz)
	s2.Mul(&s2, &z1z1)

	if u2.Equal(&j.x) {
		if s2.Equal(&j.y) {
			j.double()
			return
		}
		j.setInfinity()
		return
	}

	var h, hh, i, jj, rr, v ff.Fp2
	h.Sub(&u2, &j.x)
	hh.Square(&h)
	i.Double(&hh)
	i.Double(&i) // 4hh
	jj.Mul(&h, &i)
	rr.Sub(&s2, &j.y)
	rr.Double(&rr)
	v.Mul(&j.x, &i)

	var x3, y3, z3, t ff.Fp2
	x3.Square(&rr)
	x3.Sub(&x3, &jj)
	t.Double(&v)
	x3.Sub(&x3, &t)
	y3.Sub(&v, &x3)
	y3.Mul(&y3, &rr)
	t.Mul(&j.y, &jj)
	t.Double(&t)
	y3.Sub(&y3, &t)
	z3.Add(&j.zz, &h)
	z3.Square(&z3)
	z3.Sub(&z3, &z1z1)
	z3.Sub(&z3, &hh)

	j.x.Set(&x3)
	j.y.Set(&y3)
	j.zz.Set(&z3)
}

// ScalarMult sets z = [k]a and returns z. k is reduced mod r — valid
// precisely because every externally obtainable G2 value lies in the
// order-r subgroup (the generator, hashing and arithmetic stay inside
// it, and SetBytes validates membership). The fast path is the GLS
// endomorphism method: k ≡ k₀ + k₁μ + k₂μ² + k₃μ³ (mod r) with
// |kᵢ| ≈ r^(1/4) and [k]a = Σ [kᵢ]ψⁱ(a) evaluated by one interleaved
// wNAF ladder over a quarter-length doubling chain (see endo.go).
// ScalarMultWNAF retains the plain single-ladder tier and
// ScalarMultReference the naive loop, both for differential testing.
// Cofactor clearing of points outside the subgroup uses the internal
// raw-scalar path g2ScalarMultRaw instead. Not constant-time: the
// decomposition and digit patterns of k leak through timing.
//
//dlr:noalloc
func (z *G2) ScalarMult(a *G2, k *big.Int) *G2 {
	e := ff.ReduceScalar(k)
	if e == [4]uint64{} || a.inf {
		return z.SetInfinity()
	}
	var acc g2Jac
	if !g2GLSMultLimbs(&acc, a, &e) {
		// Limb-unready lattice (never the production one): big.Int tier.
		//dlrlint:ignore hot-path-alloc cold fallback for limb-unready lattices, never taken in production
		g2GLSMult(&acc, a, new(big.Int).Mod(k, ff.Order()))
	}
	acc.toAffine(z)
	return z
}

// ScalarMultWNAF is the plain width-4 wNAF ladder without the GLS
// split — the previous fast path, retained as the middle tier for
// differential tests and the E12 endomorphism ablation. Semantics
// match ScalarMult: k is reduced mod r, so it too assumes a lies in
// the r-subgroup.
func (z *G2) ScalarMultWNAF(a *G2, k *big.Int) *G2 {
	e := ff.ReduceScalar(k)
	if e == [4]uint64{} || a.inf {
		return z.SetInfinity()
	}
	var acc g2Jac
	g2WNAFMultLimbs(&acc, a, &e)
	acc.toAffine(z)
	return z
}

// g2ScalarMultRaw sets z = [k]a using the raw integer value of k (no
// reduction mod r); negative k negates the base. This is the path for
// points that may lie OUTSIDE the r-subgroup, where reducing mod r
// would be wrong: cofactor clearing in HashToG2 and the reference
// subgroup check.
func g2ScalarMultRaw(z *G2, a *G2, k *big.Int) *G2 {
	e := k
	var negBase G2
	base := a
	if k.Sign() < 0 {
		e = new(big.Int).Neg(k)
		negBase.Neg(a)
		base = &negBase
	}
	if e.Sign() == 0 || a.inf {
		return z.SetInfinity()
	}
	var acc g2Jac
	g2WNAFMult(&acc, base, e)
	acc.toAffine(z)
	return z
}

// ScalarMultReference is the naive double-and-add scalar
// multiplication the fast ScalarMult is differentially tested against.
// Semantics are identical: k is reduced mod r (subgroup points only).
func (z *G2) ScalarMultReference(a *G2, k *big.Int) *G2 {
	e := new(big.Int).Mod(k, ff.Order())
	if e.Sign() == 0 || a.inf {
		return z.SetInfinity()
	}
	var acc g2Jac
	acc.setInfinity()
	b := new(G2).Set(a)
	for i := e.BitLen() - 1; i >= 0; i-- {
		acc.double()
		if e.Bit(i) == 1 {
			acc.addAffine(b)
		}
	}
	acc.toAffine(z)
	return z
}

// ScalarBaseMult sets z = [k]·G2Generator and returns z. Like its G1
// counterpart it walks a lazily-built 64×15 table of precomputed
// affine generator multiples (radix-16 windows, mixed additions only).
// k is reduced mod r, which is always valid here because the generator
// has exact order r — including for negative k.
//
//dlr:noalloc
func (z *G2) ScalarBaseMult(k *big.Int) *G2 {
	e := ff.ReduceScalar(k)
	if e == [4]uint64{} {
		return z.SetInfinity()
	}
	tbl := g2FixedBaseTable()
	var acc g2Jac
	acc.setInfinity()
	for w := 0; w < fbWindows; w++ {
		if d := fbDigitLimbs(&e, w); d != 0 {
			acc.addAffine(&tbl[w][d-1])
		}
	}
	acc.toAffine(z)
	return z
}

// ScalarBaseMultReference delegates to the generic reference path —
// the pre-optimization behaviour, kept for differential tests and
// benchmarks.
func (z *G2) ScalarBaseMultReference(k *big.Int) *G2 {
	return z.ScalarMultReference(G2Generator(), k)
}

// RandG2 returns [k]·G2 for uniformly random k together with k.
func RandG2(rng io.Reader) (*G2, *big.Int, error) {
	if rng == nil {
		rng = rand.Reader
	}
	k, err := rand.Int(rng, ff.Order())
	if err != nil {
		return nil, nil, fmt.Errorf("bn254: sampling scalar: %w", err)
	}
	return new(G2).ScalarBaseMult(k), k, nil
}

// HashToG2 hashes (tag, msg) to the order-r subgroup of the twist by
// try-and-increment followed by cofactor clearing. Nobody learns the
// discrete log of the result.
func HashToG2(tag string, msg []byte) *G2 {
	for ctr := uint32(0); ; ctr++ {
		var x ff.Fp2
		x.C0.Set(hashToFp(tag, msg, ctr, 0))
		x.C1.Set(hashToFp(tag, msg, ctr, 1))

		var rhs ff.Fp2
		rhs.Square(&x)
		rhs.Mul(&rhs, &x)
		rhs.Add(&rhs, twistB)
		var y ff.Fp2
		if _, ok := y.Sqrt(&rhs); !ok {
			continue
		}
		cand := G2{x: x, y: y}
		// cand lies on the twist but (almost surely) outside the
		// r-subgroup: clear the cofactor with the raw-scalar path.
		var cleared G2
		g2ScalarMultRaw(&cleared, &cand, g2Cofactor)
		if cleared.IsInfinity() {
			continue
		}
		return &cleared
	}
}

// hashToFp derives a base-field element from (tag, msg, ctr, idx).
func hashToFp(tag string, msg []byte, ctr uint32, idx byte) *ff.Fp {
	h := sha256.New()
	h.Write([]byte(tag))
	var buf [5]byte
	binary.BigEndian.PutUint32(buf[:4], ctr)
	buf[4] = idx
	h.Write(buf[:])
	h.Write(msg)
	d1 := h.Sum(nil)
	d2 := sha256.Sum256(append(d1, 0x01))
	return ff.NewFp(new(big.Int).SetBytes(append(d1, d2[:]...)))
}

// Bytes returns the canonical encoding x ‖ y (Fp2 coordinates), with the
// all-zero string reserved for the identity.
func (z *G2) Bytes() []byte {
	if z.inf {
		return make([]byte, G2Bytes)
	}
	out := make([]byte, 0, G2Bytes)
	out = append(out, z.x.Bytes()...)
	out = append(out, z.y.Bytes()...)
	return out
}

// SetBytes decodes the canonical encoding, rejecting points that are off
// the twist or outside the order-r subgroup.
func (z *G2) SetBytes(b []byte) (*G2, error) {
	if len(b) != G2Bytes {
		return nil, fmt.Errorf("bn254: G2 encoding must be %d bytes, got %d", G2Bytes, len(b))
	}
	allZero := true
	for _, c := range b {
		if c != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		return z.SetInfinity(), nil
	}
	var x, y ff.Fp2
	if _, err := x.SetBytes(b[:ff.Fp2Bytes]); err != nil {
		return nil, err
	}
	if _, err := y.SetBytes(b[ff.Fp2Bytes:]); err != nil {
		return nil, err
	}
	cand := G2{x: x, y: y}
	if !cand.IsOnTwist() {
		return nil, fmt.Errorf("bn254: G2 point not on twist")
	}
	if !cand.IsInSubgroup() {
		return nil, fmt.Errorf("bn254: G2 point not in order-r subgroup")
	}
	return z.Set(&cand), nil
}

// String implements fmt.Stringer.
func (z *G2) String() string {
	if z.inf {
		return "G2(∞)"
	}
	return fmt.Sprintf("G2(%s, %s)", z.x.String(), z.y.String())
}
