package bn254

import (
	"math/big"

	"repro/internal/ff"
	"repro/internal/scalar"
)

// This file is the allocation-free twin of the endomorphism scalar
// multiplications in endo.go/scalarmult.go. The big.Int pipeline
// (Mod → Lattice.Decompose → ff.WNAF → interleaved ladder) is replaced
// by fixed-width limb arithmetic end to end: ff.ReduceScalar reduces
// the caller's scalar into [4]uint64, scalar.DecomposeInto splits it
// with the fixed-point Babai lattice data, and ff.AppendWNAF recodes
// each sub-scalar into a caller-provided stack buffer. The ladder state
// (odd-multiple tables and digit slices) lives in g1LadderTerm /
// g2LadderTerm values that the single-point entries keep entirely on
// the stack, so a steady-state ScalarMult performs zero heap
// allocations.
//
// Every limb routine returns bool and leaves the big.Int tier
// (g1GLVMult, g2GLSMult, g1MultiWNAF, …) in place as its fallback and
// differential twin: a lattice whose fixed-point data did not fit
// (scalar.LimbReady() == false) or a sub-scalar overflowing four limbs
// routes through the original code path and still produces the right
// answer. The production BN254 lattices always take the limb path —
// TestLimbMultMatchesBig pins the two tiers to identical outputs.

// g1LadderTerm is one term of an interleaved wNAF ladder: the signed
// digits of its sub-scalar and the odd multiples {1,3,5,7}·P. Values
// are plain data so callers can keep small fixed arrays of terms on
// the stack.
type g1LadderTerm struct {
	digits []int8
	tbl    [1 << (wnafWidth - 2)]g1Jac
}

// init fills the odd-multiple table for base a. The digit slice is
// assigned by the caller, directly at the call site: a store through the
// receiver pointer would be treated as a heap leak by escape analysis
// and drag the caller's stack digit buffer onto the heap.
func (t *g1LadderTerm) init(a *G1) {
	t.tbl[0].setAffine(a)
	var twoA g1Jac
	twoA.setAffine(a)
	twoA.double()
	for j := 1; j < len(t.tbl); j++ {
		t.tbl[j] = t.tbl[j-1]
		t.tbl[j].add(&twoA)
	}
}

// g1LadderRun evaluates acc = Σ termᵢ over one shared doubling chain —
// the same walk as g1MultiWNAF, operating on prepared terms.
func g1LadderRun(acc *g1Jac, terms []g1LadderTerm) {
	maxLen := 0
	for i := range terms {
		if len(terms[i].digits) > maxLen {
			maxLen = len(terms[i].digits)
		}
	}
	acc.setInfinity()
	for i := maxLen - 1; i >= 0; i-- {
		acc.double()
		for k := range terms {
			t := &terms[k]
			if i >= len(t.digits) {
				continue
			}
			if d := t.digits[i]; d > 0 {
				acc.add(&t.tbl[d>>1])
			} else if d < 0 {
				n := t.tbl[(-d)>>1]
				n.neg()
				acc.add(&n)
			}
		}
	}
}

// g2LadderTerm is g1LadderTerm on the twist.
type g2LadderTerm struct {
	digits []int8
	tbl    [1 << (wnafWidth - 2)]g2Jac
}

func (t *g2LadderTerm) init(a *G2) {
	t.tbl[0].setAffine(a)
	var twoA g2Jac
	twoA.setAffine(a)
	twoA.double()
	for j := 1; j < len(t.tbl); j++ {
		t.tbl[j] = t.tbl[j-1]
		t.tbl[j].add(&twoA)
	}
}

func g2LadderRun(acc *g2Jac, terms []g2LadderTerm) {
	maxLen := 0
	for i := range terms {
		if len(terms[i].digits) > maxLen {
			maxLen = len(terms[i].digits)
		}
	}
	acc.setInfinity()
	for i := maxLen - 1; i >= 0; i-- {
		acc.double()
		for k := range terms {
			t := &terms[k]
			if i >= len(t.digits) {
				continue
			}
			if d := t.digits[i]; d > 0 {
				acc.add(&t.tbl[d>>1])
			} else if d < 0 {
				n := t.tbl[(-d)>>1]
				n.neg()
				acc.add(&n)
			}
		}
	}
}

// g1WNAFMultLimbs is the limb twin of g1WNAFMult: acc = [e]a for a
// reduced non-zero e, one term, stack digit buffer.
func g1WNAFMultLimbs(acc *g1Jac, a *G1, e *[4]uint64) {
	var buf [ff.WNAFMaxDigits]int8
	var terms [1]g1LadderTerm
	terms[0].digits = ff.AppendWNAF(buf[:0], *e, wnafWidth)
	terms[0].init(a)
	g1LadderRun(acc, terms[:])
}

// g2WNAFMultLimbs is g1WNAFMultLimbs on the twist.
func g2WNAFMultLimbs(acc *g2Jac, a *G2, e *[4]uint64) {
	var buf [ff.WNAFMaxDigits]int8
	var terms [1]g2LadderTerm
	terms[0].digits = ff.AppendWNAF(buf[:0], *e, wnafWidth)
	terms[0].init(a)
	g2LadderRun(acc, terms[:])
}

// g1GLVMultLimbs sets acc = [e]a via the GLV split computed entirely in
// limb arithmetic. Reports false — without touching acc — when the
// lattice's fixed-point data cannot decompose e; the caller then falls
// back to g1GLVMult.
func g1GLVMultLimbs(acc *g1Jac, a *G1, e *[4]uint64) bool {
	g1Endo.once.Do(g1EndoInit)
	var subs [2]scalar.SubScalar
	if !g1Endo.lat.DecomposeInto(e, subs[:]) {
		return false
	}
	var bases [2]G1
	bases[0].Set(a)
	g1Phi(&bases[1], a, &g1Endo.beta)
	var bufs [2][ff.WNAFMaxDigits]int8
	var terms [2]g1LadderTerm
	n := 0
	for i := range subs {
		if subs[i].IsZero() || bases[i].inf {
			continue
		}
		if subs[i].Neg {
			bases[i].Neg(&bases[i])
		}
		terms[n].digits = ff.AppendWNAF(bufs[n][:0], subs[i].V, wnafWidth)
		terms[n].init(&bases[i])
		n++
	}
	g1LadderRun(acc, terms[:n])
	return true
}

// g2GLSMultLimbs is the 4-dimensional GLS analogue for r-subgroup
// points. The ψ chain is built on the UNNEGATED bases first and signs
// are folded in afterwards: ψ is applied to base i−1 to produce base i,
// so negating a base before its successor exists would propagate the
// sign into every later power of ψ.
func g2GLSMultLimbs(acc *g2Jac, a *G2, e *[4]uint64) bool {
	g2Endo.once.Do(g2EndoInit)
	var subs [4]scalar.SubScalar
	if !g2Endo.lat.DecomposeInto(e, subs[:]) {
		return false
	}
	var bases [4]G2
	bases[0].Set(a)
	for i := 1; i < len(bases); i++ {
		g2Psi(&bases[i], &bases[i-1])
	}
	var bufs [4][ff.WNAFMaxDigits]int8
	var terms [4]g2LadderTerm
	n := 0
	for i := range subs {
		if subs[i].IsZero() || bases[i].inf {
			continue
		}
		if subs[i].Neg {
			bases[i].Neg(&bases[i])
		}
		terms[n].digits = ff.AppendWNAF(bufs[n][:0], subs[i].V, wnafWidth)
		terms[n].init(&bases[i])
		n++
	}
	g2LadderRun(acc, terms[:n])
	return true
}

// glvSplitLimbs decomposes one reduced scalar into GLV ladder terms,
// appending the digit recodings to the shared flat buffer and the
// prepared terms to terms. The caller must size the digit buffer so
// append never reallocates (earlier terms hold slices into it).
// Reports false when the limb decomposition is unavailable.
func glvSplitLimbs(p *G1, e *[4]uint64, terms []g1LadderTerm, digits []int8) ([]g1LadderTerm, []int8, bool) {
	var subs [2]scalar.SubScalar
	if !g1Endo.lat.DecomposeInto(e, subs[:]) {
		return terms, digits, false
	}
	var bases [2]G1
	bases[0].Set(p)
	g1Phi(&bases[1], p, &g1Endo.beta)
	for j := range subs {
		if subs[j].IsZero() || bases[j].inf {
			continue
		}
		if subs[j].Neg {
			bases[j].Neg(&bases[j])
		}
		start := len(digits)
		digits = ff.AppendWNAF(digits, subs[j].V, wnafWidth)
		terms = append(terms, g1LadderTerm{})
		terms[len(terms)-1].digits = digits[start:len(digits):len(digits)]
		terms[len(terms)-1].init(&bases[j])
	}
	return terms, digits, true
}

// glsSplitLimbs is glvSplitLimbs for the 4-way GLS split on the twist.
func glsSplitLimbs(q *G2, e *[4]uint64, terms []g2LadderTerm, digits []int8) ([]g2LadderTerm, []int8, bool) {
	var subs [4]scalar.SubScalar
	if !g2Endo.lat.DecomposeInto(e, subs[:]) {
		return terms, digits, false
	}
	var bases [4]G2
	bases[0].Set(q)
	for i := 1; i < len(bases); i++ {
		g2Psi(&bases[i], &bases[i-1])
	}
	for j := range subs {
		if subs[j].IsZero() || bases[j].inf {
			continue
		}
		if subs[j].Neg {
			bases[j].Neg(&bases[j])
		}
		start := len(digits)
		digits = ff.AppendWNAF(digits, subs[j].V, wnafWidth)
		terms = append(terms, g2LadderTerm{})
		terms[len(terms)-1].digits = digits[start:len(digits):len(digits)]
		terms[len(terms)-1].init(&bases[j])
	}
	return terms, digits, true
}

// strausFallbackG1 collects the big.Int GLV split of one scalar for the
// rare limb-unready case (shared by the Straus and Pippenger entries).
func strausFallbackG1(p *G1, k *big.Int, pts []*G1, es []*big.Int) ([]*G1, []*big.Int) {
	sp, se := endoSplitG1(p, new(big.Int).Mod(k, ff.Order()))
	return append(pts, sp...), append(es, se...)
}

func strausFallbackG2(q *G2, k *big.Int, pts []*G2, es []*big.Int) ([]*G2, []*big.Int) {
	sp, se := endoSplitG2(q, new(big.Int).Mod(k, ff.Order()))
	return append(pts, sp...), append(es, se...)
}
