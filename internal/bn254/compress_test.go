package bn254

import (
	"bytes"
	"crypto/rand"
	"math/big"
	"testing"

	"repro/internal/ff"
)

func TestG1CompressedRoundTrip(t *testing.T) {
	pts := []*G1{NewG1(), G1Generator()}
	for i := 0; i < 16; i++ {
		p, _, err := RandG1(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, p, new(G1).Neg(p))
	}
	for i, p := range pts {
		enc := p.BytesCompressed()
		if len(enc) != G1BytesCompressed {
			t.Fatalf("point %d: encoding is %d bytes, want %d", i, len(enc), G1BytesCompressed)
		}
		got, err := new(G1).SetBytesCompressed(enc)
		if err != nil {
			t.Fatalf("point %d: decode: %v", i, err)
		}
		if !got.Equal(p) {
			t.Fatalf("point %d: round trip changed the point", i)
		}
		if !bytes.Equal(got.AppendCompressed(nil), enc) {
			t.Fatalf("point %d: re-encoding differs", i)
		}
	}
}

func TestG2CompressedRoundTrip(t *testing.T) {
	pts := []*G2{NewG2(), G2Generator()}
	for i := 0; i < 16; i++ {
		p, _, err := RandG2(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, p, new(G2).Neg(p))
	}
	for i, p := range pts {
		enc := p.BytesCompressed()
		if len(enc) != G2BytesCompressed {
			t.Fatalf("point %d: encoding is %d bytes, want %d", i, len(enc), G2BytesCompressed)
		}
		got, err := new(G2).SetBytesCompressed(enc)
		if err != nil {
			t.Fatalf("point %d: decode: %v", i, err)
		}
		if !got.Equal(p) {
			t.Fatalf("point %d: round trip changed the point", i)
		}
	}
}

func TestCompressedParityDistinguishesRoots(t *testing.T) {
	p, _, err := RandG1(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	n := new(G1).Neg(p)
	ep, en := p.BytesCompressed(), n.BytesCompressed()
	if ep[0] == en[0] {
		t.Fatalf("G1 P and −P share flag 0x%02x", ep[0])
	}
	if !bytes.Equal(ep[1:], en[1:]) {
		t.Fatal("G1 P and −P differ beyond the flag byte")
	}
	q, _, err := RandG2(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	m := new(G2).Neg(q)
	eq, em := q.BytesCompressed(), m.BytesCompressed()
	if eq[0] == em[0] {
		t.Fatalf("G2 Q and −Q share flag 0x%02x", eq[0])
	}
}

func TestCompressedRejects(t *testing.T) {
	g1 := G1Generator().BytesCompressed()
	g2 := G2Generator().BytesCompressed()

	// Wrong length.
	if _, err := new(G1).SetBytesCompressed(g1[:G1BytesCompressed-1]); err == nil {
		t.Fatal("short G1 encoding accepted")
	}
	if _, err := new(G2).SetBytesCompressed(append(g2, 0)); err == nil {
		t.Fatal("long G2 encoding accepted")
	}

	// Unknown flag.
	bad := append([]byte(nil), g1...)
	bad[0] = 0x04
	if _, err := new(G1).SetBytesCompressed(bad); err == nil {
		t.Fatal("unknown G1 flag accepted")
	}
	bad = append([]byte(nil), g2...)
	bad[0] = 0x01
	if _, err := new(G2).SetBytesCompressed(bad); err == nil {
		t.Fatal("unknown G2 flag accepted")
	}

	// Infinity with a nonzero body.
	bad = make([]byte, G1BytesCompressed)
	bad[5] = 1
	if _, err := new(G1).SetBytesCompressed(bad); err == nil {
		t.Fatal("G1 infinity with nonzero body accepted")
	}
	bad = make([]byte, G2BytesCompressed)
	bad[G2BytesCompressed-1] = 1
	if _, err := new(G2).SetBytesCompressed(bad); err == nil {
		t.Fatal("G2 infinity with nonzero body accepted")
	}

	// Non-canonical x (≥ p).
	bad = append([]byte(nil), g1...)
	for i := 1; i < len(bad); i++ {
		bad[i] = 0xff
	}
	if _, err := new(G1).SetBytesCompressed(bad); err == nil {
		t.Fatal("non-canonical G1 x accepted")
	}

	// x off the curve: scan for an x with no square root of x³+b.
	foundOffCurve := false
	for xi := int64(0); xi < 64 && !foundOffCurve; xi++ {
		x := ff.FpFromInt64(xi)
		var rhs, y ff.Fp
		rhs.Square(x)
		rhs.Mul(&rhs, x)
		rhs.Add(&rhs, ff.FpFromInt64(3))
		if _, ok := y.Sqrt(&rhs); !ok {
			enc := make([]byte, 0, G1BytesCompressed)
			enc = append(enc, compFlagEvenY)
			enc = append(enc, x.Bytes()...)
			if _, err := new(G1).SetBytesCompressed(enc); err == nil {
				t.Fatal("off-curve G1 x accepted")
			}
			foundOffCurve = true
		}
	}
	if !foundOffCurve {
		t.Fatal("no off-curve x found in scan (test broken)")
	}

	// On-twist but out of the order-r subgroup: decompressing such an x
	// must fail the subgroup check regardless of flag.
	h := findTwistNonSubgroupPoint(t)
	enc := make([]byte, 0, G2BytesCompressed)
	enc = append(enc, compFlagEvenY)
	enc = append(enc, h.x.Bytes()...)
	if _, err := new(G2).SetBytesCompressed(enc); err == nil {
		t.Fatal("non-subgroup G2 x accepted (even flag)")
	}
	enc[0] = compFlagOddY
	if _, err := new(G2).SetBytesCompressed(enc); err == nil {
		t.Fatal("non-subgroup G2 x accepted (odd flag)")
	}
}

// findTwistNonSubgroupPoint scans small x values for a twist point
// outside the order-r subgroup.
func findTwistNonSubgroupPoint(t *testing.T) *G2 {
	t.Helper()
	for c0 := int64(0); c0 < 200; c0++ {
		var x ff.Fp2
		x.C0.Set(ff.FpFromInt64(c0))
		x.C1.SetOne()
		var rhs, y ff.Fp2
		rhs.Square(&x)
		rhs.Mul(&rhs, &x)
		rhs.Add(&rhs, twistB)
		if _, ok := y.Sqrt(&rhs); !ok {
			continue
		}
		cand := &G2{x: x, y: y}
		if !cand.IsOnTwist() {
			t.Fatal("sqrt produced an off-twist point (test broken)")
		}
		if !cand.IsInSubgroup() {
			return cand
		}
	}
	t.Skip("no non-subgroup twist point found in scan")
	return nil
}

// FuzzPointCompressed round-trips fuzz-derived G1/G2 points through the
// compressed codec and checks that mutated encodings either decode to a
// valid in-subgroup point or are rejected — never a silent corruption.
func FuzzPointCompressed(f *testing.F) {
	f.Add(make([]byte, 32), byte(0), false)
	f.Add([]byte{1, 2, 3}, byte(0x04), true)
	f.Add(ff.Order().Bytes(), byte(0xff), false)
	f.Fuzz(func(t *testing.T, seed []byte, mut byte, flip bool) {
		k := new(big.Int).SetBytes(seed)
		p1 := new(G1).ScalarBaseMult(k)
		enc1 := p1.BytesCompressed()
		got1, err := new(G1).SetBytesCompressed(enc1)
		if err != nil {
			t.Fatalf("G1 round trip rejected: %v", err)
		}
		if !got1.Equal(p1) {
			t.Fatal("G1 round trip changed the point")
		}

		p2 := new(G2).ScalarBaseMult(k)
		enc2 := p2.BytesCompressed()
		got2, err := new(G2).SetBytesCompressed(enc2)
		if err != nil {
			t.Fatalf("G2 round trip rejected: %v", err)
		}
		if !got2.Equal(p2) {
			t.Fatal("G2 round trip changed the point")
		}

		// Mutate: any accepted mutation must still be a valid group
		// element (on curve / in subgroup) that re-encodes canonically.
		idx := int(mut) % len(enc2)
		enc2[idx] ^= mut | 1
		if flip {
			enc2[0] ^= 0x01
		}
		if d, err := new(G2).SetBytesCompressed(enc2); err == nil {
			if !d.IsOnTwist() || !d.IsInSubgroup() {
				t.Fatal("mutated G2 encoding decoded to an invalid point")
			}
			if !bytes.Equal(d.BytesCompressed(), enc2) {
				t.Fatal("mutated G2 encoding decoded non-canonically")
			}
		}
		idx = int(mut) % len(enc1)
		enc1[idx] ^= mut | 1
		if d, err := new(G1).SetBytesCompressed(enc1); err == nil {
			if !d.IsOnCurve() {
				t.Fatal("mutated G1 encoding decoded to an off-curve point")
			}
			if !bytes.Equal(d.BytesCompressed(), enc1) {
				t.Fatal("mutated G1 encoding decoded non-canonically")
			}
		}
	})
}
