package bn254

import (
	"math/big"
	"testing"

	"repro/internal/ff"
)

// FuzzMultiExp differentially tests the Pippenger bucket method against
// the Straus tier on fuzz-chosen term counts, scalars, and repeated /
// negated / identity points. The point set is derived deterministically
// from the scalar material so the corpus stays compact.
func FuzzMultiExp(f *testing.F) {
	f.Add(uint8(1), make([]byte, 32), false)
	f.Add(uint8(17), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, true)
	f.Add(uint8(64), ff.Order().Bytes(), false)
	f.Fuzz(func(t *testing.T, n uint8, seed []byte, withEdge bool) {
		terms := int(n%24) + 1
		if len(seed) == 0 {
			seed = []byte{0}
		}
		pts := make([]*G1, terms)
		es := make([]*big.Int, terms)
		for i := 0; i < terms; i++ {
			// Rotate the seed so every term sees different material.
			off := (i * 7) % len(seed)
			chunk := append(append([]byte{}, seed[off:]...), seed[:off]...)
			e := new(big.Int).SetBytes(chunk)
			e.Mod(e, new(big.Int).Lsh(ff.Order(), 1)) // exercise ≥r inputs too
			es[i] = e
			k := new(big.Int).Add(e, big.NewInt(int64(i)+1))
			pts[i] = new(G1).ScalarBaseMult(k)
		}
		if withEdge && terms >= 3 {
			pts[0].SetInfinity()
			es[1] = big.NewInt(0)
			pts[2] = new(G1).Neg(pts[terms-1])
			es[2] = new(big.Int).Set(es[terms-1])
		}
		want := G1MultiScalarMult(pts, es)
		got := G1MultiExpPippenger(pts, es)
		if !got.Equal(want) {
			t.Fatalf("Pippenger diverged from Straus: terms=%d", terms)
		}
		if d := G1MultiExp(pts, es); !d.Equal(want) {
			t.Fatalf("dispatcher diverged: terms=%d", terms)
		}
	})
}
