package bn254

import (
	"crypto/rand"
	"math/big"
	"testing"

	"repro/internal/ff"
)

// randScalar draws a uniform scalar below 2^bits.
func randScalarBits(t *testing.T, bits uint) *big.Int {
	t.Helper()
	k, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), bits))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestG1ScalarMultMatchesReference(t *testing.T) {
	for i := 0; i < 100; i++ {
		a, _, err := RandG1(nil)
		if err != nil {
			t.Fatal(err)
		}
		k := randScalarBits(t, 256) // includes values > r
		if i%5 == 1 {
			k.Neg(k)
		}
		if i%11 == 0 {
			k.SetInt64(int64(i % 4)) // small scalars 0..3
		}
		var fast, slow G1
		fast.ScalarMult(a, k)
		slow.ScalarMultReference(a, k)
		if !fast.Equal(&slow) {
			t.Fatalf("iteration %d: ScalarMult != ScalarMultReference for k=%v", i, k)
		}
		if !fast.IsOnCurve() {
			t.Fatalf("iteration %d: result off curve", i)
		}
	}
}

func TestG2ScalarMultMatchesReference(t *testing.T) {
	for i := 0; i < 100; i++ {
		a, _, err := RandG2(nil)
		if err != nil {
			t.Fatal(err)
		}
		k := randScalarBits(t, 256) // includes values > r (reduced mod r)
		if i%5 == 1 {
			k.Neg(k)
		}
		if i%11 == 0 {
			k.SetInt64(int64(i%4) - 1) // −1, 0, 1, 2
		}
		var fast, slow G2
		fast.ScalarMult(a, k)
		slow.ScalarMultReference(a, k)
		if !fast.Equal(&slow) {
			t.Fatalf("iteration %d: ScalarMult != ScalarMultReference for k=%v", i, k)
		}
		if !fast.IsOnTwist() {
			t.Fatalf("iteration %d: result off twist", i)
		}
	}
}

// Cofactor clearing in HashToG2 runs through the internal raw-scalar
// path (g2ScalarMultRaw), not the mod-r public API; pin that hashing
// still lands in the r-subgroup with GLS ScalarMult in place.
func TestG2ScalarMultCofactorClearing(t *testing.T) {
	pt := HashToG2("fastpath-cofactor-test", []byte("msg"))
	if pt.IsInfinity() || !pt.IsInSubgroup() {
		t.Fatal("HashToG2 broken under fast ScalarMult")
	}
}

func TestG1ScalarBaseMultMatchesReference(t *testing.T) {
	for i := 0; i < 100; i++ {
		k := randScalarBits(t, 256)
		if i%5 == 1 {
			k.Neg(k)
		}
		var fast, slow G1
		fast.ScalarBaseMult(k)
		slow.ScalarBaseMultReference(k)
		if !fast.Equal(&slow) {
			t.Fatalf("iteration %d: ScalarBaseMult != reference for k=%v", i, k)
		}
	}
}

func TestG2ScalarBaseMultMatchesReference(t *testing.T) {
	for i := 0; i < 100; i++ {
		k := randScalarBits(t, 256)
		if i%5 == 1 {
			k.Neg(k)
		}
		var fast, slow G2
		fast.ScalarBaseMult(k)
		slow.ScalarBaseMultReference(k)
		if !fast.Equal(&slow) {
			t.Fatalf("iteration %d: ScalarBaseMult != reference for k=%v", i, k)
		}
	}
}

// TestG2ScalarBaseMultEdgeScalars mirrors TestG1ScalarMultReducesModOrder
// for the G2 fixed-base path: k = 0, k = r, and k > r must behave as
// multiplication by k mod r (valid because the generator has order r).
func TestG2ScalarBaseMultEdgeScalars(t *testing.T) {
	r := ff.Order()

	var z G2
	z.ScalarBaseMult(big.NewInt(0))
	if !z.IsInfinity() {
		t.Fatal("[0]·G2 must be the identity")
	}
	z.ScalarBaseMult(r)
	if !z.IsInfinity() {
		t.Fatal("[r]·G2 must be the identity")
	}

	k := randScalarBits(t, 200)
	var big1, big2 G2
	big1.ScalarBaseMult(new(big.Int).Add(r, k)) // r + k ≡ k
	big2.ScalarBaseMult(k)
	if !big1.Equal(&big2) {
		t.Fatal("[r+k]·G2 must equal [k]·G2")
	}

	var neg, neg2 G2
	neg.ScalarBaseMult(new(big.Int).Neg(k)) // −k ≡ r−k
	neg2.ScalarBaseMult(new(big.Int).Sub(r, k))
	if !neg.Equal(&neg2) {
		t.Fatal("[−k]·G2 must equal [r−k]·G2")
	}
}

func TestG1MultiScalarMultMatchesNaive(t *testing.T) {
	for i := 0; i < 100; i++ {
		n := 1 + i%6
		points := make([]*G1, n)
		scalars := make([]*big.Int, n)
		for j := range points {
			p, _, err := RandG1(nil)
			if err != nil {
				t.Fatal(err)
			}
			points[j] = p
			scalars[j] = randScalarBits(t, 256)
			if (i+j)%7 == 0 {
				scalars[j].SetInt64(0)
			}
			if (i+j)%9 == 0 {
				points[j] = NewG1() // identity input
			}
		}
		got := G1MultiScalarMult(points, scalars)
		want := NewG1()
		var term G1
		for j := range points {
			term.ScalarMultReference(points[j], scalars[j])
			want.Add(want, &term)
		}
		if !got.Equal(want) {
			t.Fatalf("iteration %d: G1MultiScalarMult mismatch (n=%d)", i, n)
		}
	}
	if !G1MultiScalarMult(nil, nil).IsInfinity() {
		t.Fatal("empty MSM must be the identity")
	}
}

func TestG2MultiScalarMultMatchesNaive(t *testing.T) {
	for i := 0; i < 100; i++ {
		n := 1 + i%6
		points := make([]*G2, n)
		scalars := make([]*big.Int, n)
		for j := range points {
			p, _, err := RandG2(nil)
			if err != nil {
				t.Fatal(err)
			}
			points[j] = p
			scalars[j] = randScalarBits(t, 256)
			if (i+j)%5 == 0 {
				scalars[j].Neg(scalars[j]) // refresh protocols use −sᵢ
			}
			if (i+j)%7 == 0 {
				scalars[j].SetInt64(0)
			}
		}
		got := G2MultiScalarMult(points, scalars)
		want := NewG2()
		var term G2
		for j := range points {
			term.ScalarMultReference(points[j], scalars[j])
			want.Add(want, &term)
		}
		if !got.Equal(want) {
			t.Fatalf("iteration %d: G2MultiScalarMult mismatch (n=%d)", i, n)
		}
	}
}

func TestGTMultiExpMatchesNaive(t *testing.T) {
	for i := 0; i < 100; i++ {
		n := 1 + i%5
		bases := make([]*GT, n)
		exps := make([]*big.Int, n)
		for j := range bases {
			g, err := RandGT(nil)
			if err != nil {
				t.Fatal(err)
			}
			bases[j] = g
			exps[j] = randScalarBits(t, 256)
			if (i+j)%5 == 0 {
				exps[j].Neg(exps[j])
			}
			if (i+j)%7 == 0 {
				exps[j].SetInt64(0)
			}
		}
		got := GTMultiExp(bases, exps)
		want := GTOne()
		var term GT
		for j := range bases {
			term.Exp(bases[j], exps[j])
			want.Mul(want, &term)
		}
		if !got.Equal(want) {
			t.Fatalf("iteration %d: GTMultiExp mismatch (n=%d)", i, n)
		}
	}
	if !GTMultiExp(nil, nil).IsOne() {
		t.Fatal("empty GTMultiExp must be 1")
	}
}

// GTMultiExp must stay correct when a base is outside the cyclotomic
// subgroup (possible via SetBytes, which skips subgroup validation).
func TestGTMultiExpNonCyclotomicBase(t *testing.T) {
	raw, err := ff.RandFp12(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	var rogue GT
	if _, err := rogue.SetBytes(raw.Bytes()); err != nil {
		t.Fatal(err)
	}
	honest, err := RandGT(nil)
	if err != nil {
		t.Fatal(err)
	}
	bases := []*GT{&rogue, honest}
	exps := []*big.Int{randScalarBits(t, 254), randScalarBits(t, 254)}
	got := GTMultiExp(bases, exps)
	want := GTOne()
	var term GT
	for j := range bases {
		term.Exp(bases[j], exps[j])
		want.Mul(want, &term)
	}
	if !got.Equal(want) {
		t.Fatal("GTMultiExp wrong with non-cyclotomic base")
	}
}

func TestGTExpNonCyclotomicBase(t *testing.T) {
	raw, err := ff.RandFp12(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	var rogue GT
	if _, err := rogue.SetBytes(raw.Bytes()); err != nil {
		t.Fatal(err)
	}
	k := randScalarBits(t, 254)
	var got GT
	got.Exp(&rogue, k)
	// Generic Fp12 exponentiation with the reduced exponent is ground truth.
	var want ff.Fp12
	want.Exp(&rogue.v, new(big.Int).Mod(k, ff.Order()))
	if !got.v.Equal(&want) {
		t.Fatal("GT.Exp wrong on non-cyclotomic element")
	}
}

func TestMultiPairMatchesPairProduct(t *testing.T) {
	for i := 0; i < 25; i++ {
		n := 1 + i%4
		ps := make([]*G1, n)
		qs := make([]*G2, n)
		for j := range ps {
			p, _, err := RandG1(nil)
			if err != nil {
				t.Fatal(err)
			}
			q, _, err := RandG2(nil)
			if err != nil {
				t.Fatal(err)
			}
			ps[j] = p
			qs[j] = q
			if (i+j)%6 == 0 {
				ps[j] = NewG1() // identity pair contributes 1
			}
		}
		got := MultiPair(ps, qs)
		want := GTOne()
		for j := range ps {
			want.Mul(want, Pair(ps[j], qs[j]))
		}
		if !got.Equal(want) {
			t.Fatalf("iteration %d: MultiPair != Π Pair (n=%d)", i, n)
		}
	}
	if !MultiPair(nil, nil).IsOne() {
		t.Fatal("empty MultiPair must be 1")
	}
}

func TestPairBatchMatchesPair(t *testing.T) {
	for i := 0; i < 15; i++ {
		n := 1 + i%4
		ps := make([]*G1, n)
		qs := make([]*G2, n)
		for j := range ps {
			p, _, err := RandG1(nil)
			if err != nil {
				t.Fatal(err)
			}
			q, _, err := RandG2(nil)
			if err != nil {
				t.Fatal(err)
			}
			ps[j] = p
			qs[j] = q
			if (i+j)%5 == 0 {
				qs[j] = NewG2()
			}
		}
		got := PairBatch(ps, qs)
		for j := range ps {
			if !got[j].Equal(Pair(ps[j], qs[j])) {
				t.Fatalf("iteration %d: PairBatch[%d] != Pair", i, j)
			}
		}
	}
}

// MultiPair with a negated G1 point divides — the pattern GT-side
// decryption uses for e(A,M)⁻¹.
func TestMultiPairDivision(t *testing.T) {
	p, _, err := RandG1(nil)
	if err != nil {
		t.Fatal(err)
	}
	q, _, err := RandG2(nil)
	if err != nil {
		t.Fatal(err)
	}
	var negP G1
	negP.Neg(p)
	got := MultiPair([]*G1{p, &negP}, []*G2{q, q})
	if !got.IsOne() {
		t.Fatal("e(P,Q)·e(−P,Q) must be 1")
	}
}
