package bn254

import (
	"math/big"
	"math/bits"
	"sync"

	"repro/internal/ff"
	"repro/internal/par"
	"repro/internal/scalar"
)

// Pippenger bucket-method multi-scalar multiplication.
//
// Straus interleaving (scalarmult.go) pays one table and ~bits/(w+1)
// point additions *per term*; its cost is linear in n with a large
// constant. The bucket method instead slices every scalar into signed
// radix-2^c digits and, window by window, throws each term into the
// bucket addressed by its digit: n bucket additions per window
// regardless of how many buckets there are, plus 2^(c−1) additions to
// fold the buckets into a window sum. Total ≈ (bits/c)·(n + 2^c)
// additions, so for large n the per-term cost approaches one addition
// per window — asymptotically c-fold cheaper than wNAF interleaving.
//
// Three refinements keep the constant small:
//
//   - Signed digits in [−2^(c−1), 2^(c−1)]: affine negation is free, so
//     half the buckets suffice and the fold is half as long.
//   - Batch-affine bucket accumulation: buckets are affine points, and
//     each scheduling round applies every pending bucket += P with ONE
//     field inversion via Montgomery's simultaneous-inversion trick
//     (ff.BatchInverseFp). An amortized affine addition costs ~5 base
//     multiplications versus ~16 for the Jacobian adds Straus performs.
//   - Global scheduling: every window keeps its own bucket range inside
//     one flat array and all windows' pending additions share the same
//     scheduling rounds, so each round's inversion amortizes over
//     hundreds of additions. (Per-window scheduling costs ~windows×
//     more inversions for the same addition count — measured 2× slower
//     end to end.)
//
// Scalars are GLV/GLS-split (endo.go) before slicing, exactly as in the
// Straus path, so both tiers run on identical subscalar sets and the
// G1MultiExp/G2MultiExp dispatchers can pick purely by size. The
// FuzzMultiExp target and TestPippengerMatchesStraus pin the two tiers
// to bit-identical outputs.

// pippengerWindow returns the radix width c for an n-term (post-split)
// instance, minimizing (bits/c)·(n·A_affine + 2^(c−1)·A_jac) per the
// cost model derived in docs/ARCHITECTURE.md. The thresholds are the
// model's break-even points, validated by benchmarks on this tree.
func pippengerWindow(n int) int {
	switch {
	case n < 32:
		return 3
	case n < 96:
		return 4
	case n < 384:
		return 5
	case n < 1536:
		return 6
	case n < 6144:
		return 7
	default:
		return 8
	}
}

// pippengerCrossover is the number of *input* terms below which the
// dispatchers stay on Straus interleaving: under the cost model the
// bucket fold (2^(c−1) Jacobian adds per window) dominates until the
// per-window bucket additions outnumber it, which happens near 16
// terms (32 GLV subscalars). Measured crossover on this tree agrees;
// see docs/ARCHITECTURE.md.
const pippengerCrossover = 16

// scalarLimbs returns the low 256 bits of the non-negative e as
// little-endian limbs (sub-scalars from endoSplit are far shorter).
func scalarLimbs(e *big.Int) [4]uint64 {
	var l [4]uint64
	for i, w := range e.Bits() {
		if i < 4 {
			l[i] = uint64(w)
		}
	}
	return l
}

// pippengerDigits slices each scalar into `windows` signed radix-2^c
// digits in [−2^(c−1), 2^(c−1)], flattened as digits[i*windows+w].
// Digit d of scalar i means: add sign(d)·P_i to bucket |d|−1 of window
// w. The window count must cover maxBits plus one carry digit.
func pippengerDigits(es []*big.Int, c, windows int) []int32 {
	digits := make([]int32, len(es)*windows)
	half := int64(1) << (c - 1)
	mask := uint64(1)<<c - 1
	for i, e := range es {
		l := scalarLimbs(e)
		carry := int64(0)
		for w := 0; w < windows; w++ {
			pos := w * c
			limb := pos >> 6
			off := uint(pos & 63)
			var raw uint64
			if limb < 4 {
				raw = l[limb] >> off
				if off+uint(c) > 64 && limb+1 < 4 {
					raw |= l[limb+1] << (64 - off)
				}
			}
			d := int64(raw&mask) + carry
			carry = 0
			if d > half {
				d -= int64(1) << c
				carry = 1
			}
			digits[i*windows+w] = int32(d)
		}
	}
	return digits
}

// appendPippengerDigits is pippengerDigits on already-reduced limb
// sub-scalars, appending into a reusable buffer instead of allocating.
func appendPippengerDigits(dst []int32, es [][4]uint64, c, windows int) []int32 {
	half := int64(1) << (c - 1)
	mask := uint64(1)<<c - 1
	for i := range es {
		l := &es[i]
		carry := int64(0)
		for w := 0; w < windows; w++ {
			pos := w * c
			limb := pos >> 6
			off := uint(pos & 63)
			var raw uint64
			if limb < 4 {
				raw = l[limb] >> off
				if off+uint(c) > 64 && limb+1 < 4 {
					raw |= l[limb+1] << (64 - off)
				}
			}
			d := int64(raw&mask) + carry
			carry = 0
			if d > half {
				d -= int64(1) << c
				carry = 1
			}
			dst = append(dst, int32(d))
		}
	}
	return dst
}

// limbBitLen returns the bit length of a little-endian limb scalar.
func limbBitLen(e *[4]uint64) int {
	for i := 3; i >= 0; i-- {
		if e[i] != 0 {
			return 64*i + bits.Len64(e[i])
		}
	}
	return 0
}

// bucketOp is one pending bucket += points[pt] addition. Both fields
// are indices (pt into a flat pointer-free point array with the
// negated copies in the upper half), which keeps the scheduling queues
// free of pointers — appending millions of ops must not generate GC
// write-barrier traffic.
type bucketOp struct {
	bucket int32
	pt     int32
}

// bucketScratch holds the scheduling work buffers so the accumulation
// loop allocates on growth only — and, once its owning arena has warmed
// up in the pool, not at all.
type bucketScratch struct {
	next   []bucketOp
	dens   []ff.Fp
	invs   []ff.Fp
	prefx  []ff.Fp
	dens2  []ff.Fp2
	invs2  []ff.Fp2
	prefx2 []ff.Fp2
	apply  []bucketOp
	kinds  []uint8
	stamp  []int32
}

// fpSlice returns s[:n], growing the backing array when needed. The
// generic-free trio below keeps the accumulation loops free of
// per-round make calls.
func fpSlice(s *[]ff.Fp, n int) []ff.Fp {
	if cap(*s) < n {
		*s = make([]ff.Fp, n)
	}
	*s = (*s)[:n]
	return *s
}

func fp2Slice(s *[]ff.Fp2, n int) []ff.Fp2 {
	if cap(*s) < n {
		*s = make([]ff.Fp2, n)
	}
	*s = (*s)[:n]
	return *s
}

func int32Slice(s *[]int32, n int) []int32 {
	if cap(*s) < n {
		*s = make([]int32, n)
	}
	*s = (*s)[:n]
	return *s
}

// g1BucketAccumulate folds ops into the affine buckets. Each scheduling
// round claims at most one op per bucket, gathers the denominators of
// every claimed affine addition/doubling, inverts them all with a
// single field inversion (Montgomery's trick), and applies the
// additions; conflicting ops wait for the next round. Degenerate cases
// (empty bucket, doubling, cancellation) are resolved inline.
func g1BucketAccumulate(buckets []G1, points []G1, ops []bucketOp, scratch *bucketScratch) {
	cur, next := ops, scratch.next[:0]
	stamp := scratch.stamp
	for i := range buckets {
		stamp[i] = -1
	}
	dens, apply, kinds := scratch.dens[:0], scratch.apply[:0], scratch.kinds[:0]
	for round := int32(0); len(cur) > 0; round++ {
		next, dens, apply, kinds = next[:0], dens[:0], apply[:0], kinds[:0]
		for _, op := range cur {
			if stamp[op.bucket] == round {
				next = append(next, op)
				continue
			}
			stamp[op.bucket] = round
			dst, pt := &buckets[op.bucket], &points[op.pt]
			switch {
			case dst.inf:
				*dst = *pt
			case dst.x.Equal(&pt.x) && dst.y.Equal(&pt.y):
				var d ff.Fp
				d.Double(&dst.y) // doubling: λ = 3x²/(2y)
				dens = append(dens, d)
				apply = append(apply, op)
				kinds = append(kinds, 1)
			case dst.x.Equal(&pt.x):
				dst.SetInfinity() // P + (−P)
			default:
				var d ff.Fp
				d.Sub(&pt.x, &dst.x) // addition: λ = (y2−y1)/(x2−x1)
				dens = append(dens, d)
				apply = append(apply, op)
				kinds = append(kinds, 0)
			}
		}
		if len(dens) > 0 {
			invs := fpSlice(&scratch.invs, len(dens))
			// Chunk-parallel above ~512 pending additions, the serial
			// noalloc path below (ff.BatchInverseFpPar dispatches).
			ff.BatchInverseFpPar(invs, dens, fpSlice(&scratch.prefx, len(dens)))
			for k, op := range apply {
				dst, pt := &buckets[op.bucket], &points[op.pt]
				var lam, x3, y3 ff.Fp
				if kinds[k] == 1 {
					lam.Square(&dst.x)
					lam.MulInt64(&lam, 3)
					lam.Mul(&lam, &invs[k])
					x3.Square(&lam)
					y3.Double(&dst.x)
					x3.Sub(&x3, &y3)
				} else {
					lam.Sub(&pt.y, &dst.y)
					lam.Mul(&lam, &invs[k])
					x3.Square(&lam)
					x3.Sub(&x3, &dst.x)
					x3.Sub(&x3, &pt.x)
				}
				y3.Sub(&dst.x, &x3)
				y3.Mul(&y3, &lam)
				y3.Sub(&y3, &dst.y)
				dst.x.Set(&x3)
				dst.y.Set(&y3)
			}
		}
		cur, next = next, cur
	}
	scratch.next, scratch.dens, scratch.apply, scratch.kinds = next, dens, apply, kinds
}

// g1MultiExpPippengerBig runs the bucket method over sign-folded affine
// points and non-negative big.Int sub-scalars (the endoSplitG1 output
// shape) — the retained fallback tier for limb-unready lattices and the
// differential twin of g1MultiExpPippengerLimbs.
func g1MultiExpPippengerBig(acc *g1Jac, pts []*G1, es []*big.Int) {
	acc.setInfinity()
	if len(pts) == 0 {
		return
	}
	maxBits := 1
	for _, e := range es {
		if b := e.BitLen(); b > maxBits {
			maxBits = b
		}
	}
	c := pippengerWindow(len(pts))
	windows := maxBits/c + 2
	digits := pippengerDigits(es, c, windows)

	// Flat pointer-free point array: originals below n, negations above.
	n := len(pts)
	points := make([]G1, 2*n)
	for i, p := range pts {
		points[i].Set(p)
		points[n+i].Neg(p)
	}
	nb := 1 << (c - 1)
	buckets := make([]G1, windows*nb)
	for i := range buckets {
		buckets[i].SetInfinity()
	}
	scratch := &bucketScratch{stamp: make([]int32, len(buckets))}
	ops := make([]bucketOp, 0, n*windows)
	for i := 0; i < n; i++ {
		for w := 0; w < windows; w++ {
			d := digits[i*windows+w]
			switch {
			case d > 0:
				ops = append(ops, bucketOp{bucket: int32(w*nb) + d - 1, pt: int32(i)})
			case d < 0:
				ops = append(ops, bucketOp{bucket: int32(w*nb) - d - 1, pt: int32(n + i)})
			}
		}
	}
	g1BucketAccumulate(buckets, points, ops, scratch)

	// Fold each window (Σ (b+1)·bucket[b] via running suffix sums) and
	// combine top-down with c doublings between windows.
	for w := windows - 1; w >= 0; w-- {
		for i := 0; i < c; i++ {
			acc.double()
		}
		var running, sum g1Jac
		running.setInfinity()
		sum.setInfinity()
		win := buckets[w*nb : (w+1)*nb]
		for b := nb - 1; b >= 0; b-- {
			running.addAffine(&win[b])
			sum.add(&running)
		}
		acc.add(&sum)
	}
}

// --- the twist, with ff.Fp2 coordinates ---

// g2BucketAccumulate is g1BucketAccumulate on the twist
// (ff.BatchInverseFp2 for the shared inversion).
func g2BucketAccumulate(buckets []G2, points []G2, ops []bucketOp, scratch *bucketScratch) {
	cur, next := ops, scratch.next[:0]
	stamp := scratch.stamp
	for i := range buckets {
		stamp[i] = -1
	}
	dens2, apply, kinds := scratch.dens2[:0], scratch.apply[:0], scratch.kinds[:0]
	for round := int32(0); len(cur) > 0; round++ {
		next, dens2, apply, kinds = next[:0], dens2[:0], apply[:0], kinds[:0]
		for _, op := range cur {
			if stamp[op.bucket] == round {
				next = append(next, op)
				continue
			}
			stamp[op.bucket] = round
			dst, pt := &buckets[op.bucket], &points[op.pt]
			switch {
			case dst.inf:
				*dst = *pt
			case dst.x.Equal(&pt.x) && dst.y.Equal(&pt.y):
				var d ff.Fp2
				d.Double(&dst.y)
				dens2 = append(dens2, d)
				apply = append(apply, op)
				kinds = append(kinds, 1)
			case dst.x.Equal(&pt.x):
				dst.SetInfinity()
			default:
				var d ff.Fp2
				d.Sub(&pt.x, &dst.x)
				dens2 = append(dens2, d)
				apply = append(apply, op)
				kinds = append(kinds, 0)
			}
		}
		if len(dens2) > 0 {
			invs := fp2Slice(&scratch.invs2, len(dens2))
			ff.BatchInverseFp2Par(invs, dens2, fp2Slice(&scratch.prefx2, len(dens2)))
			for k, op := range apply {
				dst, pt := &buckets[op.bucket], &points[op.pt]
				var lam, x3, y3, t ff.Fp2
				if kinds[k] == 1 {
					lam.Square(&dst.x)
					t.Double(&lam)
					lam.Add(&lam, &t) // 3x²
					lam.Mul(&lam, &invs[k])
					x3.Square(&lam)
					t.Double(&dst.x)
					x3.Sub(&x3, &t)
				} else {
					lam.Sub(&pt.y, &dst.y)
					lam.Mul(&lam, &invs[k])
					x3.Square(&lam)
					x3.Sub(&x3, &dst.x)
					x3.Sub(&x3, &pt.x)
				}
				y3.Sub(&dst.x, &x3)
				y3.Mul(&y3, &lam)
				y3.Sub(&y3, &dst.y)
				dst.x.Set(&x3)
				dst.y.Set(&y3)
			}
		}
		cur, next = next, cur
	}
	scratch.next, scratch.dens2, scratch.apply, scratch.kinds = next, dens2, apply, kinds
}

// g2MultiExpPippengerBig is g1MultiExpPippengerBig on the twist, with
// the same globally scheduled bucket accumulation.
func g2MultiExpPippengerBig(acc *g2Jac, pts []*G2, es []*big.Int) {
	acc.setInfinity()
	if len(pts) == 0 {
		return
	}
	maxBits := 1
	for _, e := range es {
		if b := e.BitLen(); b > maxBits {
			maxBits = b
		}
	}
	c := pippengerWindow(len(pts))
	windows := maxBits/c + 2
	digits := pippengerDigits(es, c, windows)

	n := len(pts)
	points := make([]G2, 2*n)
	for i, p := range pts {
		points[i].Set(p)
		points[n+i].Neg(p)
	}
	nb := 1 << (c - 1)
	buckets := make([]G2, windows*nb)
	for i := range buckets {
		buckets[i].SetInfinity()
	}
	scratch := &bucketScratch{stamp: make([]int32, len(buckets))}
	ops := make([]bucketOp, 0, n*windows)
	for i := 0; i < n; i++ {
		for w := 0; w < windows; w++ {
			d := digits[i*windows+w]
			switch {
			case d > 0:
				ops = append(ops, bucketOp{bucket: int32(w*nb) + d - 1, pt: int32(i)})
			case d < 0:
				ops = append(ops, bucketOp{bucket: int32(w*nb) - d - 1, pt: int32(n + i)})
			}
		}
	}
	g2BucketAccumulate(buckets, points, ops, scratch)

	for w := windows - 1; w >= 0; w-- {
		for i := 0; i < c; i++ {
			acc.double()
		}
		var running, sum g2Jac
		running.setInfinity()
		sum.setInfinity()
		win := buckets[w*nb : (w+1)*nb]
		for b := nb - 1; b >= 0; b-- {
			running.addAffine(&win[b])
			sum.add(&running)
		}
		acc.add(&sum)
	}
}

// --- reusable arenas and limb-scalar cores ---

// pippengerArena owns every buffer one bucket multi-exp needs: the
// sign-folded input points, the split sub-scalars, the flat digit and
// op queues, the bucket array and the accumulation scratch. Arenas are
// recycled through a sync.Pool (one per concurrently running
// multi-exp), so a steady-state pipeline of multi-exps stops allocating
// once the pool has warmed up to the working-set size.
type pippengerArena struct {
	g1Bases   []G1
	g1Points  []G1
	g1Buckets []G1
	g2Bases   []G2
	g2Points  []G2
	g2Buckets []G2
	vals      [][4]uint64
	digits    []int32
	ops       []bucketOp
	scratch   bucketScratch
}

var pippengerPool = sync.Pool{New: func() any { return new(pippengerArena) }}

func g1Slice(s *[]G1, n int) []G1 {
	if cap(*s) < n {
		*s = make([]G1, n)
	}
	*s = (*s)[:n]
	return *s
}

func g2Slice(s *[]G2, n int) []G2 {
	if cap(*s) < n {
		*s = make([]G2, n)
	}
	*s = (*s)[:n]
	return *s
}

// g1MultiExpPippengerLimbs runs the bucket method over sign-folded
// affine points and reduced limb sub-scalars, using the arena's
// buffers throughout. pts/es normally alias ar.g1Bases/ar.vals.
func g1MultiExpPippengerLimbs(acc *g1Jac, pts []G1, es [][4]uint64, ar *pippengerArena) {
	acc.setInfinity()
	if len(pts) == 0 {
		return
	}
	maxBits := 1
	for i := range es {
		if b := limbBitLen(&es[i]); b > maxBits {
			maxBits = b
		}
	}
	c := pippengerWindow(len(pts))
	windows := maxBits/c + 2
	ar.digits = appendPippengerDigits(ar.digits[:0], es, c, windows)
	digits := ar.digits

	n := len(pts)
	points := g1Slice(&ar.g1Points, 2*n)
	for i := range pts {
		points[i].Set(&pts[i])
		points[n+i].Neg(&pts[i])
	}
	nb := 1 << (c - 1)
	// Large instances fan the windows out across cores (see
	// pippenger_par.go); points/digits stay arena-owned and read-only.
	if n >= pippengerParMinBases && par.Workers() > 1 && windows >= 2*pippengerParMinWindowChunk {
		g1PippengerWindowsPar(acc, points, digits, n, c, windows, nb)
		return
	}
	buckets := g1Slice(&ar.g1Buckets, windows*nb)
	for i := range buckets {
		buckets[i].SetInfinity()
	}
	ar.scratch.stamp = int32Slice(&ar.scratch.stamp, len(buckets))
	ops := ar.ops[:0]
	for i := 0; i < n; i++ {
		for w := 0; w < windows; w++ {
			d := digits[i*windows+w]
			switch {
			case d > 0:
				ops = append(ops, bucketOp{bucket: int32(w*nb) + d - 1, pt: int32(i)})
			case d < 0:
				ops = append(ops, bucketOp{bucket: int32(w*nb) - d - 1, pt: int32(n + i)})
			}
		}
	}
	ar.ops = ops
	g1BucketAccumulate(buckets, points, ops, &ar.scratch)

	for w := windows - 1; w >= 0; w-- {
		for i := 0; i < c; i++ {
			acc.double()
		}
		var running, sum g1Jac
		running.setInfinity()
		sum.setInfinity()
		win := buckets[w*nb : (w+1)*nb]
		for b := nb - 1; b >= 0; b-- {
			running.addAffine(&win[b])
			sum.add(&running)
		}
		acc.add(&sum)
	}
}

// g2MultiExpPippengerLimbs is g1MultiExpPippengerLimbs on the twist.
func g2MultiExpPippengerLimbs(acc *g2Jac, pts []G2, es [][4]uint64, ar *pippengerArena) {
	acc.setInfinity()
	if len(pts) == 0 {
		return
	}
	maxBits := 1
	for i := range es {
		if b := limbBitLen(&es[i]); b > maxBits {
			maxBits = b
		}
	}
	c := pippengerWindow(len(pts))
	windows := maxBits/c + 2
	ar.digits = appendPippengerDigits(ar.digits[:0], es, c, windows)
	digits := ar.digits

	n := len(pts)
	points := g2Slice(&ar.g2Points, 2*n)
	for i := range pts {
		points[i].Set(&pts[i])
		points[n+i].Neg(&pts[i])
	}
	nb := 1 << (c - 1)
	if n >= pippengerParMinBases && par.Workers() > 1 && windows >= 2*pippengerParMinWindowChunk {
		g2PippengerWindowsPar(acc, points, digits, n, c, windows, nb)
		return
	}
	buckets := g2Slice(&ar.g2Buckets, windows*nb)
	for i := range buckets {
		buckets[i].SetInfinity()
	}
	ar.scratch.stamp = int32Slice(&ar.scratch.stamp, len(buckets))
	ops := ar.ops[:0]
	for i := 0; i < n; i++ {
		for w := 0; w < windows; w++ {
			d := digits[i*windows+w]
			switch {
			case d > 0:
				ops = append(ops, bucketOp{bucket: int32(w*nb) + d - 1, pt: int32(i)})
			case d < 0:
				ops = append(ops, bucketOp{bucket: int32(w*nb) - d - 1, pt: int32(n + i)})
			}
		}
	}
	ar.ops = ops
	g2BucketAccumulate(buckets, points, ops, &ar.scratch)

	for w := windows - 1; w >= 0; w-- {
		for i := 0; i < c; i++ {
			acc.double()
		}
		var running, sum g2Jac
		running.setInfinity()
		sum.setInfinity()
		win := buckets[w*nb : (w+1)*nb]
		for b := nb - 1; b >= 0; b-- {
			running.addAffine(&win[b])
			sum.add(&running)
		}
		acc.add(&sum)
	}
}

// --- exported tiers and dispatchers ---

// G1MultiExpPippenger computes Σ [scalars[i]]·points[i] with the bucket
// method: scalars are reduced mod r, GLV-split (endo.go), sliced into
// signed radix-2^c digits, and accumulated into batch-affine buckets.
// Faster than G1MultiScalarMult from a few dozen terms; use the
// G1MultiExp dispatcher unless a tier is being pinned deliberately.
func G1MultiExpPippenger(points []*G1, scalars []*big.Int) *G1 {
	if len(points) != len(scalars) {
		panic("bn254: G1MultiExpPippenger: mismatched lengths")
	}
	g1Endo.once.Do(g1EndoInit)
	ar := pippengerPool.Get().(*pippengerArena)
	bases := ar.g1Bases[:0]
	vals := ar.vals[:0]
	var fbPts []*G1
	var fbEs []*big.Int
	for i := range points {
		if points[i].inf {
			continue
		}
		e := ff.ReduceScalar(scalars[i])
		if e == [4]uint64{} {
			continue
		}
		var subs [2]scalar.SubScalar
		if !g1Endo.lat.DecomposeInto(&e, subs[:]) {
			fbPts, fbEs = strausFallbackG1(points[i], scalars[i], fbPts, fbEs)
			continue
		}
		var b [2]G1
		b[0].Set(points[i])
		g1Phi(&b[1], points[i], &g1Endo.beta)
		for j := range subs {
			if subs[j].IsZero() || b[j].inf {
				continue
			}
			if subs[j].Neg {
				b[j].Neg(&b[j])
			}
			bases = append(bases, b[j])
			vals = append(vals, subs[j].V)
		}
	}
	ar.g1Bases, ar.vals = bases, vals
	var acc g1Jac
	g1MultiExpPippengerLimbs(&acc, bases, vals, ar)
	pippengerPool.Put(ar)
	if len(fbPts) > 0 {
		var fbAcc g1Jac
		g1MultiExpPippengerBig(&fbAcc, fbPts, fbEs)
		acc.add(&fbAcc)
	}
	out := new(G1)
	acc.toAffine(out)
	return out
}

// G2MultiExpPippenger is G1MultiExpPippenger on the twist (GLS 4-way
// split). Like G2.ScalarMult it is only valid for points of the
// r-subgroup — which every externally obtainable G2 value is.
func G2MultiExpPippenger(points []*G2, scalars []*big.Int) *G2 {
	if len(points) != len(scalars) {
		panic("bn254: G2MultiExpPippenger: mismatched lengths")
	}
	g2Endo.once.Do(g2EndoInit)
	ar := pippengerPool.Get().(*pippengerArena)
	bases := ar.g2Bases[:0]
	vals := ar.vals[:0]
	var fbPts []*G2
	var fbEs []*big.Int
	for i := range points {
		if points[i].inf {
			continue
		}
		e := ff.ReduceScalar(scalars[i])
		if e == [4]uint64{} {
			continue
		}
		var subs [4]scalar.SubScalar
		if !g2Endo.lat.DecomposeInto(&e, subs[:]) {
			fbPts, fbEs = strausFallbackG2(points[i], scalars[i], fbPts, fbEs)
			continue
		}
		var b [4]G2
		b[0].Set(points[i])
		for j := 1; j < len(b); j++ {
			g2Psi(&b[j], &b[j-1])
		}
		for j := range subs {
			if subs[j].IsZero() || b[j].inf {
				continue
			}
			if subs[j].Neg {
				b[j].Neg(&b[j])
			}
			bases = append(bases, b[j])
			vals = append(vals, subs[j].V)
		}
	}
	ar.g2Bases, ar.vals = bases, vals
	var acc g2Jac
	g2MultiExpPippengerLimbs(&acc, bases, vals, ar)
	pippengerPool.Put(ar)
	if len(fbPts) > 0 {
		var fbAcc g2Jac
		g2MultiExpPippengerBig(&fbAcc, fbPts, fbEs)
		acc.add(&fbAcc)
	}
	out := new(G2)
	acc.toAffine(out)
	return out
}

// G1MultiExp computes Σ [scalars[i]]·points[i], dispatching by size:
//
//   - n < 16: Straus-interleaved wNAF over GLV subscalars
//     (G1MultiScalarMult) — the bucket fold overhead dominates below
//     the crossover.
//   - n ≥ 16: Pippenger bucket method with batch-affine accumulation
//     (G1MultiExpPippenger).
//
// Both tiers produce bit-identical results; the crossover constant is
// derived in docs/ARCHITECTURE.md and validated by E13.
func G1MultiExp(points []*G1, scalars []*big.Int) *G1 {
	if len(points) >= pippengerCrossover {
		return G1MultiExpPippenger(points, scalars)
	}
	return G1MultiScalarMult(points, scalars)
}

// G2MultiExp is G1MultiExp on the twist: Straus below the crossover,
// Pippenger with batch-affine buckets at or above it.
func G2MultiExp(points []*G2, scalars []*big.Int) *G2 {
	if len(points) >= pippengerCrossover {
		return G2MultiExpPippenger(points, scalars)
	}
	return G2MultiScalarMult(points, scalars)
}
