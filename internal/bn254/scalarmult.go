package bn254

import (
	"math/big"
	"sync"

	"repro/internal/ff"
)

// This file is the scalar-multiplication fast path: width-4 wNAF
// variable-base multiplication, fixed-base precomputation tables for
// the two generators, and Straus-interleaved multi-scalar
// multiplication. The naive double-and-add loops survive as
// ScalarMultReference / ScalarBaseMultReference in g1.go and g2.go;
// differential tests pin the two paths to bit-identical outputs.
//
// Like every routine in this package, none of this is constant-time:
// wNAF recoding, table indexing, and the big.Int arithmetic all branch
// on secret data. The continual-leakage model of the paper tolerates
// bounded leakage per period, but deployments needing side-channel
// hardening must treat these routines as leaky.

// --- full Jacobian-Jacobian addition (add-2007-bl) ---

func (j *g1Jac) setInfinity() {
	j.x.SetOne()
	j.y.SetOne()
	j.zz.SetZero()
}

func (j *g1Jac) neg() {
	j.y.Neg(&j.y)
}

// add sets j = j + o for two Jacobian points (add-2007-bl), handling
// infinities and the doubling/cancellation cases.
func (j *g1Jac) add(o *g1Jac) {
	if o.zz.IsZero() {
		return
	}
	if j.zz.IsZero() {
		*j = *o
		return
	}
	var z1z1, z2z2, u1, u2, s1, s2 ff.Fp
	z1z1.Square(&j.zz)
	z2z2.Square(&o.zz)
	u1.Mul(&j.x, &z2z2)
	u2.Mul(&o.x, &z1z1)
	s1.Mul(&j.y, &o.zz)
	s1.Mul(&s1, &z2z2)
	s2.Mul(&o.y, &j.zz)
	s2.Mul(&s2, &z1z1)

	if u1.Equal(&u2) {
		if s1.Equal(&s2) {
			j.double()
			return
		}
		j.setInfinity()
		return
	}

	var h, hh2, i, jj, rr, v ff.Fp
	h.Sub(&u2, &u1)
	hh2.Double(&h)
	i.Square(&hh2)
	jj.Mul(&h, &i)
	rr.Sub(&s2, &s1)
	rr.Double(&rr)
	v.Mul(&u1, &i)

	var x3, y3, z3, t ff.Fp
	x3.Square(&rr)
	x3.Sub(&x3, &jj)
	t.Double(&v)
	x3.Sub(&x3, &t)
	y3.Sub(&v, &x3)
	y3.Mul(&y3, &rr)
	t.Mul(&s1, &jj)
	t.Double(&t)
	y3.Sub(&y3, &t)
	z3.Add(&j.zz, &o.zz)
	z3.Square(&z3)
	z3.Sub(&z3, &z1z1)
	z3.Sub(&z3, &z2z2)
	z3.Mul(&z3, &h)

	j.x.Set(&x3)
	j.y.Set(&y3)
	j.zz.Set(&z3)
}

func (j *g2Jac) neg() {
	j.y.Neg(&j.y)
}

// add sets j = j + o (add-2007-bl over Fp2).
func (j *g2Jac) add(o *g2Jac) {
	if o.zz.IsZero() {
		return
	}
	if j.zz.IsZero() {
		*j = *o
		return
	}
	var z1z1, z2z2, u1, u2, s1, s2 ff.Fp2
	z1z1.Square(&j.zz)
	z2z2.Square(&o.zz)
	u1.Mul(&j.x, &z2z2)
	u2.Mul(&o.x, &z1z1)
	s1.Mul(&j.y, &o.zz)
	s1.Mul(&s1, &z2z2)
	s2.Mul(&o.y, &j.zz)
	s2.Mul(&s2, &z1z1)

	if u1.Equal(&u2) {
		if s1.Equal(&s2) {
			j.double()
			return
		}
		j.setInfinity()
		return
	}

	var h, hh2, i, jj, rr, v ff.Fp2
	h.Sub(&u2, &u1)
	hh2.Double(&h)
	i.Square(&hh2)
	jj.Mul(&h, &i)
	rr.Sub(&s2, &s1)
	rr.Double(&rr)
	v.Mul(&u1, &i)

	var x3, y3, z3, t ff.Fp2
	x3.Square(&rr)
	x3.Sub(&x3, &jj)
	t.Double(&v)
	x3.Sub(&x3, &t)
	y3.Sub(&v, &x3)
	y3.Mul(&y3, &rr)
	t.Mul(&s1, &jj)
	t.Double(&t)
	y3.Sub(&y3, &t)
	z3.Add(&j.zz, &o.zz)
	z3.Square(&z3)
	z3.Sub(&z3, &z1z1)
	z3.Sub(&z3, &z2z2)
	z3.Mul(&z3, &h)

	j.x.Set(&x3)
	j.y.Set(&y3)
	j.zz.Set(&z3)
}

// --- batch normalization (one inversion for a whole table) ---

// g1BatchToAffine converts Jacobian points to affine with a single
// field inversion (Montgomery's trick on the Z coordinates).
func g1BatchToAffine(jacs []g1Jac, out []G1) {
	zs := make([]ff.Fp, len(jacs))
	for i := range jacs {
		zs[i].Set(&jacs[i].zz)
	}
	invs := ff.BatchInverseFp(zs)
	for i := range jacs {
		if jacs[i].zz.IsZero() {
			out[i].SetInfinity()
			continue
		}
		var zi2, zi3 ff.Fp
		zi2.Square(&invs[i])
		zi3.Mul(&zi2, &invs[i])
		out[i].x.Mul(&jacs[i].x, &zi2)
		out[i].y.Mul(&jacs[i].y, &zi3)
		out[i].inf = false
	}
}

// g2BatchToAffine is g1BatchToAffine for the twist.
func g2BatchToAffine(jacs []g2Jac, out []G2) {
	zs := make([]ff.Fp2, len(jacs))
	for i := range jacs {
		zs[i].Set(&jacs[i].zz)
	}
	invs := ff.BatchInverseFp2(zs)
	for i := range jacs {
		if jacs[i].zz.IsZero() {
			out[i].SetInfinity()
			continue
		}
		var zi2, zi3 ff.Fp2
		zi2.Square(&invs[i])
		zi3.Mul(&zi2, &invs[i])
		out[i].x.Mul(&jacs[i].x, &zi2)
		out[i].y.Mul(&jacs[i].y, &zi3)
		out[i].inf = false
	}
}

// --- width-4 wNAF variable-base multiplication ---

const wnafWidth = 4

// g1WNAFMult sets acc = [e]a for e > 0 using width-4 wNAF: a table of
// the odd multiples {1,3,5,7}·a and signed digits, costing ~e.BitLen()
// doublings plus one addition per ~(w+1) bits.
func g1WNAFMult(acc *g1Jac, a *G1, e *big.Int) {
	digits := ff.WNAF(e, wnafWidth)
	var tbl [1 << (wnafWidth - 2)]g1Jac
	tbl[0].setAffine(a)
	var twoA g1Jac
	twoA.setAffine(a)
	twoA.double()
	for i := 1; i < len(tbl); i++ {
		tbl[i] = tbl[i-1]
		tbl[i].add(&twoA)
	}
	acc.setInfinity()
	for i := len(digits) - 1; i >= 0; i-- {
		acc.double()
		if d := digits[i]; d > 0 {
			acc.add(&tbl[d>>1])
		} else if d < 0 {
			n := tbl[(-d)>>1]
			n.neg()
			acc.add(&n)
		}
	}
}

// g2WNAFMult is g1WNAFMult on the twist.
func g2WNAFMult(acc *g2Jac, a *G2, e *big.Int) {
	digits := ff.WNAF(e, wnafWidth)
	var tbl [1 << (wnafWidth - 2)]g2Jac
	tbl[0].setAffine(a)
	var twoA g2Jac
	twoA.setAffine(a)
	twoA.double()
	for i := 1; i < len(tbl); i++ {
		tbl[i] = tbl[i-1]
		tbl[i].add(&twoA)
	}
	acc.setInfinity()
	for i := len(digits) - 1; i >= 0; i-- {
		acc.double()
		if d := digits[i]; d > 0 {
			acc.add(&tbl[d>>1])
		} else if d < 0 {
			n := tbl[(-d)>>1]
			n.neg()
			acc.add(&n)
		}
	}
}

// --- fixed-base tables for the generators ---

// Fixed-base multiplication uses radix-16 digits: 64 windows of 4 bits
// cover any 256-bit scalar, and window i holds the 15 multiples
// d·2^(4i)·G for d = 1..15, stored affine so the evaluation loop is
// pure mixed additions — no doublings at multiplication time.
const (
	fbWindowBits = 4
	fbWindows    = 64
	fbTableSize  = 1<<fbWindowBits - 1 // 15
)

var g1FixedBase = struct {
	once sync.Once
	tbl  [fbWindows][fbTableSize]G1
}{}

func g1FixedBaseTable() *[fbWindows][fbTableSize]G1 {
	g1FixedBase.once.Do(func() {
		jacs := make([]g1Jac, fbWindows*fbTableSize)
		var base g1Jac
		base.setAffine(g1Gen)
		g1FixedBaseRows(jacs, base)
		flat := make([]G1, len(jacs))
		g1BatchToAffine(jacs, flat)
		for w := 0; w < fbWindows; w++ {
			copy(g1FixedBase.tbl[w][:], flat[w*fbTableSize:(w+1)*fbTableSize])
		}
	})
	return &g1FixedBase.tbl
}

var g2FixedBase = struct {
	once sync.Once
	tbl  [fbWindows][fbTableSize]G2
}{}

func g2FixedBaseTable() *[fbWindows][fbTableSize]G2 {
	g2FixedBase.once.Do(func() {
		gen := G2Generator()
		jacs := make([]g2Jac, fbWindows*fbTableSize)
		var base g2Jac
		base.setAffine(gen)
		g2FixedBaseRows(jacs, base)
		flat := make([]G2, len(jacs))
		g2BatchToAffine(jacs, flat)
		for w := 0; w < fbWindows; w++ {
			copy(g2FixedBase.tbl[w][:], flat[w*fbTableSize:(w+1)*fbTableSize])
		}
	})
	return &g2FixedBase.tbl
}

// fbDigit extracts the radix-16 digit of e at window w.
func fbDigit(e *big.Int, w int) uint {
	base := uint(w) * fbWindowBits
	return e.Bit(int(base)) |
		e.Bit(int(base)+1)<<1 |
		e.Bit(int(base)+2)<<2 |
		e.Bit(int(base)+3)<<3
}

// fbDigitLimbs is fbDigit on a reduced limb scalar. Windows are 4 bits,
// so no digit straddles a limb boundary.
func fbDigitLimbs(e *[4]uint64, w int) uint {
	pos := uint(w) * fbWindowBits
	return uint(e[pos>>6]>>(pos&63)) & (1<<fbWindowBits - 1)
}

// --- interleaved multi-wNAF cores ---

// g1MultiWNAF sets acc = Σ [es[i]]·pts[i] with one shared doubling
// chain (Straus/wNAF interleaving): the chain is as long as the largest
// scalar's wNAF, and each term contributes one addition per ~(w+1)
// bits. Scalars must be non-negative and are used at their raw values;
// callers fold signs into the points. This is the evaluation engine
// under both the multi-scalar entry points and the GLV/GLS ladders.
func g1MultiWNAF(acc *g1Jac, pts []*G1, es []*big.Int) {
	type term struct {
		digits []int8
		tbl    [1 << (wnafWidth - 2)]g1Jac
	}
	terms := make([]term, 0, len(pts))
	maxLen := 0
	for i := range pts {
		if es[i].Sign() == 0 || pts[i].inf {
			continue
		}
		var t term
		t.digits = ff.WNAF(es[i], wnafWidth)
		t.tbl[0].setAffine(pts[i])
		var twoA g1Jac
		twoA.setAffine(pts[i])
		twoA.double()
		for j := 1; j < len(t.tbl); j++ {
			t.tbl[j] = t.tbl[j-1]
			t.tbl[j].add(&twoA)
		}
		if len(t.digits) > maxLen {
			maxLen = len(t.digits)
		}
		terms = append(terms, t)
	}
	acc.setInfinity()
	for i := maxLen - 1; i >= 0; i-- {
		acc.double()
		for k := range terms {
			t := &terms[k]
			if i >= len(t.digits) {
				continue
			}
			if d := t.digits[i]; d > 0 {
				acc.add(&t.tbl[d>>1])
			} else if d < 0 {
				n := t.tbl[(-d)>>1]
				n.neg()
				acc.add(&n)
			}
		}
	}
}

// g2MultiWNAF is g1MultiWNAF on the twist.
func g2MultiWNAF(acc *g2Jac, pts []*G2, es []*big.Int) {
	type term struct {
		digits []int8
		tbl    [1 << (wnafWidth - 2)]g2Jac
	}
	terms := make([]term, 0, len(pts))
	maxLen := 0
	for i := range pts {
		if es[i].Sign() == 0 || pts[i].inf {
			continue
		}
		var t term
		t.digits = ff.WNAF(es[i], wnafWidth)
		t.tbl[0].setAffine(pts[i])
		var twoA g2Jac
		twoA.setAffine(pts[i])
		twoA.double()
		for j := 1; j < len(t.tbl); j++ {
			t.tbl[j] = t.tbl[j-1]
			t.tbl[j].add(&twoA)
		}
		if len(t.digits) > maxLen {
			maxLen = len(t.digits)
		}
		terms = append(terms, t)
	}
	acc.setInfinity()
	for i := maxLen - 1; i >= 0; i-- {
		acc.double()
		for k := range terms {
			t := &terms[k]
			if i >= len(t.digits) {
				continue
			}
			if d := t.digits[i]; d > 0 {
				acc.add(&t.tbl[d>>1])
			} else if d < 0 {
				n := t.tbl[(-d)>>1]
				n.neg()
				acc.add(&n)
			}
		}
	}
}

// --- multi-scalar multiplication (Straus interleaving + GLV/GLS split) ---

// G1MultiScalarMult computes Σ [scalars[i]]·points[i] with one shared
// doubling chain. Each scalar is reduced mod r (matching G1.ScalarMult)
// and GLV-split into two half-length sub-scalars on (P, φ(P)), so an
// n-term sum runs 2n interleaved terms over a ~√r-length chain —
// roughly half the doublings of plain Straus. Panics if the slice
// lengths differ.
func G1MultiScalarMult(points []*G1, scalars []*big.Int) *G1 {
	if len(points) != len(scalars) {
		panic("bn254: G1MultiScalarMult: mismatched lengths")
	}
	g1Endo.once.Do(g1EndoInit)
	// Exactly-sized flat digit buffer: every term appends at most
	// WNAFMaxDigits, and append must never reallocate because earlier
	// terms hold slices into the buffer.
	terms := make([]g1LadderTerm, 0, 2*len(points))
	digits := make([]int8, 0, 2*len(points)*ff.WNAFMaxDigits)
	var fbPts []*G1
	var fbEs []*big.Int
	for i := range points {
		if points[i].inf {
			continue
		}
		e := ff.ReduceScalar(scalars[i])
		if e == [4]uint64{} {
			continue
		}
		var ok bool
		if terms, digits, ok = glvSplitLimbs(points[i], &e, terms, digits); !ok {
			fbPts, fbEs = strausFallbackG1(points[i], scalars[i], fbPts, fbEs)
		}
	}
	var acc g1Jac
	g1LadderRun(&acc, terms)
	if len(fbPts) > 0 {
		var fbAcc g1Jac
		g1MultiWNAF(&fbAcc, fbPts, fbEs)
		acc.add(&fbAcc)
	}
	out := new(G1)
	acc.toAffine(out)
	return out
}

// G2MultiScalarMult is G1MultiScalarMult on the twist: scalars are
// reduced mod r (matching G2.ScalarMult) and GLS-split four ways on
// (Q, ψQ, ψ²Q, ψ³Q), so the shared chain is ~r^(1/4) long. Like
// G2.ScalarMult this is only valid for points of the r-subgroup —
// which every externally obtainable G2 value is. Panics if the slice
// lengths differ.
func G2MultiScalarMult(points []*G2, scalars []*big.Int) *G2 {
	if len(points) != len(scalars) {
		panic("bn254: G2MultiScalarMult: mismatched lengths")
	}
	g2Endo.once.Do(g2EndoInit)
	terms := make([]g2LadderTerm, 0, 4*len(points))
	digits := make([]int8, 0, 4*len(points)*ff.WNAFMaxDigits)
	var fbPts []*G2
	var fbEs []*big.Int
	for i := range points {
		if points[i].inf {
			continue
		}
		e := ff.ReduceScalar(scalars[i])
		if e == [4]uint64{} {
			continue
		}
		var ok bool
		if terms, digits, ok = glsSplitLimbs(points[i], &e, terms, digits); !ok {
			fbPts, fbEs = strausFallbackG2(points[i], scalars[i], fbPts, fbEs)
		}
	}
	var acc g2Jac
	g2LadderRun(&acc, terms)
	if len(fbPts) > 0 {
		var fbAcc g2Jac
		g2MultiWNAF(&fbAcc, fbPts, fbEs)
		acc.add(&fbAcc)
	}
	out := new(G2)
	acc.toAffine(out)
	return out
}
