//go:build !race

package bn254

import (
	"math/big"
	"testing"

	"repro/internal/ff"
)

// Allocation-regression guards for the hot operations. The ceilings are
// the counts measured when the fast paths landed, with ~30% headroom
// for run-to-run digit-pattern variation — they exist to catch a change
// that accidentally reintroduces per-step big.Int traffic (e.g. a
// constant rebuilt inside the Miller loop), not to pin exact numbers.
//
// Context for the ceilings: limb-based Fp arithmetic is alloc-free, so
// almost everything below comes from Fp.Inverse's big.Int ModInverse.
// Pair runs ~90 sequential line inversions (≈3.5k allocations);
// PairingTable replay runs none, which is why its ceiling is two orders
// of magnitude lower. The file is excluded under the race detector,
// whose instrumentation inflates allocation counts.

func allocScalar() *big.Int {
	k, _ := new(big.Int).SetString("1234567890abcdef1234567890abcdef1234567890abcdef", 16)
	return new(big.Int).Mod(k, ff.Order())
}

func TestPairAllocBudget(t *testing.T) {
	p, _, err := RandG1(nil)
	if err != nil {
		t.Fatal(err)
	}
	q, _, err := RandG2(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(10, func() { _ = Pair(p, q) }); got > 4600 {
		t.Fatalf("Pair allocates %.0f objects/op, budget 4600", got)
	}
}

func TestPairingTableReplayAllocBudget(t *testing.T) {
	p, _, err := RandG1(nil)
	if err != nil {
		t.Fatal(err)
	}
	q, _, err := RandG2(nil)
	if err != nil {
		t.Fatal(err)
	}
	tb := NewPairingTable(q)
	// Replay has no inversions: only the final-exponentiation easy part
	// inverts (once). Measured 33.
	if got := testing.AllocsPerRun(10, func() { _ = tb.Pair(p) }); got > 64 {
		t.Fatalf("PairingTable.Pair allocates %.0f objects/op, budget 64", got)
	}
}

func TestG1ScalarMultAllocBudget(t *testing.T) {
	p, _, err := RandG1(nil)
	if err != nil {
		t.Fatal(err)
	}
	k := allocScalar()
	var sink G1
	// GLV split + two wNAF recodings + one Jacobian→affine inversion.
	// Measured 49.
	if got := testing.AllocsPerRun(10, func() { sink.ScalarMult(p, k) }); got > 96 {
		t.Fatalf("G1.ScalarMult allocates %.0f objects/op, budget 96", got)
	}
}

func TestG2ScalarMultAllocBudget(t *testing.T) {
	q, _, err := RandG2(nil)
	if err != nil {
		t.Fatal(err)
	}
	k := allocScalar()
	var sink G2
	// GLS 4-way split + four wNAF recodings. Measured 74.
	if got := testing.AllocsPerRun(10, func() { sink.ScalarMult(q, k) }); got > 144 {
		t.Fatalf("G2.ScalarMult allocates %.0f objects/op, budget 144", got)
	}
}

func TestGTExpAllocBudget(t *testing.T) {
	g, err := RandGT(nil)
	if err != nil {
		t.Fatal(err)
	}
	k := allocScalar()
	var sink GT
	// Cyclotomic wNAF ladder, no inversions. Measured 5.
	if got := testing.AllocsPerRun(10, func() { sink.Exp(g, k) }); got > 16 {
		t.Fatalf("GT.Exp allocates %.0f objects/op, budget 16", got)
	}
}
