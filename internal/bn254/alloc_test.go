//go:build !race

package bn254

import (
	"crypto/rand"
	"math/big"
	"testing"

	"repro/internal/scalar"
)

// Allocation regression tests for the curve and pairing hot paths,
// running as part of the ordinary `go test ./...` gate (like the ff
// twins in internal/ff/alloc_test.go). Since the limb tier landed the
// steady-state budgets are exact: scalar multiplication and GT
// exponentiation are allocation-free, pairings allocate only the
// returned *GT. A change that silently reroutes a hot path back
// through big.Int (the fallback tier costs tens to thousands of
// allocations per op) fails here immediately, rather than in the
// opt-in bench-smoke gate. The file is excluded under the race
// detector, whose instrumentation inflates allocation counts.

func allocTestPoints(t *testing.T) (*G1, *G2, *big.Int) {
	t.Helper()
	p, _, err := RandG1(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	q, _, err := RandG2(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	k, err := scalar.Rand(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return p, q, k
}

func TestScalarMultAllocFree(t *testing.T) {
	p, q, k := allocTestPoints(t)
	var zp G1
	var zq G2
	if n := testing.AllocsPerRun(10, func() { zp.ScalarMult(p, k) }); n != 0 {
		t.Fatalf("G1.ScalarMult allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(10, func() { zq.ScalarMult(q, k) }); n != 0 {
		t.Fatalf("G2.ScalarMult allocates %v/op, want 0", n)
	}
	zp.ScalarBaseMult(k) // warm the fixed-base tables
	zq.ScalarBaseMult(k)
	if n := testing.AllocsPerRun(10, func() { zp.ScalarBaseMult(k) }); n != 0 {
		t.Fatalf("G1.ScalarBaseMult allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(10, func() { zq.ScalarBaseMult(k) }); n != 0 {
		t.Fatalf("G2.ScalarBaseMult allocates %v/op, want 0", n)
	}
}

func TestPairAlloc(t *testing.T) {
	p, q, _ := allocTestPoints(t)
	// The single allocation is the returned *GT; the Miller loop and
	// final exponentiation themselves are allocation-free.
	if n := testing.AllocsPerRun(5, func() { Pair(p, q) }); n > 1 {
		t.Fatalf("Pair allocates %v/op, want ≤ 1 (the returned GT)", n)
	}
	tb := NewPairingTable(q)
	if n := testing.AllocsPerRun(5, func() { tb.Pair(p) }); n > 1 {
		t.Fatalf("PairingTable.Pair allocates %v/op, want ≤ 1 (the returned GT)", n)
	}
}

func TestGTExpAllocFree(t *testing.T) {
	_, _, k := allocTestPoints(t)
	g := GTGenerator()
	var z GT
	if n := testing.AllocsPerRun(5, func() { z.Exp(g, k) }); n != 0 {
		t.Fatalf("GT.Exp allocates %v/op, want 0", n)
	}
}

func allocTestMulti(t *testing.T, n int) ([]*G1, []*G2, []*big.Int) {
	t.Helper()
	g1s := make([]*G1, n)
	g2s := make([]*G2, n)
	ks := make([]*big.Int, n)
	for i := 0; i < n; i++ {
		var err error
		if g1s[i], _, err = RandG1(rand.Reader); err != nil {
			t.Fatal(err)
		}
		if g2s[i], _, err = RandG2(rand.Reader); err != nil {
			t.Fatal(err)
		}
		if ks[i], err = scalar.Rand(rand.Reader); err != nil {
			t.Fatal(err)
		}
	}
	return g1s, g2s, ks
}

func TestMultiScalarMultAlloc(t *testing.T) {
	g1s, g2s, ks := allocTestMulti(t, 16)
	// Three allocations: the terms slice, the shared flat digit buffer
	// and the returned point. The per-term digit recodings slice into
	// the flat buffer instead of allocating.
	if n := testing.AllocsPerRun(5, func() { G1MultiScalarMult(g1s, ks) }); n > 3 {
		t.Fatalf("G1MultiScalarMult(16) allocates %v/op, want ≤ 3", n)
	}
	if n := testing.AllocsPerRun(5, func() { G2MultiScalarMult(g2s, ks) }); n > 3 {
		t.Fatalf("G2MultiScalarMult(16) allocates %v/op, want ≤ 3", n)
	}
}

func TestMultiExpPippengerAlloc(t *testing.T) {
	g1s, g2s, ks := allocTestMulti(t, 64)
	// Warm the arena pool: the first call per P allocates the arena's
	// backing slices, every later call reuses them.
	G1MultiExpPippenger(g1s, ks)
	G2MultiExpPippenger(g2s, ks)
	// Steady state: the returned point plus whatever the pool hands
	// back; a small budget catches a return to per-call buffers (the
	// pre-arena path cost ~3000 allocs at this size).
	if n := testing.AllocsPerRun(5, func() { G1MultiExpPippenger(g1s, ks) }); n > 8 {
		t.Fatalf("G1MultiExpPippenger(64) allocates %v/op, want ≤ 8", n)
	}
	if n := testing.AllocsPerRun(5, func() { G2MultiExpPippenger(g2s, ks) }); n > 8 {
		t.Fatalf("G2MultiExpPippenger(64) allocates %v/op, want ≤ 8", n)
	}
}
