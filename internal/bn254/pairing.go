package bn254

import (
	"repro/internal/ff"
)

// Pair computes the ate pairing e(p, q) — a non-degenerate bilinear map
// G1 × G2 → GT. Pairing with the identity on either side yields 1.
//
// The implementation is the ate pairing with Miller-loop length
// t−1 = 6u², lines computed on the twist with Fp2 arithmetic and mapped
// into Fp12 through the untwist ψ(x,y) = (x·w², y·w³), followed by the
// fast Frobenius-decomposed final exponentiation. A structurally
// independent slow path (PairReference) exists for cross-checking.
func Pair(p *G1, q *G2) *GT {
	out := new(GT)
	if p.IsInfinity() || q.IsInfinity() {
		return out.SetOne()
	}
	var f ff.Fp12
	millerLoopTwistedInto(&f, p, q)
	finalExpFastInto(&out.v, &f)
	return out
}

// PairReference computes the same pairing via a generic Miller loop over
// E(Fp12) (the curve itself, after untwisting Q) and a final
// exponentiation by the literal exponent (p¹²−1)/r. It shares no line
// arithmetic or Frobenius decomposition with Pair and is used by tests
// and the E10 ablation bench.
func PairReference(p *G1, q *G2) *GT {
	if p.IsInfinity() || q.IsInfinity() {
		return GTOne()
	}
	f := millerLoopGeneric(p, q)
	var out GT
	out.v.Exp(f, finalExpPower)
	return &out
}

// fp2Three is the constant 3 embedded in Fp2, hoisted to package level
// so the Miller-loop step functions do not rebuild it (a big.Int
// allocation) on every doubling.
var fp2Three = func() *ff.Fp2 {
	var t ff.Fp2
	t.SetFp(ff.FpFromInt64(3))
	return &t
}()

// lineEval holds a sparse line evaluation l(P) = e0 + e1·w + e3·w³ with
// e0 ∈ Fp (embedded), e1, e3 ∈ Fp2.
type lineEval struct {
	e0, e1, e3 ff.Fp2
}

// toFp12 expands the sparse line into a full Fp12 element.
func (l *lineEval) toFp12() *ff.Fp12 {
	var out ff.Fp12
	out.C0.C0.Set(&l.e0) // w⁰
	out.C1.C0.Set(&l.e1) // w¹
	out.C1.C1.Set(&l.e3) // w³
	return &out
}

// doubleStep doubles t in place and returns the tangent line at the old
// t, evaluated at p. t must not be infinity or 2-torsion.
func doubleStep(t *G2, p *G1) lineEval {
	// Line denominators are coordinates of the public input points, so
	// the variable-time Kaliski inverse is safe here — and the ~100
	// tangent/chord slopes per Miller loop form a sequential chain
	// (each feeds the next point update), so they cannot be batched
	// within one pairing. See ff.InverseVartime.
	var den ff.Fp2
	den.Double(&t.y)
	den.InverseVartime(&den)
	return doubleStepPre(t, p, &den)
}

// doubleStepDen returns the tangent-line denominator 2y whose inverse
// doubleStepPre consumes — split out so multi-pairings can batch-invert
// the denominators of many lockstep Miller loops at once.
func doubleStepDen(t *G2) ff.Fp2 {
	var den ff.Fp2
	den.Double(&t.y)
	return den
}

// doubleStepPre is doubleStep with the denominator inverse (2y)⁻¹
// already computed.
func doubleStepPre(t *G2, p *G1, dinv *ff.Fp2) lineEval {
	a, b := doubleStepCoeffs(t, dinv)
	return lineFromCoeffs(&a, &b, p)
}

// doubleStepCoeffs advances t to 2t and returns the P-independent
// tangent-line coefficients (a, b) with l(P) = P.y + a·P.x·w + b·w³
// (a = −λ, b = λ·tx − ty). This is the piece a PairingTable stores.
func doubleStepCoeffs(t *G2, dinv *ff.Fp2) (a, b ff.Fp2) {
	// λ = 3x²/(2y) on the twist.
	var lambda, num ff.Fp2
	num.Square(&t.x)
	num.Mul(&num, fp2Three)
	lambda.Mul(&num, dinv)

	a.Neg(&lambda)
	b.Mul(&lambda, &t.x)
	b.Sub(&b, &t.y)

	// Point update: x' = λ² − 2x; y' = λ(x − x') − y.
	var x3, y3 ff.Fp2
	x3.Square(&lambda)
	var twoX ff.Fp2
	twoX.Double(&t.x)
	x3.Sub(&x3, &twoX)
	y3.Sub(&t.x, &x3)
	y3.Mul(&y3, &lambda)
	y3.Sub(&y3, &t.y)
	t.x.Set(&x3)
	t.y.Set(&y3)
	return a, b
}

// lineFromCoeffs specializes stored line coefficients to the G1
// argument: l(P) = P.y + (a·P.x)·w + b·w³. Only two base-field
// multiplications (a·P.x is an Fp2-by-Fp scaling) — no G2 arithmetic,
// no inversions.
func lineFromCoeffs(a, b *ff.Fp2, p *G1) lineEval {
	var l lineEval
	l.e0.SetFp(&p.y)
	l.e1.MulFp(a, &p.x)
	l.e3.Set(b)
	return l
}

// addStep sets t = t + q in place and returns the chord line through the
// old t and q, evaluated at p. Requires t ≠ ±q and neither infinite.
func addStep(t, q *G2, p *G1) lineEval {
	var den ff.Fp2
	den.Sub(&q.x, &t.x)
	den.InverseVartime(&den) // public operand, as in doubleStep
	return addStepPre(t, q, p, &den)
}

// addStepDen returns the chord-line denominator qx − tx whose inverse
// addStepPre consumes.
func addStepDen(t, q *G2) ff.Fp2 {
	var den ff.Fp2
	den.Sub(&q.x, &t.x)
	return den
}

// addStepPre is addStep with the denominator inverse (qx − tx)⁻¹
// already computed.
func addStepPre(t, q *G2, p *G1, dinv *ff.Fp2) lineEval {
	a, b := addStepCoeffs(t, q, dinv)
	return lineFromCoeffs(&a, &b, p)
}

// addStepCoeffs advances t to t+q and returns the P-independent chord
// coefficients (a, b), the addition-step analogue of doubleStepCoeffs
// (a = −λ, b = λ·qx − qy).
func addStepCoeffs(t, q *G2, dinv *ff.Fp2) (a, b ff.Fp2) {
	var lambda, num ff.Fp2
	num.Sub(&q.y, &t.y)
	lambda.Mul(&num, dinv)

	a.Neg(&lambda)
	b.Mul(&lambda, &q.x)
	b.Sub(&b, &q.y)

	var x3, y3 ff.Fp2
	x3.Square(&lambda)
	x3.Sub(&x3, &t.x)
	x3.Sub(&x3, &q.x)
	y3.Sub(&t.x, &x3)
	y3.Mul(&y3, &lambda)
	y3.Sub(&y3, &t.y)
	t.x.Set(&x3)
	t.y.Set(&y3)
	return a, b
}

// millerLoopTwistedInto computes f = f_{6u², Q}(P) with all point
// arithmetic on the twist. Out-param form: the accumulator lives in the
// caller's frame, so a steady-state pairing performs no heap
// allocation for it.
func millerLoopTwistedInto(f *ff.Fp12, p *G1, q *G2) {
	f.SetOne()
	var t G2
	t.Set(q)
	s := ateLoop
	for i := s.BitLen() - 2; i >= 0; i-- {
		f.Square(f)
		l := doubleStep(&t, p)
		f.MulLine(f, &l.e0, &l.e1, &l.e3)
		if s.Bit(i) == 1 {
			l := addStep(&t, q, p)
			f.MulLine(f, &l.e0, &l.e1, &l.e3)
		}
	}
}

// millerLoopTwisted is the allocating wrapper around
// millerLoopTwistedInto, retained for tests.
func millerLoopTwisted(p *G1, q *G2) *ff.Fp12 {
	f := new(ff.Fp12)
	millerLoopTwistedInto(f, p, q)
	return f
}

// fp12Point is an affine point on E(Fp12): y² = x³ + 3, used by the
// generic reference Miller loop.
type fp12Point struct {
	x, y ff.Fp12
}

// untwist maps a twist point into E(Fp12): ψ(x, y) = (x·w², y·w³).
func untwist(q *G2) fp12Point {
	var out fp12Point
	// x·w²: w² = v, so an Fp2 element c lands in coefficient e2 (C0.C1).
	out.x.C0.C1.Set(&q.x)
	// y·w³: coefficient e3 (C1.C1).
	out.y.C1.C1.Set(&q.y)
	return out
}

// genericLine evaluates the line through a and b (tangent when a == b) at
// the embedded point (xp, yp) and advances a to a+b. All arithmetic is in
// Fp12.
func genericLineAndAdd(a *fp12Point, b *fp12Point, xp, yp *ff.Fp12) *ff.Fp12 {
	var lambda ff.Fp12
	if a.x.Equal(&b.x) && a.y.Equal(&b.y) {
		var num, den ff.Fp12
		num.Square(&a.x)
		var three ff.Fp12
		three.SetOne()
		three.Add(&three, &three)
		var one ff.Fp12
		one.SetOne()
		three.Add(&three, &one)
		num.Mul(&num, &three)
		den.Add(&a.y, &a.y)
		den.Inverse(&den)
		lambda.Mul(&num, &den)
	} else {
		var num, den ff.Fp12
		num.Sub(&b.y, &a.y)
		den.Sub(&b.x, &a.x)
		den.Inverse(&den)
		lambda.Mul(&num, &den)
	}
	// l(P) = (yp − y_a) − λ(xp − x_a).
	var l, t ff.Fp12
	l.Sub(yp, &a.y)
	t.Sub(xp, &a.x)
	t.Mul(&t, &lambda)
	l.Sub(&l, &t)

	// a ← a + b.
	var x3, y3 ff.Fp12
	x3.Square(&lambda)
	x3.Sub(&x3, &a.x)
	x3.Sub(&x3, &b.x)
	y3.Sub(&a.x, &x3)
	y3.Mul(&y3, &lambda)
	y3.Sub(&y3, &a.y)
	a.x.Set(&x3)
	a.y.Set(&y3)
	return &l
}

// millerLoopGeneric computes f_{6u², ψ(Q)}(P) on E(Fp12) directly.
func millerLoopGeneric(p *G1, q *G2) *ff.Fp12 {
	qq := untwist(q)
	var xp, yp ff.Fp12
	xp.C0.C0.SetFp(&p.x)
	yp.C0.C0.SetFp(&p.y)

	var f ff.Fp12
	f.SetOne()
	t := fp12Point{}
	t.x.Set(&qq.x)
	t.y.Set(&qq.y)
	s := ateLoop
	for i := s.BitLen() - 2; i >= 0; i-- {
		f.Mul(&f, &f)
		tCopy := fp12Point{}
		tCopy.x.Set(&t.x)
		tCopy.y.Set(&t.y)
		l := genericLineAndAdd(&t, &tCopy, &xp, &yp)
		f.Mul(&f, l)
		if s.Bit(i) == 1 {
			l := genericLineAndAdd(&t, &qq, &xp, &yp)
			f.Mul(&f, l)
		}
	}
	return &f
}

// uLimbs is the BN parameter u as a limb scalar, feeding the
// allocation-free cyclotomic u-power exponentiations in the final
// exponentiation's hard part.
var uLimbs = [4]uint64{4965661367192848881}

// finalExpFastInto sets out = f^((p¹²−1)/r) using the easy part
// (p⁶−1)(p²+1) followed by the Devegili–Scott hard-part addition chain.
// out may alias f. Every intermediate lives on the stack and the
// u-power exponentiations run on limbs, so the whole exponentiation is
// allocation-free.
func finalExpFastInto(out, f *ff.Fp12) {
	// Easy part: t1 = f^((p⁶−1)(p²+1)).
	var t1, inv, t2 ff.Fp12
	t1.Conjugate(f) // f^(p⁶)
	inv.Inverse(f)
	t1.Mul(&t1, &inv) // f^(p⁶−1)
	t2.FrobeniusP2(&t1)
	t1.Mul(&t1, &t2) // ·(p²+1)

	// Hard part. After the easy part t1 lies in the cyclotomic subgroup
	// G_Φ12, so conjugation is inversion and the u-power exponentiations
	// and squarings below may use the Granger–Scott shortcuts.
	var fp, fp2, fp3 ff.Fp12
	fp.Frobenius(&t1)
	fp2.FrobeniusP2(&t1)
	fp3.Frobenius(&fp2)

	var fu, fu2, fu3 ff.Fp12
	fu.ExpCyclotomicLimbs(&t1, &uLimbs)
	fu2.ExpCyclotomicLimbs(&fu, &uLimbs)
	fu3.ExpCyclotomicLimbs(&fu2, &uLimbs)

	var y3, fu2p, fu3p, y2 ff.Fp12
	y3.Frobenius(&fu)
	fu2p.Frobenius(&fu2)
	fu3p.Frobenius(&fu3)
	y2.FrobeniusP2(&fu2)

	var y0 ff.Fp12
	y0.Mul(&fp, &fp2)
	y0.Mul(&y0, &fp3)

	var y1, y4, y5, y6 ff.Fp12
	y1.Conjugate(&t1)
	y5.Conjugate(&fu2)
	y3.Conjugate(&y3)
	y4.Mul(&fu, &fu2p)
	y4.Conjugate(&y4)
	y6.Mul(&fu3, &fu3p)
	y6.Conjugate(&y6)

	var t0, acc ff.Fp12
	t0.CyclotomicSquare(&y6)
	t0.Mul(&t0, &y4)
	t0.Mul(&t0, &y5)
	acc.Mul(&y3, &y5)
	acc.Mul(&acc, &t0)
	t0.Mul(&t0, &y2)
	acc.CyclotomicSquare(&acc)
	acc.Mul(&acc, &t0)
	acc.CyclotomicSquare(&acc)
	t0.Mul(&acc, &y1)
	acc.Mul(&acc, &y0)
	t0.CyclotomicSquare(&t0)
	t0.Mul(&t0, &acc)
	out.Set(&t0)
}

// finalExpFast is the allocating wrapper around finalExpFastInto,
// retained for tests and differential twins.
func finalExpFast(f *ff.Fp12) *ff.Fp12 {
	out := new(ff.Fp12)
	finalExpFastInto(out, f)
	return out
}
