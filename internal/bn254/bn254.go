// Package bn254 implements the BN254 pairing-friendly elliptic-curve
// groups and the optimal-ate/ate pairings over them, entirely on the Go
// standard library. It provides the "parameters generating algorithm"
// G(1ⁿ) of the paper (§2.1): prime-order groups G1, G2, GT of order r
// connected by an efficiently computable, non-degenerate bilinear map
//
//	e : G1 × G2 → GT.
//
// The paper is written for symmetric (Type-1) pairings; this library uses
// the standard asymmetric (Type-3) instantiation and fixes, once and for
// all, which side of the pairing each scheme element lives on (see
// package dlr). The BDDH and k-Lin assumptions the paper relies on are
// conjectured to hold in this group.
//
// Curve: E(Fp): y² = x³ + 3, with the sextic D-type twist
// E'(Fp2): y² = x³ + 3/ξ, ξ = 9+i.
//
// Random group elements can be sampled obliviously (without anyone
// learning their discrete logarithms) via hashing to the curve — a
// property the paper's §5.2 explicitly requires of the group.
//
// # Fast paths and timing caveats
//
// Scalar multiplication, pairing and exponentiation each have several
// implementations: a fast path (the short name — ScalarMult,
// ScalarBaseMult, Pair, MultiPair, PairBatch, G1MultiScalarMult,
// G2MultiScalarMult, GTMultiExp, GT.Exp) and a structurally simpler
// reference path (the *Reference name) that the fast path is
// differentially tested against. G1.ScalarMult decomposes the scalar
// along the GLV endomorphism φ(x,y) = (βx, y) and G2.ScalarMult along
// the GLS endomorphism ψ (untwist–Frobenius–twist) into half- and
// quarter-length sub-scalars; the plain wNAF tier survives as
// ScalarMultWNAF (see internal/scalar and endo.go). Prefer
// ScalarBaseMult over ScalarMult(Generator(), k) — it walks a
// precomputed fixed-base table — and prefer MultiPair/PairBatch over a
// loop of Pair calls when several pairings are evaluated together.
// When many G1 points are paired against the same fixed G2 point, build
// a PairingTable once and replay it (or mix replays with cold pairs via
// MultiPairMixed).
//
// None of the arithmetic is constant-time: wNAF recoding, windowed
// table walks and big.Int arithmetic all leak scalar bit patterns
// through timing and memory access. That is deliberate — the paper's
// continual-leakage model protects secrets by distribution and refresh
// (leakage of bounded λ bits per period is assumed and tolerated), not
// by side-channel-free arithmetic. Do not reuse this code where
// constant-time guarantees are required.
package bn254

import (
	"math/big"

	"repro/internal/ff"
)

// u is the BN parameter; p = 36u⁴+36u³+24u²+6u+1, r = 36u⁴+36u³+18u²+6u+1.
var u = new(big.Int).SetUint64(4965661367192848881)

// Order returns a copy of the (prime) order r of G1, G2 and GT.
func Order() *big.Int { return ff.Order() }

// curveB is the G1 curve constant b = 3.
var curveB = ff.FpFromInt64(3)

// twistB is the G2 curve constant b' = 3/ξ.
var twistB = func() *ff.Fp2 {
	var z ff.Fp2
	z.SetFp(ff.FpFromInt64(3))
	var xiInv ff.Fp2
	xiInv.Inverse(ff.Xi())
	z.Mul(&z, &xiInv)
	return &z
}()

// g2Cofactor is #E'(Fp2)/r = 2p − r.
var g2Cofactor = func() *big.Int {
	c := new(big.Int).Lsh(ff.Modulus(), 1)
	return c.Sub(c, ff.Order())
}()

// ateLoop is the ate-pairing Miller-loop length t−1 = 6u².
var ateLoop = func() *big.Int {
	s := new(big.Int).Mul(u, u)
	return s.Mul(s, big.NewInt(6))
}()

// finalExpPower is (p¹²−1)/r, the full final-exponentiation exponent used
// by the reference pairing path.
var finalExpPower = func() *big.Int {
	p := ff.Modulus()
	p12 := new(big.Int).Exp(p, big.NewInt(12), nil)
	p12.Sub(p12, big.NewInt(1))
	return p12.Div(p12, ff.Order())
}()
