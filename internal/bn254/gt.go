package bn254

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"
	"sync"

	"repro/internal/ff"
)

// GT is an element of the order-r target group (a subgroup of Fp12*).
// The zero value is NOT valid; obtain elements from Pair, GTOne, RandGT
// or SetBytes.
type GT struct {
	v ff.Fp12
}

// GTBytes is the size of the canonical GT encoding.
const GTBytes = ff.Fp12Bytes

// GTOne returns the identity of GT.
func GTOne() *GT {
	var z GT
	z.v.SetOne()
	return &z
}

// gtGen lazily computes e(G1Generator, G2Generator), a generator of GT.
var gtGen = struct {
	once sync.Once
	g    GT
}{}

// GTGenerator returns a copy of e(g, g2), a generator of GT.
func GTGenerator() *GT {
	gtGen.once.Do(func() {
		gtGen.g.Set(Pair(G1Generator(), G2Generator()))
	})
	return new(GT).Set(&gtGen.g)
}

// RandGT returns a uniformly random GT element of unknown discrete
// logarithm, obtained by pairing a hashed-to-G1 point with the G2
// generator — the oblivious sampling required by the paper's §5.2.
func RandGT(rng io.Reader) (*GT, error) {
	if rng == nil {
		rng = rand.Reader
	}
	var seed [32]byte
	if _, err := io.ReadFull(rng, seed[:]); err != nil {
		return nil, fmt.Errorf("bn254: sampling GT seed: %w", err)
	}
	h := HashToG1("BN254-GT-SAMPLE", seed[:])
	return Pair(h, G2Generator()), nil
}

// Set sets z = a and returns z.
func (z *GT) Set(a *GT) *GT {
	z.v.Set(&a.v)
	return z
}

// SetOne sets z to the identity and returns z.
func (z *GT) SetOne() *GT {
	z.v.SetOne()
	return z
}

// IsOne reports whether z is the identity.
func (z *GT) IsOne() bool { return z.v.IsOne() }

// Equal reports whether z == a.
func (z *GT) Equal(a *GT) bool { return z.v.Equal(&a.v) }

// Mul sets z = a·b and returns z.
func (z *GT) Mul(a, b *GT) *GT {
	z.v.Mul(&a.v, &b.v)
	return z
}

// Inverse sets z = a⁻¹ and returns z.
func (z *GT) Inverse(a *GT) *GT {
	z.v.Inverse(&a.v)
	return z
}

// Div sets z = a/b and returns z.
func (z *GT) Div(a, b *GT) *GT {
	var binv GT
	binv.Inverse(b)
	return z.Mul(a, &binv)
}

// Exp sets z = a^k and returns z. k is reduced mod r. Elements of the
// order-r subgroup (every honestly produced GT element) take a wNAF
// route with Granger–Scott cyclotomic squarings; arbitrary Fp12
// elements smuggled in through SetBytes fall back to the generic
// square-and-multiply, so results stay correct either way. Not
// constant-time: the bit pattern of k leaks through timing.
//
//dlr:noalloc
func (z *GT) Exp(a *GT, k *big.Int) *GT {
	if a.v.IsCyclotomic() {
		// ff.ReduceScalar + the limb wNAF walk keep the whole
		// exponentiation off the heap.
		e := ff.ReduceScalar(k)
		z.v.ExpCyclotomicLimbs(&a.v, &e)
	} else {
		//dlrlint:ignore hot-path-alloc cold path for non-cyclotomic elements smuggled in via SetBytes
		z.v.Exp(&a.v, new(big.Int).Mod(k, ff.Order()))
	}
	return z
}

// ExpReference is the generic big.Int square-and-multiply twin of Exp,
// retained for differential testing and as the allocation-heavy
// reference the E14 memory experiment contrasts against.
func (z *GT) ExpReference(a *GT, k *big.Int) *GT {
	z.v.Exp(&a.v, new(big.Int).Mod(k, ff.Order()))
	return z
}

// IsInSubgroup reports whether z^r = 1. Membership in the cyclotomic
// subgroup G_Φ12 ⊇ GT is checked first (two Frobenius maps), both as a
// cheap early rejection and to license the fast exponentiation.
func (z *GT) IsInSubgroup() bool {
	if !z.v.IsCyclotomic() {
		return false
	}
	var t ff.Fp12
	t.ExpCyclotomic(&z.v, ff.Order())
	return t.IsOne()
}

// GTMultiExp computes Π as[i]^ks[i], dispatching by size like
// G1MultiExp: below gtPippengerCrossover terms it runs the shared
// Straus chain (gtMultiExpStraus); at or above it, and when every base
// is cyclotomic (so inversion is a free conjugation), it switches to
// the bucket method (gtMultiExpPippenger). Panics if the slice lengths
// differ.
func GTMultiExp(as []*GT, ks []*big.Int) *GT {
	if len(as) != len(ks) {
		panic("bn254: GTMultiExp: mismatched lengths")
	}
	if len(as) >= gtPippengerCrossover {
		if out := gtMultiExpPippenger(as, ks); out != nil {
			return out
		}
	}
	return gtMultiExpStraus(as, ks)
}

// gtPippengerCrossover is the term count where the bucket method's
// windows·(n + 2^c) multiplications undercut Straus' ~(15 + 64)·n
// (15-entry table build plus one mul per radix-16 window); the cost
// model in docs/ARCHITECTURE.md puts the break-even near 64 terms.
const gtPippengerCrossover = 64

// gtMultiExpStraus is the Straus tier: one shared squaring chain over
// per-term radix-16 tables (an n-term product costs one
// exponentiation's squarings plus n·(15 + bits/4) multiplications),
// with cyclotomic squarings when every base passes IsCyclotomic.
// Exponents are reduced mod r, matching Exp.
func gtMultiExpStraus(as []*GT, ks []*big.Int) *GT {
	type term struct {
		tbl [15]ff.Fp12 // tbl[d-1] = base^d
		e   *big.Int
	}
	terms := make([]term, 0, len(as))
	cyclotomic := true
	maxBits := 0
	for i := range as {
		e := new(big.Int).Mod(ks[i], ff.Order())
		if e.Sign() == 0 || as[i].IsOne() {
			continue
		}
		var t term
		t.e = e
		t.tbl[0].Set(&as[i].v)
		for d := 1; d < len(t.tbl); d++ {
			t.tbl[d].Mul(&t.tbl[d-1], &t.tbl[0])
		}
		if cyclotomic && !as[i].v.IsCyclotomic() {
			cyclotomic = false
		}
		if e.BitLen() > maxBits {
			maxBits = e.BitLen()
		}
		terms = append(terms, t)
	}
	out := GTOne()
	if len(terms) == 0 {
		return out
	}
	windows := (maxBits + 3) / 4
	acc := &out.v
	for w := windows - 1; w >= 0; w-- {
		if w != windows-1 {
			for s := 0; s < 4; s++ {
				if cyclotomic {
					acc.CyclotomicSquare(acc)
				} else {
					acc.Square(acc)
				}
			}
		}
		for k := range terms {
			t := &terms[k]
			base := uint(w) * 4
			d := t.e.Bit(int(base)) |
				t.e.Bit(int(base)+1)<<1 |
				t.e.Bit(int(base)+2)<<2 |
				t.e.Bit(int(base)+3)<<3
			if d != 0 {
				acc.Mul(acc, &t.tbl[d-1])
			}
		}
	}
	return out
}

// gtMultiExpPippenger is the bucket-method tier for GT: signed
// radix-2^c digits (pippenger.go) index 2^(c−1) Fp12 buckets per
// window — negative digits multiply by the conjugate, which inverts
// cyclotomic elements for free — and each window folds by running
// suffix products. No table build and one multiplication per non-zero
// digit, so windows·(n + 2^c) multiplications total. Returns nil if
// any base is outside the cyclotomic subgroup (conjugation would not
// be an inversion there); the dispatcher then falls back to Straus.
func gtMultiExpPippenger(as []*GT, ks []*big.Int) *GT {
	bases := make([]ff.Fp12, 0, len(as))
	es := make([]*big.Int, 0, len(as))
	maxBits := 1
	for i := range as {
		e := new(big.Int).Mod(ks[i], ff.Order())
		if e.Sign() == 0 || as[i].IsOne() {
			continue
		}
		if !as[i].v.IsCyclotomic() {
			return nil
		}
		bases = append(bases, as[i].v)
		es = append(es, e)
		if e.BitLen() > maxBits {
			maxBits = e.BitLen()
		}
	}
	out := GTOne()
	if len(bases) == 0 {
		return out
	}
	// The GT cost model weighs bucket muls against fold muls 1:1, so
	// the optimal c is ~log2(n): one size class up from the elliptic
	// case, where fold adds are ~3× pricier than bucket adds.
	c := pippengerWindow(len(bases)) + 1
	windows := maxBits/c + 2
	digits := pippengerDigits(es, c, windows)

	conjs := make([]ff.Fp12, len(bases))
	for i := range bases {
		conjs[i].Conjugate(&bases[i])
	}
	nb := 1 << (c - 1)
	buckets := make([]ff.Fp12, nb)
	used := make([]bool, nb)
	acc := &out.v
	for w := windows - 1; w >= 0; w-- {
		if w != windows-1 {
			for s := 0; s < c; s++ {
				acc.CyclotomicSquare(acc)
			}
		}
		for i := range used {
			used[i] = false
		}
		any := false
		for i := range bases {
			d := digits[i*windows+w]
			if d == 0 {
				continue
			}
			any = true
			var b int32
			var src *ff.Fp12
			if d > 0 {
				b, src = d-1, &bases[i]
			} else {
				b, src = -d-1, &conjs[i]
			}
			if !used[b] {
				buckets[b].Set(src)
				used[b] = true
			} else {
				buckets[b].Mul(&buckets[b], src)
			}
		}
		if !any {
			continue
		}
		// Fold: Π bucket[b]^(b+1) via running suffix products.
		var running, sum ff.Fp12
		haveRunning, haveSum := false, false
		for b := nb - 1; b >= 0; b-- {
			if used[b] {
				if !haveRunning {
					running.Set(&buckets[b])
					haveRunning = true
				} else {
					running.Mul(&running, &buckets[b])
				}
			}
			if haveRunning {
				if !haveSum {
					sum.Set(&running)
					haveSum = true
				} else {
					sum.Mul(&sum, &running)
				}
			}
		}
		if haveSum {
			acc.Mul(acc, &sum)
		}
	}
	return out
}

// Bytes returns the canonical 384-byte encoding.
func (z *GT) Bytes() []byte { return z.v.Bytes() }

// SetBytes decodes the canonical encoding. It validates field-element
// ranges but not subgroup membership (use IsInSubgroup when needed).
func (z *GT) SetBytes(b []byte) (*GT, error) {
	if _, err := z.v.SetBytes(b); err != nil {
		return nil, fmt.Errorf("bn254: decoding GT: %w", err)
	}
	return z, nil
}

// String implements fmt.Stringer.
func (z *GT) String() string { return "GT:" + z.v.String() }
