package bn254

import (
	"runtime"
	"testing"
)

// Differential tests for the chunk-parallel primitive paths. The host
// running CI may have a single CPU, so each test raises GOMAXPROCS
// above the core count: par.Workers() reads GOMAXPROCS, the parallel
// branches trigger, and the goroutines interleave on however many
// cores exist — which is exactly what `make race` needs to observe.
// The serial reference is obtained by pinning GOMAXPROCS(1), which
// routes the very same call through the serial globally scheduled
// path.

// pippengerParTestPoints is sized so the post-GLV/GLS split base
// count clears pippengerParMinBases for both groups: 300 G1 points
// split 2-way into 600 bases, 150 G2 points split 4-way into 600.
const (
	pippengerParTestG1 = 300
	pippengerParTestG2 = 150
)

func TestPippengerParallelMatchesSerialG1(t *testing.T) {
	pts, es := randG1Set(t, pippengerParTestG1)

	old := runtime.GOMAXPROCS(1)
	want := G1MultiExpPippenger(pts, es)
	runtime.GOMAXPROCS(4)
	got := G1MultiExpPippenger(pts, es)
	runtime.GOMAXPROCS(old)

	if !got.Equal(want) {
		t.Fatalf("n=%d: window-parallel Pippenger diverged from serial: %v != %v",
			pippengerParTestG1, got, want)
	}
}

func TestPippengerParallelMatchesSerialG2(t *testing.T) {
	pts, es := randG2Set(t, pippengerParTestG2)

	old := runtime.GOMAXPROCS(1)
	want := G2MultiExpPippenger(pts, es)
	runtime.GOMAXPROCS(4)
	got := G2MultiExpPippenger(pts, es)
	runtime.GOMAXPROCS(old)

	if !got.Equal(want) {
		t.Fatalf("n=%d: window-parallel Pippenger diverged from serial: %v != %v",
			pippengerParTestG2, got, want)
	}
}

// TestMultiPairParallelMatchesPairs checks the chunked MultiPair — 12
// pairs splits into 3 lockstep chunks at multiPairParMinChunk=4 —
// against the product of independent Pair calls, including identity
// pairs that the active-filter must skip.
func TestMultiPairParallelMatchesPairs(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	const n = 12
	ps := make([]*G1, 0, n+2)
	qs := make([]*G2, 0, n+2)
	for i := 0; i < n; i++ {
		ps = append(ps, new(G1).ScalarBaseMult(randScalar(t)))
		qs = append(qs, new(G2).ScalarBaseMult(randScalar(t)))
		if i == 5 { // identity on either side contributes 1
			ps = append(ps, new(G1))
			qs = append(qs, new(G2).ScalarBaseMult(randScalar(t)))
			ps = append(ps, new(G1).ScalarBaseMult(randScalar(t)))
			qs = append(qs, new(G2))
		}
	}

	want := GTOne()
	for i := range ps {
		want.Mul(want, Pair(ps[i], qs[i]))
	}
	got := MultiPair(ps, qs)
	if !got.Equal(want) {
		t.Fatalf("chunk-parallel MultiPair diverged from Π Pair: %v != %v", got, want)
	}
}

// TestPairBatchParallelMatchesPairs checks the chunked PairBatch
// against per-pair Pair calls at a size that splits.
func TestPairBatchParallelMatchesPairs(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	const n = 13 // odd size → uneven chunks
	ps := make([]*G1, n)
	qs := make([]*G2, n)
	for i := 0; i < n; i++ {
		if i == 7 {
			ps[i] = new(G1)
			qs[i] = new(G2).ScalarBaseMult(randScalar(t))
			continue
		}
		ps[i] = new(G1).ScalarBaseMult(randScalar(t))
		qs[i] = new(G2).ScalarBaseMult(randScalar(t))
	}

	got := PairBatch(ps, qs)
	for i := range ps {
		want := Pair(ps[i], qs[i])
		if !got[i].Equal(want) {
			t.Fatalf("index %d: chunk-parallel PairBatch diverged from Pair", i)
		}
	}
}
