package bn254

import (
	"repro/internal/ff"
	"repro/internal/par"
)

// Multi-pairing fast paths. Both routines run the Miller loops of all
// input pairs in lockstep so that the per-step line denominators — the
// only field inversions in the loop — can be batch-inverted with
// Montgomery's trick (one inversion per step instead of one per step
// per pair).
//
//   - MultiPair computes the PRODUCT Π e(pᵢ, qᵢ): the pairs also share
//     a single Fp12 accumulator (one squaring per step total) and a
//     single final exponentiation. This is the right entry point for
//     product-of-pairings verifications and GT-side decryptions.
//   - PairBatch returns the SEPARATE values e(pᵢ, qᵢ): accumulators and
//     final exponentiations stay per-pair, only the inversions are
//     shared. This is the right entry point when each pairing output is
//     needed individually, e.g. the §5.2 ciphertext-reuse transport.
//
// Both entry points split large inputs into contiguous chunks of
// lockstep loops and fan the chunks out across cores (par.Chunks):
// the Miller accumulator is multiplicative, so the product of
// per-chunk accumulators equals the joint accumulator exactly. The
// cost of a chunk split is one extra Fp12 squaring chain per chunk
// (~190 squarings) plus narrower inversion batches, which is why the
// split gates on multiPairParMinChunk pairs per chunk — below two
// chunks' worth, or on a single-core host, the serial lockstep loop
// runs unchanged.

// MultiPair computes Π e(ps[i], qs[i]) with one shared Miller
// accumulator and a single final exponentiation. Pairs where either
// side is the identity contribute 1 and are skipped. Panics if the
// slice lengths differ. Differentially tested against a loop of Pair
// calls.
func MultiPair(ps []*G1, qs []*G2) *GT {
	if len(ps) != len(qs) {
		panic("bn254: MultiPair: mismatched lengths")
	}
	var actP []*G1
	var actQ []*G2
	for i := range ps {
		if ps[i].IsInfinity() || qs[i].IsInfinity() {
			continue
		}
		actP = append(actP, ps[i])
		actQ = append(actQ, qs[i])
	}
	if len(actP) == 0 {
		return GTOne()
	}

	var f ff.Fp12
	if cs := par.Chunks(len(actP), multiPairParMinChunk); len(cs) > 1 {
		// Per-chunk lockstep loops, one accumulator each; the Miller
		// value is multiplicative so the product matches the joint run.
		fs := make([]ff.Fp12, len(cs))
		par.ForEach(len(cs), func(ci int) {
			multiPairMillerInto(&fs[ci], actP[cs[ci][0]:cs[ci][1]], actQ[cs[ci][0]:cs[ci][1]])
		})
		f.Set(&fs[0])
		for ci := 1; ci < len(fs); ci++ {
			f.Mul(&f, &fs[ci])
		}
	} else {
		multiPairMillerInto(&f, actP, actQ)
	}

	out := new(GT)
	finalExpFastInto(&out.v, &f)
	return out
}

// multiPairParMinChunk is the smallest pair count worth a dedicated
// Miller chunk: each extra chunk pays its own ~190-squaring chain and
// narrows the shared inversion batches, so splits below 4 pairs per
// chunk lose even with idle cores. MultiPair(4) — the E11 reference
// shape — therefore always runs the serial lockstep loop.
const multiPairParMinChunk = 4

// multiPairMillerInto runs the shared-accumulator lockstep Miller
// loop over the (already identity-filtered) pairs into f, without the
// final exponentiation. One denominator/inverse/prefix triple is
// reused by every step: the ~190 per-step batch inversions share
// these buffers instead of allocating fresh ones
// (ff.BatchInverseFp2Into).
func multiPairMillerInto(f *ff.Fp12, actP []*G1, actQ []*G2) {
	ts := make([]G2, len(actQ))
	for i := range actQ {
		ts[i].Set(actQ[i])
	}
	dens := make([]ff.Fp2, len(actQ))
	invs := make([]ff.Fp2, len(actQ))
	prefix := make([]ff.Fp2, len(actQ))

	f.SetOne()
	s := ateLoop
	for i := s.BitLen() - 2; i >= 0; i-- {
		f.Square(f)
		for k := range ts {
			dens[k] = doubleStepDen(&ts[k])
		}
		ff.BatchInverseFp2Into(invs, dens, prefix)
		for k := range ts {
			l := doubleStepPre(&ts[k], actP[k], &invs[k])
			f.MulLine(f, &l.e0, &l.e1, &l.e3)
		}
		if s.Bit(i) == 1 {
			for k := range ts {
				dens[k] = addStepDen(&ts[k], actQ[k])
			}
			ff.BatchInverseFp2Into(invs, dens, prefix)
			for k := range ts {
				l := addStepPre(&ts[k], actQ[k], actP[k], &invs[k])
				f.MulLine(f, &l.e0, &l.e1, &l.e3)
			}
		}
	}
}

// PairBatch computes the n pairings e(ps[i], qs[i]) individually,
// sharing only the batched line-denominator inversions across the
// lockstep Miller loops. Identity pairs yield 1 at their position.
// Panics if the slice lengths differ. Differentially tested against
// per-pair Pair calls.
func PairBatch(ps []*G1, qs []*G2) []*GT {
	if len(ps) != len(qs) {
		panic("bn254: PairBatch: mismatched lengths")
	}
	out := make([]*GT, len(ps))
	// idx maps active-slot -> output position.
	var idx []int
	var actP []*G1
	var actQ []*G2
	for i := range ps {
		if ps[i].IsInfinity() || qs[i].IsInfinity() {
			out[i] = GTOne()
			continue
		}
		idx = append(idx, i)
		actP = append(actP, ps[i])
		actQ = append(actQ, qs[i])
	}
	if len(idx) == 0 {
		return out
	}

	// Per-pair accumulators are already independent, so the lockstep
	// Miller loops chunk without any accumulator merging — only the
	// inversion batches narrow to chunk width.
	fs := make([]ff.Fp12, len(actQ))
	if cs := par.Chunks(len(actP), multiPairParMinChunk); len(cs) > 1 {
		par.ForEach(len(cs), func(ci int) {
			lo, hi := cs[ci][0], cs[ci][1]
			pairBatchMillerInto(fs[lo:hi], actP[lo:hi], actQ[lo:hi])
		})
	} else {
		pairBatchMillerInto(fs, actP, actQ)
	}

	// The per-pair final exponentiations are independent — fan them out
	// across CPUs (degrades to a sequential loop on one core).
	par.ForEach(len(idx), func(k int) {
		g := new(GT)
		finalExpFastInto(&g.v, &fs[k])
		out[idx[k]] = g
	})
	return out
}

// pairBatchMillerInto runs the lockstep Miller loops with per-pair
// accumulators into fs, sharing only the batched line-denominator
// inversions; no final exponentiation.
func pairBatchMillerInto(fs []ff.Fp12, actP []*G1, actQ []*G2) {
	ts := make([]G2, len(actQ))
	for i := range actQ {
		ts[i].Set(actQ[i])
		fs[i].SetOne()
	}
	dens := make([]ff.Fp2, len(actQ))
	invs := make([]ff.Fp2, len(actQ))
	prefix := make([]ff.Fp2, len(actQ))

	s := ateLoop
	for i := s.BitLen() - 2; i >= 0; i-- {
		for k := range ts {
			fs[k].Square(&fs[k])
			dens[k] = doubleStepDen(&ts[k])
		}
		ff.BatchInverseFp2Into(invs, dens, prefix)
		for k := range ts {
			l := doubleStepPre(&ts[k], actP[k], &invs[k])
			fs[k].MulLine(&fs[k], &l.e0, &l.e1, &l.e3)
		}
		if s.Bit(i) == 1 {
			for k := range ts {
				dens[k] = addStepDen(&ts[k], actQ[k])
			}
			ff.BatchInverseFp2Into(invs, dens, prefix)
			for k := range ts {
				l := addStepPre(&ts[k], actQ[k], actP[k], &invs[k])
				fs[k].MulLine(&fs[k], &l.e0, &l.e1, &l.e3)
			}
		}
	}
}
