package dibe

import (
	"fmt"

	"repro/internal/bb"
	"repro/internal/bn254"
	"repro/internal/hpske"
	"repro/internal/opcount"
	"repro/internal/params"
	"repro/internal/pss"
	"repro/internal/scalar"
	"repro/internal/wire"
)

// Serialization of the public key and all four share states, so DIBE
// deployments can persist and distribute device state like DLR's cmd
// tools do.

// MarshalPublicKey encodes the DIBE public key.
func MarshalPublicKey(pk *PublicKey) []byte {
	var b wire.Builder
	b.AppendUint32(uint32(pk.Prm.N))
	b.AppendUint32(uint32(pk.Prm.Lambda))
	b.AppendUint32(uint32(pk.BB.NID))
	b.AppendRaw(pk.BB.E.Bytes())
	b.AppendRaw(pk.BB.G2Base.Bytes())
	for _, row := range pk.BB.U {
		b.AppendRaw(row[0].Bytes())
		b.AppendRaw(row[1].Bytes())
	}
	return b.Bytes()
}

// UnmarshalPublicKey decodes a DIBE public key.
func UnmarshalPublicKey(raw []byte) (*PublicKey, error) {
	p := wire.NewParser(raw)
	n, err := p.Uint32()
	if err != nil {
		return nil, err
	}
	lambda, err := p.Uint32()
	if err != nil {
		return nil, err
	}
	nID, err := p.Uint32()
	if err != nil {
		return nil, err
	}
	if nID == 0 || nID > 4096 {
		return nil, fmt.Errorf("dibe: implausible identity dimension %d", nID)
	}
	prm, err := params.New(int(n), int(lambda))
	if err != nil {
		return nil, err
	}
	eRaw, err := p.Raw(bn254.GTBytes)
	if err != nil {
		return nil, err
	}
	e, err := new(bn254.GT).SetBytes(eRaw)
	if err != nil {
		return nil, err
	}
	g2Raw, err := p.Raw(bn254.G2Bytes)
	if err != nil {
		return nil, err
	}
	g2Base, err := new(bn254.G2).SetBytes(g2Raw)
	if err != nil {
		return nil, err
	}
	u := make([][2]*bn254.G2, nID)
	for j := range u {
		for k := 0; k < 2; k++ {
			raw, err := p.Raw(bn254.G2Bytes)
			if err != nil {
				return nil, err
			}
			pt, err := new(bn254.G2).SetBytes(raw)
			if err != nil {
				return nil, err
			}
			u[j][k] = pt
		}
	}
	if !p.Done() {
		return nil, fmt.Errorf("dibe: trailing bytes in public key")
	}
	return &PublicKey{
		BB:  &bb.PublicKey{NID: int(nID), E: e, G2Base: g2Base, U: u},
		Prm: prm,
	}, nil
}

// Marshal encodes P1's master share.
func (m *MasterP1) Marshal() []byte {
	var b wire.Builder
	for _, a := range m.share.Coins {
		b.AppendRaw(a.Bytes())
	}
	b.AppendRaw(m.share.Payload.Bytes())
	return b.Bytes()
}

// UnmarshalMasterP1 decodes a master P1 share.
func UnmarshalMasterP1(pk *PublicKey, raw []byte, ctr *opcount.Counter) (*MasterP1, error) {
	want := (pk.Prm.Ell + 1) * bn254.G2Bytes
	if len(raw) != want {
		return nil, fmt.Errorf("dibe: master share is %d bytes, want %d", len(raw), want)
	}
	coins := make([]*bn254.G2, pk.Prm.Ell)
	for i := range coins {
		pt, err := new(bn254.G2).SetBytes(raw[i*bn254.G2Bytes : (i+1)*bn254.G2Bytes])
		if err != nil {
			return nil, err
		}
		coins[i] = pt
	}
	phi, err := new(bn254.G2).SetBytes(raw[pk.Prm.Ell*bn254.G2Bytes:])
	if err != nil {
		return nil, err
	}
	return newMasterP1(pk, ctr, &pss.Share1{Coins: coins, Payload: phi})
}

// Marshal encodes P2's master share.
func (m *MasterP2) Marshal() []byte { return m.sk.Bytes() }

// UnmarshalMasterP2 decodes a master P2 share.
func UnmarshalMasterP2(pk *PublicKey, raw []byte, ctr *opcount.Counter) (*MasterP2, error) {
	sk, err := scalar.FromBytes(raw)
	if err != nil {
		return nil, err
	}
	if len(sk) != pk.Prm.Ell {
		return nil, fmt.Errorf("dibe: master key share has %d entries, want ℓ = %d", len(sk), pk.Prm.Ell)
	}
	return newMasterP2(pk, ctr, pss.Share2(sk))
}

// Marshal encodes an identity key P1 share.
func (k *IDKeyP1) Marshal() []byte {
	var b wire.Builder
	b.AppendBytes([]byte(k.ID))
	for _, r := range k.R {
		b.AppendRaw(r.Bytes())
	}
	for _, a := range k.Coins {
		b.AppendRaw(a.Bytes())
	}
	b.AppendRaw(k.MTilde.Bytes())
	return b.Bytes()
}

// UnmarshalIDKeyP1 decodes an identity key P1 share.
func UnmarshalIDKeyP1(pk *PublicKey, raw []byte, ctr *opcount.Counter) (*IDKeyP1, error) {
	p := wire.NewParser(raw)
	id, err := p.Bytes()
	if err != nil {
		return nil, err
	}
	rPts := make([]*bn254.G1, pk.BB.NID)
	for j := range rPts {
		chunk, err := p.Raw(bn254.G1Bytes)
		if err != nil {
			return nil, err
		}
		pt, err := new(bn254.G1).SetBytes(chunk)
		if err != nil {
			return nil, err
		}
		rPts[j] = pt
	}
	coins := make([]*bn254.G2, pk.Prm.Ell)
	for i := range coins {
		chunk, err := p.Raw(bn254.G2Bytes)
		if err != nil {
			return nil, err
		}
		pt, err := new(bn254.G2).SetBytes(chunk)
		if err != nil {
			return nil, err
		}
		coins[i] = pt
	}
	mRaw, err := p.Raw(bn254.G2Bytes)
	if err != nil {
		return nil, err
	}
	mTilde, err := new(bn254.G2).SetBytes(mRaw)
	if err != nil {
		return nil, err
	}
	if !p.Done() {
		return nil, fmt.Errorf("dibe: trailing bytes in identity key share")
	}
	g2, gt, ssG2, ssGT, err := schemes(pk.Prm, ctr)
	if err != nil {
		return nil, err
	}
	return &IDKeyP1{
		ID: string(id), R: rPts, Coins: coins, MTilde: mTilde,
		pk: pk, ctr: ctr, g2: g2, gt: gt, ssG2: ssG2, ssGT: ssGT,
	}, nil
}

// Marshal encodes an identity key P2 share.
func (k *IDKeyP2) Marshal() []byte {
	var b wire.Builder
	b.AppendBytes([]byte(k.ID))
	b.AppendBytes(k.sk.Bytes())
	return b.Bytes()
}

// UnmarshalIDKeyP2 decodes an identity key P2 share.
func UnmarshalIDKeyP2(pk *PublicKey, raw []byte, ctr *opcount.Counter) (*IDKeyP2, error) {
	p := wire.NewParser(raw)
	id, err := p.Bytes()
	if err != nil {
		return nil, err
	}
	skRaw, err := p.Bytes()
	if err != nil {
		return nil, err
	}
	sk, err := scalar.FromBytes(skRaw)
	if err != nil {
		return nil, err
	}
	if len(sk) != pk.Prm.Ell {
		return nil, fmt.Errorf("dibe: identity key share has %d entries, want ℓ = %d", len(sk), pk.Prm.Ell)
	}
	if !p.Done() {
		return nil, fmt.Errorf("dibe: trailing bytes in identity key share")
	}
	g2, gt, ssG2, ssGT, err := schemes(pk.Prm, ctr)
	if err != nil {
		return nil, err
	}
	return &IDKeyP2{
		ID: string(id),
		pk: pk, ctr: ctr, g2: g2, gt: gt, ssG2: ssG2, ssGT: ssGT,
		sk: hpske.Key(sk),
	}, nil
}
