// Package dibe implements DLRIBE — the paper's distributed identity
// based encryption scheme semantically secure against continual memory
// leakage (§4.2). Both the master secret key and every identity based
// secret key are shared between the two devices with the leakage
// resilient sharing of package pss/hpske, and all operations on them —
// identity-key extraction, refresh of either kind of key, and decryption
// — are 2-party protocols of the same shape as DLR's.
//
// Shares:
//
//	master:   msk = g2^α,  P1: (a1,…,aℓ, Φ = msk·Π aᵢ^sᵢ),  P2: (s1,…,sℓ)
//	identity: sk_ID = (R_j = g^{r_j},  M = msk·Π u_{j,b_j}^{r_j}),
//	          P1: (R_j's, a'1,…,a'ℓ, M̃ = M·Π a'ᵢ^s'ᵢ),      P2: (s'1,…,s'ℓ)
//
// Extraction, master refresh and identity-key refresh are all instances
// of one "share transform" protocol (protocol.go): P1 sends pairs
// (fᵢ = Enc'(aᵢ), f'ᵢ = Enc'(a'ᵢ)) plus fX = Enc'(payload); P2 replies
// Π f'ᵢ^{s'ᵢ}/fᵢ^{sᵢ} · fX under a fresh s'. Leakage bounds match
// Remark 4.1: only master-key generation is restricted to b0 bits;
// identity-key generation tolerates the full per-period (b1, b2).
package dibe

import (
	"fmt"
	"io"

	"repro/internal/bb"
	"repro/internal/bn254"
	"repro/internal/group"
	"repro/internal/hpske"
	"repro/internal/opcount"
	"repro/internal/params"
	"repro/internal/pss"
	"repro/internal/scalar"
)

// PublicKey bundles the BB public parameters with the DLR parameters.
type PublicKey struct {
	// BB holds (E = e(g1,g2), g2, U).
	BB *bb.PublicKey
	// Prm are the sharing parameters (κ, ℓ, λ, n).
	Prm params.Params
}

// MasterP1 holds P1's master share in the clear (the Construction 5.3
// layout) plus the scheme instances.
type MasterP1 struct {
	pk  *PublicKey
	ctr *opcount.Counter

	g2   group.G2
	gt   group.GT
	ssG2 *hpske.Scheme[*bn254.G2]
	ssGT *hpske.Scheme[*bn254.GT]

	share *pss.Share1 // (a1,…,aℓ, Φ)
}

// MasterP2 holds P2's master share s = (s1,…,sℓ).
type MasterP2 struct {
	pk  *PublicKey
	ctr *opcount.Counter

	g2   group.G2
	gt   group.GT
	ssG2 *hpske.Scheme[*bn254.G2]
	ssGT *hpske.Scheme[*bn254.GT]

	sk hpske.Key
}

// IDKeyP1 is P1's share of an identity key.
type IDKeyP1 struct {
	ID string
	// R holds g^{r_j} ∈ G1.
	R []*bn254.G1
	// Coins are the sharing coins a'1,…,a'ℓ.
	Coins []*bn254.G2
	// MTilde is M·Π a'ᵢ^{s'ᵢ}.
	MTilde *bn254.G2

	pk   *PublicKey
	ctr  *opcount.Counter
	g2   group.G2
	gt   group.GT
	ssG2 *hpske.Scheme[*bn254.G2]
	ssGT *hpske.Scheme[*bn254.GT]
}

// IDKeyP2 is P2's share of an identity key: s' = (s'1,…,s'ℓ).
type IDKeyP2 struct {
	ID string

	pk   *PublicKey
	ctr  *opcount.Counter
	g2   group.G2
	gt   group.GT
	ssG2 *hpske.Scheme[*bn254.G2]
	ssGT *hpske.Scheme[*bn254.GT]

	sk hpske.Key
}

// Gen runs master key generation: BB parameters plus the Π_ss sharing of
// msk = g2^α between the devices. The dealer is trusted (footnote 5) and
// the master generation phase is the only one restricted to b0 leakage
// bits (Remark 4.1).
func Gen(rng io.Reader, prm params.Params, nID int, ctr1, ctr2 *opcount.Counter) (*PublicKey, *MasterP1, *MasterP2, error) {
	bbPK, bbMK, err := bb.Gen(rng, nID, nil)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("dibe: generating BB parameters: %w", err)
	}
	pk := &PublicKey{BB: bbPK, Prm: prm}

	ss, err := pss.New(group.G2{}, prm.Ell)
	if err != nil {
		return nil, nil, nil, err
	}
	sh1, sh2, err := ss.Share(rng, bbMK.MSK)
	if err != nil {
		return nil, nil, nil, err
	}

	m1, err := newMasterP1(pk, ctr1, sh1)
	if err != nil {
		return nil, nil, nil, err
	}
	m2, err := newMasterP2(pk, ctr2, sh2)
	if err != nil {
		return nil, nil, nil, err
	}
	return pk, m1, m2, nil
}

func schemes(prm params.Params, ctr *opcount.Counter) (group.G2, group.GT, *hpske.Scheme[*bn254.G2], *hpske.Scheme[*bn254.GT], error) {
	g2 := group.G2{Ctr: ctr}
	gt := group.GT{Ctr: ctr}
	ssG2, err := hpske.New[*bn254.G2](g2, prm.Kappa)
	if err != nil {
		return g2, gt, nil, nil, err
	}
	ssGT, err := hpske.New[*bn254.GT](gt, prm.Kappa)
	if err != nil {
		return g2, gt, nil, nil, err
	}
	return g2, gt, ssG2, ssGT, nil
}

func newMasterP1(pk *PublicKey, ctr *opcount.Counter, sh1 *pss.Share1) (*MasterP1, error) {
	g2, gt, ssG2, ssGT, err := schemes(pk.Prm, ctr)
	if err != nil {
		return nil, err
	}
	return &MasterP1{pk: pk, ctr: ctr, g2: g2, gt: gt, ssG2: ssG2, ssGT: ssGT, share: sh1.Clone()}, nil
}

func newMasterP2(pk *PublicKey, ctr *opcount.Counter, sh2 pss.Share2) (*MasterP2, error) {
	g2, gt, ssG2, ssGT, err := schemes(pk.Prm, ctr)
	if err != nil {
		return nil, err
	}
	return &MasterP2{pk: pk, ctr: ctr, g2: g2, gt: gt, ssG2: ssG2, ssGT: ssGT, sk: hpske.Key(sh2)}, nil
}

// Encrypt encrypts m ∈ GT to identity id (plain BB encryption — the
// sender is not involved in the distribution).
func Encrypt(rng io.Reader, pk *PublicKey, id string, m *bn254.GT, ctr *opcount.Counter) (*bb.Ciphertext, error) {
	return bb.Encrypt(rng, pk.BB, id, m, ctr)
}

// RandMessage samples a random GT plaintext.
func RandMessage(rng io.Reader, pk *PublicKey) (*bn254.GT, error) {
	return bb.RandMessage(rng, pk.BB)
}

// SecretBytes serializes P1's master secret memory (the plaintext share).
func (m *MasterP1) SecretBytes() []byte {
	var out []byte
	for _, a := range m.share.Coins {
		out = append(out, a.Bytes()...)
	}
	out = append(out, m.share.Payload.Bytes()...)
	return out
}

// SecretBytes serializes P2's master secret memory.
func (m *MasterP2) SecretBytes() []byte { return m.sk.Bytes() }

// SecretBytes serializes P1's identity-key secret memory.
func (k *IDKeyP1) SecretBytes() []byte {
	var out []byte
	for _, r := range k.R {
		out = append(out, r.Bytes()...)
	}
	for _, a := range k.Coins {
		out = append(out, a.Bytes()...)
	}
	out = append(out, k.MTilde.Bytes()...)
	return out
}

// SecretBytes serializes P2's identity-key secret memory.
func (k *IDKeyP2) SecretBytes() []byte { return k.sk.Bytes() }

// RerandomizeR locally re-randomizes the r_j exponents of an identity
// key share: r_j ← r_j + δ_j updates R_j and folds Π u_{j,b_j}^{δ_j}
// into M̃. This is P1-local (no protocol needed) and complements the
// 2-party share refresh so that every component of sk_ID changes across
// periods.
func (k *IDKeyP1) RerandomizeR(rng io.Reader) error {
	bits := bb.HashID(k.ID, k.pk.BB.NID)
	for j := range k.R {
		delta, err := scalar.Rand(rng)
		if err != nil {
			return err
		}
		step := new(bn254.G1).ScalarBaseMult(delta)
		k.ctr.Add(opcount.G1Exp, 1)
		k.R[j] = new(bn254.G1).Add(k.R[j], step)
		k.ctr.Add(opcount.G1Mul, 1)
		k.MTilde = k.g2.Mul(k.MTilde, k.g2.Exp(k.pk.BB.U[j][bits[j]], delta))
	}
	return nil
}
