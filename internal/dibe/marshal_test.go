package dibe

import (
	"crypto/rand"
	"testing"
)

func TestPublicKeyMarshalRoundTrip(t *testing.T) {
	pk, _, _ := testSetup(t)
	back, err := UnmarshalPublicKey(MarshalPublicKey(pk))
	if err != nil {
		t.Fatal(err)
	}
	if !back.BB.E.Equal(pk.BB.E) || back.BB.NID != pk.BB.NID || back.Prm != pk.Prm {
		t.Fatal("public key round trip failed")
	}
	for j := range pk.BB.U {
		if !back.BB.U[j][0].Equal(pk.BB.U[j][0]) || !back.BB.U[j][1].Equal(pk.BB.U[j][1]) {
			t.Fatalf("U row %d mismatch", j)
		}
	}
	if _, err := UnmarshalPublicKey(MarshalPublicKey(pk)[:20]); err == nil {
		t.Fatal("accepted truncated public key")
	}
}

func TestMasterMarshalRoundTrip(t *testing.T) {
	pk, m1, m2 := testSetup(t)
	r1, err := UnmarshalMasterP1(pk, m1.Marshal(), nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := UnmarshalMasterP2(pk, m2.Marshal(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Restored masters must extract working identity keys.
	k1, k2, err := Extract(rand.Reader, r1, r2, "restored")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := RandMessage(rand.Reader, pk)
	ct, _ := Encrypt(rand.Reader, pk, "restored", m, nil)
	got, err := Decrypt(rand.Reader, k1, k2, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("restored master shares extract broken keys")
	}
}

func TestIDKeyMarshalRoundTrip(t *testing.T) {
	pk, m1, m2 := testSetup(t)
	k1, k2, err := Extract(rand.Reader, m1, m2, "alice")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := UnmarshalIDKeyP1(pk, k1.Marshal(), nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := UnmarshalIDKeyP2(pk, k2.Marshal(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.ID != "alice" || r2.ID != "alice" {
		t.Fatal("identity lost in round trip")
	}
	m, _ := RandMessage(rand.Reader, pk)
	ct, _ := Encrypt(rand.Reader, pk, "alice", m, nil)
	got, err := Decrypt(rand.Reader, r1, r2, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("restored identity key shares decrypt incorrectly")
	}
	// Restored shares must also refresh.
	if err := RefreshIDKey(rand.Reader, r1, r2); err != nil {
		t.Fatal(err)
	}
	got, err = Decrypt(rand.Reader, r1, r2, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("restored shares broken after refresh")
	}
}

func TestMarshalRejectsCorruption(t *testing.T) {
	pk, m1, m2 := testSetup(t)
	if _, err := UnmarshalMasterP1(pk, m1.Marshal()[:64], nil); err == nil {
		t.Fatal("accepted truncated master P1")
	}
	if _, err := UnmarshalMasterP2(pk, m2.Marshal()[:16], nil); err == nil {
		t.Fatal("accepted truncated master P2")
	}
	k1, k2, err := Extract(rand.Reader, m1, m2, "x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalIDKeyP1(pk, k1.Marshal()[:40], nil); err == nil {
		t.Fatal("accepted truncated identity P1")
	}
	if _, err := UnmarshalIDKeyP2(pk, k2.Marshal()[:4], nil); err == nil {
		t.Fatal("accepted truncated identity P2")
	}
}
