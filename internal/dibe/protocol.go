package dibe

import (
	"fmt"
	"io"

	"repro/internal/bb"
	"repro/internal/bn254"
	"repro/internal/device"
	"repro/internal/group"
	"repro/internal/hpske"
	"repro/internal/opcount"
	"repro/internal/scalar"
	"repro/internal/wire"
)

// Protocol frame kinds. Extraction, master refresh and identity-key
// refresh all use the share-transform shape; decryption mirrors DLR's.
const (
	kindExt1  = "dibe.ext1"
	kindExt2  = "dibe.ext2"
	kindMRef1 = "dibe.mref1"
	kindMRef2 = "dibe.mref2"
	kindIRef1 = "dibe.iref1"
	kindIRef2 = "dibe.iref2"
	kindDec1  = "dibe.dec1"
	kindDec2  = "dibe.dec2"
)

// transformP1 runs P1's side of the share-transform protocol: given the
// current coins (a1,…,aℓ) and a payload X (Φ, Φ·W, or M̃), it samples a
// fresh skcomm and fresh oblivious coins a'ᵢ, sends
// (fᵢ, f'ᵢ) pairs plus fX, and returns the new coins together with
// X' = Dec'(reply) = X · Π a'ᵢ^{s'ᵢ} / Π aᵢ^{sᵢ}.
func transformP1(rng io.Reader, ch device.Channel, m *MasterP1Like, coins []*bn254.G2, payload *bn254.G2, kind1, kind2 string) ([]*bn254.G2, *bn254.G2, error) {
	skcomm, err := m.ssG2.GenKey(rng)
	if err != nil {
		return nil, nil, err
	}
	ell := m.pk.Prm.Ell
	newCoins := make([]*bn254.G2, ell)
	cts := make([]*hpske.Ciphertext[*bn254.G2], 0, 2*ell+1)
	for i := 0; i < ell; i++ {
		f, err := m.ssG2.Encrypt(rng, skcomm, coins[i])
		if err != nil {
			return nil, nil, err
		}
		aPrime, err := m.g2.Rand(rng)
		if err != nil {
			return nil, nil, err
		}
		newCoins[i] = aPrime
		fPrime, err := m.ssG2.Encrypt(rng, skcomm, aPrime)
		if err != nil {
			return nil, nil, err
		}
		cts = append(cts, f, fPrime)
	}
	fX, err := m.ssG2.Encrypt(rng, skcomm, payload)
	if err != nil {
		return nil, nil, err
	}
	cts = append(cts, fX)

	raw, err := hpske.EncodeList(m.ssG2, cts)
	if err != nil {
		return nil, nil, err
	}
	if err := ch.Send(wire.Msg{Kind: kind1, Payload: raw}); err != nil {
		return nil, nil, err
	}
	reply, err := ch.Recv()
	if err != nil {
		return nil, nil, err
	}
	if reply.Kind != kind2 {
		return nil, nil, fmt.Errorf("dibe: expected %s, got %s", kind2, reply.Kind)
	}
	fs, err := hpske.DecodeList(m.ssG2, reply.Payload, 1)
	if err != nil {
		return nil, nil, err
	}
	xPrime, err := m.ssG2.Decrypt(skcomm, fs[0])
	if err != nil {
		return nil, nil, err
	}
	return newCoins, xPrime, nil
}

// MasterP1Like carries the scheme handles transformP1 needs; both
// MasterP1 and IDKeyP1 convert to it.
type MasterP1Like struct {
	pk *PublicKey
	g2 interface {
		Rand(io.Reader) (*bn254.G2, error)
	}
	ssG2 *hpske.Scheme[*bn254.G2]
}

func (m *MasterP1) like() *MasterP1Like { return &MasterP1Like{pk: m.pk, g2: m.g2, ssG2: m.ssG2} }
func (k *IDKeyP1) like() *MasterP1Like  { return &MasterP1Like{pk: k.pk, g2: k.g2, ssG2: k.ssG2} }

// transformP2 runs P2's side: sample a fresh s', reply
// Π f'ᵢ^{s'ᵢ}/fᵢ^{sᵢ} · fX, and return s'.
func transformP2(msg wire.Msg, ss *hpske.Scheme[*bn254.G2], curKey hpske.Key, ell int, replyKind string) (hpske.Key, wire.Msg, error) {
	cts, err := hpske.DecodeList(ss, msg.Payload, 2*ell+1)
	if err != nil {
		return nil, wire.Msg{}, err
	}
	sPrime, err := scalar.RandVector(nil, ell)
	if err != nil {
		return nil, wire.Msg{}, err
	}
	acc := ss.One()
	for i := 0; i < ell; i++ {
		up, err := ss.Pow(cts[2*i+1], sPrime[i])
		if err != nil {
			return nil, wire.Msg{}, err
		}
		down, err := ss.Pow(cts[2*i], curKey[i])
		if err != nil {
			return nil, wire.Msg{}, err
		}
		term, err := ss.Div(up, down)
		if err != nil {
			return nil, wire.Msg{}, err
		}
		acc, err = ss.Mul(acc, term)
		if err != nil {
			return nil, wire.Msg{}, err
		}
	}
	acc, err = ss.Mul(acc, cts[2*ell])
	if err != nil {
		return nil, wire.Msg{}, err
	}
	raw, err := hpske.EncodeList(ss, []*hpske.Ciphertext[*bn254.G2]{acc})
	if err != nil {
		return nil, wire.Msg{}, err
	}
	return hpske.Key(sPrime), wire.Msg{Kind: replyKind, Payload: raw}, nil
}

// RunExtract executes P1's side of distributed identity-key extraction
// for id: P1 samples the r_j locally, folds W = Π u_{j,b_j}^{r_j} into
// the transform payload Φ·W, and obtains
// M̃ = msk·W·Π a'ᵢ^{s'ᵢ} = M·Π a'ᵢ^{s'ᵢ}.
func (m *MasterP1) RunExtract(rng io.Reader, ch device.Channel, id string) (*IDKeyP1, error) {
	bits := bb.HashID(id, m.pk.BB.NID)
	nID := m.pk.BB.NID
	rs, err := scalar.RandVector(rng, nID)
	if err != nil {
		return nil, err
	}
	rPts := make([]*bn254.G1, nID)
	payload := new(bn254.G2).Set(m.share.Payload) // Φ
	for j := 0; j < nID; j++ {
		rPts[j] = new(bn254.G1).ScalarBaseMult(rs[j])
		m.ctr.Add(opcount.G1Exp, 1)
		payload = m.g2.Mul(payload, m.g2.Exp(m.pk.BB.U[j][bits[j]], rs[j]))
	}
	coins, mTilde, err := transformP1(rng, ch, m.like(), m.share.Coins, payload, kindExt1, kindExt2)
	if err != nil {
		return nil, fmt.Errorf("dibe: extract: %w", err)
	}
	g2, gt, ssG2, ssGT, err := schemes(m.pk.Prm, m.ctr)
	if err != nil {
		return nil, err
	}
	return &IDKeyP1{
		ID: id, R: rPts, Coins: coins, MTilde: mTilde,
		pk: m.pk, ctr: m.ctr, g2: g2, gt: gt, ssG2: ssG2, ssGT: ssGT,
	}, nil
}

// ServeExtract executes P2's side of extraction and returns its share of
// the new identity key. P2's master share is NOT consumed.
func (m *MasterP2) ServeExtract(ch device.Channel, id string) (*IDKeyP2, error) {
	msg, err := ch.Recv()
	if err != nil {
		return nil, err
	}
	if msg.Kind != kindExt1 {
		return nil, fmt.Errorf("dibe: expected %s, got %s", kindExt1, msg.Kind)
	}
	sPrime, reply, err := transformP2(msg, m.ssG2, m.sk, m.pk.Prm.Ell, kindExt2)
	if err != nil {
		return nil, err
	}
	if err := ch.Send(reply); err != nil {
		return nil, err
	}
	g2, gt, ssG2, ssGT, err := schemes(m.pk.Prm, m.ctr)
	if err != nil {
		return nil, err
	}
	return &IDKeyP2{ID: id, pk: m.pk, ctr: m.ctr, g2: g2, gt: gt, ssG2: ssG2, ssGT: ssGT, sk: sPrime}, nil
}

// RunMasterRefresh executes P1's side of master-share refresh (the DLR
// Ref protocol on the master shares).
func (m *MasterP1) RunMasterRefresh(rng io.Reader, ch device.Channel) error {
	coins, phiPrime, err := transformP1(rng, ch, m.like(), m.share.Coins, m.share.Payload, kindMRef1, kindMRef2)
	if err != nil {
		return fmt.Errorf("dibe: master refresh: %w", err)
	}
	m.share.Coins = coins
	m.share.Payload = phiPrime
	return nil
}

// ServeMasterRefresh executes P2's side of master-share refresh,
// replacing its master share.
func (m *MasterP2) ServeMasterRefresh(ch device.Channel) error {
	msg, err := ch.Recv()
	if err != nil {
		return err
	}
	if msg.Kind != kindMRef1 {
		return fmt.Errorf("dibe: expected %s, got %s", kindMRef1, msg.Kind)
	}
	sPrime, reply, err := transformP2(msg, m.ssG2, m.sk, m.pk.Prm.Ell, kindMRef2)
	if err != nil {
		return err
	}
	if err := ch.Send(reply); err != nil {
		return err
	}
	m.sk = sPrime
	return nil
}

// RunRefresh executes P1's side of identity-key refresh: the r_j are
// re-randomized locally, then the (a', s') sharing is refreshed by the
// share-transform protocol.
func (k *IDKeyP1) RunRefresh(rng io.Reader, ch device.Channel) error {
	if err := k.RerandomizeR(rng); err != nil {
		return err
	}
	coins, mTilde, err := transformP1(rng, ch, k.like(), k.Coins, k.MTilde, kindIRef1, kindIRef2)
	if err != nil {
		return fmt.Errorf("dibe: identity-key refresh: %w", err)
	}
	k.Coins = coins
	k.MTilde = mTilde
	return nil
}

// ServeRefresh executes P2's side of identity-key refresh.
func (k *IDKeyP2) ServeRefresh(ch device.Channel) error {
	msg, err := ch.Recv()
	if err != nil {
		return err
	}
	if msg.Kind != kindIRef1 {
		return fmt.Errorf("dibe: expected %s, got %s", kindIRef1, msg.Kind)
	}
	sPrime, reply, err := transformP2(msg, k.ssG2, k.sk, k.pk.Prm.Ell, kindIRef2)
	if err != nil {
		return err
	}
	if err := ch.Send(reply); err != nil {
		return err
	}
	k.sk = sPrime
	return nil
}

// RunDec executes P1's side of distributed decryption of a BB ciphertext
// (A, B_1..B_n, C): P1 computes V = Π e(R_j, B_j) locally, sends GT
// ciphertexts (d1,…,dℓ, dM, dCV) with dCV = Enc'(C·V), and decrypts
// P2's combination to m = C·V / e(A, M).
func (k *IDKeyP1) RunDec(rng io.Reader, ch device.Channel, ct *bb.Ciphertext) (*bn254.GT, error) {
	if ct.ID != k.ID {
		return nil, fmt.Errorf("dibe: key for %q cannot decrypt ciphertext for %q", k.ID, ct.ID)
	}
	if len(ct.B) != k.pk.BB.NID {
		return nil, fmt.Errorf("dibe: ciphertext has %d identity components, want %d", len(ct.B), k.pk.BB.NID)
	}
	skcomm, err := k.ssG2.GenKey(rng)
	if err != nil {
		return nil, err
	}
	// V = Π e(R_j, B_j) as one MultiPair (shared Miller accumulator,
	// single final exponentiation).
	v := group.MultiPair(k.ctr, k.R, ct.B)

	ell := k.pk.Prm.Ell
	srcs := make([]*hpske.Ciphertext[*bn254.G2], 0, ell+1)
	for i := 0; i < ell; i++ {
		f, err := k.ssG2.Encrypt(rng, skcomm, k.Coins[i])
		if err != nil {
			return nil, err
		}
		srcs = append(srcs, f)
	}
	fM, err := k.ssG2.Encrypt(rng, skcomm, k.MTilde)
	if err != nil {
		return nil, err
	}
	srcs = append(srcs, fM)
	// All ℓ+1 transports share one flattened PairBatch.
	cts := hpske.TransportMany(k.ctr, ct.A, srcs)
	cv := new(bn254.GT).Mul(ct.C, v)
	dCV, err := k.ssGT.Encrypt(rng, skcomm, cv)
	if err != nil {
		return nil, err
	}
	cts = append(cts, dCV)

	raw, err := hpske.EncodeList(k.ssGT, cts)
	if err != nil {
		return nil, err
	}
	if err := ch.Send(wire.Msg{Kind: kindDec1, Payload: raw}); err != nil {
		return nil, err
	}
	reply, err := ch.Recv()
	if err != nil {
		return nil, err
	}
	if reply.Kind != kindDec2 {
		return nil, fmt.Errorf("dibe: expected %s, got %s", kindDec2, reply.Kind)
	}
	fs, err := hpske.DecodeList(k.ssGT, reply.Payload, 1)
	if err != nil {
		return nil, err
	}
	return k.ssGT.Decrypt(skcomm, fs[0])
}

// ServeDec executes P2's side of distributed decryption:
// c' = dCV · Π dᵢ^{s'ᵢ} / dM.
func (k *IDKeyP2) ServeDec(ch device.Channel) error {
	msg, err := ch.Recv()
	if err != nil {
		return err
	}
	if msg.Kind != kindDec1 {
		return fmt.Errorf("dibe: expected %s, got %s", kindDec1, msg.Kind)
	}
	ell := k.pk.Prm.Ell
	cts, err := hpske.DecodeList(k.ssGT, msg.Payload, ell+2)
	if err != nil {
		return err
	}
	acc := cts[ell+1] // dCV
	for i := 0; i < ell; i++ {
		pw, err := k.ssGT.Pow(cts[i], k.sk[i])
		if err != nil {
			return err
		}
		acc, err = k.ssGT.Mul(acc, pw)
		if err != nil {
			return err
		}
	}
	acc, err = k.ssGT.Div(acc, cts[ell])
	if err != nil {
		return err
	}
	raw, err := hpske.EncodeList(k.ssGT, []*hpske.Ciphertext[*bn254.GT]{acc})
	if err != nil {
		return err
	}
	return ch.Send(wire.Msg{Kind: kindDec2, Payload: raw})
}

// Extract runs the full 2-party extraction in-process.
func Extract(rng io.Reader, m1 *MasterP1, m2 *MasterP2, id string) (*IDKeyP1, *IDKeyP2, error) {
	var k1 *IDKeyP1
	var k2 *IDKeyP2
	_, _, err := device.Run(
		func(ch device.Channel) error {
			var err error
			k1, err = m1.RunExtract(rng, ch, id)
			return err
		},
		func(ch device.Channel) error {
			var err error
			k2, err = m2.ServeExtract(ch, id)
			return err
		},
	)
	if err != nil {
		return nil, nil, err
	}
	return k1, k2, nil
}

// Decrypt runs the full 2-party identity decryption in-process.
func Decrypt(rng io.Reader, k1 *IDKeyP1, k2 *IDKeyP2, ct *bb.Ciphertext) (*bn254.GT, error) {
	var m *bn254.GT
	_, _, err := device.Run(
		func(ch device.Channel) error {
			var err error
			m, err = k1.RunDec(rng, ch, ct)
			return err
		},
		k2.ServeDec,
	)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// RefreshMaster runs the full 2-party master refresh in-process.
func RefreshMaster(rng io.Reader, m1 *MasterP1, m2 *MasterP2) error {
	_, _, err := device.Run(
		func(ch device.Channel) error { return m1.RunMasterRefresh(rng, ch) },
		m2.ServeMasterRefresh,
	)
	return err
}

// RefreshIDKey runs the full 2-party identity-key refresh in-process.
func RefreshIDKey(rng io.Reader, k1 *IDKeyP1, k2 *IDKeyP2) error {
	_, _, err := device.Run(
		func(ch device.Channel) error { return k1.RunRefresh(rng, ch) },
		k2.ServeRefresh,
	)
	return err
}
