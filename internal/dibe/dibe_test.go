package dibe

import (
	"bytes"
	"crypto/rand"
	"testing"

	"repro/internal/opcount"
	"repro/internal/params"
)

const testNID = 8

func testSetup(t *testing.T) (*PublicKey, *MasterP1, *MasterP2) {
	t.Helper()
	prm := params.MustNew(40, 128)
	pk, m1, m2, err := Gen(rand.Reader, prm, testNID, nil, nil)
	if err != nil {
		t.Fatalf("Gen: %v", err)
	}
	return pk, m1, m2
}

func TestExtractAndDecrypt(t *testing.T) {
	pk, m1, m2 := testSetup(t)
	k1, k2, err := Extract(rand.Reader, m1, m2, "alice@example.com")
	if err != nil {
		t.Fatal(err)
	}
	m, err := RandMessage(rand.Reader, pk)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := Encrypt(rand.Reader, pk, "alice@example.com", m, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decrypt(rand.Reader, k1, k2, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("distributed IBE decryption returned wrong message")
	}
}

func TestWrongIdentityKeyFails(t *testing.T) {
	pk, m1, m2 := testSetup(t)
	k1, k2, err := Extract(rand.Reader, m1, m2, "alice")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := RandMessage(rand.Reader, pk)
	ct, _ := Encrypt(rand.Reader, pk, "bob", m, nil)
	if _, err := Decrypt(rand.Reader, k1, k2, ct); err == nil {
		t.Fatal("key for alice decrypted ciphertext for bob")
	}
}

func TestMasterRefreshPreservesExtraction(t *testing.T) {
	pk, m1, m2 := testSetup(t)
	for i := 0; i < 3; i++ {
		if err := RefreshMaster(rand.Reader, m1, m2); err != nil {
			t.Fatalf("master refresh %d: %v", i, err)
		}
	}
	// Keys extracted after refreshes still decrypt.
	k1, k2, err := Extract(rand.Reader, m1, m2, "carol")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := RandMessage(rand.Reader, pk)
	ct, _ := Encrypt(rand.Reader, pk, "carol", m, nil)
	got, err := Decrypt(rand.Reader, k1, k2, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("extraction broken after master refresh")
	}
}

func TestIdentityKeyRefresh(t *testing.T) {
	pk, m1, m2 := testSetup(t)
	k1, k2, err := Extract(rand.Reader, m1, m2, "dave")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := RandMessage(rand.Reader, pk)
	ct, _ := Encrypt(rand.Reader, pk, "dave", m, nil)

	s1Before := append([]byte(nil), k1.SecretBytes()...)
	s2Before := append([]byte(nil), k2.SecretBytes()...)
	for i := 0; i < 3; i++ {
		if err := RefreshIDKey(rand.Reader, k1, k2); err != nil {
			t.Fatalf("identity refresh %d: %v", i, err)
		}
		got, err := Decrypt(rand.Reader, k1, k2, ct)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(m) {
			t.Fatalf("wrong message after identity refresh %d", i)
		}
	}
	if bytes.Equal(s1Before, k1.SecretBytes()) {
		t.Fatal("identity refresh left P1's share unchanged")
	}
	if bytes.Equal(s2Before, k2.SecretBytes()) {
		t.Fatal("identity refresh left P2's share unchanged")
	}
}

func TestOldKeysSurviveNewExtractions(t *testing.T) {
	// Extracting for a new identity must not disturb existing identity
	// keys or the master share.
	pk, m1, m2 := testSetup(t)
	kA1, kA2, err := Extract(rand.Reader, m1, m2, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Extract(rand.Reader, m1, m2, "bob"); err != nil {
		t.Fatal(err)
	}
	m, _ := RandMessage(rand.Reader, pk)
	ct, _ := Encrypt(rand.Reader, pk, "alice", m, nil)
	got, err := Decrypt(rand.Reader, kA1, kA2, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("alice's key broken by bob's extraction")
	}
}

func TestMasterSecretBytesChangeOnRefresh(t *testing.T) {
	_, m1, m2 := testSetup(t)
	s1 := append([]byte(nil), m1.SecretBytes()...)
	s2 := append([]byte(nil), m2.SecretBytes()...)
	if err := RefreshMaster(rand.Reader, m1, m2); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(s1, m1.SecretBytes()) || bytes.Equal(s2, m2.SecretBytes()) {
		t.Fatal("master refresh did not change both shares")
	}
}

// TestP2SimplicityInDIBE: P2 does no pairings in any DIBE protocol
// either.
func TestP2SimplicityInDIBE(t *testing.T) {
	ctr1, ctr2 := opcount.New(), opcount.New()
	prm := params.MustNew(40, 128)
	pk, m1, m2, err := Gen(rand.Reader, prm, testNID, ctr1, ctr2)
	if err != nil {
		t.Fatal(err)
	}
	k1, k2, err := Extract(rand.Reader, m1, m2, "eve")
	if err != nil {
		t.Fatal(err)
	}
	if err := RefreshMaster(rand.Reader, m1, m2); err != nil {
		t.Fatal(err)
	}
	if err := RefreshIDKey(rand.Reader, k1, k2); err != nil {
		t.Fatal(err)
	}
	m, _ := RandMessage(rand.Reader, pk)
	ct, _ := Encrypt(rand.Reader, pk, "eve", m, nil)
	if _, err := Decrypt(rand.Reader, k1, k2, ct); err != nil {
		t.Fatal(err)
	}
	if n := ctr2.Get(opcount.Pairing); n != 0 {
		t.Fatalf("P2 performed %d pairings in DIBE protocols", n)
	}
	if ctr1.Get(opcount.Pairing) == 0 {
		t.Fatal("P1 pairing counter not wired")
	}
}
