package cca2

import (
	"bytes"
	"crypto/rand"
	"fmt"
	"io"

	"repro/internal/bn254"
	"repro/internal/dibe"
	"repro/internal/leakage"
	"repro/internal/params"
	"repro/internal/scalar"
)

// Oracle is the decryption oracle the CCA2 adversary queries. After the
// challenge is issued it refuses the challenge ciphertext itself.
type Oracle func(ct *Ciphertext) (*bn254.GT, error)

// View is the CCA2 adversary's public information.
type View struct {
	// PK is the public-key marker (the IBE parameters are public).
	PK *PublicKey
	// Leak1 and Leak2 collect per-period leakage from the two devices'
	// master shares.
	Leak1, Leak2 [][]byte
}

// Func is a leakage function over one device's master-share memory.
type Func func(secret []byte, view *View) []byte

// Adversary drives the CCA2-CML game (§3.3): leakage periods with a
// decryption oracle, then a challenge on which the oracle is forbidden.
type Adversary interface {
	// NextPeriod returns this period's leakage functions (either may be
	// nil) and whether to continue leaking. The oracle is available.
	NextPeriod(t int, view *View, dec Oracle) (h1, h2 Func, more bool)
	// Messages returns the challenge pair.
	Messages(view *View) (m0, m1 *bn254.GT)
	// Guess receives the challenge; the oracle now rejects it.
	Guess(ct *Ciphertext, view *View, dec Oracle) int
}

// Config parameterizes the CCA2 game.
type Config struct {
	Params     params.Params
	NID        int
	MaxPeriods int
}

// Result reports a game outcome.
type Result struct {
	Win              bool
	Periods          int
	Leaked1, Leaked2 int
	OracleQueries    int
}

// RunGame plays the CCA2-CML game. The challenger refreshes the master
// shares at the end of every leakage period; leakage stops before the
// challenge, matching Definition 3.2's extension in §3.3.
func RunGame(rng io.Reader, cfg Config, adv Adversary) (*Result, error) {
	if rng == nil {
		rng = rand.Reader
	}
	if cfg.MaxPeriods == 0 {
		cfg.MaxPeriods = 16
	}
	pk, m1, m2, err := Gen(rng, cfg.Params, cfg.NID, nil, nil)
	if err != nil {
		return nil, err
	}
	view := &View{PK: pk}
	budget1 := leakage.NewBudget(8 * len(m1.SecretBytes())) // ρ1 ≤ 1 on master share
	budget2 := leakage.NewBudget(8 * len(m2.SecretBytes()))
	queries := 0

	var challenge *Ciphertext
	oracle := func(ct *Ciphertext) (*bn254.GT, error) {
		if challenge != nil && bytes.Equal(ct.Bytes(), challenge.Bytes()) {
			return nil, fmt.Errorf("cca2: oracle refuses the challenge ciphertext")
		}
		queries++
		return Decrypt(rng, pk, m1, m2, ct)
	}

	periods := 0
	for t := 0; t < cfg.MaxPeriods; t++ {
		h1, h2, more := adv.NextPeriod(t, view, oracle)
		if !more {
			break
		}
		periods++
		var l1, l2 []byte
		if h1 != nil {
			l1 = h1(m1.SecretBytes(), view)
		}
		if h2 != nil {
			l2 = h2(m2.SecretBytes(), view)
		}
		if err := budget1.Charge(len(l1)*8, 0); err != nil {
			return nil, fmt.Errorf("cca2: P1 %w", err)
		}
		if err := budget2.Charge(len(l2)*8, 0); err != nil {
			return nil, fmt.Errorf("cca2: P2 %w", err)
		}
		view.Leak1 = append(view.Leak1, l1)
		view.Leak2 = append(view.Leak2, l2)

		if err := dibe.RefreshMaster(rng, m1, m2); err != nil {
			return nil, fmt.Errorf("cca2: master refresh: %w", err)
		}
	}

	m0, mOne := adv.Messages(view)
	if m0 == nil || mOne == nil {
		return nil, fmt.Errorf("cca2: adversary returned nil messages")
	}
	bit, err := randomBit(rng)
	if err != nil {
		return nil, err
	}
	mb := m0
	if bit == 1 {
		mb = mOne
	}
	challenge, err = Encrypt(rng, pk, mb, nil)
	if err != nil {
		return nil, err
	}
	guess := adv.Guess(challenge, view, oracle)

	return &Result{
		Win:           guess == bit,
		Periods:       periods,
		Leaked1:       budget1.Total(),
		Leaked2:       budget2.Total(),
		OracleQueries: queries,
	}, nil
}

func randomBit(rng io.Reader) (int, error) {
	k, err := scalar.Rand(rng)
	if err != nil {
		return 0, err
	}
	return int(k.Bit(0)), nil
}
