package cca2

import (
	"crypto/rand"
	"testing"

	"repro/internal/bb"
	"repro/internal/bn254"
	"repro/internal/dibe"
	"repro/internal/params"
)

const testNID = 8

func testSetup(t *testing.T) (*PublicKey, *dibe.MasterP1, *dibe.MasterP2) {
	t.Helper()
	prm := params.MustNew(40, 128)
	pk, m1, m2, err := Gen(rand.Reader, prm, testNID, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pk, m1, m2
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	pk, m1, m2 := testSetup(t)
	m, err := RandMessage(rand.Reader, pk)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := Encrypt(rand.Reader, pk, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decrypt(rand.Reader, pk, m1, m2, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("CCA2 decryption returned wrong message")
	}
}

func TestTamperedCiphertextRejected(t *testing.T) {
	pk, _, _ := testSetup(t)
	m, _ := RandMessage(rand.Reader, pk)
	ct, err := Encrypt(rand.Reader, pk, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with the inner ciphertext payload: the OTS must catch it.
	tampered := *ct
	tampered.C = mutateInner(t, ct)
	if err := Validate(&tampered); err == nil {
		t.Fatal("tampered inner ciphertext passed validation")
	}
}

// mutateInner alters the inner ciphertext's GT payload, invalidating the
// one-time signature computed over the original encoding.
func mutateInner(t *testing.T, ct *Ciphertext) *bb.Ciphertext {
	t.Helper()
	c2 := *ct.C
	c2.C = new(bn254.GT).Mul(ct.C.C, ct.C.C)
	return &c2
}

func TestWrongIdentityBindingRejected(t *testing.T) {
	pk, _, _ := testSetup(t)
	m, _ := RandMessage(rand.Reader, pk)
	ct1, _ := Encrypt(rand.Reader, pk, m, nil)
	ct2, _ := Encrypt(rand.Reader, pk, m, nil)
	// Splice vk from ct2 onto ct1: identity no longer matches.
	spliced := *ct1
	spliced.VK = ct2.VK
	if err := Validate(&spliced); err == nil {
		t.Fatal("vk-spliced ciphertext passed validation")
	}
}

func TestCiphertextBytesRoundTrip(t *testing.T) {
	pk, m1, m2 := testSetup(t)
	m, _ := RandMessage(rand.Reader, pk)
	ct, _ := Encrypt(rand.Reader, pk, m, nil)
	back, err := CiphertextFromBytes(ct.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decrypt(rand.Reader, pk, m1, m2, back)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("bytes round trip lost message")
	}
	if _, err := CiphertextFromBytes(ct.Bytes()[:50]); err == nil {
		t.Fatal("accepted truncated ciphertext")
	}
}

// oracleAdversary queries the decryption oracle on a fresh encryption
// during the leakage phase, leaks a few bytes, then tries the forbidden
// challenge query before guessing randomly.
type oracleAdversary struct {
	pk           *PublicKey
	m0, m1       *bn254.GT
	oracleOK     bool
	challengeRef bool
}

func (a *oracleAdversary) NextPeriod(t int, view *View, dec Oracle) (Func, Func, bool) {
	if t >= 1 {
		return nil, nil, false
	}
	m, _ := RandMessage(rand.Reader, a.pk)
	ct, _ := Encrypt(rand.Reader, a.pk, m, nil)
	if got, err := dec(ct); err == nil && got.Equal(m) {
		a.oracleOK = true
	}
	h := func(secret []byte, _ *View) []byte { return secret[:2] }
	return h, h, true
}

func (a *oracleAdversary) Messages(view *View) (*bn254.GT, *bn254.GT) {
	a.m0, _ = RandMessage(rand.Reader, a.pk)
	a.m1, _ = RandMessage(rand.Reader, a.pk)
	return a.m0, a.m1
}

func (a *oracleAdversary) Guess(ct *Ciphertext, view *View, dec Oracle) int {
	if _, err := dec(ct); err != nil {
		a.challengeRef = true
	}
	return 0
}

func TestCCA2GameOracleSemantics(t *testing.T) {
	prm := params.MustNew(40, 128)
	pk, _, _, err := Gen(rand.Reader, prm, testNID, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = pk
	adv := &oracleAdversary{}
	cfg := Config{Params: prm, NID: testNID}
	// The adversary needs the public key before the game constructs it;
	// run the game with a fresh key and hand the adversary the game's pk
	// via a two-phase trick: the game's pk is in the view.
	advRun := &viewPKAdversary{inner: adv}
	res, err := RunGame(rand.Reader, cfg, advRun)
	if err != nil {
		t.Fatal(err)
	}
	if !adv.oracleOK {
		t.Fatal("oracle failed on a legitimate query")
	}
	if !adv.challengeRef {
		t.Fatal("oracle answered the challenge ciphertext")
	}
	if res.Periods != 1 {
		t.Fatalf("played %d periods, want 1", res.Periods)
	}
	if res.Leaked1 != 16 || res.Leaked2 != 16 {
		t.Fatalf("leaked (%d, %d) bits, want (16, 16)", res.Leaked1, res.Leaked2)
	}
}

// viewPKAdversary injects the game's public key (from the view) into the
// wrapped adversary before delegating.
type viewPKAdversary struct {
	inner *oracleAdversary
}

func (a *viewPKAdversary) NextPeriod(t int, view *View, dec Oracle) (Func, Func, bool) {
	a.inner.pk = view.PK
	return a.inner.NextPeriod(t, view, dec)
}

func (a *viewPKAdversary) Messages(view *View) (*bn254.GT, *bn254.GT) {
	return a.inner.Messages(view)
}

func (a *viewPKAdversary) Guess(ct *Ciphertext, view *View, dec Oracle) int {
	return a.inner.Guess(ct, view, dec)
}
