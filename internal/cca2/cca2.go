// Package cca2 implements DLRCCA2 — the paper's distributed public key
// encryption scheme CCA2-secure against continual memory leakage (§4.3)
// — via the BCHK transform [6] over DLRIBE:
//
//	Enc(pk, m): (sk_ots, vk) ← OTS.Gen;  c ← IBE.Enc(pk, id = vk, m);
//	            σ ← Sign(sk_ots, c);     output (vk, c, σ).
//	Dec:        verify σ under vk; run the distributed extraction of the
//	            identity key for vk; run the distributed IBE decryption.
//
// The transform turns any chosen-identity-secure IBE into a CCA2-secure
// PKE; the paper extends its proof to tolerate continual leakage (and
// the distribution of the decryptor) unchanged. Leakage occurs only
// before the challenge ciphertext, as Definition 3.2 prescribes.
package cca2

import (
	"fmt"
	"io"

	"repro/internal/bb"
	"repro/internal/bn254"
	"repro/internal/dibe"
	"repro/internal/opcount"
	"repro/internal/ots"
	"repro/internal/params"
	"repro/internal/wire"
)

// PublicKey is the DLRIBE public key (the identity space is OTS
// verification-key fingerprints).
type PublicKey struct {
	IBE *dibe.PublicKey
}

// Ciphertext is (vk, c, σ).
type Ciphertext struct {
	VK  *ots.VerifyKey
	C   *bb.Ciphertext
	Sig *ots.Signature
}

// Bytes returns the canonical encoding.
func (ct *Ciphertext) Bytes() []byte {
	var b wire.Builder
	b.AppendBytes(ct.VK.Bytes())
	b.AppendBytes(ct.C.Bytes())
	b.AppendBytes(ct.Sig.Bytes())
	return b.Bytes()
}

// CiphertextFromBytes decodes a ciphertext.
func CiphertextFromBytes(raw []byte) (*Ciphertext, error) {
	p := wire.NewParser(raw)
	vkRaw, err := p.Bytes()
	if err != nil {
		return nil, err
	}
	vk, err := ots.VerifyKeyFromBytes(vkRaw)
	if err != nil {
		return nil, err
	}
	cRaw, err := p.Bytes()
	if err != nil {
		return nil, err
	}
	c, err := bb.CiphertextFromBytes(cRaw)
	if err != nil {
		return nil, err
	}
	sRaw, err := p.Bytes()
	if err != nil {
		return nil, err
	}
	sig, err := ots.SignatureFromBytes(sRaw)
	if err != nil {
		return nil, err
	}
	if !p.Done() {
		return nil, fmt.Errorf("cca2: trailing bytes in ciphertext")
	}
	return &Ciphertext{VK: vk, C: c, Sig: sig}, nil
}

// Gen generates the distributed key material: DLRIBE master shares.
func Gen(rng io.Reader, prm params.Params, nID int, ctr1, ctr2 *opcount.Counter) (*PublicKey, *dibe.MasterP1, *dibe.MasterP2, error) {
	pk, m1, m2, err := dibe.Gen(rng, prm, nID, ctr1, ctr2)
	if err != nil {
		return nil, nil, nil, err
	}
	return &PublicKey{IBE: pk}, m1, m2, nil
}

// Encrypt encrypts m ∈ GT under the CHK transform.
func Encrypt(rng io.Reader, pk *PublicKey, m *bn254.GT, ctr *opcount.Counter) (*Ciphertext, error) {
	sk, vk, err := ots.Gen(rng)
	if err != nil {
		return nil, err
	}
	c, err := dibe.Encrypt(rng, pk.IBE, vk.Fingerprint(), m, ctr)
	if err != nil {
		return nil, err
	}
	sig, err := sk.Sign(c.Bytes())
	if err != nil {
		return nil, err
	}
	return &Ciphertext{VK: vk, C: c, Sig: sig}, nil
}

// Decrypt runs the full distributed CCA2 decryption in-process: verify
// the one-time signature, extract the identity key for vk between the
// devices, and run the distributed IBE decryption.
func Decrypt(rng io.Reader, pk *PublicKey, m1 *dibe.MasterP1, m2 *dibe.MasterP2, ct *Ciphertext) (*bn254.GT, error) {
	if err := Validate(ct); err != nil {
		return nil, err
	}
	k1, k2, err := dibe.Extract(rng, m1, m2, ct.VK.Fingerprint())
	if err != nil {
		return nil, fmt.Errorf("cca2: extracting decryption key: %w", err)
	}
	return dibe.Decrypt(rng, k1, k2, ct.C)
}

// Validate performs the public checks a decryptor must run before
// touching secret material: the signature must verify and the inner
// ciphertext's identity must be vk's fingerprint.
func Validate(ct *Ciphertext) error {
	if ct == nil || ct.VK == nil || ct.C == nil || ct.Sig == nil {
		return fmt.Errorf("cca2: incomplete ciphertext")
	}
	if ct.C.ID != ct.VK.Fingerprint() {
		return fmt.Errorf("cca2: ciphertext identity does not match verification key")
	}
	if !ct.VK.Verify(ct.C.Bytes(), ct.Sig) {
		return fmt.Errorf("cca2: one-time signature invalid")
	}
	return nil
}

// RandMessage samples a random GT plaintext.
func RandMessage(rng io.Reader, pk *PublicKey) (*bn254.GT, error) {
	return dibe.RandMessage(rng, pk.IBE)
}
