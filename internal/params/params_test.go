package params

import (
	"math"
	"testing"
)

func TestDerivation(t *testing.T) {
	// n = 128, λ = 254: κ = 1 + ⌈(254+256)/254⌉ = 1 + 3 = 4 and
	// ℓ = 7 + 3·4 + ⌈256/254⌉ = 7 + 12 + 2 = 21.
	p := MustNew(128, 254)
	if p.Kappa != 4 {
		t.Fatalf("kappa = %d, want 4", p.Kappa)
	}
	if p.Ell != 7+3*p.Kappa+2 {
		t.Fatalf("ell = %d, want %d", p.Ell, 7+3*p.Kappa+2)
	}
}

func TestInvalidInputs(t *testing.T) {
	if _, err := New(0, 100); err == nil {
		t.Fatal("accepted n = 0")
	}
	if _, err := New(300, 100); err == nil {
		t.Fatal("accepted n > log p")
	}
	if _, err := New(128, 0); err == nil {
		t.Fatal("accepted λ = 0")
	}
}

func TestLeakageRatesApproachTheorem(t *testing.T) {
	// Theorem 4.1: in ModeOptimalRate, ρ1 = λ/m1 → 1 as λ grows, and
	// ρ1^Ref → 1/2. ρ2 = 1 always.
	prev := 0.0
	for _, lambda := range []int{254, 1016, 4064, 16256, 65024} {
		p := MustNew(128, lambda)
		r1 := p.Rate1(ModeOptimalRate)
		if r1 <= prev {
			t.Fatalf("ρ1 not increasing in λ: %f after %f", r1, prev)
		}
		prev = r1
		if rr := p.Rate1Refresh(ModeOptimalRate); math.Abs(rr-r1/2) > 1e-9 {
			t.Fatalf("ρ1^Ref = %f, want ρ1/2 = %f", rr, r1/2)
		}
	}
	big := MustNew(128, 1<<20)
	if big.Rate1(ModeOptimalRate) < 0.99 {
		t.Fatalf("ρ1 = %f at λ = 2²⁰; should exceed 0.99", big.Rate1(ModeOptimalRate))
	}
	if r2 := big.Rate2(); r2 != 1.0 {
		t.Fatalf("ρ2 = %f, want 1", r2)
	}
}

func TestBasicModeRateLower(t *testing.T) {
	p := MustNew(128, 508)
	if p.Rate1(ModeBasic) >= p.Rate1(ModeOptimalRate) {
		t.Fatal("basic mode should tolerate a lower leakage rate than optimal mode")
	}
	if p.M1(ModeBasic) <= p.M1(ModeOptimalRate) {
		t.Fatal("basic-mode secret memory should be larger")
	}
}

func TestB0Logarithmic(t *testing.T) {
	p := MustNew(128, 254)
	if b0 := p.B0(); b0 < 7 || b0 > 9 {
		t.Fatalf("B0 = %d bits for n = 128; want ≈ log n", b0)
	}
}

func TestModeString(t *testing.T) {
	if ModeBasic.String() != "basic" || ModeOptimalRate.String() != "optimal-rate" {
		t.Fatal("Mode.String broken")
	}
	if Mode(99).String() == "" {
		t.Fatal("unknown mode should still render")
	}
}
