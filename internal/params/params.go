// Package params derives every parameter of the DLR schemes from the
// security parameter n and leakage parameter λ, following the paper's §5
// preamble:
//
//	ε = 2⁻ⁿ
//	κ = 1 + (λ + 2·log(1/ε))/log p
//	ℓ = 7 + 3κ + 2·log(1/ε)/log p
//
// and the secret-memory and leakage-bound accounting of Theorem 4.1 and
// §6. All sizes are in bits. The group is BN254, so log p = 254.
package params

import "fmt"

// LogP is the bit length of the group order (BN254).
const LogP = 254

// Mode selects P1's secret-memory layout (§5.2 remarks).
type Mode int

const (
	// ModeBasic stores sk1 = (a1,…,aℓ, Φ) in the clear in P1's secret
	// memory, exactly as written in Construction 5.3.
	ModeBasic Mode = iota + 1
	// ModeOptimalRate stores sk1 only encrypted under Π_comm in public
	// memory; P1's secret memory is skcomm plus at most one unencrypted
	// coordinate ("Optimal leakage rate" remark, §5.2). This achieves the
	// (1−o(1)) leakage fraction of Theorem 4.1.
	ModeOptimalRate
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeBasic:
		return "basic"
	case ModeOptimalRate:
		return "optimal-rate"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Params holds the derived scheme parameters.
type Params struct {
	// N is the statistical security parameter (ε = 2⁻ᴺ). Must be ≤ LogP.
	N int
	// Lambda is the leakage parameter λ: the number of leakage bits per
	// period tolerated from P1.
	Lambda int
	// Kappa is the Π_comm (HPSKE) secret-key length κ.
	Kappa int
	// Ell is the Π_ss sharing length ℓ.
	Ell int
}

// ceilDiv returns ⌈a/b⌉ for positive b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// New derives parameters for statistical security n and leakage
// parameter lambda (both in bits).
func New(n, lambda int) (Params, error) {
	if n <= 0 || n > LogP {
		return Params{}, fmt.Errorf("params: n must be in [1, %d], got %d", LogP, n)
	}
	if lambda <= 0 {
		return Params{}, fmt.Errorf("params: lambda must be positive, got %d", lambda)
	}
	kappa := 1 + ceilDiv(lambda+2*n, LogP)
	ell := 7 + 3*kappa + ceilDiv(2*n, LogP)
	return Params{N: n, Lambda: lambda, Kappa: kappa, Ell: ell}, nil
}

// MustNew is New that panics on invalid input; for tests and examples.
func MustNew(n, lambda int) Params {
	p, err := New(n, lambda)
	if err != nil {
		panic(err)
	}
	return p
}

// SKCommBits is the size of the Π_comm secret key skcomm = (σ1,…,σκ).
func (p Params) SKCommBits() int { return p.Kappa * LogP }

// SK2Bits is the size of P2's share sk2 = (s1,…,sℓ).
func (p Params) SK2Bits() int { return p.Ell * LogP }

// g2ElemBits is the size of a G2 element (two Fp2 coordinates).
const g2ElemBits = 4 * 256

// SK1Bits is the size of P1's plaintext share sk1 = (a1,…,aℓ, Φ)
// (ℓ+1 group elements).
func (p Params) SK1Bits() int { return (p.Ell + 1) * g2ElemBits }

// M1 is the size of P1's secret memory outside refresh, per mode:
// ModeBasic holds sk1 and skcomm; ModeOptimalRate holds skcomm plus one
// unencrypted group-element coordinate (counted as log p per the paper's
// "m1 + log p" accounting).
func (p Params) M1(m Mode) int {
	switch m {
	case ModeBasic:
		return p.SK1Bits() + p.SKCommBits()
	case ModeOptimalRate:
		return p.SKCommBits() + LogP
	default:
		panic(fmt.Sprintf("params: unknown mode %d", int(m)))
	}
}

// M2 is the size of P2's secret memory outside refresh.
func (p Params) M2() int { return p.SK2Bits() }

// M1Refresh and M2Refresh are the refresh-time secret-memory sizes: each
// device holds both the outgoing and the incoming share, doubling its
// secret memory (§4: "the size of the secret memory doubles").
func (p Params) M1Refresh(m Mode) int { return 2 * p.M1(m) }

// M2Refresh is the refresh-time secret memory of P2.
func (p Params) M2Refresh() int { return 2 * p.M2() }

// B1 is the per-period leakage bound for P1: λ bits. By Theorem 4.1 this
// equals (1 − cn/(λ+cn))·m1 in ModeOptimalRate (with c ≈ 3 when n = log p).
func (p Params) B1() int { return p.Lambda }

// B2 is the per-period leakage bound for P2: the full share, m2 bits
// (the paper's ρ2 = 1).
func (p Params) B2() int { return p.M2() }

// B0 is the key-generation leakage bound: O(log n) bits under standard
// BDDH (Theorem 4.1).
func (p Params) B0() int {
	b := 0
	for v := p.N; v > 0; v >>= 1 {
		b++
	}
	return b
}

// Rate1 is the tolerated leakage rate ρ1 = B1/M1 for P1 outside refresh.
func (p Params) Rate1(m Mode) float64 { return float64(p.B1()) / float64(p.M1(m)) }

// Rate1Refresh is ρ1^Ref = B1/M1Refresh.
func (p Params) Rate1Refresh(m Mode) float64 { return float64(p.B1()) / float64(p.M1Refresh(m)) }

// Rate2 is ρ2 = B2/M2 = 1.
func (p Params) Rate2() float64 { return float64(p.B2()) / float64(p.M2()) }

// String implements fmt.Stringer.
func (p Params) String() string {
	return fmt.Sprintf("params{n=%d, λ=%d, κ=%d, ℓ=%d}", p.N, p.Lambda, p.Kappa, p.Ell)
}
