// Package server implements the long-lived P1-side daemon of ROADMAP
// item 2: many client sessions multiplexed over the internal/wire
// framing, all concurrent decrypt requests coalesced into per-tenant
// adaptive batch windows, and every window drained through one
// dlr.RunDecBatch round trip against the tenant's device channel — the
// cross-connection continuous-batching that turns PR 3's ~30×
// single-caller amortization into a property of the service rather
// than of one caller's batch.
//
// Dataflow (docs/ARCHITECTURE.md has the diagram):
//
//	sessions (1 goroutine per conn, mux frames with request ids)
//	    │ bounded per-tenant queue — full ⇒ srv.busy + retry-after
//	    ▼
//	per-tenant window loop — closes on max(batch size, deadline)
//	    │ one RunDecBatch round trip per window
//	    ▼
//	device channel to P2 ──► results fan back to their sessions,
//	                         out of order, routed by request id
//
// Windows are per-tenant so the epoch-keyed table cache stays hot
// across windows of one share state, and so a share refresh quiesces
// exactly one tenant's window while every other tenant keeps serving.
package server

import (
	"crypto/rand"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/bn254"
	"repro/internal/cache"
	"repro/internal/device"
	"repro/internal/dlr"
	"repro/internal/storage"
	"repro/internal/wire"
)

// Mux frame kinds of the client↔server protocol. Requests carry a
// per-connection id; the response (or rejection) echoes it.
const (
	// KindDec requests one decryption: payload = tenant (length-
	// prefixed) ‖ dlr.Ciphertext bytes.
	KindDec = "srv.dec"
	// KindDecResult answers a KindDec: payload = GT session bytes.
	KindDecResult = "srv.decr"
	// KindBusy rejects a request under backpressure: payload =
	// suggested retry-after in microseconds (uint32).
	KindBusy = "srv.busy"
	// KindErr answers a failed request: payload = message (length-
	// prefixed).
	KindErr = "srv.err"
	// KindRefresh requests a zero-downtime share refresh: payload =
	// tenant (length-prefixed).
	KindRefresh = "srv.ref"
	// KindRefreshed answers a completed KindRefresh: payload = the
	// tenant's new rotation epoch (uint32 high ‖ uint32 low).
	KindRefreshed = "srv.refr"
)

// Config shapes a Server.
type Config struct {
	// BatchSize closes a window when this many requests have
	// coalesced. Default 32.
	BatchSize int
	// Window closes a non-full window this long after its first
	// request arrived — the latency bound a lone request pays for the
	// chance of amortization. Default 2ms. Zero or negative drains
	// eagerly: a window takes only what is already queued.
	Window time.Duration
	// QueueDepth bounds each tenant's request queue; a request
	// arriving at a full queue is rejected with KindBusy rather than
	// buffered without bound. Default 4×BatchSize.
	QueueDepth int
	// RetryAfter is the backoff hint sent with KindBusy. Default 2ms.
	RetryAfter time.Duration
	// CacheCap, when positive, attaches a shared rotation-aware table
	// cache (internal/cache) of that capacity to every registered
	// tenant's P1, so consecutive windows of one epoch replay the same
	// pairing tables.
	CacheCap int
	// Serial bypasses the batch windows and serves every request
	// through the per-request protocol (dlr.RunDec, one round trip per
	// request) — the pre-batching baseline the E16 experiment measures
	// the windows against.
	Serial bool
	// RefreshEvery, when positive, runs a per-tenant rotation scheduler:
	// every tenant's shares are refreshed on this cadence without any
	// client asking (the paper's leakage bounds are per-period, so a
	// production deployment rotates continually). Zero disables the
	// scheduler; RefreshTenant remains available either way.
	RefreshEvery time.Duration
	// ColdRefresh reverts RefreshTenant (and the scheduler) to the
	// serialized rotation path — the full RunRef + BeginPeriod executed
	// between windows, with every table rebuilt by the first
	// post-rotation batch. Default false: rotations are pipelined, with
	// next-epoch state staged and tables prewarmed concurrently with
	// serving, and only the commit round trip quiescing the window
	// loop. The cold path is kept for the E17 comparison and as an
	// operational escape hatch.
	ColdRefresh bool
}

func (c Config) withDefaults() Config {
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.Window == 0 {
		c.Window = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.BatchSize
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 2 * time.Millisecond
	}
	return c
}

// request is one queued decrypt request.
type request struct {
	ct *dlr.Ciphertext
	// enq is when the request entered the queue; responses report
	// queue-to-response latency against it.
	enq time.Time
	// sess is the session that queued the request. respond enqueues the
	// response frame on it; the window loop flushes each distinct
	// session once per drained window (one write syscall instead of one
	// per response).
	sess *session
	// respond delivers the result back to the session that queued the
	// request. Called exactly once, from the tenant's window loop.
	respond func(m *bn254.GT, err error)
}

// control is an out-of-band operation on a tenant's window loop,
// executed between windows so it can never interleave with a drain on
// the shared device channel. run is the operation itself; its result
// is delivered on done.
type control struct {
	run  func() error
	done chan error
}

// tenant is one registered share state: P1, its device channel to P2,
// and the window machinery.
type tenant struct {
	name     string
	p1       *dlr.P1
	dev      device.Channel
	closeDev func() error

	queue chan *request
	ctl   chan *control
	// done closes when the window loop has drained and exited.
	done chan struct{}
	// refreshMu serializes rotations of this tenant: the staged share
	// state must not race a competing stage or commit. Serving is NOT
	// excluded — that is the point of the pipelined path.
	refreshMu sync.Mutex
	// stopRot stops the tenant's rotation scheduler (when RefreshEvery
	// is set).
	stopRot chan struct{}
}

// Server is the multiplexed batch-window daemon.
//
// Lock order, outermost first (enforced by dlrlint lock-discipline;
// see docs/ARCHITECTURE.md "Static analysis"). In practice the locks
// are never nested — each protects a disjoint phase — but the declared
// order keeps future nesting honest:
//
//dlr:lock-order mu refreshMu intakeMu wmu
type Server struct {
	cfg      Config
	metrics  *Metrics
	tenants  *storage.Striped[*tenant]
	tabCache *cache.Cache

	// intakeMu orders request intake against shutdown: enqueues hold
	// the read side, the drain flag flips under the write side, so no
	// request can slip into a queue after draining began.
	intakeMu sync.RWMutex
	//dlr:guarded-by intakeMu
	draining bool

	mu sync.Mutex
	//dlr:guarded-by mu
	closed bool
	//dlr:guarded-by mu
	lns map[net.Listener]struct{}
	//dlr:guarded-by mu
	conns map[net.Conn]struct{}

	loopWG sync.WaitGroup // per-tenant window loops
	connWG sync.WaitGroup // per-connection session handlers
	rotWG  sync.WaitGroup // per-tenant rotation schedulers
}

// New returns a Server with the given configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		metrics: newMetrics(globalMetrics),
		tenants: storage.NewStriped[*tenant](),
		lns:     make(map[net.Listener]struct{}),
		conns:   make(map[net.Conn]struct{}),
	}
	if cfg.CacheCap > 0 {
		s.tabCache = cache.New(cfg.CacheCap)
		registerCache(s.tabCache)
	}
	return s
}

// Metrics returns the server's serving-path counters.
func (s *Server) Metrics() *Metrics { return s.metrics }

// RegisterTenant installs a tenant: p1 is the share state the server
// serves, dev the channel to the tenant's P2 device. closeDev, when
// non-nil, is called during Shutdown after the tenant's window loop
// has drained (e.g. to close the underlying connection). The tenant's
// window loop starts immediately.
func (s *Server) RegisterTenant(name string, p1 *dlr.P1, dev device.Channel, closeDev func() error) error {
	if p1 == nil || dev == nil {
		return fmt.Errorf("server: tenant %q needs a P1 and a device channel", name)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("server: registering tenant %q on a closed server", name)
	}
	s.mu.Unlock()
	t := &tenant{
		name: name, p1: p1, dev: dev, closeDev: closeDev,
		queue:   make(chan *request, s.cfg.QueueDepth),
		ctl:     make(chan *control),
		done:    make(chan struct{}),
		stopRot: make(chan struct{}),
	}
	if _, stored := s.tenants.PutIfAbsent(name, t); !stored {
		return fmt.Errorf("server: tenant %q already registered", name)
	}
	if s.tabCache != nil {
		p1.AttachCache(s.tabCache, name)
	}
	s.loopWG.Add(1)
	go s.windowLoop(t)
	if s.cfg.RefreshEvery > 0 {
		s.rotWG.Add(1)
		go s.rotationLoop(t)
	}
	return nil
}

// RegisterLocal registers a tenant whose P2 runs in-process: the
// device channel is an in-memory pair with p2's serve loop on the far
// end. This is the shape tests, benchmarks and single-process
// deployments use.
func (s *Server) RegisterLocal(name string, p1 *dlr.P1, p2 *dlr.P2) error {
	a, b := device.NewLocalPair()
	go func() {
		// The loop exits with an error when the server closes its end.
		_ = p2.ServeLoop(b)
		_ = b.Close()
	}()
	return s.RegisterTenant(name, p1, a, a.Close)
}

// TenantEpoch returns the rotation epoch of a registered tenant's
// share state.
func (s *Server) TenantEpoch(name string) (uint64, bool) {
	t, ok := s.tenants.Get(name)
	if !ok {
		return 0, false
	}
	return t.p1.Epoch(), true
}

// Tenants returns the registered tenant names, sorted.
func (s *Server) Tenants() []string { return s.tenants.Keys() }

// QueueDepth returns the current number of queued requests across all
// tenants — the live gauge behind the docs' queue-depth guidance.
func (s *Server) QueueDepth() int {
	n := 0
	s.tenants.Range(func(_ string, t *tenant) bool {
		n += len(t.queue)
		return true
	})
	return n
}

// RefreshTenant rotates one tenant's shares with zero downtime for
// every other tenant and — on the default pipelined path — near-zero
// stall for the tenant itself.
//
// Pipelined (default): the next-epoch share material and its pairing
// tables are staged by dlr.P1.StageRefresh concurrently with serving
// (staging only reads share state, which mutates exclusively on the
// window loop, and refreshMu excludes competing rotations). Only the
// commit — one device round trip plus an atomic state flip — runs on
// the window loop between batch windows, so the serving stall is the
// commit's duration, not the full rebuild's. The first post-commit
// window finds prewarmed tables and a warm batch session.
//
// Cold (Config.ColdRefresh): the full RunRef + BeginPeriod executes on
// the window loop, stalling the tenant for the whole rotation and
// leaving every table to be rebuilt by the first post-rotation batch.
func (s *Server) RefreshTenant(name string) error {
	t, ok := s.tenants.Get(name)
	if !ok {
		return fmt.Errorf("server: unknown tenant %q", name)
	}
	if s.cfg.ColdRefresh {
		var stall time.Duration
		err := s.execOnLoop(t, func() error {
			start := time.Now()
			defer func() { stall = time.Since(start) }()
			return s.refresh(t)
		})
		if err == nil {
			s.metrics.recordRotation(stall, stall, false)
		}
		return err
	}

	t.refreshMu.Lock()
	defer t.refreshMu.Unlock()
	buildStart := time.Now()
	st, err := t.p1.StageRefresh(rand.Reader)
	if err != nil {
		return fmt.Errorf("server: staging refresh for %q: %w", name, err)
	}
	rebuild := time.Since(buildStart)
	var stall time.Duration
	err = s.execOnLoop(t, func() error {
		start := time.Now()
		defer func() { stall = time.Since(start) }()
		return t.p1.CommitRefresh(rand.Reader, t.dev, st)
	})
	if err != nil {
		st.Abandon()
		return fmt.Errorf("server: committing refresh for %q: %w", name, err)
	}
	s.metrics.recordRefresh()
	s.metrics.recordRotation(stall, rebuild, true)
	return nil
}

// execOnLoop runs op on the tenant's window loop, strictly between
// batch windows, and returns its result.
func (s *Server) execOnLoop(t *tenant, op func() error) error {
	c := &control{run: op, done: make(chan error, 1)}
	select {
	case t.ctl <- c:
	case <-t.done:
		return fmt.Errorf("server: tenant %q window loop stopped", t.name)
	}
	select {
	case err := <-c.done:
		return err
	case <-t.done:
		return fmt.Errorf("server: tenant %q window loop stopped during control op", t.name)
	}
}

// rotationLoop is the per-tenant refresh scheduler: every RefreshEvery
// it rotates the tenant's shares through RefreshTenant. It exits when
// Shutdown signals stopRot (before the window loops drain, so no
// rotation can land on a closed loop).
func (s *Server) rotationLoop(t *tenant) {
	defer s.rotWG.Done()
	ticker := time.NewTicker(s.cfg.RefreshEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			// An error here means the loop stopped (shutdown racing the
			// tick) or the device failed; either way the scheduler keeps
			// its cadence and the next tick retries.
			_ = s.RefreshTenant(t.name)
		case <-t.stopRot:
			return
		case <-t.done:
			return
		}
	}
}

// Serve accepts connections on ln until the listener closes (Shutdown
// closes every registered listener). Each connection gets a session
// goroutine; Serve itself blocks.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("server: Serve on closed server")
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			delete(s.lns, ln)
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

// Shutdown stops the server gracefully: listeners close (no new
// sessions), intake stops (new requests are refused), every tenant's
// window loop drains its queued requests through final batch windows
// and exits, and only then do the session connections and device
// channels close. Queued requests are answered, not dropped.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for ln := range s.lns {
		_ = ln.Close()
	}
	s.mu.Unlock()

	// Stop the rotation schedulers first and wait out any in-flight
	// scheduled rotation: the window loops are still alive here, so a
	// committing rotation finishes normally instead of landing on a
	// drained loop.
	s.tenants.Range(func(_ string, t *tenant) bool {
		close(t.stopRot)
		return true
	})
	s.rotWG.Wait()

	// Flip the drain flag under the write lock: after this, no session
	// can be mid-enqueue, so closing the queues is race-free.
	s.intakeMu.Lock()
	s.draining = true
	s.intakeMu.Unlock()

	s.tenants.Range(func(_ string, t *tenant) bool {
		close(t.queue)
		return true
	})
	s.loopWG.Wait()

	s.tenants.Range(func(_ string, t *tenant) bool {
		if t.closeDev != nil {
			_ = t.closeDev()
		}
		return true
	})

	s.mu.Lock()
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	s.connWG.Wait()

	if s.tabCache != nil {
		unregisterCache(s.tabCache)
	}
}

// session is one client connection: a read loop plus a write mutex so
// window loops (which answer out of order) never interleave frames.
// Responses produced while draining a batch window are not written one
// by one: respond closures append their frames to pend under wmu, and
// the window loop flushes the coalesced buffer with a single
// conn.Write per (connection, window) — 32 response syscalls become
// one.
type session struct {
	conn net.Conn
	m    *Metrics
	wmu  sync.Mutex
	//dlr:guarded-by wmu
	pend []byte // encoded frames awaiting flush
	//dlr:guarded-by wmu
	npend int // frames in pend
}

// send writes one mux frame immediately; on write failure the
// connection is closed so the session's read loop terminates and the
// client sees the break. Used off the window path (rejections, parse
// errors, refresh acks), where there is nothing to coalesce with.
func (ss *session) send(m wire.MuxMsg) {
	ss.wmu.Lock()
	// wmu is the per-connection frame serializer: holding it across the
	// write is what keeps concurrently-answering window loops from
	// interleaving frames. Nothing else is acquired under it.
	//dlrlint:ignore lock-discipline wmu serializes frame writes on this conn; holding it across the write is its purpose
	err := wire.WriteMux(ss.conn, m)
	ss.wmu.Unlock()
	if err != nil {
		_ = ss.conn.Close()
		return
	}
	ss.m.recordOutbound(1, m.Size())
}

// enqueue appends m to the session's pending flush buffer. The frame
// reaches the wire at the next flush.
func (ss *session) enqueue(m wire.MuxMsg) {
	ss.wmu.Lock()
	p, err := wire.AppendMux(ss.pend, m)
	if err == nil {
		ss.pend = p
		ss.npend++
	}
	ss.wmu.Unlock()
	if err != nil {
		// Oversized frame: surface as a connection break, matching send.
		_ = ss.conn.Close()
	}
}

// flush writes every pending frame in one conn.Write. The buffer is
// retained (length-reset) for the session's next window.
func (ss *session) flush() {
	ss.wmu.Lock()
	if len(ss.pend) == 0 {
		ss.wmu.Unlock()
		return
	}
	n, frames := len(ss.pend), ss.npend
	// Same contract as send: wmu serializes conn writes, and the flush
	// must be atomic with the buffer reset below.
	//dlrlint:ignore lock-discipline wmu serializes frame writes on this conn; the flush and buffer reset must be atomic
	_, err := ss.conn.Write(ss.pend)
	ss.pend = ss.pend[:0]
	ss.npend = 0
	ss.wmu.Unlock()
	if err != nil {
		_ = ss.conn.Close()
		return
	}
	ss.m.recordOutbound(frames, n)
}

func (ss *session) sendErr(id uint64, msg string) {
	var b wire.Builder
	b.AppendBytes([]byte(msg))
	ss.send(wire.MuxMsg{ID: id, Kind: KindErr, Payload: b.Bytes()})
}

// enqueueErr is sendErr's coalescing twin for the window drain path.
func (ss *session) enqueueErr(id uint64, msg string) {
	var b wire.Builder
	b.AppendBytes([]byte(msg))
	ss.enqueue(wire.MuxMsg{ID: id, Kind: KindErr, Payload: b.Bytes()})
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.connWG.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	ss := &session{conn: conn, m: s.metrics}
	// The reader reuses one payload buffer across frames; handleDec
	// decodes the ciphertext out of it before the next read, and the
	// refresh path (which crosses a goroutine boundary) copies.
	rd := wire.NewReader(conn)
	for {
		m, err := rd.NextMux()
		if err != nil {
			return
		}
		s.metrics.recordInbound(1, m.Size())
		switch m.Kind {
		case KindDec:
			s.handleDec(ss, m)
		case KindRefresh:
			// Refresh blocks until the tenant's window quiesces; run it
			// off the read loop so the session keeps pumping requests
			// for other tenants meanwhile. The payload is copied: the
			// goroutine outlives this iteration's reader scratch.
			m.Payload = append([]byte(nil), m.Payload...)
			s.connWG.Add(1)
			go func(m wire.MuxMsg) {
				defer s.connWG.Done()
				s.handleRefresh(ss, m)
			}(m)
		default:
			ss.sendErr(m.ID, fmt.Sprintf("unknown frame kind %q", m.Kind))
		}
	}
}

// handleDec parses a decrypt request and places it into its tenant's
// window queue, applying backpressure when the queue is full. m's
// payload is the session reader's scratch: everything that outlives
// this call (the queued request, the respond closure) is decoded out
// of it before returning.
//
//dlr:borrowed m
func (s *Server) handleDec(ss *session, m wire.MuxMsg) {
	p := wire.NewParser(m.Payload)
	tenantName, err := p.Bytes()
	if err != nil {
		ss.sendErr(m.ID, fmt.Sprintf("bad request: %v", err))
		return
	}
	raw, err := p.Raw(p.Remaining())
	if err != nil {
		ss.sendErr(m.ID, fmt.Sprintf("bad request: %v", err))
		return
	}
	ct, err := dlr.CiphertextFromBytes(raw)
	if err != nil {
		ss.sendErr(m.ID, fmt.Sprintf("bad ciphertext: %v", err))
		return
	}
	t, ok := s.tenants.Get(string(tenantName))
	if !ok {
		ss.sendErr(m.ID, fmt.Sprintf("unknown tenant %q", tenantName))
		return
	}

	id := m.ID
	req := &request{ct: ct, enq: time.Now(), sess: ss}
	req.respond = func(msg *bn254.GT, derr error) {
		s.metrics.recordResponse(time.Since(req.enq), derr != nil)
		if derr != nil {
			ss.enqueueErr(id, fmt.Sprintf("decrypt: %v", derr))
			return
		}
		ss.enqueue(wire.MuxMsg{ID: id, Kind: KindDecResult, Payload: msg.Bytes()})
	}

	s.intakeMu.RLock()
	if s.draining {
		s.intakeMu.RUnlock()
		ss.sendErr(id, "server shutting down")
		return
	}
	select {
	case t.queue <- req:
		s.intakeMu.RUnlock()
		s.metrics.recordRequest()
	default:
		s.intakeMu.RUnlock()
		s.metrics.recordRejected()
		var b wire.Builder
		b.AppendUint32(uint32(s.cfg.RetryAfter.Microseconds()))
		ss.send(wire.MuxMsg{ID: id, Kind: KindBusy, Payload: b.Bytes()})
	}
}

func (s *Server) handleRefresh(ss *session, m wire.MuxMsg) {
	p := wire.NewParser(m.Payload)
	tenantName, err := p.Bytes()
	if err != nil {
		ss.sendErr(m.ID, fmt.Sprintf("bad request: %v", err))
		return
	}
	if err := s.RefreshTenant(string(tenantName)); err != nil {
		ss.sendErr(m.ID, fmt.Sprintf("refresh: %v", err))
		return
	}
	epoch, _ := s.TenantEpoch(string(tenantName))
	var b wire.Builder
	b.AppendUint32(uint32(epoch >> 32))
	b.AppendUint32(uint32(epoch))
	ss.send(wire.MuxMsg{ID: m.ID, Kind: KindRefreshed, Payload: b.Bytes()})
}

// refresh runs the 2-party refresh plus period rotation on the
// tenant's device channel. Called only from the tenant's window loop.
func (s *Server) refresh(t *tenant) error {
	if err := t.p1.RunRef(rand.Reader, t.dev); err != nil {
		return fmt.Errorf("server: refresh protocol for %q: %w", t.name, err)
	}
	if err := t.p1.BeginPeriod(rand.Reader); err != nil {
		return fmt.Errorf("server: period rotation for %q: %w", t.name, err)
	}
	s.metrics.recordRefresh()
	return nil
}
