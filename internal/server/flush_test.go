package server

import (
	"bytes"
	"net"
	"testing"
	"time"

	"repro/internal/wire"
)

// countingConn records every Write call so tests can pin the
// one-syscall-per-flush property of the vectored response path.
type countingConn struct {
	net.Conn // nil; only Write is exercised
	writes   int
	buf      bytes.Buffer
	closed   bool
}

func (c *countingConn) Write(p []byte) (int, error) {
	c.writes++
	return c.buf.Write(p)
}

func (c *countingConn) Close() error {
	c.closed = true
	return nil
}

// TestSessionFlushCoalesces checks that enqueue buffers frames without
// touching the connection and a flush moves all of them in exactly one
// Write, byte-identical to frame-at-a-time encoding.
func TestSessionFlushCoalesces(t *testing.T) {
	conn := &countingConn{}
	ss := &session{conn: conn, m: newMetrics(nil)}

	frames := []wire.MuxMsg{
		{ID: 1, Kind: KindDecResult, Payload: []byte("aaaa")},
		{ID: 7, Kind: KindDecResult, Payload: []byte("bb")},
		{ID: 3, Kind: KindErr, Payload: []byte("\x00\x00\x00\x01e")},
	}
	for _, m := range frames {
		ss.enqueue(m)
	}
	if conn.writes != 0 {
		t.Fatalf("enqueue performed %d writes, want 0", conn.writes)
	}
	ss.flush()
	if conn.writes != 1 {
		t.Fatalf("flush performed %d writes, want exactly 1", conn.writes)
	}
	// Idempotent when empty.
	ss.flush()
	if conn.writes != 1 {
		t.Fatalf("empty flush wrote to the connection")
	}

	var want bytes.Buffer
	for _, m := range frames {
		if err := wire.WriteMux(&want, m); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(conn.buf.Bytes(), want.Bytes()) {
		t.Fatal("coalesced flush bytes differ from frame-at-a-time encoding")
	}

	snap := ss.m.Snapshot()
	if snap.FramesOut != uint64(len(frames)) {
		t.Fatalf("FramesOut = %d, want %d", snap.FramesOut, len(frames))
	}
	if snap.BytesOut != uint64(want.Len()) {
		t.Fatalf("BytesOut = %d, want %d", snap.BytesOut, want.Len())
	}
}

// TestFlushSessionsDedupes checks the window-drain flush touches each
// distinct session exactly once.
func TestFlushSessionsDedupes(t *testing.T) {
	connA, connB := &countingConn{}, &countingConn{}
	a := &session{conn: connA, m: newMetrics(nil)}
	b := &session{conn: connB, m: newMetrics(nil)}
	batch := []*request{
		{sess: a, enq: time.Now()},
		{sess: b, enq: time.Now()},
		{sess: a, enq: time.Now()},
		{sess: a, enq: time.Now()},
	}
	for _, req := range batch {
		req.sess.enqueue(wire.MuxMsg{ID: 1, Kind: KindDecResult, Payload: []byte("x")})
	}
	flushSessions(batch)
	if connA.writes != 1 || connB.writes != 1 {
		t.Fatalf("writes = %d/%d, want 1/1", connA.writes, connB.writes)
	}
}
