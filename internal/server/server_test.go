package server_test

import (
	"crypto/rand"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bn254"
	"repro/internal/device"
	"repro/internal/dlr"
	"repro/internal/params"
	"repro/internal/server"
	"repro/internal/wire"
)

func testParams(t *testing.T) params.Params {
	t.Helper()
	return params.MustNew(40, 128)
}

// testInstance generates one DLR instance for a tenant.
func testInstance(t *testing.T) (*dlr.PublicKey, *dlr.P1, *dlr.P2) {
	t.Helper()
	pk, p1, p2, err := dlr.Gen(rand.Reader, testParams(t))
	if err != nil {
		t.Fatal(err)
	}
	return pk, p1, p2
}

// startServer brings up a server on a loopback listener and returns
// its address. The listener's Serve loop and Shutdown are managed by
// the test cleanup.
func startServer(t *testing.T, s *server.Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	t.Cleanup(func() {
		s.Shutdown()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return ln.Addr().String()
}

func dialClient(t *testing.T, addr string) *server.Client {
	t.Helper()
	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// encryptN draws n random messages and encrypts them under pk.
func encryptN(t *testing.T, pk *dlr.PublicKey, n int) ([]*bn254.GT, []*dlr.Ciphertext) {
	t.Helper()
	msgs := make([]*bn254.GT, n)
	cts := make([]*dlr.Ciphertext, n)
	for i := range cts {
		m, err := dlr.RandMessage(rand.Reader, pk)
		if err != nil {
			t.Fatal(err)
		}
		ct, err := dlr.Encrypt(rand.Reader, pk, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		msgs[i], cts[i] = m, ct
	}
	return msgs, cts
}

// TestServerRoundTrip drives concurrent single-request clients through
// one batch-window server and checks every decryption — requests from
// different goroutines coalesce into shared windows and fan back to
// the right callers.
func TestServerRoundTrip(t *testing.T) {
	pk, p1, p2 := testInstance(t)
	s := server.New(server.Config{BatchSize: 8, Window: 20 * time.Millisecond, CacheCap: 8})
	if err := s.RegisterLocal("alice", p1, p2); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, s)
	c := dialClient(t, addr)

	const n = 10
	msgs, cts := encryptN(t, pk, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := c.Decrypt("alice", cts[i])
			if err != nil {
				errs[i] = err
				return
			}
			if !got.Equal(msgs[i]) {
				t.Errorf("request %d decrypted wrong", i)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}

	m := s.Metrics().Snapshot()
	if m.Responses != n {
		t.Fatalf("responses = %d, want %d", m.Responses, n)
	}
	if m.Windows == 0 || m.Windows > n {
		t.Fatalf("windows = %d, want 1..%d", m.Windows, n)
	}
	if m.Errors != 0 {
		t.Fatalf("errors = %d, want 0", m.Errors)
	}
	var histTotal uint64
	for size, count := range m.BatchHist {
		histTotal += uint64(size) * count
	}
	if histTotal != n {
		t.Fatalf("batch histogram accounts for %d requests, want %d", histTotal, n)
	}
}

// TestServerSerialMode checks the per-request baseline path the E16
// experiment measures the windows against.
func TestServerSerialMode(t *testing.T) {
	pk, p1, p2 := testInstance(t)
	s := server.New(server.Config{Serial: true})
	if err := s.RegisterLocal("alice", p1, p2); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, s)
	c := dialClient(t, addr)

	msgs, cts := encryptN(t, pk, 3)
	for i := range cts {
		got, err := c.Decrypt("alice", cts[i])
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(msgs[i]) {
			t.Fatalf("request %d decrypted wrong", i)
		}
	}
	m := s.Metrics().Snapshot()
	if m.Windows != 3 {
		t.Fatalf("serial mode: windows = %d, want 3 (one per request)", m.Windows)
	}
	if m.MeanOccupancy != 1 {
		t.Fatalf("serial mode: mean occupancy = %v, want 1", m.MeanOccupancy)
	}
}

// TestServerMultiTenant checks that two tenants' requests route to
// their own share state over one connection.
func TestServerMultiTenant(t *testing.T) {
	pkA, p1A, p2A := testInstance(t)
	pkB, p1B, p2B := testInstance(t)
	s := server.New(server.Config{BatchSize: 4, Window: 10 * time.Millisecond})
	if err := s.RegisterLocal("alice", p1A, p2A); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterLocal("bob", p1B, p2B); err != nil {
		t.Fatal(err)
	}
	if got := s.Tenants(); len(got) != 2 {
		t.Fatalf("Tenants() = %v, want 2 entries", got)
	}
	addr := startServer(t, s)
	c := dialClient(t, addr)

	msgsA, ctsA := encryptN(t, pkA, 2)
	msgsB, ctsB := encryptN(t, pkB, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			got, err := c.Decrypt("alice", ctsA[i])
			if err != nil {
				t.Errorf("alice %d: %v", i, err)
				return
			}
			if !got.Equal(msgsA[i]) {
				t.Errorf("alice %d decrypted wrong", i)
			}
		}(i)
		go func(i int) {
			defer wg.Done()
			got, err := c.Decrypt("bob", ctsB[i])
			if err != nil {
				t.Errorf("bob %d: %v", i, err)
				return
			}
			if !got.Equal(msgsB[i]) {
				t.Errorf("bob %d decrypted wrong", i)
			}
		}(i)
	}
	wg.Wait()
}

func TestServerUnknownTenant(t *testing.T) {
	pk, p1, p2 := testInstance(t)
	s := server.New(server.Config{})
	if err := s.RegisterLocal("alice", p1, p2); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, s)
	c := dialClient(t, addr)

	_, cts := encryptN(t, pk, 1)
	if _, err := c.Decrypt("mallory", cts[0]); err == nil ||
		!strings.Contains(err.Error(), "unknown tenant") {
		t.Fatalf("decrypt for unregistered tenant: err = %v, want unknown-tenant error", err)
	}
	if _, err := c.Refresh("mallory"); err == nil ||
		!strings.Contains(err.Error(), "unknown tenant") {
		t.Fatalf("refresh for unregistered tenant: err = %v, want unknown-tenant error", err)
	}
}

// gatedChannel blocks protocol sends until the gate closes — it stalls
// a tenant's window mid-drain so tests can observe queue backpressure
// and shutdown draining deterministically.
type gatedChannel struct {
	device.Channel
	gate chan struct{}
}

func (g *gatedChannel) Send(m wire.Msg) error {
	<-g.gate
	return g.Channel.Send(m)
}

// TestServerBackpressure fills a depth-1 queue behind a stalled window
// and checks the overflow request is bounced with a busy frame rather
// than buffered or dropped — and that the stalled requests complete
// once the window unblocks.
func TestServerBackpressure(t *testing.T) {
	pk, p1, p2 := testInstance(t)
	a, b := device.NewLocalPair()
	go func() { _ = p2.ServeLoop(b) }()
	gate := make(chan struct{})
	dev := &gatedChannel{Channel: a, gate: gate}

	s := server.New(server.Config{BatchSize: 1, Window: -1, QueueDepth: 1})
	if err := s.RegisterTenant("alice", p1, dev, a.Close); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, s)
	c := dialClient(t, addr)

	msgs, cts := encryptN(t, pk, 3)
	results := make([]error, 2)
	var wg sync.WaitGroup
	send := func(i int) {
		defer wg.Done()
		got, err := c.Decrypt("alice", cts[i])
		if err == nil && !got.Equal(msgs[i]) {
			err = fmt.Errorf("request %d decrypted wrong", i)
		}
		results[i] = err
	}

	// First request: dequeued immediately, stalls at the gate.
	wg.Add(1)
	go send(0)
	waitFor(t, func() bool {
		return s.Metrics().Snapshot().Requests == 1 && s.QueueDepth() == 0
	}, "first request entering its window")

	// Second request: sits in the depth-1 queue.
	wg.Add(1)
	go send(1)
	waitFor(t, func() bool { return s.QueueDepth() == 1 }, "second request queued")

	// Third request: queue full → busy. No retries so the rejection is
	// observable.
	c2 := dialClient(t, addr)
	c2.MaxBusyRetries = 0
	if _, err := c2.Decrypt("alice", cts[2]); err == nil ||
		!strings.Contains(err.Error(), "busy") {
		t.Fatalf("overflow request: err = %v, want busy rejection", err)
	}
	if got := s.Metrics().Snapshot().Rejected; got == 0 {
		t.Fatalf("rejected counter = %d, want ≥ 1", got)
	}

	close(gate)
	wg.Wait()
	for i, err := range results {
		if err != nil {
			t.Fatalf("stalled request %d failed: %v", i, err)
		}
	}
}

// TestServerRefreshUnderTraffic refreshes a tenant's shares while
// concurrent clients decrypt through it: every request must succeed
// (refresh quiesces between windows, dropping nothing) and the
// tenant's rotation epoch must advance — once for the 2-party refresh,
// once for the period rotation.
func TestServerRefreshUnderTraffic(t *testing.T) {
	pk, p1, p2 := testInstance(t)
	s := server.New(server.Config{BatchSize: 4, Window: 5 * time.Millisecond, CacheCap: 8})
	if err := s.RegisterLocal("alice", p1, p2); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, s)
	c := dialClient(t, addr)

	epochBefore, ok := s.TenantEpoch("alice")
	if !ok {
		t.Fatal("TenantEpoch: tenant not found")
	}

	const n = 8
	msgs, cts := encryptN(t, pk, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := c.Decrypt("alice", cts[i])
			if err != nil {
				errs[i] = err
				return
			}
			if !got.Equal(msgs[i]) {
				t.Errorf("request %d decrypted wrong across refresh", i)
			}
		}(i)
		if i == n/2 {
			epoch, err := c.Refresh("alice")
			if err != nil {
				t.Fatal(err)
			}
			// The pipelined rotation folds the share refresh and the
			// period rotation into one epoch bump.
			if epoch != epochBefore+1 {
				t.Fatalf("epoch after refresh = %d, want %d (single pipelined bump)",
					epoch, epochBefore+1)
			}
		}
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if got := s.Metrics().Snapshot().Refreshes; got != 1 {
		t.Fatalf("refreshes = %d, want 1", got)
	}
}

// TestServerGracefulShutdown stalls a window, queues requests behind
// it, starts Shutdown, and checks every queued request is answered —
// the drain guarantee — before the connections close.
func TestServerGracefulShutdown(t *testing.T) {
	pk, p1, p2 := testInstance(t)
	a, b := device.NewLocalPair()
	go func() { _ = p2.ServeLoop(b) }()
	gate := make(chan struct{})
	dev := &gatedChannel{Channel: a, gate: gate}

	s := server.New(server.Config{BatchSize: 2, Window: -1, QueueDepth: 8})
	if err := s.RegisterTenant("alice", p1, dev, a.Close); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()
	c := dialClient(t, ln.Addr().String())

	const n = 4
	msgs, cts := encryptN(t, pk, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := c.Decrypt("alice", cts[i])
			if err == nil && !got.Equal(msgs[i]) {
				err = fmt.Errorf("request %d decrypted wrong", i)
			}
			errs[i] = err
		}(i)
	}
	waitFor(t, func() bool {
		m := s.Metrics().Snapshot()
		return m.Requests == n
	}, "all requests accepted")

	shutdownDone := make(chan struct{})
	go func() { s.Shutdown(); close(shutdownDone) }()
	// Shutdown must be draining, not dropping: the stalled window holds
	// it open until the gate lifts.
	select {
	case <-shutdownDone:
		t.Fatal("Shutdown returned while a window was stalled with queued requests")
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	<-shutdownDone
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("queued request %d not answered across shutdown: %v", i, err)
		}
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	// The server is down; new sessions must be refused.
	if _, err := net.Dial("tcp", ln.Addr().String()); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
