package server

import (
	"crypto/rand"
	"time"

	"repro/internal/dlr"
)

// windowLoop is the single goroutine that owns a tenant's P1 and
// device channel. Requests are served in batch windows; control
// operations (share refresh) run strictly between windows, so a
// rotation can never interleave with a drain on the device channel and
// a window never mixes requests across a rotation boundary.
func (s *Server) windowLoop(t *tenant) {
	defer s.loopWG.Done()
	defer close(t.done)
	for {
		select {
		case c := <-t.ctl:
			c.done <- c.run()
		case req, ok := <-t.queue:
			if !ok {
				// Shutdown closed the queue after draining intake; all
				// buffered requests have been received and answered.
				return
			}
			s.serveWindow(t, req)
		}
	}
}

// serveWindow collects one adaptive batch window — it closes when
// either BatchSize requests have coalesced or Window has elapsed since
// the first request — and drains it through one RunDecBatch round
// trip. In Serial mode the window degenerates to the single triggering
// request served through the per-request protocol, the baseline E16
// measures the windows against.
func (s *Server) serveWindow(t *tenant, first *request) {
	if s.cfg.Serial {
		m, err := t.p1.RunDec(rand.Reader, t.dev, first.ct)
		s.metrics.recordWindow(1)
		first.respond(m, err)
		flushSessions([]*request{first})
		return
	}

	batch := append(make([]*request, 0, s.cfg.BatchSize), first)
	batch = s.collect(t, batch)

	cs := make([]*dlr.Ciphertext, len(batch))
	for i, req := range batch {
		cs[i] = req.ct
	}
	ms, err := t.p1.RunDecBatch(t.dev, cs)
	s.metrics.recordWindow(len(batch))
	if err != nil {
		// The whole round trip failed; every request in the window
		// learns why.
		for _, req := range batch {
			req.respond(nil, err)
		}
		flushSessions(batch)
		return
	}
	for i, req := range batch {
		req.respond(ms[i], nil)
	}
	flushSessions(batch)
}

// flushSessions flushes each distinct session in the drained window
// exactly once: respond only enqueued the frames, so this is where the
// window's responses hit the wire — one write syscall per connection
// rather than one per response. Windows are small (BatchSize ≤ a few
// dozen), so the quadratic dedup beats allocating a set.
func flushSessions(batch []*request) {
	for i, req := range batch {
		if req.sess == nil {
			continue
		}
		seen := false
		for _, prev := range batch[:i] {
			if prev.sess == req.sess {
				seen = true
				break
			}
		}
		if !seen {
			req.sess.flush()
		}
	}
}

// collect fills the window up to BatchSize, waiting at most Window for
// stragglers. A non-positive Window takes only what is already queued
// (eager drain). A closed queue closes the window early with whatever
// has coalesced.
func (s *Server) collect(t *tenant, batch []*request) []*request {
	if s.cfg.Window <= 0 {
		for len(batch) < s.cfg.BatchSize {
			select {
			case req, ok := <-t.queue:
				if !ok {
					return batch
				}
				batch = append(batch, req)
			default:
				return batch
			}
		}
		return batch
	}
	timer := time.NewTimer(s.cfg.Window)
	defer timer.Stop()
	for len(batch) < s.cfg.BatchSize {
		select {
		case req, ok := <-t.queue:
			if !ok {
				return batch
			}
			batch = append(batch, req)
		case <-timer.C:
			return batch
		}
	}
	return batch
}
