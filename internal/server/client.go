package server

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/bn254"
	"repro/internal/dlr"
	"repro/internal/wire"
)

// Client is one multiplexed session against a Server: any number of
// goroutines may issue Decrypt calls concurrently over the single
// connection; responses are routed back to their callers by request
// id, in whatever order the server's windows complete them.
type Client struct {
	conn net.Conn
	wmu  sync.Mutex // serializes frame writes

	mu sync.Mutex
	//dlr:guarded-by mu
	nextID uint64
	//dlr:guarded-by mu
	pending map[uint64]chan wire.MuxMsg
	//dlr:guarded-by mu
	readErr error
	//dlr:guarded-by mu
	closed bool

	// MaxBusyRetries bounds how often Decrypt retries after a
	// srv.busy rejection before giving up. Default 64.
	MaxBusyRetries int
}

// Dial connects a Client to a Server listening at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection. The Client owns the
// connection and closes it on Close.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:           conn,
		pending:        make(map[uint64]chan wire.MuxMsg),
		MaxBusyRetries: 64,
	}
	go c.readLoop()
	return c
}

// Close tears down the session. In-flight calls fail with the
// connection error.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}

// readLoop routes every incoming frame to the call waiting on its id.
func (c *Client) readLoop() {
	for {
		m, err := wire.ReadMux(c.conn)
		if err != nil {
			c.mu.Lock()
			if c.readErr == nil {
				c.readErr = err
			}
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[m.ID]
		if ok {
			delete(c.pending, m.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- m
		}
	}
}

// call sends one request frame and blocks for its response.
func (c *Client) call(kind string, payload []byte) (wire.MuxMsg, error) {
	ch := make(chan wire.MuxMsg, 1)
	c.mu.Lock()
	if c.readErr != nil || c.closed {
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = fmt.Errorf("server client: session closed")
		}
		return wire.MuxMsg{}, err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	// wmu serializes concurrent Decrypt callers' frames on the shared
	// conn; holding it across the write is its entire job.
	//dlrlint:ignore lock-discipline wmu serializes frame writes on the shared conn; holding it across the write is its purpose
	err := wire.WriteMux(c.conn, wire.MuxMsg{ID: id, Kind: kind, Payload: payload})
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return wire.MuxMsg{}, err
	}

	m, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = fmt.Errorf("server client: session closed")
		}
		return wire.MuxMsg{}, err
	}
	return m, nil
}

// Decrypt submits one ciphertext to the named tenant's batch window
// and returns the recovered GT session element. Backpressure (srv.busy)
// is retried after the server's suggested delay, up to MaxBusyRetries
// times. The hybrid Sealed payload never leaves the caller: open it
// locally with dlr.DecryptBytes.
func (c *Client) Decrypt(tenant string, ct *dlr.Ciphertext) (*bn254.GT, error) {
	var b wire.Builder
	b.AppendBytes([]byte(tenant))
	b.AppendRaw(ct.BytesCompressed())
	payload := b.Bytes()

	for attempt := 0; ; attempt++ {
		m, err := c.call(KindDec, payload)
		if err != nil {
			return nil, err
		}
		switch m.Kind {
		case KindDecResult:
			g := new(bn254.GT)
			if _, err := g.SetBytes(m.Payload); err != nil {
				return nil, fmt.Errorf("server client: bad session bytes: %w", err)
			}
			return g, nil
		case KindBusy:
			if attempt >= c.MaxBusyRetries {
				return nil, fmt.Errorf("server client: still busy after %d retries", attempt)
			}
			p := wire.NewParser(m.Payload)
			us, err := p.Uint32()
			if err != nil {
				return nil, fmt.Errorf("server client: bad busy frame: %w", err)
			}
			time.Sleep(time.Duration(us) * time.Microsecond)
		case KindErr:
			return nil, remoteErr(m.Payload)
		default:
			return nil, fmt.Errorf("server client: unexpected response kind %q", m.Kind)
		}
	}
}

// Refresh asks the server to rotate the named tenant's shares and
// returns the tenant's new rotation epoch.
func (c *Client) Refresh(tenant string) (uint64, error) {
	var b wire.Builder
	b.AppendBytes([]byte(tenant))
	m, err := c.call(KindRefresh, b.Bytes())
	if err != nil {
		return 0, err
	}
	switch m.Kind {
	case KindRefreshed:
		p := wire.NewParser(m.Payload)
		hi, err := p.Uint32()
		if err != nil {
			return 0, fmt.Errorf("server client: bad refresh reply: %w", err)
		}
		lo, err := p.Uint32()
		if err != nil {
			return 0, fmt.Errorf("server client: bad refresh reply: %w", err)
		}
		return uint64(hi)<<32 | uint64(lo), nil
	case KindErr:
		return 0, remoteErr(m.Payload)
	default:
		return 0, fmt.Errorf("server client: unexpected response kind %q", m.Kind)
	}
}

// remoteErr decodes a KindErr payload into an error.
func remoteErr(payload []byte) error {
	p := wire.NewParser(payload)
	msg, err := p.Bytes()
	if err != nil {
		return fmt.Errorf("server client: malformed error frame: %w", err)
	}
	return fmt.Errorf("server: %s", msg)
}
