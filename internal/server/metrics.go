package server

import (
	"expvar"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics aggregates the serving-path counters the operator guide
// (docs/PERFORMANCE.md, "Batch-window sizing") reads: how full windows
// close, how deep queues run, and what latency the windowing adds.
//
// Every Server owns a Metrics and mirrors into the package-global
// aggregate published under expvar ("dlrserver"), so a process serving
// through any number of Server instances exposes one coherent
// /debug/vars view without double registration.
type Metrics struct {
	requests  atomic.Uint64 // accepted into a window queue
	responses atomic.Uint64 // answered (success or per-request error)
	rejected  atomic.Uint64 // bounced with srv.busy (queue full)
	errors    atomic.Uint64 // responses that carried an error
	windows   atomic.Uint64 // batch windows drained
	refreshes atomic.Uint64 // tenant share refreshes completed

	occupancySum atomic.Uint64 // Σ batch sizes, for the mean

	mu        sync.Mutex
	batchHist map[int]uint64 // window size → count (exact sizes)
	latRing   []time.Duration
	latNext   int
	latCount  int

	mirror *Metrics // package aggregate; nil on the aggregate itself
}

// latRingSize bounds the latency reservoir the percentiles are computed
// over: the most recent 8192 responses.
const latRingSize = 8192

func newMetrics(mirror *Metrics) *Metrics {
	return &Metrics{
		batchHist: make(map[int]uint64),
		latRing:   make([]time.Duration, latRingSize),
		mirror:    mirror,
	}
}

// globalMetrics is the process-wide aggregate behind the expvar view.
var globalMetrics = newMetrics(nil)

func init() {
	expvar.Publish("dlrserver", expvar.Func(func() any {
		s := globalMetrics.Snapshot()
		return map[string]any{
			"requests":       s.Requests,
			"responses":      s.Responses,
			"rejected":       s.Rejected,
			"errors":         s.Errors,
			"windows":        s.Windows,
			"refreshes":      s.Refreshes,
			"mean_occupancy": s.MeanOccupancy,
			"batch_hist":     s.BatchHist,
			"latency_p50_us": s.P50.Microseconds(),
			"latency_p99_us": s.P99.Microseconds(),
		}
	}))
}

func (m *Metrics) recordRequest() {
	m.requests.Add(1)
	if m.mirror != nil {
		m.mirror.recordRequest()
	}
}

func (m *Metrics) recordRejected() {
	m.rejected.Add(1)
	if m.mirror != nil {
		m.mirror.recordRejected()
	}
}

func (m *Metrics) recordRefresh() {
	m.refreshes.Add(1)
	if m.mirror != nil {
		m.mirror.recordRefresh()
	}
}

// recordWindow notes one drained batch window of the given occupancy.
func (m *Metrics) recordWindow(size int) {
	m.windows.Add(1)
	m.occupancySum.Add(uint64(size))
	m.mu.Lock()
	m.batchHist[size]++
	m.mu.Unlock()
	if m.mirror != nil {
		m.mirror.recordWindow(size)
	}
}

// recordResponse notes one answered request and its queue-to-response
// latency.
func (m *Metrics) recordResponse(lat time.Duration, failed bool) {
	m.responses.Add(1)
	if failed {
		m.errors.Add(1)
	}
	m.mu.Lock()
	m.latRing[m.latNext] = lat
	m.latNext = (m.latNext + 1) % len(m.latRing)
	if m.latCount < len(m.latRing) {
		m.latCount++
	}
	m.mu.Unlock()
	if m.mirror != nil {
		m.mirror.recordResponse(lat, failed)
	}
}

// Snapshot is a point-in-time copy of the counters with derived
// percentiles.
type Snapshot struct {
	Requests, Responses, Rejected, Errors uint64
	Windows, Refreshes                    uint64
	// MeanOccupancy is the average number of requests per drained
	// window (0 when no window has drained).
	MeanOccupancy float64
	// BatchHist maps window occupancy to how many windows closed at it.
	BatchHist map[int]uint64
	// P50 and P99 are queue-to-response latency percentiles over the
	// most recent latRingSize responses.
	P50, P99 time.Duration
}

// Snapshot captures the current counters.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Requests:  m.requests.Load(),
		Responses: m.responses.Load(),
		Rejected:  m.rejected.Load(),
		Errors:    m.errors.Load(),
		Windows:   m.windows.Load(),
		Refreshes: m.refreshes.Load(),
		BatchHist: make(map[int]uint64),
	}
	if s.Windows > 0 {
		s.MeanOccupancy = float64(m.occupancySum.Load()) / float64(s.Windows)
	}
	m.mu.Lock()
	for k, v := range m.batchHist {
		s.BatchHist[k] = v
	}
	lats := make([]time.Duration, m.latCount)
	copy(lats, m.latRing[:m.latCount])
	m.mu.Unlock()
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		s.P50 = lats[len(lats)/2]
		s.P99 = lats[(len(lats)-1)*99/100]
	}
	return s
}
