package server

import (
	"expvar"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
)

// Metrics aggregates the serving-path counters the operator guide
// (docs/PERFORMANCE.md, "Batch-window sizing") reads: how full windows
// close, how deep queues run, and what latency the windowing adds.
//
// Every Server owns a Metrics and mirrors into the package-global
// aggregate published under expvar ("dlrserver"), so a process serving
// through any number of Server instances exposes one coherent
// /debug/vars view without double registration.
type Metrics struct {
	requests  atomic.Uint64 // accepted into a window queue
	responses atomic.Uint64 // answered (success or per-request error)
	rejected  atomic.Uint64 // bounced with srv.busy (queue full)
	errors    atomic.Uint64 // responses that carried an error
	windows   atomic.Uint64 // batch windows drained
	refreshes atomic.Uint64 // tenant share refreshes completed

	// Wire-path counters (docs/PERFORMANCE.md, "Payload sizing"): bytes
	// and frames crossing the client-facing connections in each
	// direction. framesOut counts logical response frames, not write
	// syscalls — a vectored window flush moves many frames in one write.
	bytesIn   atomic.Uint64
	bytesOut  atomic.Uint64
	framesIn  atomic.Uint64
	framesOut atomic.Uint64

	occupancySum atomic.Uint64 // Σ batch sizes, for the mean

	// Rotation gauges (docs/PERFORMANCE.md, "Rotation cadence sizing"):
	// stall is the window-loop pause a rotation caused — the commit
	// round trip on the pipelined path, the whole rotation on the cold
	// path — and rebuild is the table-build time the rotation spent
	// (off-loop when pipelined, inside the stall when cold).
	rotPrewarmed  atomic.Uint64 // pipelined rotations committed
	rotCold       atomic.Uint64 // cold (serialized) rotations
	rotStallLast  atomic.Int64  // ns; most recent rotation's stall
	rotStallSum   atomic.Int64  // ns; Σ stalls, for the mean
	rotRebuildSum atomic.Int64  // ns; Σ rebuild times, for the mean

	mu sync.Mutex
	//dlr:guarded-by mu
	batchHist map[int]uint64 // window size → count (exact sizes)
	//dlr:guarded-by mu
	latRing []time.Duration
	//dlr:guarded-by mu
	latNext int
	//dlr:guarded-by mu
	latCount int

	mirror *Metrics // package aggregate; nil on the aggregate itself
}

// latRingSize bounds the latency reservoir the percentiles are computed
// over: the most recent 8192 responses.
const latRingSize = 8192

func newMetrics(mirror *Metrics) *Metrics {
	return &Metrics{
		batchHist: make(map[int]uint64),
		latRing:   make([]time.Duration, latRingSize),
		mirror:    mirror,
	}
}

// globalMetrics is the process-wide aggregate behind the expvar view.
var globalMetrics = newMetrics(nil)

func init() {
	expvar.Publish("dlrserver", expvar.Func(func() any {
		s := globalMetrics.Snapshot()
		v := map[string]any{
			"requests":       s.Requests,
			"responses":      s.Responses,
			"rejected":       s.Rejected,
			"errors":         s.Errors,
			"windows":        s.Windows,
			"refreshes":      s.Refreshes,
			"bytes_in":       s.BytesIn,
			"bytes_out":      s.BytesOut,
			"frames_in":      s.FramesIn,
			"frames_out":     s.FramesOut,
			"mean_occupancy": s.MeanOccupancy,
			"batch_hist":     s.BatchHist,
			"latency_p50_us": s.P50.Microseconds(),
			"latency_p99_us": s.P99.Microseconds(),

			"rotations_prewarmed":      s.RotationsPrewarmed,
			"rotations_cold":           s.RotationsCold,
			"rotation_stall_last_us":   s.RotationStallLast.Microseconds(),
			"rotation_stall_mean_us":   s.RotationStallMean.Microseconds(),
			"rotation_rebuild_mean_us": s.RotationRebuildMean.Microseconds(),
		}
		cs, n := cacheSnapshot()
		v["cache_hits"] = cs.Hits
		v["cache_misses"] = cs.Misses
		v["cache_evictions"] = cs.Evictions
		v["cache_len"] = n
		if lookups := cs.Hits + cs.Misses; lookups > 0 {
			v["cache_hit_rate"] = float64(cs.Hits) / float64(lookups)
		} else {
			v["cache_hit_rate"] = 0.0
		}
		return v
	}))
}

// The table-cache registry: every Server-owned cache.Cache registers
// here so the expvar view aggregates hit/miss/eviction counters across
// all live servers in the process, mirroring how Metrics aggregates the
// serving-path counters.
var (
	cachesMu sync.Mutex
	caches   = make(map[*cache.Cache]struct{})
)

func registerCache(c *cache.Cache) {
	cachesMu.Lock()
	caches[c] = struct{}{}
	cachesMu.Unlock()
}

func unregisterCache(c *cache.Cache) {
	cachesMu.Lock()
	delete(caches, c)
	cachesMu.Unlock()
}

// cacheSnapshot sums Stats and Len over the registered caches.
func cacheSnapshot() (cache.Stats, int) {
	cachesMu.Lock()
	defer cachesMu.Unlock()
	var agg cache.Stats
	n := 0
	for c := range caches {
		st := c.Stats()
		agg.Hits += st.Hits
		agg.Misses += st.Misses
		agg.Evictions += st.Evictions
		n += c.Len()
	}
	return agg, n
}

// recordInbound notes frames received from clients and their on-wire
// size.
func (m *Metrics) recordInbound(frames, bytes int) {
	m.framesIn.Add(uint64(frames))
	m.bytesIn.Add(uint64(bytes))
	if m.mirror != nil {
		m.mirror.recordInbound(frames, bytes)
	}
}

// recordOutbound notes frames sent to clients and their on-wire size.
func (m *Metrics) recordOutbound(frames, bytes int) {
	m.framesOut.Add(uint64(frames))
	m.bytesOut.Add(uint64(bytes))
	if m.mirror != nil {
		m.mirror.recordOutbound(frames, bytes)
	}
}

func (m *Metrics) recordRequest() {
	m.requests.Add(1)
	if m.mirror != nil {
		m.mirror.recordRequest()
	}
}

func (m *Metrics) recordRejected() {
	m.rejected.Add(1)
	if m.mirror != nil {
		m.mirror.recordRejected()
	}
}

func (m *Metrics) recordRefresh() {
	m.refreshes.Add(1)
	if m.mirror != nil {
		m.mirror.recordRefresh()
	}
}

// recordRotation notes one completed rotation: how long it stalled the
// tenant's window loop, how long its table rebuild took, and whether
// it ran the pipelined (prewarmed) path.
func (m *Metrics) recordRotation(stall, rebuild time.Duration, prewarmed bool) {
	if prewarmed {
		m.rotPrewarmed.Add(1)
	} else {
		m.rotCold.Add(1)
	}
	m.rotStallLast.Store(int64(stall))
	m.rotStallSum.Add(int64(stall))
	m.rotRebuildSum.Add(int64(rebuild))
	if m.mirror != nil {
		m.mirror.recordRotation(stall, rebuild, prewarmed)
	}
}

// recordWindow notes one drained batch window of the given occupancy.
func (m *Metrics) recordWindow(size int) {
	m.windows.Add(1)
	m.occupancySum.Add(uint64(size))
	m.mu.Lock()
	m.batchHist[size]++
	m.mu.Unlock()
	if m.mirror != nil {
		m.mirror.recordWindow(size)
	}
}

// recordResponse notes one answered request and its queue-to-response
// latency.
func (m *Metrics) recordResponse(lat time.Duration, failed bool) {
	m.responses.Add(1)
	if failed {
		m.errors.Add(1)
	}
	m.mu.Lock()
	m.latRing[m.latNext] = lat
	m.latNext = (m.latNext + 1) % len(m.latRing)
	if m.latCount < len(m.latRing) {
		m.latCount++
	}
	m.mu.Unlock()
	if m.mirror != nil {
		m.mirror.recordResponse(lat, failed)
	}
}

// Snapshot is a point-in-time copy of the counters with derived
// percentiles.
type Snapshot struct {
	Requests, Responses, Rejected, Errors uint64
	Windows, Refreshes                    uint64
	// BytesIn/BytesOut and FramesIn/FramesOut count client-facing wire
	// traffic in each direction.
	BytesIn, BytesOut   uint64
	FramesIn, FramesOut uint64
	// MeanOccupancy is the average number of requests per drained
	// window (0 when no window has drained).
	MeanOccupancy float64
	// BatchHist maps window occupancy to how many windows closed at it.
	BatchHist map[int]uint64
	// P50 and P99 are queue-to-response latency percentiles over the
	// most recent latRingSize responses.
	P50, P99 time.Duration
	// RotationsPrewarmed and RotationsCold count completed rotations by
	// path; the stall and rebuild gauges aggregate over both.
	RotationsPrewarmed, RotationsCold uint64
	// RotationStallLast is the window-loop pause of the most recent
	// rotation; RotationStallMean and RotationRebuildMean average over
	// all rotations (0 when none have run).
	RotationStallLast   time.Duration
	RotationStallMean   time.Duration
	RotationRebuildMean time.Duration
}

// Snapshot captures the current counters.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Requests:  m.requests.Load(),
		Responses: m.responses.Load(),
		Rejected:  m.rejected.Load(),
		Errors:    m.errors.Load(),
		Windows:   m.windows.Load(),
		Refreshes: m.refreshes.Load(),
		BytesIn:   m.bytesIn.Load(),
		BytesOut:  m.bytesOut.Load(),
		FramesIn:  m.framesIn.Load(),
		FramesOut: m.framesOut.Load(),
		BatchHist: make(map[int]uint64),
	}
	if s.Windows > 0 {
		s.MeanOccupancy = float64(m.occupancySum.Load()) / float64(s.Windows)
	}
	s.RotationsPrewarmed = m.rotPrewarmed.Load()
	s.RotationsCold = m.rotCold.Load()
	s.RotationStallLast = time.Duration(m.rotStallLast.Load())
	if n := s.RotationsPrewarmed + s.RotationsCold; n > 0 {
		s.RotationStallMean = time.Duration(m.rotStallSum.Load() / int64(n))
		s.RotationRebuildMean = time.Duration(m.rotRebuildSum.Load() / int64(n))
	}
	m.mu.Lock()
	for k, v := range m.batchHist {
		s.BatchHist[k] = v
	}
	lats := make([]time.Duration, m.latCount)
	copy(lats, m.latRing[:m.latCount])
	m.mu.Unlock()
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		s.P50 = lats[len(lats)/2]
		s.P99 = lats[(len(lats)-1)*99/100]
	}
	return s
}
