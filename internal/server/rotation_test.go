package server_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
)

// TestRotationStorm hammers one tenant with back-to-back pipelined
// rotations while sustained decrypt load flows through the server
// path, and pins the two storm invariants: no accepted request is
// lost or misanswered (the ledger balances with zero errors), and no
// response is computed against a stale epoch's tables — every
// plaintext must be correct even when its window raced a commit.
func TestRotationStorm(t *testing.T) {
	pk, p1, p2 := testInstance(t)
	s := server.New(server.Config{BatchSize: 4, Window: time.Millisecond, CacheCap: 16})
	if err := s.RegisterLocal("alice", p1, p2); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, s)

	const clients = 3
	const perClient = 6
	msgs, cts := encryptN(t, pk, clients*perClient)

	// The storm: rotate continuously until the load goroutines finish.
	var stop atomic.Bool
	var rotations atomic.Uint64
	var stormWG sync.WaitGroup
	stormWG.Add(1)
	go func() {
		defer stormWG.Done()
		for !stop.Load() {
			if err := s.RefreshTenant("alice"); err != nil {
				t.Errorf("storm rotation: %v", err)
				return
			}
			rotations.Add(1)
		}
	}()

	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			c := dialClient(t, addr)
			for k := 0; k < perClient; k++ {
				i := cl*perClient + k
				got, err := c.Decrypt("alice", cts[i])
				if err != nil {
					t.Errorf("client %d request %d: %v", cl, k, err)
					return
				}
				if !got.Equal(msgs[i]) {
					t.Errorf("client %d request %d: wrong plaintext under rotation storm — a stale epoch's tables answered", cl, k)
				}
			}
		}(cl)
	}
	wg.Wait()
	stop.Store(true)
	stormWG.Wait()

	if rotations.Load() == 0 {
		t.Fatal("storm completed zero rotations — the test raced nothing")
	}
	m := s.Metrics().Snapshot()
	if m.Responses != m.Requests {
		t.Fatalf("ledger: %d requests accepted but %d answered — a request was lost in the storm",
			m.Requests, m.Responses)
	}
	if m.Requests != clients*perClient {
		t.Fatalf("requests = %d, want %d", m.Requests, clients*perClient)
	}
	if m.Errors != 0 {
		t.Fatalf("errors = %d, want 0", m.Errors)
	}
	if m.Refreshes != rotations.Load() {
		t.Fatalf("metrics counted %d refreshes, storm ran %d", m.Refreshes, rotations.Load())
	}
	if m.RotationsPrewarmed != rotations.Load() || m.RotationsCold != 0 {
		t.Fatalf("rotation path counters (%d prewarmed, %d cold), want (%d, 0)",
			m.RotationsPrewarmed, m.RotationsCold, rotations.Load())
	}
}

// TestRotationScheduler runs the RefreshEvery scheduler at an
// aggressive cadence under decrypt load and checks rotations happen on
// their own, serving stays correct throughout, and Shutdown stops the
// scheduler cleanly (no rotation lands on a drained window loop).
func TestRotationScheduler(t *testing.T) {
	pk, p1, p2 := testInstance(t)
	s := server.New(server.Config{
		BatchSize:    4,
		Window:       time.Millisecond,
		CacheCap:     16,
		RefreshEvery: 5 * time.Millisecond,
	})
	if err := s.RegisterLocal("alice", p1, p2); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, s)
	c := dialClient(t, addr)

	epochBefore, _ := s.TenantEpoch("alice")
	const n = 10
	msgs, cts := encryptN(t, pk, n)
	for i := 0; i < n; i++ {
		got, err := c.Decrypt("alice", cts[i])
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if !got.Equal(msgs[i]) {
			t.Fatalf("request %d: wrong plaintext under scheduled rotation", i)
		}
		time.Sleep(2 * time.Millisecond)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if epoch, _ := s.TenantEpoch("alice"); epoch > epochBefore {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("scheduler rotated nothing within the deadline")
		}
		time.Sleep(time.Millisecond)
	}
	// Shutdown (in the startServer cleanup) must stop the scheduler
	// without racing the drained loops; reaching cleanup IS the check.
}
