package ff

import (
	"math/big"
	"testing"
)

// fpFromBytes derives a reduced field element from arbitrary fuzz
// bytes (interpreted big-endian, reduced mod p).
func fpFromBytes(b []byte) *Fp {
	v := new(big.Int).SetBytes(b)
	v.Mod(v, p)
	return NewFp(v)
}

// fp2FromBytes splits b into two halves and derives one coefficient
// from each.
func fp2FromBytes(b []byte) *Fp2 {
	h := len(b) / 2
	return &Fp2{C0: *fpFromBytes(b[:h]), C1: *fpFromBytes(b[h:])}
}

// maybeUnreduce adds q to every coefficient sel has a bit set for,
// producing the ≥p, <2p representations the lazy paths must accept.
func maybeUnreduce(x *Fp2, sel byte) *Fp2 {
	z := new(Fp2).Set(x)
	cs := []*Fp{&z.C0, &z.C1}
	for i, c := range cs {
		if sel&(1<<i) != 0 {
			var t [4]uint64
			t = c.v
			addNoRed4(&t, &t, &q)
			c.v = t
		}
	}
	return z
}

// FuzzFp2Mul differentially tests the lazy-reduction Fp2 multiplication
// (and squaring) against the fully reducing generic twin, including on
// unreduced (<2p) operand representations.
func FuzzFp2Mul(f *testing.F) {
	pm1 := new(big.Int).Sub(p, bigOne).Bytes()
	f.Add(make([]byte, 128), byte(0))
	f.Add(append(append([]byte{}, pm1...), pm1...), byte(3))
	f.Add([]byte{1, 2, 3}, byte(1))
	f.Fuzz(func(t *testing.T, data []byte, sel byte) {
		if len(data) < 2 {
			return
		}
		// The generic twin requires canonical (<p) limbs, so it runs on
		// the reduced representatives while the lazy path additionally
		// sees the unreduced (<2p) representations of the same values.
		h := len(data) / 2
		xr, yr := fp2FromBytes(data[:h]), fp2FromBytes(data[h:])
		x := maybeUnreduce(xr, sel)
		y := maybeUnreduce(yr, sel>>2)
		var lazy, gen Fp2
		fp2MulLazy(&lazy, x, y)
		fp2MulGeneric(&gen, xr, yr)
		if !lazy.Equal(&gen) {
			t.Fatalf("fp2MulLazy diverged: x=%v y=%v lazy=%v gen=%v", xr, yr, lazy, gen)
		}
		fp2SquareLazy(&lazy, x)
		fp2SquareGeneric(&gen, xr)
		if !lazy.Equal(&gen) {
			t.Fatalf("fp2SquareLazy diverged: x=%v lazy=%v gen=%v", xr, lazy, gen)
		}
	})
}

// FuzzFp6Mul differentially tests the lazy-fed Fp6 multiplication
// (unreduced Karatsuba operand sums feeding the lazy Fp2 core) against
// the fully reducing schoolbook twin.
func FuzzFp6Mul(f *testing.F) {
	pm1 := new(big.Int).Sub(p, bigOne).Bytes()
	f.Add(make([]byte, 384))
	var edge []byte
	for i := 0; i < 12; i++ {
		edge = append(edge, pm1...)
	}
	f.Add(edge)
	f.Add([]byte{7})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 6 {
			return
		}
		sixth := len(data) / 6
		var x, y Fp6
		for i, c := range []*Fp2{&x.C0, &x.C1, &x.C2, &y.C0, &y.C1, &y.C2} {
			c.Set(fp2FromBytes(data[i*sixth : (i+1)*sixth]))
		}
		var lazy, gen Fp6
		lazy.Mul(&x, &y)
		fp6MulGeneric(&gen, &x, &y)
		if !lazy.Equal(&gen) {
			t.Fatalf("Fp6.Mul diverged from generic twin: x=%v y=%v", x, y)
		}
	})
}
