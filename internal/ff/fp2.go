package ff

import (
	"fmt"
	"io"
	"math/big"
)

// Fp2 is an element c0 + c1·i of Fp[i]/(i²+1). The zero value is the zero
// element.
type Fp2 struct {
	C0, C1 Fp
}

// xi is the Fp6/Fp2 tower constant ξ = 9 + i.
var xi = &Fp2{C0: *FpFromInt64(9), C1: *FpFromInt64(1)}

// Xi returns a copy of the tower constant ξ = 9+i.
func Xi() *Fp2 { return new(Fp2).Set(xi) }

// RandFp2 returns a uniformly random element.
func RandFp2(rng io.Reader) (*Fp2, error) {
	c0, err := RandFp(rng)
	if err != nil {
		return nil, err
	}
	c1, err := RandFp(rng)
	if err != nil {
		return nil, err
	}
	return &Fp2{C0: *c0, C1: *c1}, nil
}

// Set sets z = x and returns z.
func (z *Fp2) Set(x *Fp2) *Fp2 {
	z.C0.Set(&x.C0)
	z.C1.Set(&x.C1)
	return z
}

// SetZero sets z = 0 and returns z.
func (z *Fp2) SetZero() *Fp2 {
	z.C0.SetZero()
	z.C1.SetZero()
	return z
}

// SetOne sets z = 1 and returns z.
func (z *Fp2) SetOne() *Fp2 {
	z.C0.SetOne()
	z.C1.SetZero()
	return z
}

// SetFp sets z to the base-field element x embedded in Fp2.
func (z *Fp2) SetFp(x *Fp) *Fp2 {
	z.C0.Set(x)
	z.C1.SetZero()
	return z
}

// IsZero reports whether z == 0.
func (z *Fp2) IsZero() bool { return z.C0.IsZero() && z.C1.IsZero() }

// IsOne reports whether z == 1.
func (z *Fp2) IsOne() bool { return z.C0.IsOne() && z.C1.IsZero() }

// Equal reports whether z == x.
func (z *Fp2) Equal(x *Fp2) bool { return z.C0.Equal(&x.C0) && z.C1.Equal(&x.C1) }

// Add sets z = x + y and returns z.
func (z *Fp2) Add(x, y *Fp2) *Fp2 {
	z.C0.Add(&x.C0, &y.C0)
	z.C1.Add(&x.C1, &y.C1)
	return z
}

// Sub sets z = x − y and returns z.
func (z *Fp2) Sub(x, y *Fp2) *Fp2 {
	z.C0.Sub(&x.C0, &y.C0)
	z.C1.Sub(&x.C1, &y.C1)
	return z
}

// Neg sets z = −x and returns z.
func (z *Fp2) Neg(x *Fp2) *Fp2 {
	z.C0.Neg(&x.C0)
	z.C1.Neg(&x.C1)
	return z
}

// Double sets z = 2x and returns z.
func (z *Fp2) Double(x *Fp2) *Fp2 { return z.Add(x, x) }

// Mul sets z = x·y and returns z.
//
// Uses the lazy-reduction Karatsuba schedule from lazy.go: three
// double-width limb products combined unreduced and two Montgomery
// reductions, instead of the four interleaved multiply-reduce rounds of
// the schoolbook formula (kept as fp2MulGeneric, the differential twin).
// Operand coefficients may be one unreduced addition deep (< 2p); the
// result is always fully reduced.
//
//dlr:noalloc
func (z *Fp2) Mul(x, y *Fp2) *Fp2 {
	fp2MulLazy(z, x, y)
	return z
}

// Square sets z = x² and returns z using complex squaring
// ((a+bi)² = (a+b)(a−b) + 2ab·i) on double-width products: two wide
// multiplications and two Montgomery reductions (lazy.go), with
// fp2SquareGeneric retained as the differential twin.
func (z *Fp2) Square(x *Fp2) *Fp2 {
	fp2SquareLazy(z, x)
	return z
}

// MulFp sets z = x scaled by the base-field element c and returns z.
func (z *Fp2) MulFp(x *Fp2, c *Fp) *Fp2 {
	z.C0.Mul(&x.C0, c)
	z.C1.Mul(&x.C1, c)
	return z
}

// MulXi sets z = ξ·x with ξ = 9+i and returns z. Since
// (9+i)(a+bi) = (9a−b) + (a+9b)i this needs only limb additions, no
// full multiplications.
func (z *Fp2) MulXi(x *Fp2) *Fp2 {
	var a9, b9, r0, r1 Fp
	a9.MulInt64(&x.C0, 9)
	b9.MulInt64(&x.C1, 9)
	r0.Sub(&a9, &x.C1)
	r1.Add(&x.C0, &b9)
	z.C0.Set(&r0)
	z.C1.Set(&r1)
	return z
}

// Conjugate sets z = c0 − c1·i and returns z. This is the Frobenius map
// on Fp2 (since p ≡ 3 mod 4 implies i^p = −i).
func (z *Fp2) Conjugate(x *Fp2) *Fp2 {
	z.C0.Set(&x.C0)
	z.C1.Neg(&x.C1)
	return z
}

// Inverse sets z = x⁻¹ and returns z. Inverting zero yields zero.
//
//dlr:noalloc
func (z *Fp2) Inverse(x *Fp2) *Fp2 {
	// 1/(a+bi) = (a−bi)/(a²+b²).
	var norm, t Fp
	norm.Square(&x.C0)
	t.Square(&x.C1)
	norm.Add(&norm, &t)
	norm.Inverse(&norm)
	var r0, r1 Fp
	r0.Mul(&x.C0, &norm)
	r1.Neg(&x.C1)
	r1.Mul(&r1, &norm)
	z.C0.Set(&r0)
	z.C1.Set(&r1)
	return z
}

// Exp sets z = x^e and returns z. Negative exponents invert.
// Non-negative exponents of at most 256 bits take the allocation-free
// limb window.
func (z *Fp2) Exp(x *Fp2, e *big.Int) *Fp2 {
	if l, ok := limbsFromBig(e); ok {
		return z.expLimbs(x, &l)
	}
	var base Fp2
	base.Set(x)
	exp := e
	if e.Sign() < 0 {
		base.Inverse(&base)
		exp = new(big.Int).Neg(e)
	}
	var acc Fp2
	acc.SetOne()
	for i := exp.BitLen() - 1; i >= 0; i-- {
		acc.Square(&acc)
		if exp.Bit(i) == 1 {
			acc.Mul(&acc, &base)
		}
	}
	return z.Set(&acc)
}

// Sqrt sets z to a square root of x if one exists and reports whether it
// does. Implements the complex-method square root valid for p ≡ 3 (mod 4).
func (z *Fp2) Sqrt(x *Fp2) (*Fp2, bool) {
	if x.IsZero() {
		z.SetZero()
		return z, true
	}
	// a1 = x^((p−3)/4); α = a1²·x; x0 = a1·x.
	var a1, alpha, x0 Fp2
	a1.expLimbs(x, &fp2SqrtALimbs)
	alpha.Square(&a1)
	alpha.Mul(&alpha, x)
	x0.Mul(&a1, x)

	var minusOne Fp2
	minusOne.SetOne()
	minusOne.Neg(&minusOne)

	var cand Fp2
	if alpha.Equal(&minusOne) {
		// z = i·x0.
		cand.C0.Neg(&x0.C1)
		cand.C1.Set(&x0.C0)
	} else {
		// b = (1+α)^((p−1)/2); z = b·x0.
		var b Fp2
		b.SetOne()
		b.Add(&b, &alpha)
		b.expLimbs(&b, &pHalfLimbs)
		cand.Mul(&b, &x0)
	}
	var check Fp2
	check.Square(&cand)
	if !check.Equal(x) {
		return z, false
	}
	z.Set(&cand)
	return z, true
}

// Bytes returns the canonical 64-byte encoding (C0 ‖ C1, big-endian).
func (z *Fp2) Bytes() []byte {
	out := make([]byte, 0, Fp2Bytes)
	out = append(out, z.C0.Bytes()...)
	out = append(out, z.C1.Bytes()...)
	return out
}

// SetBytes decodes the canonical 64-byte encoding.
func (z *Fp2) SetBytes(b []byte) (*Fp2, error) {
	if len(b) != Fp2Bytes {
		return nil, fmt.Errorf("ff: Fp2 encoding must be %d bytes, got %d", Fp2Bytes, len(b))
	}
	if _, err := z.C0.SetBytes(b[:FpBytes]); err != nil {
		return nil, err
	}
	if _, err := z.C1.SetBytes(b[FpBytes:]); err != nil {
		return nil, err
	}
	return z, nil
}

// String implements fmt.Stringer.
func (z *Fp2) String() string {
	return fmt.Sprintf("(%s + %s·i)", z.C0.String(), z.C1.String())
}
