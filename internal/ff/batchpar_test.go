package ff

import (
	"crypto/rand"
	"runtime"
	"testing"
)

// randFpSliceWithZeros returns n random Fp values with a few zeros
// sprinkled in (the batch-inversion contract maps zeros to zeros).
func randFpSliceWithZeros(t *testing.T, n int) []Fp {
	t.Helper()
	xs := make([]Fp, n)
	for i := range xs {
		if i%97 == 13 {
			continue // leave a zero
		}
		x, err := RandFp(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		xs[i] = *x
	}
	return xs
}

// TestBatchInverseFpParMatchesSerial pins the chunk-parallel path to
// the serial one at a size that actually splits (GOMAXPROCS is raised
// above the host's core count so the parallel branch runs even on a
// single-CPU box).
func TestBatchInverseFpParMatchesSerial(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	const n = 4 * batchInvParMinChunk
	xs := randFpSliceWithZeros(t, n)
	want := BatchInverseFp(xs)
	got := make([]Fp, n)
	BatchInverseFpPar(got, xs, make([]Fp, n))
	for i := range want {
		if !want[i].Equal(&got[i]) {
			t.Fatalf("index %d: parallel and serial batch inversion disagree", i)
		}
	}
}

func TestBatchInverseFp2ParMatchesSerial(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	const n = 3*batchInvParMinChunk + 17
	xs := make([]Fp2, n)
	for i := range xs {
		if i%53 == 5 {
			continue
		}
		x, err := RandFp2(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		xs[i] = *x
	}
	want := BatchInverseFp2(xs)
	got := make([]Fp2, n)
	BatchInverseFp2Par(got, xs, make([]Fp2, n))
	for i := range want {
		if !want[i].Equal(&got[i]) {
			t.Fatalf("index %d: parallel and serial Fp2 batch inversion disagree", i)
		}
	}
}

// TestBatchInverseParSmallStaysSerial proves the dispatcher keeps
// small inputs on the allocation-free serial path: below two chunks
// the call must not allocate (beyond nothing — it reuses the caller's
// slices), matching the //dlr:noalloc contract of the Into forms.
func TestBatchInverseParSmallStaysSerial(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	const n = batchInvParMinChunk // < 2·minChunk → serial
	xs := randFpSliceWithZeros(t, n)
	out := make([]Fp, n)
	prefix := make([]Fp, n)
	if a := testing.AllocsPerRun(10, func() { BatchInverseFpPar(out, xs, prefix) }); a != 0 {
		t.Fatalf("BatchInverseFpPar(%d) allocates %v/op on the serial path, want 0", n, a)
	}
}
