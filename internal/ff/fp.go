package ff

import (
	"fmt"
	"io"
	"math/big"
	"math/bits"
)

// Fp is an element of the prime base field GF(p), stored as four 64-bit
// little-endian limbs in Montgomery form (v = a·2²⁵⁶ mod p). The zero
// value is the field's zero element and is ready to use.
type Fp struct {
	v [4]uint64
}

// Montgomery backend constants, all derived from p at start-up.
var (
	// q holds the little-endian limbs of the modulus p.
	q = toLimbs(p)
	// qInvNeg = −p⁻¹ mod 2⁶⁴.
	qInvNeg = func() uint64 {
		two64 := new(big.Int).Lsh(bigOne, 64)
		inv := new(big.Int).ModInverse(p, two64)
		inv.Neg(inv)
		inv.Mod(inv, two64)
		return inv.Uint64()
	}()
	// rSquare = 2⁵¹² mod p in limbs (converts into Montgomery form).
	rSquare = toLimbs(new(big.Int).Mod(new(big.Int).Lsh(bigOne, 512), p))
	// montOne = 2²⁵⁶ mod p in limbs (the Montgomery form of 1).
	montOne = toLimbs(new(big.Int).Mod(new(big.Int).Lsh(bigOne, 256), p))
)

var bigOne = big.NewInt(1)

func toLimbs(x *big.Int) [4]uint64 {
	var out [4]uint64
	b := make([]byte, 32)
	x.FillBytes(b)
	for i := 0; i < 4; i++ {
		for j := 0; j < 8; j++ {
			out[i] |= uint64(b[31-8*i-j]) << (8 * j)
		}
	}
	return out
}

func fromLimbs(l [4]uint64) *big.Int {
	b := make([]byte, 32)
	for i := 0; i < 4; i++ {
		for j := 0; j < 8; j++ {
			b[31-8*i-j] = byte(l[i] >> (8 * j))
		}
	}
	return new(big.Int).SetBytes(b)
}

// geqQ reports whether the raw limb value t ≥ p.
func geqQ(t *[4]uint64) bool {
	for i := 3; i >= 0; i-- {
		if t[i] > q[i] {
			return true
		}
		if t[i] < q[i] {
			return false
		}
	}
	return true
}

// subQ sets t = t − p (caller guarantees t ≥ p).
func subQ(t *[4]uint64) {
	var b uint64
	t[0], b = bits.Sub64(t[0], q[0], 0)
	t[1], b = bits.Sub64(t[1], q[1], b)
	t[2], b = bits.Sub64(t[2], q[2], b)
	t[3], _ = bits.Sub64(t[3], q[3], b)
}

// reduceOnce sets t = t − p if carry != 0 or t ≥ p, branchlessly: the
// trial subtraction always runs and a mask selects the result. The
// data-dependent compare loop this replaces mispredicts roughly half
// the time on random field elements, which made plain Add a hot spot in
// the Miller-loop profile.
func reduceOnce(t *[4]uint64, carry uint64) {
	var u [4]uint64
	var b uint64
	u[0], b = bits.Sub64(t[0], q[0], 0)
	u[1], b = bits.Sub64(t[1], q[1], b)
	u[2], b = bits.Sub64(t[2], q[2], b)
	u[3], b = bits.Sub64(t[3], q[3], b)
	// Keep t only when the addition did not overflow (carry == 0) AND
	// the trial subtraction borrowed (t < p).
	m := -(carry | (b ^ 1)) // all-ones when u is the reduced value
	t[0] = (u[0] & m) | (t[0] &^ m)
	t[1] = (u[1] & m) | (t[1] &^ m)
	t[2] = (u[2] & m) | (t[2] &^ m)
	t[3] = (u[3] & m) | (t[3] &^ m)
}

// The no-carry Montgomery multiplication below requires the modulus'
// top limb to leave headroom so the per-round accumulator never
// overflows four limbs; a 254-bit p satisfies this with room to spare.
var _ = func() bool {
	if q[3] >= 1<<62 {
		panic("ff: montMul requires a modulus with top limb < 2^62")
	}
	return true
}()

// madd0 returns the high word of a·b + c.
func madd0(a, b, c uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, carry := bits.Add64(lo, c, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	return hi
}

// madd1 returns a·b + c as (hi, lo).
func madd1(a, b, c uint64) (uint64, uint64) {
	hi, lo := bits.Mul64(a, b)
	lo, carry := bits.Add64(lo, c, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	return hi, lo
}

// madd2 returns a·b + c + d as (hi, lo).
func madd2(a, b, c, d uint64) (uint64, uint64) {
	hi, lo := bits.Mul64(a, b)
	c, carry := bits.Add64(c, d, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	lo, carry = bits.Add64(lo, c, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	return hi, lo
}

// madd3 returns a·b + c + d as (hi, lo) with e folded into hi.
func madd3(a, b, c, d, e uint64) (uint64, uint64) {
	hi, lo := bits.Mul64(a, b)
	c, carry := bits.Add64(c, d, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	lo, carry = bits.Add64(lo, c, 0)
	hi, _ = bits.Add64(hi, e, carry)
	return hi, lo
}

// montMul sets z = x·y·2⁻²⁵⁶ mod p, using the unrolled "no-carry" CIOS
// variant: because p's top limb is below 2⁶², each interleaved
// multiply-reduce round fits in four limbs with no 65th-bit
// bookkeeping. Differentially tested against montMulGeneric.
func montMul(z, x, y *[4]uint64) {
	var t [4]uint64
	var c0, c1, c2, m uint64

	// Round 0: t = (x[0]·y + m·q) / 2⁶⁴.
	v := x[0]
	c1, c0 = bits.Mul64(v, y[0])
	m = c0 * qInvNeg
	c2 = madd0(m, q[0], c0)
	c1, c0 = madd1(v, y[1], c1)
	c2, t[0] = madd2(m, q[1], c2, c0)
	c1, c0 = madd1(v, y[2], c1)
	c2, t[1] = madd2(m, q[2], c2, c0)
	c1, c0 = madd1(v, y[3], c1)
	t[3], t[2] = madd3(m, q[3], c0, c2, c1)

	// Rounds 1–3: t = (t + x[i]·y + m·q) / 2⁶⁴.
	for _, v := range [3]uint64{x[1], x[2], x[3]} {
		c1, c0 = madd1(v, y[0], t[0])
		m = c0 * qInvNeg
		c2 = madd0(m, q[0], c0)
		c1, c0 = madd2(v, y[1], c1, t[1])
		c2, t[0] = madd2(m, q[1], c2, c0)
		c1, c0 = madd2(v, y[2], c1, t[2])
		c2, t[1] = madd2(m, q[2], c2, c0)
		c1, c0 = madd2(v, y[3], c1, t[3])
		t[3], t[2] = madd3(m, q[3], c0, c2, c1)
	}

	reduceOnce(&t, 0)
	*z = t
}

// montMulGeneric is the original CIOS Montgomery multiplication with
// explicit 65th-bit tracking, valid for any 256-bit modulus. Retained
// as the differential twin for montMul.
func montMulGeneric(z, x, y *[4]uint64) {
	var t [5]uint64
	var tExtra uint64 // 65th bit of the running accumulator

	for i := 0; i < 4; i++ {
		// t += x[i]·y
		var c uint64
		for j := 0; j < 4; j++ {
			hi, lo := bits.Mul64(x[i], y[j])
			var carry uint64
			lo, carry = bits.Add64(lo, t[j], 0)
			hi += carry
			lo, carry = bits.Add64(lo, c, 0)
			hi += carry
			t[j] = lo
			c = hi
		}
		var carry uint64
		t[4], carry = bits.Add64(t[4], c, 0)
		tExtra = carry

		// m = t[0]·(−p⁻¹) mod 2⁶⁴; t = (t + m·p)/2⁶⁴.
		m := t[0] * qInvNeg
		hi, lo := bits.Mul64(m, q[0])
		_, carry = bits.Add64(lo, t[0], 0)
		c = hi + carry
		for j := 1; j < 4; j++ {
			hi, lo := bits.Mul64(m, q[j])
			var cr uint64
			lo, cr = bits.Add64(lo, t[j], 0)
			hi += cr
			lo, cr = bits.Add64(lo, c, 0)
			hi += cr
			t[j-1] = lo
			c = hi
		}
		t[3], carry = bits.Add64(t[4], c, 0)
		t[4] = tExtra + carry
	}

	var res [4]uint64
	copy(res[:], t[:4])
	if t[4] != 0 || geqQ(&res) {
		subQ(&res)
	}
	*z = res
}

// NewFp returns x mod p as a field element.
func NewFp(x *big.Int) *Fp {
	var z Fp
	z.SetBig(x)
	return &z
}

// FpFromInt64 returns the field element for the given small integer.
func FpFromInt64(x int64) *Fp { return NewFp(big.NewInt(x)) }

// RandFp returns a uniformly random field element read from rng
// (crypto/rand if rng is nil).
func RandFp(rng io.Reader) (*Fp, error) {
	v, err := randInt(rng, p)
	if err != nil {
		return nil, err
	}
	return NewFp(v), nil
}

// Set sets z = x and returns z.
func (z *Fp) Set(x *Fp) *Fp {
	z.v = x.v
	return z
}

// SetZero sets z = 0 and returns z.
func (z *Fp) SetZero() *Fp {
	z.v = [4]uint64{}
	return z
}

// SetOne sets z = 1 and returns z.
func (z *Fp) SetOne() *Fp {
	z.v = montOne
	return z
}

// SetBig sets z = x mod p and returns z.
func (z *Fp) SetBig(x *big.Int) *Fp {
	red := new(big.Int).Mod(x, p)
	raw := toLimbs(red)
	montMul(&z.v, &raw, &rSquare)
	return z
}

// Big returns a copy of z as a big.Int in [0, p).
func (z *Fp) Big() *big.Int {
	one := [4]uint64{1}
	var std [4]uint64
	montMul(&std, &z.v, &one)
	return fromLimbs(std)
}

// IsOdd reports whether the canonical (non-Montgomery) representative
// of z in [0, p) is odd — the y-coordinate parity bit the compressed
// point encodings (bn254.BytesCompressed) serialize. Allocation-free:
// the conversion out of Montgomery form is a single montMul by the
// limb vector 1.
func (z *Fp) IsOdd() bool {
	one := [4]uint64{1}
	var std [4]uint64
	montMul(&std, &z.v, &one)
	return std[0]&1 == 1
}

// IsZero reports whether z == 0.
func (z *Fp) IsZero() bool { return z.v == [4]uint64{} }

// IsOne reports whether z == 1.
func (z *Fp) IsOne() bool { return z.v == montOne }

// Equal reports whether z == x.
func (z *Fp) Equal(x *Fp) bool { return z.v == x.v }

// Add sets z = x + y and returns z.
func (z *Fp) Add(x, y *Fp) *Fp {
	var t [4]uint64
	var c uint64
	t[0], c = bits.Add64(x.v[0], y.v[0], 0)
	t[1], c = bits.Add64(x.v[1], y.v[1], c)
	t[2], c = bits.Add64(x.v[2], y.v[2], c)
	t[3], c = bits.Add64(x.v[3], y.v[3], c)
	reduceOnce(&t, c)
	z.v = t
	return z
}

// Sub sets z = x − y and returns z.
func (z *Fp) Sub(x, y *Fp) *Fp {
	var t [4]uint64
	var b uint64
	t[0], b = bits.Sub64(x.v[0], y.v[0], 0)
	t[1], b = bits.Sub64(x.v[1], y.v[1], b)
	t[2], b = bits.Sub64(x.v[2], y.v[2], b)
	t[3], b = bits.Sub64(x.v[3], y.v[3], b)
	// Branchless add-back of p, masked to a no-op when there was no
	// borrow (same rationale as reduceOnce).
	m := -b
	var c uint64
	t[0], c = bits.Add64(t[0], q[0]&m, 0)
	t[1], c = bits.Add64(t[1], q[1]&m, c)
	t[2], c = bits.Add64(t[2], q[2]&m, c)
	t[3], _ = bits.Add64(t[3], q[3]&m, c)
	z.v = t
	return z
}

// Neg sets z = −x and returns z.
func (z *Fp) Neg(x *Fp) *Fp {
	if x.IsZero() {
		return z.SetZero()
	}
	var t [4]uint64
	var b uint64
	t[0], b = bits.Sub64(q[0], x.v[0], 0)
	t[1], b = bits.Sub64(q[1], x.v[1], b)
	t[2], b = bits.Sub64(q[2], x.v[2], b)
	t[3], _ = bits.Sub64(q[3], x.v[3], b)
	z.v = t
	return z
}

// Mul sets z = x·y and returns z.
//
//dlr:noalloc
func (z *Fp) Mul(x, y *Fp) *Fp {
	montMul(&z.v, &x.v, &y.v)
	return z
}

// Square sets z = x² and returns z.
func (z *Fp) Square(x *Fp) *Fp { return z.Mul(x, x) }

// Double sets z = 2x and returns z.
func (z *Fp) Double(x *Fp) *Fp { return z.Add(x, x) }

// MulInt64 sets z = c·x for a small non-negative constant c and returns
// z, using only limb additions.
func (z *Fp) MulInt64(x *Fp, c int64) *Fp {
	if c < 0 {
		var nx Fp
		nx.Neg(x)
		return z.MulInt64(&nx, -c)
	}
	var acc Fp
	var base Fp
	base.Set(x)
	for c > 0 {
		if c&1 == 1 {
			acc.Add(&acc, &base)
		}
		c >>= 1
		if c > 0 {
			base.Double(&base)
		}
	}
	return z.Set(&acc)
}

// Inverse sets z = x⁻¹ and returns z. Inverting zero yields zero.
//
// The inverse is the Fermat power x^(p−2), evaluated with a fixed
// 4-bit-window limb exponentiation: the sequence of Montgomery
// operations depends only on the public constant p−2, never on the
// value of x, so a secret-derived input does not modulate the run time
// — unlike the variable-time big.Int.ModInverse this replaced (binary
// extended GCD, whose iteration count tracks the input). The zero
// short-circuit is the one input-dependent branch left; inverting zero
// is a degenerate, public event (point at infinity, malformed input).
// It also performs no heap allocation.
//
// This is the default inverse — anything touching secret-derived
// elements must use it. Hot paths whose operands are public (the
// Miller loop's sequential line denominators) use the ~6× faster
// InverseVartime instead.
//
//dlr:noalloc
func (z *Fp) Inverse(x *Fp) *Fp {
	if x.IsZero() {
		return z.SetZero()
	}
	return z.expLimbs(x, &pMinus2Limbs)
}

// Exp sets z = x^e (e interpreted as an arbitrary-precision integer;
// negative exponents invert) and returns z. Non-negative exponents of
// at most 256 bits take the allocation-free limb window; anything else
// falls back to the big.Int bit loop.
func (z *Fp) Exp(x *Fp, e *big.Int) *Fp {
	if l, ok := limbsFromBig(e); ok {
		return z.expLimbs(x, &l)
	}
	var base Fp
	base.Set(x)
	exp := e
	if e.Sign() < 0 {
		base.Inverse(&base)
		exp = new(big.Int).Neg(e)
	}
	var acc Fp
	acc.SetOne()
	for i := exp.BitLen() - 1; i >= 0; i-- {
		acc.Square(&acc)
		if exp.Bit(i) == 1 {
			acc.Mul(&acc, &base)
		}
	}
	return z.Set(&acc)
}

// Sqrt sets z to a square root of x if one exists and reports whether it
// does. Uses the p ≡ 3 (mod 4) shortcut z = x^((p+1)/4).
//
//dlr:noalloc
func (z *Fp) Sqrt(x *Fp) (*Fp, bool) {
	var cand Fp
	cand.expLimbs(x, &sqrtExpLimbs)
	var check Fp
	check.Square(&cand)
	if !check.Equal(x) {
		return z, false
	}
	z.Set(&cand)
	return z, true
}

// Bytes returns the canonical 32-byte big-endian encoding of z.
func (z *Fp) Bytes() []byte {
	out := make([]byte, FpBytes)
	z.Big().FillBytes(out)
	return out
}

// SetBytes decodes a canonical 32-byte big-endian encoding. It rejects
// values ≥ p.
func (z *Fp) SetBytes(b []byte) (*Fp, error) {
	if len(b) != FpBytes {
		return nil, fmt.Errorf("ff: Fp encoding must be %d bytes, got %d", FpBytes, len(b))
	}
	var v big.Int
	v.SetBytes(b)
	if v.Cmp(p) >= 0 {
		return nil, fmt.Errorf("ff: Fp encoding is not reduced")
	}
	return z.SetBig(&v), nil
}

// String implements fmt.Stringer.
func (z *Fp) String() string { return z.Big().String() }
