package ff

import (
	"crypto/rand"
	"math/big"
	"testing"
)

// TestFpInverseMatchesModInverse pins the Fermat addition-chain
// inversion to the big.Int extended-GCD result it replaced.
func TestFpInverseMatchesModInverse(t *testing.T) {
	check := func(x *Fp) {
		var got Fp
		got.Inverse(x)
		if x.IsZero() {
			if !got.IsZero() {
				t.Fatal("Inverse(0) != 0")
			}
			return
		}
		want := new(big.Int).ModInverse(x.Big(), p)
		if got.Big().Cmp(want) != 0 {
			t.Fatalf("Inverse diverged from ModInverse for x=%v", x)
		}
		var prod Fp
		prod.Mul(&got, x)
		if !prod.IsOne() {
			t.Fatalf("x·x⁻¹ != 1 for x=%v", x)
		}
	}
	check(new(Fp).SetZero())
	check(new(Fp).SetOne())
	check(NewFp(new(big.Int).Sub(p, bigOne)))
	check(FpFromInt64(2))
	for i := 0; i < 200; i++ {
		x, err := RandFp(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		check(x)
	}
}

// TestExpLimbFastPath compares the limb-window exponentiation against a
// plain big.Int square-and-multiply loop for Fp, Fp2 and Fp12.
func TestExpLimbFastPath(t *testing.T) {
	exps := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(2),
		big.NewInt(16),
		new(big.Int).Sub(p, bigOne),
		new(big.Int).Sub(p, big.NewInt(2)),
		new(big.Int).Sub(new(big.Int).Lsh(bigOne, 256), bigOne),
	}
	for i := 0; i < 20; i++ {
		e, err := randInt(rand.Reader, p)
		if err != nil {
			t.Fatal(err)
		}
		exps = append(exps, e)
	}
	naiveFp := func(x *Fp, e *big.Int) *Fp {
		acc := new(Fp).SetOne()
		for i := e.BitLen() - 1; i >= 0; i-- {
			acc.Square(acc)
			if e.Bit(i) == 1 {
				acc.Mul(acc, x)
			}
		}
		return acc
	}
	x, err := RandFp(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := RandFp2(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	x12, err := RandFp12(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range exps {
		var got Fp
		got.Exp(x, e)
		if want := naiveFp(x, e); !got.Equal(want) {
			t.Fatalf("Fp.Exp limb path diverged for e=%v", e)
		}
		// Fp2/Fp12: the limb path must agree with itself under e and
		// e + (multiplicative order), and with repeated squaring.
		var g2, w2 Fp2
		g2.Exp(x2, e)
		w2.SetOne()
		for i := e.BitLen() - 1; i >= 0; i-- {
			w2.Square(&w2)
			if e.Bit(i) == 1 {
				w2.Mul(&w2, x2)
			}
		}
		if !g2.Equal(&w2) {
			t.Fatalf("Fp2.Exp limb path diverged for e=%v", e)
		}
		var g12, w12 Fp12
		g12.Exp(x12, e)
		w12.SetOne()
		for i := e.BitLen() - 1; i >= 0; i-- {
			w12.Square(&w12)
			if e.Bit(i) == 1 {
				w12.Mul(&w12, x12)
			}
		}
		if !g12.Equal(&w12) {
			t.Fatalf("Fp12.Exp limb path diverged for e=%v", e)
		}
	}
}

// TestAppendWNAFMatchesWNAF pins the limb recoder to the big.Int
// recoder digit-for-digit across all widths.
func TestAppendWNAFMatchesWNAF(t *testing.T) {
	vals := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(255),
		new(big.Int).Sub(r, bigOne),
		new(big.Int).Sub(new(big.Int).Lsh(bigOne, 256), big.NewInt(9)),
	}
	for i := 0; i < 50; i++ {
		e, err := randInt(rand.Reader, r)
		if err != nil {
			t.Fatal(err)
		}
		vals = append(vals, e)
	}
	for _, e := range vals {
		limbs, ok := limbsFromBig(e)
		if !ok {
			t.Fatalf("limbsFromBig rejected %v", e)
		}
		for w := uint(2); w <= 8; w++ {
			want := WNAF(e, w)
			var buf [WNAFMaxDigits]int8
			got := AppendWNAF(buf[:0], limbs, w)
			if len(got) != len(want) {
				t.Fatalf("w=%d e=%v: digit count %d != %d", w, e, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("w=%d e=%v: digit %d: %d != %d", w, e, i, got[i], want[i])
				}
			}
		}
	}
}

// TestExpCyclotomicLimbsMatchesExp checks the limb cyclotomic power
// against the generic exponentiation on subgroup elements.
func TestExpCyclotomicLimbsMatchesExp(t *testing.T) {
	for i := 0; i < 10; i++ {
		u := cyclotomicElement(t)
		e, err := randInt(rand.Reader, r)
		if err != nil {
			t.Fatal(err)
		}
		limbs, _ := limbsFromBig(e)
		var fast, gen Fp12
		fast.ExpCyclotomicLimbs(u, &limbs)
		gen.Exp(u, e)
		if !fast.Equal(&gen) {
			t.Fatalf("ExpCyclotomicLimbs != Exp for e=%v", e)
		}
	}
}

// TestReduceScalar covers the limb fast path and the big.Int fallbacks
// (negative and >256-bit inputs).
func TestReduceScalar(t *testing.T) {
	vals := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		new(big.Int).Sub(r, bigOne),
		new(big.Int).Set(r),
		new(big.Int).Add(r, bigOne),
		new(big.Int).Sub(new(big.Int).Lsh(bigOne, 256), bigOne),
		big.NewInt(-7),
		new(big.Int).Neg(r),
		new(big.Int).Lsh(bigOne, 300),
	}
	for i := 0; i < 50; i++ {
		e, err := randInt(rand.Reader, new(big.Int).Lsh(bigOne, 256))
		if err != nil {
			t.Fatal(err)
		}
		vals = append(vals, e)
	}
	for _, k := range vals {
		got := fromLimbs(ReduceScalar(k))
		want := new(big.Int).Mod(k, r)
		if got.Cmp(want) != 0 {
			t.Fatalf("ReduceScalar(%v) = %v, want %v", k, got, want)
		}
	}
}

// TestBatchInverseInto covers the scratch-reusing form, including
// in-place (out aliasing xs) operation and embedded zeros.
func TestBatchInverseInto(t *testing.T) {
	xs := make([]Fp, 9)
	for i := range xs {
		if i == 4 {
			continue // leave a zero in the middle
		}
		x, err := RandFp(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		xs[i].Set(x)
	}
	want := BatchInverseFp(xs)
	out := make([]Fp, len(xs))
	prefix := make([]Fp, len(xs))
	BatchInverseFpInto(out, xs, prefix)
	for i := range xs {
		if !out[i].Equal(&want[i]) {
			t.Fatalf("BatchInverseFpInto[%d] diverged", i)
		}
	}
	// In-place: out aliases xs.
	inPlace := make([]Fp, len(xs))
	copy(inPlace, xs)
	BatchInverseFpInto(inPlace, inPlace, prefix)
	for i := range xs {
		if !inPlace[i].Equal(&want[i]) {
			t.Fatalf("in-place BatchInverseFpInto[%d] diverged", i)
		}
	}

	xs2 := make([]Fp2, 7)
	for i := range xs2 {
		if i == 2 {
			continue
		}
		x, err := RandFp2(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		xs2[i].Set(x)
	}
	want2 := BatchInverseFp2(xs2)
	out2 := make([]Fp2, len(xs2))
	prefix2 := make([]Fp2, len(xs2))
	BatchInverseFp2Into(out2, xs2, prefix2)
	for i := range xs2 {
		if !out2[i].Equal(&want2[i]) {
			t.Fatalf("BatchInverseFp2Into[%d] diverged", i)
		}
	}
}

// FuzzFpInverse differentially tests the Fermat addition-chain
// inversion against big.Int.ModInverse on arbitrary field elements.
func FuzzFpInverse(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add(new(big.Int).Sub(p, bigOne).Bytes())
	f.Add(new(big.Int).Add(p, bigOne).Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		x := fpFromBytes(data)
		var got Fp
		got.Inverse(x)
		if x.IsZero() {
			if !got.IsZero() {
				t.Fatal("Inverse(0) != 0")
			}
			return
		}
		want := new(big.Int).ModInverse(x.Big(), p)
		if got.Big().Cmp(want) != 0 {
			t.Fatalf("Fermat inverse diverged from ModInverse: x=%v got=%v want=%v", x, &got, want)
		}
		var vt Fp
		vt.InverseVartime(x)
		if !vt.Equal(&got) {
			t.Fatalf("InverseVartime diverged from Inverse: x=%v got=%v want=%v", x, &vt, &got)
		}
		var prod Fp
		prod.Mul(&got, x)
		if !prod.IsOne() {
			t.Fatalf("x·x⁻¹ != 1: x=%v", x)
		}
	})
}
