package ff

import (
	"crypto/rand"
	"math/big"
	"testing"
)

func randFp2T(t *testing.T) *Fp2 {
	t.Helper()
	x, err := RandFp2(rand.Reader)
	if err != nil {
		t.Fatalf("RandFp2: %v", err)
	}
	return x
}

func randFp6T(t *testing.T) *Fp6 {
	t.Helper()
	x, err := RandFp6(rand.Reader)
	if err != nil {
		t.Fatalf("RandFp6: %v", err)
	}
	return x
}

func randFp12T(t *testing.T) *Fp12 {
	t.Helper()
	x, err := RandFp12(rand.Reader)
	if err != nil {
		t.Fatalf("RandFp12: %v", err)
	}
	return x
}

func TestFp2FieldLaws(t *testing.T) {
	for i := 0; i < 30; i++ {
		a, b, c := randFp2T(t), randFp2T(t), randFp2T(t)
		var x, y Fp2
		x.Mul(a, b)
		x.Mul(&x, c)
		y.Mul(b, c)
		y.Mul(a, &y)
		if !x.Equal(&y) {
			t.Fatal("Fp2 multiplication not associative")
		}
		x.Add(a, b)
		x.Mul(&x, c)
		var t1, t2 Fp2
		t1.Mul(a, c)
		t2.Mul(b, c)
		y.Add(&t1, &t2)
		if !x.Equal(&y) {
			t.Fatal("Fp2 not distributive")
		}
		if !a.IsZero() {
			var inv Fp2
			inv.Inverse(a)
			inv.Mul(&inv, a)
			if !inv.IsOne() {
				t.Fatal("Fp2 inverse broken")
			}
		}
	}
}

func TestFp2ISquaredIsMinusOne(t *testing.T) {
	i := &Fp2{C0: *FpFromInt64(0), C1: *FpFromInt64(1)}
	var sq Fp2
	sq.Square(i)
	var minusOne Fp2
	minusOne.SetOne()
	minusOne.Neg(&minusOne)
	if !sq.Equal(&minusOne) {
		t.Fatal("i² ≠ −1")
	}
}

func TestFp2ConjugateIsFrobenius(t *testing.T) {
	a := randFp2T(t)
	var conj, pow Fp2
	conj.Conjugate(a)
	pow.Exp(a, Modulus())
	if !conj.Equal(&pow) {
		t.Fatal("conjugate ≠ a^p on Fp2")
	}
}

func TestFp2Sqrt(t *testing.T) {
	for i := 0; i < 20; i++ {
		a := randFp2T(t)
		var sq, root, back Fp2
		sq.Square(a)
		if _, ok := root.Sqrt(&sq); !ok {
			t.Fatal("square reported as non-residue in Fp2")
		}
		back.Square(&root)
		if !back.Equal(&sq) {
			t.Fatal("Fp2 sqrt round-trip failed")
		}
	}
}

func TestFp2MulXi(t *testing.T) {
	a := randFp2T(t)
	var viaMul, viaXi Fp2
	viaMul.Mul(a, Xi())
	viaXi.MulXi(a)
	if !viaMul.Equal(&viaXi) {
		t.Fatal("MulXi disagrees with Mul by ξ")
	}
}

func TestFp6FieldLaws(t *testing.T) {
	for i := 0; i < 15; i++ {
		a, b, c := randFp6T(t), randFp6T(t), randFp6T(t)
		var x, y Fp6
		x.Mul(a, b)
		x.Mul(&x, c)
		y.Mul(b, c)
		y.Mul(a, &y)
		if !x.Equal(&y) {
			t.Fatal("Fp6 multiplication not associative")
		}
		if !a.IsZero() {
			var inv Fp6
			inv.Inverse(a)
			inv.Mul(&inv, a)
			if !inv.IsOne() {
				t.Fatal("Fp6 inverse broken")
			}
		}
	}
}

func TestFp6VCubedIsXi(t *testing.T) {
	var v Fp6
	v.C1.SetOne() // v
	var v3 Fp6
	v3.Mul(&v, &v)
	v3.Mul(&v3, &v)
	var want Fp6
	want.SetFp2(Xi())
	if !v3.Equal(&want) {
		t.Fatal("v³ ≠ ξ")
	}
	// MulByV agrees with multiplication by v.
	a := randFp6T(t)
	var byV, byMul Fp6
	byV.MulByV(a)
	byMul.Mul(a, &v)
	if !byV.Equal(&byMul) {
		t.Fatal("MulByV disagrees with Mul by v")
	}
}

func TestFp12FieldLaws(t *testing.T) {
	for i := 0; i < 10; i++ {
		a, b, c := randFp12T(t), randFp12T(t), randFp12T(t)
		var x, y Fp12
		x.Mul(a, b)
		x.Mul(&x, c)
		y.Mul(b, c)
		y.Mul(a, &y)
		if !x.Equal(&y) {
			t.Fatal("Fp12 multiplication not associative")
		}
		if !a.IsZero() {
			var inv Fp12
			inv.Inverse(a)
			inv.Mul(&inv, a)
			if !inv.IsOne() {
				t.Fatal("Fp12 inverse broken")
			}
		}
	}
}

func TestFp12WSquaredIsV(t *testing.T) {
	var w Fp12
	w.C1.SetOne() // w
	var w2 Fp12
	w2.Square(&w)
	var v Fp12
	v.C0.C1.SetOne() // v embedded in Fp12
	if !w2.Equal(&v) {
		t.Fatal("w² ≠ v")
	}
	// w⁶ = ξ.
	var w6 Fp12
	w6.Square(&w2)   // w⁴
	w6.Mul(&w6, &w2) // w⁶
	var xiEmb Fp12
	xiEmb.C0.SetFp2(Xi())
	if !w6.Equal(&xiEmb) {
		t.Fatal("w⁶ ≠ ξ")
	}
}

func TestFp12FrobeniusMatchesExp(t *testing.T) {
	a := randFp12T(t)
	var frob, pow Fp12
	frob.Frobenius(a)
	pow.Exp(a, Modulus())
	if !frob.Equal(&pow) {
		t.Fatal("Frobenius(a) ≠ a^p")
	}
	var frob2, pow2 Fp12
	frob2.FrobeniusP2(a)
	p2 := new(big.Int).Mul(Modulus(), Modulus())
	pow2.Exp(a, p2)
	if !frob2.Equal(&pow2) {
		t.Fatal("FrobeniusP2(a) ≠ a^(p²)")
	}
}

func TestFp12FrobeniusOrder(t *testing.T) {
	a := randFp12T(t)
	cur := new(Fp12).Set(a)
	for i := 0; i < 12; i++ {
		cur.Frobenius(cur)
	}
	if !cur.Equal(a) {
		t.Fatal("Frobenius does not have order 12")
	}
}

func TestFp12ExpLaws(t *testing.T) {
	a := randFp12T(t)
	e1, _ := rand.Int(rand.Reader, Order())
	e2, _ := rand.Int(rand.Reader, Order())
	var x, y, lhs, rhs Fp12
	x.Exp(a, e1)
	y.Exp(a, e2)
	lhs.Mul(&x, &y)
	rhs.Exp(a, new(big.Int).Add(e1, e2))
	if !lhs.Equal(&rhs) {
		t.Fatal("a^e1 · a^e2 ≠ a^(e1+e2)")
	}
}

func TestTowerBytesRoundTrip(t *testing.T) {
	a2 := randFp2T(t)
	var b2 Fp2
	if _, err := b2.SetBytes(a2.Bytes()); err != nil || !b2.Equal(a2) {
		t.Fatalf("Fp2 round trip failed: %v", err)
	}
	a6 := randFp6T(t)
	var b6 Fp6
	if _, err := b6.SetBytes(a6.Bytes()); err != nil || !b6.Equal(a6) {
		t.Fatalf("Fp6 round trip failed: %v", err)
	}
	a12 := randFp12T(t)
	var b12 Fp12
	if _, err := b12.SetBytes(a12.Bytes()); err != nil || !b12.Equal(a12) {
		t.Fatalf("Fp12 round trip failed: %v", err)
	}
}
