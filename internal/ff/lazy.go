package ff

// Lazy-reduction tower arithmetic.
//
// The schoolbook Fp2 product performs four interleaved Montgomery
// multiplications (montMul), each of which pays a full reduction. The
// lazy schedule in this file instead computes plain double-width
// 256×256→512-bit limb products (mulWide), adds and subtracts them while
// still unreduced, and pays one Montgomery reduction (montRed512) per
// *output* coefficient: a full Fp2 mul is three wide products plus two
// reductions.
//
// Correctness rests on a headroom bound, asserted at init below next to
// the no-carry CIOS precondition in fp.go:
//
//   p < 2^254  (equivalently q[3] < 2^62), which guarantees
//     - sums of up to four unreduced residues (< 4p) fit in four limbs,
//       so Karatsuba operand sums need no conditional subtraction;
//     - every wide product of ≤2p-bounded operands (< 16p²) fits in
//       eight limbs, so wide accumulators never overflow 512 bits.
//
// Subtractions of wide values are made non-negative by adding the
// 512-bit constant 4p² (a multiple of p, so the residue is unchanged)
// before subtracting; 4p² dominates any single wide product of reduced
// operands and keeps the total below 8p² < 2^511.
//
// All entry points accept coefficients up to 2p — one unreduced addition
// deep — and always produce fully reduced (< p) outputs. Fp6.Mul
// exploits this by feeding its Karatsuba operand sums to the lazy Fp2
// mul without reducing them first. Two levels of unreduced sums (< 4p
// operands) would push products to 64p² > 2^512, so Fp12.Mul and
// Fp6.Square keep their reducing adds.
//
// The schoolbook paths are retained as differential twins
// (fp2MulGeneric, fp2SquareGeneric, fp6MulGeneric) and pinned to the
// lazy paths by tests and the FuzzFp2Mul/FuzzFp6Mul fuzz targets.

import (
	"math/big"
	"math/bits"
)

// Headroom assertion for the lazy-reduction schedule (see the package
// comment above): p < 2^254 so 16p² < 2^512 and 4p < 2^256.
var _ = func() bool {
	if q[3] >= 1<<62 {
		panic("ff: lazy reduction requires a modulus below 2^254")
	}
	bound := new(big.Int).Lsh(bigOne, 512)
	worst := new(big.Int).Mul(p, p)
	worst.Lsh(worst, 4) // 16p², the largest wide product: (4p)·(4p)
	if worst.Cmp(bound) >= 0 {
		panic("ff: lazy reduction headroom violated: 16p² ≥ 2^512")
	}
	return true
}()

// pSq4Wide is 4p² as a little-endian 512-bit limb vector: the offset
// added before wide subtractions to keep accumulators non-negative
// without changing the residue class.
var pSq4Wide = func() [8]uint64 {
	v := new(big.Int).Mul(p, p)
	v.Lsh(v, 2)
	var out [8]uint64
	b := make([]byte, 64)
	v.FillBytes(b)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			out[i] |= uint64(b[63-8*i-j]) << (8 * j)
		}
	}
	return out
}()

// twoP4 is 2p as four limbs (2p < 2^255 by the headroom bound): the
// offset used to keep four-limb differences of ≤2p operands non-negative.
var twoP4 = toLimbs(new(big.Int).Lsh(p, 1))

// addNoRed4 sets z = x + y without reducing. The caller guarantees
// x + y < 2^256 (true whenever both operands are < 2p).
func addNoRed4(z, x, y *[4]uint64) {
	var c uint64
	z[0], c = bits.Add64(x[0], y[0], 0)
	z[1], c = bits.Add64(x[1], y[1], c)
	z[2], c = bits.Add64(x[2], y[2], c)
	z[3], _ = bits.Add64(x[3], y[3], c)
}

// subNoRed4 sets z = x − y + 2p without reducing. For operands < 2p the
// result is in (0, 4p) and the wraparound of the borrow against the
// offset cancels exactly, so the four-limb value is the true integer.
func subNoRed4(z, x, y *[4]uint64) {
	var b uint64
	z[0], b = bits.Sub64(x[0], y[0], 0)
	z[1], b = bits.Sub64(x[1], y[1], b)
	z[2], b = bits.Sub64(x[2], y[2], b)
	z[3], _ = bits.Sub64(x[3], y[3], b)
	var c uint64
	z[0], c = bits.Add64(z[0], twoP4[0], 0)
	z[1], c = bits.Add64(z[1], twoP4[1], c)
	z[2], c = bits.Add64(z[2], twoP4[2], c)
	z[3], _ = bits.Add64(z[3], twoP4[3], c)
}

// mulWide sets z = x·y as a full 512-bit product with no reduction,
// unrolled schoolbook over the madd helpers from fp.go.
func mulWide(z *[8]uint64, x, y *[4]uint64) {
	var t [8]uint64
	var c uint64

	v := x[0]
	c, t[0] = bits.Mul64(v, y[0])
	c, t[1] = madd1(v, y[1], c)
	c, t[2] = madd1(v, y[2], c)
	t[4], t[3] = madd1(v, y[3], c)

	v = x[1]
	c, t[1] = madd1(v, y[0], t[1])
	c, t[2] = madd2(v, y[1], t[2], c)
	c, t[3] = madd2(v, y[2], t[3], c)
	t[5], t[4] = madd2(v, y[3], t[4], c)

	v = x[2]
	c, t[2] = madd1(v, y[0], t[2])
	c, t[3] = madd2(v, y[1], t[3], c)
	c, t[4] = madd2(v, y[2], t[4], c)
	t[6], t[5] = madd2(v, y[3], t[5], c)

	v = x[3]
	c, t[3] = madd1(v, y[0], t[3])
	c, t[4] = madd2(v, y[1], t[4], c)
	c, t[5] = madd2(v, y[2], t[5], c)
	t[7], t[6] = madd2(v, y[3], t[6], c)

	*z = t
}

// addWide sets z = z + x. The caller guarantees no 512-bit overflow
// (all call sites stay below 8p² < 2^511).
func addWide(z, x *[8]uint64) {
	var c uint64
	z[0], c = bits.Add64(z[0], x[0], 0)
	z[1], c = bits.Add64(z[1], x[1], c)
	z[2], c = bits.Add64(z[2], x[2], c)
	z[3], c = bits.Add64(z[3], x[3], c)
	z[4], c = bits.Add64(z[4], x[4], c)
	z[5], c = bits.Add64(z[5], x[5], c)
	z[6], c = bits.Add64(z[6], x[6], c)
	z[7], _ = bits.Add64(z[7], x[7], c)
}

// subWide sets z = z − x. The caller guarantees z ≥ x (arranged by the
// 4p² offset or by algebra, e.g. (a0+a1)(b0+b1) ≥ a0b0 + a1b1).
func subWide(z, x *[8]uint64) {
	var b uint64
	z[0], b = bits.Sub64(z[0], x[0], 0)
	z[1], b = bits.Sub64(z[1], x[1], b)
	z[2], b = bits.Sub64(z[2], x[2], b)
	z[3], b = bits.Sub64(z[3], x[3], b)
	z[4], b = bits.Sub64(z[4], x[4], b)
	z[5], b = bits.Sub64(z[5], x[5], b)
	z[6], b = bits.Sub64(z[6], x[6], b)
	z[7], _ = bits.Sub64(z[7], x[7], b)
}

// montRed512 sets z = t·2⁻²⁵⁶ mod p, fully reduced, for any 512-bit t.
// This is the second half of Montgomery multiplication run on an
// already-accumulated double-width value: four rounds of m = t[i]·(−p⁻¹)
// followed by t += m·p·2^(64i) zero the low limbs, and the high half is
// the result up to a few subtractions of p ((t + Σmp)/2²⁵⁶ < 2²⁵⁶ + p,
// so the tail loop runs at most a handful of times). Clobbers t.
func montRed512(z *[4]uint64, t *[8]uint64) {
	var extra uint64 // 2^512 limb of the running accumulator
	for i := 0; i < 4; i++ {
		m := t[i] * qInvNeg
		c := madd0(m, q[0], t[i])
		c, t[i+1] = madd2(m, q[1], t[i+1], c)
		c, t[i+2] = madd2(m, q[2], t[i+2], c)
		c, t[i+3] = madd2(m, q[3], t[i+3], c)
		var cr uint64
		t[i+4], cr = bits.Add64(t[i+4], c, 0)
		for k := i + 5; k < 8 && cr != 0; k++ {
			t[k], cr = bits.Add64(t[k], 0, cr)
		}
		extra += cr
	}
	r := [4]uint64{t[4], t[5], t[6], t[7]}
	for extra != 0 || geqQ(&r) {
		var b uint64
		r[0], b = bits.Sub64(r[0], q[0], 0)
		r[1], b = bits.Sub64(r[1], q[1], b)
		r[2], b = bits.Sub64(r[2], q[2], b)
		r[3], b = bits.Sub64(r[3], q[3], b)
		extra -= b
	}
	*z = r
}

// fp2MulLazy sets z = x·y by lazy-reduction Karatsuba: three wide
// products, unreduced combination, and one Montgomery reduction per
// output coefficient. Operand coefficients may be up to 2p; outputs are
// fully reduced. Alias-safe.
func fp2MulLazy(z, x, y *Fp2) {
	var t0, t1, t2 [8]uint64
	mulWide(&t0, &x.C0.v, &y.C0.v)
	mulWide(&t1, &x.C1.v, &y.C1.v)
	var sa, sb [4]uint64
	addNoRed4(&sa, &x.C0.v, &x.C1.v)
	addNoRed4(&sb, &y.C0.v, &y.C1.v)
	mulWide(&t2, &sa, &sb)
	// c1 = (a0+a1)(b0+b1) − a0b0 − a1b1, non-negative by algebra.
	subWide(&t2, &t0)
	subWide(&t2, &t1)
	// c0 = a0b0 − a1b1, offset by 4p² ≡ 0 (mod p) to stay non-negative.
	addWide(&t0, &pSq4Wide)
	subWide(&t0, &t1)
	montRed512(&z.C0.v, &t0)
	montRed512(&z.C1.v, &t2)
}

// fp2SquareLazy sets z = x² by complex squaring on wide products:
// c0 = (a0+a1)(a0−a1), c1 = 2·a0a1, two wide products and two
// reductions. Operand coefficients may be up to 2p. Alias-safe.
func fp2SquareLazy(z, x *Fp2) {
	var sum, diff [4]uint64
	addNoRed4(&sum, &x.C0.v, &x.C1.v)
	subNoRed4(&diff, &x.C0.v, &x.C1.v)
	var t0, t1 [8]uint64
	mulWide(&t0, &sum, &diff)
	mulWide(&t1, &x.C0.v, &x.C1.v)
	addWide(&t1, &t1)
	montRed512(&z.C0.v, &t0)
	montRed512(&z.C1.v, &t1)
}

// fp2AddNoRed sets z = x + y coefficient-wise without the trailing
// conditional subtraction. For reduced operands the result coefficients
// are < 2p — exactly the bound the lazy mul and square accept. Only for
// feeding fp2MulLazy/fp2SquareLazy; the result is NOT a valid Fp2 for
// any other use (Equal/IsZero assume canonical limbs).
func fp2AddNoRed(z, x, y *Fp2) {
	addNoRed4(&z.C0.v, &x.C0.v, &y.C0.v)
	addNoRed4(&z.C1.v, &x.C1.v, &y.C1.v)
}

// fp2MulGeneric is the schoolbook Fp2 product over four interleaved
// Montgomery multiplications. Retained as the differential twin for
// fp2MulLazy (tests and FuzzFp2Mul pin them together).
func fp2MulGeneric(z, x, y *Fp2) {
	var t0, t1, r0, r1 Fp
	montMul(&t0.v, &x.C0.v, &y.C0.v)
	montMul(&t1.v, &x.C1.v, &y.C1.v)
	r0.Sub(&t0, &t1)
	var u0, u1 Fp
	montMul(&u0.v, &x.C0.v, &y.C1.v)
	montMul(&u1.v, &x.C1.v, &y.C0.v)
	r1.Add(&u0, &u1)
	z.C0.Set(&r0)
	z.C1.Set(&r1)
}

// fp2SquareGeneric is complex squaring over interleaved Montgomery
// multiplications: the differential twin for fp2SquareLazy.
func fp2SquareGeneric(z, x *Fp2) {
	var sum, diff, prod Fp
	sum.Add(&x.C0, &x.C1)
	diff.Sub(&x.C0, &x.C1)
	montMul(&prod.v, &x.C0.v, &x.C1.v)
	var c0 Fp
	montMul(&c0.v, &sum.v, &diff.v)
	z.C0.Set(&c0)
	z.C1.Double(&prod)
}

// fp6MulGeneric is the pre-lazy Fp6 product: reducing Karatsuba operand
// sums and schoolbook Fp2 multiplications all the way down. Retained as
// the differential twin for the lazy Fp6.Mul (FuzzFp6Mul pins them).
func fp6MulGeneric(z, x, y *Fp6) {
	var t0, t1, t2 Fp2
	fp2MulGeneric(&t0, &x.C0, &y.C0)
	fp2MulGeneric(&t1, &x.C1, &y.C1)
	fp2MulGeneric(&t2, &x.C2, &y.C2)

	var r0, s, u Fp2
	s.Add(&x.C1, &x.C2)
	u.Add(&y.C1, &y.C2)
	fp2MulGeneric(&r0, &s, &u)
	r0.Sub(&r0, &t1)
	r0.Sub(&r0, &t2)
	r0.MulXi(&r0)
	r0.Add(&r0, &t0)

	var r1 Fp2
	s.Add(&x.C0, &x.C1)
	u.Add(&y.C0, &y.C1)
	fp2MulGeneric(&r1, &s, &u)
	r1.Sub(&r1, &t0)
	r1.Sub(&r1, &t1)
	var xit2 Fp2
	xit2.MulXi(&t2)
	r1.Add(&r1, &xit2)

	var r2 Fp2
	s.Add(&x.C0, &x.C2)
	u.Add(&y.C0, &y.C2)
	fp2MulGeneric(&r2, &s, &u)
	r2.Sub(&r2, &t0)
	r2.Sub(&r2, &t2)
	r2.Add(&r2, &t1)

	z.C0.Set(&r0)
	z.C1.Set(&r1)
	z.C2.Set(&r2)
}

// Fp2MulGeneric sets z = x·y through the fully reducing Karatsuba twin
// (one interleaved Montgomery reduction per field multiplication).
// Retained as the differential reference for the lazy tower and as the
// "before" side of the E13 tower-arithmetic measurements.
func Fp2MulGeneric(z, x, y *Fp2) *Fp2 {
	fp2MulGeneric(z, x, y)
	return z
}

// Fp6MulGeneric sets z = x·y with every inner Fp2 multiplication routed
// through the fully reducing twin and every operand sum reduced — the
// pre-lazy-reduction schedule, kept for differential testing and E13.
func Fp6MulGeneric(z, x, y *Fp6) *Fp6 {
	fp6MulGeneric(z, x, y)
	return z
}
