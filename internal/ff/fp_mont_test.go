package ff

import (
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"
)

// TestMontgomeryDifferential cross-checks every limb-level operation
// against big.Int arithmetic on random inputs.
func TestMontgomeryDifferential(t *testing.T) {
	check := func(rawA, rawB [32]byte) bool {
		a := new(big.Int).Mod(new(big.Int).SetBytes(rawA[:]), p)
		b := new(big.Int).Mod(new(big.Int).SetBytes(rawB[:]), p)
		fa, fb := NewFp(a), NewFp(b)

		var sum, diff, prod, neg Fp
		sum.Add(fa, fb)
		diff.Sub(fa, fb)
		prod.Mul(fa, fb)
		neg.Neg(fa)

		wantSum := new(big.Int).Add(a, b)
		wantSum.Mod(wantSum, p)
		wantDiff := new(big.Int).Sub(a, b)
		wantDiff.Mod(wantDiff, p)
		wantProd := new(big.Int).Mul(a, b)
		wantProd.Mod(wantProd, p)
		wantNeg := new(big.Int).Neg(a)
		wantNeg.Mod(wantNeg, p)

		return sum.Big().Cmp(wantSum) == 0 &&
			diff.Big().Cmp(wantDiff) == 0 &&
			prod.Big().Cmp(wantProd) == 0 &&
			neg.Big().Cmp(wantNeg) == 0
	}
	cfg := &quick.Config{MaxCount: 2000}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMontgomeryEdgeCases(t *testing.T) {
	pm1 := new(big.Int).Sub(p, big.NewInt(1))
	cases := []*big.Int{
		big.NewInt(0), big.NewInt(1), big.NewInt(2), pm1,
		new(big.Int).Rsh(p, 1),
	}
	for _, a := range cases {
		for _, b := range cases {
			fa, fb := NewFp(a), NewFp(b)
			var prod Fp
			prod.Mul(fa, fb)
			want := new(big.Int).Mul(a, b)
			want.Mod(want, p)
			if prod.Big().Cmp(want) != 0 {
				t.Fatalf("mul(%v, %v) = %v, want %v", a, b, prod.Big(), want)
			}
			var sum Fp
			sum.Add(fa, fb)
			wantS := new(big.Int).Add(a, b)
			wantS.Mod(wantS, p)
			if sum.Big().Cmp(wantS) != 0 {
				t.Fatalf("add(%v, %v) wrong", a, b)
			}
		}
	}
}

func TestMontgomeryRoundTrip(t *testing.T) {
	for i := 0; i < 200; i++ {
		v, err := rand.Int(rand.Reader, p)
		if err != nil {
			t.Fatal(err)
		}
		if NewFp(v).Big().Cmp(v) != 0 {
			t.Fatalf("Montgomery round trip failed for %v", v)
		}
	}
}

// TestMontMulMatchesGeneric cross-checks the unrolled no-carry
// Montgomery multiplication against the generic 65-bit-tracking CIOS on
// random and extreme limb patterns.
func TestMontMulMatchesGeneric(t *testing.T) {
	pm1 := new(big.Int).Sub(p, big.NewInt(1))
	edges := []*big.Int{
		big.NewInt(0), big.NewInt(1), pm1,
		new(big.Int).Rsh(p, 1),
	}
	var vals [][4]uint64
	for _, e := range edges {
		vals = append(vals, NewFp(e).v)
	}
	for i := 0; i < 200; i++ {
		f, err := RandFp(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		vals = append(vals, f.v)
	}
	for i := range vals {
		for j := range vals {
			var fast, slow [4]uint64
			montMul(&fast, &vals[i], &vals[j])
			montMulGeneric(&slow, &vals[i], &vals[j])
			if fast != slow {
				t.Fatalf("montMul(%v, %v) = %v, generic says %v",
					vals[i], vals[j], fast, slow)
			}
		}
	}
}

func TestMulInt64MatchesMul(t *testing.T) {
	a, err := RandFp(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []int64{0, 1, 2, 3, 4, 8, 13, 255, -3} {
		var viaInt, viaMul Fp
		viaInt.MulInt64(a, c)
		viaMul.Mul(a, NewFp(big.NewInt(c)))
		if !viaInt.Equal(&viaMul) {
			t.Fatalf("MulInt64(a, %d) disagrees with Mul", c)
		}
	}
}
