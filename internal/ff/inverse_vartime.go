package ff

import "math/bits"

// This file holds the variable-time inversion used on public operands.
//
// The default Fp.Inverse is the Fermat ladder: a fixed schedule of
// Montgomery multiplications (~380 of them), so a secret input does not
// modulate the run time. That robustness costs ~3.5× the wall time of a
// binary extended GCD, and the cold Miller loop pays it ~100 times per
// pairing — the line-slope denominators form a sequential chain (each
// slope feeds the next point update), so they cannot be batched within
// one pairing the way multi-pairing batches across pairings.
//
// Those denominators are coordinates of the *public* input points, so
// the timing argument does not apply, and InverseVartime exists for
// exactly that call site: Kaliski's almost Montgomery inverse — a
// right-shifting binary extended GCD on raw limbs, allocation-free,
// whose iteration count (and hence timing) tracks the input value.
// Anything touching secret scalars or key material must stay on
// Inverse.

// InverseVartime sets z = x⁻¹ and returns z. Inverting zero yields
// zero.
//
// NOT constant-time: the loop trip count and branch pattern depend on
// the value of x. Use only where x is public — pairing line
// denominators, batch-inversion aggregates over public curve points —
// and never on secret-derived field elements.
//
//dlr:noalloc
func (z *Fp) InverseVartime(x *Fp) *Fp {
	if x.IsZero() {
		return z.SetZero()
	}

	// Phase 1 (Kaliski): starting from u = p, v = x̃ (the Montgomery
	// representation a·2²⁵⁶, treated as a plain residue), maintain
	//
	//	x̃·r ≡ −u·2ᵏ  and  x̃·s ≡ v·2ᵏ (mod p)
	//
	// while halving u or v each step. When v reaches 0, u = gcd = 1 and
	// p − r = x̃⁻¹·2ᵏ mod p with k ∈ [254, 508]; r and s stay below 2p,
	// which fits four limbs for our 254-bit p.
	u := q
	v := x.v
	var r [4]uint64
	s := [4]uint64{1, 0, 0, 0}
	k := 0
	for v != ([4]uint64{}) {
		switch {
		case u[0]&1 == 0:
			limb4Shr1(&u)
			limb4Shl1(&s)
		case v[0]&1 == 0:
			limb4Shr1(&v)
			limb4Shl1(&r)
		case !limb4Geq(&v, &u): // u > v; ties MUST take the v branch
			// (v−u halves v to 0 and terminates; u−v would zero u
			// while v stays odd, and the loop would spin forever).
			limb4Sub(&u, &v)
			limb4Shr1(&u)
			limb4Add(&r, &s)
			limb4Shl1(&s)
		default:
			limb4Sub(&v, &u)
			limb4Shr1(&v)
			limb4Add(&s, &r)
			limb4Shl1(&r)
		}
		k++
	}
	if geqQ(&r) {
		subQ(&r)
	}
	// r < p here, and r ≠ 0 because x is invertible, so p − r needs no
	// borrow handling.
	var bw uint64
	r[0], bw = bits.Sub64(q[0], r[0], 0)
	r[1], bw = bits.Sub64(q[1], r[1], bw)
	r[2], bw = bits.Sub64(q[2], r[2], bw)
	r[3], _ = bits.Sub64(q[3], r[3], bw)

	// Phase 2: r = x̃⁻¹·2ᵏ = a⁻¹·2^(k−256) mod p, and the Montgomery
	// form of the inverse is a⁻¹·2²⁵⁶ — multiply by 2^(512−k) with at
	// most 258 modular doublings (each a shift plus a branchless
	// conditional subtract).
	for ; k < 512; k++ {
		var c uint64
		r[0], c = bits.Add64(r[0], r[0], 0)
		r[1], c = bits.Add64(r[1], r[1], c)
		r[2], c = bits.Add64(r[2], r[2], c)
		r[3], c = bits.Add64(r[3], r[3], c)
		reduceOnce(&r, c)
	}
	z.v = r
	return z
}

// InverseVartime sets z = x⁻¹ and returns z, routing the single base
// field inversion of 1/(a+bi) = (a−bi)/(a²+b²) through Fp's
// variable-time path. Same contract: public operands only.
//
//dlr:noalloc
func (z *Fp2) InverseVartime(x *Fp2) *Fp2 {
	var norm, t Fp
	norm.Square(&x.C0)
	t.Square(&x.C1)
	norm.Add(&norm, &t)
	norm.InverseVartime(&norm)
	var r0, r1 Fp
	r0.Mul(&x.C0, &norm)
	r1.Neg(&x.C1)
	r1.Mul(&r1, &norm)
	z.C0.Set(&r0)
	z.C1.Set(&r1)
	return z
}

// limb4Shr1 halves a (a must be even for exact division semantics; the
// GCD only ever halves even values).
func limb4Shr1(a *[4]uint64) {
	a[0] = a[0]>>1 | a[1]<<63
	a[1] = a[1]>>1 | a[2]<<63
	a[2] = a[2]>>1 | a[3]<<63
	a[3] >>= 1
}

// limb4Shl1 doubles a. Kaliski's invariants keep r, s < 2p < 2²⁵⁶, so
// the shift cannot overflow four limbs.
func limb4Shl1(a *[4]uint64) {
	a[3] = a[3]<<1 | a[2]>>63
	a[2] = a[2]<<1 | a[1]>>63
	a[1] = a[1]<<1 | a[0]>>63
	a[0] <<= 1
}

// limb4Add sets a = a + b (no overflow under the same < 2p bound).
func limb4Add(a, b *[4]uint64) {
	var c uint64
	a[0], c = bits.Add64(a[0], b[0], 0)
	a[1], c = bits.Add64(a[1], b[1], c)
	a[2], c = bits.Add64(a[2], b[2], c)
	a[3], _ = bits.Add64(a[3], b[3], c)
}
