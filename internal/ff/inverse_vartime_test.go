package ff

import (
	"crypto/rand"
	"math/big"
	"testing"
)

// TestInverseVartimeMatchesInverse checks the Kaliski binary-GCD
// inverse against the fixed-schedule Fermat inverse on random and edge
// inputs — both must agree with big.Int.ModInverse and multiply back to
// one.
func TestInverseVartimeMatchesInverse(t *testing.T) {
	check := func(x *Fp) {
		t.Helper()
		var fermat, kaliski, prod Fp
		fermat.Inverse(x)
		kaliski.InverseVartime(x)
		if !fermat.Equal(&kaliski) {
			t.Fatalf("InverseVartime(%v) = %v, Inverse = %v", x, &kaliski, &fermat)
		}
		if x.IsZero() {
			if !kaliski.IsZero() {
				t.Fatalf("InverseVartime(0) = %v, want 0", &kaliski)
			}
			return
		}
		if prod.Mul(x, &kaliski); !prod.IsOne() {
			t.Fatalf("x·InverseVartime(x) = %v, want 1", &prod)
		}
	}

	var x Fp
	check(x.SetZero())
	check(x.SetOne())
	check(x.SetBig(big.NewInt(2)))
	check(x.SetBig(new(big.Int).Sub(Modulus(), big.NewInt(1))))
	check(x.SetBig(new(big.Int).Sub(Modulus(), big.NewInt(2))))
	// Powers of two exercise the long even-branch runs of the GCD.
	for sh := uint(1); sh < 254; sh += 13 {
		check(x.SetBig(new(big.Int).Lsh(big.NewInt(1), sh)))
	}
	for i := 0; i < 200; i++ {
		r, err := rand.Int(rand.Reader, Modulus())
		if err != nil {
			t.Fatal(err)
		}
		check(x.SetBig(r))
	}
}

// TestFp2InverseVartimeMatchesInverse does the same for the quadratic
// extension.
func TestFp2InverseVartimeMatchesInverse(t *testing.T) {
	for i := 0; i < 100; i++ {
		x, err := RandFp2(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		var fermat, kaliski, prod Fp2
		fermat.Inverse(x)
		kaliski.InverseVartime(x)
		if !fermat.Equal(&kaliski) {
			t.Fatalf("Fp2 InverseVartime(%v) = %v, Inverse = %v", x, &kaliski, &fermat)
		}
		if prod.Mul(x, &kaliski); !prod.IsOne() {
			t.Fatalf("x·InverseVartime(x) = %v, want 1", &prod)
		}
	}
}

// TestInverseVartimeAllocFree pins the vartime inverse to zero heap
// allocations — it exists precisely so the Miller loop's ~100
// sequential denominator inversions stay both cheap and garbage-free.
func TestInverseVartimeAllocFree(t *testing.T) {
	x, err := RandFp(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	var out Fp
	if n := testing.AllocsPerRun(50, func() { out.InverseVartime(x) }); n != 0 {
		t.Fatalf("Fp.InverseVartime allocates %v/op, want 0", n)
	}
	x2, err := RandFp2(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	var out2 Fp2
	if n := testing.AllocsPerRun(50, func() { out2.InverseVartime(x2) }); n != 0 {
		t.Fatalf("Fp2.InverseVartime allocates %v/op, want 0", n)
	}
}
