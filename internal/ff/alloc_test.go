//go:build !race

package ff

import (
	"crypto/rand"
	"testing"
)

// Allocation regression tests for the tower hot paths. These run as
// part of the ordinary `go test ./...` gate (the opt-in bench-smoke
// check also watches allocs, but only when CI_BENCH=1), so a change
// that re-introduces big.Int churn inside field arithmetic fails CI
// immediately. Budgets are exact: steady-state tower arithmetic
// performs zero heap allocations.

func fpAllocTestElems(t *testing.T) (*Fp, *Fp2, *Fp12) {
	t.Helper()
	x, err := RandFp(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := RandFp2(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	x12, err := RandFp12(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return x, x2, x12
}

func TestTowerMulAllocFree(t *testing.T) {
	x, x2, x12 := fpAllocTestElems(t)
	var z Fp
	var z2 Fp2
	var z12 Fp12
	if n := testing.AllocsPerRun(100, func() { z.Mul(x, x) }); n != 0 {
		t.Fatalf("Fp.Mul allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { z2.Mul(x2, x2) }); n != 0 {
		t.Fatalf("Fp2.Mul allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { z12.Mul(x12, x12) }); n != 0 {
		t.Fatalf("Fp12.Mul allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { z12.Square(x12) }); n != 0 {
		t.Fatalf("Fp12.Square allocates %v/op, want 0", n)
	}
}

func TestInverseAllocFree(t *testing.T) {
	x, x2, x12 := fpAllocTestElems(t)
	var z Fp
	var z2 Fp2
	var z12 Fp12
	if n := testing.AllocsPerRun(20, func() { z.Inverse(x) }); n != 0 {
		t.Fatalf("Fp.Inverse allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(20, func() { z2.Inverse(x2) }); n != 0 {
		t.Fatalf("Fp2.Inverse allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(10, func() { z12.Inverse(x12) }); n != 0 {
		t.Fatalf("Fp12.Inverse allocates %v/op, want 0", n)
	}
}

func TestSqrtAllocFree(t *testing.T) {
	x, _, _ := fpAllocTestElems(t)
	var sq Fp
	sq.Square(x)
	var z Fp
	if n := testing.AllocsPerRun(10, func() { z.Sqrt(&sq) }); n != 0 {
		t.Fatalf("Fp.Sqrt allocates %v/op, want 0", n)
	}
}

func TestExpCyclotomicLimbsAllocFree(t *testing.T) {
	u := cyclotomicElement(t)
	e := [4]uint64{0x123456789abcdef0, 0xfedcba9876543210, 0x0f1e2d3c4b5a6978, 0x1}
	var z Fp12
	if n := testing.AllocsPerRun(10, func() { z.ExpCyclotomicLimbs(u, &e) }); n != 0 {
		t.Fatalf("ExpCyclotomicLimbs allocates %v/op, want 0", n)
	}
}

func TestBatchInverseIntoAllocFree(t *testing.T) {
	xs := make([]Fp2, 32)
	for i := range xs {
		x, err := RandFp2(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		xs[i].Set(x)
	}
	out := make([]Fp2, len(xs))
	prefix := make([]Fp2, len(xs))
	if n := testing.AllocsPerRun(10, func() { BatchInverseFp2Into(out, xs, prefix) }); n != 0 {
		t.Fatalf("BatchInverseFp2Into allocates %v/op, want 0", n)
	}
}

func TestBatchInverseFpIntoAllocFree(t *testing.T) {
	xs := make([]Fp, 32)
	for i := range xs {
		x, err := RandFp(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		xs[i].Set(x)
	}
	out := make([]Fp, len(xs))
	prefix := make([]Fp, len(xs))
	if n := testing.AllocsPerRun(10, func() { BatchInverseFpInto(out, xs, prefix) }); n != 0 {
		t.Fatalf("BatchInverseFpInto allocates %v/op, want 0", n)
	}
}
