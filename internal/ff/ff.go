// Package ff implements the finite-field tower underlying the BN254
// pairing group used by this library:
//
//	Fp    — the 254-bit prime base field,
//	Fp2   — Fp[i]/(i²+1),
//	Fp6   — Fp2[v]/(v³−ξ) with ξ = 9+i,
//	Fp12  — Fp6[w]/(w²−v).
//
// The tower follows the standard BN254 construction. All arithmetic is
// big.Int based; the package favours obvious correctness over speed and
// derives every tower constant (Frobenius coefficients, square-root
// exponents) programmatically from the modulus rather than hardcoding
// magic values.
//
// Method signatures follow the math/big convention: the receiver is the
// destination and is returned, e.g. z.Add(x, y) sets z = x+y and returns
// z. Receivers may alias operands.
package ff

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"
)

// Sizes of the canonical big-endian encodings, in bytes.
const (
	FpBytes   = 32
	Fp2Bytes  = 2 * FpBytes
	Fp6Bytes  = 3 * Fp2Bytes
	Fp12Bytes = 2 * Fp6Bytes
)

// p is the BN254 base-field modulus
// 36u⁴+36u³+24u²+6u+1 with u = 4965661367192848881.
var p = mustParse("21888242871839275222246405745257275088696311157297823662689037894645226208583")

// r is the order of G1, G2 and GT: 36u⁴+36u³+18u²+6u+1.
var r = mustParse("21888242871839275222246405745257275088548364400416034343698204186575808495617")

// pMinus2 is the inversion exponent (Fermat).
var pMinus2 = new(big.Int).Sub(p, big.NewInt(2))

// sqrtExp is (p+1)/4; valid because p ≡ 3 (mod 4).
var sqrtExp = func() *big.Int {
	e := new(big.Int).Add(p, big.NewInt(1))
	return e.Rsh(e, 2)
}()

func mustParse(s string) *big.Int {
	v, ok := new(big.Int).SetString(s, 10)
	if !ok {
		panic(fmt.Sprintf("ff: bad integer literal %q", s))
	}
	return v
}

// Modulus returns a copy of the base-field modulus p.
func Modulus() *big.Int { return new(big.Int).Set(p) }

// Order returns a copy of the group order r (the scalar-field modulus).
func Order() *big.Int { return new(big.Int).Set(r) }

// randInt returns a uniformly random integer in [0, m).
func randInt(rng io.Reader, m *big.Int) (*big.Int, error) {
	if rng == nil {
		rng = rand.Reader
	}
	v, err := rand.Int(rng, m)
	if err != nil {
		return nil, fmt.Errorf("ff: sampling randomness: %w", err)
	}
	return v, nil
}
