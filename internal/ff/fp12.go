package ff

import (
	"fmt"
	"io"
	"math/big"
	"sync"
)

// Fp12 is an element c0 + c1·w of Fp6[w]/(w²−v). The zero value is the
// zero element.
type Fp12 struct {
	C0, C1 Fp6
}

// RandFp12 returns a uniformly random element.
func RandFp12(rng io.Reader) (*Fp12, error) {
	c0, err := RandFp6(rng)
	if err != nil {
		return nil, err
	}
	c1, err := RandFp6(rng)
	if err != nil {
		return nil, err
	}
	return &Fp12{C0: *c0, C1: *c1}, nil
}

// Set sets z = x and returns z.
func (z *Fp12) Set(x *Fp12) *Fp12 {
	z.C0.Set(&x.C0)
	z.C1.Set(&x.C1)
	return z
}

// SetZero sets z = 0 and returns z.
func (z *Fp12) SetZero() *Fp12 {
	z.C0.SetZero()
	z.C1.SetZero()
	return z
}

// SetOne sets z = 1 and returns z.
func (z *Fp12) SetOne() *Fp12 {
	z.C0.SetOne()
	z.C1.SetZero()
	return z
}

// IsZero reports whether z == 0.
func (z *Fp12) IsZero() bool { return z.C0.IsZero() && z.C1.IsZero() }

// IsOne reports whether z == 1.
func (z *Fp12) IsOne() bool { return z.C0.IsOne() && z.C1.IsZero() }

// Equal reports whether z == x.
func (z *Fp12) Equal(x *Fp12) bool { return z.C0.Equal(&x.C0) && z.C1.Equal(&x.C1) }

// Add sets z = x + y and returns z.
func (z *Fp12) Add(x, y *Fp12) *Fp12 {
	z.C0.Add(&x.C0, &y.C0)
	z.C1.Add(&x.C1, &y.C1)
	return z
}

// Sub sets z = x − y and returns z.
func (z *Fp12) Sub(x, y *Fp12) *Fp12 {
	z.C0.Sub(&x.C0, &y.C0)
	z.C1.Sub(&x.C1, &y.C1)
	return z
}

// Neg sets z = −x and returns z.
func (z *Fp12) Neg(x *Fp12) *Fp12 {
	z.C0.Neg(&x.C0)
	z.C1.Neg(&x.C1)
	return z
}

// Mul sets z = x·y and returns z (Karatsuba over the quadratic extension,
// with w² = v).
//
//dlr:noalloc
func (z *Fp12) Mul(x, y *Fp12) *Fp12 {
	var t0, t1, t2, r0, r1 Fp6
	t0.Mul(&x.C0, &y.C0)
	t1.Mul(&x.C1, &y.C1)

	// r1 = (a0+a1)(b0+b1) − t0 − t1.
	var s, u Fp6
	s.Add(&x.C0, &x.C1)
	u.Add(&y.C0, &y.C1)
	r1.Mul(&s, &u)
	r1.Sub(&r1, &t0)
	r1.Sub(&r1, &t1)

	// r0 = t0 + v·t1.
	t2.MulByV(&t1)
	r0.Add(&t0, &t2)

	z.C0.Set(&r0)
	z.C1.Set(&r1)
	return z
}

// Square sets z = x² and returns z using complex squaring over Fp6
// (two Fp6 multiplications instead of the three a generic Mul costs):
// c0 = (a0+a1)(a0+v·a1) − t − v·t and c1 = 2t with t = a0·a1.
//
//dlr:noalloc
func (z *Fp12) Square(x *Fp12) *Fp12 {
	var t, s, u, r0, r1 Fp6
	t.Mul(&x.C0, &x.C1)
	s.Add(&x.C0, &x.C1)
	u.MulByV(&x.C1)
	u.Add(&u, &x.C0)
	r0.Mul(&s, &u)
	r0.Sub(&r0, &t)
	u.MulByV(&t)
	r0.Sub(&r0, &u)
	r1.Add(&t, &t)
	z.C0.Set(&r0)
	z.C1.Set(&r1)
	return z
}

// Conjugate sets z = c0 − c1·w and returns z. For elements of the
// cyclotomic subgroup (e.g. pairing outputs) this equals both inversion
// and the p⁶-power Frobenius.
func (z *Fp12) Conjugate(x *Fp12) *Fp12 {
	z.C0.Set(&x.C0)
	z.C1.Neg(&x.C1)
	return z
}

// Inverse sets z = x⁻¹ and returns z. Inverting zero yields zero.
//
//dlr:noalloc
func (z *Fp12) Inverse(x *Fp12) *Fp12 {
	// 1/(a0 + a1 w) = (a0 − a1 w)/(a0² − v·a1²).
	var t0, t1 Fp6
	t0.Square(&x.C0)
	t1.Square(&x.C1)
	t1.MulByV(&t1)
	t0.Sub(&t0, &t1)
	t0.Inverse(&t0)
	var r0, r1 Fp6
	r0.Mul(&x.C0, &t0)
	r1.Neg(&x.C1)
	r1.Mul(&r1, &t0)
	z.C0.Set(&r0)
	z.C1.Set(&r1)
	return z
}

// Exp sets z = x^e and returns z. Negative exponents invert.
// Non-negative exponents of at most 256 bits take the allocation-free
// limb bit loop.
func (z *Fp12) Exp(x *Fp12, e *big.Int) *Fp12 {
	if l, ok := limbsFromBig(e); ok {
		return z.expLimbs(x, &l)
	}
	var base Fp12
	base.Set(x)
	exp := e
	if e.Sign() < 0 {
		base.Inverse(&base)
		exp = new(big.Int).Neg(e)
	}
	var acc Fp12
	acc.SetOne()
	for i := exp.BitLen() - 1; i >= 0; i-- {
		acc.Square(&acc)
		if exp.Bit(i) == 1 {
			acc.Mul(&acc, &base)
		}
	}
	return z.Set(&acc)
}

// coeffs returns the six Fp2 coordinates of z in the w-basis
// z = Σ_{j=0..5} e_j·w^j (using v = w²).
func (z *Fp12) coeffs() [6]*Fp2 {
	return [6]*Fp2{&z.C0.C0, &z.C1.C0, &z.C0.C1, &z.C1.C1, &z.C0.C2, &z.C1.C2}
}

// frobeniusGamma holds γ_j = ξ^(j·(p−1)/6) for j = 0..5, derived from the
// modulus at first use.
var frobeniusGamma = struct {
	once sync.Once
	g    [6]Fp2
}{}

func gammas() *[6]Fp2 {
	frobeniusGamma.once.Do(func() {
		e := new(big.Int).Sub(p, big.NewInt(1))
		e.Div(e, big.NewInt(6))
		var base Fp2
		base.Exp(xi, e) // ξ^((p−1)/6)
		frobeniusGamma.g[0].SetOne()
		for j := 1; j < 6; j++ {
			frobeniusGamma.g[j].Mul(&frobeniusGamma.g[j-1], &base)
		}
	})
	return &frobeniusGamma.g
}

// FrobeniusGamma returns a copy of the Frobenius twist coefficient
// γⱼ = ξ^(j·(p−1)/6) for j ∈ [0,6). These are the per-coefficient
// factors of the p-power Frobenius in the w-basis (see Frobenius); the
// bn254 package uses γ₂ and γ₃ to build the untwist-Frobenius-twist
// endomorphism ψ(x, y) = (γ₂·x̄, γ₃·ȳ) on the sextic twist. Panics if j
// is out of range.
func FrobeniusGamma(j int) *Fp2 {
	if j < 0 || j >= 6 {
		panic("ff: FrobeniusGamma index out of range")
	}
	return new(Fp2).Set(&gammas()[j])
}

// Frobenius sets z = x^p and returns z.
func (z *Fp12) Frobenius(x *Fp12) *Fp12 {
	g := gammas()
	var out Fp12
	src := x.coeffs()
	dst := out.coeffs()
	for j := 0; j < 6; j++ {
		dst[j].Conjugate(src[j])
		dst[j].Mul(dst[j], &g[j])
	}
	return z.Set(&out)
}

// FrobeniusP2 sets z = x^(p²) and returns z.
func (z *Fp12) FrobeniusP2(x *Fp12) *Fp12 {
	var t Fp12
	t.Frobenius(x)
	return z.Frobenius(&t)
}

// FrobeniusP3 sets z = x^(p³) and returns z.
func (z *Fp12) FrobeniusP3(x *Fp12) *Fp12 {
	var t Fp12
	t.FrobeniusP2(x)
	return z.Frobenius(&t)
}

// Bytes returns the canonical 384-byte encoding (C0 ‖ C1).
func (z *Fp12) Bytes() []byte {
	out := make([]byte, 0, Fp12Bytes)
	out = append(out, z.C0.Bytes()...)
	out = append(out, z.C1.Bytes()...)
	return out
}

// SetBytes decodes the canonical 384-byte encoding.
func (z *Fp12) SetBytes(b []byte) (*Fp12, error) {
	if len(b) != Fp12Bytes {
		return nil, fmt.Errorf("ff: Fp12 encoding must be %d bytes, got %d", Fp12Bytes, len(b))
	}
	if _, err := z.C0.SetBytes(b[:Fp6Bytes]); err != nil {
		return nil, err
	}
	if _, err := z.C1.SetBytes(b[Fp6Bytes:]); err != nil {
		return nil, err
	}
	return z, nil
}

// String implements fmt.Stringer (hex digest of the canonical encoding,
// for debugging).
func (z *Fp12) String() string {
	b := z.Bytes()
	return fmt.Sprintf("Fp12(%x…)", b[:8])
}
