package ff

import (
	"crypto/rand"
	"math/big"
	"testing"
)

// mustRandFp2 returns a uniformly random reduced element, failing t on
// rng errors.
func mustRandFp2(t *testing.T) *Fp2 {
	t.Helper()
	x, err := RandFp2(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// unreduce returns a copy of x with p added to every coefficient that
// leaves room, producing the ≥p, <2p representations the lazy paths
// must accept from fp2AddNoRed call sites.
func unreduce(x *Fp2) *Fp2 {
	var z Fp2
	z.Set(x)
	for _, c := range []*Fp{&z.C0, &z.C1} {
		var t [4]uint64
		t = c.v
		addNoRed4(&t, &t, &q)
		c.v = t
	}
	return &z
}

// lazyEdgeFp2 lists coefficient patterns that stress the wide-accumulator
// bounds: zeros, ones, and p−1 in every slot.
func lazyEdgeFp2() []*Fp2 {
	pm1 := NewFp(new(big.Int).Sub(p, bigOne))
	var one Fp
	one.SetOne()
	var zero Fp
	mk := func(a, b *Fp) *Fp2 { return &Fp2{C0: *a, C1: *b} }
	return []*Fp2{
		mk(&zero, &zero), mk(&one, &zero), mk(&zero, &one),
		mk(pm1, &zero), mk(&zero, pm1), mk(pm1, pm1), mk(pm1, &one),
	}
}

func TestFp2MulLazyMatchesGeneric(t *testing.T) {
	check := func(x, y *Fp2) {
		t.Helper()
		var lazy, gen Fp2
		fp2MulLazy(&lazy, x, y)
		fp2MulGeneric(&gen, x, y)
		if !lazy.Equal(&gen) {
			t.Fatalf("fp2MulLazy diverged from generic twin:\n x=%v\n y=%v\n lazy=%v\n gen=%v", x, y, lazy, gen)
		}
	}
	for _, x := range lazyEdgeFp2() {
		for _, y := range lazyEdgeFp2() {
			check(x, y)
		}
	}
	for i := 0; i < 200; i++ {
		x, y := mustRandFp2(t), mustRandFp2(t)
		check(x, y)
	}
}

func TestFp2MulLazyUnreducedOperands(t *testing.T) {
	// The lazy mul must tolerate coefficients up to 2p (one fp2AddNoRed
	// deep) and still agree with the generic twin on the reduced
	// representatives.
	for i := 0; i < 100; i++ {
		x, y := mustRandFp2(t), mustRandFp2(t)
		var want Fp2
		fp2MulGeneric(&want, x, y)
		for _, pair := range [][2]*Fp2{
			{unreduce(x), y}, {x, unreduce(y)}, {unreduce(x), unreduce(y)},
		} {
			var got Fp2
			fp2MulLazy(&got, pair[0], pair[1])
			if !got.Equal(&want) {
				t.Fatalf("fp2MulLazy wrong on unreduced operands (i=%d)", i)
			}
		}
	}
}

func TestFp2SquareLazyMatchesGeneric(t *testing.T) {
	check := func(x *Fp2) {
		t.Helper()
		var lazy, gen Fp2
		fp2SquareLazy(&lazy, x)
		fp2SquareGeneric(&gen, x)
		if !lazy.Equal(&gen) {
			t.Fatalf("fp2SquareLazy diverged from generic twin on %v", x)
		}
	}
	for _, x := range lazyEdgeFp2() {
		check(x)
	}
	for i := 0; i < 200; i++ {
		check(mustRandFp2(t))
	}
	// Unreduced operands (< 2p) must square correctly too.
	for i := 0; i < 100; i++ {
		x := mustRandFp2(t)
		var want, got Fp2
		fp2SquareGeneric(&want, x)
		fp2SquareLazy(&got, unreduce(x))
		if !got.Equal(&want) {
			t.Fatalf("fp2SquareLazy wrong on unreduced operand (i=%d)", i)
		}
	}
}

func TestFp6MulMatchesGeneric(t *testing.T) {
	for i := 0; i < 100; i++ {
		x, err := RandFp6(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		y, err := RandFp6(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		var lazy, gen Fp6
		lazy.Mul(x, y)
		fp6MulGeneric(&gen, x, y)
		if !lazy.Equal(&gen) {
			t.Fatalf("Fp6.Mul diverged from fp6MulGeneric (i=%d)", i)
		}
	}
}

func TestMontRed512AgainstBigInt(t *testing.T) {
	rInv := new(big.Int).ModInverse(new(big.Int).Lsh(bigOne, 256), p)
	buf := make([]byte, 64)
	for i := 0; i < 200; i++ {
		if _, err := rand.Read(buf); err != nil {
			t.Fatal(err)
		}
		v := new(big.Int).SetBytes(buf)
		var wide [8]uint64
		for limb := 0; limb < 8; limb++ {
			for j := 0; j < 8; j++ {
				wide[limb] |= uint64(buf[63-8*limb-j]) << (8 * j)
			}
		}
		var got [4]uint64
		montRed512(&got, &wide)
		want := new(big.Int).Mul(v, rInv)
		want.Mod(want, p)
		if fromLimbs(got).Cmp(want) != 0 {
			t.Fatalf("montRed512 wrong for %v: got %v want %v", v, fromLimbs(got), want)
		}
	}
}

func TestMulWideAgainstBigInt(t *testing.T) {
	for i := 0; i < 100; i++ {
		x, err := RandFp(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		y, err := RandFp(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		var wide [8]uint64
		mulWide(&wide, &x.v, &y.v)
		want := new(big.Int).Mul(fromLimbs(x.v), fromLimbs(y.v))
		got := new(big.Int)
		for limb := 7; limb >= 0; limb-- {
			got.Lsh(got, 64)
			got.Or(got, new(big.Int).SetUint64(wide[limb]))
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("mulWide wrong: got %v want %v", got, want)
		}
	}
}
