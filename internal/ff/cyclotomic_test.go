package ff

import (
	"crypto/rand"
	"math/big"
	"testing"
)

// cyclotomicElement builds a random element of the cyclotomic subgroup
// G_Φ12 by applying the final exponentiation's easy part
// x ↦ (x̄/x)^(p²+1) to a random invertible element: x̄/x = x^(p⁶−1) and
// the p²+1 power lands in the Φ12 factor of the full group order.
func cyclotomicElement(t *testing.T) *Fp12 {
	t.Helper()
	x, err := RandFp12(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	var inv, u Fp12
	inv.Inverse(x)
	u.Conjugate(x)
	u.Mul(&u, &inv) // x^(p⁶−1)
	var f Fp12
	f.FrobeniusP2(&u)
	u.Mul(&u, &f) // x^((p⁶−1)(p²+1))
	if !u.IsCyclotomic() {
		t.Fatal("projection did not produce a cyclotomic element")
	}
	return &u
}

func TestFp2SquareMatchesMul(t *testing.T) {
	for i := 0; i < 200; i++ {
		x, err := RandFp2(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		var sq, mul Fp2
		sq.Square(x)
		mul.Mul(x, x)
		if !sq.Equal(&mul) {
			t.Fatalf("iteration %d: Square != Mul(x,x) for %v", i, x)
		}
	}
}

func TestFp2MulXiMatchesGenericMul(t *testing.T) {
	for i := 0; i < 200; i++ {
		x, err := RandFp2(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		var fast, slow Fp2
		fast.MulXi(x)
		slow.Mul(x, Xi())
		if !fast.Equal(&slow) {
			t.Fatalf("iteration %d: MulXi != Mul(x, ξ) for %v", i, x)
		}
	}
}

func TestFp6SquareMatchesMul(t *testing.T) {
	for i := 0; i < 200; i++ {
		x, err := RandFp6(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		var sq, mul Fp6
		sq.Square(x)
		mul.Mul(x, x)
		if !sq.Equal(&mul) {
			t.Fatalf("iteration %d: Fp6 Square != Mul(x,x)", i)
		}
	}
}

func TestFp12SquareMatchesMul(t *testing.T) {
	for i := 0; i < 200; i++ {
		x, err := RandFp12(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		var sq, mul Fp12
		sq.Square(x)
		mul.Mul(x, x)
		if !sq.Equal(&mul) {
			t.Fatalf("iteration %d: Fp12 Square != Mul(x,x)", i)
		}
	}
}

func TestCyclotomicSquareMatchesSquare(t *testing.T) {
	for i := 0; i < 100; i++ {
		u := cyclotomicElement(t)
		var fast, slow Fp12
		fast.CyclotomicSquare(u)
		slow.Square(u)
		if !fast.Equal(&slow) {
			t.Fatalf("iteration %d: CyclotomicSquare != Square on unitary element", i)
		}
	}
	// Identity stays fixed.
	var one Fp12
	one.SetOne()
	var sq Fp12
	sq.CyclotomicSquare(&one)
	if !sq.IsOne() {
		t.Fatal("CyclotomicSquare(1) != 1")
	}
}

func TestIsUnitary(t *testing.T) {
	u := cyclotomicElement(t)
	if !u.IsUnitary() {
		t.Fatal("unitary element not recognized")
	}
	x, err := RandFp12(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if x.IsUnitary() {
		t.Fatal("random Fp12 element unexpectedly unitary")
	}
	var one Fp12
	one.SetOne()
	if !one.IsUnitary() {
		t.Fatal("1 must be unitary")
	}
}

func TestWNAFReconstructs(t *testing.T) {
	for _, w := range []uint{2, 3, 4, 5} {
		for i := 0; i < 50; i++ {
			e, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 256))
			if err != nil {
				t.Fatal(err)
			}
			digits := WNAF(e, w)
			sum := new(big.Int)
			for j := len(digits) - 1; j >= 0; j-- {
				sum.Lsh(sum, 1)
				sum.Add(sum, big.NewInt(int64(digits[j])))
			}
			if sum.Cmp(e) != 0 {
				t.Fatalf("w=%d: wNAF digits do not reconstruct %v (got %v)", w, e, sum)
			}
			half := int8(1) << (w - 1)
			for _, d := range digits {
				if d == 0 {
					continue
				}
				if d&1 == 0 || d >= half || d <= -half {
					t.Fatalf("w=%d: digit %d out of range", w, d)
				}
			}
		}
	}
	if got := WNAF(new(big.Int), 4); len(got) != 0 {
		t.Fatalf("WNAF(0) should be empty, got %v", got)
	}
}

func TestExpCyclotomicMatchesExp(t *testing.T) {
	for i := 0; i < 100; i++ {
		u := cyclotomicElement(t)
		e, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 254))
		if err != nil {
			t.Fatal(err)
		}
		if i%3 == 1 {
			e.Neg(e)
		}
		if i%7 == 0 {
			e.SetInt64(int64(i % 3)) // exercise 0, 1, 2
		}
		var fast, slow Fp12
		fast.ExpCyclotomic(u, e)
		slow.Exp(u, e)
		if !fast.Equal(&slow) {
			t.Fatalf("iteration %d: ExpCyclotomic != Exp for e=%v", i, e)
		}
	}
}

func TestMulLineMatchesFullMul(t *testing.T) {
	for i := 0; i < 100; i++ {
		x, err := RandFp12(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		e0, _ := RandFp2(rand.Reader)
		e1, _ := RandFp2(rand.Reader)
		e3, _ := RandFp2(rand.Reader)

		// Assemble the dense line ℓ = e0 + e1·w + e3·w³.
		var line Fp12
		line.C0.C0.Set(e0)
		line.C1.C0.Set(e1)
		line.C1.C1.Set(e3)

		var fast, slow Fp12
		fast.MulLine(x, e0, e1, e3)
		slow.Mul(x, &line)
		if !fast.Equal(&slow) {
			t.Fatalf("iteration %d: MulLine != Mul with dense line", i)
		}
		// Aliased receiver.
		fast.Set(x)
		fast.MulLine(&fast, e0, e1, e3)
		if !fast.Equal(&slow) {
			t.Fatalf("iteration %d: aliased MulLine mismatch", i)
		}
	}
}

func TestMulLine01MatchesFullMul(t *testing.T) {
	for i := 0; i < 100; i++ {
		x, err := RandFp12(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		e1, _ := RandFp2(rand.Reader)
		e3, _ := RandFp2(rand.Reader)

		// Assemble the dense monic line ℓ = 1 + e1·w + e3·w³.
		var line Fp12
		line.C0.C0.SetOne()
		line.C1.C0.Set(e1)
		line.C1.C1.Set(e3)

		var fast, slow Fp12
		fast.MulLine01(x, e1, e3)
		slow.Mul(x, &line)
		if !fast.Equal(&slow) {
			t.Fatalf("iteration %d: MulLine01 != Mul with dense line", i)
		}
		// Aliased receiver.
		fast.Set(x)
		fast.MulLine01(&fast, e1, e3)
		if !fast.Equal(&slow) {
			t.Fatalf("iteration %d: aliased MulLine01 mismatch", i)
		}
	}
}
