package ff

import "repro/internal/par"

// Chunk-parallel Montgomery batch inversion. The serial helpers in
// batch.go pay exactly one field inversion for n elements but are
// inherently sequential: the prefix-product scan and the reverse
// unwinding each walk the whole slice. For the very large denominator
// batches produced by Pippenger's batch-affine bucket rounds the scan
// itself (3(n−1) multiplications) dominates, and it parallelizes
// perfectly by segmenting: each of k contiguous chunks runs its own
// prefix/unwind with its own interior inversion. The price is k−1
// extra inversions (~2.5 µs each on the vartime path) against a k-fold
// division of ~3n multiplications — a win once chunks hold a few
// hundred elements.
//
// The thresholds below keep every small input on the serial
// allocation-free path, so the //dlr:noalloc contracts of
// BatchInverseFpInto/BatchInverseFp2Into and the callers' alloc gates
// are unaffected: the parallel branch only triggers when n is large
// AND more than one worker is available (par.Chunks returns a single
// chunk otherwise).

// batchInvParMinChunk is the smallest per-chunk element count worth a
// dedicated interior inversion: ~3·256 chunk multiplications against
// one extra ~2.5 µs inversion and one goroutine dispatch.
const batchInvParMinChunk = 256

// BatchInverseFpPar is BatchInverseFpInto with chunk-level
// parallelism for large inputs: same contract (out may alias xs,
// prefix may alias neither, zeros map to zeros), same results. Inputs
// shorter than two chunks — or any input on a single-worker host —
// take the serial noalloc path unchanged.
func BatchInverseFpPar(out, xs, prefix []Fp) {
	if len(xs) < 2*batchInvParMinChunk || par.Workers() <= 1 {
		BatchInverseFpInto(out, xs, prefix)
		return
	}
	cs := par.Chunks(len(xs), batchInvParMinChunk)
	par.ForEach(len(cs), func(i int) {
		lo, hi := cs[i][0], cs[i][1]
		BatchInverseFpInto(out[lo:hi], xs[lo:hi], prefix[lo:hi])
	})
}

// BatchInverseFp2Par is BatchInverseFpPar for Fp2 elements, with the
// same contract as BatchInverseFp2Into.
func BatchInverseFp2Par(out, xs, prefix []Fp2) {
	if len(xs) < 2*batchInvParMinChunk || par.Workers() <= 1 {
		BatchInverseFp2Into(out, xs, prefix)
		return
	}
	cs := par.Chunks(len(xs), batchInvParMinChunk)
	par.ForEach(len(cs), func(i int) {
		lo, hi := cs[i][0], cs[i][1]
		BatchInverseFp2Into(out[lo:hi], xs[lo:hi], prefix[lo:hi])
	})
}
