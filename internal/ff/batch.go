package ff

// Montgomery's batch-inversion trick: n field inversions for the price
// of one inversion and 3(n−1) multiplications. Used by the fast-path
// group arithmetic to normalize Jacobian points and to share the
// Miller-loop line-denominator inversions across a multi-pairing.
//
// Every current caller inverts public curve data (Jacobian Z
// coordinates of public points, line denominators of public pairing
// inputs), so the single interior inversion takes the variable-time
// Kaliski path. A future caller holding secret-derived elements must
// not use these helpers — inverting via the fixed-schedule Fp.Inverse
// directly instead.

// BatchInverseFp sets out[i] = xs[i]⁻¹ for every i, mapping zeros to
// zeros (matching Fp.Inverse). A single field inversion is performed
// regardless of len(xs).
func BatchInverseFp(xs []Fp) []Fp {
	out := make([]Fp, len(xs))
	if len(xs) == 0 {
		return out
	}
	BatchInverseFpInto(out, xs, make([]Fp, len(xs)))
	return out
}

// BatchInverseFpInto is the scratch-reusing form of BatchInverseFp: it
// writes xs[i]⁻¹ into out[i] using prefix as workspace, allocating
// nothing. out and prefix must each have len(xs); out may alias xs
// (in-place inversion), prefix may not alias either. The loops that
// call this once per Miller-loop step or bucket round keep one out and
// one prefix slice alive across the whole run.
//
//dlr:noalloc
func BatchInverseFpInto(out, xs, prefix []Fp) {
	if len(xs) == 0 {
		return
	}
	// prefix[i] = product of all nonzero xs[j], j < i.
	var acc Fp
	acc.SetOne()
	for i := range xs {
		prefix[i].Set(&acc)
		if !xs[i].IsZero() {
			acc.Mul(&acc, &xs[i])
		}
	}
	var inv Fp
	inv.InverseVartime(&acc)
	for i := len(xs) - 1; i >= 0; i-- {
		if xs[i].IsZero() {
			out[i].SetZero()
			continue
		}
		x := xs[i] // value copy so out may alias xs
		out[i].Mul(&inv, &prefix[i])
		inv.Mul(&inv, &x)
	}
}

// BatchInverseFp2 is BatchInverseFp for Fp2 elements.
func BatchInverseFp2(xs []Fp2) []Fp2 {
	out := make([]Fp2, len(xs))
	if len(xs) == 0 {
		return out
	}
	BatchInverseFp2Into(out, xs, make([]Fp2, len(xs)))
	return out
}

// BatchInverseFp2Into is the scratch-reusing form of BatchInverseFp2,
// with the same contract as BatchInverseFpInto.
//
//dlr:noalloc
func BatchInverseFp2Into(out, xs, prefix []Fp2) {
	if len(xs) == 0 {
		return
	}
	var acc Fp2
	acc.SetOne()
	for i := range xs {
		prefix[i].Set(&acc)
		if !xs[i].IsZero() {
			acc.Mul(&acc, &xs[i])
		}
	}
	var inv Fp2
	inv.InverseVartime(&acc)
	for i := len(xs) - 1; i >= 0; i-- {
		if xs[i].IsZero() {
			out[i].SetZero()
			continue
		}
		x := xs[i]
		out[i].Mul(&inv, &prefix[i])
		inv.Mul(&inv, &x)
	}
}
