package ff

// Montgomery's batch-inversion trick: n field inversions for the price
// of one inversion and 3(n−1) multiplications. Used by the fast-path
// group arithmetic to normalize Jacobian points and to share the
// Miller-loop line-denominator inversions across a multi-pairing.

// BatchInverseFp sets out[i] = xs[i]⁻¹ for every i, mapping zeros to
// zeros (matching Fp.Inverse). A single field inversion is performed
// regardless of len(xs).
func BatchInverseFp(xs []Fp) []Fp {
	out := make([]Fp, len(xs))
	if len(xs) == 0 {
		return out
	}
	// prefix[i] = product of all nonzero xs[j], j < i.
	prefix := make([]Fp, len(xs))
	var acc Fp
	acc.SetOne()
	for i := range xs {
		prefix[i].Set(&acc)
		if !xs[i].IsZero() {
			acc.Mul(&acc, &xs[i])
		}
	}
	var inv Fp
	inv.Inverse(&acc)
	for i := len(xs) - 1; i >= 0; i-- {
		if xs[i].IsZero() {
			continue
		}
		out[i].Mul(&inv, &prefix[i])
		inv.Mul(&inv, &xs[i])
	}
	return out
}

// BatchInverseFp2 is BatchInverseFp for Fp2 elements.
func BatchInverseFp2(xs []Fp2) []Fp2 {
	out := make([]Fp2, len(xs))
	if len(xs) == 0 {
		return out
	}
	prefix := make([]Fp2, len(xs))
	var acc Fp2
	acc.SetOne()
	for i := range xs {
		prefix[i].Set(&acc)
		if !xs[i].IsZero() {
			acc.Mul(&acc, &xs[i])
		}
	}
	var inv Fp2
	inv.Inverse(&acc)
	for i := len(xs) - 1; i >= 0; i-- {
		if xs[i].IsZero() {
			continue
		}
		out[i].Mul(&inv, &prefix[i])
		inv.Mul(&inv, &xs[i])
	}
	return out
}
