package ff

import (
	"fmt"
	"io"
)

// Fp6 is an element c0 + c1·v + c2·v² of Fp2[v]/(v³−ξ). The zero value is
// the zero element.
type Fp6 struct {
	C0, C1, C2 Fp2
}

// RandFp6 returns a uniformly random element.
func RandFp6(rng io.Reader) (*Fp6, error) {
	var z Fp6
	for _, c := range []*Fp2{&z.C0, &z.C1, &z.C2} {
		e, err := RandFp2(rng)
		if err != nil {
			return nil, err
		}
		c.Set(e)
	}
	return &z, nil
}

// Set sets z = x and returns z.
func (z *Fp6) Set(x *Fp6) *Fp6 {
	z.C0.Set(&x.C0)
	z.C1.Set(&x.C1)
	z.C2.Set(&x.C2)
	return z
}

// SetZero sets z = 0 and returns z.
func (z *Fp6) SetZero() *Fp6 {
	z.C0.SetZero()
	z.C1.SetZero()
	z.C2.SetZero()
	return z
}

// SetOne sets z = 1 and returns z.
func (z *Fp6) SetOne() *Fp6 {
	z.C0.SetOne()
	z.C1.SetZero()
	z.C2.SetZero()
	return z
}

// SetFp2 sets z to the Fp2 element x embedded in Fp6.
func (z *Fp6) SetFp2(x *Fp2) *Fp6 {
	z.C0.Set(x)
	z.C1.SetZero()
	z.C2.SetZero()
	return z
}

// IsZero reports whether z == 0.
func (z *Fp6) IsZero() bool { return z.C0.IsZero() && z.C1.IsZero() && z.C2.IsZero() }

// IsOne reports whether z == 1.
func (z *Fp6) IsOne() bool { return z.C0.IsOne() && z.C1.IsZero() && z.C2.IsZero() }

// Equal reports whether z == x.
func (z *Fp6) Equal(x *Fp6) bool {
	return z.C0.Equal(&x.C0) && z.C1.Equal(&x.C1) && z.C2.Equal(&x.C2)
}

// Add sets z = x + y and returns z.
func (z *Fp6) Add(x, y *Fp6) *Fp6 {
	z.C0.Add(&x.C0, &y.C0)
	z.C1.Add(&x.C1, &y.C1)
	z.C2.Add(&x.C2, &y.C2)
	return z
}

// Sub sets z = x − y and returns z.
func (z *Fp6) Sub(x, y *Fp6) *Fp6 {
	z.C0.Sub(&x.C0, &y.C0)
	z.C1.Sub(&x.C1, &y.C1)
	z.C2.Sub(&x.C2, &y.C2)
	return z
}

// Neg sets z = −x and returns z.
func (z *Fp6) Neg(x *Fp6) *Fp6 {
	z.C0.Neg(&x.C0)
	z.C1.Neg(&x.C1)
	z.C2.Neg(&x.C2)
	return z
}

// Mul sets z = x·y and returns z (Karatsuba with the v³ = ξ reduction).
//
// The Karatsuba operand sums (a_i + a_j) are formed without the trailing
// conditional subtraction (fp2AddNoRed): the lazy Fp2 mul accepts
// coefficients up to 2p, so one level of unreduced additions is free.
// Differentially tested against fp6MulGeneric, the fully reducing
// schoolbook twin.
func (z *Fp6) Mul(x, y *Fp6) *Fp6 {
	var t0, t1, t2 Fp2
	t0.Mul(&x.C0, &y.C0)
	t1.Mul(&x.C1, &y.C1)
	t2.Mul(&x.C2, &y.C2)

	// c0 = t0 + ξ·((a1+a2)(b1+b2) − t1 − t2)
	var r0, s, u Fp2
	fp2AddNoRed(&s, &x.C1, &x.C2)
	fp2AddNoRed(&u, &y.C1, &y.C2)
	r0.Mul(&s, &u)
	r0.Sub(&r0, &t1)
	r0.Sub(&r0, &t2)
	r0.MulXi(&r0)
	r0.Add(&r0, &t0)

	// c1 = (a0+a1)(b0+b1) − t0 − t1 + ξ·t2
	var r1 Fp2
	fp2AddNoRed(&s, &x.C0, &x.C1)
	fp2AddNoRed(&u, &y.C0, &y.C1)
	r1.Mul(&s, &u)
	r1.Sub(&r1, &t0)
	r1.Sub(&r1, &t1)
	var xit2 Fp2
	xit2.MulXi(&t2)
	r1.Add(&r1, &xit2)

	// c2 = (a0+a2)(b0+b2) − t0 − t2 + t1
	var r2 Fp2
	fp2AddNoRed(&s, &x.C0, &x.C2)
	fp2AddNoRed(&u, &y.C0, &y.C2)
	r2.Mul(&s, &u)
	r2.Sub(&r2, &t0)
	r2.Sub(&r2, &t2)
	r2.Add(&r2, &t1)

	z.C0.Set(&r0)
	z.C1.Set(&r1)
	z.C2.Set(&r2)
	return z
}

// Square sets z = x² and returns z using the CH-SQR2 schedule (two
// multiplications and three squarings in Fp2 instead of the six
// multiplications a generic Mul costs).
func (z *Fp6) Square(x *Fp6) *Fp6 {
	// s0 = a0², s1 = 2a0a1, s2 = (a0 − a1 + a2)², s3 = 2a1a2, s4 = a2²
	// c0 = s0 + ξ·s3, c1 = s1 + ξ·s4, c2 = s1 + s2 + s3 − s0 − s4.
	var s0, s1, s2, s3, s4, t Fp2
	s0.Square(&x.C0)
	s1.Mul(&x.C0, &x.C1)
	s1.Double(&s1)
	t.Sub(&x.C0, &x.C1)
	t.Add(&t, &x.C2)
	s2.Square(&t)
	s3.Mul(&x.C1, &x.C2)
	s3.Double(&s3)
	s4.Square(&x.C2)

	var r0, r1, r2 Fp2
	r0.MulXi(&s3)
	r0.Add(&r0, &s0)
	r1.MulXi(&s4)
	r1.Add(&r1, &s1)
	r2.Add(&s1, &s2)
	r2.Add(&r2, &s3)
	r2.Sub(&r2, &s0)
	r2.Sub(&r2, &s4)

	z.C0.Set(&r0)
	z.C1.Set(&r1)
	z.C2.Set(&r2)
	return z
}

// MulFp2 sets z = x scaled coordinate-wise by the Fp2 element c.
func (z *Fp6) MulFp2(x *Fp6, c *Fp2) *Fp6 {
	z.C0.Mul(&x.C0, c)
	z.C1.Mul(&x.C1, c)
	z.C2.Mul(&x.C2, c)
	return z
}

// MulByV sets z = v·x = (ξ·c2, c0, c1) and returns z. Alias-safe via
// stack value copies (this sits inside every Fp12 multiplication, so it
// must not heap-allocate).
func (z *Fp6) MulByV(x *Fp6) *Fp6 {
	var r0 Fp2
	r0.MulXi(&x.C2)
	c0, c1 := x.C0, x.C1
	z.C0.Set(&r0)
	z.C1.Set(&c0)
	z.C2.Set(&c1)
	return z
}

// Inverse sets z = x⁻¹ and returns z. Inverting zero yields zero.
func (z *Fp6) Inverse(x *Fp6) *Fp6 {
	// Standard cubic-extension inversion:
	//   A = a0² − ξ·a1·a2, B = ξ·a2² − a0·a1, C = a1² − a0·a2,
	//   F = a0·A + ξ·a2·B + ξ·a1·C, z = (A, B, C)/F.
	var a, b, c, t Fp2
	a.Square(&x.C0)
	t.Mul(&x.C1, &x.C2)
	t.MulXi(&t)
	a.Sub(&a, &t)

	b.Square(&x.C2)
	b.MulXi(&b)
	t.Mul(&x.C0, &x.C1)
	b.Sub(&b, &t)

	c.Square(&x.C1)
	t.Mul(&x.C0, &x.C2)
	c.Sub(&c, &t)

	var f, u Fp2
	f.Mul(&x.C0, &a)
	u.Mul(&x.C2, &b)
	u.MulXi(&u)
	f.Add(&f, &u)
	u.Mul(&x.C1, &c)
	u.MulXi(&u)
	f.Add(&f, &u)
	f.Inverse(&f)

	z.C0.Mul(&a, &f)
	z.C1.Mul(&b, &f)
	z.C2.Mul(&c, &f)
	return z
}

// Bytes returns the canonical 192-byte encoding (C0 ‖ C1 ‖ C2).
func (z *Fp6) Bytes() []byte {
	out := make([]byte, 0, Fp6Bytes)
	out = append(out, z.C0.Bytes()...)
	out = append(out, z.C1.Bytes()...)
	out = append(out, z.C2.Bytes()...)
	return out
}

// SetBytes decodes the canonical 192-byte encoding.
func (z *Fp6) SetBytes(b []byte) (*Fp6, error) {
	if len(b) != Fp6Bytes {
		return nil, fmt.Errorf("ff: Fp6 encoding must be %d bytes, got %d", Fp6Bytes, len(b))
	}
	if _, err := z.C0.SetBytes(b[:Fp2Bytes]); err != nil {
		return nil, err
	}
	if _, err := z.C1.SetBytes(b[Fp2Bytes : 2*Fp2Bytes]); err != nil {
		return nil, err
	}
	if _, err := z.C2.SetBytes(b[2*Fp2Bytes:]); err != nil {
		return nil, err
	}
	return z, nil
}
