package ff

import (
	"math/big"
	"math/bits"
)

// This file is the limb-arithmetic layer behind the zero-allocation hot
// paths: fixed-window exponentiation driven by precomputed [4]uint64
// exponents (Fermat inversion, square roots, cyclotomic powering), wNAF
// recoding into caller-provided buffers, and scalar reduction mod r —
// all without materializing a big.Int. The big.Int entry points remain
// and delegate here when the exponent fits; they also serve as the
// differential twins for the fuzz targets.

// Limb forms of the fixed exponents used on hot paths. All are derived
// from p (and r) at start-up, mirroring the big.Int originals.
var (
	// pMinus2Limbs is p−2, the Fermat inversion exponent.
	pMinus2Limbs = toLimbs(pMinus2)
	// sqrtExpLimbs is (p+1)/4, the Fp square-root exponent (p ≡ 3 mod 4).
	sqrtExpLimbs = toLimbs(sqrtExp)
	// fp2SqrtALimbs is (p−3)/4, the first exponent of the Fp2
	// complex-method square root.
	fp2SqrtALimbs = toLimbs(new(big.Int).Rsh(new(big.Int).Sub(p, big.NewInt(3)), 2))
	// pHalfLimbs is (p−1)/2, the second exponent of the Fp2 square root
	// (and the Euler quadratic-character exponent).
	pHalfLimbs = toLimbs(new(big.Int).Rsh(new(big.Int).Sub(p, bigOne), 1))
	// rLimbs is the group order r, used by ReduceScalar.
	rLimbs = toLimbs(r)
)

// limbsFromBig loads a non-negative big.Int of at most 256 bits into
// four little-endian limbs without allocating (big.Int.Bits aliases the
// existing storage). The second return is false when e is negative or
// too wide; callers then fall back to the big.Int path.
func limbsFromBig(e *big.Int) ([4]uint64, bool) {
	var out [4]uint64
	if e.Sign() < 0 || e.BitLen() > 256 {
		return out, false
	}
	words := e.Bits()
	if bits.UintSize == 64 {
		for i, w := range words {
			out[i] = uint64(w)
		}
	} else {
		for i, w := range words {
			out[i/2] |= uint64(w) << (32 * uint(i%2))
		}
	}
	return out, true
}

// limb4Geq reports whether a ≥ b as 256-bit little-endian values.
func limb4Geq(a, b *[4]uint64) bool {
	for i := 3; i >= 0; i-- {
		if a[i] > b[i] {
			return true
		}
		if a[i] < b[i] {
			return false
		}
	}
	return true
}

// limb4Sub sets a = a − b (caller guarantees a ≥ b).
func limb4Sub(a, b *[4]uint64) {
	var bw uint64
	a[0], bw = bits.Sub64(a[0], b[0], 0)
	a[1], bw = bits.Sub64(a[1], b[1], bw)
	a[2], bw = bits.Sub64(a[2], b[2], bw)
	a[3], _ = bits.Sub64(a[3], b[3], bw)
}

// ReduceScalar returns k mod r as four little-endian limbs. For the
// common case 0 ≤ k < 2²⁵⁶ the reduction is a handful of conditional
// limb subtractions and performs no heap allocation; negative or wider
// inputs take a (cold) big.Int detour. This is the entry point the
// group scalar-multiplication tiers use to leave big.Int behind.
func ReduceScalar(k *big.Int) [4]uint64 {
	limbs, ok := limbsFromBig(k)
	if !ok {
		var red big.Int
		red.Mod(k, r)
		return toLimbs(&red)
	}
	// k < 2²⁵⁶ < 5r, so at most four subtractions reduce it.
	for limb4Geq(&limbs, &rLimbs) {
		limb4Sub(&limbs, &rLimbs)
	}
	return limbs
}

// OrderLimbs returns the group order r as four little-endian limbs.
func OrderLimbs() [4]uint64 { return rLimbs }

// expLimbs sets z = x^e for a 256-bit little-endian limb exponent,
// using a fixed 4-bit window: at most 16 table entries on the stack,
// four squarings plus one table multiplication per window, and no heap
// allocation. The operation schedule depends only on the exponent, so
// for the fixed public exponents this is used with (p−2, (p+1)/4, …)
// the run time is independent of the value of x.
func (z *Fp) expLimbs(x *Fp, e *[4]uint64) *Fp {
	var tbl [16]Fp
	tbl[1].Set(x)
	for i := 2; i < 16; i++ {
		tbl[i].Mul(&tbl[i-1], x)
	}
	var acc Fp
	acc.SetOne()
	started := false
	for i := 3; i >= 0; i-- {
		for shift := 60; shift >= 0; shift -= 4 {
			if started {
				acc.Square(&acc)
				acc.Square(&acc)
				acc.Square(&acc)
				acc.Square(&acc)
			}
			if d := (e[i] >> uint(shift)) & 0xf; d != 0 {
				acc.Mul(&acc, &tbl[d])
				started = true
			}
		}
	}
	return z.Set(&acc)
}

// expLimbs is the Fp2 counterpart of Fp.expLimbs (same fixed 4-bit
// window, same allocation-free schedule).
func (z *Fp2) expLimbs(x *Fp2, e *[4]uint64) *Fp2 {
	var tbl [16]Fp2
	tbl[1].Set(x)
	for i := 2; i < 16; i++ {
		tbl[i].Mul(&tbl[i-1], x)
	}
	var acc Fp2
	acc.SetOne()
	started := false
	for i := 3; i >= 0; i-- {
		for shift := 60; shift >= 0; shift -= 4 {
			if started {
				acc.Square(&acc)
				acc.Square(&acc)
				acc.Square(&acc)
				acc.Square(&acc)
			}
			if d := (e[i] >> uint(shift)) & 0xf; d != 0 {
				acc.Mul(&acc, &tbl[d])
				started = true
			}
		}
	}
	return z.Set(&acc)
}

// expLimbs is the Fp12 counterpart, a plain square-and-multiply bit
// loop (the generic-Fp12 power is only the cold fallback when an
// exponent base is outside the cyclotomic subgroup; a 16-entry Fp12
// window table would be 9 KiB of stack for no hot-path win).
func (z *Fp12) expLimbs(x *Fp12, e *[4]uint64) *Fp12 {
	var acc Fp12
	acc.SetOne()
	started := false
	for i := 3; i >= 0; i-- {
		for bit := 63; bit >= 0; bit-- {
			if started {
				acc.Square(&acc)
			}
			if e[i]>>uint(bit)&1 == 1 {
				acc.Mul(&acc, x)
				started = true
			}
		}
	}
	return z.Set(&acc)
}

// AppendWNAF appends the width-w non-adjacent form of the 256-bit
// little-endian value e to dst (least significant digit first) and
// returns the extended slice, matching WNAF's digit convention exactly
// but recoding in limb arithmetic with no big.Int churn. Callers that
// pass a slice backed by a stack array (dst := buf[:0]) get an
// allocation-free recoding as long as the result does not escape; the
// digit count never exceeds 258 for 256-bit inputs, so a [258]int8
// buffer always suffices. w must be in [2, 8].
func AppendWNAF(dst []int8, e [4]uint64, w uint) []int8 {
	if w < 2 || w > 8 {
		panic("ff: WNAF width out of range")
	}
	// A fifth limb absorbs the transient carry when a negative digit is
	// added back near the top of the value.
	var v [5]uint64
	v[0], v[1], v[2], v[3] = e[0], e[1], e[2], e[3]
	mask := uint64(1)<<w - 1
	half := int64(1) << (w - 1)
	for v != [5]uint64{} {
		var d int64
		if v[0]&1 == 1 {
			d = int64(v[0] & mask)
			if d >= half {
				d -= int64(1) << w
				// v += −d
				var c uint64
				v[0], c = bits.Add64(v[0], uint64(-d), 0)
				v[1], c = bits.Add64(v[1], 0, c)
				v[2], c = bits.Add64(v[2], 0, c)
				v[3], c = bits.Add64(v[3], 0, c)
				v[4], _ = bits.Add64(v[4], 0, c)
			} else {
				// v −= d
				var b uint64
				v[0], b = bits.Sub64(v[0], uint64(d), 0)
				v[1], b = bits.Sub64(v[1], 0, b)
				v[2], b = bits.Sub64(v[2], 0, b)
				v[3], b = bits.Sub64(v[3], 0, b)
				v[4], _ = bits.Sub64(v[4], 0, b)
			}
		}
		dst = append(dst, int8(d))
		v[0] = v[0]>>1 | v[1]<<63
		v[1] = v[1]>>1 | v[2]<<63
		v[2] = v[2]>>1 | v[3]<<63
		v[3] = v[3]>>1 | v[4]<<63
		v[4] >>= 1
	}
	return dst
}

// WNAFMaxDigits bounds the AppendWNAF output length for 256-bit inputs
// (one extra digit for the add-back carry, one for slack).
const WNAFMaxDigits = 258

// ExpCyclotomicLimbs sets z = x^e for x in the cyclotomic subgroup and
// a 256-bit little-endian limb exponent: the limb twin of
// ExpCyclotomic, recoding into a stack buffer so repeated fixed
// exponents (the curve parameter u in the final exponentiation, GT.Exp
// in the decryption inner loop) never touch the heap. The result is
// undefined when x is outside G_Φ12.
//
//dlr:noalloc
func (z *Fp12) ExpCyclotomicLimbs(x *Fp12, e *[4]uint64) *Fp12 {
	var buf [WNAFMaxDigits]int8
	digits := AppendWNAF(buf[:0], *e, 4)
	if len(digits) == 0 {
		return z.SetOne()
	}
	return z.expCyclotomicDigits(x, digits)
}

// expCyclotomicDigits is the shared digit walk behind ExpCyclotomic and
// ExpCyclotomicLimbs: width-4 wNAF digits (LSB first), Granger–Scott
// squarings, conjugation in place of inversion.
func (z *Fp12) expCyclotomicDigits(x *Fp12, digits []int8) *Fp12 {
	// Odd powers x^1, x^3, x^5, x^7.
	var tbl [4]Fp12
	tbl[0].Set(x)
	var sq Fp12
	sq.CyclotomicSquare(x)
	for i := 1; i < len(tbl); i++ {
		tbl[i].Mul(&tbl[i-1], &sq)
	}

	var acc Fp12
	acc.SetOne()
	started := false
	for i := len(digits) - 1; i >= 0; i-- {
		if started {
			acc.CyclotomicSquare(&acc)
		}
		if d := digits[i]; d > 0 {
			acc.Mul(&acc, &tbl[d>>1])
			started = true
		} else if d < 0 {
			var t Fp12
			t.Conjugate(&tbl[(-d)>>1])
			acc.Mul(&acc, &t)
			started = true
		}
	}
	return z.Set(&acc)
}
