package ff

import "math/big"

// This file implements fast arithmetic for the cyclotomic subgroup
// G_Φ12(p) = {z ∈ Fp12* : z^(p⁴−p²+1) = 1} — the image of the final
// exponentiation, i.e. the subgroup every pairing output (and hence
// every GT element produced by honest parties) lives in. Elements of
// that subgroup are unitary (z·z̄ = 1), so inversion is a conjugation,
// and squaring admits the Granger–Scott shortcut. None of these
// routines are safe on arbitrary Fp12 elements; callers must check
// IsCyclotomic (or know the provenance of the element) before taking
// the fast path.

// IsUnitary reports whether z has norm one over Fp6, i.e. z·z̄ = 1.
// This is necessary but NOT sufficient for membership in the
// cyclotomic subgroup — use IsCyclotomic to gate Granger–Scott
// squaring.
func (z *Fp12) IsUnitary() bool {
	var t Fp12
	t.Conjugate(z)
	t.Mul(&t, z)
	return t.IsOne()
}

// IsCyclotomic reports whether z lies in the cyclotomic subgroup
// G_Φ12(p), i.e. z^(p⁴−p²+1) = 1, by checking z^(p⁴)·z = z^(p²). The
// check costs two Frobenius maps and one multiplication — cheap
// relative to an exponentiation, so Exp-style routines can afford it
// as a gate for the fast path.
func (z *Fp12) IsCyclotomic() bool {
	if z.IsZero() {
		return false
	}
	var p2, p4 Fp12
	p2.FrobeniusP2(z)
	p4.FrobeniusP2(&p2)
	p4.Mul(&p4, z)
	return p4.Equal(&p2)
}

// fp4Square computes (a + b·W)² = (a² + ξ·b²) + (2ab)·W in
// Fp4 = Fp2[W]/(W²−ξ), writing the real part to r0 and the W part to
// r1. Costs three Fp2 squarings.
func fp4Square(r0, r1, a, b *Fp2) {
	var t0, t1, s Fp2
	t0.Square(a)
	t1.Square(b)
	s.Add(a, b)
	s.Square(&s)
	r1.Sub(&s, &t0)
	r1.Sub(r1, &t1) // 2ab
	t1.MulXi(&t1)
	r0.Add(&t0, &t1) // a² + ξb²
}

// CyclotomicSquare sets z = x² for x in the cyclotomic subgroup
// (Granger–Scott squaring, nine Fp2 squarings versus eighteen Fp2
// multiplications for a generic square). The result is undefined when
// x is outside G_Φ12 — use Square for arbitrary elements.
func (z *Fp12) CyclotomicSquare(x *Fp12) *Fp12 {
	// Write x = Σ g_j·w^j and group the coefficients into three Fp4
	// pieces A = g0 + g3·W, B = g1 + g4·W, C = g2 + g5·W with W = w³
	// (so W² = w⁶ = ξ), viewing Fp12 = Fp4[w]/(w³−W). For cyclotomic x,
	// Granger–Scott's α² = (3a²−2ā) + (3Wc²+2b̄)w + (3b²−2c̄)w² gives
	//   g0' = 3·Re(A²) − 2g0,   g3' = 3·Im(A²) + 2g3,
	//   g1' = 3·ξ·Im(C²) + 2g1, g4' = 3·Re(C²) − 2g4,
	//   g2' = 3·Re(B²) − 2g2,   g5' = 3·Im(B²) + 2g5.
	g0, g1, g2 := &x.C0.C0, &x.C1.C0, &x.C0.C1
	g3, g4, g5 := &x.C1.C1, &x.C0.C2, &x.C1.C2

	var a0, a1, b0, b1, c0, c1 Fp2
	fp4Square(&a0, &a1, g0, g3)
	fp4Square(&b0, &b1, g1, g4)
	fp4Square(&c0, &c1, g2, g5)

	// r = 3·s − 2·g  (for the C0-side coefficients)
	lower := func(r *Fp2, s, g *Fp2) {
		r.Sub(s, g)
		r.Double(r)
		r.Add(r, s)
	}
	// r = 3·s + 2·g  (for the C1-side coefficients)
	upper := func(r *Fp2, s, g *Fp2) {
		r.Add(s, g)
		r.Double(r)
		r.Add(r, s)
	}

	var out Fp12
	lower(&out.C0.C0, &a0, g0)
	upper(&out.C1.C1, &a1, g3)
	c1.MulXi(&c1)
	upper(&out.C1.C0, &c1, g1)
	lower(&out.C0.C2, &c0, g4)
	lower(&out.C0.C1, &b0, g2)
	upper(&out.C1.C2, &b1, g5)
	return z.Set(&out)
}

// WNAF returns the width-w non-adjacent form of the non-negative
// integer e, least significant digit first. Digits are zero or odd in
// (−2^(w−1), 2^(w−1)); w must be in [2, 8]. Scalar-multiplication and
// exponentiation routines share this recoding.
func WNAF(e *big.Int, w uint) []int8 {
	if w < 2 || w > 8 {
		panic("ff: WNAF width out of range")
	}
	if e.Sign() < 0 {
		panic("ff: WNAF of negative integer")
	}
	mod := int64(1) << w
	mask := big.NewInt(mod - 1)
	n := new(big.Int).Set(e)
	digits := make([]int8, 0, e.BitLen()+1)
	var low big.Int
	for n.Sign() > 0 {
		var d int64
		if n.Bit(0) == 1 {
			d = low.And(n, mask).Int64()
			if d >= mod/2 {
				d -= mod
			}
			n.Sub(n, big.NewInt(d))
		}
		digits = append(digits, int8(d))
		n.Rsh(n, 1)
	}
	return digits
}

// ExpCyclotomic sets z = x^e for x in the cyclotomic subgroup, using
// width-4 wNAF with Granger–Scott squarings and conjugation in place
// of inversion. Negative exponents conjugate. The result is undefined
// when x is outside G_Φ12 (check IsCyclotomic) — use Exp for arbitrary
// elements.
func (z *Fp12) ExpCyclotomic(x *Fp12, e *big.Int) *Fp12 {
	if e.Sign() == 0 {
		return z.SetOne()
	}
	if l, ok := limbsFromBig(e); ok {
		return z.ExpCyclotomicLimbs(x, &l)
	}
	var base Fp12
	base.Set(x)
	exp := e
	if e.Sign() < 0 {
		base.Conjugate(&base)
		exp = new(big.Int).Neg(e)
	}
	digits := WNAF(exp, 4)
	return z.expCyclotomicDigits(&base, digits)
}

// fp6MulSparse01 sets z = x·(y0 + y1·v) — a multiplication by an Fp6
// element whose v² coefficient is zero — in five Fp2 multiplications.
func fp6MulSparse01(z, x *Fp6, y0, y1 *Fp2) {
	var t0, t1, u, s Fp2
	t0.Mul(&x.C0, y0)
	t1.Mul(&x.C1, y1)
	u.Add(&x.C0, &x.C1)
	s.Add(y0, y1)
	u.Mul(&u, &s) // (x0+x1)(y0+y1)

	var c0, c1, c2, m Fp2
	c1.Sub(&u, &t0)
	c1.Sub(&c1, &t1) // x0·y1 + x1·y0
	m.Mul(&x.C2, y1)
	c0.MulXi(&m)
	c0.Add(&c0, &t0) // x0·y0 + ξ·x2·y1
	m.Mul(&x.C2, y0)
	c2.Add(&t1, &m) // x1·y1 + x2·y0

	z.C0.Set(&c0)
	z.C1.Set(&c1)
	z.C2.Set(&c2)
}

// MulLine sets z = x·ℓ where ℓ = e0 + e1·w + e3·w³ is the sparse shape
// produced by the pairing's Miller-loop line evaluations. Exploiting
// the three zero coefficients costs thirteen Fp2 multiplications versus
// eighteen for a generic Mul.
func (z *Fp12) MulLine(x *Fp12, e0, e1, e3 *Fp2) *Fp12 {
	// ℓ = B0 + B1·w with B0 = (e0, 0, 0) and B1 = (e1, e3, 0) in Fp6.
	var t0, t1 Fp6
	t0.MulFp2(&x.C0, e0)               // A0·B0
	fp6MulSparse01(&t1, &x.C1, e1, e3) // A1·B1

	// r1 = (A0+A1)(B0+B1) − t0 − t1, with B0+B1 = (e0+e1, e3, 0).
	var s Fp6
	s.Add(&x.C0, &x.C1)
	var y0 Fp2
	y0.Add(e0, e1)
	var r1 Fp6
	fp6MulSparse01(&r1, &s, &y0, e3)
	r1.Sub(&r1, &t0)
	r1.Sub(&r1, &t1)

	// r0 = t0 + v·t1.
	var r0 Fp6
	r0.MulByV(&t1)
	r0.Add(&r0, &t0)

	z.C0.Set(&r0)
	z.C1.Set(&r1)
	return z
}

// MulLine01 sets z = x·ℓ for a monic line ℓ = 1 + e1·w + e3·w³. With
// the constant coefficient equal to one, the A0·B0 product of MulLine
// degenerates to a copy, leaving ten Fp2 multiplications. Pairing
// tables normalize their replayed lines to this shape by dividing out
// the P.y constant (an Fp-subfield factor the final exponentiation
// kills).
func (z *Fp12) MulLine01(x *Fp12, e1, e3 *Fp2) *Fp12 {
	// ℓ = B0 + B1·w with B0 = (1, 0, 0) and B1 = (e1, e3, 0) in Fp6.
	var t0, t1 Fp6
	t0.Set(&x.C0) // A0·B0 = A0
	fp6MulSparse01(&t1, &x.C1, e1, e3)

	// r1 = (A0+A1)(B0+B1) − t0 − t1, with B0+B1 = (1+e1, e3, 0).
	var s Fp6
	s.Add(&x.C0, &x.C1)
	var y0 Fp2
	y0.SetOne()
	y0.Add(&y0, e1)
	var r1 Fp6
	fp6MulSparse01(&r1, &s, &y0, e3)
	r1.Sub(&r1, &t0)
	r1.Sub(&r1, &t1)

	// r0 = t0 + v·t1.
	var r0 Fp6
	r0.MulByV(&t1)
	r0.Add(&r0, &t0)

	z.C0.Set(&r0)
	z.C1.Set(&r1)
	return z
}
