package ff

import (
	"bytes"
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"
)

func randFpT(t *testing.T) *Fp {
	t.Helper()
	x, err := RandFp(rand.Reader)
	if err != nil {
		t.Fatalf("RandFp: %v", err)
	}
	return x
}

func TestFpModulusProperties(t *testing.T) {
	if !p.ProbablyPrime(32) {
		t.Fatal("p is not prime")
	}
	if !r.ProbablyPrime(32) {
		t.Fatal("r is not prime")
	}
	if p.BitLen() != 254 {
		t.Fatalf("p has %d bits, want 254", p.BitLen())
	}
	if new(big.Int).Mod(p, big.NewInt(4)).Int64() != 3 {
		t.Fatal("p ≢ 3 (mod 4); square-root shortcuts are invalid")
	}
	if new(big.Int).Mod(p, big.NewInt(6)).Int64() != 1 {
		t.Fatal("p ≢ 1 (mod 6); Frobenius constants are invalid")
	}
}

func TestFpFieldAxioms(t *testing.T) {
	for i := 0; i < 50; i++ {
		a, b, c := randFpT(t), randFpT(t), randFpT(t)

		// Commutativity and associativity of addition and multiplication.
		var l, r1 Fp
		if !l.Add(a, b).Equal(r1.Add(b, a)) {
			t.Fatal("addition not commutative")
		}
		var x, y Fp
		x.Add(a, b)
		x.Add(&x, c)
		y.Add(b, c)
		y.Add(a, &y)
		if !x.Equal(&y) {
			t.Fatal("addition not associative")
		}
		x.Mul(a, b)
		x.Mul(&x, c)
		y.Mul(b, c)
		y.Mul(a, &y)
		if !x.Equal(&y) {
			t.Fatal("multiplication not associative")
		}

		// Distributivity.
		x.Add(a, b)
		x.Mul(&x, c)
		var ac, bc Fp
		ac.Mul(a, c)
		bc.Mul(b, c)
		y.Add(&ac, &bc)
		if !x.Equal(&y) {
			t.Fatal("multiplication not distributive over addition")
		}

		// Inverses.
		if !a.IsZero() {
			var inv, one Fp
			inv.Inverse(a)
			one.Mul(a, &inv)
			if !one.IsOne() {
				t.Fatal("a·a⁻¹ ≠ 1")
			}
		}
		var negSum Fp
		var na Fp
		na.Neg(a)
		negSum.Add(a, &na)
		if !negSum.IsZero() {
			t.Fatal("a + (−a) ≠ 0")
		}
	}
}

func TestFpAliasing(t *testing.T) {
	a, b := randFpT(t), randFpT(t)
	want := new(Fp).Mul(a, b)
	got := new(Fp).Set(a)
	got.Mul(got, b)
	if !got.Equal(want) {
		t.Fatal("z.Mul(z, b) disagrees with fresh destination")
	}
	want = new(Fp).Add(a, a)
	got = new(Fp).Set(a)
	got.Add(got, got)
	if !got.Equal(want) {
		t.Fatal("z.Add(z, z) disagrees with fresh destination")
	}
}

func TestFpSqrt(t *testing.T) {
	found := 0
	for i := 0; i < 40; i++ {
		a := randFpT(t)
		var sq Fp
		sq.Square(a)
		var root Fp
		if _, ok := root.Sqrt(&sq); !ok {
			t.Fatal("square reported as non-residue")
		}
		var back Fp
		back.Square(&root)
		if !back.Equal(&sq) {
			t.Fatal("sqrt(a²)² ≠ a²")
		}
		// Roughly half of random elements should be non-residues.
		var any Fp
		if _, ok := any.Sqrt(a); ok {
			found++
		}
	}
	if found == 0 || found == 40 {
		t.Fatalf("residue count %d/40 implausible", found)
	}
}

func TestFpExpMatchesBig(t *testing.T) {
	a := randFpT(t)
	e, err := rand.Int(rand.Reader, Order())
	if err != nil {
		t.Fatal(err)
	}
	var got Fp
	got.Exp(a, e)
	want := new(big.Int).Exp(a.Big(), e, Modulus())
	if got.Big().Cmp(want) != 0 {
		t.Fatal("Exp disagrees with big.Int.Exp")
	}
	// Negative exponent: a^(−e)·a^e = 1.
	var inv, prod Fp
	inv.Exp(a, new(big.Int).Neg(e))
	prod.Mul(&got, &inv)
	if !prod.IsOne() {
		t.Fatal("a^e · a^(−e) ≠ 1")
	}
}

func TestFpBytesRoundTrip(t *testing.T) {
	f := func(raw [32]byte) bool {
		a := NewFp(new(big.Int).SetBytes(raw[:]))
		enc := a.Bytes()
		if len(enc) != FpBytes {
			return false
		}
		var back Fp
		if _, err := back.SetBytes(enc); err != nil {
			return false
		}
		return back.Equal(a) && bytes.Equal(back.Bytes(), enc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFpSetBytesRejectsUnreduced(t *testing.T) {
	enc := make([]byte, FpBytes)
	Modulus().FillBytes(enc)
	var z Fp
	if _, err := z.SetBytes(enc); err == nil {
		t.Fatal("SetBytes accepted p itself")
	}
	if _, err := z.SetBytes(enc[:31]); err == nil {
		t.Fatal("SetBytes accepted short input")
	}
}
