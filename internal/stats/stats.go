// Package stats provides the statistical tooling the reproduction uses
// to check the paper's distributional claims: empirical statistical
// distance (Definition 3.1 requires SD((sk⁰),(skᵗ)) = 0 across
// refreshes), min-entropy estimation (the leftover-hash-lemma margins
// behind Π_ss and HPSKE property 2), and a chi-square uniformity test
// for refresh outputs.
package stats

import (
	"fmt"
	"math"
)

// StatisticalDistance returns the total-variation distance between two
// empirical distributions given as sample slices over a common discrete
// domain (samples are compared by their string key).
func StatisticalDistance(a, b []string) float64 {
	ca := make(map[string]float64, len(a))
	cb := make(map[string]float64, len(b))
	for _, x := range a {
		ca[x]++
	}
	for _, x := range b {
		cb[x]++
	}
	keys := make(map[string]struct{}, len(ca)+len(cb))
	for k := range ca {
		keys[k] = struct{}{}
	}
	for k := range cb {
		keys[k] = struct{}{}
	}
	var d float64
	na, nb := float64(len(a)), float64(len(b))
	for k := range keys {
		d += math.Abs(ca[k]/na - cb[k]/nb)
	}
	return d / 2
}

// MinEntropy estimates the min-entropy (in bits) of the empirical
// distribution of samples: −log2(max frequency).
func MinEntropy(samples []string) float64 {
	if len(samples) == 0 {
		return 0
	}
	counts := make(map[string]int, len(samples))
	maxCount := 0
	for _, s := range samples {
		counts[s]++
		if counts[s] > maxCount {
			maxCount = counts[s]
		}
	}
	return -math.Log2(float64(maxCount) / float64(len(samples)))
}

// ChiSquareUniform runs a chi-square goodness-of-fit test of observed
// bucket counts against the uniform distribution and returns the test
// statistic together with the 99% critical value for the given degrees
// of freedom (buckets−1, using the Wilson–Hilferty approximation). The
// null hypothesis "uniform" is rejected at the 1% level when
// stat > critical.
func ChiSquareUniform(counts []int) (stat, critical float64, err error) {
	k := len(counts)
	if k < 2 {
		return 0, 0, fmt.Errorf("stats: need at least 2 buckets, got %d", k)
	}
	total := 0
	for _, c := range counts {
		if c < 0 {
			return 0, 0, fmt.Errorf("stats: negative count")
		}
		total += c
	}
	if total == 0 {
		return 0, 0, fmt.Errorf("stats: no observations")
	}
	expected := float64(total) / float64(k)
	for _, c := range counts {
		d := float64(c) - expected
		stat += d * d / expected
	}
	// Wilson–Hilferty: χ²_df(p) ≈ df·(1 − 2/(9df) + z_p·sqrt(2/(9df)))³,
	// z_0.99 ≈ 2.3263.
	df := float64(k - 1)
	z := 2.3263478740408408
	t := 1 - 2/(9*df) + z*math.Sqrt(2/(9*df))
	critical = df * t * t * t
	return stat, critical, nil
}

// ByteBucketCounts buckets a stream of byte slices by their trailing
// byte — a cheap uniformity projection for big-endian field-element
// encodings, whose LOW-order byte is uniform while the leading byte is
// bounded by the modulus.
func ByteBucketCounts(samples [][]byte, buckets int) ([]int, error) {
	if buckets < 2 || buckets > 256 {
		return nil, fmt.Errorf("stats: buckets must be in [2,256], got %d", buckets)
	}
	counts := make([]int, buckets)
	for _, s := range samples {
		if len(s) == 0 {
			return nil, fmt.Errorf("stats: empty sample")
		}
		counts[int(s[len(s)-1])*buckets/256]++
	}
	return counts, nil
}
