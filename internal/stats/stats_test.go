package stats

import (
	"crypto/rand"
	"math"
	"testing"
)

func TestStatisticalDistanceIdentical(t *testing.T) {
	a := []string{"x", "y", "x", "z"}
	if d := StatisticalDistance(a, a); d != 0 {
		t.Fatalf("SD(a,a) = %f, want 0", d)
	}
}

func TestStatisticalDistanceDisjoint(t *testing.T) {
	a := []string{"x", "x"}
	b := []string{"y", "y"}
	if d := StatisticalDistance(a, b); math.Abs(d-1) > 1e-12 {
		t.Fatalf("SD(disjoint) = %f, want 1", d)
	}
}

func TestStatisticalDistancePartial(t *testing.T) {
	a := []string{"x", "y"}
	b := []string{"x", "z"}
	if d := StatisticalDistance(a, b); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("SD = %f, want 0.5", d)
	}
}

func TestMinEntropy(t *testing.T) {
	if h := MinEntropy([]string{"a", "a", "a", "a"}); h != 0 {
		t.Fatalf("constant distribution min-entropy %f, want 0", h)
	}
	if h := MinEntropy([]string{"a", "b", "c", "d"}); math.Abs(h-2) > 1e-12 {
		t.Fatalf("uniform-4 min-entropy %f, want 2", h)
	}
	if h := MinEntropy(nil); h != 0 {
		t.Fatalf("empty min-entropy %f, want 0", h)
	}
}

func TestChiSquareUniformAcceptsUniform(t *testing.T) {
	counts := []int{250, 248, 252, 250}
	stat, crit, err := ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if stat > crit {
		t.Fatalf("near-uniform rejected: stat %f > critical %f", stat, crit)
	}
}

func TestChiSquareUniformRejectsSkew(t *testing.T) {
	counts := []int{1000, 10, 10, 10}
	stat, crit, err := ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if stat <= crit {
		t.Fatalf("heavily skewed accepted: stat %f ≤ critical %f", stat, crit)
	}
}

func TestChiSquareValidation(t *testing.T) {
	if _, _, err := ChiSquareUniform([]int{5}); err == nil {
		t.Fatal("accepted 1 bucket")
	}
	if _, _, err := ChiSquareUniform([]int{0, 0}); err == nil {
		t.Fatal("accepted empty observations")
	}
	if _, _, err := ChiSquareUniform([]int{-1, 2}); err == nil {
		t.Fatal("accepted negative count")
	}
}

func TestByteBucketCounts(t *testing.T) {
	samples := make([][]byte, 512)
	for i := range samples {
		b := make([]byte, 4)
		if _, err := rand.Read(b); err != nil {
			t.Fatal(err)
		}
		samples[i] = b
	}
	counts, err := ByteBucketCounts(samples, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 512 {
		t.Fatalf("bucket total %d, want 512", total)
	}
	stat, crit, err := ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if stat > crit {
		t.Fatalf("random bytes failed uniformity: %f > %f", stat, crit)
	}
	if _, err := ByteBucketCounts(samples, 1); err == nil {
		t.Fatal("accepted 1 bucket")
	}
	if _, err := ByteBucketCounts([][]byte{nil}, 4); err == nil {
		t.Fatal("accepted empty sample")
	}
}
