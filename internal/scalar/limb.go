package scalar

import (
	"math/big"
	"math/bits"
)

// This file is the fixed-width limb twin of Decompose. The Babai
// round-off coefficients cᵢ = round(e·cof0[i]/det) are replaced by a
// fixed-point approximation c̃ᵢ = (e·gᵢ + 2²⁵⁵) >> 256 with
// gᵢ = round(2²⁵⁶·|cof0[i]|/|det|) precomputed at lattice
// construction; c̃ᵢ differs from the exact rounding by at most one,
// which is harmless because the recomposition aⱼ = e·δ₀ⱼ − Σᵢ cᵢ·bᵢⱼ is
// evaluated exactly (in sign-magnitude limb arithmetic), so any choice
// of cᵢ yields a valid decomposition — only the sub-scalar lengths
// wobble, by at most the basis-entry magnitude (see the Decompose doc:
// correctness never depends on the rounding, only size does). The
// result is a GLV/GLS split that performs zero heap allocations, which
// is what lets the fast scalar-multiplication tiers beat — rather than
// trail — the plain wNAF tier on allocations.

// SubScalar is one signed sub-scalar of a lattice decomposition, in
// sign-magnitude form: value = (−1)^Neg · V (V little-endian limbs).
type SubScalar struct {
	Neg bool
	V   [4]uint64
}

// IsZero reports whether the sub-scalar is zero.
func (s *SubScalar) IsZero() bool { return s.V == [4]uint64{} }

// BitLen returns the bit length of the magnitude.
func (s *SubScalar) BitLen() int {
	for i := 3; i >= 0; i-- {
		if s.V[i] != 0 {
			return 64*i + bits.Len64(s.V[i])
		}
	}
	return 0
}

// Big returns the signed value as a big.Int (allocates; test/debug use).
func (s *SubScalar) Big() *big.Int {
	b := make([]byte, 32)
	for i := 0; i < 4; i++ {
		for j := 0; j < 8; j++ {
			b[31-8*i-j] = byte(s.V[i] >> (8 * j))
		}
	}
	v := new(big.Int).SetBytes(b)
	if s.Neg {
		v.Neg(v)
	}
	return v
}

// lattLimbs is the per-lattice precomputed fixed-point data. ok is
// false when some quantity did not fit its fixed width (a pathological
// basis); DecomposeInto then reports failure and callers fall back to
// the big.Int Decompose.
type lattLimbs struct {
	ok bool
	// g[i] = round(2²⁵⁶·|cof0[i]|/|det|) < 2²⁵⁶, gNeg[i] the sign of
	// cof0[i]/det. (BN254's GLV lattice has g ≈ 2¹²⁹; the GLS one
	// g ≈ 2¹⁹⁹, which is why g gets a full four limbs.)
	g    [][4]uint64
	gNeg []bool
	// b[i][j] = |basis[i][j]| < 2¹²⁸, bNeg[i][j] its sign.
	b    [][][2]uint64
	bNeg [][]bool
}

// buildLattLimbs derives the fixed-point data from the verified
// big.Int lattice. Run once at NewLattice. Beyond the per-value widths,
// it checks that every cᵢ·bᵢⱼ product the recomposition forms fits the
// five-limb accumulator: cᵢ ≤ gᵢ (since cᵢ ≈ e·gᵢ/2²⁵⁶ with e < 2²⁵⁶),
// so bitlen(g) + bitlen(b) ≤ 320 suffices and is required.
func buildLattLimbs(l *Lattice) *lattLimbs {
	n := l.dim
	ll := &lattLimbs{
		ok:   true,
		g:    make([][4]uint64, n),
		gNeg: make([]bool, n),
		b:    make([][][2]uint64, n),
		bNeg: make([][]bool, n),
	}
	absDet := new(big.Int).Abs(l.det)
	maxGBits, maxBBits := 0, 0
	for i := 0; i < n; i++ {
		// g = round(|cof| · 2²⁵⁶ / |det|)
		num := new(big.Int).Abs(l.cof0[i])
		num.Lsh(num, 257)
		num.Add(num, absDet)
		num.Div(num, new(big.Int).Lsh(absDet, 1))
		if num.BitLen() > 256 {
			ll.ok = false
		}
		if num.BitLen() > maxGBits {
			maxGBits = num.BitLen()
		}
		for w := 0; w < 4 && ll.ok; w++ {
			var limb uint64
			for bit := 0; bit < 64; bit++ {
				if num.Bit(64*w+bit) == 1 {
					limb |= 1 << uint(bit)
				}
			}
			ll.g[i][w] = limb
		}
		ll.gNeg[i] = (l.cof0[i].Sign() < 0) != (l.det.Sign() < 0)

		ll.b[i] = make([][2]uint64, n)
		ll.bNeg[i] = make([]bool, n)
		for j := 0; j < n; j++ {
			v := new(big.Int).Abs(l.basis[i][j])
			if v.BitLen() > 128 {
				ll.ok = false
				continue
			}
			if v.BitLen() > maxBBits {
				maxBBits = v.BitLen()
			}
			var lo, hi uint64
			for bit := 0; bit < 64; bit++ {
				if v.Bit(bit) == 1 {
					lo |= 1 << uint(bit)
				}
				if v.Bit(64+bit) == 1 {
					hi |= 1 << uint(bit)
				}
			}
			ll.b[i][j] = [2]uint64{lo, hi}
			ll.bNeg[i][j] = l.basis[i][j].Sign() < 0
		}
	}
	// The +1 absorbs the rounding's cᵢ ≤ gᵢ slack.
	if maxGBits+1+maxBBits > 320 {
		ll.ok = false
	}
	return ll
}

// signedAcc is a sign-magnitude accumulator wide enough for every
// intermediate the recomposition produces: buildLattLimbs admits a
// lattice only when every cᵢ·bᵢⱼ fits 320 bits (BN254's worst case is
// GLS at ≈ 2²⁶⁵), and DecomposeInto reports failure — triggering the
// big.Int fallback — rather than wrapping if a sub-scalar still
// overflows.
type signedAcc struct {
	neg bool
	mag [5]uint64
}

func (a *signedAcc) isZero() bool { return a.mag == [5]uint64{} }

// addSigned folds (−1)^neg·m into the accumulator.
func (a *signedAcc) addSigned(neg bool, m *[5]uint64) {
	if a.isZero() {
		a.neg = neg
		a.mag = *m
		return
	}
	if a.neg == neg {
		var c uint64
		a.mag[0], c = bits.Add64(a.mag[0], m[0], 0)
		a.mag[1], c = bits.Add64(a.mag[1], m[1], c)
		a.mag[2], c = bits.Add64(a.mag[2], m[2], c)
		a.mag[3], c = bits.Add64(a.mag[3], m[3], c)
		a.mag[4], _ = bits.Add64(a.mag[4], m[4], c)
		return
	}
	// Opposite signs: subtract the smaller magnitude from the larger.
	if geq5(&a.mag, m) {
		sub5(&a.mag, m)
	} else {
		var t [5]uint64 = *m
		sub5(&t, &a.mag)
		a.mag = t
		a.neg = neg
	}
	if a.isZero() {
		a.neg = false
	}
}

func geq5(a, b *[5]uint64) bool {
	for i := 4; i >= 0; i-- {
		if a[i] > b[i] {
			return true
		}
		if a[i] < b[i] {
			return false
		}
	}
	return true
}

func sub5(a, b *[5]uint64) {
	var bw uint64
	a[0], bw = bits.Sub64(a[0], b[0], 0)
	a[1], bw = bits.Sub64(a[1], b[1], bw)
	a[2], bw = bits.Sub64(a[2], b[2], bw)
	a[3], bw = bits.Sub64(a[3], b[3], bw)
	a[4], _ = bits.Sub64(a[4], b[4], bw)
}

// mul4x4 computes the full 512-bit product a·b.
func mul4x4(a, b *[4]uint64) [8]uint64 {
	var out [8]uint64
	for i := 0; i < 4; i++ {
		var carry uint64
		for j := 0; j < 4; j++ {
			hi, lo := bits.Mul64(a[i], b[j])
			var c uint64
			lo, c = bits.Add64(lo, out[i+j], 0)
			hi += c
			lo, c = bits.Add64(lo, carry, 0)
			hi += c
			out[i+j] = lo
			carry = hi
		}
		out[i+4] += carry
	}
	return out
}

// mul4x2 computes the full 384-bit product a·b.
func mul4x2(a *[4]uint64, b *[2]uint64) [6]uint64 {
	var out [6]uint64
	for i := 0; i < 4; i++ {
		var carry uint64
		for j := 0; j < 2; j++ {
			hi, lo := bits.Mul64(a[i], b[j])
			var c uint64
			lo, c = bits.Add64(lo, out[i+j], 0)
			hi += c
			lo, c = bits.Add64(lo, carry, 0)
			hi += c
			out[i+j] = lo
			carry = hi
		}
		out[i+2] += carry
	}
	return out
}

// LimbReady reports whether the fixed-point decomposition data fitted
// its widths at construction, i.e. whether DecomposeInto can succeed.
func (l *Lattice) LimbReady() bool { return l.limb != nil && l.limb.ok }

// DecomposeInto is the allocation-free limb twin of Decompose: it
// splits the already-reduced scalar e (little-endian limbs, 0 ≤ e <
// mod) into len(out) = Dim() signed sub-scalars with
// e ≡ Σ out[j]·μʲ (mod mod). It reports false — leaving out undefined —
// when the lattice's fixed-point data did not fit (LimbReady false) or
// a sub-scalar overflowed four limbs; callers then fall back to
// Decompose. The recomposition is exact, so the result is valid for
// any rounding of the Babai coefficients (the fixed-point cᵢ may
// differ from Decompose's by one, and the sub-scalars by one basis
// entry — both paths satisfy the recomposition identity the
// differential tests check).
//
//dlr:noalloc
func (l *Lattice) DecomposeInto(e *[4]uint64, out []SubScalar) bool {
	ll := l.limb
	if ll == nil || !ll.ok || len(out) != l.dim {
		return false
	}
	// Accumulators start at (e, 0, …, 0).
	var accs [maxLimbDim]signedAcc
	if l.dim > maxLimbDim {
		return false
	}
	accs[0].mag[0], accs[0].mag[1], accs[0].mag[2], accs[0].mag[3] = e[0], e[1], e[2], e[3]

	for i := 0; i < l.dim; i++ {
		// c̃ᵢ = (e·gᵢ + 2²⁵⁵) >> 256, a 4-limb magnitude.
		m := mul4x4(e, &ll.g[i])
		var c uint64
		m[3], c = bits.Add64(m[3], 1<<63, 0)
		m[4], c = bits.Add64(m[4], 0, c)
		m[5], c = bits.Add64(m[5], 0, c)
		m[6], c = bits.Add64(m[6], 0, c)
		m[7], _ = bits.Add64(m[7], 0, c)
		ci := [4]uint64{m[4], m[5], m[6], m[7]}
		if ci == [4]uint64{} {
			continue
		}
		ciNeg := ll.gNeg[i]
		for j := 0; j < l.dim; j++ {
			bij := &ll.b[i][j]
			if *bij == [2]uint64{} {
				continue
			}
			// cᵢ·bᵢⱼ fits five limbs: buildLattLimbs verified
			// bitlen(g)+1+bitlen(b) ≤ 320, and cᵢ ≤ gᵢ.
			t6 := mul4x2(&ci, bij)
			if t6[5] != 0 {
				return false
			}
			t := [5]uint64{t6[0], t6[1], t6[2], t6[3], t6[4]}
			// Contribution is −cᵢ·bᵢⱼ: negative exactly when cᵢ·bᵢⱼ > 0.
			accs[j].addSigned(ciNeg == ll.bNeg[i][j], &t)
		}
	}
	for j := 0; j < l.dim; j++ {
		if accs[j].mag[4] != 0 {
			return false
		}
		out[j].Neg = accs[j].neg
		out[j].V = [4]uint64{accs[j].mag[0], accs[j].mag[1], accs[j].mag[2], accs[j].mag[3]}
	}
	return true
}

// maxLimbDim bounds the lattice dimension the limb path supports (GLV
// is 2, GLS is 4).
const maxLimbDim = 4
