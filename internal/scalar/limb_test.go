package scalar

import (
	"crypto/rand"
	"math/big"
	"testing"
)

// The differential tests below pin DecomposeInto to the big.Int
// Decompose twin on the production GLV lattice: BN254's group order r
// and the λ eigenvalue of the degree-2 endomorphism, with the
// extended-Euclid reduced basis — the same (mod, μ, basis) triple
// internal/bn254 constructs at start-up. The parameters are re-derived
// here from the curve parameter u rather than imported, keeping scalar
// free of a bn254 dependency.

func bn254GLVLattice(t testing.TB) (*Lattice, *big.Int, *big.Int) {
	u := new(big.Int).SetUint64(4965661367192848881)
	// r = 36u⁴ + 36u³ + 18u² + 6u + 1
	r := polyU(u, 36, 36, 18, 6, 1)
	// λ = 36u³ + 18u² + 6u + 1 mod r (a primitive cube root of unity).
	lam := polyU(u, 0, 36, 18, 6, 1)
	lam.Mod(lam, r)
	basis, err := ReducedBasis2(r, lam)
	if err != nil {
		t.Fatal(err)
	}
	lat, err := NewLattice(r, lam, basis)
	if err != nil {
		t.Fatal(err)
	}
	return lat, r, lam
}

// polyU evaluates c4·u⁴ + c3·u³ + c2·u² + c1·u + c0.
func polyU(u *big.Int, c4, c3, c2, c1, c0 int64) *big.Int {
	out := big.NewInt(c4)
	for _, c := range []int64{c3, c2, c1, c0} {
		out.Mul(out, u)
		out.Add(out, big.NewInt(c))
	}
	return out
}

func limbsOf(t testing.TB, e *big.Int) [4]uint64 {
	if e.Sign() < 0 || e.BitLen() > 256 {
		t.Fatalf("scalar out of limb range: %v", e)
	}
	var out [4]uint64
	b := make([]byte, 32)
	e.FillBytes(b)
	for i := 0; i < 4; i++ {
		for j := 0; j < 8; j++ {
			out[i] |= uint64(b[31-8*i-j]) << (8 * j)
		}
	}
	return out
}

// checkDecomposeInto verifies the limb decomposition of e against the
// recomposition identity and the big.Int twin's sub-scalar sizes.
func checkDecomposeInto(t testing.TB, lat *Lattice, mod, mu, e *big.Int) {
	el := limbsOf(t, e)
	out := make([]SubScalar, lat.Dim())
	if !lat.DecomposeInto(&el, out) {
		t.Fatalf("DecomposeInto failed for e=%v", e)
	}
	// Σ aⱼ·μʲ ≡ e (mod mod).
	acc := new(big.Int)
	muPow := big.NewInt(1)
	for j := range out {
		acc.Add(acc, new(big.Int).Mul(out[j].Big(), muPow))
		muPow.Mul(muPow, mu)
		muPow.Mod(muPow, mod)
	}
	acc.Mod(acc, mod)
	want := new(big.Int).Mod(e, mod)
	if acc.Cmp(want) != 0 {
		t.Fatalf("recomposition failed for e=%v: got %v", e, acc)
	}
	// Size: each fixed-point Babai coefficient differs from the exact
	// rounding by at most one, so sub-scalar j differs from the twin's
	// by at most Σᵢ |bᵢⱼ| — together with the Babai guarantee that
	// bounds |aⱼ| by (3/2)·dim·max|bᵢⱼ|, i.e. max basis bit length
	// plus 3 bits for dim ≤ 4.
	maxB := 0
	for i := range lat.basis {
		for j := range lat.basis[i] {
			if b := lat.basis[i][j].BitLen(); b > maxB {
				maxB = b
			}
		}
	}
	twin := lat.Decompose(e)
	for j := range out {
		got := out[j].BitLen()
		if got <= twin[j].BitLen()+2 {
			continue
		}
		if got > maxB+3 {
			t.Fatalf("sub-scalar %d too long for e=%v: %d bits (twin %d, basis max %d)", j, e, got, twin[j].BitLen(), maxB)
		}
	}
}

func TestDecomposeIntoGLV(t *testing.T) {
	lat, r, lam := bn254GLVLattice(t)
	if !lat.LimbReady() {
		t.Fatal("GLV lattice limb data did not fit")
	}
	cases := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(2),
		new(big.Int).Sub(r, big.NewInt(1)),
		new(big.Int).Set(lam),
	}
	for i := 0; i < 200; i++ {
		k, err := Rand(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, k)
	}
	for _, e := range cases {
		checkDecomposeInto(t, lat, r, lam, e)
	}
}

// bn254GLSLattice re-derives the 4-dimensional Galbraith–Scott lattice
// internal/bn254 uses for G2 (μ = 6u², basis entries O(u)), the widest
// fixed-point data the limb path must carry (g ≈ 2¹⁹⁹).
func bn254GLSLattice(t testing.TB) (*Lattice, *big.Int, *big.Int) {
	u := new(big.Int).SetUint64(4965661367192848881)
	r := polyU(u, 36, 36, 18, 6, 1)
	mu := new(big.Int).Mul(u, u)
	mu.Mul(mu, big.NewInt(6))
	mk := func(cs ...[2]int64) []*big.Int {
		row := make([]*big.Int, len(cs))
		for i, c := range cs {
			v := new(big.Int).Mul(big.NewInt(c[0]), u)
			row[i] = v.Add(v, big.NewInt(c[1]))
		}
		return row
	}
	basis := [][]*big.Int{
		mk([2]int64{1, 1}, [2]int64{1, 0}, [2]int64{1, 0}, [2]int64{-2, 0}),
		mk([2]int64{2, 1}, [2]int64{-1, 0}, [2]int64{-1, -1}, [2]int64{-1, 0}),
		mk([2]int64{2, 0}, [2]int64{2, 1}, [2]int64{2, 1}, [2]int64{2, 1}),
		mk([2]int64{1, -1}, [2]int64{4, 2}, [2]int64{-2, 1}, [2]int64{1, -1}),
	}
	lat, err := NewLattice(r, mu, basis)
	if err != nil {
		t.Fatal(err)
	}
	return lat, r, mu
}

func TestDecomposeIntoGLS(t *testing.T) {
	lat, r, mu := bn254GLSLattice(t)
	if !lat.LimbReady() {
		t.Fatal("GLS lattice limb data did not fit")
	}
	cases := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		new(big.Int).Sub(r, big.NewInt(1)),
		new(big.Int).Set(mu),
	}
	for i := 0; i < 200; i++ {
		k, err := Rand(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, k)
	}
	for _, e := range cases {
		checkDecomposeInto(t, lat, r, mu, e)
	}
}

func TestDecomposeIntoAllocFree(t *testing.T) {
	lat, _, _ := bn254GLVLattice(t)
	k, err := Rand(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	el := limbsOf(t, k)
	out := make([]SubScalar, lat.Dim())
	if n := testing.AllocsPerRun(100, func() { lat.DecomposeInto(&el, out) }); n != 0 {
		t.Fatalf("DecomposeInto allocates %v/op, want 0", n)
	}
}

// TestDecomposeIntoRejectsWideBasis checks the fallback signal: a valid
// relation basis with entries too wide for the fixed-point path must
// report LimbReady() == false rather than decompose incorrectly.
func TestDecomposeIntoRejectsWideBasis(t *testing.T) {
	_, r, lam := bn254GLVLattice(t)
	// Trivial (valid, unreduced) relation basis: rows (r, 0), (−λ, 1).
	basis := [][]*big.Int{
		{new(big.Int).Set(r), big.NewInt(0)},
		{new(big.Int).Neg(lam), big.NewInt(1)},
	}
	lat, err := NewLattice(r, lam, basis)
	if err != nil {
		t.Fatal(err)
	}
	if lat.LimbReady() {
		t.Fatal("expected wide basis to disable the limb path")
	}
	var el [4]uint64
	el[0] = 12345
	out := make([]SubScalar, 2)
	if lat.DecomposeInto(&el, out) {
		t.Fatal("DecomposeInto should fail on a limb-unready lattice")
	}
}

// FuzzGLVDecompose differentially tests the fixed-point limb
// decomposition against the retained big.Int twin on the production
// GLV lattice.
func FuzzGLVDecompose(f *testing.F) {
	lat, r, lam := bn254GLVLattice(f)
	f.Add(make([]byte, 32))
	f.Add(new(big.Int).Sub(r, big.NewInt(1)).Bytes())
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, data []byte) {
		e := new(big.Int).SetBytes(data)
		e.Mod(e, r)
		checkDecomposeInto(t, lat, r, lam, e)
	})
}
