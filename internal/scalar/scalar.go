// Package scalar provides arithmetic over Zr, the scalar field of the
// pairing group (exponents of G1/G2/GT), together with the vector and
// modular linear-algebra helpers the schemes and their tests need.
//
// Secret keys throughout the paper are vectors over Zp (our Zr):
// sk2 = (s1,…,sℓ), skcomm = (σ1,…,σκ). The linear-algebra helpers mirror
// the "full rank requirement" of the security proof (§6, step (d)).
package scalar

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"

	"repro/internal/ff"
)

// Order returns a copy of the scalar-field modulus r.
func Order() *big.Int { return ff.Order() }

// Rand returns a uniformly random scalar in [0, r).
func Rand(rng io.Reader) (*big.Int, error) {
	if rng == nil {
		rng = rand.Reader
	}
	k, err := rand.Int(rng, ff.Order())
	if err != nil {
		return nil, fmt.Errorf("scalar: sampling: %w", err)
	}
	return k, nil
}

// RandVector returns n independent uniformly random scalars.
func RandVector(rng io.Reader, n int) ([]*big.Int, error) {
	out := make([]*big.Int, n)
	for i := range out {
		k, err := Rand(rng)
		if err != nil {
			return nil, err
		}
		out[i] = k
	}
	return out, nil
}

// Add returns (a+b) mod r.
func Add(a, b *big.Int) *big.Int {
	s := new(big.Int).Add(a, b)
	return s.Mod(s, ff.Order())
}

// Sub returns (a−b) mod r.
func Sub(a, b *big.Int) *big.Int {
	s := new(big.Int).Sub(a, b)
	return s.Mod(s, ff.Order())
}

// Mul returns (a·b) mod r.
func Mul(a, b *big.Int) *big.Int {
	s := new(big.Int).Mul(a, b)
	return s.Mod(s, ff.Order())
}

// Neg returns (−a) mod r.
func Neg(a *big.Int) *big.Int {
	s := new(big.Int).Neg(a)
	return s.Mod(s, ff.Order())
}

// Inverse returns a⁻¹ mod r, or an error when a ≡ 0.
func Inverse(a *big.Int) (*big.Int, error) {
	inv := new(big.Int).ModInverse(a, ff.Order())
	if inv == nil {
		return nil, fmt.Errorf("scalar: zero has no inverse")
	}
	return inv, nil
}

// Equal reports whether a ≡ b (mod r).
func Equal(a, b *big.Int) bool {
	return new(big.Int).Mod(a, ff.Order()).Cmp(new(big.Int).Mod(b, ff.Order())) == 0
}

// CopyVector returns a deep copy of v.
func CopyVector(v []*big.Int) []*big.Int {
	out := make([]*big.Int, len(v))
	for i, x := range v {
		out[i] = new(big.Int).Set(x)
	}
	return out
}

// Bytes encodes v as the concatenation of 32-byte big-endian scalars.
func Bytes(v []*big.Int) []byte {
	out := make([]byte, 0, 32*len(v))
	for _, x := range v {
		var buf [32]byte
		new(big.Int).Mod(x, ff.Order()).FillBytes(buf[:])
		out = append(out, buf[:]...)
	}
	return out
}

// FromBytes decodes a vector encoded by Bytes.
func FromBytes(b []byte) ([]*big.Int, error) {
	if len(b)%32 != 0 {
		return nil, fmt.Errorf("scalar: vector encoding length %d not a multiple of 32", len(b))
	}
	out := make([]*big.Int, len(b)/32)
	for i := range out {
		v := new(big.Int).SetBytes(b[32*i : 32*(i+1)])
		if v.Cmp(ff.Order()) >= 0 {
			return nil, fmt.Errorf("scalar: element %d not reduced", i)
		}
		out[i] = v
	}
	return out, nil
}

// Matrix is a dense matrix over Zr, row-major.
type Matrix [][]*big.Int

// NewMatrix allocates a rows×cols zero matrix.
func NewMatrix(rows, cols int) Matrix {
	m := make(Matrix, rows)
	for i := range m {
		m[i] = make([]*big.Int, cols)
		for j := range m[i] {
			m[i][j] = new(big.Int)
		}
	}
	return m
}

// RandMatrix returns a uniformly random rows×cols matrix.
func RandMatrix(rng io.Reader, rows, cols int) (Matrix, error) {
	m := make(Matrix, rows)
	for i := range m {
		row, err := RandVector(rng, cols)
		if err != nil {
			return nil, err
		}
		m[i] = row
	}
	return m, nil
}

// clone returns a deep copy of m.
func (m Matrix) clone() Matrix {
	out := make(Matrix, len(m))
	for i, row := range m {
		out[i] = CopyVector(row)
	}
	return out
}

// Rank returns the rank of m over Zr (Gaussian elimination).
func (m Matrix) Rank() int {
	if len(m) == 0 {
		return 0
	}
	a := m.clone()
	rows, cols := len(a), len(a[0])
	rank := 0
	for col := 0; col < cols && rank < rows; col++ {
		pivot := -1
		for i := rank; i < rows; i++ {
			if a[i][col].Sign() != 0 {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		a[rank], a[pivot] = a[pivot], a[rank]
		pinv, _ := Inverse(a[rank][col])
		for j := col; j < cols; j++ {
			a[rank][j] = Mul(a[rank][j], pinv)
		}
		for i := 0; i < rows; i++ {
			if i == rank || a[i][col].Sign() == 0 {
				continue
			}
			f := new(big.Int).Set(a[i][col])
			for j := col; j < cols; j++ {
				a[i][j] = Sub(a[i][j], Mul(f, a[rank][j]))
			}
		}
		rank++
	}
	return rank
}

// Solve returns x with A·x = b (mod r), or an error when the system is
// inconsistent. When underdetermined, free variables are set to zero.
func Solve(a Matrix, b []*big.Int) ([]*big.Int, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("scalar: %d rows but %d right-hand sides", len(a), len(b))
	}
	if len(a) == 0 {
		return nil, nil
	}
	rows, cols := len(a), len(a[0])
	// Augmented matrix.
	aug := make(Matrix, rows)
	for i := range aug {
		aug[i] = append(CopyVector(a[i]), new(big.Int).Set(b[i]))
	}
	pivotCol := make([]int, 0, rows)
	rank := 0
	for col := 0; col < cols && rank < rows; col++ {
		pivot := -1
		for i := rank; i < rows; i++ {
			if aug[i][col].Sign() != 0 {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		aug[rank], aug[pivot] = aug[pivot], aug[rank]
		pinv, _ := Inverse(aug[rank][col])
		for j := col; j <= cols; j++ {
			aug[rank][j] = Mul(aug[rank][j], pinv)
		}
		for i := 0; i < rows; i++ {
			if i == rank || aug[i][col].Sign() == 0 {
				continue
			}
			f := new(big.Int).Set(aug[i][col])
			for j := col; j <= cols; j++ {
				aug[i][j] = Sub(aug[i][j], Mul(f, aug[rank][j]))
			}
		}
		pivotCol = append(pivotCol, col)
		rank++
	}
	// Inconsistency: zero row with non-zero rhs.
	for i := rank; i < rows; i++ {
		if aug[i][cols].Sign() != 0 {
			return nil, fmt.Errorf("scalar: linear system inconsistent")
		}
	}
	x := make([]*big.Int, cols)
	for i := range x {
		x[i] = new(big.Int)
	}
	for i, col := range pivotCol {
		x[col] = new(big.Int).Set(aug[i][cols])
	}
	return x, nil
}

// MulVec returns A·x mod r.
func (m Matrix) MulVec(x []*big.Int) ([]*big.Int, error) {
	if len(m) == 0 {
		return nil, nil
	}
	if len(m[0]) != len(x) {
		return nil, fmt.Errorf("scalar: dimension mismatch %d vs %d", len(m[0]), len(x))
	}
	out := make([]*big.Int, len(m))
	for i, row := range m {
		acc := new(big.Int)
		for j, c := range row {
			acc.Add(acc, new(big.Int).Mul(c, x[j]))
		}
		out[i] = acc.Mod(acc, ff.Order())
	}
	return out, nil
}
