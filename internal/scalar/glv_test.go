package scalar

import (
	"crypto/rand"
	"math/big"
	"testing"
)

// The tests exercise the decomposition with the two lattices the bn254
// package actually uses: the 2-dimensional GLV lattice for (r, λ) with
// λ² + λ + 1 ≡ 0 (mod r), and the 4-dimensional GLS lattice for
// (r, μ = 6u²) with the Galbraith–Scott basis. The constants are
// re-derived here from the BN parameter u so the test does not trust
// the package under test.

var bnU = new(big.Int).SetUint64(4965661367192848881)

func bnOrder() *big.Int { return Order() }

// bnLambda = 36u³ + 18u² + 6u + 1, a root of x² + x + 1 mod r.
func bnLambda() *big.Int {
	u := bnU
	u2 := new(big.Int).Mul(u, u)
	u3 := new(big.Int).Mul(u2, u)
	l := new(big.Int).Mul(u3, big.NewInt(36))
	l.Add(l, new(big.Int).Mul(u2, big.NewInt(18)))
	l.Add(l, new(big.Int).Mul(u, big.NewInt(6)))
	return l.Add(l, big.NewInt(1))
}

// bnMu = 6u² ≡ p (mod r), the ψ eigenvalue on G2.
func bnMu() *big.Int {
	m := new(big.Int).Mul(bnU, bnU)
	return m.Mul(m, big.NewInt(6))
}

// glsBasis is the Galbraith–Scott degree-4 relation basis for BN curves
// (Galbraith–Scott 2008, §5), rows (v₀,v₁,v₂,v₃) with
// Σ vⱼ·μʲ ≡ 0 (mod r). NewLattice re-verifies every row.
func glsBasis() [][]*big.Int {
	u := bnU
	mk := func(cs ...[2]int64) []*big.Int {
		row := make([]*big.Int, len(cs))
		for i, c := range cs {
			v := new(big.Int).Mul(big.NewInt(c[0]), u)
			row[i] = v.Add(v, big.NewInt(c[1]))
		}
		return row
	}
	return [][]*big.Int{
		mk([2]int64{1, 1}, [2]int64{1, 0}, [2]int64{1, 0}, [2]int64{-2, 0}),
		mk([2]int64{2, 1}, [2]int64{-1, 0}, [2]int64{-1, -1}, [2]int64{-1, 0}),
		mk([2]int64{2, 0}, [2]int64{2, 1}, [2]int64{2, 1}, [2]int64{2, 1}),
		mk([2]int64{1, -1}, [2]int64{4, 2}, [2]int64{-2, 1}, [2]int64{1, -1}),
	}
}

// edgeScalars returns the deterministic boundary cases every
// decomposition must handle: 0, 1, r−1, r, r+1 and ±2^i across the
// scalar range.
func edgeScalars(r *big.Int) []*big.Int {
	out := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		new(big.Int).Sub(r, big.NewInt(1)),
		new(big.Int).Set(r),
		new(big.Int).Add(r, big.NewInt(1)),
	}
	for i := 0; i <= r.BitLen(); i += 17 {
		p := new(big.Int).Lsh(big.NewInt(1), uint(i))
		out = append(out, p, new(big.Int).Neg(p))
	}
	return out
}

// checkRecompose verifies k ≡ Σ aⱼ·μʲ (mod r) and that every
// sub-scalar stays below maxBits.
func checkRecompose(t *testing.T, lat *Lattice, mu, r, k *big.Int, maxBits int) {
	t.Helper()
	subs := lat.Decompose(k)
	if len(subs) != lat.Dim() {
		t.Fatalf("Decompose returned %d sub-scalars, want %d", len(subs), lat.Dim())
	}
	acc := new(big.Int)
	muPow := big.NewInt(1)
	for j, a := range subs {
		if a.BitLen() > maxBits {
			t.Fatalf("k=%v: sub-scalar %d has %d bits, want ≤ %d", k, j, a.BitLen(), maxBits)
		}
		acc.Add(acc, new(big.Int).Mul(a, muPow))
		muPow = new(big.Int).Mul(muPow, mu)
		muPow.Mod(muPow, r)
	}
	acc.Mod(acc, r)
	want := new(big.Int).Mod(k, r)
	if acc.Cmp(want) != 0 {
		t.Fatalf("k=%v: recomposition mismatch: got %v want %v", k, acc, want)
	}
}

func TestGLVDecompose2Dim(t *testing.T) {
	r := bnOrder()
	lambda := bnLambda()
	basis, err := ReducedBasis2(r, lambda)
	if err != nil {
		t.Fatal(err)
	}
	lat, err := NewLattice(r, lambda, basis)
	if err != nil {
		t.Fatal(err)
	}
	// Balanced 2-dim decomposition of a 254-bit order: sub-scalars stay
	// within a couple of bits of √r ≈ 2^127.
	const maxBits = 130
	for _, k := range edgeScalars(r) {
		checkRecompose(t, lat, lambda, r, k, maxBits)
	}
	for i := 0; i < 1000; i++ {
		k, err := rand.Int(rand.Reader, r)
		if err != nil {
			t.Fatal(err)
		}
		checkRecompose(t, lat, lambda, r, k, maxBits)
	}
}

func TestGLSDecompose4Dim(t *testing.T) {
	r := bnOrder()
	mu := bnMu()
	lat, err := NewLattice(r, mu, glsBasis())
	if err != nil {
		t.Fatal(err)
	}
	// 4-dim decomposition: sub-scalars near r^(1/4) ≈ 2^64.
	const maxBits = 67
	for _, k := range edgeScalars(r) {
		checkRecompose(t, lat, mu, r, k, maxBits)
	}
	for i := 0; i < 1000; i++ {
		k, err := rand.Int(rand.Reader, r)
		if err != nil {
			t.Fatal(err)
		}
		checkRecompose(t, lat, mu, r, k, maxBits)
	}
}

func TestNewLatticeRejectsBadBases(t *testing.T) {
	r := bnOrder()
	lambda := bnLambda()
	// A non-relation row must be rejected.
	bad := [][]*big.Int{
		{big.NewInt(1), big.NewInt(1)},
		{big.NewInt(0), new(big.Int).Set(r)},
	}
	if _, err := NewLattice(r, lambda, bad); err == nil {
		t.Fatal("NewLattice accepted a non-relation basis")
	}
	// A singular (rank-deficient) relation basis must be rejected.
	basis, err := ReducedBasis2(r, lambda)
	if err != nil {
		t.Fatal(err)
	}
	singular := [][]*big.Int{basis[0], basis[0]}
	if _, err := NewLattice(r, lambda, singular); err == nil {
		t.Fatal("NewLattice accepted a singular basis")
	}
	// Mis-shaped rows must be rejected.
	ragged := [][]*big.Int{basis[0], {big.NewInt(1)}}
	if _, err := NewLattice(r, lambda, ragged); err == nil {
		t.Fatal("NewLattice accepted a ragged basis")
	}
}

func TestReducedBasis2VectorsAreRelations(t *testing.T) {
	r := bnOrder()
	lambda := bnLambda()
	basis, err := ReducedBasis2(r, lambda)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range basis {
		acc := new(big.Int).Mul(v[1], lambda)
		acc.Add(acc, v[0])
		acc.Mod(acc, r)
		if acc.Sign() != 0 {
			t.Fatalf("basis vector %d is not a relation vector", i)
		}
	}
}
