package scalar

import (
	"crypto/rand"
	"math/big"
	"testing"
)

func TestArithmetic(t *testing.T) {
	a, err := Rand(nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Rand(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(Add(a, b), Add(b, a)) {
		t.Fatal("Add not commutative")
	}
	if !Equal(Sub(Add(a, b), b), a) {
		t.Fatal("Sub does not invert Add")
	}
	if !Equal(Add(a, Neg(a)), big.NewInt(0)) {
		t.Fatal("a + (−a) ≠ 0")
	}
	if a.Sign() != 0 {
		inv, err := Inverse(a)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(Mul(a, inv), big.NewInt(1)) {
			t.Fatal("a·a⁻¹ ≠ 1")
		}
	}
	if _, err := Inverse(big.NewInt(0)); err == nil {
		t.Fatal("Inverse(0) should error")
	}
}

func TestVectorBytesRoundTrip(t *testing.T) {
	v, err := RandVector(nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromBytes(Bytes(v))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(v) {
		t.Fatalf("length %d, want %d", len(back), len(v))
	}
	for i := range v {
		if !Equal(back[i], v[i]) {
			t.Fatalf("element %d mismatch", i)
		}
	}
	if _, err := FromBytes(make([]byte, 33)); err == nil {
		t.Fatal("FromBytes accepted bad length")
	}
}

func TestMatrixRank(t *testing.T) {
	// Random square matrices over a huge prime field are full rank with
	// overwhelming probability.
	m, err := RandMatrix(nil, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Rank(); got != 6 {
		t.Fatalf("random 6×6 matrix has rank %d, want 6", got)
	}
	// Duplicate a row: rank drops.
	m[5] = CopyVector(m[0])
	if got := m.Rank(); got != 5 {
		t.Fatalf("matrix with duplicated row has rank %d, want 5", got)
	}
	// Zero matrix.
	z := NewMatrix(3, 4)
	if got := z.Rank(); got != 0 {
		t.Fatalf("zero matrix rank %d, want 0", got)
	}
}

func TestSolve(t *testing.T) {
	// Build a consistent system A·x = b and recover a solution.
	a, err := RandMatrix(nil, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	xTrue, err := RandVector(nil, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := a.MulVec(xTrue)
	if err != nil {
		t.Fatal(err)
	}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	check, err := a.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if !Equal(check[i], b[i]) {
			t.Fatalf("solution does not satisfy row %d", i)
		}
	}
}

func TestSolveInconsistent(t *testing.T) {
	// Two identical rows with different right-hand sides.
	row, err := RandVector(nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := Matrix{CopyVector(row), CopyVector(row)}
	b := []*big.Int{big.NewInt(1), big.NewInt(2)}
	if _, err := Solve(a, b); err == nil {
		t.Fatal("Solve accepted inconsistent system")
	}
}
