package scalar

import (
	"fmt"
	"math/big"
)

// This file implements the integer-lattice scalar decomposition behind
// GLV/GLS endomorphism-accelerated scalar multiplication. Given an
// endomorphism φ acting on a prime-order group as φ(P) = [μ]P, a scalar
// k ∈ Z_mod is rewritten as
//
//	k ≡ a₀ + a₁·μ + … + a_{n−1}·μⁿ⁻¹  (mod mod)
//
// with every |aⱼ| ≈ mod^(1/n), so that [k]P = Σ [aⱼ]φʲ(P) can be
// evaluated with an interleaved multi-scalar ladder whose doubling
// chain is n times shorter than a plain ladder's.
//
// The sub-scalars come from Babai round-off against a basis of the
// relation lattice L = {v ∈ Zⁿ : Σ vⱼ·μʲ ≡ 0 (mod mod)}: the target
// (k, 0, …, 0) is projected onto the basis, the coefficients are
// rounded to integers, and the (short) difference vector is the
// decomposition. Correctness never depends on the basis being reduced —
// any full-rank set of relation vectors yields a valid decomposition —
// only the sub-scalar size does, which the differential tests pin.
//
// Every scalar-multiplication tier in internal/bn254 consumes these
// decompositions the same way, so Decompose is the single point where
// exponent size is halved (GLV, dim 2, G1) or quartered (GLS, dim 4,
// G2):
//
//   - single-point ScalarMult/ScalarBaseMult feed the sub-scalars into
//     one interleaved wNAF ladder;
//   - the Straus multi-exp tier (G1MultiScalarMult and friends) stacks
//     the per-point decompositions into one shared doubling chain;
//   - the Pippenger bucket tier slices the same sub-scalars into signed
//     radix-2^c digits before bucket accumulation.
//
// The size-aware G1MultiExp/G2MultiExp/GTMultiExp dispatchers pick
// between the last two purely by term count (crossover 16 for the
// elliptic groups, 64 for GT); callers never choose a tier directly.
//
// None of this is constant-time, matching the bn254 convention: the
// big.Int arithmetic, the rounding branches and the sizes of the
// sub-scalars all leak through timing. The paper's continual-leakage
// model tolerates bounded leakage per period; deployments needing
// side-channel hardening must not reuse this code.

// Lattice holds a full-rank basis of the GLV/GLS relation lattice for a
// fixed (mod, μ) pair, plus the precomputed cofactors Babai round-off
// needs. Construct with NewLattice; the zero value is not usable.
type Lattice struct {
	mod   *big.Int
	dim   int
	basis [][]*big.Int
	// det is det(basis); cof0[i] is the (i,0) cofactor of the basis
	// matrix, so (basis⁻¹)₀ᵢ = cof0[i]/det and the Babai coefficients
	// for target (k,0,…,0) are round(k·cof0[i]/det).
	det  *big.Int
	cof0 []*big.Int
	// limb holds the fixed-point data for the allocation-free
	// DecomposeInto twin (limb.go); nil/!ok means only the big.Int
	// Decompose is available.
	limb *lattLimbs
}

// NewLattice validates basis as an n×n full-rank set of relation
// vectors for eigenvalue mu modulo mod (every row must satisfy
// Σⱼ basis[i][j]·μʲ ≡ 0 (mod mod)) and precomputes the determinant and
// cofactors used by Decompose. The rows are deep-copied.
func NewLattice(mod, mu *big.Int, basis [][]*big.Int) (*Lattice, error) {
	n := len(basis)
	if n < 2 {
		return nil, fmt.Errorf("scalar: lattice dimension must be ≥ 2, got %d", n)
	}
	if mod.Sign() <= 0 {
		return nil, fmt.Errorf("scalar: lattice modulus must be positive")
	}
	// μ powers for the relation check.
	muPow := make([]*big.Int, n)
	muPow[0] = big.NewInt(1)
	for j := 1; j < n; j++ {
		muPow[j] = new(big.Int).Mul(muPow[j-1], mu)
		muPow[j].Mod(muPow[j], mod)
	}
	rows := make([][]*big.Int, n)
	for i, row := range basis {
		if len(row) != n {
			return nil, fmt.Errorf("scalar: lattice row %d has %d entries, want %d", i, len(row), n)
		}
		rows[i] = make([]*big.Int, n)
		acc := new(big.Int)
		for j, v := range row {
			rows[i][j] = new(big.Int).Set(v)
			acc.Add(acc, new(big.Int).Mul(v, muPow[j]))
		}
		if acc.Mod(acc, mod); acc.Sign() != 0 {
			return nil, fmt.Errorf("scalar: lattice row %d is not a relation vector: Σ vⱼ·μʲ ≢ 0 (mod mod)", i)
		}
	}
	det := determinant(rows)
	if det.Sign() == 0 {
		return nil, fmt.Errorf("scalar: lattice basis is singular")
	}
	cof0 := make([]*big.Int, n)
	for i := 0; i < n; i++ {
		c := determinant(minorMatrix(rows, i, 0))
		if i%2 == 1 {
			c.Neg(c)
		}
		cof0[i] = c
	}
	l := &Lattice{mod: mod, dim: n, basis: rows, det: det, cof0: cof0}
	l.limb = buildLattLimbs(l)
	return l, nil
}

// Dim returns the lattice dimension n (the number of sub-scalars
// Decompose produces).
func (l *Lattice) Dim() int { return l.dim }

// Decompose splits k (reduced mod mod first) into n signed sub-scalars
// (a₀,…,a_{n−1}) with k ≡ Σ aⱼ·μʲ (mod mod), via Babai round-off: the
// closest lattice vector to (k,0,…,0) is subtracted from it. With a
// reduced basis every |aⱼ| is O(mod^(1/n)); the recomposition identity
// holds for any basis. The sub-scalar signs are part of the result —
// callers typically fold them into the base points.
func (l *Lattice) Decompose(k *big.Int) []*big.Int {
	e := new(big.Int).Mod(k, l.mod)
	out := make([]*big.Int, l.dim)
	for j := range out {
		out[j] = new(big.Int)
	}
	out[0].Set(e)
	// cᵢ = round(e·cof0[i]/det); subtract Σᵢ cᵢ·basisᵢ from (e,0,…,0).
	var num, t big.Int
	for i := 0; i < l.dim; i++ {
		num.Mul(e, l.cof0[i])
		ci := roundDiv(&num, l.det)
		if ci.Sign() == 0 {
			continue
		}
		for j := 0; j < l.dim; j++ {
			out[j].Sub(out[j], t.Mul(ci, l.basis[i][j]))
		}
	}
	return out
}

// ReducedBasis2 computes a reduced basis of the 2-dimensional relation
// lattice for (mod, mu) with the classic GLV extended-Euclid balanced
// reduction (Gallant–Lambert–Vanstone 2001, §4): run Euclid on
// (mod, mu), stop at the first remainder below √mod, and take the two
// shortest of the three candidate vectors (rᵢ, −tᵢ) that bracket the
// stopping point. Every returned vector v satisfies v₀ + v₁·μ ≡ 0
// (mod mod) — NewLattice re-verifies this.
func ReducedBasis2(mod, mu *big.Int) ([][]*big.Int, error) {
	m := new(big.Int).Mod(mu, mod)
	if m.Sign() == 0 {
		return nil, fmt.Errorf("scalar: ReducedBasis2: μ ≡ 0 (mod mod)")
	}
	sqrtMod := new(big.Int).Sqrt(mod)
	// Remainder sequence r₂ > r₁ with Bézout t-coefficients: rᵢ = sᵢ·mod + tᵢ·μ.
	r2, r1 := new(big.Int).Set(mod), m
	t2, t1 := new(big.Int), big.NewInt(1)
	for {
		q := new(big.Int).Div(r2, r1)
		r0 := new(big.Int).Sub(r2, new(big.Int).Mul(q, r1))
		t0 := new(big.Int).Sub(t2, new(big.Int).Mul(q, t1))
		if r1.Cmp(sqrtMod) < 0 {
			v1 := []*big.Int{new(big.Int).Set(r1), new(big.Int).Neg(t1)}
			// Second vector: the shorter of the neighbours (r0,−t0), (r2,−t2).
			n0 := normSq(r0, t0)
			n2 := normSq(r2, t2)
			var v2 []*big.Int
			if n0.Cmp(n2) < 0 {
				v2 = []*big.Int{r0, new(big.Int).Neg(t0)}
			} else {
				v2 = []*big.Int{r2, new(big.Int).Neg(t2)}
			}
			return [][]*big.Int{v1, v2}, nil
		}
		if r0.Sign() == 0 {
			return nil, fmt.Errorf("scalar: ReducedBasis2: Euclid terminated before √mod (gcd(mod, μ) ≠ 1?)")
		}
		r2, r1 = r1, r0
		t2, t1 = t1, t0
	}
}

func normSq(a, b *big.Int) *big.Int {
	n := new(big.Int).Mul(a, a)
	return n.Add(n, new(big.Int).Mul(b, b))
}

// roundDiv returns num/den rounded to the nearest integer (ties away
// from zero). Any fixed rounding works for Babai round-off; nearest
// keeps the residual vector — and hence the sub-scalars — shortest.
func roundDiv(num, den *big.Int) *big.Int {
	q, rem := new(big.Int).QuoRem(num, den, new(big.Int))
	twice := rem.Abs(rem)
	twice.Lsh(twice, 1)
	if twice.Cmp(new(big.Int).Abs(den)) >= 0 {
		if (num.Sign() < 0) != (den.Sign() < 0) {
			q.Sub(q, big.NewInt(1))
		} else {
			q.Add(q, big.NewInt(1))
		}
	}
	return q
}

// determinant computes det(m) by Laplace expansion along the first row
// — cubic-ish blowup, fine for the n ≤ 4 lattices used here, and only
// run once at lattice construction.
func determinant(m [][]*big.Int) *big.Int {
	n := len(m)
	if n == 1 {
		return new(big.Int).Set(m[0][0])
	}
	if n == 2 {
		d := new(big.Int).Mul(m[0][0], m[1][1])
		return d.Sub(d, new(big.Int).Mul(m[0][1], m[1][0]))
	}
	det := new(big.Int)
	for j := 0; j < n; j++ {
		if m[0][j].Sign() == 0 {
			continue
		}
		sub := determinant(minorMatrix(m, 0, j))
		sub.Mul(sub, m[0][j])
		if j%2 == 1 {
			sub.Neg(sub)
		}
		det.Add(det, sub)
	}
	return det
}

// minorMatrix returns m with row i and column j removed (rows aliased,
// entries shared — callers must not mutate).
func minorMatrix(m [][]*big.Int, i, j int) [][]*big.Int {
	n := len(m)
	out := make([][]*big.Int, 0, n-1)
	for a := 0; a < n; a++ {
		if a == i {
			continue
		}
		row := make([]*big.Int, 0, n-1)
		for b := 0; b < n; b++ {
			if b == j {
				continue
			}
			row = append(row, m[a][b])
		}
		out = append(out, row)
	}
	return out
}
