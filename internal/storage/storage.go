// Package storage implements secure storage on continually leaky
// devices (the paper's §4.4): values are stored DLR-encrypted on the
// first device while the decryption key lives shared between the two
// devices; every period the key shares are refreshed by the 2-party Ref
// protocol and the stored ciphertexts are re-randomized, so an adversary
// obtaining bounded leakage from each device per period — forever —
// learns nothing about the stored values.
package storage

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/dlr"
	"repro/internal/opcount"
	"repro/internal/params"
)

// Store is a key-value store on two leaky devices.
type Store struct {
	mu sync.Mutex

	pk  *dlr.PublicKey
	p1  *dlr.P1
	p2  *dlr.P2
	ctr *opcount.Counter

	cells  map[string]*dlr.HybridCiphertext
	period uint64
}

// Option configures a Store.
type Option func(*config)

type config struct {
	mode params.Mode
	ctr  *opcount.Counter
}

// WithMode selects the device-P1 memory layout.
func WithMode(m params.Mode) Option { return func(c *config) { c.mode = m } }

// WithCounter attaches an operation counter.
func WithCounter(ctr *opcount.Counter) Option { return func(c *config) { c.ctr = ctr } }

// New creates a store with fresh key material.
func New(rng io.Reader, prm params.Params, opts ...Option) (*Store, error) {
	cfg := config{mode: params.ModeOptimalRate}
	for _, o := range opts {
		o(&cfg)
	}
	pk, p1, p2, err := dlr.Gen(rng, prm, dlr.WithMode(cfg.mode), dlr.WithCounters(cfg.ctr, cfg.ctr))
	if err != nil {
		return nil, fmt.Errorf("storage: generating keys: %w", err)
	}
	return &Store{
		pk: pk, p1: p1, p2: p2, ctr: cfg.ctr,
		cells: make(map[string]*dlr.HybridCiphertext),
	}, nil
}

// Put stores value under key, overwriting any previous value.
func (s *Store) Put(rng io.Reader, key string, value []byte) error {
	ct, err := dlr.EncryptBytes(rng, s.pk, value, s.ctr)
	if err != nil {
		return fmt.Errorf("storage: encrypting %q: %w", key, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cells[key] = ct
	return nil
}

// Get retrieves the value under key by running the 2-party decryption
// protocol between the devices.
func (s *Store) Get(rng io.Reader, key string) ([]byte, error) {
	s.mu.Lock()
	ct, ok := s.cells[key]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("storage: no value under %q", key)
	}
	value, err := dlr.DecryptBytesProtocol(rng, s.p1, s.p2, ct)
	if err != nil {
		return nil, fmt.Errorf("storage: decrypting %q: %w", key, err)
	}
	return value, nil
}

// Delete removes the value under key.
func (s *Store) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.cells, key)
}

// Keys returns the stored keys, sorted.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.cells))
	for k := range s.cells {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// RefreshPeriod ends the current time period: the devices run the
// 2-party key-share refresh, P1 rotates its period key, and every stored
// ciphertext is re-randomized so no component of the system's state
// persists across periods.
func (s *Store) RefreshPeriod(rng io.Reader) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := dlr.Refresh(rng, s.p1, s.p2); err != nil {
		return fmt.Errorf("storage: key refresh: %w", err)
	}
	if err := s.p1.BeginPeriod(rng); err != nil {
		return fmt.Errorf("storage: period rotation: %w", err)
	}
	for k, ct := range s.cells {
		kem, err := ct.KEM.Rerandomize(rng, s.pk, s.ctr)
		if err != nil {
			return fmt.Errorf("storage: re-randomizing %q: %w", k, err)
		}
		s.cells[k] = &dlr.HybridCiphertext{KEM: kem, Nonce: ct.Nonce, Sealed: ct.Sealed}
	}
	s.period++
	return nil
}

// Period returns the number of completed refresh periods.
func (s *Store) Period() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.period
}

// DeviceSecrets exposes the two devices' secret-memory serializations
// for leakage experiments.
func (s *Store) DeviceSecrets() (p1, p2 []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p1.SecretBytes(), s.p2.SecretBytes()
}

// CiphertextBytes returns the stored ciphertext encoding under key (the
// at-rest public memory an adversary sees).
func (s *Store) CiphertextBytes(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ct, ok := s.cells[key]
	if !ok {
		return nil, false
	}
	return ct.Bytes(), true
}
