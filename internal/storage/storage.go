// Package storage implements secure storage on continually leaky
// devices (the paper's §4.4): values are stored DLR-encrypted on the
// first device while the decryption key lives shared between the two
// devices; every period the key shares are refreshed by the 2-party Ref
// protocol and the stored ciphertexts are re-randomized, so an adversary
// obtaining bounded leakage from each device per period — forever —
// learns nothing about the stored values.
//
// The package also provides Striped, the sharded string-keyed map with
// per-stripe locking that both the Store's ciphertext cells and the
// batch-window server's tenant table (internal/server) are built on.
package storage

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/dlr"
	"repro/internal/opcount"
	"repro/internal/params"
)

// Store is a key-value store on two leaky devices. Cell access (Put,
// Delete, Keys, CiphertextBytes) is sharded behind striped locks and
// proceeds concurrently for distinct keys; operations that drive the
// 2-party protocols (Get, RefreshPeriod) serialize on the device state.
type Store struct {
	// protoMu guards the device states p1/p2 and the period counter:
	// the 2-party protocol runs are stateful on both ends (P1's lazy
	// transport tables, P2's share) and must not interleave.
	protoMu sync.Mutex

	pk *dlr.PublicKey
	//dlr:guarded-by protoMu
	p1 *dlr.P1
	//dlr:guarded-by protoMu
	p2  *dlr.P2
	ctr *opcount.Counter

	cells *Striped[*dlr.HybridCiphertext]
	//dlr:guarded-by protoMu
	period uint64
}

// Option configures a Store.
type Option func(*config)

type config struct {
	mode params.Mode
	ctr  *opcount.Counter
}

// WithMode selects the device-P1 memory layout.
func WithMode(m params.Mode) Option { return func(c *config) { c.mode = m } }

// WithCounter attaches an operation counter.
func WithCounter(ctr *opcount.Counter) Option { return func(c *config) { c.ctr = ctr } }

// New creates a store with fresh key material.
func New(rng io.Reader, prm params.Params, opts ...Option) (*Store, error) {
	cfg := config{mode: params.ModeOptimalRate}
	for _, o := range opts {
		o(&cfg)
	}
	pk, p1, p2, err := dlr.Gen(rng, prm, dlr.WithMode(cfg.mode), dlr.WithCounters(cfg.ctr, cfg.ctr))
	if err != nil {
		return nil, fmt.Errorf("storage: generating keys: %w", err)
	}
	return &Store{
		pk: pk, p1: p1, p2: p2, ctr: cfg.ctr,
		cells: NewStriped[*dlr.HybridCiphertext](),
	}, nil
}

// Put stores value under key, overwriting any previous value. A Put
// concurrent with RefreshPeriod may store a ciphertext that misses that
// period's re-randomization pass; this is sound — the ciphertext was
// created inside the new period with fresh randomness, so no component
// of it predates the boundary — and it is re-randomized next period.
func (s *Store) Put(rng io.Reader, key string, value []byte) error {
	ct, err := dlr.EncryptBytes(rng, s.pk, value, s.ctr)
	if err != nil {
		return fmt.Errorf("storage: encrypting %q: %w", key, err)
	}
	s.cells.Put(key, ct)
	return nil
}

// Get retrieves the value under key by running the 2-party decryption
// protocol between the devices.
func (s *Store) Get(rng io.Reader, key string) ([]byte, error) {
	ct, ok := s.cells.Get(key)
	if !ok {
		return nil, fmt.Errorf("storage: no value under %q", key)
	}
	s.protoMu.Lock()
	value, err := dlr.DecryptBytesProtocol(rng, s.p1, s.p2, ct)
	s.protoMu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("storage: decrypting %q: %w", key, err)
	}
	return value, nil
}

// Delete removes the value under key.
func (s *Store) Delete(key string) {
	s.cells.Delete(key)
}

// Keys returns the stored keys, sorted.
func (s *Store) Keys() []string {
	return s.cells.Keys()
}

// RefreshPeriod ends the current time period: the devices run the
// 2-party key-share refresh, P1 rotates its period key, and every stored
// ciphertext is re-randomized so no component of the system's state
// persists across periods.
func (s *Store) RefreshPeriod(rng io.Reader) error {
	s.protoMu.Lock()
	defer s.protoMu.Unlock()
	if _, err := dlr.Refresh(rng, s.p1, s.p2); err != nil {
		return fmt.Errorf("storage: key refresh: %w", err)
	}
	if err := s.p1.BeginPeriod(rng); err != nil {
		return fmt.Errorf("storage: period rotation: %w", err)
	}
	// Re-randomize a snapshot of the cells: each rewrite re-reads the
	// live cell so a concurrent Put is never overwritten with a
	// re-randomization of the value it replaced.
	for _, k := range s.cells.Keys() {
		ct, ok := s.cells.Get(k)
		if !ok {
			continue // deleted concurrently
		}
		kem, err := ct.KEM.Rerandomize(rng, s.pk, s.ctr)
		if err != nil {
			return fmt.Errorf("storage: re-randomizing %q: %w", k, err)
		}
		s.cells.Put(k, &dlr.HybridCiphertext{KEM: kem, Nonce: ct.Nonce, Sealed: ct.Sealed})
	}
	s.period++
	return nil
}

// Period returns the number of completed refresh periods.
func (s *Store) Period() uint64 {
	s.protoMu.Lock()
	defer s.protoMu.Unlock()
	return s.period
}

// DeviceSecrets exposes the two devices' secret-memory serializations
// for leakage experiments.
func (s *Store) DeviceSecrets() (p1, p2 []byte) {
	s.protoMu.Lock()
	defer s.protoMu.Unlock()
	return s.p1.SecretBytes(), s.p2.SecretBytes()
}

// CiphertextBytes returns the stored ciphertext encoding under key (the
// at-rest public memory an adversary sees).
func (s *Store) CiphertextBytes(key string) ([]byte, bool) {
	ct, ok := s.cells.Get(key)
	if !ok {
		return nil, false
	}
	return ct.Bytes(), true
}
