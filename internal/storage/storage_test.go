package storage

import (
	"bytes"
	"crypto/rand"
	"testing"

	"repro/internal/params"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	s, err := New(rand.Reader, params.MustNew(40, 128))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := newStore(t)
	if err := s.Put(rand.Reader, "secret", []byte("launch codes")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(rand.Reader, "secret")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("launch codes")) {
		t.Fatal("stored value corrupted")
	}
}

func TestMissingKey(t *testing.T) {
	s := newStore(t)
	if _, err := s.Get(rand.Reader, "nope"); err == nil {
		t.Fatal("Get on missing key succeeded")
	}
}

func TestOverwriteAndDelete(t *testing.T) {
	s := newStore(t)
	if err := s.Put(rand.Reader, "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(rand.Reader, "k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(rand.Reader, "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2" {
		t.Fatalf("got %q, want v2", got)
	}
	s.Delete("k")
	if _, err := s.Get(rand.Reader, "k"); err == nil {
		t.Fatal("deleted key still readable")
	}
}

func TestRefreshPreservesValues(t *testing.T) {
	s := newStore(t)
	values := map[string][]byte{
		"a": []byte("alpha"),
		"b": []byte("beta"),
	}
	for k, v := range values {
		if err := s.Put(rand.Reader, k, v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := s.RefreshPeriod(rand.Reader); err != nil {
			t.Fatalf("refresh %d: %v", i, err)
		}
	}
	if s.Period() != 3 {
		t.Fatalf("period %d, want 3", s.Period())
	}
	for k, v := range values {
		got, err := s.Get(rand.Reader, k)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, v) {
			t.Fatalf("value %q corrupted after refresh", k)
		}
	}
}

// TestRefreshChangesAllState: after a period refresh, both the device
// secrets and the at-rest ciphertexts look completely different — no
// state component persists for the adversary to accumulate against.
func TestRefreshChangesAllState(t *testing.T) {
	s := newStore(t)
	if err := s.Put(rand.Reader, "k", []byte("value")); err != nil {
		t.Fatal(err)
	}
	p1Before, p2Before := s.DeviceSecrets()
	p1Before = append([]byte(nil), p1Before...)
	p2Before = append([]byte(nil), p2Before...)
	ctBefore, ok := s.CiphertextBytes("k")
	if !ok {
		t.Fatal("missing ciphertext")
	}
	ctBefore = append([]byte(nil), ctBefore...)

	if err := s.RefreshPeriod(rand.Reader); err != nil {
		t.Fatal(err)
	}
	p1After, p2After := s.DeviceSecrets()
	ctAfter, _ := s.CiphertextBytes("k")
	if bytes.Equal(p1Before, p1After) {
		t.Fatal("P1 secret unchanged by refresh")
	}
	if bytes.Equal(p2Before, p2After) {
		t.Fatal("P2 secret unchanged by refresh")
	}
	if bytes.Equal(ctBefore, ctAfter) {
		t.Fatal("stored ciphertext unchanged by refresh")
	}
}

func TestKeysSorted(t *testing.T) {
	s := newStore(t)
	for _, k := range []string{"zeta", "alpha", "mid"} {
		if err := s.Put(rand.Reader, k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	keys := s.Keys()
	if len(keys) != 3 || keys[0] != "alpha" || keys[1] != "mid" || keys[2] != "zeta" {
		t.Fatalf("keys = %v", keys)
	}
}
