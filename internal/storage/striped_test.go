package storage

import (
	"fmt"
	"sync"
	"testing"
)

func TestStripedBasics(t *testing.T) {
	s := NewStriped[int]()
	if _, ok := s.Get("a"); ok {
		t.Fatal("empty map returned a value")
	}
	s.Put("a", 1)
	s.Put("b", 2)
	s.Put("a", 3)
	if v, ok := s.Get("a"); !ok || v != 3 {
		t.Fatalf("Get(a) = %d,%v", v, ok)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	keys := s.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("Keys = %v", keys)
	}
	if v, ok := s.Delete("a"); !ok || v != 3 {
		t.Fatalf("Delete(a) = %d,%v", v, ok)
	}
	if _, ok := s.Get("a"); ok {
		t.Fatal("deleted key still present")
	}
}

func TestStripedPutIfAbsent(t *testing.T) {
	s := NewStriped[string]()
	if v, stored := s.PutIfAbsent("k", "first"); !stored || v != "first" {
		t.Fatalf("first PutIfAbsent = %q,%v", v, stored)
	}
	if v, stored := s.PutIfAbsent("k", "second"); stored || v != "first" {
		t.Fatalf("second PutIfAbsent = %q,%v", v, stored)
	}
}

func TestStripedRange(t *testing.T) {
	s := NewStriped[int]()
	for i := 0; i < 100; i++ {
		s.Put(fmt.Sprintf("k%03d", i), i)
	}
	sum, visited := 0, 0
	s.Range(func(k string, v int) bool {
		sum += v
		visited++
		return true
	})
	if visited != 100 || sum != 4950 {
		t.Fatalf("Range visited %d keys, sum %d", visited, sum)
	}
	// Early termination.
	visited = 0
	s.Range(func(k string, v int) bool {
		visited++
		return visited < 10
	})
	if visited != 10 {
		t.Fatalf("early-terminated Range visited %d", visited)
	}
}

// Hammer distinct and shared keys from many goroutines; run under
// -race (make race-server) this is the striped-locking soundness check.
func TestStripedConcurrent(t *testing.T) {
	s := NewStriped[int]()
	const workers = 16
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				own := fmt.Sprintf("w%d-%d", w, i)
				s.Put(own, i)
				s.Put("shared", i)
				if _, ok := s.Get(own); !ok {
					t.Errorf("lost own key %s", own)
					return
				}
				s.Get("shared")
				if i%3 == 0 {
					s.Delete(own)
				}
				s.PutIfAbsent("shared2", w)
			}
		}(w)
	}
	wg.Wait()
	if _, ok := s.Get("shared"); !ok {
		t.Fatal("shared key missing after hammer")
	}
	want := workers*perWorker - workers*((perWorker+2)/3) + 2
	if got := s.Len(); got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
}
