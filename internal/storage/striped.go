package storage

import (
	"sort"
	"sync"
)

// Striped is a string-keyed map sharded across independently locked
// buckets, so concurrent access to different keys never contends on one
// mutex. The batch-window server keeps its tenant→share states in one
// (thousands of sessions resolve tenants on every request while refresh
// quiesces a single tenant), and Store keeps its ciphertext cells in
// one (Put/Get/Delete of distinct keys proceed in parallel).
//
// The zero value is not usable; construct with NewStriped.
type Striped[V any] struct {
	shards []stripedShard[V]
}

type stripedShard[V any] struct {
	mu sync.RWMutex
	//dlr:guarded-by mu
	m map[string]V
}

// stripedShards is the stripe count. Power of two so the hash folds
// with a mask; 64 stripes keep the per-stripe collision probability low
// for the contention levels the server sees (thousands of concurrent
// sessions over far fewer CPUs).
const stripedShards = 64

// NewStriped returns an empty striped map.
func NewStriped[V any]() *Striped[V] {
	s := &Striped[V]{shards: make([]stripedShard[V], stripedShards)}
	for i := range s.shards {
		s.shards[i].m = make(map[string]V)
	}
	return s
}

// shardOf hashes key to its stripe (FNV-1a folded to the stripe mask).
func (s *Striped[V]) shardOf(key string) *stripedShard[V] {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &s.shards[h&(stripedShards-1)]
}

// Get returns the value under key.
func (s *Striped[V]) Get(key string) (V, bool) {
	sh := s.shardOf(key)
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	return v, ok
}

// Put stores value under key, overwriting any previous value.
func (s *Striped[V]) Put(key string, value V) {
	sh := s.shardOf(key)
	sh.mu.Lock()
	sh.m[key] = value
	sh.mu.Unlock()
}

// PutIfAbsent stores value under key unless the key is already present,
// returning the value now in the map and whether the store happened.
// This is the registration path: two sessions racing to create the same
// tenant must converge on one instance.
func (s *Striped[V]) PutIfAbsent(key string, value V) (V, bool) {
	sh := s.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if old, ok := sh.m[key]; ok {
		return old, false
	}
	sh.m[key] = value
	return value, true
}

// Delete removes the value under key and returns it.
func (s *Striped[V]) Delete(key string) (V, bool) {
	sh := s.shardOf(key)
	sh.mu.Lock()
	v, ok := sh.m[key]
	if ok {
		delete(sh.m, key)
	}
	sh.mu.Unlock()
	return v, ok
}

// Len returns the number of stored keys.
func (s *Striped[V]) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// Keys returns the stored keys, sorted.
func (s *Striped[V]) Keys() []string {
	var out []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k := range sh.m {
			out = append(out, k)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// Range calls f for every key/value pair until f returns false. The
// stripe lock is held during each call; f must not call back into the
// map. Iteration order is unspecified, and pairs stored or deleted
// concurrently may or may not be visited.
func (s *Striped[V]) Range(f func(key string, value V) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, v := range sh.m {
			if !f(k, v) {
				sh.mu.RUnlock()
				return
			}
		}
		sh.mu.RUnlock()
	}
}
