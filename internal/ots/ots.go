// Package ots implements Lamport one-time signatures over SHA-256 — the
// strongly unforgeable one-time signature the BCHK transform (§4.3,
// citing [6]) needs to lift the semantically secure DLRIBE to the
// CCA2-secure DLRCCA2.
//
// A key signs exactly one message: the signer reveals, per digest bit,
// one of two hash preimages committed in the verification key.
package ots

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"io"
)

// digestBits is the number of message-digest bits signed.
const digestBits = 256

// preimageLen is the byte length of each secret preimage.
const preimageLen = 32

// VerifyKeyLen is the encoded verification-key length in bytes.
const VerifyKeyLen = 2 * digestBits * sha256.Size

// SignatureLen is the encoded signature length in bytes.
const SignatureLen = digestBits * preimageLen

// SigningKey is a one-time signing key.
type SigningKey struct {
	//dlr:secret
	pre  [2][digestBits][preimageLen]byte
	vk   VerifyKey
	used bool
}

// VerifyKey is the corresponding public verification key: the hash of
// every preimage.
type VerifyKey struct {
	h [2][digestBits][sha256.Size]byte
}

// Signature reveals one preimage per digest bit.
type Signature struct {
	pre [digestBits][preimageLen]byte
}

// Gen samples a fresh one-time key pair.
func Gen(rng io.Reader) (*SigningKey, *VerifyKey, error) {
	sk := &SigningKey{}
	for b := 0; b < 2; b++ {
		for i := 0; i < digestBits; i++ {
			if _, err := io.ReadFull(rng, sk.pre[b][i][:]); err != nil {
				return nil, nil, fmt.Errorf("ots: sampling preimage: %w", err)
			}
			sk.vk.h[b][i] = sha256.Sum256(sk.pre[b][i][:])
		}
	}
	vk := sk.vk
	return sk, &vk, nil
}

// Sign signs msg. A SigningKey signs at most once; further calls error.
func (sk *SigningKey) Sign(msg []byte) (*Signature, error) {
	if sk.used {
		return nil, fmt.Errorf("ots: one-time key already used")
	}
	sk.used = true
	d := sha256.Sum256(msg)
	var sig Signature
	for i := 0; i < digestBits; i++ {
		bit := (d[i/8] >> (i % 8)) & 1
		sig.pre[i] = sk.pre[bit][i]
	}
	return &sig, nil
}

// Verify reports whether sig is a valid signature of msg under vk.
func (vk *VerifyKey) Verify(msg []byte, sig *Signature) bool {
	if sig == nil {
		return false
	}
	d := sha256.Sum256(msg)
	for i := 0; i < digestBits; i++ {
		bit := (d[i/8] >> (i % 8)) & 1
		h := sha256.Sum256(sig.pre[i][:])
		if !bytes.Equal(h[:], vk.h[bit][i][:]) {
			return false
		}
	}
	return true
}

// Bytes returns the canonical verification-key encoding.
func (vk *VerifyKey) Bytes() []byte {
	out := make([]byte, 0, VerifyKeyLen)
	for b := 0; b < 2; b++ {
		for i := 0; i < digestBits; i++ {
			out = append(out, vk.h[b][i][:]...)
		}
	}
	return out
}

// VerifyKeyFromBytes decodes a verification key.
func VerifyKeyFromBytes(raw []byte) (*VerifyKey, error) {
	if len(raw) != VerifyKeyLen {
		return nil, fmt.Errorf("ots: verification key must be %d bytes, got %d", VerifyKeyLen, len(raw))
	}
	vk := &VerifyKey{}
	off := 0
	for b := 0; b < 2; b++ {
		for i := 0; i < digestBits; i++ {
			copy(vk.h[b][i][:], raw[off:off+sha256.Size])
			off += sha256.Size
		}
	}
	return vk, nil
}

// Bytes returns the canonical signature encoding.
func (s *Signature) Bytes() []byte {
	out := make([]byte, 0, SignatureLen)
	for i := 0; i < digestBits; i++ {
		out = append(out, s.pre[i][:]...)
	}
	return out
}

// SignatureFromBytes decodes a signature.
func SignatureFromBytes(raw []byte) (*Signature, error) {
	if len(raw) != SignatureLen {
		return nil, fmt.Errorf("ots: signature must be %d bytes, got %d", SignatureLen, len(raw))
	}
	s := &Signature{}
	for i := 0; i < digestBits; i++ {
		copy(s.pre[i][:], raw[i*preimageLen:(i+1)*preimageLen])
	}
	return s, nil
}

// Fingerprint returns a short identity string for a verification key —
// the "identity" the CHK transform encrypts to.
func (vk *VerifyKey) Fingerprint() string {
	d := sha256.Sum256(vk.Bytes())
	return fmt.Sprintf("vk:%x", d[:16])
}
