package ots

import (
	"crypto/rand"
	"testing"
)

func TestSignVerify(t *testing.T) {
	sk, vk, err := Gen(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("the quick brown fox")
	sig, err := sk.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if !vk.Verify(msg, sig) {
		t.Fatal("valid signature rejected")
	}
}

func TestRejectsWrongMessage(t *testing.T) {
	sk, vk, _ := Gen(rand.Reader)
	sig, _ := sk.Sign([]byte("message one"))
	if vk.Verify([]byte("message two"), sig) {
		t.Fatal("signature accepted for different message")
	}
}

func TestRejectsTamperedSignature(t *testing.T) {
	sk, vk, _ := Gen(rand.Reader)
	msg := []byte("msg")
	sig, _ := sk.Sign(msg)
	sig.pre[17][3] ^= 1
	if vk.Verify(msg, sig) {
		t.Fatal("tampered signature accepted")
	}
}

func TestRejectsWrongKey(t *testing.T) {
	sk, _, _ := Gen(rand.Reader)
	_, vk2, _ := Gen(rand.Reader)
	msg := []byte("msg")
	sig, _ := sk.Sign(msg)
	if vk2.Verify(msg, sig) {
		t.Fatal("signature accepted under wrong key")
	}
}

func TestOneTimeEnforced(t *testing.T) {
	sk, _, _ := Gen(rand.Reader)
	if _, err := sk.Sign([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if _, err := sk.Sign([]byte("second")); err == nil {
		t.Fatal("key signed twice")
	}
}

func TestNilSignatureRejected(t *testing.T) {
	_, vk, _ := Gen(rand.Reader)
	if vk.Verify([]byte("m"), nil) {
		t.Fatal("nil signature accepted")
	}
}

func TestVerifyKeyBytesRoundTrip(t *testing.T) {
	sk, vk, _ := Gen(rand.Reader)
	enc := vk.Bytes()
	if len(enc) != VerifyKeyLen {
		t.Fatalf("vk encoding %d bytes, want %d", len(enc), VerifyKeyLen)
	}
	back, err := VerifyKeyFromBytes(enc)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("round trip")
	sig, _ := sk.Sign(msg)
	if !back.Verify(msg, sig) {
		t.Fatal("decoded vk rejects valid signature")
	}
	if _, err := VerifyKeyFromBytes(enc[:10]); err == nil {
		t.Fatal("accepted truncated vk")
	}
}

func TestSignatureBytesRoundTrip(t *testing.T) {
	sk, vk, _ := Gen(rand.Reader)
	msg := []byte("sig round trip")
	sig, _ := sk.Sign(msg)
	enc := sig.Bytes()
	if len(enc) != SignatureLen {
		t.Fatalf("sig encoding %d bytes, want %d", len(enc), SignatureLen)
	}
	back, err := SignatureFromBytes(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !vk.Verify(msg, back) {
		t.Fatal("decoded signature rejected")
	}
	if _, err := SignatureFromBytes(enc[:100]); err == nil {
		t.Fatal("accepted truncated signature")
	}
}

func TestFingerprintStable(t *testing.T) {
	_, vk, _ := Gen(rand.Reader)
	if vk.Fingerprint() != vk.Fingerprint() {
		t.Fatal("fingerprint unstable")
	}
	_, vk2, _ := Gen(rand.Reader)
	if vk.Fingerprint() == vk2.Fingerprint() {
		t.Fatal("fingerprint collision")
	}
}
