package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPutBasic(t *testing.T) {
	c := New(4)
	k := Key{Tenant: "t1", Epoch: 0, Kind: "dlr.batch"}
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, "v0")
	v, ok := c.Get(k)
	if !ok || v.(string) != "v0" {
		t.Fatalf("got (%v,%v), want (v0,true)", v, ok)
	}
	// Replacing under the same key keeps Len at 1.
	c.Put(k, "v1")
	if c.Len() != 1 {
		t.Fatalf("Len=%d after replace, want 1", c.Len())
	}
	if v, _ := c.Get(k); v.(string) != "v1" {
		t.Fatalf("replace not visible: got %v", v)
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 {
		t.Fatalf("stats %+v, want 2 hits / 1 miss", s)
	}
}

// TestLRUEviction fills past capacity and checks the least recently
// USED (not least recently inserted) entry is the one dropped.
func TestLRUEviction(t *testing.T) {
	c := New(3)
	ks := make([]Key, 4)
	for i := range ks {
		ks[i] = Key{Tenant: "t", Epoch: uint64(i), Kind: "k"}
	}
	c.Put(ks[0], 0)
	c.Put(ks[1], 1)
	c.Put(ks[2], 2)
	// Touch ks[0] so ks[1] becomes the LRU entry.
	if _, ok := c.Get(ks[0]); !ok {
		t.Fatal("ks[0] should be cached")
	}
	c.Put(ks[3], 3)
	if _, ok := c.Get(ks[1]); ok {
		t.Fatal("ks[1] should have been evicted (LRU)")
	}
	for _, k := range []Key{ks[0], ks[2], ks[3]} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%+v should have survived eviction", k)
		}
	}
	if s := c.Stats(); s.Evictions != 1 || s.Len != 3 {
		t.Fatalf("stats %+v, want 1 eviction and Len 3", s)
	}
}

// TestEpochKeysNeverCollide is the cache-layer half of the rotation
// guarantee: entries written under epoch e are unreachable from epoch
// e+1 even when nobody invalidates.
func TestEpochKeysNeverCollide(t *testing.T) {
	c := New(8)
	pre := Key{Tenant: "t", Epoch: 7, Kind: "dlr.batch"}
	c.Put(pre, "pre-refresh table")
	post := pre
	post.Epoch = 8
	if _, ok := c.Get(post); ok {
		t.Fatal("post-refresh key must not hit a pre-refresh entry")
	}
}

func TestInvalidateTenant(t *testing.T) {
	c := New(16)
	for e := uint64(0); e < 3; e++ {
		c.Put(Key{Tenant: "a", Epoch: e, Kind: "k1"}, e)
		c.Put(Key{Tenant: "a", Epoch: e, Kind: "k2"}, e)
		c.Put(Key{Tenant: "b", Epoch: e, Kind: "k1"}, e)
	}
	if n := c.InvalidateTenant("a"); n != 6 {
		t.Fatalf("invalidated %d entries of tenant a, want 6", n)
	}
	if c.Len() != 3 {
		t.Fatalf("Len=%d after invalidation, want 3 (tenant b untouched)", c.Len())
	}
	for e := uint64(0); e < 3; e++ {
		if _, ok := c.Get(Key{Tenant: "b", Epoch: e, Kind: "k1"}); !ok {
			t.Fatalf("tenant b epoch %d lost to tenant a's invalidation", e)
		}
	}
}

// TestInvalidateTenantBelow is the pipelined-rotation contract:
// committing at epoch e drops everything below e but leaves both the
// new-current epoch e and any prewarmed future epochs untouched.
func TestInvalidateTenantBelow(t *testing.T) {
	c := New(16)
	for e := uint64(0); e < 4; e++ {
		c.Put(Key{Tenant: "a", Epoch: e, Kind: "k"}, e)
		c.Put(Key{Tenant: "b", Epoch: e, Kind: "k"}, e)
	}
	if n := c.InvalidateTenantBelow("a", 2); n != 2 {
		t.Fatalf("dropped %d entries below epoch 2, want 2", n)
	}
	for e := uint64(0); e < 2; e++ {
		if _, ok := c.Get(Key{Tenant: "a", Epoch: e, Kind: "k"}); ok {
			t.Fatalf("tenant a epoch %d survived InvalidateTenantBelow(2)", e)
		}
	}
	for e := uint64(2); e < 4; e++ {
		if _, ok := c.Get(Key{Tenant: "a", Epoch: e, Kind: "k"}); !ok {
			t.Fatalf("tenant a epoch %d (>= cutoff) must survive", e)
		}
	}
	for e := uint64(0); e < 4; e++ {
		if _, ok := c.Get(Key{Tenant: "b", Epoch: e, Kind: "k"}); !ok {
			t.Fatalf("tenant b epoch %d lost to tenant a's partial invalidation", e)
		}
	}
}

// TestFutureEpochPrewarm pins the admission semantics the rotation
// pipeline relies on: entries Put under a future epoch are invisible
// to current-epoch lookups, survive an InvalidateTenantBelow at
// commit, and are hit by the first post-flip lookup.
func TestFutureEpochPrewarm(t *testing.T) {
	c := New(8)
	cur := Key{Tenant: "t", Epoch: 3, Kind: "dlr.batch"}
	next := cur
	next.Epoch = 4
	c.Put(cur, "current tables")
	c.Put(next, "prewarmed tables")
	// Pre-commit: serving at epoch 3 can only see epoch-3 entries.
	if v, ok := c.Get(cur); !ok || v.(string) != "current tables" {
		t.Fatal("current-epoch entry must still hit during prewarm")
	}
	// Commit: epoch advances to 4, retiring epochs dropped.
	if n := c.InvalidateTenantBelow("t", 4); n != 1 {
		t.Fatalf("commit dropped %d entries, want 1 (the epoch-3 entry)", n)
	}
	v, ok := c.Get(next)
	if !ok || v.(string) != "prewarmed tables" {
		t.Fatal("first post-flip lookup must hit the prewarmed entry")
	}
	if _, ok := c.Get(cur); ok {
		t.Fatal("retired epoch-3 entry must be gone after commit")
	}
}

// TestTenantIndexConsistency cross-checks the per-tenant secondary
// index against the primary index through a Put/evict/invalidate
// churn: every key reachable via Get must be counted by exactly one
// tenant, and invalidation totals must match Len deltas.
func TestTenantIndexConsistency(t *testing.T) {
	c := New(8)
	for i := 0; i < 64; i++ {
		tenant := fmt.Sprintf("t%d", i%3)
		c.Put(Key{Tenant: tenant, Epoch: uint64(i % 4), Kind: fmt.Sprintf("k%d", i%2)}, i)
	}
	total := 0
	for i := 0; i < 3; i++ {
		total += c.InvalidateTenant(fmt.Sprintf("t%d", i))
	}
	if got := c.Len(); got != 0 {
		t.Fatalf("Len=%d after invalidating every tenant, want 0", got)
	}
	if total != 8 {
		t.Fatalf("invalidation dropped %d entries total, want 8 (capacity)", total)
	}
	// The tenant index must not retain ghosts: re-inserting after a
	// full purge behaves like a fresh cache.
	k := Key{Tenant: "t0", Epoch: 9, Kind: "k"}
	c.Put(k, "fresh")
	if v, ok := c.Get(k); !ok || v.(string) != "fresh" {
		t.Fatal("cache unusable after full invalidation churn")
	}
}

func TestZeroCapacityDisables(t *testing.T) {
	c := New(0)
	k := Key{Tenant: "t", Kind: "k"}
	c.Put(k, "v")
	if _, ok := c.Get(k); ok {
		t.Fatal("zero-capacity cache must never hit")
	}
	if c.Len() != 0 {
		t.Fatal("zero-capacity cache must stay empty")
	}
}

// TestConcurrentMixedOps hammers Get/Put/InvalidateTenant/Stats from
// many goroutines; run under -race this is the cache's thread-safety
// proof.
func TestConcurrentMixedOps(t *testing.T) {
	c := New(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", g%3)
			for i := 0; i < 400; i++ {
				k := Key{Tenant: tenant, Epoch: uint64(i % 5), Kind: "k"}
				switch i % 7 {
				case 0:
					c.Put(k, i)
				case 3:
					c.InvalidateTenant(tenant)
				case 6:
					c.InvalidateTenantBelow(tenant, uint64(i%5))
				case 5:
					_ = c.Stats()
					_ = c.Len()
				default:
					if v, ok := c.Get(k); ok {
						_ = v.(int) // values must remain well-typed
					}
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.Len > 32 {
		t.Fatalf("capacity breached under concurrency: Len=%d", s.Len)
	}
}
