// Package cache provides a capacity-bounded, rotation-aware LRU for
// pairing precomputation artifacts: bn254.PairingTable sets, transport
// tables, and fixed-base comb tables are expensive to build (κ+1 cold
// Miller loops for a transport table) but deterministic functions of a
// share state, so they can be reused across requests — until the next
// proactive refresh replaces that share state.
//
// # Why keys carry an epoch
//
// The continual-leakage model makes stale precomputation a soundness
// bug, not just a staleness bug: a table derived from a pre-refresh
// share is a function of secret material the protocol has already
// rotated away, and replaying it after the rotation both decrypts
// against the wrong key (correctness) and extends the lifetime of
// supposedly-retired secret-derived state (leakage hygiene — the same
// reason the refresh paths call Zeroize on retired key material).
//
// The design therefore does NOT rely on eager invalidation for
// correctness. Every key carries the owner's rotation epoch, and the
// owner bumps its epoch on every operation that replaces share state
// (refresh, period begin, share rebuild). A post-refresh lookup can
// never hit a pre-refresh entry because the keys differ. Eager
// invalidation (InvalidateTenant, called from the refresh paths) is
// purely memory hygiene: it drops the now-unreachable old-epoch
// entries immediately instead of waiting for LRU pressure to evict
// them.
//
// # Future-epoch prewarming
//
// The epoch keying also gives prewarming for free: a refresh pipeline
// may Put entries under (tenant, epoch+1, kind) while the owner is
// still serving at epoch. Those entries are unaddressable until the
// owner actually commits the rotation — every lookup is keyed by the
// owner's *current* epoch counter, and the counter only advances at
// commit — so admission of future-epoch entries can never leak
// next-epoch tables into pre-commit serving. At commit the owner
// calls InvalidateTenantBelow(tenant, newEpoch), which drops the
// retiring epochs' entries while leaving the prewarmed next-epoch
// entries in place for the first post-flip lookup to hit.
//
// # Concurrency and capacity
//
// All methods are safe for concurrent use. Capacity bounds the entry
// count, not bytes: entries are few and large (a transport table is
// κ+1 line tables), so count is the natural unit. Eviction is
// strict LRU. The zero capacity disables caching entirely (every Get
// misses, Put is a no-op), which keeps call sites branch-free.
package cache

import (
	"container/list"
	"sync"
)

// Key identifies one cached artifact. Tenant scopes entries to one
// key-share owner (one P1 instance, one logical customer), Epoch is
// that owner's rotation epoch at build time, and Kind separates
// artifact families under the same (tenant, epoch) — e.g.
// "dlr.transport" vs "dlr.batch".
type Key struct {
	Tenant string
	Epoch  uint64
	Kind   string
}

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Len       int
	Capacity  int
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type entry struct {
	key Key
	val any
}

// Cache is a thread-safe LRU keyed by Key. The zero value is unusable;
// use New.
type Cache struct {
	mu       sync.Mutex
	capacity int
	//dlr:guarded-by mu
	ll *list.List // front = most recently used
	//dlr:guarded-by mu
	index map[Key]*list.Element
	// byTenant is a secondary index from tenant to that tenant's live
	// keys, so per-rotation invalidation touches only the rotating
	// tenant's entries instead of walking the whole LRU list (which is
	// O(total entries across all tenants) — at fleet scale a single
	// tenant's rotation must not pay for everyone else's cache).
	//dlr:guarded-by mu
	byTenant map[string]map[Key]*list.Element
	//dlr:guarded-by mu
	hits uint64
	//dlr:guarded-by mu
	misses uint64
	//dlr:guarded-by mu
	evictions uint64
}

// New returns a cache holding at most capacity entries. capacity <= 0
// disables caching: Get always misses and Put is a no-op.
func New(capacity int) *Cache {
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		index:    make(map[Key]*list.Element),
		byTenant: make(map[string]map[Key]*list.Element),
	}
}

// removeLocked drops el from the list and both indices. Callers hold
// c.mu.
//
//dlr:locked mu
func (c *Cache) removeLocked(el *list.Element) {
	k := el.Value.(*entry).key
	c.ll.Remove(el)
	delete(c.index, k)
	if keys := c.byTenant[k.Tenant]; keys != nil {
		delete(keys, k)
		if len(keys) == 0 {
			delete(c.byTenant, k.Tenant)
		}
	}
}

// Get returns the value under k and marks it most recently used.
func (c *Cache) Get(k Key) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Put inserts or replaces the value under k, evicting the least
// recently used entries if the capacity is exceeded. Concurrent
// builders racing to Put the same key are benign: the artifacts are
// deterministic per (tenant, epoch, kind), so either build is valid
// and the later Put simply replaces an equal value.
func (c *Cache) Put(k Key, v any) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[k]; ok {
		el.Value.(*entry).val = v
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&entry{key: k, val: v})
	c.index[k] = el
	keys := c.byTenant[k.Tenant]
	if keys == nil {
		keys = make(map[Key]*list.Element)
		c.byTenant[k.Tenant] = keys
	}
	keys[k] = el
	for c.ll.Len() > c.capacity {
		c.removeLocked(c.ll.Back())
		c.evictions++
	}
}

// InvalidateTenant removes every entry belonging to tenant, across
// all epochs and kinds, and returns how many were dropped. Refresh
// paths call this after bumping their epoch: correctness never
// depends on it (the new epoch can't address old entries), it just
// reclaims the dead entries' memory immediately.
func (c *Cache) InvalidateTenant(tenant string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for _, el := range c.byTenant[tenant] {
		c.removeLocked(el)
		dropped++
	}
	return dropped
}

// InvalidateTenantBelow removes tenant's entries whose Epoch is
// strictly below epoch and returns how many were dropped. The
// pipelined refresh path uses this at commit time: next-epoch entries
// prewarmed under the future (tenant, epoch+1) key during staging must
// survive the flip — that warmth is the whole point of the pipeline —
// while everything from the retiring epochs is dropped eagerly, same
// hygiene contract as InvalidateTenant.
func (c *Cache) InvalidateTenantBelow(tenant string, epoch uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for k, el := range c.byTenant[tenant] {
		if k.Epoch < epoch {
			c.removeLocked(el)
			dropped++
		}
	}
	return dropped
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the effectiveness counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Len:       c.ll.Len(),
		Capacity:  c.capacity,
	}
}
