package dlr

import (
	"crypto/sha256"
	"fmt"
	"io"
	"math/big"

	"repro/internal/bn254"
	"repro/internal/cache"
	"repro/internal/device"
	"repro/internal/hpske"
	"repro/internal/params"
	"repro/internal/scalar"
	"repro/internal/wire"
)

// Pipelined refresh (zero-stall rotation).
//
// The cold rotation path — RunRef followed by BeginPeriod — serializes
// the entire share replacement against serving: while it runs, the
// tenant's window loop is quiesced, and the first post-rotation batch
// then pays the full table rebuild ((ℓ+1)(κ+1) transport Miller
// precomputations plus κ+1 batch tables), so p99 spikes at every epoch
// boundary. Since the leakage bounds of Theorem 4.1 are per-period,
// production rotates continually, and the spike recurs at every
// cadence tick.
//
// The pipelined path splits the rotation in two:
//
//	StageRefresh  — read-only on P1's share state, runs CONCURRENTLY
//	                with serving: samples the next share coordinates
//	                a'ᵢ and the next period key σ', produces the next
//	                encrypted share under σ', pre-encodes the wire
//	                payload, and prewarms ℓ of the ℓ+1 next-epoch
//	                transport tables (the encrypted-Φ table needs P2's
//	                reply) with one flattened parallel build.
//	CommitRefresh — the only serialized part: one round trip to P2
//	                (the same 2ℓ+1-ciphertext frame as RunRef), the
//	                Φ'-dependent leftovers, and an atomic flip of P1's
//	                state to the staged next epoch.
//
// The commit round trip also returns u' = Π f'ᵢ^s'ᵢ / f — P2's batch
// combination over the NEW share, still encrypted under the OLD period
// key σ. That one extra ciphertext lets P1 derive the next epoch's
// batch tables before the flip: the mask they encode,
// e(A, g2^(−α)), is epoch-independent (refresh re-shares the same
// master secret), so tables folded with the old σ over u' remain
// correct for every post-flip batch. The first post-rotation window
// therefore starts with BOTH table families warm — no rebuild, no
// round trip, no p99 spike.
//
// Leakage accounting: the staged state is exactly the material the
// cold path holds transiently inside RunRef/BeginPeriod (the next
// period key, the new share ciphertexts, and — in ModeBasic — the new
// plaintext coordinates), held across the staging window instead of
// across one protocol run. The zeroize-on-commit guarantees are
// unchanged: the outgoing σ and (on P2) the outgoing s are wiped in
// place at the flip, and an abandoned staging wipes σ' (Abandon). The
// prewarmed tables are functions of public ciphertexts and of u' —
// data that transits the public channel anyway — so they add nothing
// to the adversary's view beyond what the cold path already exposes.

// StagedRefresh is the output of StageRefresh: everything the next
// epoch needs that can be computed without P2. It is single-use;
// CommitRefresh consumes it (or Abandon discards it, wiping the staged
// key material).
type StagedRefresh struct {
	// epoch is P1's rotation epoch at staging time; CommitRefresh
	// refuses a staged state whose base epoch is no longer current.
	epoch uint64

	// payload is the pre-encoded kindRefP1 frame: (fᵢ, f'ᵢ) pairs plus
	// fΦ, identical in shape to the cold protocol's ref1 frame.
	payload []byte

	// nextKey is the next period's Π_comm key σ', installed at commit.
	//
	//dlr:secret
	nextKey hpske.Key

	// nextEncSK1 is the next epoch's encrypted share: the staged a'ᵢ
	// encrypted under σ' (ModeOptimalRate re-encrypts the wire f'ᵢ
	// from σ to σ' without decryption; ModeBasic encrypts the retained
	// plaintexts directly).
	nextEncSK1 []*hpske.Ciphertext[*bn254.G2]

	// newCoins retains the plaintext a'ᵢ in ModeBasic only (nil
	// otherwise), mirroring RunRef's newCoins.
	//
	//dlr:secret
	newCoins []*bn254.G2

	// transTabs are the prewarmed transport tables for nextEncSK1 — ℓ
	// of the next epoch's ℓ+1 tables; CommitRefresh appends the
	// encrypted-Φ' table once P2's reply provides it.
	transTabs []*hpske.TransportTable

	consumed bool
}

// Abandon discards a staged refresh that will not be committed (e.g.
// the commit round trip failed, or a competing rotation landed first),
// wiping the staged period key. Safe on nil and after commit.
//
//dlr:zeroize nextKey
func (st *StagedRefresh) Abandon() {
	if st == nil || st.consumed {
		//dlrlint:ignore zeroize-paths a nil or already-consumed staging holds no key; the consumed flag is only set after the wipe below
		return
	}
	st.consumed = true
	st.nextKey.Zeroize()
	st.nextKey = nil
	st.newCoins = nil
	st.nextEncSK1 = nil
	st.transTabs = nil
	st.payload = nil
}

// StageRefresh prepares the next rotation without mutating P1 and
// without contacting P2, so it can run concurrently with serving (the
// same read-only contract RunDecBatch honors: share state is only
// mutated by commit/rotation operations, which the caller must
// serialize against both staging and serving — the server runs them on
// the tenant's window loop). The returned state is committed with
// CommitRefresh or discarded with Abandon.
func (p *P1) StageRefresh(rng io.Reader) (*StagedRefresh, error) {
	st := &StagedRefresh{epoch: p.epoch.Load()}
	nextKey, err := p.ssG2.GenKey(rng)
	if err != nil {
		return nil, err
	}
	st.nextKey = nextKey

	fPrimes := make([]*hpske.Ciphertext[*bn254.G2], p.prm.Ell)
	st.nextEncSK1 = make([]*hpske.Ciphertext[*bn254.G2], p.prm.Ell)
	if p.mode == params.ModeBasic {
		st.newCoins = make([]*bn254.G2, p.prm.Ell)
	}
	for i := range fPrimes {
		aPrime, err := p.g2.Rand(rng)
		if err != nil {
			st.Abandon()
			return nil, fmt.Errorf("dlr: sampling a'_%d: %w", i, err)
		}
		// f'ᵢ = Enc_σ(a'ᵢ) goes on the wire at commit (P2 combines it
		// under the old key).
		ct, err := p.ssG2.Encrypt(rng, p.skcomm, aPrime)
		if err != nil {
			st.Abandon()
			return nil, err
		}
		fPrimes[i] = ct
		switch p.mode {
		case params.ModeBasic:
			st.newCoins[i] = aPrime
			st.nextEncSK1[i], err = p.ssG2.Encrypt(rng, nextKey, aPrime)
		default: // params.ModeOptimalRate
			// Key-switch σ → σ' without decryption; the plaintext a'ᵢ
			// goes out of scope here, as in RunRef.
			st.nextEncSK1[i], err = p.ssG2.ReEncrypt(rng, p.skcomm, nextKey, ct)
		}
		if err != nil {
			st.Abandon()
			return nil, err
		}
	}

	// Pre-encode the commit frame: (fᵢ, f'ᵢ) pairs then fΦ, the ref1
	// shape handleRefP1 (and handleRef1) expects.
	cts := make([]*hpske.Ciphertext[*bn254.G2], 0, 2*p.prm.Ell+1)
	for i := 0; i < p.prm.Ell; i++ {
		cts = append(cts, p.encSK1[i], fPrimes[i])
	}
	cts = append(cts, p.encPhi)
	st.payload, err = p.encodeG2List(cts)
	if err != nil {
		st.Abandon()
		return nil, err
	}

	// Prewarm the next epoch's transport tables (all but the
	// Φ'-dependent one) in one flattened parallel build. These are
	// public-data precomputations over ciphertexts that will transit
	// the public channel at commit.
	st.transTabs = hpske.PrecomputeTransportMany(st.nextEncSK1)
	return st, nil
}

// CommitRefresh finishes a staged rotation: one round trip on ch runs
// P2's half of the refresh (which also returns u', the new share's
// batch combination under the old key), then P1 atomically flips to
// the staged next epoch with both table families already warm. The
// epoch advances by exactly one; the old period key is wiped in place.
// On error P1's state is unchanged and st remains uncommitted (the
// caller should Abandon it — though note that a failure AFTER the send
// may leave P2 already rotated, the same partial-failure window the
// cold protocol has; crash-safe rotation is ROADMAP item 2).
//
//dlr:zeroize skcomm
func (p *P1) CommitRefresh(rng io.Reader, ch device.Channel, st *StagedRefresh) error {
	if st == nil || st.consumed {
		return fmt.Errorf("dlr: commit of a nil or consumed staged refresh")
	}
	if now := p.epoch.Load(); st.epoch != now {
		return fmt.Errorf("dlr: staged refresh is stale (staged at epoch %d, now %d)", st.epoch, now)
	}
	if err := ch.Send(wire.Msg{Kind: kindRefP1, Payload: st.payload}); err != nil {
		return err
	}
	reply, err := ch.Recv()
	if err != nil {
		return err
	}
	if reply.Kind != kindRefP2 {
		return fmt.Errorf("dlr: expected %s, got %s", kindRefP2, reply.Kind)
	}
	fs, err := hpske.DecodeList(p.ssG2, reply.Payload, 2)
	if err != nil {
		return err
	}
	f, uPrime := fs[0], fs[1]

	// Next-epoch batch tables from u'. u' is encrypted under the OLD σ
	// (P2 built it before its own flip), so the key fold must happen
	// before σ is wiped below. The mask the tables encode,
	// e(A, g2^(−α)), does not change across refresh, so they serve
	// every post-flip batch.
	batchTabs := p.batchTables(uPrime)
	uEnc, err := hpske.EncodeList(p.ssG2, []*hpske.Ciphertext[*bn254.G2]{uPrime})
	if err != nil {
		return err
	}

	var encPhi *hpske.Ciphertext[*bn254.G2]
	switch p.mode {
	case params.ModeBasic:
		phiPrime, err := p.ssG2.Decrypt(p.skcomm, f)
		if err != nil {
			return fmt.Errorf("dlr: decrypting Φ': %w", err)
		}
		p.sk1.Coins = st.newCoins
		p.sk1.Payload = phiPrime
		encPhi, err = p.ssG2.Encrypt(rng, st.nextKey, phiPrime)
		if err != nil {
			return err
		}
	default: // params.ModeOptimalRate
		encPhi, err = p.ssG2.ReEncrypt(rng, p.skcomm, st.nextKey, f)
		if err != nil {
			return err
		}
	}
	// Complete the transport set with the one Φ'-dependent table.
	transTabs := append(append(make([]*hpske.TransportTable, 0, p.prm.Ell+1),
		st.transTabs...), hpske.PrecomputeTransport(encPhi))

	// Atomic flip. The outgoing period key is wiped in place (the
	// paper's erasure at the end of refresh); the epoch advances ONCE —
	// the pipelined rotation replaces both the share refresh and the
	// period rotation in a single share-state replacement.
	p.skcomm.Zeroize()
	p.skcomm = st.nextKey
	p.encSK1 = st.nextEncSK1
	p.encPhi = encPhi
	p.period++
	p.epoch.Add(1)
	p.transTabs = transTabs
	p.batchTabs.Store(&batchSession{tabs: batchTabs})
	st.consumed = true
	st.nextKey = nil
	st.newCoins = nil

	if p.tableCache != nil {
		// Publish the prewarmed sets under the NEW epoch, then drop only
		// the retiring epochs: InvalidateTenant here would throw away the
		// warmth the pipeline just built.
		epoch := p.epoch.Load()
		p.tableCache.Put(cache.Key{Tenant: p.tenant, Epoch: epoch, Kind: "dlr.transport"}, transTabs)
		p.tableCache.Put(cache.Key{Tenant: p.tenant, Epoch: epoch, Kind: "dlr.batch"},
			&batchTableEntry{digest: sha256.Sum256(uEnc), tabs: batchTabs})
		p.tableCache.InvalidateTenantBelow(p.tenant, epoch)
	}
	return nil
}

// handleRefP1 executes P2's side of the pipelined refresh: the same
// share replacement as handleRef1 — sample s', return
// f = Π f'ᵢ^s'ᵢ·fᵢ^(−sᵢ)·fΦ, install s' — plus the next epoch's batch
// combination u' = Π f'ᵢ^s'ᵢ / f, computed over the NEW share but
// under the OLD period key, so P1 can prewarm its batch tables from
// the same round trip. Both devices' erasures are unchanged.
//
//dlr:zeroize sk2
func (p *P2) handleRefP1(msg wire.Msg) (wire.Msg, error) {
	cts, codec, err := hpske.DecodeListCodec(p.ssG2, msg.Payload, 2*p.prm.Ell+1)
	if err != nil {
		return wire.Msg{}, err
	}
	sPrime, err := scalar.RandVector(nil, p.prm.Ell)
	if err != nil {
		return wire.Msg{}, err
	}
	bases := make([]*hpske.Ciphertext[*bn254.G2], 0, 2*p.prm.Ell)
	exps := make([]*big.Int, 0, 2*p.prm.Ell)
	for i := 0; i < p.prm.Ell; i++ {
		bases = append(bases, cts[2*i+1], cts[2*i])
		exps = append(exps, sPrime[i], new(big.Int).Neg(p.sk2[i]))
	}
	acc, err := p.ssG2.LinComb(bases, exps)
	if err != nil {
		return wire.Msg{}, err
	}
	fPhi := cts[2*p.prm.Ell]
	f, err := p.ssG2.Mul(acc, fPhi)
	if err != nil {
		return wire.Msg{}, err
	}
	// u' = Π f'ᵢ^s'ᵢ / f: payload-side this is Π a'ᵢ^s'ᵢ / Φ' =
	// g2^(−α), the epoch-independent decryption mask, as a Π_comm
	// ciphertext under the old σ. Only the new scalars s' and public
	// ciphertexts enter — the outgoing share contributes nothing.
	basesU := make([]*hpske.Ciphertext[*bn254.G2], 0, p.prm.Ell+1)
	expsU := make([]*big.Int, 0, p.prm.Ell+1)
	for i := 0; i < p.prm.Ell; i++ {
		basesU = append(basesU, cts[2*i+1])
		expsU = append(expsU, sPrime[i])
	}
	basesU = append(basesU, f)
	expsU = append(expsU, big.NewInt(-1))
	uPrime, err := p.ssG2.LinComb(basesU, expsU)
	if err != nil {
		return wire.Msg{}, err
	}
	// Echo the request's codec (see handleRef1).
	payload, err := hpske.EncodeListCodec(p.ssG2, []*hpske.Ciphertext[*bn254.G2]{f, uPrime}, codec)
	if err != nil {
		return wire.Msg{}, err
	}
	// Erase the old share and install the new one, exactly as in
	// handleRef1.
	p.sk2.Zeroize()
	p.sk2 = hpske.Key(sPrime)
	p.period++
	return wire.Msg{Kind: kindRefP2, Payload: payload}, nil
}

// RefreshPipelined runs the full two-phase refresh in-process: stage
// (concurrent-safe, here sequential) then commit over a fresh channel
// pair. The in-process twin of the server's warm rotation handover.
func RefreshPipelined(rng io.Reader, p1 *P1, p2 *P2) (*Stats, error) {
	st, err := p1.StageRefresh(rng)
	if err != nil {
		return nil, err
	}
	r1, r2, err := device.Run(
		func(ch device.Channel) error { return p1.CommitRefresh(rng, ch, st) },
		p2.Serve,
	)
	if err != nil {
		st.Abandon()
		return nil, err
	}
	return &Stats{BytesP1: r1.BytesSent(), BytesP2: r2.BytesSent()}, nil
}
