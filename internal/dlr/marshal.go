package dlr

import (
	"fmt"

	"repro/internal/bn254"
	"repro/internal/group"
	"repro/internal/hpske"
	"repro/internal/opcount"
	"repro/internal/params"
	"repro/internal/pss"
	"repro/internal/scalar"
	"repro/internal/wire"
)

// This file serializes key material and device states so that the cmd/
// tools can generate keys once and run the devices as separate
// processes.

// MarshalPublicKey encodes a public key with its parameters.
func MarshalPublicKey(pk *PublicKey) []byte {
	var b wire.Builder
	b.AppendUint32(uint32(pk.Params.N))
	b.AppendUint32(uint32(pk.Params.Lambda))
	b.AppendRaw(pk.E.Bytes())
	return b.Bytes()
}

// UnmarshalPublicKey decodes a public key.
func UnmarshalPublicKey(raw []byte) (*PublicKey, error) {
	p := wire.NewParser(raw)
	n, err := p.Uint32()
	if err != nil {
		return nil, err
	}
	lambda, err := p.Uint32()
	if err != nil {
		return nil, err
	}
	prm, err := params.New(int(n), int(lambda))
	if err != nil {
		return nil, err
	}
	eRaw, err := p.Raw(bn254.GTBytes)
	if err != nil {
		return nil, err
	}
	e, err := new(bn254.GT).SetBytes(eRaw)
	if err != nil {
		return nil, err
	}
	if !p.Done() {
		return nil, fmt.Errorf("dlr: trailing bytes in public key")
	}
	return &PublicKey{E: e, Params: prm}, nil
}

// Marshal encodes P1's full state (mode, period key, plaintext share in
// ModeBasic, encrypted share).
func (p *P1) Marshal() ([]byte, error) {
	var b wire.Builder
	b.AppendUint32(uint32(p.mode))
	b.AppendBytes(p.skcomm.Bytes())
	if p.mode == params.ModeBasic {
		// Compressed since the wire-codec change; UnmarshalP1 still
		// accepts states written with raw 128-byte points.
		sh := make([]byte, 0, (p.prm.Ell+1)*bn254.G2BytesCompressed)
		for _, a := range p.sk1.Coins {
			sh = a.AppendCompressed(sh)
		}
		sh = p.sk1.Payload.AppendCompressed(sh)
		b.AppendBytes(sh)
	} else {
		b.AppendBytes(nil)
	}
	encList := append([]*hpske.Ciphertext[*bn254.G2](nil), p.encSK1...)
	encList = append(encList, p.encPhi)
	enc, err := hpske.EncodeList(p.ssG2, encList)
	if err != nil {
		return nil, err
	}
	b.AppendBytes(enc)
	return b.Bytes(), nil
}

// UnmarshalP1 decodes a P1 state for the given public key. ctr may be
// nil.
func UnmarshalP1(pk *PublicKey, raw []byte, ctr *opcount.Counter) (*P1, error) {
	p := wire.NewParser(raw)
	modeU, err := p.Uint32()
	if err != nil {
		return nil, err
	}
	mode := params.Mode(modeU)
	skRaw, err := p.Bytes()
	if err != nil {
		return nil, err
	}
	skcomm, err := scalar.FromBytes(skRaw)
	if err != nil {
		return nil, err
	}
	if len(skcomm) != pk.Params.Kappa {
		return nil, fmt.Errorf("dlr: skcomm has %d entries, want κ = %d", len(skcomm), pk.Params.Kappa)
	}
	shRaw, err := p.Bytes()
	if err != nil {
		return nil, err
	}
	encRaw, err := p.Bytes()
	if err != nil {
		return nil, err
	}
	if !p.Done() {
		return nil, fmt.Errorf("dlr: trailing bytes in P1 state")
	}

	// Build a skeleton P1 and fill it.
	skel, err := newP1Skeleton(pk, mode, ctr)
	if err != nil {
		return nil, err
	}
	skel.skcomm = hpske.Key(skcomm)

	if mode == params.ModeBasic {
		// Accept both point encodings, distinguished by length: 65-byte
		// compressed (current Marshal) and 128-byte raw (legacy states).
		var el int
		decode := func(b []byte) (*bn254.G2, error) { return new(bn254.G2).SetBytesCompressed(b) }
		switch len(shRaw) {
		case (pk.Params.Ell + 1) * bn254.G2BytesCompressed:
			el = bn254.G2BytesCompressed
		case (pk.Params.Ell + 1) * bn254.G2Bytes:
			el = bn254.G2Bytes
			decode = func(b []byte) (*bn254.G2, error) { return new(bn254.G2).SetBytes(b) }
		default:
			return nil, fmt.Errorf("dlr: plaintext share is %d bytes, want %d (compressed) or %d (legacy)",
				len(shRaw), (pk.Params.Ell+1)*bn254.G2BytesCompressed, (pk.Params.Ell+1)*bn254.G2Bytes)
		}
		coins := make([]*bn254.G2, pk.Params.Ell)
		for i := range coins {
			pt, err := decode(shRaw[i*el : (i+1)*el])
			if err != nil {
				return nil, err
			}
			coins[i] = pt
		}
		phi, err := decode(shRaw[pk.Params.Ell*el:])
		if err != nil {
			return nil, err
		}
		skel.sk1 = &pss.Share1{Coins: coins, Payload: phi}
	} else if len(shRaw) != 0 {
		return nil, fmt.Errorf("dlr: unexpected plaintext share in optimal-rate state")
	}

	encList, err := hpske.DecodeList(skel.ssG2, encRaw, pk.Params.Ell+1)
	if err != nil {
		return nil, err
	}
	skel.encSK1 = encList[:pk.Params.Ell]
	skel.encPhi = encList[pk.Params.Ell]
	return skel, nil
}

// newP1Skeleton builds a P1 with scheme instances but no key material.
func newP1Skeleton(pk *PublicKey, mode params.Mode, ctr *opcount.Counter) (*P1, error) {
	if mode != params.ModeBasic && mode != params.ModeOptimalRate {
		return nil, fmt.Errorf("dlr: unknown mode %d", int(mode))
	}
	g2 := group.G2{Ctr: ctr}
	gt := group.GT{Ctr: ctr}
	ssG2, err := hpske.New[*bn254.G2](g2, pk.Params.Kappa)
	if err != nil {
		return nil, err
	}
	ssGT, err := hpske.New[*bn254.GT](gt, pk.Params.Kappa)
	if err != nil {
		return nil, err
	}
	return &P1{
		pk: pk, prm: pk.Params, mode: mode, ctr: ctr,
		ssG2: ssG2, ssGT: ssGT, g2: g2, gt: gt,
	}, nil
}

// Marshal encodes P2's state.
func (p *P2) Marshal() []byte {
	var b wire.Builder
	b.AppendBytes(p.sk2.Bytes())
	return b.Bytes()
}

// UnmarshalP2 decodes a P2 state for the given public key.
func UnmarshalP2(pk *PublicKey, raw []byte, ctr *opcount.Counter) (*P2, error) {
	p := wire.NewParser(raw)
	skRaw, err := p.Bytes()
	if err != nil {
		return nil, err
	}
	sk, err := scalar.FromBytes(skRaw)
	if err != nil {
		return nil, err
	}
	if len(sk) != pk.Params.Ell {
		return nil, fmt.Errorf("dlr: sk2 has %d entries, want ℓ = %d", len(sk), pk.Params.Ell)
	}
	if !p.Done() {
		return nil, fmt.Errorf("dlr: trailing bytes in P2 state")
	}
	return newP2(pk, pk.Params, ctr, sk)
}
