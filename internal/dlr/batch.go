package dlr

import (
	"crypto/sha256"
	"fmt"
	"math/big"

	"repro/internal/bn254"
	"repro/internal/cache"
	"repro/internal/device"
	"repro/internal/hpske"
	"repro/internal/opcount"
	"repro/internal/par"
	"repro/internal/wire"
)

// Batched decryption (throughput tier).
//
// The per-request protocol (RunDec) transports ℓ+1 encrypted-share
// ciphertexts to GT for every ciphertext — (ℓ+1)(κ+1) pairings plus a
// round trip per request. The batched variant observes that P2's
// contribution does not depend on the request at all: the combination
//
//	u = Π fᵢ^sᵢ / fΦ
//
// is a Π_comm ciphertext (in G2) of Π aᵢ^sᵢ / Φ = g2^(−α), fixed until
// the next refresh. So one round trip fetches u, and every request in
// the batch is then served locally:
//
//	mⱼ = Bⱼ · e(Aⱼ, g2^(−α)) = Bⱼ · pk^(−tⱼ).
//
// P1 never decrypts u (that would put the masked master secret in its
// leakage-exposed memory). Instead it folds its Π_comm key σ into the
// pairing product:
//
//	e(Aⱼ, g2^(−α)) = e(Aⱼ, payload(u)) · Π_t e(Aⱼ, coin_t(u)^(−σ_t)),
//
// κ+1 pairings whose G2 sides are fixed across the batch. Those sides
// are turned into precomputed line tables once per batch, and each
// request replays them through bn254.MultiPairMixed — all κ+1 Miller
// replays accumulate into one Fp12 with a single shared final
// exponentiation. Requests fan out across CPUs (par.ForEach), so Miller
// loops from different requests pipeline through the worker pool that
// cmd/dlrbench drives.
//
// Amortized per request the batch path costs κ+1 table replays and one
// final exponentiation, against the per-request protocol's
// (ℓ+1)(κ+1) pairings (each with its own final exponentiation) plus
// P2's (κ+1)-coordinate LinComb and a full round trip. Experiment E13
// measures the resulting throughput curve.

// batchSession is an epoch's installed batch decryption state: once
// the κ+1 pairing tables exist in-struct, every further batch of the
// epoch is served with zero round trips and zero table builds. The
// session is dropped on every rotation (noteRotation) and installed
// either by the first cold batch of an epoch or — prewarmed — by
// CommitRefresh, which derives the next epoch's tables from the
// refresh round trip itself.
type batchSession struct {
	tabs []*bn254.PairingTable
}

// BatchWarm reports whether a batch decryption session is installed
// for the current epoch — i.e. whether the next RunDecBatch will be
// served entirely locally, without touching the device channel.
func (p *P1) BatchWarm() bool { return p.batchTabs.Load() != nil }

// RunDecBatch executes P1's side of the batched decryption protocol for
// the ciphertexts cs and returns the recovered messages in order. The
// first batch of an epoch pays one round trip on ch to fetch P2's
// combination u and installs the session tables; every later batch of
// the epoch is served entirely locally (ch is not touched — steady
// state needs no device round trips at all).
func (p *P1) RunDecBatch(ch device.Channel, cs []*Ciphertext) ([]*bn254.GT, error) {
	for i, c := range cs {
		if c == nil || c.A == nil || c.B == nil {
			return nil, fmt.Errorf("dlr: nil ciphertext at index %d", i)
		}
	}
	if len(cs) == 0 {
		return nil, nil
	}

	var tabs []*bn254.PairingTable
	if sess := p.batchTabs.Load(); sess != nil {
		tabs = sess.tabs
	} else {
		// Round trip: ship the encrypted share, receive the combination u.
		cts := make([]*hpske.Ciphertext[*bn254.G2], 0, p.prm.Ell+1)
		cts = append(cts, p.encSK1...)
		cts = append(cts, p.encPhi)
		payload, err := p.encodeG2List(cts)
		if err != nil {
			return nil, err
		}
		if err := ch.Send(wire.Msg{Kind: kindDecB1, Payload: payload}); err != nil {
			return nil, err
		}
		reply, err := ch.Recv()
		if err != nil {
			return nil, err
		}
		if reply.Kind != kindDecB2 {
			return nil, fmt.Errorf("dlr: expected %s, got %s", kindDecB2, reply.Kind)
		}
		us, err := hpske.DecodeList(p.ssG2, reply.Payload, 1)
		if err != nil {
			return nil, err
		}
		tabs = p.batchTablesCached(us[0], reply.Payload)
		p.batchTabs.Store(&batchSession{tabs: tabs})
	}

	out := make([]*bn254.GT, len(cs))
	par.ForEach(len(cs), func(j int) {
		out[j] = decryptWithTables(cs[j], tabs)
	})
	p.ctr.Add(opcount.Pairing, int64(len(cs)*len(tabs)))
	p.ctr.Add(opcount.GTMul, int64(len(cs)))
	return out, nil
}

// batchTableEntry is the cached form of a batch's pairing tables. The
// digest pins the encoded u the tables were built from: P2's
// combination is a deterministic function of both devices' share state
// (LinComb draws no randomness), so within one epoch u is fixed — but
// the digest check makes the cache self-correcting if the two devices'
// states ever drift without P1 noticing a rotation. A mismatch is
// treated as a miss and the entry is rebuilt from the live u.
type batchTableEntry struct {
	digest [sha256.Size]byte
	tabs   []*bn254.PairingTable
}

// batchTablesCached wraps batchTables with the attached table cache
// (when present) under (tenant, epoch, "dlr.batch"): the first batch
// of an epoch builds and publishes the κ+1 tables, every later batch
// replays them for free. enc is the wire encoding of u, hashed into
// the validation digest. Without a cache this is exactly batchTables.
func (p *P1) batchTablesCached(u *hpske.Ciphertext[*bn254.G2], enc []byte) []*bn254.PairingTable {
	if p.tableCache == nil {
		return p.batchTables(u)
	}
	key := cache.Key{Tenant: p.tenant, Epoch: p.epoch.Load(), Kind: "dlr.batch"}
	digest := sha256.Sum256(enc)
	if v, ok := p.tableCache.Get(key); ok {
		if e := v.(*batchTableEntry); e.digest == digest {
			return e.tabs
		}
	}
	tabs := p.batchTables(u)
	p.tableCache.Put(key, &batchTableEntry{digest: digest, tabs: tabs})
	return tabs
}

// batchTables builds the fixed G2 side of the batch pairings: line
// tables for coin_t(u)^(−σ_t) (κ tables, the key fold) and payload(u).
// The exponentiations run through p.g2 so the op counter sees them.
func (p *P1) batchTables(u *hpske.Ciphertext[*bn254.G2]) []*bn254.PairingTable {
	sides := make([]*bn254.G2, 0, len(u.Coins)+1)
	for t, b := range u.Coins {
		e := new(big.Int).Neg(p.skcomm[t])
		sides = append(sides, p.g2.Exp(b, e))
	}
	sides = append(sides, u.Payload)
	tabs := make([]*bn254.PairingTable, len(sides))
	par.ForEach(len(sides), func(i int) {
		tabs[i] = bn254.NewPairingTable(sides[i])
	})
	return tabs
}

// decryptWithTables serves one request against the batch tables:
// m = B · Π_t e(A, T_t), one shared final exponentiation.
func decryptWithTables(c *Ciphertext, tabs []*bn254.PairingTable) *bn254.GT {
	tps := make([]*bn254.G1, len(tabs))
	for i := range tps {
		tps[i] = c.A
	}
	mask := bn254.MultiPairMixed(nil, nil, tps, tabs)
	return new(bn254.GT).Mul(c.B, mask)
}

// handleDecB1 executes P2's side of the batched decryption protocol:
// reply with u = Π fᵢ^sᵢ / fΦ, one coordinate-wise linear combination
// with the division folded into a −1 exponent.
func (p *P2) handleDecB1(msg wire.Msg) (wire.Msg, error) {
	cts, codec, err := hpske.DecodeListCodec(p.ssG2, msg.Payload, p.prm.Ell+1)
	if err != nil {
		return wire.Msg{}, err
	}
	bases := make([]*hpske.Ciphertext[*bn254.G2], 0, p.prm.Ell+1)
	exps := make([]*big.Int, 0, p.prm.Ell+1)
	for i := 0; i < p.prm.Ell; i++ {
		bases = append(bases, cts[i])
		exps = append(exps, p.sk2[i])
	}
	bases = append(bases, cts[p.prm.Ell])
	exps = append(exps, big.NewInt(-1))
	u, err := p.ssG2.LinComb(bases, exps)
	if err != nil {
		return wire.Msg{}, err
	}
	// Echo the request's codec so legacy and compressed peers both
	// decode the reply.
	payload, err := hpske.EncodeListCodec(p.ssG2, []*hpske.Ciphertext[*bn254.G2]{u}, codec)
	if err != nil {
		return wire.Msg{}, err
	}
	return wire.Msg{Kind: kindDecB2, Payload: payload}, nil
}

// DecryptBatch runs the batched 2-party decryption protocol in-process
// and returns the messages together with transcript statistics. When
// P1 already holds the epoch's batch session, the protocol degenerates
// to a purely local computation: no channel pair is spun up (P2's
// Serve expects exactly one request frame, which a warm batch never
// sends) and the transcript is empty.
func DecryptBatch(p1 *P1, p2 *P2, cs []*Ciphertext) ([]*bn254.GT, *Stats, error) {
	if len(cs) == 0 {
		return nil, &Stats{}, nil
	}
	if p1.BatchWarm() {
		ms, err := p1.RunDecBatch(nil, cs)
		if err != nil {
			return nil, nil, err
		}
		return ms, &Stats{}, nil
	}
	var ms []*bn254.GT
	r1, r2, err := device.Run(
		func(ch device.Channel) error {
			var err error
			ms, err = p1.RunDecBatch(ch, cs)
			return err
		},
		p2.Serve,
	)
	if err != nil {
		return nil, nil, err
	}
	return ms, &Stats{BytesP1: r1.BytesSent(), BytesP2: r2.BytesSent()}, nil
}
