package dlr

import (
	"crypto/rand"
	"fmt"
	"sync"
	"testing"

	"repro/internal/bn254"
	"repro/internal/cache"
	"repro/internal/params"
)

// encryptN returns n fresh ciphertexts with their plaintexts.
func encryptN(t *testing.T, pk *PublicKey, n int) ([]*Ciphertext, []*bn254.GT) {
	t.Helper()
	cs := make([]*Ciphertext, n)
	ms := make([]*bn254.GT, n)
	for i := range cs {
		m, err := RandMessage(rand.Reader, pk)
		if err != nil {
			t.Fatal(err)
		}
		ct, err := Encrypt(rand.Reader, pk, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		cs[i], ms[i] = ct, m
	}
	return cs, ms
}

func checkBatch(t *testing.T, got, want []*bn254.GT) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("batch returned %d messages, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("message %d wrong after cached batch decrypt", i)
		}
	}
}

// TestBatchCacheWarmHit runs two batches in the same epoch and checks
// the second one replays the cold batch's tables instead of rebuilding:
// within one P1 instance via the installed batch session (no further
// cache traffic at all, no channel traffic), and across instances —
// the restart scenario the cache exists for — via a cache hit from a
// second P1 restored from the first one's serialized state.
func TestBatchCacheWarmHit(t *testing.T) {
	pk, p1, p2 := genTest(t, params.ModeOptimalRate)
	c := cache.New(8)
	p1.AttachCache(c, "tenant-a")

	cs, ms := encryptN(t, pk, 3)
	got, _, err := DecryptBatch(p1, p2, cs)
	if err != nil {
		t.Fatal(err)
	}
	checkBatch(t, got, ms)
	if s := c.Stats(); s.Hits != 0 {
		t.Fatalf("cold batch reported %d hits", s.Hits)
	}
	missesAfterCold := c.Stats().Misses

	// Same instance: the installed session serves the second batch with
	// no rebuild — no new misses, and no round trip either.
	got, stats, err := DecryptBatch(p1, p2, cs[:2])
	if err != nil {
		t.Fatal(err)
	}
	checkBatch(t, got, ms[:2])
	if s := c.Stats(); s.Misses != missesAfterCold {
		t.Fatalf("warm batch rebuilt tables: stats %+v", s)
	}
	if stats.BytesP1 != 0 {
		t.Fatal("warm batch of the same instance still paid a round trip")
	}

	// Cross-instance: a P1 restored from serialized state (same share,
	// same tenant, fresh epoch counter starting at 0 — matching the
	// original's unrotated epoch) must hit the published entry: the
	// digest validates because u is a deterministic function of the
	// devices' share state.
	raw, err := p1.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	p1b, err := UnmarshalP1(pk, raw, nil)
	if err != nil {
		t.Fatal(err)
	}
	p1b.AttachCache(c, "tenant-a")
	hitsBefore := c.Stats().Hits
	got, _, err = DecryptBatch(p1b, p2, cs)
	if err != nil {
		t.Fatal(err)
	}
	checkBatch(t, got, ms)
	if s := c.Stats(); s.Hits == hitsBefore {
		t.Fatalf("restored instance missed the published tables: stats %+v", s)
	}
}

// TestBatchCacheRefreshInvalidates is the rotation-soundness
// regression test: a decrypt after a refresh must never replay a
// pre-refresh table — neither via the cache (epoch changed AND the
// tenant was invalidated) nor via any in-struct pointer — and must
// still decrypt correctly under the rotated shares.
func TestBatchCacheRefreshInvalidates(t *testing.T) {
	for _, mode := range []params.Mode{params.ModeBasic, params.ModeOptimalRate} {
		t.Run(mode.String(), func(t *testing.T) {
			pk, p1, p2 := genTest(t, mode)
			c := cache.New(8)
			p1.AttachCache(c, "tenant-a")

			cs, ms := encryptN(t, pk, 2)
			got, _, err := DecryptBatch(p1, p2, cs)
			if err != nil {
				t.Fatal(err)
			}
			checkBatch(t, got, ms)
			epochBefore := p1.Epoch()
			if c.Len() == 0 {
				t.Fatal("cold batch published nothing")
			}

			if _, err := Refresh(rand.Reader, p1, p2); err != nil {
				t.Fatalf("Refresh: %v", err)
			}
			if p1.Epoch() == epochBefore {
				t.Fatal("refresh did not bump the rotation epoch")
			}
			if c.Len() != 0 {
				t.Fatalf("refresh left %d stale entries in the cache", c.Len())
			}

			// The post-refresh batch must build fresh tables (a miss, not
			// a hit) and still decrypt correctly.
			hitsBefore := c.Stats().Hits
			got, _, err = DecryptBatch(p1, p2, cs)
			if err != nil {
				t.Fatal(err)
			}
			checkBatch(t, got, ms)
			if c.Stats().Hits != hitsBefore {
				t.Fatal("post-refresh batch hit the cache — replayed a pre-refresh table")
			}
		})
	}
}

// TestBatchCachePeriodRotationInvalidates checks the same guarantee
// for BeginPeriod, which rotates skcomm (and hence the batch tables'
// key fold) without running the refresh protocol.
func TestBatchCachePeriodRotationInvalidates(t *testing.T) {
	pk, p1, p2 := genTest(t, params.ModeOptimalRate)
	c := cache.New(8)
	p1.AttachCache(c, "tenant-a")

	cs, ms := encryptN(t, pk, 2)
	got, _, err := DecryptBatch(p1, p2, cs)
	if err != nil {
		t.Fatal(err)
	}
	checkBatch(t, got, ms)
	epochBefore := p1.Epoch()

	if err := p1.BeginPeriod(rand.Reader); err != nil {
		t.Fatal(err)
	}
	if p1.Epoch() == epochBefore {
		t.Fatal("BeginPeriod did not bump the rotation epoch")
	}
	hitsBefore := c.Stats().Hits
	got, _, err = DecryptBatch(p1, p2, cs)
	if err != nil {
		t.Fatal(err)
	}
	checkBatch(t, got, ms)
	if c.Stats().Hits != hitsBefore {
		t.Fatal("post-rotation batch hit the cache")
	}
}

// TestBatchCacheMultiTenantConcurrent shares one cache between several
// tenants' P1 instances decrypting and refreshing concurrently; under
// -race this is the integration-level thread-safety check, and each
// tenant's decrypts must stay correct throughout.
func TestBatchCacheMultiTenantConcurrent(t *testing.T) {
	const tenants = 3
	c := cache.New(2 * tenants)

	type tenantState struct {
		pk *PublicKey
		p1 *P1
		p2 *P2
	}
	sts := make([]*tenantState, tenants)
	for i := range sts {
		pk, p1, p2 := genTest(t, params.ModeOptimalRate)
		p1.AttachCache(c, fmt.Sprintf("tenant-%d", i))
		sts[i] = &tenantState{pk: pk, p1: p1, p2: p2}
	}

	var wg sync.WaitGroup
	errs := make(chan error, tenants)
	for i, st := range sts {
		wg.Add(1)
		go func(i int, st *tenantState) {
			defer wg.Done()
			cs, ms := encryptN(t, st.pk, 2)
			for round := 0; round < 3; round++ {
				got, _, err := DecryptBatch(st.p1, st.p2, cs)
				if err != nil {
					errs <- fmt.Errorf("tenant %d round %d: %w", i, round, err)
					return
				}
				for j := range ms {
					if !got[j].Equal(ms[j]) {
						errs <- fmt.Errorf("tenant %d round %d: wrong message %d", i, round, j)
						return
					}
				}
				if round == 1 {
					if _, err := Refresh(rand.Reader, st.p1, st.p2); err != nil {
						errs <- fmt.Errorf("tenant %d refresh: %w", i, err)
						return
					}
				}
			}
		}(i, st)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
