package dlr

import (
	"crypto/rand"
	"testing"

	"repro/internal/params"
)

func TestPublicKeyMarshalRoundTrip(t *testing.T) {
	pk, _, _ := genTest(t, params.ModeOptimalRate)
	back, err := UnmarshalPublicKey(MarshalPublicKey(pk))
	if err != nil {
		t.Fatal(err)
	}
	if !back.E.Equal(pk.E) || back.Params != pk.Params {
		t.Fatal("public key round trip failed")
	}
	if _, err := UnmarshalPublicKey(MarshalPublicKey(pk)[:8]); err == nil {
		t.Fatal("accepted truncated public key")
	}
}

func TestStateMarshalRoundTrip(t *testing.T) {
	for _, mode := range []params.Mode{params.ModeBasic, params.ModeOptimalRate} {
		t.Run(mode.String(), func(t *testing.T) {
			pk, p1, p2 := genTest(t, mode)
			raw1, err := p1.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			raw2 := p2.Marshal()

			r1, err := UnmarshalP1(pk, raw1, nil)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := UnmarshalP2(pk, raw2, nil)
			if err != nil {
				t.Fatal(err)
			}

			// The restored devices must decrypt and refresh correctly.
			m, _ := RandMessage(rand.Reader, pk)
			ct, _ := Encrypt(rand.Reader, pk, m, nil)
			got, _, err := Decrypt(rand.Reader, r1, r2, ct)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(m) {
				t.Fatal("restored devices decrypt incorrectly")
			}
			if _, err := Refresh(rand.Reader, r1, r2); err != nil {
				t.Fatal(err)
			}
			got, _, err = Decrypt(rand.Reader, r1, r2, ct)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(m) {
				t.Fatal("restored devices broken after refresh")
			}
		})
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	pk, p1, p2 := genTest(t, params.ModeOptimalRate)
	raw1, err := p1.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalP1(pk, raw1[:len(raw1)/2], nil); err == nil {
		t.Fatal("accepted truncated P1 state")
	}
	raw2 := p2.Marshal()
	if _, err := UnmarshalP2(pk, raw2[:4], nil); err == nil {
		t.Fatal("accepted truncated P2 state")
	}
	// Wrong parameters: pk with different λ cannot load this state.
	otherPK := &PublicKey{E: pk.E, Params: params.MustNew(40, 2048)}
	if _, err := UnmarshalP2(otherPK, raw2, nil); err == nil {
		t.Fatal("accepted P2 state under mismatched parameters")
	}
}
