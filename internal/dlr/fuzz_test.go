package dlr

import (
	"bytes"
	"crypto/rand"
	"testing"

	"repro/internal/bn254"
	"repro/internal/params"
)

// FuzzCiphertextFromBytes drives the dual-codec ciphertext decoder with
// arbitrary bytes: malformed inputs (wrong length, non-curve A,
// non-field B) must be rejected with an error — never a panic — and any
// input the decoder accepts must round-trip through BOTH encodings
// (canonical and compact) back to the same ciphertext. This is the
// server's KindDec parse boundary: every byte here arrives straight off
// a client connection.
func FuzzCiphertextFromBytes(f *testing.F) {
	pk, _, _, err := Gen(rand.Reader, params.MustNew(40, 128))
	if err != nil {
		f.Fatal(err)
	}
	m, err := RandMessage(rand.Reader, pk)
	if err != nil {
		f.Fatal(err)
	}
	ct, err := Encrypt(rand.Reader, pk, m, nil)
	if err != nil {
		f.Fatal(err)
	}
	raw, comp := ct.Bytes(), ct.BytesCompressed()
	f.Add(raw)
	f.Add(comp)
	// Truncations and a corrupted A seed the rejection paths.
	f.Add(raw[:len(raw)-1])
	f.Add(comp[:bn254.G1BytesCompressed])
	mut := append([]byte(nil), raw...)
	mut[1] ^= 0xff
	f.Add(mut)

	f.Fuzz(func(t *testing.T, b []byte) {
		ct, err := CiphertextFromBytes(b)
		if err != nil {
			return // rejected without panicking: the property we fuzz for
		}
		canon := ct.Bytes()
		ct2, err := CiphertextFromBytes(canon)
		if err != nil {
			t.Fatalf("re-decoding canonical encoding of accepted input: %v", err)
		}
		if !bytes.Equal(ct2.Bytes(), canon) {
			t.Fatalf("canonical round trip not stable:\n in %x\nout %x", canon, ct2.Bytes())
		}
		ct3, err := CiphertextFromBytes(ct.BytesCompressed())
		if err != nil {
			t.Fatalf("re-decoding compact encoding of accepted input: %v", err)
		}
		if !bytes.Equal(ct3.Bytes(), canon) {
			t.Fatalf("compact round trip diverged from canonical:\n in %x\nout %x", canon, ct3.Bytes())
		}
	})
}
