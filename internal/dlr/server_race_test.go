// Refresh-during-window race tests through the batch-window server
// path: concurrent clients decrypt across share rotations and the
// assertions pin the two invariants the server's quiescing protocol
// promises — no request is lost or misanswered, and no pre-rotation
// pairing table is replayed after the epoch advances.
//
// This file is an external test package (dlr_test) because it imports
// internal/server, which itself imports internal/dlr.
package dlr_test

import (
	"crypto/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/bn254"
	"repro/internal/cache"
	"repro/internal/dlr"
	"repro/internal/params"
	"repro/internal/server"
)

func serverRaceSetup(t *testing.T) (*dlr.PublicKey, *dlr.P1, *dlr.P2) {
	t.Helper()
	pk, p1, p2, err := dlr.Gen(rand.Reader, params.MustNew(40, 128))
	if err != nil {
		t.Fatal(err)
	}
	return pk, p1, p2
}

// TestServerRefreshEpochInvalidatesTables alternates batches of
// concurrent client decrypts with share refreshes and asserts, via the
// epoch-keyed table cache, that no post-rotation window can replay a
// pre-rotation table: each rotation bumps the epoch and drops every
// older entry, so the retired epoch's keys become unaddressable AND
// absent. The two rotation paths differ in what the first post-rotation
// window then does — the cold path rebuilds (fresh misses), the
// pipelined path finds prewarmed tables (no new misses at all) — and
// both expectations are pinned here.
func TestServerRefreshEpochInvalidatesTables(t *testing.T) {
	for _, tc := range []struct {
		name      string
		cold      bool
		epochStep uint64
	}{
		// Cold: +1 share refresh, +1 period rotation, tables rebuilt by
		// the first post-rotation window.
		{name: "cold", cold: true, epochStep: 2},
		// Pipelined: one fused bump, tables prewarmed at commit.
		{name: "pipelined", cold: false, epochStep: 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			testServerRefreshEpochInvalidatesTables(t, tc.cold, tc.epochStep)
		})
	}
}

func testServerRefreshEpochInvalidatesTables(t *testing.T, cold bool, epochStep uint64) {
	pk, p1, p2 := serverRaceSetup(t)
	tabCache := cache.New(16)
	p1.AttachCache(tabCache, "alice")

	s := server.New(server.Config{BatchSize: 4, Window: 5 * time.Millisecond, ColdRefresh: cold})
	if err := s.RegisterLocal("alice", p1, p2); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()
	defer func() {
		s.Shutdown()
		if err := <-serveDone; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	c, err := server.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const perRound, rounds = 4, 3
	decryptRound := func() {
		t.Helper()
		msgs := make([]*bn254.GT, perRound)
		cts := make([]*dlr.Ciphertext, perRound)
		for i := range cts {
			if msgs[i], err = dlr.RandMessage(rand.Reader, pk); err != nil {
				t.Fatal(err)
			}
			if cts[i], err = dlr.Encrypt(rand.Reader, pk, msgs[i], nil); err != nil {
				t.Fatal(err)
			}
		}
		var wg sync.WaitGroup
		for i := 0; i < perRound; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				got, err := c.Decrypt("alice", cts[i])
				if err != nil {
					t.Errorf("decrypt %d: %v", i, err)
					return
				}
				if !got.Equal(msgs[i]) {
					t.Errorf("decrypt %d: wrong plaintext", i)
				}
			}(i)
		}
		wg.Wait()
	}

	epoch, ok := s.TenantEpoch("alice")
	if !ok {
		t.Fatal("tenant not registered")
	}
	for r := 0; r < rounds; r++ {
		decryptRound()
		oldEpoch := epoch
		newEpoch, err := c.Refresh("alice")
		if err != nil {
			t.Fatalf("refresh %d: %v", r, err)
		}
		if newEpoch != epoch+epochStep {
			t.Fatalf("refresh %d: epoch = %d, want %d", r, newEpoch, epoch+epochStep)
		}
		epoch = newEpoch
		// Every retired-epoch entry is gone from the cache — the
		// no-stale-table invariant, independent of rotation path.
		for _, kind := range []string{"dlr.transport", "dlr.batch"} {
			for e := oldEpoch; e < newEpoch; e++ {
				if _, ok := tabCache.Get(cache.Key{Tenant: "alice", Epoch: e, Kind: kind}); ok {
					t.Fatalf("refresh %d: %q entry of retired epoch %d survived the rotation", r, kind, e)
				}
			}
		}
		// Sample the counters only now: the absence probes above count as
		// misses themselves.
		before := tabCache.Stats()
		decryptRound()
		after := tabCache.Stats()
		if cold {
			// The cold rotation re-keyed the namespace with nothing staged:
			// the first post-rotation window must rebuild, showing up as
			// fresh misses.
			if after.Misses <= before.Misses {
				t.Fatalf("refresh %d: no cache misses after cold rotation (before %d, after %d) — a pre-rotation table was replayed",
					r, before.Misses, after.Misses)
			}
		} else {
			// The pipelined rotation prewarmed the new epoch's tables at
			// commit: the first post-rotation window must not rebuild
			// anything.
			if after.Misses != before.Misses {
				t.Fatalf("refresh %d: %d cache misses after pipelined rotation — prewarm did not take",
					r, after.Misses-before.Misses)
			}
		}
	}
}

// TestServerRefreshMidStreamLosesNothing races a share refresh against
// a stream of concurrent single-request clients and asserts the
// ledger balances: every accepted request is answered, every answer is
// the right plaintext, and the refresh completes. This is the
// lost-request race the window loop's between-windows quiescing
// prevents.
func TestServerRefreshMidStreamLosesNothing(t *testing.T) {
	pk, p1, p2 := serverRaceSetup(t)
	s := server.New(server.Config{BatchSize: 4, Window: 2 * time.Millisecond, CacheCap: 8})
	if err := s.RegisterLocal("alice", p1, p2); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()
	defer func() {
		s.Shutdown()
		if err := <-serveDone; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	const clients = 3
	const perClient = 4
	msgs := make([]*bn254.GT, clients*perClient)
	cts := make([]*dlr.Ciphertext, clients*perClient)
	for i := range cts {
		if msgs[i], err = dlr.RandMessage(rand.Reader, pk); err != nil {
			t.Fatal(err)
		}
		if cts[i], err = dlr.Encrypt(rand.Reader, pk, msgs[i], nil); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			c, err := server.Dial(ln.Addr().String())
			if err != nil {
				t.Errorf("client %d: %v", cl, err)
				return
			}
			defer c.Close()
			for k := 0; k < perClient; k++ {
				i := cl*perClient + k
				got, err := c.Decrypt("alice", cts[i])
				if err != nil {
					t.Errorf("client %d request %d: %v", cl, k, err)
					return
				}
				if !got.Equal(msgs[i]) {
					t.Errorf("client %d request %d: wrong plaintext across rotation", cl, k)
				}
			}
		}(cl)
	}
	// Rotate mid-stream, from yet another session.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := server.Dial(ln.Addr().String())
		if err != nil {
			t.Errorf("refresh client: %v", err)
			return
		}
		defer c.Close()
		time.Sleep(time.Millisecond)
		if _, err := c.Refresh("alice"); err != nil {
			t.Errorf("mid-stream refresh: %v", err)
		}
	}()
	wg.Wait()

	m := s.Metrics().Snapshot()
	if m.Responses != m.Requests {
		t.Fatalf("ledger: %d requests accepted but %d answered — a request was lost",
			m.Requests, m.Responses)
	}
	if m.Requests != clients*perClient {
		t.Fatalf("requests = %d, want %d", m.Requests, clients*perClient)
	}
	if m.Errors != 0 {
		t.Fatalf("errors = %d, want 0", m.Errors)
	}
	if got := m.Refreshes; got != 1 {
		t.Fatalf("refreshes = %d, want 1", got)
	}
}
