package dlr

import (
	"crypto/rand"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/device"
	"repro/internal/params"
	"repro/internal/wire"
)

// These tests inject protocol faults: a device receiving garbage,
// truncated ciphertext lists, or out-of-protocol frame kinds must fail
// with a clean error — never panic, never produce a wrong result
// silently.

func TestP2RejectsUnknownFrameKind(t *testing.T) {
	_, _, p2 := genTest(t, params.ModeOptimalRate)
	_, _, err := device.Run(
		func(ch device.Channel) error {
			if err := ch.Send(wire.Msg{Kind: "evil.frame", Payload: []byte("junk")}); err != nil {
				return err
			}
			return nil
		},
		p2.Serve,
	)
	if err == nil || !strings.Contains(err.Error(), "unknown frame kind") {
		t.Fatalf("P2 accepted unknown frame kind: %v", err)
	}
}

func TestP2RejectsGarbagePayload(t *testing.T) {
	_, _, p2 := genTest(t, params.ModeOptimalRate)
	_, _, err := device.Run(
		func(ch device.Channel) error {
			return ch.Send(wire.Msg{Kind: "dlr.dec1", Payload: []byte{0xde, 0xad, 0xbe, 0xef}})
		},
		p2.Serve,
	)
	if err == nil {
		t.Fatal("P2 accepted garbage decryption payload")
	}
}

func TestP2RejectsTruncatedCiphertextList(t *testing.T) {
	pk, p1, p2 := genTest(t, params.ModeOptimalRate)
	m, _ := RandMessage(rand.Reader, pk)
	ct, _ := Encrypt(rand.Reader, pk, m, nil)

	// Intercept P1's dec1 frame and truncate it before delivery.
	_, _, err := device.Run(
		func(ch device.Channel) error {
			_, err := p1.RunDec(rand.Reader, &truncatingChannel{Channel: ch, dropBytes: 100}, ct)
			return err
		},
		p2.Serve,
	)
	if err == nil {
		t.Fatal("truncated ciphertext list accepted")
	}
}

// truncatingChannel drops trailing bytes from every sent payload.
type truncatingChannel struct {
	device.Channel
	dropBytes int
}

func (c *truncatingChannel) Send(m wire.Msg) error {
	if len(m.Payload) > c.dropBytes {
		m.Payload = m.Payload[:len(m.Payload)-c.dropBytes]
	}
	return c.Channel.Send(m)
}

func TestP1RejectsWrongReplyKind(t *testing.T) {
	pk, p1, _ := genTest(t, params.ModeOptimalRate)
	m, _ := RandMessage(rand.Reader, pk)
	ct, _ := Encrypt(rand.Reader, pk, m, nil)
	_, _, err := device.Run(
		func(ch device.Channel) error {
			_, err := p1.RunDec(rand.Reader, ch, ct)
			return err
		},
		func(ch device.Channel) error {
			if _, err := ch.Recv(); err != nil {
				return err
			}
			// Reply with the wrong frame kind.
			return ch.Send(wire.Msg{Kind: "dlr.ref2", Payload: nil})
		},
	)
	if err == nil || !strings.Contains(err.Error(), "expected dlr.dec2") {
		t.Fatalf("P1 accepted wrong reply kind: %v", err)
	}
}

func TestP1RejectsMalformedReply(t *testing.T) {
	pk, p1, _ := genTest(t, params.ModeOptimalRate)
	m, _ := RandMessage(rand.Reader, pk)
	ct, _ := Encrypt(rand.Reader, pk, m, nil)
	_, _, err := device.Run(
		func(ch device.Channel) error {
			_, err := p1.RunDec(rand.Reader, ch, ct)
			return err
		},
		func(ch device.Channel) error {
			if _, err := ch.Recv(); err != nil {
				return err
			}
			return ch.Send(wire.Msg{Kind: "dlr.dec2", Payload: []byte{1, 2, 3}})
		},
	)
	if err == nil {
		t.Fatal("P1 accepted malformed dec2 reply")
	}
}

func TestP1RejectsNilCiphertext(t *testing.T) {
	_, p1, p2 := genTest(t, params.ModeOptimalRate)
	if _, _, err := Decrypt(rand.Reader, p1, p2, nil); err == nil {
		t.Fatal("nil ciphertext accepted")
	}
	if _, _, err := Decrypt(rand.Reader, p1, p2, &Ciphertext{}); err == nil {
		t.Fatal("empty ciphertext accepted")
	}
}

// TestTamperedProtocolGivesWrongMessageNotPanic documents CPA-protocol
// behaviour under an active attacker: flipping a GT coordinate inside
// the dec1 frame must not crash either device; it yields a wrong
// message (integrity is the CCA2 scheme's job).
func TestTamperedProtocolGivesWrongMessageNotPanic(t *testing.T) {
	pk, p1, p2 := genTest(t, params.ModeOptimalRate)
	m, _ := RandMessage(rand.Reader, pk)
	ct, _ := Encrypt(rand.Reader, pk, m, nil)
	_, _, err := device.Run(
		func(ch device.Channel) error {
			mOut, err := p1.RunDec(rand.Reader, &bitFlipChannel{Channel: ch}, ct)
			if err != nil {
				// Tolerated: tampering may surface as a decode error.
				return nil
			}
			if mOut.Equal(m) {
				t.Error("tampered protocol still produced the correct message")
			}
			return nil
		},
		func(ch device.Channel) error {
			// P2 may legitimately reject the tampered frame.
			_ = p2.Serve(ch)
			return nil
		},
	)
	if err != nil {
		t.Fatal(err)
	}
}

// bitFlipChannel flips one byte near the end of each sent payload
// (inside the last GT coordinate encoding, keeping the field element
// valid with high probability).
type bitFlipChannel struct {
	device.Channel
}

func (c *bitFlipChannel) Send(m wire.Msg) error {
	if len(m.Payload) > 40 {
		p := append([]byte(nil), m.Payload...)
		p[len(p)-1] ^= 0x01
		m.Payload = p
	}
	return c.Channel.Send(m)
}

// TestBatchCacheFaultyReplyPublishesNothing checks a protocol fault
// cannot poison the table cache: when the dec-batch reply fails to
// decode, RunDecBatch errors out before any table build, so the next
// honest batch starts from a clean (cold) cache and decrypts
// correctly.
func TestBatchCacheFaultyReplyPublishesNothing(t *testing.T) {
	pk, p1, p2 := genTest(t, params.ModeOptimalRate)
	c := cache.New(8)
	p1.AttachCache(c, "tenant-a")
	m, _ := RandMessage(rand.Reader, pk)
	ct, _ := Encrypt(rand.Reader, pk, m, nil)

	_, _, err := device.Run(
		func(ch device.Channel) error {
			_, err := p1.RunDecBatch(ch, []*Ciphertext{ct})
			if err == nil {
				t.Error("P1 accepted malformed decB2 reply")
			}
			return nil
		},
		func(ch device.Channel) error {
			if _, err := ch.Recv(); err != nil {
				return err
			}
			return ch.Send(wire.Msg{Kind: "dlr.decB2", Payload: []byte{0xde, 0xad}})
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatalf("faulty batch published %d cache entries", c.Len())
	}

	got, _, err := DecryptBatch(p1, p2, []*Ciphertext{ct})
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].Equal(m) {
		t.Fatal("honest batch after faulty reply decrypted wrongly")
	}
}

// TestBatchCacheDigestSelfCorrects plants a poisoned entry under the
// CURRENT (tenant, epoch) key — simulating device-state drift the
// epoch counter did not witness — and checks the u-digest validation
// treats it as a miss: the batch rebuilds honest tables, decrypts
// correctly, and replaces the bad entry.
func TestBatchCacheDigestSelfCorrects(t *testing.T) {
	pk, p1, p2 := genTest(t, params.ModeOptimalRate)
	c := cache.New(8)
	p1.AttachCache(c, "tenant-a")
	m, _ := RandMessage(rand.Reader, pk)
	ct, _ := Encrypt(rand.Reader, pk, m, nil)

	key := cache.Key{Tenant: "tenant-a", Epoch: p1.Epoch(), Kind: "dlr.batch"}
	c.Put(key, &batchTableEntry{digest: [32]byte{0xbd}, tabs: nil})

	got, _, err := DecryptBatch(p1, p2, []*Ciphertext{ct})
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].Equal(m) {
		t.Fatal("digest mismatch was not treated as a miss")
	}
	v, ok := c.Get(key)
	if !ok {
		t.Fatal("honest batch did not replace the poisoned entry")
	}
	if e := v.(*batchTableEntry); e.tabs == nil || e.digest == ([32]byte{0xbd}) {
		t.Fatal("poisoned entry survived the honest batch")
	}
}
