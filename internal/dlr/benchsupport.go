package dlr

import (
	"fmt"
	"io"
	"time"

	"repro/internal/bn254"
	"repro/internal/hpske"
	"repro/internal/pss"
)

// This file exposes measured internals for the experiment harness
// (internal/bench). Nothing here is part of the deployment API.

// ExposeShareForTest reconstructs P1's plaintext share — test and
// experiment support only.
func ExposeShareForTest(p *P1) (*pss.Share1, error) { return p.sharePlain() }

// MeasureTransportAblation compares the §5.2 ciphertext-reuse device
// (deriving a GT ciphertext from an existing G2 ciphertext by κ+1
// pairings with A) against encrypting a fresh GT ciphertext from
// scratch (κ oblivious GT samples + κ exponentiations). It returns rows
// for the E10 ablation table.
func MeasureTransportAblation(rng io.Reader, p *P1) ([][]string, error) {
	a, _, err := bn254.RandG1(rng)
	if err != nil {
		return nil, err
	}
	f := p.encSK1[0]

	start := time.Now()
	tct := hpske.Transport(p.ctr, a, f)
	transportD := time.Since(start)

	// The value the transport produced, encrypted from scratch instead.
	plain, err := p.ssGT.Decrypt(p.skcomm, tct)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	if _, err := p.ssGT.Encrypt(rng, p.skcomm, plain); err != nil {
		return nil, err
	}
	freshD := time.Since(start)

	return [][]string{
		{"ciphertext reuse", "transport fᵢ → dᵢ (κ+1 pairings)", fmt.Sprintf("%.2fms", float64(transportD.Microseconds())/1000)},
		{"ciphertext reuse", "fresh Enc'_GT (κ hash-to-GT + κ exps)", fmt.Sprintf("%.2fms", float64(freshD.Microseconds())/1000)},
	}, nil
}
