package dlr

import (
	"crypto/rand"
	"testing"

	"repro/internal/bn254"
	"repro/internal/opcount"
	"repro/internal/params"
)

// encryptBatch produces k fresh message/ciphertext pairs under pk.
func encryptBatch(t *testing.T, pk *PublicKey, k int) ([]*bn254.GT, []*Ciphertext) {
	t.Helper()
	ms := make([]*bn254.GT, k)
	cs := make([]*Ciphertext, k)
	for i := 0; i < k; i++ {
		m, err := RandMessage(rand.Reader, pk)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Encrypt(rand.Reader, pk, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		ms[i], cs[i] = m, c
	}
	return ms, cs
}

func TestDecryptBatch(t *testing.T) {
	for _, mode := range []params.Mode{params.ModeBasic, params.ModeOptimalRate} {
		pk, p1, p2 := genTest(t, mode)
		ms, cs := encryptBatch(t, pk, 5)
		got, stats, err := DecryptBatch(p1, p2, cs)
		if err != nil {
			t.Fatalf("mode %v: DecryptBatch: %v", mode, err)
		}
		if len(got) != len(cs) {
			t.Fatalf("mode %v: got %d messages, want %d", mode, len(got), len(cs))
		}
		for i := range got {
			if !got[i].Equal(ms[i]) {
				t.Fatalf("mode %v: batch message %d wrong", mode, i)
			}
		}
		if stats.BytesP1 == 0 || stats.BytesP2 == 0 {
			t.Fatalf("mode %v: batch transcript empty", mode)
		}
	}
}

func TestDecryptBatchMatchesDecrypt(t *testing.T) {
	pk, p1, p2 := genTest(t, params.ModeOptimalRate)
	ms, cs := encryptBatch(t, pk, 3)
	batch, _, err := DecryptBatch(p1, p2, cs)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cs {
		single, _, err := Decrypt(rand.Reader, p1, p2, c)
		if err != nil {
			t.Fatal(err)
		}
		if !single.Equal(batch[i]) {
			t.Fatalf("request %d: batch and per-request protocols disagree", i)
		}
		if !single.Equal(ms[i]) {
			t.Fatalf("request %d: wrong message", i)
		}
	}
}

func TestDecryptBatchAcrossRefresh(t *testing.T) {
	pk, p1, p2 := genTest(t, params.ModeOptimalRate)
	ms, cs := encryptBatch(t, pk, 2)
	if _, err := Refresh(rand.Reader, p1, p2); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	if err := p1.BeginPeriod(rand.Reader); err != nil {
		t.Fatalf("BeginPeriod: %v", err)
	}
	got, _, err := DecryptBatch(p1, p2, cs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !got[i].Equal(ms[i]) {
			t.Fatalf("post-refresh batch message %d wrong", i)
		}
	}
}

func TestDecryptBatchEmptyAndNil(t *testing.T) {
	_, p1, p2 := genTest(t, params.ModeOptimalRate)
	got, stats, err := DecryptBatch(p1, p2, nil)
	if err != nil || got != nil || stats == nil {
		t.Fatalf("empty batch: got=%v stats=%v err=%v", got, stats, err)
	}
	if _, _, err := DecryptBatch(p1, p2, []*Ciphertext{nil}); err == nil {
		t.Fatal("nil ciphertext should be rejected")
	}
}

func TestDecryptBatchOpCounts(t *testing.T) {
	ctrP1, ctrP2 := opcount.New(), opcount.New()
	pk, p1, p2, err := Gen(rand.Reader, testParams(t), WithCounters(ctrP1, ctrP2))
	if err != nil {
		t.Fatal(err)
	}
	ms, cs := encryptBatch(t, pk, 4)
	ctrP1.Reset()
	ctrP2.Reset()
	got, _, err := DecryptBatch(p1, p2, cs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !got[i].Equal(ms[i]) {
			t.Fatalf("message %d wrong", i)
		}
	}
	prm := p1.Params()
	// P1 pays κ+1 pairings per request (the shared-final-exp product
	// still reports the naive pairing count) plus the κ key-fold G2 exps.
	wantPair := int64(len(cs) * (prm.Kappa + 1))
	if n := ctrP1.Get(opcount.Pairing); n != wantPair {
		t.Fatalf("P1 pairings = %d, want %d", n, wantPair)
	}
	if n := ctrP1.Get(opcount.G2Exp); n != int64(prm.Kappa) {
		t.Fatalf("P1 G2 exps = %d, want %d", n, prm.Kappa)
	}
	// P2's single LinComb reports ℓ+1 exponentiations per coordinate
	// through the group adapters.
	if n := ctrP2.Get(opcount.G2Exp); n != int64((prm.Ell+1)*(prm.Kappa+1)) {
		t.Fatalf("P2 G2 exps = %d, want %d", n, (prm.Ell+1)*(prm.Kappa+1))
	}
}
