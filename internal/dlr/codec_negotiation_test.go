package dlr

import (
	"crypto/rand"
	"encoding/binary"
	"testing"

	"repro/internal/bn254"
	"repro/internal/device"
	"repro/internal/group"
	"repro/internal/hpske"
	"repro/internal/params"
	"repro/internal/wire"
)

// payloadIsCompressed reports whether a protocol list payload opens
// with the hpske codec-v2 sentinel.
func payloadIsCompressed(p []byte) bool {
	return len(p) >= 5 && binary.BigEndian.Uint32(p) == 0xFFFFFFFF
}

// runRecordedBatch runs one cold RunDecBatch through a transcript
// recorder and returns the first frame sent in each direction.
func runRecordedBatch(t *testing.T, p1 *P1, p2 *P2, pk *PublicKey) (req, reply wire.Msg) {
	t.Helper()
	m, err := RandMessage(rand.Reader, pk)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := Encrypt(rand.Reader, pk, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, b := device.NewLocalPair()
	rec := device.NewRecorder(a)
	done := make(chan error, 1)
	go func() { done <- p2.Serve(b) }()
	ms, err := p1.RunDecBatch(rec, []*Ciphertext{ct})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !ms[0].Equal(m) {
		t.Fatal("batch decryption returned the wrong message")
	}
	sent, recv := rec.Transcript()
	if len(sent) != 1 || len(recv) != 1 {
		t.Fatalf("transcript has %d sent / %d received frames, want 1/1", len(sent), len(recv))
	}
	return sent[0], recv[0]
}

// TestWireCodecNegotiation pins the codec echo in both directions: a
// compressed-capable P1 gets compressed replies, and a legacy-pinned P1
// (SetLegacyWire) gets byte-format-legacy replies from the very same
// upgraded P2.
func TestWireCodecNegotiation(t *testing.T) {
	prm, err := params.New(64, 40)
	if err != nil {
		t.Fatal(err)
	}
	pk, p1, p2, err := Gen(rand.Reader, prm)
	if err != nil {
		t.Fatal(err)
	}

	req, reply := runRecordedBatch(t, p1, p2, pk)
	if !payloadIsCompressed(req.Payload) {
		t.Fatal("default P1 sent a legacy request")
	}
	if !payloadIsCompressed(reply.Payload) {
		t.Fatal("P2 answered a compressed request with a legacy reply")
	}

	// Same P2, legacy peer: the request and the echoed reply are both
	// uncompressed.
	p1.noteRotation() // drop the warm batch session so the next batch pays the round trip
	p1.SetLegacyWire(true)
	req, reply = runRecordedBatch(t, p1, p2, pk)
	if payloadIsCompressed(req.Payload) {
		t.Fatal("legacy-pinned P1 sent a compressed request")
	}
	if payloadIsCompressed(reply.Payload) {
		t.Fatal("P2 answered a legacy request with a compressed reply")
	}

	// The refresh protocols run end to end on the legacy codec too.
	if _, err := Refresh(rand.Reader, p1, p2); err != nil {
		t.Fatalf("legacy-codec refresh: %v", err)
	}
	p1.SetLegacyWire(false)
	if _, err := Refresh(rand.Reader, p1, p2); err != nil {
		t.Fatalf("compressed-codec refresh: %v", err)
	}
}

// TestUnmarshalP1LegacyState rebuilds a Marshal blob in the
// pre-compression format (raw 128-byte plaintext-share points, legacy
// encrypted-share list) and checks UnmarshalP1 still accepts it and the
// restored instance decrypts.
func TestUnmarshalP1LegacyState(t *testing.T) {
	prm, err := params.New(64, 40)
	if err != nil {
		t.Fatal(err)
	}
	pk, p1, p2, err := Gen(rand.Reader, prm, WithMode(params.ModeBasic))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := p1.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	// Re-encode the blob's share fields in the legacy formats.
	p := wire.NewParser(blob)
	modeU, err := p.Uint32()
	if err != nil {
		t.Fatal(err)
	}
	skRaw, err := p.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	shRaw, err := p.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	encRaw, err := p.Bytes()
	if err != nil {
		t.Fatal(err)
	}

	var legacySh []byte
	for off := 0; off < len(shRaw); off += bn254.G2BytesCompressed {
		pt, err := new(bn254.G2).SetBytesCompressed(shRaw[off : off+bn254.G2BytesCompressed])
		if err != nil {
			t.Fatal(err)
		}
		legacySh = append(legacySh, pt.Bytes()...)
	}

	ss, err := hpske.New[*bn254.G2](group.G2{}, pk.Params.Kappa)
	if err != nil {
		t.Fatal(err)
	}
	encList, err := hpske.DecodeList(ss, encRaw, pk.Params.Ell+1)
	if err != nil {
		t.Fatal(err)
	}
	legacyEnc, err := hpske.EncodeListLegacy(ss, encList)
	if err != nil {
		t.Fatal(err)
	}

	var b wire.Builder
	b.AppendUint32(modeU)
	b.AppendBytes(skRaw)
	b.AppendBytes(legacySh)
	b.AppendBytes(legacyEnc)

	restored, err := UnmarshalP1(pk, b.Bytes(), nil)
	if err != nil {
		t.Fatalf("legacy state rejected: %v", err)
	}
	m, err := RandMessage(rand.Reader, pk)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := Encrypt(rand.Reader, pk, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Decrypt(rand.Reader, restored, p2, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("restored legacy-state P1 decrypted the wrong message")
	}
}
