package dlr

import (
	"bytes"
	"crypto/rand"
	"testing"

	"repro/internal/bn254"
	"repro/internal/opcount"
	"repro/internal/params"
)

// testParams keeps protocol runs fast: n = 40, λ = 128 → κ = 2, ℓ = 14.
func testParams(t *testing.T) params.Params {
	t.Helper()
	return params.MustNew(40, 128)
}

func genTest(t *testing.T, mode params.Mode) (*PublicKey, *P1, *P2) {
	t.Helper()
	pk, p1, p2, err := Gen(rand.Reader, testParams(t), WithMode(mode))
	if err != nil {
		t.Fatalf("Gen: %v", err)
	}
	return pk, p1, p2
}

func TestEncryptDecryptBasicMode(t *testing.T) {
	pk, p1, p2 := genTest(t, params.ModeBasic)
	m, err := RandMessage(rand.Reader, pk)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := Encrypt(rand.Reader, pk, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := Decrypt(rand.Reader, p1, p2, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("decryption protocol returned wrong message")
	}
	if stats.BytesP1 == 0 || stats.BytesP2 == 0 {
		t.Fatal("protocol transcript empty")
	}
}

func TestEncryptDecryptOptimalMode(t *testing.T) {
	pk, p1, p2 := genTest(t, params.ModeOptimalRate)
	m, err := RandMessage(rand.Reader, pk)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := Encrypt(rand.Reader, pk, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Decrypt(rand.Reader, p1, p2, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("optimal-rate decryption returned wrong message")
	}
}

func TestRefreshPreservesDecryption(t *testing.T) {
	for _, mode := range []params.Mode{params.ModeBasic, params.ModeOptimalRate} {
		t.Run(mode.String(), func(t *testing.T) {
			pk, p1, p2 := genTest(t, mode)
			m, _ := RandMessage(rand.Reader, pk)
			ct, _ := Encrypt(rand.Reader, pk, m, nil)
			for i := 0; i < 3; i++ {
				if _, err := Refresh(rand.Reader, p1, p2); err != nil {
					t.Fatalf("refresh %d: %v", i, err)
				}
				if err := p1.BeginPeriod(rand.Reader); err != nil {
					t.Fatalf("begin period %d: %v", i, err)
				}
				got, _, err := Decrypt(rand.Reader, p1, p2, ct)
				if err != nil {
					t.Fatalf("decrypt after refresh %d: %v", i, err)
				}
				if !got.Equal(m) {
					t.Fatalf("wrong message after refresh %d", i)
				}
			}
		})
	}
}

// TestRefreshInvariant checks Definition 3.1's consistency requirement
// directly: after any number of refreshes the shares still reconstruct
// the same msk = g2^α, i.e. Φ·Π aᵢ^{−sᵢ} is invariant.
func TestRefreshInvariant(t *testing.T) {
	for _, mode := range []params.Mode{params.ModeBasic, params.ModeOptimalRate} {
		t.Run(mode.String(), func(t *testing.T) {
			_, p1, p2 := genTest(t, mode)
			recon := func() *bn254.G2 {
				sh1, err := p1.sharePlain()
				if err != nil {
					t.Fatal(err)
				}
				sk2 := p2.shareSK2()
				acc := sh1.Payload
				g2 := p1.g2
				for i, a := range sh1.Coins {
					acc = g2.Mul(acc, g2.Inv(g2.Exp(a, sk2[i])))
				}
				return acc
			}
			msk0 := recon()
			for i := 0; i < 4; i++ {
				if _, err := Refresh(rand.Reader, p1, p2); err != nil {
					t.Fatal(err)
				}
				if !recon().Equal(msk0) {
					t.Fatalf("refresh %d changed the shared secret", i)
				}
			}
		})
	}
}

// TestRefreshChangesShares checks that refresh actually replaces both
// devices' secret memories (erasure + fresh shares).
func TestRefreshChangesShares(t *testing.T) {
	_, p1, p2 := genTest(t, params.ModeOptimalRate)
	s1Before := append([]byte(nil), p1.SecretBytes()...)
	s2Before := append([]byte(nil), p2.SecretBytes()...)
	if _, err := Refresh(rand.Reader, p1, p2); err != nil {
		t.Fatal(err)
	}
	if err := p1.BeginPeriod(rand.Reader); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(s2Before, p2.SecretBytes()) {
		t.Fatal("P2's share unchanged by refresh")
	}
	if bytes.Equal(s1Before, p1.SecretBytes()) {
		t.Fatal("P1's secret memory unchanged by period rotation")
	}
}

func TestMultipleMessages(t *testing.T) {
	pk, p1, p2 := genTest(t, params.ModeOptimalRate)
	for i := 0; i < 3; i++ {
		m, _ := RandMessage(rand.Reader, pk)
		ct, _ := Encrypt(rand.Reader, pk, m, nil)
		got, _, err := Decrypt(rand.Reader, p1, p2, ct)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(m) {
			t.Fatalf("message %d corrupted", i)
		}
	}
}

func TestCiphertextBytesRoundTrip(t *testing.T) {
	pk, _, _ := genTest(t, params.ModeOptimalRate)
	m, _ := RandMessage(rand.Reader, pk)
	ct, _ := Encrypt(rand.Reader, pk, m, nil)
	back, err := CiphertextFromBytes(ct.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !back.A.Equal(ct.A) || !back.B.Equal(ct.B) {
		t.Fatal("ciphertext round trip failed")
	}
	if _, err := CiphertextFromBytes(ct.Bytes()[:10]); err == nil {
		t.Fatal("accepted truncated ciphertext")
	}
}

// TestP2DoesNoPairings verifies the "simplicity of P2" claim (§1.1): the
// auxiliary device performs no pairings and no G1 operations — only
// exponentiations and multiplications on received elements.
func TestP2DoesNoPairings(t *testing.T) {
	ctr1, ctr2 := opcount.New(), opcount.New()
	pk, p1, p2, err := Gen(rand.Reader, testParams(t), WithCounters(ctr1, ctr2))
	if err != nil {
		t.Fatal(err)
	}
	m, _ := RandMessage(rand.Reader, pk)
	ct, _ := Encrypt(rand.Reader, pk, m, nil)
	if _, _, err := Decrypt(rand.Reader, p1, p2, ct); err != nil {
		t.Fatal(err)
	}
	if _, err := Refresh(rand.Reader, p1, p2); err != nil {
		t.Fatal(err)
	}
	if n := ctr2.Get(opcount.Pairing); n != 0 {
		t.Fatalf("P2 performed %d pairings; the paper promises zero", n)
	}
	if n := ctr2.Get(opcount.G1Exp); n != 0 {
		t.Fatalf("P2 performed %d G1 exponentiations", n)
	}
	if ctr1.Get(opcount.Pairing) == 0 {
		t.Fatal("P1 performed no pairings; counter wiring broken")
	}
	if ctr2.Get(opcount.G2Exp) == 0 && ctr2.Get(opcount.GTExp) == 0 {
		t.Fatal("P2 performed no exponentiations; counter wiring broken")
	}
}

func TestEncryptionCostMatchesPaper(t *testing.T) {
	// §1.2.1: "encryption requires a single pairing operation (which can
	// be provided as part of the public key) and two exponentiations".
	ctr := opcount.New()
	pk, _, _ := genTest(t, params.ModeOptimalRate)
	m, _ := RandMessage(rand.Reader, pk)
	ctr.Reset()
	if _, err := Encrypt(rand.Reader, pk, m, ctr); err != nil {
		t.Fatal(err)
	}
	exps := ctr.Get(opcount.G1Exp) + ctr.Get(opcount.G2Exp) + ctr.Get(opcount.GTExp)
	if exps != 2 {
		t.Fatalf("encryption used %d exponentiations, want 2", exps)
	}
	if ctr.Get(opcount.Pairing) != 0 {
		t.Fatal("encryption performed a pairing; e(g1,g2) should come from pk")
	}
}

func TestHybridRoundTrip(t *testing.T) {
	pk, p1, p2 := genTest(t, params.ModeOptimalRate)
	msg := []byte("attack at dawn — signed, the distributed key holders")
	h, err := EncryptBytes(rand.Reader, pk, msg, nil)
	if err != nil {
		t.Fatal(err)
	}
	enc := h.Bytes()
	back, err := HybridCiphertextFromBytes(enc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecryptBytesProtocol(rand.Reader, p1, p2, back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("hybrid round trip corrupted message")
	}
}

func TestHybridTamperDetection(t *testing.T) {
	pk, p1, p2 := genTest(t, params.ModeOptimalRate)
	h, err := EncryptBytes(rand.Reader, pk, []byte("payload"), nil)
	if err != nil {
		t.Fatal(err)
	}
	h.Sealed[0] ^= 1
	if _, err := DecryptBytesProtocol(rand.Reader, p1, p2, h); err == nil {
		t.Fatal("tampered DEM accepted")
	}
}

func TestGenValidatesMode(t *testing.T) {
	if _, _, _, err := Gen(rand.Reader, testParams(t), WithMode(params.Mode(42))); err == nil {
		t.Fatal("Gen accepted unknown mode")
	}
}
