package dlr

import (
	"crypto/rand"
	"math/big"
	"testing"

	"repro/internal/hpske"
	"repro/internal/params"
)

// captureLimbs snapshots the limb storage backing every coordinate of
// k, so a test can verify the arrays themselves were overwritten (not
// merely unreferenced).
func captureLimbs(t *testing.T, k hpske.Key) [][]big.Word {
	t.Helper()
	limbs := make([][]big.Word, len(k))
	for i, c := range k {
		limbs[i] = c.Bits()
		if len(limbs[i]) == 0 {
			t.Fatalf("key coordinate %d is zero before the rotation under test", i)
		}
	}
	return limbs
}

// assertWiped checks that every retained coordinate reads zero and
// every captured limb was overwritten.
func assertWiped(t *testing.T, what string, k hpske.Key, limbs [][]big.Word) {
	t.Helper()
	for i, c := range k {
		if c.Sign() != 0 {
			t.Errorf("%s: coordinate %d not reset", what, i)
		}
	}
	for i, ws := range limbs {
		for j, w := range ws {
			if w != 0 {
				t.Errorf("%s: coordinate %d limb %d not wiped", what, i, j)
			}
		}
	}
}

// TestRefreshZeroizesOldShares asserts the paper's erasure step is
// real: after a 2-party refresh the previous share material is wiped
// in place, and the devices still decrypt correctly.
func TestRefreshZeroizesOldShares(t *testing.T) {
	for _, mode := range []params.Mode{params.ModeBasic, params.ModeOptimalRate} {
		t.Run(mode.String(), func(t *testing.T) {
			pk, p1, p2 := genTest(t, mode)

			oldSK2 := p2.sk2
			sk2Limbs := captureLimbs(t, oldSK2)
			var oldKC hpske.Key
			var kcLimbs [][]big.Word
			if mode == params.ModeBasic {
				// ModeBasic refresh rotates skcomm too
				// (rebuildEncryptedShare); ModeOptimalRate rotates it only
				// at period boundaries (see TestBeginPeriodZeroizesOldKey).
				oldKC = p1.skcomm
				kcLimbs = captureLimbs(t, oldKC)
			}

			if _, err := Refresh(rand.Reader, p1, p2); err != nil {
				t.Fatal(err)
			}

			assertWiped(t, "P2 sk2", oldSK2, sk2Limbs)
			if mode == params.ModeBasic {
				assertWiped(t, "P1 skcomm", oldKC, kcLimbs)
			}

			m, err := RandMessage(rand.Reader, pk)
			if err != nil {
				t.Fatal(err)
			}
			c, err := Encrypt(rand.Reader, pk, m, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := Decrypt(rand.Reader, p1, p2, c)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(m) {
				t.Fatal("decryption broken after refresh with erasure")
			}
		})
	}
}

// TestBeginPeriodZeroizesOldKey asserts the ModeOptimalRate period
// rotation wipes the outgoing Π_comm key.
func TestBeginPeriodZeroizesOldKey(t *testing.T) {
	pk, p1, p2 := genTest(t, params.ModeOptimalRate)

	oldKC := p1.skcomm
	kcLimbs := captureLimbs(t, oldKC)

	if err := p1.BeginPeriod(rand.Reader); err != nil {
		t.Fatal(err)
	}
	assertWiped(t, "P1 skcomm", oldKC, kcLimbs)

	m, err := RandMessage(rand.Reader, pk)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Encrypt(rand.Reader, pk, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Decrypt(rand.Reader, p1, p2, c)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("decryption broken after period rotation with erasure")
	}
}
