package dlr

import (
	"crypto/rand"
	"net"
	"testing"

	"repro/internal/device"
	"repro/internal/params"
)

// TestFullLifecycleOverTCP runs the complete deployment flow over a real
// TCP connection: P2 serves, P1 drives decryption, refresh, another
// period rotation and a second decryption — then both states survive a
// marshal/unmarshal round trip and still interoperate.
func TestFullLifecycleOverTCP(t *testing.T) {
	pk, p1, p2 := genTest(t, params.ModeOptimalRate)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	serveDone := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			serveDone <- err
			return
		}
		ch := device.NewConnChannel(conn)
		defer ch.Close()
		serveDone <- p2.ServeLoop(ch)
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	ch := device.NewConnChannel(conn)

	m, err := RandMessage(rand.Reader, pk)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := Encrypt(rand.Reader, pk, m, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Period 0: decrypt, refresh.
	got, err := p1.RunDec(rand.Reader, ch, ct)
	if err != nil {
		t.Fatalf("TCP decryption: %v", err)
	}
	if !got.Equal(m) {
		t.Fatal("wrong message over TCP")
	}
	if err := p1.RunRef(rand.Reader, ch); err != nil {
		t.Fatalf("TCP refresh: %v", err)
	}
	if err := p1.BeginPeriod(rand.Reader); err != nil {
		t.Fatal(err)
	}

	// Period 1: decrypt again with refreshed shares.
	got, err = p1.RunDec(rand.Reader, ch, ct)
	if err != nil {
		t.Fatalf("TCP decryption after refresh: %v", err)
	}
	if !got.Equal(m) {
		t.Fatal("wrong message after refresh over TCP")
	}

	// Close the connection; the server loop should end with an error
	// (connection closed), which ServeLoop reports.
	_ = ch.Close()
	if err := <-serveDone; err == nil {
		t.Fatal("ServeLoop returned nil after connection close")
	}

	// State persistence midway through the lifetime.
	raw1, err := p1.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	r1, err := UnmarshalP1(pk, raw1, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := UnmarshalP2(pk, p2.Marshal(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got2, _, err := Decrypt(rand.Reader, r1, r2, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !got2.Equal(m) {
		t.Fatal("restored mid-lifetime states decrypt incorrectly")
	}
}
