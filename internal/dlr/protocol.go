package dlr

import (
	"fmt"
	"io"
	"math/big"

	"repro/internal/bn254"
	"repro/internal/device"
	"repro/internal/hpske"
	"repro/internal/params"
	"repro/internal/scalar"
	"repro/internal/wire"
)

// Protocol frame kinds.
const (
	kindDec1 = "dlr.dec1" // P1 → P2: d1,…,dℓ, dΦ, dB   (GT ciphertexts)
	kindDec2 = "dlr.dec2" // P2 → P1: c'                 (GT ciphertext)
	kindRef1 = "dlr.ref1" // P1 → P2: (f1,f'1),…,(fℓ,f'ℓ), fΦ (G2 ciphertexts)
	kindRef2 = "dlr.ref2" // P2 → P1: f                  (G2 ciphertext)

	kindDecB1 = "dlr.decb1" // P1 → P2: f1,…,fℓ, fΦ      (G2 ciphertexts, batch mode)
	kindDecB2 = "dlr.decb2" // P2 → P1: u = Π fᵢ^sᵢ / fΦ (G2 ciphertext, batch mode)

	kindRefP1 = "dlr.refp1" // P1 → P2: ref1 payload, pipelined refresh
	kindRefP2 = "dlr.refp2" // P2 → P1: f, u'             (G2 ciphertexts)
)

// RunDec executes P1's side of the decryption protocol for ciphertext
// c = (A, B) and returns the recovered message m ∈ GT.
//
// Step 1 (P1): derive dᵢ = e(A, ·)-transport of fᵢ (ciphertext reuse,
// §5.2), dΦ likewise from fΦ, and dB = Enc'(B); send all to P2.
// Step 3 (P1): decrypt P2's combination c' to m.
func (p *P1) RunDec(rng io.Reader, ch device.Channel, c *Ciphertext) (*bn254.GT, error) {
	if c == nil || c.A == nil || c.B == nil {
		return nil, fmt.Errorf("dlr: nil ciphertext")
	}
	// The ℓ+1 transports replay precomputed Miller-loop line tables
	// for the fixed encrypted share against the per-request c.A: the
	// (ℓ+1)(κ+1) pairings run with no G2 arithmetic and no line
	// inversions at all. Tables are built lazily on the first request
	// after a share rotation (see transportTables).
	cts := hpske.TransportManyPre(p.ctr, c.A, p.transportTables())
	dB, err := p.ssGT.Encrypt(rng, p.skcomm, c.B)
	if err != nil {
		return nil, fmt.Errorf("dlr: encrypting B: %w", err)
	}
	cts = append(cts, dB)

	payload, err := hpske.EncodeList(p.ssGT, cts)
	if err != nil {
		return nil, err
	}
	if err := ch.Send(wire.Msg{Kind: kindDec1, Payload: payload}); err != nil {
		return nil, err
	}

	reply, err := ch.Recv()
	if err != nil {
		return nil, err
	}
	if reply.Kind != kindDec2 {
		return nil, fmt.Errorf("dlr: expected %s, got %s", kindDec2, reply.Kind)
	}
	cprime, err := hpske.DecodeList(p.ssGT, reply.Payload, 1)
	if err != nil {
		return nil, err
	}
	m, err := p.ssGT.Decrypt(p.skcomm, cprime[0])
	if err != nil {
		return nil, fmt.Errorf("dlr: decrypting c': %w", err)
	}
	return m, nil
}

// handleDec1 executes P2's side of the decryption protocol (step 2):
// c' = dB · Π dᵢ^sᵢ / dΦ, computed coordinate-wise.
func (p *P2) handleDec1(msg wire.Msg) (wire.Msg, error) {
	cts, err := hpske.DecodeList(p.ssGT, msg.Payload, p.prm.Ell+2)
	if err != nil {
		return wire.Msg{}, err
	}
	ds := cts[:p.prm.Ell]
	dPhi := cts[p.prm.Ell]
	dB := cts[p.prm.Ell+1]

	// Π dᵢ^sᵢ is a coordinate-wise multi-exponentiation: LinComb
	// evaluates each coordinate through the shared-doubling fast path
	// instead of ℓ separate Pow/Mul rounds.
	comb, err := p.ssGT.LinComb(ds, p.sk2)
	if err != nil {
		return wire.Msg{}, err
	}
	acc, err := p.ssGT.Mul(dB, comb)
	if err != nil {
		return wire.Msg{}, err
	}
	acc, err = p.ssGT.Div(acc, dPhi)
	if err != nil {
		return wire.Msg{}, err
	}
	payload, err := hpske.EncodeList(p.ssGT, []*hpske.Ciphertext[*bn254.GT]{acc})
	if err != nil {
		return wire.Msg{}, err
	}
	return wire.Msg{Kind: kindDec2, Payload: payload}, nil
}

// RunRef executes P1's side of the refresh protocol.
//
// Step 1 (P1): sample fresh oblivious a'ᵢ, encrypt them as f'ᵢ, and send
// (fᵢ, f'ᵢ) pairs plus fΦ. Step 3 (P1): adopt the new share. In
// ModeBasic, Φ' = Dec'(f) and the plaintext share is replaced; in
// ModeOptimalRate, the f'ᵢ and f simply become the new encrypted share —
// no decryption ever happens.
func (p *P1) RunRef(rng io.Reader, ch device.Channel) error {
	newCoins := make([]*bn254.G2, p.prm.Ell) // retained only in ModeBasic
	fPrimes := make([]*hpske.Ciphertext[*bn254.G2], p.prm.Ell)
	for i := range fPrimes {
		aPrime, err := p.g2.Rand(rng)
		if err != nil {
			return fmt.Errorf("dlr: sampling a'_%d: %w", i, err)
		}
		ct, err := p.ssG2.Encrypt(rng, p.skcomm, aPrime)
		if err != nil {
			return err
		}
		fPrimes[i] = ct
		if p.mode == params.ModeBasic {
			newCoins[i] = aPrime
		}
		// In ModeOptimalRate the plaintext a'ᵢ goes out of scope here:
		// P1 held a single unencrypted coordinate at a time.
	}

	cts := make([]*hpske.Ciphertext[*bn254.G2], 0, 2*p.prm.Ell+1)
	for i := 0; i < p.prm.Ell; i++ {
		cts = append(cts, p.encSK1[i], fPrimes[i])
	}
	cts = append(cts, p.encPhi)
	payload, err := p.encodeG2List(cts)
	if err != nil {
		return err
	}
	if err := ch.Send(wire.Msg{Kind: kindRef1, Payload: payload}); err != nil {
		return err
	}

	reply, err := ch.Recv()
	if err != nil {
		return err
	}
	if reply.Kind != kindRef2 {
		return fmt.Errorf("dlr: expected %s, got %s", kindRef2, reply.Kind)
	}
	fs, err := hpske.DecodeList(p.ssG2, reply.Payload, 1)
	if err != nil {
		return err
	}
	f := fs[0]

	switch p.mode {
	case params.ModeBasic:
		phiPrime, err := p.ssG2.Decrypt(p.skcomm, f)
		if err != nil {
			return fmt.Errorf("dlr: decrypting Φ': %w", err)
		}
		p.sk1.Coins = newCoins
		p.sk1.Payload = phiPrime
		// The cached fᵢ encrypt the share that was just erased; rebuild
		// them (under a fresh skcomm) from the new share.
		if err := p.rebuildEncryptedShare(rng); err != nil {
			return err
		}
	default: // params.ModeOptimalRate
		p.encSK1 = fPrimes
		p.encPhi = f
		p.noteRotation() // tables referenced the erased share
	}
	return nil
}

// handleRef1 executes P2's side of the refresh protocol (step 2): sample
// a fresh s', return f = Π f'ᵢ^s'ᵢ / fᵢ^sᵢ · fΦ, and replace sk2 ← s'.
//
//dlr:zeroize sk2
func (p *P2) handleRef1(msg wire.Msg) (wire.Msg, error) {
	cts, codec, err := hpske.DecodeListCodec(p.ssG2, msg.Payload, 2*p.prm.Ell+1)
	if err != nil {
		return wire.Msg{}, err
	}
	sPrime, err := scalar.RandVector(nil, p.prm.Ell)
	if err != nil {
		return wire.Msg{}, err
	}
	// Π f'ᵢ^s'ᵢ · fᵢ^(−sᵢ) as one coordinate-wise linear combination:
	// the division folds into negated exponents, so the ℓ ciphertext
	// inversions of the naive loop disappear entirely.
	bases := make([]*hpske.Ciphertext[*bn254.G2], 0, 2*p.prm.Ell)
	exps := make([]*big.Int, 0, 2*p.prm.Ell)
	for i := 0; i < p.prm.Ell; i++ {
		bases = append(bases, cts[2*i+1], cts[2*i])
		exps = append(exps, sPrime[i], new(big.Int).Neg(p.sk2[i]))
	}
	acc, err := p.ssG2.LinComb(bases, exps)
	if err != nil {
		return wire.Msg{}, err
	}
	fPhi := cts[2*p.prm.Ell]
	acc, err = p.ssG2.Mul(acc, fPhi)
	if err != nil {
		return wire.Msg{}, err
	}
	// Answer in the codec the request arrived in, so a legacy P1 can
	// decode the reply while compressed-capable peers get v2 back.
	payload, err := hpske.EncodeListCodec(p.ssG2, []*hpske.Ciphertext[*bn254.G2]{acc}, codec)
	if err != nil {
		return wire.Msg{}, err
	}
	// Erase the old share and install the new one (the paper's erasure
	// at the end of refresh): the outgoing scalars are wiped in place
	// before the reference is dropped.
	p.sk2.Zeroize()
	p.sk2 = hpske.Key(sPrime)
	p.period++
	return wire.Msg{Kind: kindRef2, Payload: payload}, nil
}

// Serve handles exactly one protocol request on ch (decryption or
// refresh, dispatched on the frame kind).
func (p *P2) Serve(ch device.Channel) error {
	msg, err := ch.Recv()
	if err != nil {
		return err
	}
	var reply wire.Msg
	switch msg.Kind {
	case kindDec1:
		p.mu.RLock()
		reply, err = p.handleDec1(msg)
		p.mu.RUnlock()
	case kindDecB1:
		p.mu.RLock()
		reply, err = p.handleDecB1(msg)
		p.mu.RUnlock()
	case kindRef1:
		p.mu.Lock()
		reply, err = p.handleRef1(msg)
		p.mu.Unlock()
	case kindRefP1:
		p.mu.Lock()
		reply, err = p.handleRefP1(msg)
		p.mu.Unlock()
	default:
		return fmt.Errorf("dlr: P2 received unknown frame kind %q", msg.Kind)
	}
	if err != nil {
		return err
	}
	return ch.Send(reply)
}

// ServeLoop handles protocol requests until the channel errors (e.g.
// the peer closes). The first channel error is returned, or nil if it
// looks like an orderly shutdown.
func (p *P2) ServeLoop(ch device.Channel) error {
	for {
		if err := p.Serve(ch); err != nil {
			return err
		}
	}
}

// Stats summarizes one protocol execution.
type Stats struct {
	// BytesP1 and BytesP2 are the bytes sent by each device.
	BytesP1, BytesP2 int64
}

// Decrypt runs the full 2-party decryption protocol in-process and
// returns the message together with transcript statistics.
func Decrypt(rng io.Reader, p1 *P1, p2 *P2, c *Ciphertext) (*bn254.GT, *Stats, error) {
	var m *bn254.GT
	r1, r2, err := device.Run(
		func(ch device.Channel) error {
			var err error
			m, err = p1.RunDec(rng, ch, c)
			return err
		},
		p2.Serve,
	)
	if err != nil {
		return nil, nil, err
	}
	return m, &Stats{BytesP1: r1.BytesSent(), BytesP2: r2.BytesSent()}, nil
}

// Refresh runs the full 2-party refresh protocol in-process. Both
// devices end up with fresh shares of the same secret; old shares are
// erased.
func Refresh(rng io.Reader, p1 *P1, p2 *P2) (*Stats, error) {
	r1, r2, err := device.Run(
		func(ch device.Channel) error { return p1.RunRef(rng, ch) },
		p2.Serve,
	)
	if err != nil {
		return nil, err
	}
	return &Stats{BytesP1: r1.BytesSent(), BytesP2: r2.BytesSent()}, nil
}
