package dlr

import (
	"bytes"
	"crypto/rand"
	"testing"

	"repro/internal/bn254"
	"repro/internal/cache"
	"repro/internal/device"
	"repro/internal/params"
)

// TestPipelinedRefreshPreservesDecryption is the end-to-end correctness
// check for the two-phase rotation: across several staged+committed
// rotations, both the per-request and the batched protocol keep
// decrypting correctly, and each rotation advances the epoch by
// exactly one (the pipelined path folds refresh and period rotation
// into a single share-state replacement).
func TestPipelinedRefreshPreservesDecryption(t *testing.T) {
	for _, mode := range []params.Mode{params.ModeBasic, params.ModeOptimalRate} {
		t.Run(mode.String(), func(t *testing.T) {
			pk, p1, p2 := genTest(t, mode)
			m, _ := RandMessage(rand.Reader, pk)
			ct, _ := Encrypt(rand.Reader, pk, m, nil)
			for i := 0; i < 3; i++ {
				epochBefore := p1.Epoch()
				p1Period, p2Period := p1.Period(), p2.Period()
				if _, err := RefreshPipelined(rand.Reader, p1, p2); err != nil {
					t.Fatalf("pipelined refresh %d: %v", i, err)
				}
				if p1.Epoch() != epochBefore+1 {
					t.Fatalf("rotation %d bumped epoch %d → %d, want exactly +1", i, epochBefore, p1.Epoch())
				}
				if p1.Period() != p1Period+1 || p2.Period() != p2Period+1 {
					t.Fatalf("rotation %d: periods (%d,%d) → (%d,%d), want both +1",
						i, p1Period, p2Period, p1.Period(), p2.Period())
				}
				got, _, err := Decrypt(rand.Reader, p1, p2, ct)
				if err != nil {
					t.Fatalf("decrypt after rotation %d: %v", i, err)
				}
				if !got.Equal(m) {
					t.Fatalf("wrong message after rotation %d", i)
				}
				gotB, _, err := DecryptBatch(p1, p2, []*Ciphertext{ct})
				if err != nil {
					t.Fatalf("batch decrypt after rotation %d: %v", i, err)
				}
				if !gotB[0].Equal(m) {
					t.Fatalf("wrong batched message after rotation %d", i)
				}
			}
		})
	}
}

// TestPipelinedRefreshInvariant checks Definition 3.1's consistency
// requirement for the pipelined path: the shares still reconstruct the
// same msk = g2^α after every staged rotation.
func TestPipelinedRefreshInvariant(t *testing.T) {
	for _, mode := range []params.Mode{params.ModeBasic, params.ModeOptimalRate} {
		t.Run(mode.String(), func(t *testing.T) {
			_, p1, p2 := genTest(t, mode)
			recon := func() *bn254.G2 {
				sh1, err := p1.sharePlain()
				if err != nil {
					t.Fatal(err)
				}
				sk2 := p2.shareSK2()
				acc := sh1.Payload
				g2 := p1.g2
				for i, a := range sh1.Coins {
					acc = g2.Mul(acc, g2.Inv(g2.Exp(a, sk2[i])))
				}
				return acc
			}
			msk0 := recon()
			for i := 0; i < 3; i++ {
				if _, err := RefreshPipelined(rand.Reader, p1, p2); err != nil {
					t.Fatal(err)
				}
				if !recon().Equal(msk0) {
					t.Fatalf("pipelined rotation %d changed the shared secret", i)
				}
			}
		})
	}
}

// TestPipelinedRefreshChangesShares checks the erasure half: one
// staged rotation replaces both devices' secret memories, with no cold
// BeginPeriod needed on top.
func TestPipelinedRefreshChangesShares(t *testing.T) {
	_, p1, p2 := genTest(t, params.ModeOptimalRate)
	s1Before := append([]byte(nil), p1.SecretBytes()...)
	s2Before := append([]byte(nil), p2.SecretBytes()...)
	if _, err := RefreshPipelined(rand.Reader, p1, p2); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(s2Before, p2.SecretBytes()) {
		t.Fatal("P2's share unchanged by pipelined refresh")
	}
	if bytes.Equal(s1Before, p1.SecretBytes()) {
		t.Fatal("P1's period key unchanged by pipelined refresh")
	}
}

// TestPipelinedRefreshPrewarmsTables is the tentpole's core claim at
// the dlr layer: after a staged rotation, the first batch of the new
// epoch is served warm — zero device round trips (empty transcript),
// zero cache misses — and the cache holds both prewarmed table
// families under the new epoch with nothing from the old one.
func TestPipelinedRefreshPrewarmsTables(t *testing.T) {
	pk, p1, p2 := genTest(t, params.ModeOptimalRate)
	c := cache.New(8)
	p1.AttachCache(c, "tenant-a")
	cs, ms := encryptN(t, pk, 2)

	// Establish a steady state: one cold batch installs the session.
	got, _, err := DecryptBatch(p1, p2, cs)
	if err != nil {
		t.Fatal(err)
	}
	checkBatch(t, got, ms)

	if _, err := RefreshPipelined(rand.Reader, p1, p2); err != nil {
		t.Fatal(err)
	}
	newEpoch := p1.Epoch()
	for _, kind := range []string{"dlr.transport", "dlr.batch"} {
		if _, ok := c.Get(cache.Key{Tenant: "tenant-a", Epoch: newEpoch, Kind: kind}); !ok {
			t.Fatalf("commit did not publish a prewarmed %q entry at epoch %d", kind, newEpoch)
		}
		if _, ok := c.Get(cache.Key{Tenant: "tenant-a", Epoch: newEpoch - 1, Kind: kind}); ok {
			t.Fatalf("retired epoch's %q entry survived the commit", kind)
		}
	}

	missesBefore := c.Stats().Misses
	if !p1.BatchWarm() {
		t.Fatal("commit did not install a warm batch session")
	}
	got, stats, err := DecryptBatch(p1, p2, cs)
	if err != nil {
		t.Fatal(err)
	}
	checkBatch(t, got, ms)
	if stats.BytesP1 != 0 || stats.BytesP2 != 0 {
		t.Fatalf("first post-rotation batch used the channel (%d/%d bytes); want a fully local warm batch",
			stats.BytesP1, stats.BytesP2)
	}
	if c.Stats().Misses != missesBefore {
		t.Fatal("first post-rotation batch missed the cache — prewarm did not take")
	}

	// The per-request path must also be warm: RunDec replays the staged
	// transport tables rather than rebuilding them.
	m2, _ := RandMessage(rand.Reader, pk)
	ct2, _ := Encrypt(rand.Reader, pk, m2, nil)
	gotOne, _, err := Decrypt(rand.Reader, p1, p2, ct2)
	if err != nil {
		t.Fatal(err)
	}
	if !gotOne.Equal(m2) {
		t.Fatal("per-request decrypt wrong after prewarmed rotation")
	}
	if c.Stats().Misses != missesBefore {
		t.Fatal("per-request path missed the cache after prewarmed rotation")
	}
}

// TestStagedRefreshStaleness pins the commit guards: a staged refresh
// from an older epoch must be refused (another rotation landed first),
// and a consumed or abandoned staging cannot be committed.
func TestStagedRefreshStaleness(t *testing.T) {
	_, p1, p2 := genTest(t, params.ModeOptimalRate)

	st, err := p1.StageRefresh(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// A competing cold rotation lands first.
	if _, err := Refresh(rand.Reader, p1, p2); err != nil {
		t.Fatal(err)
	}
	if _, err := RefreshPipelined(rand.Reader, p1, p2); err != nil {
		t.Fatal(err)
	}
	if err := p1.CommitRefresh(rand.Reader, nil, st); err == nil {
		t.Fatal("stale staged refresh committed")
	}
	st.Abandon()

	// A fresh stage commits once and only once.
	st2, err := p1.StageRefresh(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := deviceRunCommit(p1, p2, st2); err != nil {
		t.Fatalf("fresh staged commit failed: %v", err)
	}
	if err := p1.CommitRefresh(rand.Reader, nil, st2); err == nil {
		t.Fatal("consumed staged refresh committed twice")
	}

	st3, err := p1.StageRefresh(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	st3.Abandon()
	if err := p1.CommitRefresh(rand.Reader, nil, st3); err == nil {
		t.Fatal("abandoned staged refresh committed")
	}
}

// TestBatchSessionSkipsRoundTrip pins the steady-state transport
// contract: only the first batch of an epoch touches the device
// channel; every later batch of the epoch has an empty transcript, and
// a rotation re-arms exactly one round trip.
func TestBatchSessionSkipsRoundTrip(t *testing.T) {
	pk, p1, p2 := genTest(t, params.ModeOptimalRate)
	cs, ms := encryptN(t, pk, 2)

	got, stats, err := DecryptBatch(p1, p2, cs)
	if err != nil {
		t.Fatal(err)
	}
	checkBatch(t, got, ms)
	if stats.BytesP1 == 0 {
		t.Fatal("cold batch sent nothing — expected the u round trip")
	}

	got, stats, err = DecryptBatch(p1, p2, cs)
	if err != nil {
		t.Fatal(err)
	}
	checkBatch(t, got, ms)
	if stats.BytesP1 != 0 || stats.BytesP2 != 0 {
		t.Fatalf("warm batch used the channel (%d/%d bytes)", stats.BytesP1, stats.BytesP2)
	}

	// A cold rotation drops the session: the next batch must do the
	// round trip again (fresh u under the rotated shares).
	if _, err := Refresh(rand.Reader, p1, p2); err != nil {
		t.Fatal(err)
	}
	got, stats, err = DecryptBatch(p1, p2, cs)
	if err != nil {
		t.Fatal(err)
	}
	checkBatch(t, got, ms)
	if stats.BytesP1 == 0 {
		t.Fatal("post-rotation batch skipped the round trip — stale session survived")
	}
}

// deviceRunCommit commits st over a fresh in-process pair (test
// helper; RefreshPipelined stages internally so can't be used here).
func deviceRunCommit(p1 *P1, p2 *P2, st *StagedRefresh) (int64, int64, error) {
	var b1, b2 int64
	r1, r2, err := device.Run(
		func(ch device.Channel) error { return p1.CommitRefresh(rand.Reader, ch, st) },
		p2.Serve,
	)
	if r1 != nil {
		b1 = r1.BytesSent()
	}
	if r2 != nil {
		b2 = r2.BytesSent()
	}
	return b1, b2, err
}
